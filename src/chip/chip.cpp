#include "chip/chip.hpp"

#include <cstring>
#include <mutex>

#include "obs/trace.hpp"
#include "support/timer.hpp"

namespace sunbfs::chip {

CpeContext::CpeContext(Chip* chip, int cg, int cpe,
                       detail::CgRunState* cg_state,
                       detail::ChipRunState* chip_state)
    : chip_(chip),
      cg_(cg),
      cpe_(cpe),
      cg_state_(cg_state),
      chip_state_(chip_state) {}

const Geometry& CpeContext::geometry() const { return chip_->geometry(); }
const CostModel& CpeContext::cost() const { return chip_->cost(); }

Ldm& CpeContext::ldm() { return chip_->ldm(cg_, cpe_); }

void CpeContext::dma_get(void* ldm_dst, const void* mem_src, size_t bytes) {
  counters_.dma_ops++;
  counters_.dma_bytes += bytes;
  counters_.cycles +=
      cost().dma_startup_cycles +
      double(bytes) / cost().dma_bytes_per_cycle_per_cpe(
                          geometry().core_groups, geometry().cpes_per_cg);
  std::memcpy(ldm_dst, mem_src, bytes);
}

void CpeContext::dma_put(void* mem_dst, const void* ldm_src, size_t bytes) {
  counters_.dma_ops++;
  counters_.dma_bytes += bytes;
  counters_.cycles +=
      cost().dma_startup_cycles +
      double(bytes) / cost().dma_bytes_per_cycle_per_cpe(
                          geometry().core_groups, geometry().cpes_per_cg);
  std::memcpy(mem_dst, ldm_src, bytes);
}

void CpeContext::rma_put(int peer_cpe, size_t peer_off, const void* src,
                         size_t bytes) {
  Ldm& peer = chip_->ldm(cg_, peer_cpe);
  SUNBFS_CHECK(peer_off + bytes <= peer.capacity());
  charge_rma(bytes);
  std::memcpy(peer.data() + peer_off, src, bytes);
}

void CpeContext::rma_get(void* dst, int peer_cpe, size_t peer_off,
                         size_t bytes) {
  Ldm& peer = chip_->ldm(cg_, peer_cpe);
  SUNBFS_CHECK(peer_off + bytes <= peer.capacity());
  charge_rma(bytes);
  std::memcpy(dst, peer.data() + peer_off, bytes);
}

namespace {
// Max-synchronize `cycles` across participants using the state's three
// barriers: collect max, adopt it, then reset for the next sync.
template <typename State>
void synced_barrier(State* st, double& cycles, double sync_cost) {
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->max_cycles = std::max(st->max_cycles, cycles);
  }
  st->barrier.wait();
  cycles = st->max_cycles + sync_cost;
  st->barrier2.wait();
  {
    std::lock_guard<std::mutex> lk(st->mu);
    st->max_cycles = 0;  // idempotent across participants
  }
  st->barrier3.wait();
}
}  // namespace

void CpeContext::sync_cg() {
  synced_barrier(cg_state_, counters_.cycles, cost().cg_sync_cycles);
}

void CpeContext::sync_chip() {
  SUNBFS_CHECK_MSG(chip_state_ != nullptr,
                   "sync_chip() requires a multi-CG run");
  // Cross-CG synchronization happens through main-memory atomics on the real
  // chip; charge accordingly.
  synced_barrier(chip_state_, counters_.cycles, cost().atomic_cycles);
}

Chip::Chip(Geometry geometry, CostModel cost)
    : geo_(geometry), cost_(cost) {
  SUNBFS_CHECK(geo_.core_groups >= 1 && geo_.cpes_per_cg >= 1);
  ldms_.reserve(size_t(geo_.total_cpes()));
  for (int i = 0; i < geo_.total_cpes(); ++i)
    ldms_.push_back(std::make_unique<Ldm>(geo_.ldm_bytes));
}

Ldm& Chip::ldm(int cg, int cpe) {
  SUNBFS_ASSERT(cg >= 0 && cg < geo_.core_groups);
  SUNBFS_ASSERT(cpe >= 0 && cpe < geo_.cpes_per_cg);
  return *ldms_[size_t(cg) * geo_.cpes_per_cg + cpe];
}

KernelReport Chip::run(const Kernel& kernel, int n_cgs) {
  if (n_cgs < 0) n_cgs = geo_.core_groups;
  SUNBFS_CHECK(n_cgs >= 1 && n_cgs <= geo_.core_groups);
  const int ncpes = n_cgs * geo_.cpes_per_cg;

  std::vector<std::unique_ptr<detail::CgRunState>> cg_states;
  for (int g = 0; g < n_cgs; ++g)
    cg_states.push_back(
        std::make_unique<detail::CgRunState>(geo_.cpes_per_cg));
  detail::ChipRunState chip_state(ncpes);

  std::vector<CpeContext> contexts;
  contexts.reserve(size_t(ncpes));
  for (int g = 0; g < n_cgs; ++g)
    for (int c = 0; c < geo_.cpes_per_cg; ++c)
      contexts.emplace_back(this, g, c, cg_states[g].get(), &chip_state);

  std::mutex err_mu;
  std::exception_ptr first_error;
  auto abort_all = [&] {
    for (auto& st : cg_states) {
      st->barrier.abort();
      st->barrier2.abort();
      st->barrier3.abort();
    }
    chip_state.barrier.abort();
    chip_state.barrier2.abort();
    chip_state.barrier3.abort();
  };

  WallTimer wall;
  auto cpe_main = [&](int idx) {
    try {
      kernel(contexts[size_t(idx)]);
    } catch (const sim::AbortError&) {
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      abort_all();
    }
  };

  if (ncpes == 1) {
    cpe_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(size_t(ncpes));
    for (int i = 0; i < ncpes; ++i) threads.emplace_back(cpe_main, i);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  KernelReport report;
  report.wall_seconds = wall.seconds();
  for (const auto& ctx : contexts) {
    const auto& c = ctx.counters();
    report.max_cycles = std::max(report.max_cycles, c.cycles);
    report.totals.cycles += c.cycles;
    report.totals.dma_bytes += c.dma_bytes;
    report.totals.rma_bytes += c.rma_bytes;
    report.totals.dma_ops += c.dma_ops;
    report.totals.rma_ops += c.rma_ops;
    report.totals.gld_ops += c.gld_ops;
    report.totals.gst_ops += c.gst_ops;
    report.totals.atomic_ops += c.atomic_ops;
    report.totals.cached_loads += c.cached_loads;
    report.totals.cached_hits += c.cached_hits;
  }
  report.modeled_seconds = cost_.seconds(report.max_cycles);
  obs::complete_span("chip", "kernel", int64_t(report.totals.cycles),
                     report.wall_seconds, report.modeled_seconds);
  return report;
}

KernelReport Chip::run_mpe(const std::function<void(MpeContext&)>& fn) {
  WallTimer wall;
  MpeContext ctx(cost_);
  fn(ctx);
  KernelReport report;
  report.wall_seconds = wall.seconds();
  report.max_cycles = ctx.cycles();
  report.totals.cycles = ctx.cycles();
  report.modeled_seconds = ctx.cycles() / cost_.mpe_hz;
  obs::complete_span("chip", "mpe_kernel", int64_t(ctx.cycles()),
                     report.wall_seconds, report.modeled_seconds);
  return report;
}

}  // namespace sunbfs::chip
