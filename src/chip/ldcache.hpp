#pragma once

#include <cstdint>
#include <vector>

#include "chip/arch.hpp"
#include "support/check.hpp"

/// Local Data Cache model (§3.1.2).
///
/// SW26010-Pro can repurpose LDM as a hardware data cache for main-memory
/// loads/stores ("an optional feature that user programs can easily
/// reconfigure at runtime").  We model a direct-mapped write-through cache:
/// hits cost ~LDM latency, misses cost a main-memory access plus a line
/// fill.  §3.3's observation — the cache is too small for the millions of
/// vertices per node, so random traversal access still misses — is exactly
/// what the model shows (see the chip tests and bench_chip_memory).
namespace sunbfs::chip {

/// Direct-mapped, write-through, per-CPE cache simulator.  Tracks tags and
/// statistics only (data correctness is the host memory's job); the caller
/// charges cycles from the returned hit/miss outcome.
class LdCache {
 public:
  /// `capacity_bytes` of cache backed by `line_bytes` lines.
  LdCache(size_t capacity_bytes, size_t line_bytes = 256)
      : line_bytes_(line_bytes),
        tags_(capacity_bytes / line_bytes, kEmpty) {
    SUNBFS_CHECK(line_bytes >= 8 && capacity_bytes >= line_bytes);
  }

  /// Access `address`; returns true on hit.  A miss installs the line.
  bool access(uint64_t address) {
    uint64_t line = address / line_bytes_;
    size_t set = size_t(line % tags_.size());
    ++accesses_;
    if (tags_[set] == line) {
      ++hits_;
      return true;
    }
    tags_[set] = line;
    return false;
  }

  void flush() { std::fill(tags_.begin(), tags_.end(), kEmpty); }

  uint64_t accesses() const { return accesses_; }
  uint64_t hits() const { return hits_; }
  double hit_rate() const {
    return accesses_ ? double(hits_) / double(accesses_) : 0.0;
  }

  size_t capacity_bytes() const { return tags_.size() * line_bytes_; }
  size_t line_bytes() const { return line_bytes_; }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t(0);
  size_t line_bytes_;
  std::vector<uint64_t> tags_;
  uint64_t accesses_ = 0;
  uint64_t hits_ = 0;
};

}  // namespace sunbfs::chip
