#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "chip/arch.hpp"
#include "chip/ldcache.hpp"
#include "chip/ldm.hpp"
#include "sim/barrier.hpp"
#include "support/check.hpp"

/// Functional SW26010-Pro simulator.
///
/// Kernels run on one host thread per CPE against per-CPE Ldm scratchpads.
/// Every memory operation goes through the CpeContext so the cost model can
/// charge cycles; a kernel's modeled time is the maximum cycle count over the
/// participating CPEs.  Concurrency discipline matches the hardware: RMA into
/// a peer's LDM is only safe when the kernel orders it with flags
/// (rma_post/ldm_atomic) or barriers (sync_cg/sync_chip), exactly as on the
/// real chip.
namespace sunbfs::chip {

class Chip;

/// Per-CPE operation counters (merged into the kernel report).
struct CpeCounters {
  double cycles = 0;
  uint64_t dma_bytes = 0;
  uint64_t rma_bytes = 0;
  uint64_t dma_ops = 0;
  uint64_t rma_ops = 0;
  uint64_t gld_ops = 0;
  uint64_t gst_ops = 0;
  uint64_t atomic_ops = 0;
  uint64_t cached_loads = 0;
  uint64_t cached_hits = 0;
};

/// Result of one kernel execution.
struct KernelReport {
  double max_cycles = 0;       ///< max over CPEs -> modeled kernel time
  double modeled_seconds = 0;  ///< max_cycles / cpe_hz
  double wall_seconds = 0;     ///< host wall time (simulation cost, not model)
  CpeCounters totals;          ///< ops/bytes summed over CPEs

  /// Modeled throughput for a kernel that processed `bytes` of payload.
  double modeled_bytes_per_s(uint64_t bytes) const {
    return modeled_seconds > 0 ? double(bytes) / modeled_seconds : 0.0;
  }
};

namespace detail {
/// Shared state for one core group during a run (cycle-synced barrier).
struct CgRunState {
  explicit CgRunState(int participants)
      : barrier(participants), barrier2(participants), barrier3(participants) {}
  sim::Barrier barrier, barrier2, barrier3;
  std::mutex mu;
  double max_cycles = 0;
};
/// Shared state across all participating CGs.
struct ChipRunState {
  explicit ChipRunState(int participants)
      : barrier(participants), barrier2(participants), barrier3(participants) {}
  sim::Barrier barrier, barrier2, barrier3;
  std::mutex mu;
  double max_cycles = 0;
};
}  // namespace detail

/// Execution context handed to a kernel on each CPE.
class CpeContext {
 public:
  CpeContext(Chip* chip, int cg, int cpe, detail::CgRunState* cg_state,
             detail::ChipRunState* chip_state);

  int cg() const { return cg_; }
  int cpe() const { return cpe_; }
  const Geometry& geometry() const;
  const CostModel& cost() const;

  /// This CPE's scratchpad.
  Ldm& ldm();

  // --- DMA: bulk copies between main memory and own LDM ------------------
  void dma_get(void* ldm_dst, const void* mem_src, size_t bytes);
  void dma_put(void* mem_dst, const void* ldm_src, size_t bytes);

  // --- RMA: one-sided access to a peer CPE's LDM (same CG only) ----------
  void rma_put(int peer_cpe, size_t peer_off, const void* src, size_t bytes);
  void rma_get(void* dst, int peer_cpe, size_t peer_off, size_t bytes);

  /// Read one T from a peer's LDM (single-element RMA get).
  template <typename T>
  T rma_read(int peer_cpe, size_t peer_off) {
    T out;
    rma_get(&out, peer_cpe, peer_off, sizeof(T));
    return out;
  }

  /// Post a flag value into a peer's LDM with release semantics (small RMA
  /// put used for producer/consumer handshakes).
  template <typename T>
  void rma_post(int peer_cpe, size_t off, T value) {
    charge_rma(sizeof(T));
    peer_ldm_atomic<T>(peer_cpe, off).store(value, std::memory_order_release);
  }

  /// Atomic view of a flag in this CPE's own LDM (poll with acquire).
  template <typename T>
  std::atomic<T>& ldm_atomic(size_t off) {
    return peer_ldm_atomic<T>(cpe_, off);
  }

  // --- direct main-memory access (GLD/GST: slow, uncached) ---------------
  template <typename T>
  T gld(const T& loc) {
    counters_.gld_ops++;
    counters_.cycles += cost().gld_cycles;
    return loc;
  }

  template <typename T>
  void gst(T& loc, T value) {
    counters_.gst_ops++;
    counters_.cycles += cost().gst_cycles;
    loc = value;
  }

  /// Reconfigure part of this CPE's LDM as an LDCache (§3.1.2: "shares
  /// physical space with LDM ... easily reconfigure at runtime").  The
  /// bytes are carved out of the LDM allocator, so kernels cannot
  /// double-spend the scratchpad.
  void enable_ldcache(size_t bytes, size_t line_bytes = 256) {
    ldm().alloc(bytes);  // reserve the physical space (capacity-checked)
    ldcache_.emplace(bytes, line_bytes);
  }

  void disable_ldcache() { ldcache_.reset(); }
  const LdCache* ldcache() const { return ldcache_ ? &*ldcache_ : nullptr; }

  /// Main-memory load through the LDCache when enabled (plain GLD
  /// otherwise).  Hits cost a couple of LDM cycles; misses cost a memory
  /// access plus the line fill.
  template <typename T>
  T cached_load(const T& loc) {
    if (!ldcache_) return gld(loc);
    counters_.cached_loads++;
    if (ldcache_->access(reinterpret_cast<uint64_t>(&loc))) {
      counters_.cached_hits++;
      counters_.cycles += 2 * cost().ldm_cycles;
    } else {
      counters_.cycles +=
          cost().gld_cycles +
          double(ldcache_->line_bytes()) /
              cost().dma_bytes_per_cycle_per_cpe(geometry().core_groups,
                                                 geometry().cpes_per_cg);
    }
    return loc;
  }

  /// Main-memory atomic fetch-add (the chip's only cross-CG sync primitive;
  /// expensive by design).
  uint64_t atomic_add(std::atomic<uint64_t>& target, uint64_t delta) {
    counters_.atomic_ops++;
    counters_.cycles += cost().atomic_cycles;
    return target.fetch_add(delta, std::memory_order_acq_rel);
  }

  // --- compute & synchronization ------------------------------------------
  /// Charge pure-compute cycles.
  void add_cycles(double c) { counters_.cycles += c; }
  double cycles() const { return counters_.cycles; }

  /// Barrier over this CG's CPEs; cycle counters are max-synchronized so the
  /// modeled clock advances together.
  void sync_cg();

  /// Barrier over every participating CPE of the chip.
  void sync_chip();

  /// Spin until pred() is true, yielding the host CPU (models waiting on a
  /// flag in LDM; modeled time advances at the next cycle sync).
  template <typename Pred>
  void wait(Pred pred) {
    while (!pred()) std::this_thread::yield();
  }

  const CpeCounters& counters() const { return counters_; }

 private:
  friend class Chip;

  template <typename T>
  std::atomic<T>& peer_ldm_atomic(int peer_cpe, size_t off);

  void charge_rma(size_t bytes) {
    counters_.rma_ops++;
    counters_.rma_bytes += bytes;
    counters_.cycles +=
        cost().rma_startup_cycles + double(bytes) / cost().rma_bytes_per_cycle;
  }

  Chip* chip_;
  int cg_;
  int cpe_;
  detail::CgRunState* cg_state_;
  detail::ChipRunState* chip_state_;
  CpeCounters counters_;
  std::optional<LdCache> ldcache_;
};

/// Sequential execution context on a Management Processing Element.  Memory
/// accesses are charged at cache-missing main-memory cost, modeling the
/// paper's MPE baseline for irregular kernels.
class MpeContext {
 public:
  explicit MpeContext(const CostModel& cost) : cost_(cost) {}

  template <typename T>
  T load(const T& loc) {
    cycles_ += cost_.mpe_mem_cycles;
    return loc;
  }

  template <typename T>
  void store(T& loc, T value) {
    cycles_ += cost_.mpe_mem_cycles;
    loc = value;
  }

  void add_cycles(double c) { cycles_ += c; }
  double cycles() const { return cycles_; }

 private:
  const CostModel& cost_;
  double cycles_ = 0;
};

using Kernel = std::function<void(CpeContext&)>;

/// The chip: owns all LDMs and runs kernels.
class Chip {
 public:
  explicit Chip(Geometry geometry = Geometry::sw26010pro(),
                CostModel cost = {});

  const Geometry& geometry() const { return geo_; }
  const CostModel& cost() const { return cost_; }

  /// Run `kernel` on every CPE of the first `n_cgs` core groups (-1 = all).
  /// Blocks until all CPEs return; rethrows the first kernel exception.
  KernelReport run(const Kernel& kernel, int n_cgs = -1);

  /// Run a sequential function on the MPE with memory-cost accounting.
  KernelReport run_mpe(const std::function<void(MpeContext&)>& fn);

  /// Scratchpad of CPE (cg, cpe).
  Ldm& ldm(int cg, int cpe);

 private:
  friend class CpeContext;

  Geometry geo_;
  CostModel cost_;
  std::vector<std::unique_ptr<Ldm>> ldms_;
};

template <typename T>
std::atomic<T>& CpeContext::peer_ldm_atomic(int peer_cpe, size_t off) {
  static_assert(std::atomic<T>::is_always_lock_free);
  Ldm& peer = chip_->ldm(cg_, peer_cpe);
  SUNBFS_ASSERT(off % alignof(std::atomic<T>) == 0);
  SUNBFS_ASSERT(off + sizeof(T) <= peer.capacity());
  return *reinterpret_cast<std::atomic<T>*>(peer.data() + off);
}

}  // namespace sunbfs::chip
