#pragma once

#include <cstring>
#include <vector>

#include "support/check.hpp"

/// Local Data Memory: the per-CPE scratchpad.
namespace sunbfs::chip {

/// A CPE's LDM: fixed-capacity byte array with a bump allocator.  Capacity
/// violations throw — the paper's segmenting technique exists precisely
/// because data sets must be *proven* to fit, so the model enforces it.
class Ldm {
 public:
  explicit Ldm(size_t capacity) : bytes_(capacity, 0) {}

  size_t capacity() const { return bytes_.size(); }
  size_t used() const { return used_; }

  /// Reserve `nbytes` (aligned); returns the offset of the block.
  size_t alloc(size_t nbytes, size_t align = 8) {
    size_t start = (used_ + align - 1) / align * align;
    SUNBFS_CHECK_MSG(start + nbytes <= capacity(),
                     "LDM capacity exceeded (" + std::to_string(start + nbytes)
                         + " > " + std::to_string(capacity()) + " bytes)");
    used_ = start + nbytes;
    return start;
  }

  /// Typed view of the block at `offset`.
  template <typename T>
  T* as(size_t offset) {
    SUNBFS_ASSERT(offset + sizeof(T) <= capacity());
    return reinterpret_cast<T*>(bytes_.data() + offset);
  }

  template <typename T>
  const T* as(size_t offset) const {
    SUNBFS_ASSERT(offset + sizeof(T) <= capacity());
    return reinterpret_cast<const T*>(bytes_.data() + offset);
  }

  unsigned char* data() { return bytes_.data(); }
  const unsigned char* data() const { return bytes_.data(); }

  /// Release all allocations (contents preserved until overwritten).
  void reset_alloc() { used_ = 0; }

 private:
  std::vector<unsigned char> bytes_;
  size_t used_ = 0;
};

}  // namespace sunbfs::chip
