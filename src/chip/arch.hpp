#pragma once

#include <cstddef>
#include <cstdint>

/// Architectural parameters of the simulated SW26010-Pro processor.
///
/// The chip model is *functional + cost model*: kernels execute for real on
/// host threads (one per CPE) against simulated LDM scratchpads, while every
/// DMA / RMA / GLD / GST / atomic operation charges modeled cycles to the
/// issuing CPE.  A kernel's modeled time is the maximum cycle count over all
/// participating CPEs, which reproduces the paper's on-chip performance
/// relations (RMA ≪ GLD, DMA needs large grains, atomics are expensive).
namespace sunbfs::chip {

/// Physical shape of the chip.
struct Geometry {
  int core_groups = 6;       ///< CGs per chip (SW26010-Pro: 6)
  int cpes_per_cg = 64;      ///< CPEs per CG (SW26010-Pro: 64)
  size_t ldm_bytes = 256 * 1024;  ///< LDM scratchpad per CPE (256 KB)

  int total_cpes() const { return core_groups * cpes_per_cg; }

  /// Full SW26010-Pro geometry.
  static Geometry sw26010pro() { return Geometry{}; }

  /// Small geometry for unit tests (fewer host threads, smaller LDM).
  static Geometry tiny() { return Geometry{2, 8, 16 * 1024}; }
};

/// Cycle cost model.  Values are chosen to match published SW26010-Pro
/// characteristics: 249.0 GB/s whole-chip DMA peak, RMA latency far below
/// main-memory latency, and atomics implemented as slow uncached
/// read-modify-writes.
struct CostModel {
  double cpe_hz = 2.1e9;            ///< CPE clock

  /// Whole-chip DMA peak (paper: measured 249.0 GB/s).  Each CG owns its
  /// memory controller, so a single CG is limited to 1/core_groups of this.
  double dma_chip_bytes_per_s = 249.0e9;
  double dma_startup_cycles = 350;  ///< per DMA request (favors >1KB grains)

  double rma_startup_cycles = 25;   ///< per RMA op, intra-CG NoC
  double rma_bytes_per_cycle = 16;  ///< per-CPE RMA payload bandwidth

  double gld_cycles = 280;          ///< uncached random main-memory load
  double gst_cycles = 240;          ///< uncached main-memory store
  double atomic_cycles = 620;       ///< main-memory atomic RMW
  double ldm_cycles = 1;            ///< local LDM access
  double cg_sync_cycles = 120;      ///< intra-CG barrier
  double mpe_mem_cycles = 135;      ///< MPE memory access (partial cache locality)
  double mpe_hz = 2.1e9;

  /// DMA payload bytes/cycle available to one CPE when `active_cpes` CPEs of
  /// `active_cgs` CGs stream concurrently (controller shared within a CG).
  double dma_bytes_per_cycle_per_cpe(int active_cgs, int cpes_per_cg) const {
    double chip_bpc = dma_chip_bytes_per_s / cpe_hz;
    double cg_bpc = chip_bpc / 6.0;  // per-controller share
    (void)active_cgs;
    return cg_bpc / double(cpes_per_cg);
  }

  double seconds(double cycles) const { return cycles / cpe_hz; }
};

}  // namespace sunbfs::chip
