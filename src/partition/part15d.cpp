#include "partition/part15d.hpp"

#include <algorithm>

#include "sort/paradis.hpp"
#include "support/check.hpp"

namespace sunbfs::partition {

const char* subgraph_name(Subgraph s) {
  switch (s) {
    case Subgraph::EH2EH: return "EH2EH";
    case Subgraph::E2L: return "E2L";
    case Subgraph::L2E: return "L2E";
    case Subgraph::H2L: return "H2L";
    case Subgraph::L2H: return "L2H";
    case Subgraph::L2L: return "L2L";
  }
  return "?";
}

namespace {

// Arc message exchanged during construction.  The component kind is packed
// into the top bits of `a` (vertex / EH ids use < 61 bits).
enum ArcKind : uint64_t { kEh2Eh = 0, kEl = 1, kHl = 2, kLh = 3, kLl = 4 };
constexpr int kKindShift = 61;
constexpr uint64_t kIdMask = (uint64_t(1) << kKindShift) - 1;

struct ArcMsg {
  uint64_t kind_a;  // kind << 61 | a
  int64_t b;

  ArcKind kind() const { return ArcKind(kind_a >> kKindShift); }
  uint64_t a() const { return kind_a & kIdMask; }
};

ArcMsg make_arc(ArcKind kind, uint64_t a, int64_t b) {
  SUNBFS_ASSERT(a <= kIdMask);
  return ArcMsg{(uint64_t(kind) << kKindShift) | a, b};
}

}  // namespace

Part15d build_15d(sim::RankContext& ctx, const VertexSpace& space,
                  std::span<const graph::Edge> slice,
                  std::span<const uint64_t> local_degrees,
                  DegreeThresholds thresholds) {
  const sim::MeshShape mesh = ctx.mesh;
  SUNBFS_CHECK(space.nranks == mesh.ranks());

  Part15d part;
  part.space = space;
  part.cls = classify_vertices(ctx, space, local_degrees, thresholds);
  part.eh_space = CyclicSpace{part.cls.num_eh(), mesh.ranks()};
  part.local_begin = space.begin(ctx.rank);
  part.local_count = space.count(ctx.rank);
  part.local_is_eh.resize(part.local_count);
  for (uint64_t l = 0; l < part.local_count; ++l)
    if (part.cls.is_eh(space.to_global(ctx.rank, l)))
      part.local_is_eh.set(l);

  const EhlTable& cls = part.cls;
  auto eh_rank = [&](uint64_t eh_id) {
    return part.eh_space.owner(graph::Vertex(eh_id));
  };

  // Route every arc of every component to its storing rank.
  std::vector<std::vector<ArcMsg>> to(size_t(mesh.ranks()));
  auto send_eh2eh = [&](uint64_t x, uint64_t y) {
    int dest = mesh.rank_of(mesh.row_of(eh_rank(y)), mesh.col_of(eh_rank(x)));
    to[size_t(dest)].push_back(make_arc(kEh2Eh, x, int64_t(y)));
  };
  for (const graph::Edge& e : slice) {
    uint64_t ka = cls.eh_of(e.u);
    uint64_t kb = cls.eh_of(e.v);
    bool a_eh = ka != EhlTable::kNotEh;
    bool b_eh = kb != EhlTable::kNotEh;
    if (a_eh && b_eh) {
      // Both orientations, self loops twice (adjacency-matrix convention,
      // matching Csr::from_undirected).
      send_eh2eh(ka, kb);
      send_eh2eh(kb, ka);
    } else if (a_eh || b_eh) {
      uint64_t k = a_eh ? ka : kb;
      graph::Vertex l = a_eh ? e.v : e.u;
      int lo = space.owner(l);
      if (cls.is_e(k)) {
        to[size_t(lo)].push_back(make_arc(kEl, k, l));
      } else {
        int hl_rank = mesh.rank_of(mesh.row_of(lo), mesh.col_of(eh_rank(k)));
        to[size_t(hl_rank)].push_back(make_arc(kHl, k, l));
        to[size_t(lo)].push_back(make_arc(kLh, k, l));
      }
    } else {
      to[size_t(space.owner(e.u))].push_back(
          make_arc(kLl, uint64_t(e.u), e.v));
      to[size_t(space.owner(e.v))].push_back(
          make_arc(kLl, uint64_t(e.v), e.u));
    }
  }

  std::vector<ArcMsg> arcs = ctx.world.alltoallv(to);
  to.clear();
  to.shrink_to_fit();

  // Unified sort-based construction (the paper's in-place global sort idea,
  // applied node-locally with PARADIS): order by (kind, a) so each
  // component is a contiguous run of row-sorted arcs.
  sort::paradis_sort(std::span<ArcMsg>(arcs),
                     [](const ArcMsg& m) { return m.kind_a; });

  auto run_of = [&](ArcKind kind) {
    auto lo = std::partition_point(arcs.begin(), arcs.end(), [&](const ArcMsg& m) {
      return uint64_t(m.kind()) < uint64_t(kind);
    });
    auto hi = std::partition_point(lo, arcs.end(), [&](const ArcMsg& m) {
      return uint64_t(m.kind()) <= uint64_t(kind);
    });
    return std::span<const ArcMsg>(arcs.data() + (lo - arcs.begin()),
                                   size_t(hi - lo));
  };

  auto build = [&](std::span<const ArcMsg> run, uint64_t num_rows, bool row_is_a,
                   auto&& map_row, auto&& map_val) {
    std::vector<graph::Vertex> rows, vals;
    rows.reserve(run.size());
    vals.reserve(run.size());
    for (const ArcMsg& m : run) {
      uint64_t a = m.a();
      int64_t b = m.b;
      rows.push_back(map_row(row_is_a ? graph::Vertex(a) : graph::Vertex(b)));
      vals.push_back(map_val(row_is_a ? graph::Vertex(b) : graph::Vertex(a)));
    }
    return graph::Csr::from_arcs(num_rows, rows, vals);
  };

  auto ident = [](graph::Vertex v) { return v; };
  auto to_local = [&](graph::Vertex v) {
    return graph::Vertex(space.to_local(ctx.rank, v));
  };

  const uint64_t k = cls.num_eh();
  auto eh2eh_run = run_of(kEh2Eh);
  part.eh2eh = build(eh2eh_run, k, true, ident, ident);
  {
    // Reverse orientation for the pull kernel: rows y, values x.
    std::vector<graph::Vertex> rows, vals;
    rows.reserve(eh2eh_run.size());
    vals.reserve(eh2eh_run.size());
    for (const ArcMsg& m : eh2eh_run) {
      rows.push_back(m.b);
      vals.push_back(graph::Vertex(m.a()));
    }
    part.eh2eh_rev = graph::Csr::from_arcs(k, rows, vals);
  }
  auto el_run = run_of(kEl);
  part.e2l = build(el_run, k, true, ident, to_local);
  part.l2e = build(el_run, part.local_count, false, to_local, ident);
  auto hl_run = run_of(kHl);
  part.h2l = build(hl_run, k, true, ident, ident);
  {
    // Destination-major mirror of H2L over the row-local L index space.
    part.row_l_offsets.assign(size_t(mesh.cols) + 1, 0);
    int myrow = mesh.row_of(ctx.rank);
    for (int c = 0; c < mesh.cols; ++c)
      part.row_l_offsets[size_t(c) + 1] =
          part.row_l_offsets[size_t(c)] + space.count(mesh.rank_of(myrow, c));
    auto row_local = [&](graph::Vertex l) {
      int owner = space.owner(l);
      SUNBFS_ASSERT(mesh.row_of(owner) == myrow);
      return graph::Vertex(part.row_l_offsets[size_t(mesh.col_of(owner))] +
                           space.to_local(owner, l));
    };
    std::vector<graph::Vertex> rows, vals;
    rows.reserve(hl_run.size());
    vals.reserve(hl_run.size());
    for (const ArcMsg& m : hl_run) {
      rows.push_back(row_local(m.b));
      vals.push_back(graph::Vertex(m.a()));
    }
    part.h2l_by_l =
        graph::Csr::from_arcs(part.row_l_offsets.back(), rows, vals);
  }
  part.l2h = build(run_of(kLh), part.local_count, false, to_local, ident);
  part.l2l = build(run_of(kLl), part.local_count, true, to_local, ident);

  part.arc_counts[int(Subgraph::EH2EH)] = part.eh2eh.num_arcs();
  part.arc_counts[int(Subgraph::E2L)] = part.e2l.num_arcs();
  part.arc_counts[int(Subgraph::L2E)] = part.l2e.num_arcs();
  part.arc_counts[int(Subgraph::H2L)] = part.h2l.num_arcs();
  part.arc_counts[int(Subgraph::L2H)] = part.l2h.num_arcs();
  part.arc_counts[int(Subgraph::L2L)] = part.l2l.num_arcs();
  return part;
}

}  // namespace sunbfs::partition
