#include "partition/part1d.hpp"

#include "support/check.hpp"

namespace sunbfs::partition {

Part1d build_1d(sim::RankContext& ctx, const VertexSpace& space,
                std::span<const graph::Edge> slice) {
  SUNBFS_CHECK(space.nranks == ctx.nranks());
  std::vector<std::vector<graph::Edge>> to(size_t(ctx.nranks()));
  for (const graph::Edge& e : slice) {
    // Both orientations, including self loops twice, matching
    // Csr::from_undirected's adjacency-matrix convention.
    to[size_t(space.owner(e.u))].push_back(graph::Edge{e.u, e.v});
    to[size_t(space.owner(e.v))].push_back(graph::Edge{e.v, e.u});
  }
  std::vector<graph::Edge> arcs = ctx.world.alltoallv(to);

  Part1d part;
  part.space = space;
  std::vector<graph::Vertex> rows, vals;
  rows.reserve(arcs.size());
  vals.reserve(arcs.size());
  for (const graph::Edge& a : arcs) {
    rows.push_back(graph::Vertex(space.to_local(ctx.rank, a.u)));
    vals.push_back(a.v);
  }
  part.adj = graph::Csr::from_arcs(space.count(ctx.rank), rows, vals);
  return part;
}

}  // namespace sunbfs::partition
