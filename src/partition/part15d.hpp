#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "graph/csr.hpp"
#include "partition/classify.hpp"
#include "partition/space.hpp"
#include "sim/runtime.hpp"
#include "support/bitvector.hpp"

/// 3-level degree-aware 1.5D graph partitioning (§4.1).
///
/// The original edge set is split into six components by the E/H/L classes
/// of the endpoints; each component is placed so that its traversal needs
/// only the communication the paper prescribes:
///
///   EH2EH  2D-partitioned over EH ids: arc x->y at mesh rank
///          (row(eh_owner(y)), col(eh_owner(x))).  Stored in both
///          orientations (eh2eh for push, eh2eh_rev for pull).
///   E2L    both orientations at owner(l) (E is delegated globally, so
///          neither direction communicates): e2l rows are EH ids, l2e rows
///          are local L indices.
///   H2L    arc h->l at rank (row(owner(l)), col(eh_owner(h))): the rank
///          shares a column with h's delegates and a row with owner(l), so
///          push messages travel intra-row only.
///   L2H    at owner(l) (rows local l, values EH ids): push messages go
///          intra-row to h's column delegate.
///   L2L    at the owner of the source endpoint, classic 1D.
///
/// Self loops are kept (the generator produces them; traversal never acts on
/// them because the endpoint is already visited).
namespace sunbfs::partition {

/// Index of each subgraph in per-subgraph arrays (arc counts, timings).
enum class Subgraph : int { EH2EH = 0, E2L, L2E, H2L, L2H, L2L };
inline constexpr int kSubgraphCount = 6;
const char* subgraph_name(Subgraph s);

/// One rank's share of the 1.5D-partitioned graph.
struct Part15d {
  VertexSpace space;     ///< original vertex id ownership
  CyclicSpace eh_space;  ///< EH id ownership (cyclic over [0, num_eh))
  EhlTable cls;          ///< replicated classification table

  uint64_t local_begin = 0;  ///< first owned original vertex
  uint64_t local_count = 0;  ///< owned original vertices
  /// Owned original vertex (local index) -> vertex is E or H (its traversal
  /// state lives in the EH arrays, not the local L arrays).
  BitVector local_is_eh;

  graph::Csr eh2eh;      ///< rows: EH x (my column), values: EH y (my row)
  graph::Csr eh2eh_rev;  ///< rows: EH y (my row), values: EH x (my column)
  graph::Csr e2l;        ///< rows: EH id (E), values: local l index
  graph::Csr l2e;        ///< rows: local l, values: EH id (E)
  graph::Csr h2l;        ///< rows: EH id (H), values: global l id
  /// Same arcs as h2l, destination-major ("stored by the destination
  /// index", §4.3): rows are row-local L indices (all L vertices owned by
  /// ranks in this mesh row, concatenated in column order), values are EH
  /// ids of h.  Drives the H2L bottom-up at the storage rank.
  graph::Csr h2l_by_l;
  /// row_l_offsets[c] is the row-local index of the first vertex owned by
  /// the rank in mesh column c of this row (size cols + 1).
  std::vector<uint64_t> row_l_offsets;
  graph::Csr l2h;        ///< rows: local l, values: EH id (H)
  graph::Csr l2l;        ///< rows: local l, values: global l' id

  /// Arc count stored on this rank per subgraph (Figure 13 balance data).
  std::array<uint64_t, kSubgraphCount> arc_counts{};

  // --- mesh placement helpers -------------------------------------------
  /// Mesh row of the rank owning EH id k.
  int eh_row(uint64_t eh_id, const sim::MeshShape& mesh) const {
    return mesh.row_of(eh_space.owner(graph::Vertex(eh_id)));
  }
  /// Mesh column of the rank owning EH id k.
  int eh_col(uint64_t eh_id, const sim::MeshShape& mesh) const {
    return mesh.col_of(eh_space.owner(graph::Vertex(eh_id)));
  }
};

/// Build the 1.5D partition collectively.  `slice` is this rank's slice of
/// the global undirected edge list; `local_degrees` must come from
/// compute_local_degrees over the same slices.
Part15d build_15d(sim::RankContext& ctx, const VertexSpace& space,
                  std::span<const graph::Edge> slice,
                  std::span<const uint64_t> local_degrees,
                  DegreeThresholds thresholds);

}  // namespace sunbfs::partition
