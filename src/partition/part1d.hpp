#pragma once

#include <span>

#include "graph/csr.hpp"
#include "partition/space.hpp"
#include "sim/runtime.hpp"

/// Vanilla 1D partitioning (§2.1.1, Figure 1a): each rank owns a contiguous
/// vertex interval and stores the full adjacency of its owned vertices
/// (rows = local indices, values = global neighbor ids).  The baseline the
/// 1.5D method is measured against.
namespace sunbfs::partition {

struct Part1d {
  VertexSpace space;
  graph::Csr adj;  ///< rows: local vertex index, values: global neighbor id
};

/// Build collectively from per-rank slices of the global edge list: each
/// undirected edge is routed to both endpoint owners (one alltoallv).
Part1d build_1d(sim::RankContext& ctx, const VertexSpace& space,
                std::span<const graph::Edge> slice);

}  // namespace sunbfs::partition
