#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "support/check.hpp"

/// Vertex ownership: block distribution of a contiguous id space over ranks.
namespace sunbfs::partition {

/// Owner/local-index arithmetic for vertices [0, total) distributed in
/// contiguous blocks over nranks (rank r owns [begin(r), end(r))).
struct VertexSpace {
  uint64_t total = 0;
  int nranks = 1;

  uint64_t begin(int rank) const {
    return total * uint64_t(rank) / uint64_t(nranks);
  }
  uint64_t end(int rank) const {
    return total * uint64_t(rank + 1) / uint64_t(nranks);
  }
  uint64_t count(int rank) const { return end(rank) - begin(rank); }

  /// Largest block size over all ranks (for sizing gathered frontiers).
  uint64_t max_count() const {
    uint64_t m = 0;
    for (int r = 0; r < nranks; ++r) m = std::max(m, count(r));
    return m;
  }

  int owner(graph::Vertex v) const {
    SUNBFS_ASSERT(v >= 0 && uint64_t(v) < total);
    // Initial guess from proportionality, then adjust (exact for any total).
    int r = int(uint64_t(v) * uint64_t(nranks) / total);
    while (uint64_t(v) < begin(r)) --r;
    while (uint64_t(v) >= end(r)) ++r;
    return r;
  }

  uint64_t to_local([[maybe_unused]] int rank, graph::Vertex v) const {
    SUNBFS_ASSERT(owner(v) == rank);
    return uint64_t(v) - begin(rank);
  }

  graph::Vertex to_global(int rank, uint64_t local) const {
    SUNBFS_ASSERT(local < count(rank));
    return graph::Vertex(begin(rank) + local);
  }
};

/// Cyclic ownership used for EH ids: consecutive ids go to consecutive
/// ranks.  EH ids are assigned in decreasing-degree order, so cyclic dealing
/// spreads the hubs evenly over the mesh — the block-cyclic flavor of 2D
/// partitioning (Yoo et al.) the paper builds on.  Block ownership here
/// would hand rank 0's row and column nearly all EH2EH arcs.
struct CyclicSpace {
  uint64_t total = 0;
  int nranks = 1;

  int owner(graph::Vertex k) const {
    SUNBFS_ASSERT(k >= 0 && uint64_t(k) < total);
    return int(uint64_t(k) % uint64_t(nranks));
  }

  uint64_t count(int rank) const {
    uint64_t p = uint64_t(nranks);
    uint64_t r = uint64_t(rank);
    return total > r ? (total - r - 1) / p + 1 : 0;
  }

  uint64_t max_count() const {
    return (total + uint64_t(nranks) - 1) / uint64_t(nranks);
  }

  uint64_t to_local([[maybe_unused]] int rank, graph::Vertex k) const {
    SUNBFS_ASSERT(owner(k) == rank);
    return uint64_t(k) / uint64_t(nranks);
  }

  graph::Vertex to_global(int rank, uint64_t local) const {
    return graph::Vertex(local * uint64_t(nranks) + uint64_t(rank));
  }
};

}  // namespace sunbfs::partition
