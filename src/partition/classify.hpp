#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"
#include "partition/space.hpp"
#include "sim/runtime.hpp"

/// 3-level degree classification (§4.1): vertices are split into Extremely
/// heavy (E), Heavy (H) and Light (L) by two degree thresholds.  E and H
/// vertices are taken out of the original id space, sorted by degree and
/// given new contiguous "EH ids"; L vertices keep their original ids.
namespace sunbfs::partition {

/// Degree thresholds.  A vertex with degree >= e is E; degree in [h, e) is
/// H; below h is L.  Setting h == e yields |H| = 0 (the paper's degenerate
/// "1D with heavy delegates"); setting h <= 1 yields |L| = 0 (degenerate 2D).
struct DegreeThresholds {
  uint64_t e = 1 << 14;
  uint64_t h = 1 << 9;
};

/// Replicated classification table: identical on every rank.
class EhlTable {
 public:
  EhlTable() = default;
  EhlTable(DegreeThresholds thresholds,
           std::vector<std::pair<uint64_t, graph::Vertex>> eh_by_degree_desc);

  const DegreeThresholds& thresholds() const { return thresholds_; }

  /// Total number of E and H vertices (the EH id space).
  uint64_t num_eh() const { return eh_to_global_.size(); }
  /// EH ids [0, num_e()) are E; [num_e(), num_eh()) are H.
  uint64_t num_e() const { return num_e_; }
  uint64_t num_h() const { return num_eh() - num_e_; }

  bool is_e(uint64_t eh_id) const { return eh_id < num_e_; }

  graph::Vertex eh_to_global(uint64_t eh_id) const {
    return eh_to_global_[eh_id];
  }
  uint64_t eh_degree(uint64_t eh_id) const { return eh_degree_[eh_id]; }

  /// EH id of a global vertex, or kNotEh if the vertex is L.
  static constexpr uint64_t kNotEh = ~uint64_t(0);
  uint64_t eh_of(graph::Vertex v) const {
    auto it = global_to_eh_.find(v);
    return it == global_to_eh_.end() ? kNotEh : it->second;
  }
  bool is_eh(graph::Vertex v) const { return eh_of(v) != kNotEh; }

 private:
  DegreeThresholds thresholds_;
  std::vector<graph::Vertex> eh_to_global_;
  std::vector<uint64_t> eh_degree_;
  std::unordered_map<graph::Vertex, uint64_t> global_to_eh_;
  uint64_t num_e_ = 0;
};

/// Compute the degrees of this rank's owned vertices from distributed edge
/// slices: every rank contributes the endpoints it generated; counts arrive
/// at each endpoint's owner (one alltoallv).  Self loops count twice.
std::vector<uint64_t> compute_local_degrees(sim::RankContext& ctx,
                                            const VertexSpace& space,
                                            std::span<const graph::Edge> slice);

/// Build the replicated EhlTable: each rank nominates its owned vertices
/// with degree >= thresholds.h, the nominations are allgathered, and all
/// ranks deterministically sort them by (degree desc, id asc) to assign EH
/// ids.  Must be called by all ranks collectively.
EhlTable classify_vertices(sim::RankContext& ctx, const VertexSpace& space,
                           std::span<const uint64_t> local_degrees,
                           DegreeThresholds thresholds);

}  // namespace sunbfs::partition
