#include "partition/classify.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sunbfs::partition {

EhlTable::EhlTable(
    DegreeThresholds thresholds,
    std::vector<std::pair<uint64_t, graph::Vertex>> eh_by_degree_desc)
    : thresholds_(thresholds) {
  SUNBFS_CHECK_MSG(thresholds.e >= thresholds.h,
                   "E threshold must be >= H threshold");
  eh_to_global_.reserve(eh_by_degree_desc.size());
  eh_degree_.reserve(eh_by_degree_desc.size());
  global_to_eh_.reserve(eh_by_degree_desc.size());
  for (const auto& [deg, v] : eh_by_degree_desc) {
    SUNBFS_CHECK(deg >= thresholds.h);
    uint64_t id = eh_to_global_.size();
    eh_to_global_.push_back(v);
    eh_degree_.push_back(deg);
    bool inserted = global_to_eh_.emplace(v, id).second;
    SUNBFS_CHECK_MSG(inserted, "duplicate vertex in EH nomination");
    if (deg >= thresholds.e) {
      SUNBFS_CHECK_MSG(num_e_ == id, "E vertices must precede H in the order");
      num_e_ = id + 1;
    }
  }
}

std::vector<uint64_t> compute_local_degrees(
    sim::RankContext& ctx, const VertexSpace& space,
    std::span<const graph::Edge> slice) {
  SUNBFS_CHECK(space.nranks == ctx.nranks());
  // Aggregate counts locally per destination owner, then exchange compact
  // (vertex, count) pairs.
  struct VertexCount {
    graph::Vertex v;
    uint64_t count;
  };
  int p = ctx.nranks();
  std::vector<std::unordered_map<graph::Vertex, uint64_t>> agg(static_cast<size_t>(p));
  for (const graph::Edge& e : slice) {
    agg[size_t(space.owner(e.u))][e.u]++;
    agg[size_t(space.owner(e.v))][e.v]++;
  }
  std::vector<std::vector<VertexCount>> to(static_cast<size_t>(p));
  for (int d = 0; d < p; ++d) {
    to[size_t(d)].reserve(agg[size_t(d)].size());
    for (const auto& [v, c] : agg[size_t(d)])
      to[size_t(d)].push_back(VertexCount{v, c});
  }
  std::vector<VertexCount> got = ctx.world.alltoallv(to);

  std::vector<uint64_t> degrees(space.count(ctx.rank), 0);
  for (const auto& vc : got)
    degrees[space.to_local(ctx.rank, vc.v)] += vc.count;
  return degrees;
}

EhlTable classify_vertices(sim::RankContext& ctx, const VertexSpace& space,
                           std::span<const uint64_t> local_degrees,
                           DegreeThresholds thresholds) {
  SUNBFS_CHECK(local_degrees.size() == space.count(ctx.rank));
  struct Nomination {
    uint64_t degree;
    graph::Vertex v;
  };
  std::vector<Nomination> mine;
  for (uint64_t l = 0; l < local_degrees.size(); ++l)
    if (local_degrees[l] >= thresholds.h)
      mine.push_back(
          Nomination{local_degrees[l], space.to_global(ctx.rank, l)});

  std::vector<Nomination> all =
      ctx.world.allgatherv(std::span<const Nomination>(mine));
  // Deterministic global order: degree descending, id ascending.  Identical
  // on every rank, so EH ids agree everywhere without further communication.
  std::sort(all.begin(), all.end(), [](const Nomination& a, const Nomination& b) {
    if (a.degree != b.degree) return a.degree > b.degree;
    return a.v < b.v;
  });
  std::vector<std::pair<uint64_t, graph::Vertex>> ordered;
  ordered.reserve(all.size());
  for (const auto& n : all) ordered.emplace_back(n.degree, n.v);
  return EhlTable(thresholds, std::move(ordered));
}

}  // namespace sunbfs::partition
