#pragma once

#include <array>
#include <vector>

#include "partition/part15d.hpp"
#include "sim/runtime.hpp"
#include "support/histogram.hpp"

/// Load-balance reporting for the 1.5D partition (§6.2.2, Figure 13): the
/// distribution of per-rank arc counts for each of the six subgraphs.
namespace sunbfs::partition {

struct BalanceReport {
  /// Per subgraph: summary over ranks of stored arc counts.
  std::array<Summary, kSubgraphCount> per_subgraph;
  /// Per subgraph: every rank's arc count (rank-major), for CDF plotting.
  std::array<std::vector<uint64_t>, kSubgraphCount> per_rank_counts;
};

/// Gather every rank's arc counts (collective).  All ranks return the same
/// report.
inline BalanceReport gather_balance(sim::RankContext& ctx,
                                    const Part15d& part) {
  BalanceReport report;
  for (int s = 0; s < kSubgraphCount; ++s) {
    auto counts = ctx.world.allgather(part.arc_counts[size_t(s)]);
    report.per_rank_counts[size_t(s)].assign(counts.begin(), counts.end());
    for (uint64_t c : counts) report.per_subgraph[size_t(s)].add(double(c));
  }
  return report;
}

}  // namespace sunbfs::partition
