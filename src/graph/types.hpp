#pragma once

#include <cstdint>

/// Core graph types shared across the library.
namespace sunbfs::graph {

/// Global vertex identifier.  Signed so that -1 can mark "no parent" /
/// "unvisited", matching the Graph 500 output convention.
using Vertex = int64_t;

inline constexpr Vertex kNoVertex = -1;

/// One undirected edge as produced by the generator.
struct Edge {
  Vertex u = 0;
  Vertex v = 0;

  bool operator==(const Edge&) const = default;
};

}  // namespace sunbfs::graph
