#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "support/random.hpp"

namespace sunbfs {
class ThreadPool;
}

/// Graph 500 synthetic graph generator.
///
/// R-MAT / Kronecker generator with the benchmark-specified parameters
/// A=0.57, B=C=0.19, D=0.05 and edge factor 16 (Chakrabarti et al. 2004;
/// Graph 500 spec 2.0).  Vertex labels are scrambled with a seeded bijective
/// permutation so vertex id carries no degree information, as required by
/// the benchmark.  Generation is deterministic per (config, edge index),
/// which lets every rank generate exactly its slice of the edge list in
/// parallel with no communication.
namespace sunbfs::graph {

/// Problem configuration following Graph 500 terminology.
struct Graph500Config {
  int scale = 16;          ///< log2 of the vertex count
  int edge_factor = 16;    ///< edges per vertex
  uint64_t seed = 1;       ///< generator seed

  // R-MAT quadrant probabilities (spec values).
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;

  uint64_t num_vertices() const { return uint64_t(1) << scale; }
  uint64_t num_edges() const { return num_vertices() * uint64_t(edge_factor); }
};

/// Seeded bijective permutation over [0, 2^scale) used to scramble vertex
/// labels: a composition of odd-multiplier affine maps and xorshifts on the
/// scale-bit label (each step is invertible mod 2^scale).  The inverse is
/// provided for tests.
class VertexScrambler {
 public:
  VertexScrambler(int scale, uint64_t seed);

  Vertex scramble(Vertex v) const;
  Vertex unscramble(Vertex v) const;

 private:
  uint64_t mask_ = 0;
  int shift_ = 1;
  uint64_t mul_a_ = 1, add_b_ = 0, mul_c_ = 1;
  uint64_t inv_a_ = 1, inv_c_ = 1;
};

/// Generate edges [begin, end) of the global edge list (end exclusive,
/// indices in [0, config.num_edges())).  Each edge is derived only from
/// (config.seed, edge index), so disjoint ranges can be generated
/// concurrently and their concatenation is the canonical edge list.  When
/// `pool` is given the range is filled by its workers (bit-identical output
/// at any thread count).
std::vector<Edge> generate_rmat_range(const Graph500Config& config,
                                      uint64_t begin, uint64_t end,
                                      ThreadPool* pool = nullptr);

/// Convenience: the whole edge list (small scales only).
std::vector<Edge> generate_rmat(const Graph500Config& config,
                                ThreadPool* pool = nullptr);

}  // namespace sunbfs::graph
