#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

/// Compressed sparse row adjacency storage.
///
/// Used for node-local subgraphs: row ids are *local* indices in
/// [0, num_rows); column values are whatever vertex naming the caller uses
/// (local or global), the structure does not interpret them.
namespace sunbfs::graph {

/// Immutable CSR built from (row, value) pairs.
class Csr {
 public:
  Csr() = default;

  /// Build from directed arcs: for each i, an arc row[i] -> value[i].
  /// Duplicate arcs and self loops are kept (Graph 500 inputs contain them;
  /// algorithms must tolerate them).
  static Csr from_arcs(uint64_t num_rows, std::span<const Vertex> rows,
                       std::span<const Vertex> values);

  /// Build a symmetric adjacency from undirected edges over vertices
  /// [0, num_vertices): each edge contributes arcs in both directions.
  static Csr from_undirected(uint64_t num_vertices,
                             std::span<const Edge> edges);

  uint64_t num_rows() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  uint64_t num_arcs() const { return values_.empty() ? 0 : values_.size(); }

  uint64_t degree(uint64_t row) const {
    return offsets_[row + 1] - offsets_[row];
  }

  std::span<const Vertex> neighbors(uint64_t row) const {
    return std::span<const Vertex>(values_.data() + offsets_[row],
                                   degree(row));
  }

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<Vertex>& values() const { return values_; }

 private:
  std::vector<uint64_t> offsets_;  // num_rows + 1
  std::vector<Vertex> values_;     // num_arcs
};

/// Degree of every vertex in [0, num_vertices) counting both endpoints of
/// each undirected edge (self loops count twice, per adjacency-matrix
/// convention).
std::vector<uint64_t> undirected_degrees(uint64_t num_vertices,
                                         std::span<const Edge> edges);

}  // namespace sunbfs::graph
