#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

/// Compressed sparse row adjacency storage.
///
/// Used for node-local subgraphs: row ids are *local* indices in
/// [0, num_rows); column values are whatever vertex naming the caller uses
/// (local or global), the structure does not interpret them.
namespace sunbfs::graph {

/// CSR built from (row, value) pairs.
///
/// Rows carry an independent live end (`ends_`), so a row's live arcs
/// occupy [offsets_[r], ends_[r]) and [ends_[r], offsets_[r+1]) is slack.
/// Freshly built CSRs have zero slack and behave exactly like the
/// historical immutable layout; the mutation layer (src/mutate) grows
/// slack through erase_arcs/compact and fills it through insert_arc, so
/// engines that only use degree()/neighbors()/num_arcs() are oblivious
/// to in-place patches.
class Csr {
 public:
  Csr() = default;

  /// Build from directed arcs: for each i, an arc row[i] -> value[i].
  /// Duplicate arcs and self loops are kept (Graph 500 inputs contain them;
  /// algorithms must tolerate them).
  static Csr from_arcs(uint64_t num_rows, std::span<const Vertex> rows,
                       std::span<const Vertex> values);

  /// Build a symmetric adjacency from undirected edges over vertices
  /// [0, num_vertices): each edge contributes arcs in both directions.
  static Csr from_undirected(uint64_t num_vertices,
                             std::span<const Edge> edges);

  uint64_t num_rows() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  /// Live arcs (excludes slack reserved by compact()).
  uint64_t num_arcs() const { return live_arcs_; }
  /// Physical arc slots, live + slack.  Sizing staging pools by capacity
  /// instead of num_arcs() keeps them alloc-free across in-place inserts.
  uint64_t arc_capacity() const { return values_.size(); }
  /// Reserved-but-unused arc slots across all rows.
  uint64_t slack_arcs() const { return values_.size() - live_arcs_; }

  uint64_t degree(uint64_t row) const {
    return ends_[row] - offsets_[row];
  }

  std::span<const Vertex> neighbors(uint64_t row) const {
    return std::span<const Vertex>(values_.data() + offsets_[row],
                                   degree(row));
  }

  /// Append `value` to `row`'s live range.  Returns false (no change) when
  /// the row has no slack left; the caller then compact()s and retries.
  bool insert_arc(uint64_t row, Vertex value);

  /// Remove every copy of `value` from `row` (tombstone semantics: deleting
  /// an edge kills all its duplicates).  Order of survivors is permuted
  /// (swap-with-last), which no consumer observes — engines are
  /// neighbor-order independent by the determinism contract.  Returns the
  /// number of arcs removed (0 == miss).
  uint64_t erase_arcs(uint64_t row, Vertex value);

  /// Rebuild in place, giving every row `max(slack_min, degree/4)` spare
  /// slots.  Live adjacency (as a per-row multiset) is unchanged.
  void compact(uint64_t slack_min = 4);

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<Vertex>& values() const { return values_; }

 private:
  std::vector<uint64_t> offsets_;  // num_rows + 1: physical row starts
  std::vector<uint64_t> ends_;     // num_rows: live end per row
  std::vector<Vertex> values_;     // arc_capacity() slots
  uint64_t live_arcs_ = 0;
};

/// Degree of every vertex in [0, num_vertices) counting both endpoints of
/// each undirected edge (self loops count twice, per adjacency-matrix
/// convention).
std::vector<uint64_t> undirected_degrees(uint64_t num_vertices,
                                         std::span<const Edge> edges);

}  // namespace sunbfs::graph
