#include "graph/validate.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <sstream>

#include "graph/csr.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace sunbfs::graph {

std::vector<Vertex> reference_bfs(uint64_t num_vertices,
                                  std::span<const Edge> edges, Vertex root) {
  SUNBFS_CHECK(root >= 0 && uint64_t(root) < num_vertices);
  Csr adj = Csr::from_undirected(num_vertices, edges);
  std::vector<Vertex> parent(num_vertices, kNoVertex);
  parent[size_t(root)] = root;
  std::deque<Vertex> frontier = {root};
  while (!frontier.empty()) {
    Vertex u = frontier.front();
    frontier.pop_front();
    for (Vertex v : adj.neighbors(uint64_t(u))) {
      if (parent[size_t(v)] == kNoVertex) {
        parent[size_t(v)] = u;
        frontier.push_back(v);
      }
    }
  }
  return parent;
}

std::vector<int64_t> levels_from_parents(uint64_t num_vertices,
                                         std::span<const Vertex> parent,
                                         Vertex root) {
  SUNBFS_CHECK(parent.size() == num_vertices);
  std::vector<int64_t> level(num_vertices, -1);
  level[size_t(root)] = 0;
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (parent[v] == kNoVertex || level[v] >= 0) continue;
    // Walk up to a vertex with known level, then unwind.
    std::vector<uint64_t> path;
    uint64_t cur = v;
    while (level[cur] < 0) {
      path.push_back(cur);
      SUNBFS_CHECK_MSG(path.size() <= num_vertices,
                       "cycle in parent pointers");
      Vertex p = parent[cur];
      SUNBFS_CHECK_MSG(p >= 0 && uint64_t(p) < num_vertices,
                       "parent out of range");
      cur = uint64_t(p);
    }
    int64_t base = level[cur];
    for (auto it = path.rbegin(); it != path.rend(); ++it)
      level[*it] = ++base;
  }
  return level;
}

ValidationResult validate_bfs(uint64_t num_vertices,
                              std::span<const Edge> edges, Vertex root,
                              std::span<const Vertex> parent,
                              ThreadPool* pool) {
  ValidationResult res;
  const bool threaded = pool && pool->size() > 1;
  // Smallest index in [0, n) where ok(i) is false, or n when all pass.
  // Hunting for the *minimum* failing index keeps the reported violation
  // identical at any thread count.
  auto first_bad = [&](uint64_t n, auto&& ok) -> uint64_t {
    std::atomic<uint64_t> bad{n};
    auto scan = [&](uint64_t lo, uint64_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        if (i >= bad.load(std::memory_order_relaxed)) return;
        if (!ok(i)) {
          uint64_t cur = bad.load(std::memory_order_relaxed);
          while (i < cur && !bad.compare_exchange_weak(cur, i)) {
          }
          return;
        }
      }
    };
    if (threaded)
      pool->parallel_for(0, n, [&](size_t lo, size_t hi) { scan(lo, hi); });
    else
      scan(0, n);
    return bad.load();
  };
  // Count of indices in [0, n) satisfying pred (per-chunk partial sums).
  auto par_count = [&](uint64_t n, auto&& pred) -> uint64_t {
    if (!threaded) {
      uint64_t c = 0;
      for (uint64_t i = 0; i < n; ++i)
        if (pred(i)) ++c;
      return c;
    }
    std::atomic<uint64_t> total{0};
    pool->parallel_for(0, n, [&](size_t lo, size_t hi) {
      uint64_t c = 0;
      for (uint64_t i = lo; i < hi; ++i)
        if (pred(i)) ++c;
      total.fetch_add(c, std::memory_order_relaxed);
    });
    return total.load();
  };
  auto fail = [&](const std::string& why) {
    res.ok = false;
    res.error = why;
    return res;
  };
  if (parent.size() != num_vertices) return fail("parent array size mismatch");
  if (root < 0 || uint64_t(root) >= num_vertices)
    return fail("root out of range");
  if (parent[size_t(root)] != root) return fail("parent[root] != root");

  // Rule 2: tree structure (level computation detects cycles / bad parents).
  std::vector<int64_t> level;
  try {
    level = levels_from_parents(num_vertices, parent, root);
  } catch (const CheckError& e) {
    return fail(e.what());
  }
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (parent[v] != kNoVertex && level[v] < 0)
      return fail("vertex with parent not connected to root");
    if (parent[v] == kNoVertex && level[v] >= 0 && Vertex(v) != root)
      return fail("reached vertex without parent");
  }

  // Rule 3: every tree edge must exist in the input.  Collect tree edges as
  // sorted (min,max) pairs and probe a sorted copy of the input edges.
  std::vector<std::pair<Vertex, Vertex>> input_pairs;
  input_pairs.reserve(edges.size());
  for (const Edge& e : edges)
    input_pairs.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
  std::sort(input_pairs.begin(), input_pairs.end());
  uint64_t bad_v = first_bad(num_vertices, [&](uint64_t v) {
    if (parent[v] == kNoVertex || Vertex(v) == root) return true;
    std::pair<Vertex, Vertex> key{std::min(Vertex(v), parent[v]),
                                  std::max(Vertex(v), parent[v])};
    if (!std::binary_search(input_pairs.begin(), input_pairs.end(), key))
      return false;
    return level[v] == level[size_t(parent[v])] + 1;
  });
  if (bad_v < num_vertices) {
    // Re-derive which rule the first offender broke (serial, one vertex).
    std::pair<Vertex, Vertex> key{std::min(Vertex(bad_v), parent[bad_v]),
                                  std::max(Vertex(bad_v), parent[bad_v])};
    if (!std::binary_search(input_pairs.begin(), input_pairs.end(), key)) {
      std::ostringstream os;
      os << "tree edge (" << bad_v << ", " << parent[bad_v]
         << ") not in graph";
      return fail(os.str());
    }
    return fail("tree edge does not connect adjacent levels");
  }

  // Rule 4 + 5: level difference over input edges; component spanning;
  // TEPS numerator.
  uint64_t bad_e = first_bad(edges.size(), [&](uint64_t i) {
    const Edge& e = edges[i];
    if (e.u < 0 || uint64_t(e.u) >= num_vertices || e.v < 0 ||
        uint64_t(e.v) >= num_vertices)
      return false;
    bool ru = level[size_t(e.u)] >= 0;
    bool rv = level[size_t(e.v)] >= 0;
    if (ru != rv) return false;
    if (ru && rv) {
      int64_t d = level[size_t(e.u)] - level[size_t(e.v)];
      if (d < -1 || d > 1) return false;
    }
    return true;
  });
  if (bad_e < edges.size()) {
    const Edge& e = edges[bad_e];
    if (e.u < 0 || uint64_t(e.u) >= num_vertices || e.v < 0 ||
        uint64_t(e.v) >= num_vertices)
      return fail("edge endpoint out of range");
    if ((level[size_t(e.u)] >= 0) != (level[size_t(e.v)] >= 0))
      return fail("edge connects reached and unreached vertices");
    return fail("edge spans more than one level");
  }
  res.edges_in_component = par_count(edges.size(), [&](uint64_t i) {
    const Edge& e = edges[i];
    return level[size_t(e.u)] >= 0 && level[size_t(e.v)] >= 0 && e.u != e.v;
  });
  res.reached =
      par_count(num_vertices, [&](uint64_t v) { return level[v] >= 0; });

  res.ok = true;
  return res;
}

}  // namespace sunbfs::graph
