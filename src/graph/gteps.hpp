#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "support/check.hpp"

/// Graph 500 performance accounting and degree-distribution reporting.
namespace sunbfs::graph {

/// One timed BFS run.
struct BfsRunSample {
  double seconds = 0;
  uint64_t traversed_edges = 0;  ///< validation's edges_in_component

  double teps() const { return seconds > 0 ? traversed_edges / seconds : 0; }
};

/// Graph 500 reports the harmonic mean of TEPS over the search keys.
inline double harmonic_mean_teps(std::span<const BfsRunSample> runs) {
  SUNBFS_CHECK(!runs.empty());
  double denom = 0;
  for (const auto& r : runs) {
    SUNBFS_CHECK(r.teps() > 0);
    denom += 1.0 / r.teps();
  }
  return double(runs.size()) / denom;
}

inline double gteps(double teps) { return teps / 1e9; }

/// Exact degree -> vertex-count distribution (Figure 2's scatter).  Only for
/// scales where the degree array fits in memory.
inline std::map<uint64_t, uint64_t> degree_distribution(
    std::span<const uint64_t> degrees) {
  std::map<uint64_t, uint64_t> dist;
  for (uint64_t d : degrees) dist[d]++;
  return dist;
}

}  // namespace sunbfs::graph
