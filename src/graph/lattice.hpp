#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace sunbfs {
class ThreadPool;
}

/// Deterministic high-diameter graph generators: path, 2D grid and 2D torus.
///
/// The R-MAT generator produces the benchmark's low-diameter inputs; the
/// sync-vs-async crossover suite (bench_async_crossover, docs/PERF.md) needs
/// the opposite regime — graphs whose diameter dwarfs the rank count, where
/// per-level barriers dominate a level-synchronous traversal.  These
/// lattices are that regime: a path of n vertices has diameter n - 1, an
/// r x c grid has diameter r + c - 2.
///
/// Same generation contract as R-MAT (graph/rmat.hpp): edge i is a pure
/// function of (config, i), so every rank generates exactly its slice of
/// the global edge list independently and the concatenation of disjoint
/// ranges is the canonical list.  No scrambling — the lattice ids ARE the
/// structure, and BFS correctness oracles never depend on labeling.
namespace sunbfs::graph {

struct LatticeConfig {
  enum class Kind { Path, Grid, Torus };

  Kind kind = Kind::Path;
  /// Grid shape; a path is a 1 x n grid.  Vertex (r, c) has id r*cols + c.
  uint64_t rows = 1;
  uint64_t cols = 2;

  static LatticeConfig path(uint64_t n) {
    return LatticeConfig{Kind::Path, 1, n};
  }
  static LatticeConfig grid(uint64_t rows, uint64_t cols) {
    return LatticeConfig{Kind::Grid, rows, cols};
  }
  static LatticeConfig torus(uint64_t rows, uint64_t cols) {
    return LatticeConfig{Kind::Torus, rows, cols};
  }

  uint64_t num_vertices() const { return rows * cols; }
  /// Edge-list length: horizontal + vertical lattice edges, plus the
  /// wrap-around edges for the torus.
  uint64_t num_edges() const;
  /// Graph diameter (torus: exact for the even wrap lengths used here).
  uint64_t diameter() const;

  /// Edge `index` of the canonical list, index in [0, num_edges()).
  Edge edge(uint64_t index) const;
};

/// Generate edges [begin, end) of the canonical edge list.  When `pool` is
/// given the range is filled by its workers (bit-identical output at any
/// thread count).
std::vector<Edge> generate_lattice_range(const LatticeConfig& config,
                                         uint64_t begin, uint64_t end,
                                         ThreadPool* pool = nullptr);

/// Convenience: the whole edge list.
std::vector<Edge> generate_lattice(const LatticeConfig& config,
                                   ThreadPool* pool = nullptr);

}  // namespace sunbfs::graph
