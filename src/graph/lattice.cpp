#include "graph/lattice.hpp"

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace sunbfs::graph {

namespace {

/// Torus wrap edges exist only along dimensions of length >= 3: length 1
/// would wrap to a self loop and length 2 would duplicate the lattice edge.
uint64_t wrap_rows(const LatticeConfig& c) {
  return c.kind == LatticeConfig::Kind::Torus && c.cols >= 3 ? c.rows : 0;
}
uint64_t wrap_cols(const LatticeConfig& c) {
  return c.kind == LatticeConfig::Kind::Torus && c.rows >= 3 ? c.cols : 0;
}

}  // namespace

uint64_t LatticeConfig::num_edges() const {
  SUNBFS_CHECK(rows >= 1 && cols >= 1);
  return rows * (cols - 1) + (rows - 1) * cols + wrap_rows(*this) +
         wrap_cols(*this);
}

uint64_t LatticeConfig::diameter() const {
  uint64_t h = kind == Kind::Torus && cols >= 3 ? cols / 2 : cols - 1;
  uint64_t v = kind == Kind::Torus && rows >= 3 ? rows / 2 : rows - 1;
  return h + v;
}

Edge LatticeConfig::edge(uint64_t index) const {
  const uint64_t horizontal = rows * (cols - 1);
  const uint64_t vertical = (rows - 1) * cols;
  if (index < horizontal) {
    uint64_t r = index / (cols - 1), c = index % (cols - 1);
    return Edge{Vertex(r * cols + c), Vertex(r * cols + c + 1)};
  }
  index -= horizontal;
  if (index < vertical) {
    uint64_t r = index / cols, c = index % cols;
    return Edge{Vertex(r * cols + c), Vertex((r + 1) * cols + c)};
  }
  index -= vertical;
  if (index < wrap_rows(*this))
    return Edge{Vertex(index * cols + cols - 1), Vertex(index * cols)};
  index -= wrap_rows(*this);
  SUNBFS_CHECK(index < wrap_cols(*this));
  return Edge{Vertex((rows - 1) * cols + index), Vertex(index)};
}

std::vector<Edge> generate_lattice_range(const LatticeConfig& config,
                                         uint64_t begin, uint64_t end,
                                         ThreadPool* pool) {
  SUNBFS_CHECK(begin <= end && end <= config.num_edges());
  std::vector<Edge> out(end - begin);
  auto fill = [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) out[i] = config.edge(begin + i);
  };
  if (pool != nullptr && out.size() > 1)
    pool->parallel_for(0, out.size(), fill);
  else
    fill(0, out.size());
  return out;
}

std::vector<Edge> generate_lattice(const LatticeConfig& config,
                                   ThreadPool* pool) {
  return generate_lattice_range(config, 0, config.num_edges(), pool);
}

}  // namespace sunbfs::graph
