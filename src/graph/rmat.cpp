#include "graph/rmat.hpp"

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace sunbfs::graph {

namespace {
/// Multiplicative inverse of an odd 64-bit integer mod 2^64 (Newton).
uint64_t odd_inverse(uint64_t a) {
  uint64_t x = a;  // 3-bit correct seed
  for (int i = 0; i < 5; ++i) x *= 2 - a * x;
  return x;
}
}  // namespace

VertexScrambler::VertexScrambler(int scale, uint64_t seed) {
  SUNBFS_CHECK(scale >= 1 && scale <= 62);
  mask_ = (uint64_t(1) << scale) - 1;
  shift_ = scale > 2 ? scale / 2 : 1;
  SplitMix64 sm(seed ^ 0x5CA4B1E5D00DF00Dull);
  mul_a_ = (sm.next() | 1) & mask_;
  add_b_ = sm.next() & mask_;
  mul_c_ = (sm.next() | 1) & mask_;
  inv_a_ = odd_inverse(mul_a_) & mask_;
  inv_c_ = odd_inverse(mul_c_) & mask_;
}

Vertex VertexScrambler::scramble(Vertex v) const {
  // Composition of bijections on scale-bit integers: odd multiply, xorshift,
  // add, xorshift, odd multiply.  Acts like a hash finalizer restricted to
  // the vertex domain, destroying the correlation between R-MAT bit pattern
  // and vertex id, as the Graph 500 spec requires.
  uint64_t x = uint64_t(v) & mask_;
  x = (x * mul_a_) & mask_;
  x ^= x >> shift_;
  x = (x + add_b_) & mask_;
  x ^= x >> shift_;
  x = (x * mul_c_) & mask_;
  return Vertex(x);
}

Vertex VertexScrambler::unscramble(Vertex v) const {
  auto un_xorshift = [&](uint64_t x) {
    // Invert x ^= x >> shift_ over at most 64/shift_ steps.
    uint64_t y = x;
    for (int s = shift_; s < 64; s += shift_) y = x ^ (y >> shift_);
    return y & mask_;
  };
  uint64_t x = uint64_t(v) & mask_;
  x = (x * inv_c_) & mask_;
  x = un_xorshift(x);
  x = (x - add_b_) & mask_;
  x = un_xorshift(x);
  x = (x * inv_a_) & mask_;
  return Vertex(x);
}

std::vector<Edge> generate_rmat_range(const Graph500Config& config,
                                      uint64_t begin, uint64_t end,
                                      ThreadPool* pool) {
  SUNBFS_CHECK(begin <= end && end <= config.num_edges());
  VertexScrambler scrambler(config.scale, config.seed);
  std::vector<Edge> edges(end - begin);
  const double ab = config.a + config.b;
  const double abc = ab + config.c;
  // Each edge is derived only from (seed, edge index), so any sub-range can
  // be filled by any worker: the result is identical at every thread count.
  auto fill = [&](uint64_t lo, uint64_t hi) {
    for (uint64_t e = lo; e < hi; ++e) {
      // Independent stream per edge index: reproducible and order-free, so
      // any rank can generate exactly its slice with no communication.
      Xoshiro256StarStar rng(
          SplitMix64::mix(config.seed * 0x9E3779B97F4A7C15ull + e));
      uint64_t u = 0, v = 0;
      for (int level = 0; level < config.scale; ++level) {
        double r = rng.next_double();
        uint64_t ubit = 0, vbit = 0;
        if (r < config.a) {
          // quadrant A: (0,0)
        } else if (r < ab) {
          vbit = 1;  // B: (0,1)
        } else if (r < abc) {
          ubit = 1;  // C: (1,0)
        } else {
          ubit = 1;  // D: (1,1)
          vbit = 1;
        }
        u = (u << 1) | ubit;
        v = (v << 1) | vbit;
      }
      edges[e - begin] =
          Edge{scrambler.scramble(Vertex(u)), scrambler.scramble(Vertex(v))};
    }
  };
  if (pool && pool->size() > 1) {
    pool->parallel_for(begin, end,
                       [&](size_t lo, size_t hi) { fill(lo, hi); });
  } else {
    fill(begin, end);
  }
  return edges;
}

std::vector<Edge> generate_rmat(const Graph500Config& config,
                                ThreadPool* pool) {
  return generate_rmat_range(config, 0, config.num_edges(), pool);
}

}  // namespace sunbfs::graph
