#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace sunbfs {
class ThreadPool;
}

/// Graph 500 BFS output validation (specification 2.0, kernel 2) and a
/// serial reference BFS used by the test suite as ground truth.
namespace sunbfs::graph {

/// Outcome of validating one BFS run.
struct ValidationResult {
  bool ok = false;
  std::string error;          ///< empty when ok
  uint64_t reached = 0;       ///< vertices in the traversed component
  uint64_t edges_in_component = 0;  ///< input edges with both ends reached,
                                    ///< self loops excluded (TEPS numerator)
};

/// Validate `parent` as a BFS tree of the undirected graph `edges` rooted at
/// `root`, per the Graph 500 rules:
///   1. parent[root] == root;
///   2. the parent pointers form a tree (no cycles) rooted at root;
///   3. every tree edge (v, parent[v]) exists in the input edge list;
///   4. BFS levels of edge endpoints differ by at most one, and a reached
///      vertex never neighbors an unreached one (the tree spans the whole
///      connected component of root);
///   5. exactly the component of root is reached (parent[v] == -1 elsewhere).
/// When `pool` is given the per-vertex and per-edge rule scans run on its
/// workers; the reported verdict (including which violation is named) is
/// identical at any thread count.
ValidationResult validate_bfs(uint64_t num_vertices,
                              std::span<const Edge> edges, Vertex root,
                              std::span<const Vertex> parent,
                              ThreadPool* pool = nullptr);

/// Serial reference BFS.  Returns the parent array (parent[root] == root,
/// -1 for unreachable vertices).  Deterministic: smallest-id parent wins.
std::vector<Vertex> reference_bfs(uint64_t num_vertices,
                                  std::span<const Edge> edges, Vertex root);

/// BFS levels from a parent array (root at level 0, unreachable = -1).
/// Throws CheckError if the parent pointers contain a cycle.
std::vector<int64_t> levels_from_parents(uint64_t num_vertices,
                                         std::span<const Vertex> parent,
                                         Vertex root);

}  // namespace sunbfs::graph
