#include "graph/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace sunbfs::graph {

namespace {
uint64_t scan_max_vertex(const std::vector<Edge>& edges) {
  Vertex mx = -1;
  for (const Edge& e : edges) {
    SUNBFS_CHECK_MSG(e.u >= 0 && e.v >= 0, "negative vertex id");
    mx = std::max(mx, std::max(e.u, e.v));
  }
  return uint64_t(mx + 1);
}
}  // namespace

std::vector<Edge> read_edge_list_text(const std::string& path,
                                      uint64_t* num_vertices) {
  std::ifstream in(path);
  SUNBFS_CHECK_MSG(in.good(), "cannot open " + path);
  std::vector<Edge> edges;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream ls(line);
    Edge e;
    SUNBFS_CHECK_MSG(bool(ls >> e.u >> e.v),
                     path + ":" + std::to_string(lineno) + ": expected 'u v'");
    edges.push_back(e);
  }
  if (num_vertices) *num_vertices = scan_max_vertex(edges);
  return edges;
}

void write_edge_list_text(const std::string& path,
                          const std::vector<Edge>& edges) {
  std::ofstream out(path);
  SUNBFS_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  out << "# sunbfs edge list: " << edges.size() << " undirected edges\n";
  for (const Edge& e : edges) out << e.u << ' ' << e.v << '\n';
  SUNBFS_CHECK_MSG(out.good(), "write failed: " + path);
}

std::vector<Edge> read_edge_list_binary(const std::string& path,
                                        uint64_t* num_vertices) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  SUNBFS_CHECK_MSG(in.good(), "cannot open " + path);
  std::streamsize bytes = in.tellg();
  SUNBFS_CHECK_MSG(bytes % std::streamsize(sizeof(Edge)) == 0,
                   path + ": size is not a whole number of edges");
  in.seekg(0);
  std::vector<Edge> edges(size_t(bytes) / sizeof(Edge));
  in.read(reinterpret_cast<char*>(edges.data()), bytes);
  SUNBFS_CHECK_MSG(in.good(), "read failed: " + path);
  if (num_vertices) *num_vertices = scan_max_vertex(edges);
  return edges;
}

void write_edge_list_binary(const std::string& path,
                            const std::vector<Edge>& edges) {
  std::ofstream out(path, std::ios::binary);
  SUNBFS_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  out.write(reinterpret_cast<const char*>(edges.data()),
            std::streamsize(edges.size() * sizeof(Edge)));
  SUNBFS_CHECK_MSG(out.good(), "write failed: " + path);
}

}  // namespace sunbfs::graph
