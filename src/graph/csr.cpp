#include "graph/csr.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/prefix.hpp"

namespace sunbfs::graph {

Csr Csr::from_arcs(uint64_t num_rows, std::span<const Vertex> rows,
                   std::span<const Vertex> values) {
  SUNBFS_CHECK(rows.size() == values.size());
  Csr csr;
  std::vector<uint64_t> counts(num_rows, 0);
  for (Vertex r : rows) {
    SUNBFS_ASSERT(r >= 0 && uint64_t(r) < num_rows);
    counts[size_t(r)]++;
  }
  csr.offsets_ = offsets_from_counts(counts);
  csr.values_.resize(rows.size());
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (size_t i = 0; i < rows.size(); ++i)
    csr.values_[cursor[size_t(rows[i])]++] = values[i];
  csr.ends_.assign(csr.offsets_.begin() + 1, csr.offsets_.end());
  csr.live_arcs_ = csr.values_.size();
  return csr;
}

Csr Csr::from_undirected(uint64_t num_vertices, std::span<const Edge> edges) {
  Csr csr;
  std::vector<uint64_t> counts(num_vertices, 0);
  for (const Edge& e : edges) {
    SUNBFS_ASSERT(uint64_t(e.u) < num_vertices && uint64_t(e.v) < num_vertices);
    counts[size_t(e.u)]++;
    counts[size_t(e.v)]++;
  }
  csr.offsets_ = offsets_from_counts(counts);
  csr.values_.resize(2 * edges.size());
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges) {
    csr.values_[cursor[size_t(e.u)]++] = e.v;
    csr.values_[cursor[size_t(e.v)]++] = e.u;
  }
  csr.ends_.assign(csr.offsets_.begin() + 1, csr.offsets_.end());
  csr.live_arcs_ = csr.values_.size();
  return csr;
}

bool Csr::insert_arc(uint64_t row, Vertex value) {
  SUNBFS_ASSERT(row < num_rows());
  if (ends_[row] == offsets_[row + 1]) return false;
  values_[ends_[row]++] = value;
  ++live_arcs_;
  return true;
}

uint64_t Csr::erase_arcs(uint64_t row, Vertex value) {
  SUNBFS_ASSERT(row < num_rows());
  uint64_t removed = 0;
  uint64_t i = offsets_[row];
  while (i < ends_[row]) {
    if (values_[i] == value) {
      values_[i] = values_[ends_[row] - 1];
      --ends_[row];
      ++removed;
    } else {
      ++i;
    }
  }
  live_arcs_ -= removed;
  return removed;
}

void Csr::compact(uint64_t slack_min) {
  const uint64_t rows = num_rows();
  std::vector<uint64_t> counts(rows, 0);
  for (uint64_t r = 0; r < rows; ++r)
    counts[r] = degree(r) + std::max<uint64_t>(slack_min, degree(r) / 4);
  std::vector<uint64_t> new_offsets = offsets_from_counts(counts);
  std::vector<Vertex> new_values(new_offsets.back());
  std::vector<uint64_t> new_ends(rows);
  for (uint64_t r = 0; r < rows; ++r) {
    const uint64_t deg = degree(r);
    std::copy_n(values_.data() + offsets_[r], deg,
                new_values.data() + new_offsets[r]);
    new_ends[r] = new_offsets[r] + deg;
  }
  offsets_ = std::move(new_offsets);
  values_ = std::move(new_values);
  ends_ = std::move(new_ends);
}

std::vector<uint64_t> undirected_degrees(uint64_t num_vertices,
                                         std::span<const Edge> edges) {
  std::vector<uint64_t> deg(num_vertices, 0);
  for (const Edge& e : edges) {
    SUNBFS_CHECK(e.u >= 0 && uint64_t(e.u) < num_vertices);
    SUNBFS_CHECK(e.v >= 0 && uint64_t(e.v) < num_vertices);
    deg[size_t(e.u)]++;
    deg[size_t(e.v)]++;
  }
  return deg;
}

}  // namespace sunbfs::graph
