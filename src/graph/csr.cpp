#include "graph/csr.hpp"

#include "support/check.hpp"
#include "support/prefix.hpp"

namespace sunbfs::graph {

Csr Csr::from_arcs(uint64_t num_rows, std::span<const Vertex> rows,
                   std::span<const Vertex> values) {
  SUNBFS_CHECK(rows.size() == values.size());
  Csr csr;
  std::vector<uint64_t> counts(num_rows, 0);
  for (Vertex r : rows) {
    SUNBFS_ASSERT(r >= 0 && uint64_t(r) < num_rows);
    counts[size_t(r)]++;
  }
  csr.offsets_ = offsets_from_counts(counts);
  csr.values_.resize(rows.size());
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (size_t i = 0; i < rows.size(); ++i)
    csr.values_[cursor[size_t(rows[i])]++] = values[i];
  return csr;
}

Csr Csr::from_undirected(uint64_t num_vertices, std::span<const Edge> edges) {
  Csr csr;
  std::vector<uint64_t> counts(num_vertices, 0);
  for (const Edge& e : edges) {
    SUNBFS_ASSERT(uint64_t(e.u) < num_vertices && uint64_t(e.v) < num_vertices);
    counts[size_t(e.u)]++;
    counts[size_t(e.v)]++;
  }
  csr.offsets_ = offsets_from_counts(counts);
  csr.values_.resize(2 * edges.size());
  std::vector<uint64_t> cursor(csr.offsets_.begin(), csr.offsets_.end() - 1);
  for (const Edge& e : edges) {
    csr.values_[cursor[size_t(e.u)]++] = e.v;
    csr.values_[cursor[size_t(e.v)]++] = e.u;
  }
  return csr;
}

std::vector<uint64_t> undirected_degrees(uint64_t num_vertices,
                                         std::span<const Edge> edges) {
  std::vector<uint64_t> deg(num_vertices, 0);
  for (const Edge& e : edges) {
    SUNBFS_CHECK(e.u >= 0 && uint64_t(e.u) < num_vertices);
    SUNBFS_CHECK(e.v >= 0 && uint64_t(e.v) < num_vertices);
    deg[size_t(e.u)]++;
    deg[size_t(e.v)]++;
  }
  return deg;
}

}  // namespace sunbfs::graph
