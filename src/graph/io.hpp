#pragma once

#include <string>
#include <vector>

#include "graph/types.hpp"

/// Edge-list file I/O.
///
/// §8 expects the partitioning "to work with those real-world graphs"
/// (social networks, web graphs).  These helpers load and store undirected
/// edge lists so the pipeline can run on external data: a text format (one
/// "u v" pair per line, '#' comments — the common SNAP layout) and a raw
/// binary format (little-endian int64 pairs) for large inputs.
namespace sunbfs::graph {

/// Parse a text edge list.  Returns the edges and sets `num_vertices` to
/// max id + 1.  Throws CheckError on malformed input.
std::vector<Edge> read_edge_list_text(const std::string& path,
                                      uint64_t* num_vertices);

/// Write a text edge list ("u v" per line).
void write_edge_list_text(const std::string& path,
                          const std::vector<Edge>& edges);

/// Raw binary (pairs of little-endian int64).
std::vector<Edge> read_edge_list_binary(const std::string& path,
                                        uint64_t* num_vertices);
void write_edge_list_binary(const std::string& path,
                            const std::vector<Edge>& edges);

}  // namespace sunbfs::graph
