#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/json.hpp"

#if SUNBFS_OBS_TRACE_ENABLED

namespace sunbfs::obs {

namespace {
thread_local TraceBuffer* tls_buffer = nullptr;
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  std::lock_guard<std::mutex> lk(mu_);
  buffers_.clear();
  enabled_ = true;
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::disable() {
  std::lock_guard<std::mutex> lk(mu_);
  enabled_ = false;
}

TraceBuffer* Tracer::attach_thread(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!enabled_) {
    tls_buffer = nullptr;
    return nullptr;
  }
  for (auto& b : buffers_)
    if (b->rank() == rank) {
      tls_buffer = b.get();
      return tls_buffer;
    }
  buffers_.push_back(std::make_unique<TraceBuffer>(rank));
  tls_buffer = buffers_.back().get();
  return tls_buffer;
}

void Tracer::detach_thread() { tls_buffer = nullptr; }

TraceBuffer* Tracer::current() { return tls_buffer; }

void Tracer::advance_modeled(double seconds) {
  if (tls_buffer) tls_buffer->advance_modeled(seconds);
}

double Tracer::wall_now() const {
  if (!enabled_) return 0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  size_t n = 0;
  for (const auto& b : buffers_) n += b->events().size();
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  buffers_.clear();
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  std::lock_guard<std::mutex> lk(mu_);
  // Hand-rolled streaming writer: traces can hold hundreds of thousands of
  // events, so we never build the document in memory.  All names/categories
  // are static identifier-like strings — nothing needs escaping — but keep
  // the output honest anyway.
  os << "{\"displayTimeUnit\": \"ms\",\n \"otherData\": "
        "{\"clock\": \"modeled\", \"wall_unit\": \"s\"},\n"
        " \"traceEvents\": [\n";
  bool first = true;
  char buf[512];
  std::string esc_name, esc_cat;
  for (const auto& b : buffers_) {
    // Per-rank thread naming metadata so Perfetto shows "rank N" lanes.
    std::snprintf(buf, sizeof(buf),
                  "  {\"ph\": \"M\", \"pid\": 0, \"tid\": %d, \"name\": "
                  "\"thread_name\", \"args\": {\"name\": \"rank %d\"}}",
                  b->rank(), b->rank());
    os << (first ? "" : ",\n") << buf;
    first = false;
    for (const TraceEvent& e : b->events()) {
      esc_name.clear();
      esc_cat.clear();
      json_escape(e.name, esc_name);
      json_escape(e.category, esc_cat);
      const bool is_instant = e.wall_dur_s < 0;
      // ts/dur on the modeled clock, in microseconds (the trace_event unit).
      if (is_instant) {
        std::snprintf(buf, sizeof(buf),
                      "  {\"ph\": \"i\", \"pid\": 0, \"tid\": %d, "
                      "\"ts\": %.3f, \"s\": \"t\", \"cat\": \"%s\", "
                      "\"name\": \"%s\", \"args\": {\"arg\": %lld, "
                      "\"wall_begin_s\": %.9f}}",
                      b->rank(), e.modeled_begin_s * 1e6, esc_cat.c_str(),
                      esc_name.c_str(), (long long)e.arg, e.wall_begin_s);
      } else {
        std::snprintf(buf, sizeof(buf),
                      "  {\"ph\": \"X\", \"pid\": 0, \"tid\": %d, "
                      "\"ts\": %.3f, \"dur\": %.3f, \"cat\": \"%s\", "
                      "\"name\": \"%s\", \"args\": {\"arg\": %lld, "
                      "\"wall_begin_s\": %.9f, \"wall_dur_s\": %.9f}}",
                      b->rank(), e.modeled_begin_s * 1e6,
                      e.modeled_dur_s * 1e6, esc_cat.c_str(),
                      esc_name.c_str(), (long long)e.arg, e.wall_begin_s,
                      e.wall_dur_s);
      }
      os << ",\n" << buf;
    }
  }
  os << "\n]}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return bool(os);
}

}  // namespace sunbfs::obs

#endif  // SUNBFS_OBS_TRACE_ENABLED
