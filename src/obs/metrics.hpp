#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "support/histogram.hpp"

/// Metrics registry: the machine-readable side of the observability layer.
///
/// A Report is a flat, named collection of counters (monotonic uint64),
/// gauges (double samples) and log2 histograms (support/histogram), plus
/// string-valued run metadata.  The ad-hoc stats surfaces — sim::CommStats,
/// sim::FaultStats, bfs::BfsStats, bfs::RunnerResult — all know how to fold
/// themselves into a Report (see their to_report methods), so every runner
/// and bench binary emits one uniform JSON document that
/// tools/regen_experiments.py turns back into EXPERIMENTS.md rows.
///
/// Naming convention: dot-separated lowercase paths, most-general first —
/// "comm.alltoallv.bytes_sent", "bfs.level_count", "fault.recovered",
/// "table1.degree_aware_15d.gteps".  See docs/OBSERVABILITY.md.
///
/// Schema: the JSON document carries "schema": "sunbfs.metrics/1".  Any
/// backwards-incompatible change (renamed keys, changed units) bumps the
/// version; from_json refuses documents from a newer major version.
namespace sunbfs::obs {

class Report {
 public:
  static constexpr int kSchemaVersion = 1;
  /// "sunbfs.metrics/<version>"
  static std::string schema_id();

  // ---- writers -----------------------------------------------------------
  /// Free-form run metadata ("bench", "scale", "ranks", ...).
  void info(const std::string& key, const std::string& value);
  void info(const std::string& key, int64_t value);
  /// Add to a monotonic counter (created at 0).
  void add_counter(const std::string& name, uint64_t delta);
  /// Set a gauge sample (last write wins).
  void gauge(const std::string& name, double value);
  /// Histogram by name (created empty).
  Log2Histogram& histogram(const std::string& name);

  // ---- readers -----------------------------------------------------------
  bool has_counter(const std::string& name) const;
  bool has_gauge(const std::string& name) const;
  uint64_t counter(const std::string& name) const;  ///< 0 when absent
  double gauge(const std::string& name) const;      ///< 0.0 when absent
  const std::string& info(const std::string& key) const;  ///< "" when absent

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, std::string>& infos() const { return info_; }
  const std::map<std::string, Log2Histogram>& histograms() const {
    return histograms_;
  }

  /// Cross-rank / cross-run aggregation: counters and histograms add,
  /// gauges take the other's value when set (aggregated gauges should be
  /// written post-merge), info keys are unioned (other wins on conflict).
  void merge(const Report& other);

  bool empty() const;

  // ---- serialization -----------------------------------------------------
  std::string to_json(int indent = 2) const;
  /// Parse a document produced by to_json; throws std::runtime_error on
  /// malformed input or an unsupported schema version.
  static Report from_json(const std::string& text);
  /// Write to_json to `path`; false on I/O failure.
  bool write_file(const std::string& path, int indent = 2) const;

 private:
  std::map<std::string, std::string> info_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Log2Histogram> histograms_;
};

}  // namespace sunbfs::obs
