#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

/// Minimal JSON document model for the observability layer.
///
/// Two consumers only: the metrics Report (write + read-back for round-trip
/// checks and tools/regen_experiments.py) and the trace/schema tests that
/// assert an emitted file actually parses.  Numbers are stored as double
/// (sufficient for every metric we emit; exact integers up to 2^53), object
/// keys keep insertion order is NOT guaranteed (std::map, sorted) which is
/// fine for machine consumption and makes output deterministic.
namespace sunbfs::obs {

class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  /// Parse a complete JSON document; throws std::runtime_error with a byte
  /// offset on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }

  bool as_bool() const;
  double as_double() const;
  int64_t as_int() const { return int64_t(as_double()); }
  const std::string& as_string() const;

  /// Object access; `has` is false for non-objects, `at(key)` throws when
  /// the key is absent.
  bool has(const std::string& key) const;
  const Json& at(const std::string& key) const;
  /// Array access.
  size_t size() const;
  const Json& at(size_t index) const;

  /// Object/array builders (switch the value's kind on first use).
  Json& set(const std::string& key, Json value);
  Json& push_back(Json value);

  const std::map<std::string, Json>& items() const { return object_; }
  const std::vector<Json>& elements() const { return array_; }

  /// Serialize; `indent` > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

/// Escape a string for embedding in a JSON document (adds no quotes).
void json_escape(std::string_view in, std::string& out);

}  // namespace sunbfs::obs
