#include "obs/metrics.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace sunbfs::obs {

std::string Report::schema_id() {
  return "sunbfs.metrics/" + std::to_string(kSchemaVersion);
}

void Report::info(const std::string& key, const std::string& value) {
  info_[key] = value;
}

void Report::info(const std::string& key, int64_t value) {
  info_[key] = std::to_string(value);
}

void Report::add_counter(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

void Report::gauge(const std::string& name, double value) {
  gauges_[name] = value;
}

Log2Histogram& Report::histogram(const std::string& name) {
  return histograms_[name];
}

bool Report::has_counter(const std::string& name) const {
  return counters_.count(name) > 0;
}

bool Report::has_gauge(const std::string& name) const {
  return gauges_.count(name) > 0;
}

uint64_t Report::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Report::gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const std::string& Report::info(const std::string& key) const {
  static const std::string empty;
  auto it = info_.find(key);
  return it == info_.end() ? empty : it->second;
}

void Report::merge(const Report& other) {
  for (const auto& [k, v] : other.info_) info_[k] = v;
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
  for (const auto& [k, v] : other.gauges_) gauges_[k] = v;
  for (const auto& [k, h] : other.histograms_) {
    Log2Histogram& mine = histograms_[k];
    for (size_t b = 0; b < h.bucket_count(); ++b)
      if (h.bucket(b) > 0) mine.add(Log2Histogram::bucket_low(b), h.bucket(b));
  }
}

bool Report::empty() const {
  return info_.empty() && counters_.empty() && gauges_.empty() &&
         histograms_.empty();
}

std::string Report::to_json(int indent) const {
  Json doc = Json::object();
  doc.set("schema", Json::string(schema_id()));
  Json info = Json::object();
  for (const auto& [k, v] : info_) info.set(k, Json::string(v));
  doc.set("info", std::move(info));
  Json counters = Json::object();
  for (const auto& [k, v] : counters_) counters.set(k, Json::number(double(v)));
  doc.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [k, v] : gauges_) gauges.set(k, Json::number(v));
  doc.set("gauges", std::move(gauges));
  Json hists = Json::object();
  for (const auto& [k, h] : histograms_) {
    Json hj = Json::object();
    hj.set("total", Json::number(double(h.total())));
    Json buckets = Json::array();
    for (size_t b = 0; b < h.bucket_count(); ++b) {
      if (h.bucket(b) == 0) continue;
      Json pair = Json::array();
      pair.push_back(Json::number(double(Log2Histogram::bucket_low(b))));
      pair.push_back(Json::number(double(h.bucket(b))));
      buckets.push_back(std::move(pair));
    }
    hj.set("buckets", std::move(buckets));
    hists.set(k, std::move(hj));
  }
  doc.set("histograms", std::move(hists));
  return doc.dump(indent) + "\n";
}

Report Report::from_json(const std::string& text) {
  Json doc = Json::parse(text);
  const std::string& schema = doc.at("schema").as_string();
  const std::string prefix = "sunbfs.metrics/";
  if (schema.rfind(prefix, 0) != 0)
    throw std::runtime_error("metrics: unknown schema '" + schema + "'");
  int version = std::atoi(schema.c_str() + prefix.size());
  if (version < 1 || version > kSchemaVersion)
    throw std::runtime_error("metrics: unsupported schema version '" +
                             schema + "'");
  Report r;
  for (const auto& [k, v] : doc.at("info").items())
    r.info_[k] = v.as_string();
  for (const auto& [k, v] : doc.at("counters").items())
    r.counters_[k] = uint64_t(v.as_double());
  for (const auto& [k, v] : doc.at("gauges").items())
    r.gauges_[k] = v.as_double();
  for (const auto& [k, hj] : doc.at("histograms").items()) {
    Log2Histogram& h = r.histograms_[k];
    const Json& buckets = hj.at("buckets");
    for (size_t i = 0; i < buckets.size(); ++i) {
      const Json& pair = buckets.at(i);
      h.add(uint64_t(pair.at(size_t(0)).as_double()),
            uint64_t(pair.at(size_t(1)).as_double()));
    }
  }
  return r;
}

bool Report::write_file(const std::string& path, int indent) const {
  std::ofstream os(path);
  if (!os) return false;
  os << to_json(indent);
  return bool(os);
}

}  // namespace sunbfs::obs
