#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

/// Structured span tracing on the runtime's two clocks.
///
/// Every instrumented component — the SPMD collectives, both BFS engines,
/// the chip model and the sorters — emits RAII spans into a per-rank
/// TraceBuffer.  Each span carries two timestamps:
///
///  * the **wall clock**: host seconds since Tracer::enable(), i.e. what the
///    simulation actually cost;
///  * the **modeled clock**: the rank's accumulated modeled seconds (modeled
///    network time from the topology cost model + attributed compute), i.e.
///    what the simulated machine would have experienced.  This is the clock
///    the paper's figures and all GTEPS numbers are reported on, and the
///    default clock of the exported timeline.
///
/// The whole run exports as Chrome trace_event JSON (one ph:"X" event per
/// span, tid = global rank), loadable in chrome://tracing or Perfetto, so a
/// fault-recovery rollback is visible next to the collectives that caused
/// it.  See docs/OBSERVABILITY.md for the span taxonomy.
///
/// Cost discipline: tracing is off by default.  While disabled (or on an
/// unattached thread) constructing a Span touches one thread-local pointer
/// and allocates nothing; event payloads are POD (static-string name +
/// integer arg — never a formatted std::string), so even enabled tracing
/// costs one amortized vector push.  Compiling with SUNBFS_TRACE=OFF
/// replaces the whole surface with an inert no-op sink of identical shape,
/// making the zero-overhead claim compile-time checkable.
namespace sunbfs::obs {

#if SUNBFS_OBS_TRACE_ENABLED

/// One completed span (or instant marker when both durations are < 0).
struct TraceEvent {
  const char* category = "";  ///< static string: "comm", "bfs", "fault", ...
  const char* name = "";      ///< static string; dynamic part goes in `arg`
  int64_t arg = -1;           ///< level index, bytes, ... (-1 = none)
  double wall_begin_s = 0, wall_dur_s = 0;
  double modeled_begin_s = 0, modeled_dur_s = 0;
};

/// Per-rank event sink plus the rank's modeled clock.  Created by
/// Tracer::attach_thread; all writes are thread-local (no locking).
class TraceBuffer {
 public:
  explicit TraceBuffer(int rank) : rank_(rank) {}

  int rank() const { return rank_; }
  double modeled_now() const { return modeled_now_; }
  void advance_modeled(double seconds) { modeled_now_ += seconds; }

  void push(const TraceEvent& event) { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }

 private:
  int rank_;
  double modeled_now_ = 0;
  std::vector<TraceEvent> events_;
};

/// Process-wide trace collector.  Threads (rank bodies) attach to per-rank
/// buffers; spans write through a thread-local pointer.  Export runs after
/// the SPMD threads have joined.
class Tracer {
 public:
  static Tracer& instance();

  /// Drop previous events and start collecting.
  void enable();
  void disable();
  bool enabled() const { return enabled_; }

  /// Bind the calling thread to global rank `rank`'s buffer (creating or
  /// reusing it — repeated runs extend one per-rank timeline).  Returns
  /// nullptr and stays unbound while disabled.
  TraceBuffer* attach_thread(int rank);
  void detach_thread();

  /// The calling thread's buffer, or nullptr when unbound/disabled.
  static TraceBuffer* current();

  /// Advance the calling rank's modeled clock; no-op when unbound.  Every
  /// component that charges modeled seconds (collectives, attributed BFS
  /// compute, chip kernels) calls this so span timestamps line up.
  static void advance_modeled(double seconds);

  /// Host seconds since enable() (0 when disabled).
  double wall_now() const;

  size_t event_count() const;
  void clear();

  /// Write the collected spans as Chrome trace_event JSON ("traceEvents"
  /// array of ph:"X"/"i" events).  ts/dur come from the modeled clock in
  /// microseconds; the wall timestamps ride along in args.  tid = rank.
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience: write_chrome_trace to `path`; false on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  bool enabled_ = false;
  std::chrono::steady_clock::time_point epoch_{};
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;  // one per rank seen
};

/// RAII span.  Inert (no allocation, no clock read) when the calling thread
/// is not attached to an enabled tracer.
class Span {
 public:
  Span(const char* category, const char* name, int64_t arg = -1)
      : buf_(Tracer::current()) {
    if (!buf_) return;
    event_.category = category;
    event_.name = name;
    event_.arg = arg;
    event_.wall_begin_s = Tracer::instance().wall_now();
    event_.modeled_begin_s = buf_->modeled_now();
  }

  ~Span() {
    if (!buf_) return;
    event_.wall_dur_s =
        Tracer::instance().wall_now() - event_.wall_begin_s;
    event_.modeled_dur_s = buf_->modeled_now() - event_.modeled_begin_s;
    buf_->push(event_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Whether this span actually records (tracing enabled + thread attached).
  bool active() const { return buf_ != nullptr; }
  /// Update the arg after construction (e.g. bytes known only at the end).
  void set_arg(int64_t arg) {
    if (buf_) event_.arg = arg;
  }

 private:
  TraceBuffer* buf_;
  TraceEvent event_{};
};

/// Record an already-timed span ending "now" — for call sites that measure
/// their own durations (the collectives, chip kernels).  When
/// `advance_modeled` is set the rank's modeled clock advances by
/// `modeled_dur_s` and the span ends at the new clock value; otherwise the
/// span is laid down at the current clock without moving it (used by
/// components whose modeled time a caller attributes, e.g. chip kernels
/// under the BFS pull path).
inline void complete_span(const char* category, const char* name, int64_t arg,
                          double wall_dur_s, double modeled_dur_s,
                          bool advance_modeled = false) {
  TraceBuffer* buf = Tracer::current();
  if (!buf) return;
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.arg = arg;
  e.modeled_begin_s = buf->modeled_now();
  e.modeled_dur_s = modeled_dur_s;
  if (advance_modeled) buf->advance_modeled(modeled_dur_s);
  double now = Tracer::instance().wall_now();
  e.wall_begin_s = now - wall_dur_s;
  e.wall_dur_s = wall_dur_s;
  buf->push(e);
}

/// Zero-duration instant marker (rendered as an arrow in Perfetto).
inline void instant(const char* category, const char* name,
                    int64_t arg = -1) {
  TraceBuffer* buf = Tracer::current();
  if (!buf) return;
  TraceEvent e;
  e.category = category;
  e.name = name;
  e.arg = arg;
  e.wall_begin_s = Tracer::instance().wall_now();
  e.modeled_begin_s = buf->modeled_now();
  e.wall_dur_s = e.modeled_dur_s = -1;  // instant
  buf->push(e);
}

/// RAII attach/detach for threads outside run_spmd (benches, demos).
class AttachThread {
 public:
  explicit AttachThread(int rank) {
    Tracer::instance().attach_thread(rank);
  }
  ~AttachThread() { Tracer::instance().detach_thread(); }
  AttachThread(const AttachThread&) = delete;
  AttachThread& operator=(const AttachThread&) = delete;
};

#else  // SUNBFS_OBS_TRACE_ENABLED — compile-time no-op sink.

struct TraceEvent {};

class TraceBuffer {
 public:
  int rank() const { return 0; }
  double modeled_now() const { return 0; }
  void advance_modeled(double) {}
};

class Tracer {
 public:
  static Tracer& instance() {
    static Tracer t;
    return t;
  }
  void enable() {}
  void disable() {}
  bool enabled() const { return false; }
  TraceBuffer* attach_thread(int) { return nullptr; }
  void detach_thread() {}
  static TraceBuffer* current() { return nullptr; }
  static void advance_modeled(double) {}
  double wall_now() const { return 0; }
  size_t event_count() const { return 0; }
  void clear() {}
  void write_chrome_trace(std::ostream& os) const {
    os << "{\"traceEvents\": []}\n";  // valid, empty timeline
  }
  bool write_chrome_trace_file(const std::string&) const { return false; }
};

class Span {
 public:
  Span(const char*, const char*, int64_t = -1) {}
  bool active() const { return false; }
  void set_arg(int64_t) {}
};

inline void complete_span(const char*, const char*, int64_t, double, double,
                          bool = false) {}

inline void instant(const char*, const char*, int64_t = -1) {}

class AttachThread {
 public:
  explicit AttachThread(int) {}
};

#endif  // SUNBFS_OBS_TRACE_ENABLED

}  // namespace sunbfs::obs
