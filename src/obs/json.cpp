#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sunbfs::obs {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::Number;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::String;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::Array;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::Object;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) throw std::runtime_error("json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (kind_ != Kind::Number) throw std::runtime_error("json: not a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) throw std::runtime_error("json: not a string");
  return string_;
}

bool Json::has(const std::string& key) const {
  return kind_ == Kind::Object && object_.count(key) > 0;
}

const Json& Json::at(const std::string& key) const {
  if (kind_ != Kind::Object) throw std::runtime_error("json: not an object");
  auto it = object_.find(key);
  if (it == object_.end())
    throw std::runtime_error("json: missing key '" + key + "'");
  return it->second;
}

size_t Json::size() const {
  if (kind_ == Kind::Array) return array_.size();
  if (kind_ == Kind::Object) return object_.size();
  return 0;
}

const Json& Json::at(size_t index) const {
  if (kind_ != Kind::Array) throw std::runtime_error("json: not an array");
  if (index >= array_.size()) throw std::runtime_error("json: index range");
  return array_[index];
}

Json& Json::set(const std::string& key, Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) throw std::runtime_error("json: not an object");
  object_[key] = std::move(value);
  return *this;
}

Json& Json::push_back(Json value) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) throw std::runtime_error("json: not an array");
  array_.push_back(std::move(value));
  return *this;
}

void json_escape(std::string_view in, std::string& out) {
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; clamp to null
    out += "null";
    return;
  }
  // Integers print exactly (metric counters); everything else with enough
  // digits to round-trip.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
  }
}

struct Parser {
  std::string_view text;
  size_t pos = 0;

  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json: " + std::string(what) + " at byte " +
                             std::to_string(pos));
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape");
      char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text[pos++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= unsigned(h - '0');
            else if (h >= 'a' && h <= 'f') v |= unsigned(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= unsigned(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Our own writer only emits \u00XX; decode the BMP code point as
          // UTF-8 so foreign files survive too.
          if (v < 0x80) {
            out += char(v);
          } else if (v < 0x800) {
            out += char(0xC0 | (v >> 6));
            out += char(0x80 | (v & 0x3F));
          } else {
            out += char(0xE0 | (v >> 12));
            out += char(0x80 | ((v >> 6) & 0x3F));
            out += char(0x80 | (v & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_value() {
    skip_ws();
    char c = peek();
    if (c == '{') {
      ++pos;
      Json j = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return j;
      }
      for (;;) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        j.set(key, parse_value());
        skip_ws();
        char d = peek();
        ++pos;
        if (d == '}') return j;
        if (d != ',') fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++pos;
      Json j = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return j;
      }
      for (;;) {
        j.push_back(parse_value());
        skip_ws();
        char d = peek();
        ++pos;
        if (d == ']') return j;
        if (d != ',') fail("expected ',' or ']'");
      }
    }
    if (c == '"') return Json::string(parse_string());
    if (consume_literal("true")) return Json::boolean(true);
    if (consume_literal("false")) return Json::boolean(false);
    if (consume_literal("null")) return Json::null();
    // Number.
    size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    if (pos == start) fail("unexpected character");
    std::string num(text.substr(start, pos - start));
    char* end = nullptr;
    double v = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) fail("malformed number");
    return Json::number(v);
  }
};

}  // namespace

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json j = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) p.fail("trailing garbage");
  return j;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(size_t(indent) * size_t(d), ' ');
  };
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: dump_number(number_, out); break;
    case Kind::String:
      out += '"';
      json_escape(string_, out);
      out += '"';
      break;
    case Kind::Array: {
      out += '[';
      bool first = true;
      for (const auto& e : array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        e.dump_to(out, indent, depth + 1);
      }
      if (!first) newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        json_escape(k, out);
        out += "\": ";
        v.dump_to(out, indent, depth + 1);
      }
      if (!first) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace sunbfs::obs
