#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "partition/part1d.hpp"
#include "sim/comm_buffer.hpp"
#include "sim/exchange_channel.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"

/// Batched multi-source BFS (MS-BFS, Then et al., adapted to the distributed
/// 1D layout): up to service::kMaxBatchWidth roots traverse simultaneously,
/// one bit per query in every frontier/visited word, so the whole batch
/// shares each level's collectives — one alltoallv (top-down) or one
/// frontier allgather (bottom-up) per level for all W queries, instead of W
/// sequential sweeps.  This is the amortization the query service's batching
/// exists to buy (docs/SERVICE.md; tests/test_service.cpp asserts the
/// collective-count win via CommStats).
///
/// Determinism contract: the parent of vertex v for query q is the
/// *maximum global id* neighbour u with depth_q(u) == depth_q(v) - 1.  The
/// rule names a unique tree per (graph, root) — independent of traversal
/// direction, batch width, batch composition and thread count — which is
/// what makes "batch output bit-identical to W single-root runs" a testable
/// equality rather than a coincidence of scheduling.  (The bottom-up kernel
/// therefore scans *all* neighbours of a pending vertex; the early-exit
/// first-match trick of bfs1d would tie the parent to CSR order.)
namespace sunbfs::bfs {
class BfsWorkspace;
}

namespace sunbfs::service {

/// One batched visit: receiver-local target, sender-local source (the source
/// rank is recovered from the alltoallv src_offsets), and the query bit-mask
/// the source's frontier carries for this edge.  One message per cross-rank
/// frontier edge — per-target dedup is skipped because the max-parent rule
/// needs every candidate source, and a per-(target, query) dedup table would
/// cost W x |V| words per level.
struct MsbfsMsg {
  uint32_t dst;
  uint32_t src;
  uint64_t mask;
};

struct MsbfsOptions {
  /// Switch to bottom-up when active (vertex, query) pairs exceed this
  /// fraction of total x width.
  double pull_ratio = 0.10;
  /// Deterministic compute-cost model: modeled seconds per examined edge
  /// (the virtual clock must not depend on host wall time — see
  /// docs/SERVICE.md "Determinism").
  double sim_seconds_per_edge = 2e-9;
  /// Worker threads per rank; <= 0 means auto.  Ignored when `workspace` is
  /// provided.
  int threads_per_rank = 0;
  /// Optional resident per-rank workspace (pool + frontier gather buffer),
  /// shared across batches by the session.
  bfs::BfsWorkspace* workspace = nullptr;
  /// Optional resident staging channel for the batched visit messages; null
  /// means a private pool per run (cold — the session keeps a warm one).
  sim::ExchangeChannel<MsbfsMsg>* staging = nullptr;
  /// Adaptive wire encoding for the visit alltoallv and the frontier-word
  /// allgather (sim/encoding.hpp); applied to the pools each run.
  sim::EncodingOptions encoding;
  /// Exchange plan backend for the visit alltoallv (sim/exchange.hpp).
  /// Results stay bit-identical across backends (ctest -L differential).
  sim::ExchangeOptions exchange;
  /// Checkpoint/rollback recovery knobs, honoured when the rank runs under
  /// FaultPolicy::Recover (same contract as bfs1d/bfs15d: per-level
  /// checkpoints of the mask words + parents, collective agreement on the
  /// pending-fault flag, capped exponential backoff).  Results stay
  /// bit-identical to a fault-free run.
  sim::RecoveryOptions recovery;
  /// Also record per-vertex hop depths into MsbfsResult::depth (query-major,
  /// -1 = unreached).  Free of extra collectives: depths are stamped in the
  /// serial per-level commit.  The distance oracle's sketches and cached
  /// trees are built from these rows (src/service/oracle/).
  bool record_depths = false;
};

struct MsbfsResult {
  int width = 0;
  /// Owned-slice parent arrays, query-major: parent[q * local_count + lloc].
  /// kNoVertex where query q never reached the vertex.
  std::vector<graph::Vertex> parent;
  /// BFS levels (eccentricity from the root within its component) per query.
  std::vector<int> levels;
  /// Owned-slice hop depths, query-major like `parent` (only populated when
  /// MsbfsOptions::record_depths): -1 where query q never reached the vertex.
  std::vector<int32_t> depth;
  int num_iterations = 0;    ///< shared level-loop sweeps for the batch
  uint64_t work_edges = 0;   ///< this rank's examined-edge count
  double compute_model_s = 0;  ///< work_edges x sim_seconds_per_edge / threads
};

/// Run one batch of `roots` (1 <= |roots| <= kMaxBatchWidth, duplicates
/// allowed) over the resident 1D partition.  Collective over ctx.world.
MsbfsResult msbfs_run(sim::RankContext& ctx, const partition::Part1d& part,
                      std::span<const graph::Vertex> roots,
                      const MsbfsOptions& options = {});

}  // namespace sunbfs::service

namespace sunbfs::sim {

/// Wire codec for the batched visit message: `dst` keys the sort/bitmap,
/// `src` and the query mask follow as varints (sparse batches have few low
/// bits set; full-width masks fall back to raw via exact measurement).
template <>
struct WireFormat<service::MsbfsMsg> {
  static uint64_t key(const service::MsbfsMsg& m) { return m.dst; }
  static bool less(const service::MsbfsMsg& a, const service::MsbfsMsg& b) {
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.src != b.src) return a.src < b.src;
    return a.mask < b.mask;
  }
  static size_t rest_size(const service::MsbfsMsg& m) {
    return varint_size(m.src) + varint_size(m.mask);
  }
  static uint8_t* put_rest(const service::MsbfsMsg& m, uint8_t* p) {
    p = put_varint(p, m.src);
    return put_varint(p, m.mask);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, service::MsbfsMsg& m) {
    if (key > UINT32_MAX) return nullptr;
    uint64_t src = 0, mask = 0;
    p = get_varint(p, end, &src);
    if (p == nullptr || src > UINT32_MAX) return nullptr;
    p = get_varint(p, end, &mask);
    if (p == nullptr) return nullptr;
    m.dst = uint32_t(key);
    m.src = uint32_t(src);
    m.mask = mask;
    return p;
  }
};

/// Staged-exchange fold for batched visits: two messages for the same
/// (target, source) pair carry query masks the receiver ORs into the same
/// next-frontier word, so an intermediate hop may OR them early.  `src` is
/// *sender-local*, so equality is only meaningful within one source rank —
/// messages from different src_parts must never merge (same src, different
/// global vertex), which the src_part guard enforces.
template <>
struct ExchangeMergePolicy<service::MsbfsMsg> {
  static constexpr bool enabled = true;
  static bool same(const service::MsbfsMsg& a, uint32_t a_src_part,
                   const service::MsbfsMsg& b, uint32_t b_src_part) {
    return a_src_part == b_src_part && a.dst == b.dst && a.src == b.src;
  }
  static void fold(service::MsbfsMsg& into, uint32_t& /*into_src_part*/,
                   const service::MsbfsMsg& from, uint32_t /*from_src_part*/) {
    into.mask |= from.mask;
  }
};

}  // namespace sunbfs::sim
