#include "service/broker.hpp"

#include <algorithm>
#include <limits>

namespace sunbfs::service {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

QueryResult make_expired(const Query& q, double now_s) {
  QueryExpired err(q.id, q.deadline_s, now_s);
  QueryResult r;
  r.id = q.id;
  r.kind = q.kind;
  r.status = QueryStatus::Expired;
  r.root = q.root;
  r.arrival_s = q.arrival_s;
  r.done_s = now_s;
  r.latency_s = now_s - q.arrival_s;
  r.error = err.what();
  return r;
}

bool QueryBroker::submit(const Query& q, QueryResult* rejection) {
  if (queue_.size() >= config_.queue_capacity) {
    if (rejection != nullptr) {
      QueryRejected err(q.id, config_.queue_capacity);
      rejection->id = q.id;
      rejection->kind = q.kind;
      rejection->status = QueryStatus::Rejected;
      rejection->root = q.root;
      rejection->arrival_s = q.arrival_s;
      rejection->done_s = q.arrival_s;
      rejection->latency_s = 0;
      rejection->error = err.what();
    }
    return false;
  }
  queue_.push_back(q);
  return true;
}

double QueryBroker::next_close_s() const {
  if (queue_.empty()) return kInf;
  double close = queue_.front().arrival_s + config_.batch_age_s;
  for (const Query& q : queue_) close = std::min(close, q.deadline_s);
  return close;
}

bool QueryBroker::batch_ready(double now_s) const {
  if (queue_.empty()) return false;
  QueryKind kind = queue_.front().kind;
  int same_kind = 0;
  for (const Query& q : queue_) {
    if (q.deadline_s <= now_s) return true;  // expiry sweep due
    if (q.kind == kind) ++same_kind;
  }
  if (same_kind >= config_.batch_width) return true;
  return now_s >= queue_.front().arrival_s + config_.batch_age_s;
}

std::vector<Query> QueryBroker::form_batch(double now_s,
                                           std::vector<QueryResult>* expired) {
  // Expiry sweep first: a query whose deadline already passed can never
  // complete in time, so it leaves as a typed Expired result instead of
  // occupying a batch slot.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_s <= now_s) {
      if (expired != nullptr) expired->push_back(make_expired(*it, now_s));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<Query> batch;
  if (queue_.empty()) return batch;
  // One kind per batch (the engines do not mix), oldest first: collect up to
  // batch_width queries matching the head's kind, preserving FIFO order for
  // the rest.
  QueryKind kind = queue_.front().kind;
  for (auto it = queue_.begin();
       it != queue_.end() && int(batch.size()) < config_.batch_width;) {
    if (it->kind == kind) {
      batch.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

}  // namespace sunbfs::service
