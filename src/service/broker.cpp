#include "service/broker.hpp"

#include <algorithm>
#include <limits>

namespace sunbfs::service {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

void fill_terminal(QueryResult& r, const Query& q, QueryStatus status,
                   double done_s, std::string error) {
  r.id = q.id;
  r.kind = q.kind;
  r.status = status;
  r.root = q.root;
  r.target = q.target;
  r.arrival_s = q.arrival_s;
  r.deadline_s = q.deadline_s;
  r.done_s = done_s;
  r.latency_s = done_s - q.arrival_s;
  r.retries = q.attempt;
  r.error = std::move(error);
}
}  // namespace

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::Closed: return "closed";
    case BreakerState::Shedding: return "shedding";
    case BreakerState::Probing: return "probing";
  }
  return "?";
}

QueryResult make_expired(const Query& q, double now_s) {
  QueryResult r;
  fill_terminal(r, q, QueryStatus::Expired, now_s,
                QueryExpired(q.id, q.arrival_s, q.deadline_s, now_s).what());
  return r;
}

QueryResult make_failed(const Query& q, double now_s, const std::string& why) {
  QueryResult r;
  fill_terminal(r, q, QueryStatus::Failed, now_s,
                QueryFailed(q.id, q.arrival_s, q.deadline_s, now_s,
                            q.attempt + 1, why)
                    .what());
  return r;
}

void QueryBroker::transition(BreakerState next, double now_s) {
  if (state_ == next) return;
  state_ = next;
  ++transitions_;
  if (next == BreakerState::Shedding) {
    shed_since_s_ = now_s;
    window_.clear();  // fresh start: probe outcomes decide what happens next
  }
  if (next == BreakerState::Probing) probe_counter_ = 0;
}

bool QueryBroker::submit(const Query& q, QueryResult* rejection,
                         double now_s) {
  // Cache-probe admission: a hit is a terminal Done (or late-Expired)
  // result served without touching the queue, the breaker or a batch slot.
  if (probe_) {
    QueryResult served;
    if (probe_(q, &served)) {
      if (rejection != nullptr) *rejection = std::move(served);
      return false;
    }
  }
  const ShedConfig& shed = config_.shed;
  if (shed.enabled && state_ == BreakerState::Shedding &&
      now_s >= shed_since_s_ + shed.probe_after_s)
    transition(BreakerState::Probing, now_s);
  if (shed.enabled && state_ != BreakerState::Closed && q.priority <= 0) {
    const bool probe_admit =
        state_ == BreakerState::Probing &&
        probe_counter_++ % uint64_t(std::max(1, shed.probe_admit_every)) == 0;
    if (!probe_admit) {
      ++sheds_;
      if (rejection != nullptr)
        fill_terminal(
            *rejection, q, QueryStatus::Rejected, now_s,
            QueryShed(q.id, q.arrival_s, q.deadline_s, now_s).what());
      return false;
    }
  }
  if (queue_.size() >= config_.queue_capacity) {
    if (rejection != nullptr)
      fill_terminal(*rejection, q, QueryStatus::Rejected, q.arrival_s,
                    QueryRejected(q.id, q.arrival_s, q.deadline_s,
                                  config_.queue_capacity)
                        .what());
    return false;
  }
  queue_.push_back(q);
  // Occupancy trip: the queue crossing the highwater mark is itself an
  // overload signal, independent of misses already observed.
  if (shed.enabled && state_ == BreakerState::Closed &&
      double(queue_.size()) >=
          shed.queue_highwater * double(config_.queue_capacity))
    transition(BreakerState::Shedding, now_s);
  return true;
}

void QueryBroker::on_outcome(const QueryResult& result, double now_s) {
  const ShedConfig& shed = config_.shed;
  if (!shed.enabled) return;
  const bool miss = result.status == QueryStatus::Expired;
  const bool hit =
      result.status == QueryStatus::Done && result.deadline_s != kNoDeadline;
  if (!miss && !hit) return;  // rejections/failures are not overload signals
  window_.push_back(miss);
  while (int(window_.size()) > std::max(1, shed.window)) window_.pop_front();
  const double rate =
      double(std::count(window_.begin(), window_.end(), true)) /
      double(window_.size());
  const bool enough = int(window_.size()) >= std::max(1, shed.min_samples);
  if (state_ == BreakerState::Closed && enough && rate >= shed.miss_rate_open) {
    transition(BreakerState::Shedding, now_s);
  } else if (state_ == BreakerState::Probing) {
    if (enough && rate <= shed.miss_rate_close)
      transition(BreakerState::Closed, now_s);
    else if (miss)
      transition(BreakerState::Shedding, now_s);  // probe failed, reopen
  }
}

double QueryBroker::next_close_s() const {
  if (queue_.empty()) return kInf;
  double close = queue_.front().arrival_s + config_.batch_age_s;
  for (const Query& q : queue_) close = std::min(close, q.deadline_s);
  return close;
}

bool QueryBroker::batch_ready(double now_s) const {
  if (queue_.empty()) return false;
  QueryKind kind = queue_.front().kind;
  int same_kind = 0;
  for (const Query& q : queue_) {
    if (q.deadline_s <= now_s) return true;  // expiry sweep due
    if (q.kind == kind) ++same_kind;
  }
  if (same_kind >= config_.batch_width) return true;
  return now_s >= queue_.front().arrival_s + config_.batch_age_s;
}

std::vector<Query> QueryBroker::form_batch(double now_s,
                                           std::vector<QueryResult>* expired) {
  // Expiry sweep first: a query whose deadline already passed can never
  // complete in time, so it leaves as a typed Expired result instead of
  // occupying a batch slot.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline_s <= now_s) {
      if (expired != nullptr) expired->push_back(make_expired(*it, now_s));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  std::vector<Query> batch;
  if (queue_.empty()) return batch;
  // One kind per batch (the engines do not mix), oldest first: collect up to
  // batch_width queries matching the head's kind, preserving FIFO order for
  // the rest.
  QueryKind kind = queue_.front().kind;
  for (auto it = queue_.begin();
       it != queue_.end() && int(batch.size()) < config_.batch_width;) {
    if (it->kind == kind) {
      batch.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

}  // namespace sunbfs::service
