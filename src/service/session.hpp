#pragma once

#include <cstdint>
#include <vector>

#include "analytics/sssp.hpp"
#include "graph/rmat.hpp"
#include "obs/metrics.hpp"
#include "partition/classify.hpp"
#include "service/broker.hpp"
#include "service/msbfs.hpp"
#include "service/oracle/oracle.hpp"
#include "service/workload.hpp"
#include "sim/runtime.hpp"

/// Long-lived graph query serving (the ROADMAP north star's serving layer):
/// a GraphSession generates and partitions the graph ONCE, keeps the CSR,
/// partition and per-rank BfsWorkspace + staging pools resident, and then
/// serves an entire workload of traversal queries against them — the shift
/// from one-shot Graph 500 batches (bfs::run_graph500 regenerates per
/// invocation) to query throughput.
///
/// Scheduling is a deterministic discrete-event loop on a *virtual clock*:
/// every rank runs an identical broker + workload replica (both are pure
/// functions of their seeds), and the clock only ever advances by replicated
/// quantities — arrival times from the seeded generator, batch service times
/// from an allreduce_max of each rank's deterministic cost (modeled network
/// seconds + the work-counter compute model).  No wall time enters the
/// clock, so a (config, seeds) triple replays to bit-identical results and
/// latency statistics, and the broker needs zero coordination collectives
/// of its own.  See docs/SERVICE.md.
namespace sunbfs::service {

/// Hedged re-execution of straggling batches: when a batch's service time
/// exceeds `factor` x the `quantile`-th percentile of the service times seen
/// so far (a replicated history — every rank computes the same cut), the
/// session models a hedge replica launched at the cut and charges the batch
/// min(first attempt, cut + second attempt).  The engines are deterministic,
/// so the hedge only wins when the straggle came from injected faults the
/// replay does not hit again — exactly the transient-straggler case hedging
/// exists for.
struct HedgeConfig {
  bool enabled = false;
  /// Batches observed before the latency quantile is trusted.
  int min_samples = 8;
  /// Straggle cut: factor x percentile(service history, quantile).
  double quantile = 95;
  double factor = 3.0;
};

/// Streaming graph mutations between query epochs (docs/SERVICE.md
/// "Mutations & epochs").  A seeded MutationLog generates deterministic
/// edge insert/delete batches; batch k is applied — on every rank, to the
/// resident 1D (and, when built, 1.5D) partitions in place — immediately
/// before the first query with id >= k * `every` is admitted.  Because the
/// trigger is *id-driven* rather than clock-driven, the epoch each query
/// executes at is a pure function of the workload seed: cache-on and
/// cache-off runs see identical epochs even though their virtual clocks
/// differ.  Before a batch applies, the broker's queue is drained (queued
/// batches execute against their admission epoch), so a query never
/// observes a graph newer than the one it was admitted against.
struct MutationConfig {
  bool enabled = false;
  uint64_t seed = 99;          ///< mutation stream seed (MutationLogConfig)
  int inserts_per_batch = 6;
  int deletes_per_batch = 6;
  /// Fraction of delete draws aimed at arbitrary vertex pairs; misses are
  /// tombstone no-ops the log records as delete_misses.
  double phantom_fraction = 0.25;
  /// Apply batch k before admitting query id k * every (0 disables).
  uint64_t every = 32;
  uint64_t max_batches = 64;
  /// Modeled ingest seconds charged per edge op (insert or delete) — the
  /// mutation feed is modeled, not measured (docs/DESIGN.md deviations).
  double seconds_per_op = 5e-7;
  /// Incrementally repair the resident landmark BFS trees (src/mutate
  /// repair_bfs) and reinstall the sketch at the new epoch, instead of
  /// letting the next point-to-point probe trigger a full MS-BFS rebuild.
  bool repair_sketch = true;
};

struct ServiceConfig {
  graph::Graph500Config graph;
  /// 1.5D thresholds for the SSSP partition (built only when the workload
  /// contains SSSP-root queries).
  partition::DegreeThresholds thresholds{2048, 128};
  int threads_per_rank = 0;  ///< <= 0 means auto
  /// Root pool the load generator draws from (degree >= 1 search keys).
  int root_pool = 64;
  uint64_t root_seed = 7;
  MsbfsOptions msbfs;  ///< workspace/staging fields are managed per rank
  analytics::SsspOptions sssp;
  /// Deterministic compute model for SSSP-root queries (they relax each
  /// in-component edge several times; BFS uses msbfs.sim_seconds_per_edge).
  double sssp_seconds_per_edge = 8e-9;
  /// Distance-oracle cache between the broker and the engines
  /// (src/service/oracle/): LRU of exact trees + landmark sketches +
  /// lease-based self-invalidation.  Disabled by default — the cache-off
  /// code path is bit-identical to the pre-oracle service.
  oracle::CacheConfig cache;
  /// Streaming mutations between query epochs (src/mutate, docs/SERVICE.md
  /// "Mutations & epochs").  Disabled by default — the mutation-off path is
  /// bit-identical to the static-snapshot service.
  MutationConfig mutation;

  // ---- Fault tolerance (docs/SERVICE.md "Degraded modes"). ---------------
  /// Deterministic fault schedule armed only around engine executions; an
  /// empty plan keeps the session on the exact fault-free code path.
  sim::FaultPlan faults;
  /// Recover lets the engines checkpoint/replay and the broker retry; Abort
  /// and Report keep the pre-fault-framework semantics.
  sim::FaultPolicy fault_policy = sim::FaultPolicy::Recover;
  sim::ChecksumMode checksums = sim::ChecksumMode::Auto;
  /// Broker-level re-admissions allowed per query after its batch exhausted
  /// in-engine recovery (0 fails immediately).
  int retry_budget = 2;
  /// Capped exponential backoff before a re-admission: base * 2^attempt,
  /// capped.  A retry that cannot land before the query's deadline is not
  /// scheduled — the query fails fast instead.
  double retry_backoff_s = 1e-3;
  double retry_backoff_cap_s = 8e-3;
  HedgeConfig hedge;
};

/// Mutation telemetry, surfaced as service.mutate.* (docs/OBSERVABILITY.md).
struct MutateStats {
  uint64_t batches = 0;           ///< mutation batches applied
  uint64_t epoch = 0;             ///< final graph epoch (== batches)
  uint64_t inserted_arcs = 0;     ///< CSR arcs appended (summed over ranks)
  uint64_t deleted_arcs = 0;      ///< CSR arcs removed (summed over ranks)
  uint64_t delete_misses = 0;     ///< tombstone no-op deletes (replicated)
  uint64_t compactions = 0;       ///< CSR slack rebuilds (summed over ranks)
  uint64_t repair_invalidated = 0;  ///< vertices re-entering repair frontiers
  uint64_t repair_relaxations = 0;  ///< repair candidates applied
  uint64_t repair_rounds = 0;       ///< cascade + relaxation rounds
  uint64_t sketch_repairs = 0;    ///< sketches reinstalled via repair_bfs
};

/// Aggregate outcome of one served workload.
struct ServiceReport {
  /// Every terminal result in decision order (identical on all ranks; this
  /// is rank 0's copy).
  std::vector<QueryResult> results;

  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;           ///< queue-capacity refusals
  uint64_t shed = 0;               ///< fast-failed by the overload breaker
  uint64_t completed = 0;          ///< Done before deadline
  uint64_t expired_in_queue = 0;   ///< swept at batch formation
  uint64_t expired_late = 0;       ///< executed but finished past deadline
  uint64_t failed = 0;             ///< terminal Failed (retry budget ran out)
  uint64_t retried = 0;            ///< broker re-admissions after failed batches
  uint64_t batches = 0;
  uint64_t failed_batches = 0;     ///< batches that exhausted in-engine recovery
  uint64_t hedged_batches = 0;     ///< batches hedge-re-executed past the cut
  uint64_t breaker_transitions = 0;
  /// Staging-pool growths (summed over ranks) during the first executed
  /// batch vs. after it; steady must be 0 for BFS workloads (the resident
  /// pools are primed once — the chaos suite gates this under faults too).
  uint64_t staging_allocs_warmup = 0;
  uint64_t staging_allocs_steady = 0;
  /// Distance-oracle telemetry (service.cache.* in the metrics report).
  oracle::CacheStats cache;
  /// Streaming-mutation telemetry (service.mutate.* in the metrics report).
  MutateStats mutate;
  double mean_batch_occupancy = 0;  ///< queries per executed batch
  double makespan_s = 0;            ///< virtual clock at the last decision
  double qps = 0;                   ///< completed / makespan
  double latency_mean_s = 0;        ///< over completed queries
  double latency_p50_s = 0;
  double latency_p95_s = 0;
  double latency_p99_s = 0;
  sim::SpmdReport spmd;

  uint64_t expired_total() const { return expired_in_queue + expired_late; }

  /// Fold into a metrics report under "service." (plus the comm/fault/spmd
  /// aggregates via SpmdReport::to_report) — what service_runner's
  /// --metrics-out serializes.
  void to_report(obs::Report& report) const;
};

/// Nearest-rank percentile of an unsorted sample set (p in [0, 100]).
double percentile(std::vector<double> samples, double p);

/// One resident graph serving whole workloads.  serve() runs one SPMD
/// session: setup (generate, partition, pick the root pool, warm the
/// workspace) happens once, then every query of the workload executes
/// against the resident structures.
class GraphSession {
 public:
  GraphSession(const sim::Topology& topology, const ServiceConfig& config)
      : topology_(topology), config_(config) {}

  const ServiceConfig& config() const { return config_; }

  /// Serve `workload` with batch formation under `broker`.  Deterministic in
  /// (config, workload.seed): serving the same workload twice yields
  /// bit-identical reports.
  ServiceReport serve(const WorkloadConfig& workload,
                      const BrokerConfig& broker) const;

 private:
  sim::Topology topology_;  ///< by value: the session outlives its argument
  ServiceConfig config_;
};

}  // namespace sunbfs::service
