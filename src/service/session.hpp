#pragma once

#include <cstdint>
#include <vector>

#include "analytics/sssp.hpp"
#include "graph/rmat.hpp"
#include "obs/metrics.hpp"
#include "partition/classify.hpp"
#include "service/broker.hpp"
#include "service/msbfs.hpp"
#include "service/oracle/oracle.hpp"
#include "service/workload.hpp"
#include "sim/runtime.hpp"

/// Long-lived graph query serving (the ROADMAP north star's serving layer):
/// a GraphSession generates and partitions the graph ONCE, keeps the CSR,
/// partition and per-rank BfsWorkspace + staging pools resident, and then
/// serves an entire workload of traversal queries against them — the shift
/// from one-shot Graph 500 batches (bfs::run_graph500 regenerates per
/// invocation) to query throughput.
///
/// Scheduling is a deterministic discrete-event loop on a *virtual clock*:
/// every rank runs an identical broker + workload replica (both are pure
/// functions of their seeds), and the clock only ever advances by replicated
/// quantities — arrival times from the seeded generator, batch service times
/// from an allreduce_max of each rank's deterministic cost (modeled network
/// seconds + the work-counter compute model).  No wall time enters the
/// clock, so a (config, seeds) triple replays to bit-identical results and
/// latency statistics, and the broker needs zero coordination collectives
/// of its own.  See docs/SERVICE.md.
namespace sunbfs::service {

/// Hedged re-execution of straggling batches: when a batch's service time
/// exceeds `factor` x the `quantile`-th percentile of the service times seen
/// so far (a replicated history — every rank computes the same cut), the
/// session models a hedge replica launched at the cut and charges the batch
/// min(first attempt, cut + second attempt).  The engines are deterministic,
/// so the hedge only wins when the straggle came from injected faults the
/// replay does not hit again — exactly the transient-straggler case hedging
/// exists for.
struct HedgeConfig {
  bool enabled = false;
  /// Batches observed before the latency quantile is trusted.
  int min_samples = 8;
  /// Straggle cut: factor x percentile(service history, quantile).
  double quantile = 95;
  double factor = 3.0;
};

struct ServiceConfig {
  graph::Graph500Config graph;
  /// 1.5D thresholds for the SSSP partition (built only when the workload
  /// contains SSSP-root queries).
  partition::DegreeThresholds thresholds{2048, 128};
  int threads_per_rank = 0;  ///< <= 0 means auto
  /// Root pool the load generator draws from (degree >= 1 search keys).
  int root_pool = 64;
  uint64_t root_seed = 7;
  MsbfsOptions msbfs;  ///< workspace/staging fields are managed per rank
  analytics::SsspOptions sssp;
  /// Deterministic compute model for SSSP-root queries (they relax each
  /// in-component edge several times; BFS uses msbfs.sim_seconds_per_edge).
  double sssp_seconds_per_edge = 8e-9;
  /// Distance-oracle cache between the broker and the engines
  /// (src/service/oracle/): LRU of exact trees + landmark sketches +
  /// lease-based self-invalidation.  Disabled by default — the cache-off
  /// code path is bit-identical to the pre-oracle service.
  oracle::CacheConfig cache;

  // ---- Fault tolerance (docs/SERVICE.md "Degraded modes"). ---------------
  /// Deterministic fault schedule armed only around engine executions; an
  /// empty plan keeps the session on the exact fault-free code path.
  sim::FaultPlan faults;
  /// Recover lets the engines checkpoint/replay and the broker retry; Abort
  /// and Report keep the pre-fault-framework semantics.
  sim::FaultPolicy fault_policy = sim::FaultPolicy::Recover;
  sim::ChecksumMode checksums = sim::ChecksumMode::Auto;
  /// Broker-level re-admissions allowed per query after its batch exhausted
  /// in-engine recovery (0 fails immediately).
  int retry_budget = 2;
  /// Capped exponential backoff before a re-admission: base * 2^attempt,
  /// capped.  A retry that cannot land before the query's deadline is not
  /// scheduled — the query fails fast instead.
  double retry_backoff_s = 1e-3;
  double retry_backoff_cap_s = 8e-3;
  HedgeConfig hedge;
};

/// Aggregate outcome of one served workload.
struct ServiceReport {
  /// Every terminal result in decision order (identical on all ranks; this
  /// is rank 0's copy).
  std::vector<QueryResult> results;

  uint64_t submitted = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;           ///< queue-capacity refusals
  uint64_t shed = 0;               ///< fast-failed by the overload breaker
  uint64_t completed = 0;          ///< Done before deadline
  uint64_t expired_in_queue = 0;   ///< swept at batch formation
  uint64_t expired_late = 0;       ///< executed but finished past deadline
  uint64_t failed = 0;             ///< terminal Failed (retry budget ran out)
  uint64_t retried = 0;            ///< broker re-admissions after failed batches
  uint64_t batches = 0;
  uint64_t failed_batches = 0;     ///< batches that exhausted in-engine recovery
  uint64_t hedged_batches = 0;     ///< batches hedge-re-executed past the cut
  uint64_t breaker_transitions = 0;
  /// Staging-pool growths (summed over ranks) during the first executed
  /// batch vs. after it; steady must be 0 for BFS workloads (the resident
  /// pools are primed once — the chaos suite gates this under faults too).
  uint64_t staging_allocs_warmup = 0;
  uint64_t staging_allocs_steady = 0;
  /// Distance-oracle telemetry (service.cache.* in the metrics report).
  oracle::CacheStats cache;
  double mean_batch_occupancy = 0;  ///< queries per executed batch
  double makespan_s = 0;            ///< virtual clock at the last decision
  double qps = 0;                   ///< completed / makespan
  double latency_mean_s = 0;        ///< over completed queries
  double latency_p50_s = 0;
  double latency_p95_s = 0;
  double latency_p99_s = 0;
  sim::SpmdReport spmd;

  uint64_t expired_total() const { return expired_in_queue + expired_late; }

  /// Fold into a metrics report under "service." (plus the comm/fault/spmd
  /// aggregates via SpmdReport::to_report) — what service_runner's
  /// --metrics-out serializes.
  void to_report(obs::Report& report) const;
};

/// Nearest-rank percentile of an unsorted sample set (p in [0, 100]).
double percentile(std::vector<double> samples, double p);

/// One resident graph serving whole workloads.  serve() runs one SPMD
/// session: setup (generate, partition, pick the root pool, warm the
/// workspace) happens once, then every query of the workload executes
/// against the resident structures.
class GraphSession {
 public:
  GraphSession(const sim::Topology& topology, const ServiceConfig& config)
      : topology_(topology), config_(config) {}

  const ServiceConfig& config() const { return config_; }

  /// Serve `workload` with batch formation under `broker`.  Deterministic in
  /// (config, workload.seed): serving the same workload twice yields
  /// bit-identical reports.
  ServiceReport serve(const WorkloadConfig& workload,
                      const BrokerConfig& broker) const;

 private:
  sim::Topology topology_;  ///< by value: the session outlives its argument
  ServiceConfig config_;
};

}  // namespace sunbfs::service
