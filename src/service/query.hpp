#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "graph/types.hpp"

/// Query model of the graph query service (docs/SERVICE.md).
///
/// A Query is one traversal request against a resident GraphSession: a BFS
/// (answered by the batched multi-root engine, up to kMaxBatchWidth roots per
/// batch) or an SSSP-root query (Graph 500 kernel 3 over the same graph).
/// Every time field is on the service's *virtual* clock — the deterministic
/// modeled-time clock the broker schedules on — so a seeded workload replays
/// to bit-identical results and latency statistics.
///
/// Failure surface, mirroring the typed-fault style of sim/fault.hpp: a
/// query that misses its deadline yields a QueryExpired-formatted result
/// (status Expired) instead of stalling its batch, a query refused by
/// admission control yields QueryRejected (status Rejected), a query shed by
/// the overload breaker yields QueryShed (status Rejected, a fast-failure
/// instead of a slow expiry), and a query whose batch exhausted in-engine
/// fault recovery is either re-admitted (QueryRetried, not terminal) or
/// fails for good (QueryFailed, status Failed) once its retry budget or
/// deadline rules another attempt out.  Every typed outcome carries the
/// query id and its enqueue/deadline timestamps, so a workload replay log
/// is self-describing (docs/SERVICE.md "Degraded modes").
namespace sunbfs::service {

/// Widest batch the multi-source BFS engine runs: one bit per query in each
/// frontier/visited word.
inline constexpr int kMaxBatchWidth = 64;

inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

enum class QueryKind : int {
  Bfs = 0,       ///< BFS parent tree from one root (batched, bit-parallel)
  SsspRoot = 1,  ///< single-source shortest paths from one root
  Distance = 2,  ///< point-to-point hop distance root -> target
  Reachable = 3, ///< point-to-point reachability root -> target
};
const char* query_kind_name(QueryKind kind);

/// Point-to-point kinds carry a target and are answerable by the distance
/// oracle's landmark sketches (src/service/oracle/).
inline bool query_kind_point_to_point(QueryKind kind) {
  return kind == QueryKind::Distance || kind == QueryKind::Reachable;
}

enum class QueryStatus : int {
  Done = 0,  ///< executed, completed before its deadline
  Expired,   ///< deadline passed while queued, or completion came too late
  Rejected,  ///< refused by admission control (queue full or load shed)
  Failed,    ///< batch exhausted fault recovery and the retry budget ran out
};
const char* query_status_name(QueryStatus status);

struct Query {
  uint64_t id = 0;
  QueryKind kind = QueryKind::Bfs;
  graph::Vertex root = 0;
  /// Distance/Reachable endpoint (kNoVertex for whole-tree kinds).
  graph::Vertex target = graph::kNoVertex;
  double arrival_s = 0;            ///< virtual arrival time
  double deadline_s = kNoDeadline; ///< absolute virtual deadline
  /// Scheduling priority: 0 is the lowest (shed first when the overload
  /// breaker opens); higher priorities are never shed.
  int priority = 1;
  /// Executions already attempted (0 on first admission; the broker retry
  /// path re-admits with attempt + 1 after an in-engine recovery failure).
  int attempt = 0;
};

/// Outcome of one query, recorded by the session in decision order.
struct QueryResult {
  uint64_t id = 0;
  QueryKind kind = QueryKind::Bfs;
  QueryStatus status = QueryStatus::Done;
  graph::Vertex root = 0;
  graph::Vertex target = graph::kNoVertex;  ///< Distance/Reachable endpoint
  double arrival_s = 0;
  double deadline_s = kNoDeadline;  ///< absolute virtual deadline, replayable
  double start_s = 0;    ///< batch execution start (0 when never executed)
  double done_s = 0;     ///< completion / expiry / rejection / failure time
  double latency_s = 0;  ///< done_s - arrival_s (queue wait + service)
  uint64_t traversed_edges = 0;
  int levels = 0;  ///< BFS levels (0 for SSSP / point / unexecuted queries)
  /// Distance: hop count root -> target, -1 when unreachable.  Always -1 for
  /// other kinds (Reachable answers deliberately carry no distance, so the
  /// cache-served and engine-computed forms are bit-identical).
  int64_t distance = -1;
  /// Distance/Reachable: whether target is reachable from root.
  bool reachable = false;
  /// Served by the distance oracle with zero engine work (docs/SERVICE.md
  /// "The distance oracle"): the query bypassed batch formation and was
  /// charged the modeled probe cost instead of an engine round.
  bool cache_hit = false;
  /// Graph epoch the query was admitted and served at (0 until the first
  /// mutation batch).  Mutation batches only apply with the broker's queue
  /// drained, so a query's admission epoch and execution epoch coincide —
  /// the read-consistency contract of docs/SERVICE.md "Mutations & epochs".
  uint64_t epoch = 0;
  int retries = 0;     ///< broker re-admissions before this terminal state
  bool hedged = false; ///< batch was hedge-re-executed past the straggle cut
  std::string error;  ///< typed outcome message when not Done

  bool ok() const { return status == QueryStatus::Done; }
};

/// Typed deadline miss (the service analogue of sim::FaultDetected): raised
/// or recorded when a query's virtual deadline passes before its result is
/// ready.  The broker never throws this into a running batch — expired
/// queries are swept out at batch formation, and late completions are marked
/// after the batch, so one slow query cannot stall its neighbours.
class QueryExpired : public std::runtime_error {
 public:
  QueryExpired(uint64_t id, double arrival_s, double deadline_s, double now_s);

  uint64_t id;
  double arrival_s;
  double deadline_s;
  double now_s;
};

/// Typed admission refusal: the bounded queue was at capacity.
class QueryRejected : public std::runtime_error {
 public:
  QueryRejected(uint64_t id, double arrival_s, double deadline_s,
                size_t capacity);

  uint64_t id;
  double arrival_s;
  double deadline_s;
  size_t capacity;
};

/// Typed overload refusal: the circuit breaker was open (shedding or
/// probing) and the query's priority made it sheddable.  A fast-failure the
/// caller sees immediately, instead of queueing toward a certain expiry.
class QueryShed : public std::runtime_error {
 public:
  QueryShed(uint64_t id, double arrival_s, double deadline_s, double now_s);

  uint64_t id;
  double arrival_s;
  double deadline_s;
  double now_s;
};

/// Typed permanent failure: the query's batch exhausted in-engine fault
/// recovery (sim::FaultDetected) and no further attempt fits the retry
/// budget or the deadline.
class QueryFailed : public std::runtime_error {
 public:
  QueryFailed(uint64_t id, double arrival_s, double deadline_s, double now_s,
              int attempts, const std::string& why);

  uint64_t id;
  double arrival_s;
  double deadline_s;
  double now_s;
  int attempts;
};

/// Typed mutation notice (not a failure): mutation batch `epoch` was applied
/// to the resident partitions at virtual time `now_s`, advancing the graph
/// epoch.  The session logs one per batch, so a serving log records exactly
/// where the graph changed under the query stream (docs/SERVICE.md
/// "Mutations & epochs").
class MutationApplied : public std::runtime_error {
 public:
  MutationApplied(uint64_t epoch, uint64_t inserts, uint64_t deletes,
                  uint64_t delete_misses, double now_s);

  uint64_t epoch;
  uint64_t inserts;
  uint64_t deletes;
  uint64_t delete_misses;
  double now_s;
};

/// Typed retry notice (not terminal): the query survived a failed batch and
/// was re-admitted for attempt `attempt` at virtual time `retry_at_s`.  The
/// session logs it; the eventual terminal result carries the retry count.
class QueryRetried : public std::runtime_error {
 public:
  QueryRetried(uint64_t id, double arrival_s, double deadline_s, int attempt,
               double retry_at_s);

  uint64_t id;
  double arrival_s;
  double deadline_s;
  int attempt;
  double retry_at_s;
};

}  // namespace sunbfs::service
