#include "service/query.hpp"

namespace sunbfs::service {
namespace {

std::string expired_message(uint64_t id, double deadline_s, double now_s) {
  return "QueryExpired: query " + std::to_string(id) + " deadline " +
         std::to_string(deadline_s) + "s passed at virtual time " +
         std::to_string(now_s) + "s";
}

std::string rejected_message(uint64_t id, size_t capacity) {
  return "QueryRejected: query " + std::to_string(id) +
         " refused, admission queue at capacity " + std::to_string(capacity);
}

}  // namespace

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::Bfs: return "bfs";
    case QueryKind::SsspRoot: return "sssp";
  }
  return "?";
}

const char* query_status_name(QueryStatus status) {
  switch (status) {
    case QueryStatus::Done: return "done";
    case QueryStatus::Expired: return "expired";
    case QueryStatus::Rejected: return "rejected";
  }
  return "?";
}

QueryExpired::QueryExpired(uint64_t id, double deadline_s, double now_s)
    : std::runtime_error(expired_message(id, deadline_s, now_s)),
      id(id),
      deadline_s(deadline_s),
      now_s(now_s) {}

QueryRejected::QueryRejected(uint64_t id, size_t capacity)
    : std::runtime_error(rejected_message(id, capacity)),
      id(id),
      capacity(capacity) {}

}  // namespace sunbfs::service
