#include "service/query.hpp"

namespace sunbfs::service {
namespace {

std::string stamp(uint64_t id, double arrival_s, double deadline_s) {
  std::string s = "query " + std::to_string(id) + " (enqueued " +
                  std::to_string(arrival_s) + "s, deadline ";
  s += deadline_s == kNoDeadline ? "none" : std::to_string(deadline_s) + "s";
  return s + ")";
}

std::string expired_message(uint64_t id, double arrival_s, double deadline_s,
                            double now_s) {
  return "QueryExpired: " + stamp(id, arrival_s, deadline_s) +
         " passed at virtual time " + std::to_string(now_s) + "s";
}

std::string rejected_message(uint64_t id, double arrival_s, double deadline_s,
                             size_t capacity) {
  return "QueryRejected: " + stamp(id, arrival_s, deadline_s) +
         " refused, admission queue at capacity " + std::to_string(capacity);
}

std::string shed_message(uint64_t id, double arrival_s, double deadline_s,
                         double now_s) {
  return "QueryShed: " + stamp(id, arrival_s, deadline_s) +
         " shed by the overload breaker at virtual time " +
         std::to_string(now_s) + "s";
}

std::string failed_message(uint64_t id, double arrival_s, double deadline_s,
                           double now_s, int attempts,
                           const std::string& why) {
  return "QueryFailed: " + stamp(id, arrival_s, deadline_s) + " failed after " +
         std::to_string(attempts) + " attempt(s) at virtual time " +
         std::to_string(now_s) + "s: " + why;
}

std::string mutation_message(uint64_t epoch, uint64_t inserts, uint64_t deletes,
                             uint64_t delete_misses, double now_s) {
  return "MutationApplied: epoch " + std::to_string(epoch) + " (" +
         std::to_string(inserts) + " inserts, " + std::to_string(deletes) +
         " deletes, " + std::to_string(delete_misses) +
         " tombstone misses) applied at virtual time " + std::to_string(now_s) +
         "s";
}

std::string retried_message(uint64_t id, double arrival_s, double deadline_s,
                            int attempt, double retry_at_s) {
  return "QueryRetried: " + stamp(id, arrival_s, deadline_s) +
         " re-admitted for attempt " + std::to_string(attempt) +
         " at virtual time " + std::to_string(retry_at_s) + "s";
}

}  // namespace

const char* query_kind_name(QueryKind kind) {
  switch (kind) {
    case QueryKind::Bfs: return "bfs";
    case QueryKind::SsspRoot: return "sssp";
    case QueryKind::Distance: return "dist";
    case QueryKind::Reachable: return "reach";
  }
  return "?";
}

const char* query_status_name(QueryStatus status) {
  switch (status) {
    case QueryStatus::Done: return "done";
    case QueryStatus::Expired: return "expired";
    case QueryStatus::Rejected: return "rejected";
    case QueryStatus::Failed: return "failed";
  }
  return "?";
}

QueryExpired::QueryExpired(uint64_t id, double arrival_s, double deadline_s,
                           double now_s)
    : std::runtime_error(expired_message(id, arrival_s, deadline_s, now_s)),
      id(id),
      arrival_s(arrival_s),
      deadline_s(deadline_s),
      now_s(now_s) {}

QueryRejected::QueryRejected(uint64_t id, double arrival_s, double deadline_s,
                             size_t capacity)
    : std::runtime_error(rejected_message(id, arrival_s, deadline_s, capacity)),
      id(id),
      arrival_s(arrival_s),
      deadline_s(deadline_s),
      capacity(capacity) {}

QueryShed::QueryShed(uint64_t id, double arrival_s, double deadline_s,
                     double now_s)
    : std::runtime_error(shed_message(id, arrival_s, deadline_s, now_s)),
      id(id),
      arrival_s(arrival_s),
      deadline_s(deadline_s),
      now_s(now_s) {}

QueryFailed::QueryFailed(uint64_t id, double arrival_s, double deadline_s,
                         double now_s, int attempts, const std::string& why)
    : std::runtime_error(
          failed_message(id, arrival_s, deadline_s, now_s, attempts, why)),
      id(id),
      arrival_s(arrival_s),
      deadline_s(deadline_s),
      now_s(now_s),
      attempts(attempts) {}

MutationApplied::MutationApplied(uint64_t epoch, uint64_t inserts,
                                 uint64_t deletes, uint64_t delete_misses,
                                 double now_s)
    : std::runtime_error(
          mutation_message(epoch, inserts, deletes, delete_misses, now_s)),
      epoch(epoch),
      inserts(inserts),
      deletes(deletes),
      delete_misses(delete_misses),
      now_s(now_s) {}

QueryRetried::QueryRetried(uint64_t id, double arrival_s, double deadline_s,
                           int attempt, double retry_at_s)
    : std::runtime_error(
          retried_message(id, arrival_s, deadline_s, attempt, retry_at_s)),
      id(id),
      arrival_s(arrival_s),
      deadline_s(deadline_s),
      attempt(attempt),
      retry_at_s(retry_at_s) {}

}  // namespace sunbfs::service
