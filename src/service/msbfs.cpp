#include "service/msbfs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>

#include "bfs/workspace.hpp"
#include "obs/trace.hpp"
#include "service/query.hpp"
#include "support/check.hpp"

namespace sunbfs::service {

using graph::Vertex;
using graph::kNoVertex;

namespace {

/// Lock-free fetch-max, the same determinism scheme as the single-root
/// engines: every concurrent candidate for a slot is recorded and the
/// maximum wins, so the output is independent of the thread count.
void store_max(Vertex& slot, Vertex v) {
  std::atomic_ref<Vertex> a(slot);
  Vertex cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_or(uint64_t& slot, uint64_t bits) {
  std::atomic_ref<uint64_t> a(slot);
  a.fetch_or(bits, std::memory_order_relaxed);
}

void atomic_add(uint64_t& slot, uint64_t delta) {
  std::atomic_ref<uint64_t> a(slot);
  a.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace

MsbfsResult msbfs_run(sim::RankContext& ctx, const partition::Part1d& part,
                      std::span<const Vertex> roots,
                      const MsbfsOptions& options) {
  const partition::VertexSpace& space = part.space;
  const int width = int(roots.size());
  SUNBFS_CHECK(width >= 1 && width <= kMaxBatchWidth);
  SUNBFS_CHECK(space.max_count() < (uint64_t(1) << 32));
  const uint64_t local_count = space.count(ctx.rank);
  const uint64_t width_mask =
      width == 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;

  std::unique_ptr<bfs::BfsWorkspace> owned_ws;
  if (!options.workspace)
    owned_ws = std::make_unique<bfs::BfsWorkspace>(resolve_threads_per_rank(
        options.threads_per_rank, size_t(ctx.nranks())));
  bfs::BfsWorkspace& ws = options.workspace ? *options.workspace : *owned_ws;
  ThreadPool& pool = ws.pool();
  std::unique_ptr<sim::A2aStaging<MsbfsMsg>> owned_staging;
  if (!options.staging)
    owned_staging = std::make_unique<sim::A2aStaging<MsbfsMsg>>();
  sim::A2aStaging<MsbfsMsg>& staging =
      options.staging ? *options.staging : *owned_staging;
  staging.set_encoding(options.encoding);
  ws.frontier().set_encoding(options.encoding);

  MsbfsResult result;
  result.width = width;
  result.parent.assign(size_t(width) * local_count, kNoVertex);
  result.levels.assign(size_t(width), 0);
  Vertex* parent = result.parent.data();

  // One query-mask word per owned vertex: bit q belongs to query q.
  std::vector<uint64_t> visited(local_count, 0);
  std::vector<uint64_t> curr(local_count, 0);
  std::vector<uint64_t> next(local_count, 0);

  for (int q = 0; q < width; ++q) {
    Vertex root = roots[size_t(q)];
    SUNBFS_CHECK(root >= 0 && uint64_t(root) < space.total);
    if (space.owner(root) != ctx.rank) continue;
    uint64_t lloc = space.to_local(ctx.rank, root);
    visited[lloc] |= uint64_t(1) << q;
    curr[lloc] |= uint64_t(1) << q;
    parent[size_t(q) * local_count + lloc] = root;
  }

  // Thread-safe visit: `visited` only moves in the serial per-level commit,
  // so the fresh-bit set is stable during a threaded phase; every candidate
  // source for a fresh (vertex, query) pair reaches store_max and the
  // maximum wins, independent of thread count and message order.
  auto visit = [&](uint64_t lloc, uint64_t mask, Vertex p) {
    uint64_t fresh = mask & ~visited[lloc];
    if (fresh == 0) return;
    atomic_or(next[lloc], fresh);
    while (fresh != 0) {
      int q = std::countr_zero(fresh);
      fresh &= fresh - 1;
      store_max(parent[size_t(q) * local_count + lloc], p);
    }
  };

  auto run_push = [&] {
    staging.begin(size_t(ctx.nranks()), pool.size());
    size_t parts = pool.size();
    pool.run_chunks(parts, [&](size_t lane) {
      uint64_t lo = local_count * lane / parts;
      uint64_t hi = local_count * (lane + 1) / parts;
      uint64_t edges = 0;
      for (uint64_t lloc = lo; lloc < hi; ++lloc) {
        uint64_t mask = curr[lloc];
        if (mask == 0) continue;
        Vertex gsrc = space.to_global(ctx.rank, lloc);
        for (Vertex v : part.adj.neighbors(lloc)) {
          int owner = space.owner(v);
          if (owner == ctx.rank)
            visit(space.to_local(owner, v), mask, gsrc);
          else
            staging.push(lane, size_t(owner),
                         MsbfsMsg{uint32_t(space.to_local(owner, v)),
                                  uint32_t(lloc), mask});
        }
        edges += part.adj.degree(lloc);
      }
      atomic_add(result.work_edges, edges);
    });
    auto got = staging.exchange(ctx.world, pool);
    const auto& src_off = staging.src_offsets();
    pool.parallel_for(0, size_t(ctx.nranks()), [&](size_t lo, size_t hi) {
      for (size_t src = lo; src < hi; ++src)
        for (size_t i = src_off[src]; i < src_off[src + 1]; ++i)
          visit(got[i].dst, got[i].mask,
                space.to_global(int(src), Vertex(got[i].src)));
    });
  };

  auto run_pull = [&] {
    std::span<const uint64_t> gathered =
        ws.frontier().gather(ctx.world, std::span<const uint64_t>(curr));
    const std::vector<size_t>& off = ws.frontier().offsets();
    pool.parallel_for(0, size_t(local_count), [&](size_t lo, size_t hi) {
      uint64_t edges = 0;
      for (uint64_t lloc = lo; lloc < hi; ++lloc) {
        uint64_t pending = ~visited[lloc] & width_mask;
        if (pending == 0) continue;
        // Canonical parent rule: scan every neighbour (no early exit) and
        // keep the maximum frontier source per pending query.
        Vertex cand[kMaxBatchWidth];
        uint64_t found = 0;
        for (Vertex u : part.adj.neighbors(lloc)) {
          ++edges;
          int owner = space.owner(u);
          uint64_t hits =
              gathered[off[size_t(owner)] + (uint64_t(u) - space.begin(owner))] &
              pending;
          while (hits != 0) {
            int q = std::countr_zero(hits);
            hits &= hits - 1;
            if ((found >> q & 1) == 0 || cand[q] < u) {
              cand[q] = u;
              found |= uint64_t(1) << q;
            }
          }
        }
        if (found == 0) continue;
        next[lloc] |= found;  // this thread owns lloc's whole block
        uint64_t bits = found;
        while (bits != 0) {
          int q = std::countr_zero(bits);
          bits &= bits - 1;
          parent[size_t(q) * local_count + lloc] = cand[q];
        }
      }
      atomic_add(result.work_edges, edges);
    });
  };

  obs::Span run_span("service", "msbfs", width);
  int iteration = 0;
  for (;;) {
    ++iteration;
    uint64_t active = 0;
    for (uint64_t w : curr) active += uint64_t(std::popcount(w));
    active = ctx.world.allreduce_sum(active);
    if (active == 0) break;
    bool bottom_up = double(active) / (double(space.total) * width) >
                     options.pull_ratio;
    {
      obs::Span level_span("service", bottom_up ? "level_pull" : "level_push",
                           int64_t(active));
      if (bottom_up)
        run_pull();
      else
        run_push();
    }
    // Which queries discovered vertices this level (their depth grew to
    // `iteration`) — replicated so every rank tracks the same levels.
    uint64_t newmask = 0;
    for (uint64_t w : next) newmask |= w;
    newmask = ctx.world.allreduce(
        newmask, [](uint64_t a, uint64_t b) { return a | b; });
    for (int q = 0; q < width; ++q)
      if (newmask >> q & 1) result.levels[size_t(q)] = iteration;
    for (uint64_t i = 0; i < local_count; ++i) visited[i] |= next[i];
    std::swap(curr, next);
    std::fill(next.begin(), next.end(), uint64_t(0));
  }
  result.num_iterations = iteration - 1;
  result.compute_model_s = double(result.work_edges) *
                           options.sim_seconds_per_edge / double(pool.size());
  // The collectives advanced the modeled clock by their network seconds;
  // account the batch's compute on the same (deterministic) clock.
  obs::Tracer::advance_modeled(result.compute_model_s);
  return result;
}

}  // namespace sunbfs::service
