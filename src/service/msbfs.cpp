#include "service/msbfs.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <memory>
#include <thread>

#include "bfs/workspace.hpp"
#include "obs/trace.hpp"
#include "service/query.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace sunbfs::service {

using graph::Vertex;
using graph::kNoVertex;

namespace {

/// Lock-free fetch-max, the same determinism scheme as the single-root
/// engines: every concurrent candidate for a slot is recorded and the
/// maximum wins, so the output is independent of the thread count.
void store_max(Vertex& slot, Vertex v) {
  std::atomic_ref<Vertex> a(slot);
  Vertex cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_or(uint64_t& slot, uint64_t bits) {
  std::atomic_ref<uint64_t> a(slot);
  a.fetch_or(bits, std::memory_order_relaxed);
}

void atomic_add(uint64_t& slot, uint64_t delta) {
  std::atomic_ref<uint64_t> a(slot);
  a.fetch_add(delta, std::memory_order_relaxed);
}

}  // namespace

MsbfsResult msbfs_run(sim::RankContext& ctx, const partition::Part1d& part,
                      std::span<const Vertex> roots,
                      const MsbfsOptions& options) {
  const partition::VertexSpace& space = part.space;
  const int width = int(roots.size());
  SUNBFS_CHECK(width >= 1 && width <= kMaxBatchWidth);
  SUNBFS_CHECK(space.max_count() < (uint64_t(1) << 32));
  const uint64_t local_count = space.count(ctx.rank);
  const uint64_t width_mask =
      width == 64 ? ~uint64_t(0) : (uint64_t(1) << width) - 1;

  std::unique_ptr<bfs::BfsWorkspace> owned_ws;
  if (!options.workspace)
    owned_ws = std::make_unique<bfs::BfsWorkspace>(resolve_threads_per_rank(
        options.threads_per_rank, size_t(ctx.nranks())));
  bfs::BfsWorkspace& ws = options.workspace ? *options.workspace : *owned_ws;
  ThreadPool& pool = ws.pool();
  std::unique_ptr<sim::ExchangeChannel<MsbfsMsg>> owned_staging;
  if (!options.staging)
    owned_staging = std::make_unique<sim::ExchangeChannel<MsbfsMsg>>();
  sim::ExchangeChannel<MsbfsMsg>& staging =
      options.staging ? *options.staging : *owned_staging;
  staging.set_encoding(options.encoding);
  ws.frontier().set_encoding(options.encoding);
  const sim::ExchangePlan plan = sim::ExchangePlan::build(
      options.exchange.backend, ctx.nranks(), ctx.mesh);

  MsbfsResult result;
  result.width = width;
  result.parent.assign(size_t(width) * local_count, kNoVertex);
  result.levels.assign(size_t(width), 0);
  if (options.record_depths)
    result.depth.assign(size_t(width) * local_count, int32_t(-1));
  Vertex* parent = result.parent.data();

  // One query-mask word per owned vertex: bit q belongs to query q.
  std::vector<uint64_t> visited(local_count, 0);
  std::vector<uint64_t> curr(local_count, 0);
  std::vector<uint64_t> next(local_count, 0);

  for (int q = 0; q < width; ++q) {
    Vertex root = roots[size_t(q)];
    SUNBFS_CHECK(root >= 0 && uint64_t(root) < space.total);
    if (space.owner(root) != ctx.rank) continue;
    uint64_t lloc = space.to_local(ctx.rank, root);
    visited[lloc] |= uint64_t(1) << q;
    curr[lloc] |= uint64_t(1) << q;
    parent[size_t(q) * local_count + lloc] = root;
    if (options.record_depths) result.depth[size_t(q) * local_count + lloc] = 0;
  }

  // Thread-safe visit: `visited` only moves in the serial per-level commit,
  // so the fresh-bit set is stable during a threaded phase; every candidate
  // source for a fresh (vertex, query) pair reaches store_max and the
  // maximum wins, independent of thread count and message order.
  auto visit = [&](uint64_t lloc, uint64_t mask, Vertex p) {
    uint64_t fresh = mask & ~visited[lloc];
    if (fresh == 0) return;
    atomic_or(next[lloc], fresh);
    while (fresh != 0) {
      int q = std::countr_zero(fresh);
      fresh &= fresh - 1;
      store_max(parent[size_t(q) * local_count + lloc], p);
    }
  };

  auto run_push = [&] {
    staging.begin(size_t(ctx.nranks()), pool.size(), plan, ctx.rank);
    size_t parts = pool.size();
    pool.run_chunks(parts, [&](size_t lane) {
      uint64_t lo = local_count * lane / parts;
      uint64_t hi = local_count * (lane + 1) / parts;
      uint64_t edges = 0;
      for (uint64_t lloc = lo; lloc < hi; ++lloc) {
        uint64_t mask = curr[lloc];
        if (mask == 0) continue;
        Vertex gsrc = space.to_global(ctx.rank, lloc);
        for (Vertex v : part.adj.neighbors(lloc)) {
          int owner = space.owner(v);
          if (owner == ctx.rank)
            visit(space.to_local(owner, v), mask, gsrc);
          else
            staging.push(lane, size_t(owner),
                         MsbfsMsg{uint32_t(space.to_local(owner, v)),
                                  uint32_t(lloc), mask});
        }
        edges += part.adj.degree(lloc);
      }
      atomic_add(result.work_edges, edges);
    });
    auto got = staging.exchange(ctx.world, pool);
    const auto& src_off = staging.src_offsets();
    pool.parallel_for(0, size_t(ctx.nranks()), [&](size_t lo, size_t hi) {
      for (size_t src = lo; src < hi; ++src)
        for (size_t i = src_off[src]; i < src_off[src + 1]; ++i)
          visit(got[i].dst, got[i].mask,
                space.to_global(int(src), Vertex(got[i].src)));
    });
  };

  auto run_pull = [&] {
    std::span<const uint64_t> gathered =
        ws.frontier().gather(ctx.world, std::span<const uint64_t>(curr));
    const std::vector<size_t>& off = ws.frontier().offsets();
    pool.parallel_for(0, size_t(local_count), [&](size_t lo, size_t hi) {
      uint64_t edges = 0;
      for (uint64_t lloc = lo; lloc < hi; ++lloc) {
        uint64_t pending = ~visited[lloc] & width_mask;
        if (pending == 0) continue;
        // Canonical parent rule: scan every neighbour (no early exit) and
        // keep the maximum frontier source per pending query.
        Vertex cand[kMaxBatchWidth];
        uint64_t found = 0;
        for (Vertex u : part.adj.neighbors(lloc)) {
          ++edges;
          int owner = space.owner(u);
          uint64_t hits =
              gathered[off[size_t(owner)] + (uint64_t(u) - space.begin(owner))] &
              pending;
          while (hits != 0) {
            int q = std::countr_zero(hits);
            hits &= hits - 1;
            if ((found >> q & 1) == 0 || cand[q] < u) {
              cand[q] = u;
              found |= uint64_t(1) << q;
            }
          }
        }
        if (found == 0) continue;
        next[lloc] |= found;  // this thread owns lloc's whole block
        uint64_t bits = found;
        while (bits != 0) {
          int q = std::countr_zero(bits);
          bits &= bits - 1;
          parent[size_t(q) * local_count + lloc] = cand[q];
        }
      }
      atomic_add(result.work_edges, edges);
    });
  };

  // Checkpoint/rollback recovery, the bfs1d/bfs15d contract extended to the
  // batch: snapshot {visited, frontier, parents, levels} every
  // checkpoint_interval levels; when a corrupted contribution was dropped
  // (agreed collectively below) or a planned rank failure fires (replicated
  // plan — no agreement needed), every rank rolls back together after a
  // capped exponential backoff.  Nothing is committed from a faulty pass, so
  // the replayed batch stays bit-identical to a fault-free run.
  const bool resilient = ctx.faults.recovering();
  const sim::RecoveryOptions& rec = options.recovery;
  std::vector<bool> fired_failures;
  if (resilient) {
    SUNBFS_CHECK(rec.checkpoint_interval >= 1);
    fired_failures.assign(ctx.faults.plan->rank_failures().size(), false);
  }
  struct Checkpoint {
    int iteration = 0;
    std::vector<uint64_t> visited, curr;
    std::vector<Vertex> parent;
    std::vector<int> levels;
    std::vector<int32_t> depth;
    uint64_t bytes_sent = 0;
  } ckpt;
  int consecutive_retries = 0;
  bool in_recovery = false;
  auto save_checkpoint = [&](int it) {
    ckpt.iteration = it;
    ckpt.visited = visited;
    ckpt.curr = curr;
    ckpt.parent.assign(result.parent.begin(), result.parent.end());
    ckpt.levels = result.levels;
    ckpt.depth = result.depth;
    ckpt.bytes_sent = ctx.stats.total_bytes_sent();
  };
  auto rollback = [&](int& it) {
    obs::Span span("fault", "rollback", ckpt.iteration);
    obs::instant("fault", "rollback_from", it);
    ++consecutive_retries;
    if (consecutive_retries > rec.max_retries)
      throw sim::FaultDetected("fault: recovery retries exhausted after " +
                               std::to_string(rec.max_retries) + " attempts");
    auto& fs = ctx.faults.stats;
    ++fs.retries;
    in_recovery = true;
    double delay = sim::backoff_delay_s(rec, consecutive_retries);
    fs.backoff_s += delay;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    obs::Tracer::advance_modeled(delay);
    fs.resent_bytes += ctx.stats.total_bytes_sent() - ckpt.bytes_sent;
    visited = ckpt.visited;
    curr = ckpt.curr;
    std::fill(next.begin(), next.end(), uint64_t(0));
    std::copy(ckpt.parent.begin(), ckpt.parent.end(), result.parent.begin());
    result.levels = ckpt.levels;
    result.depth = ckpt.depth;
    it = ckpt.iteration;
    log_debug("msbfs rank ", ctx.rank, ": rolled back to level checkpoint ",
              ckpt.iteration, " (retry ", consecutive_retries, ")");
  };
  auto take_rank_failure = [&](int it) {
    const auto& failures = ctx.faults.plan->rank_failures();
    bool fired = false;
    for (size_t i = 0; i < failures.size(); ++i) {
      if (fired_failures[i] || failures[i].level != it) continue;
      fired_failures[i] = true;
      fired = true;
      if (failures[i].rank == ctx.rank) {
        ++ctx.faults.stats.injected_failures;
        log_debug("msbfs rank ", ctx.rank,
                  ": injected hard failure at level ", it);
        std::fill(visited.begin(), visited.end(), uint64_t(0));
        std::fill(curr.begin(), curr.end(), uint64_t(0));
        std::fill(next.begin(), next.end(), uint64_t(0));
        std::fill(result.parent.begin(), result.parent.end(), kNoVertex);
      }
    }
    return fired;
  };

  obs::Span run_span("service", "msbfs", width);
  if (resilient) save_checkpoint(0);
  int iteration = 0;
  for (;;) {
    ++iteration;
    if (resilient && take_rank_failure(iteration)) {
      rollback(iteration);
      continue;
    }
    // Without the recover policy a scheduled failure simply kills the rank.
    if (!resilient && ctx.faults.active())
      for (const auto& f : ctx.faults.plan->rank_failures())
        if (f.rank == ctx.rank && f.level == iteration)
          throw sim::RankFailure(f.rank, f.level);
    uint64_t active = 0;
    for (uint64_t w : curr) active += uint64_t(std::popcount(w));
    active = ctx.world.allreduce_sum(active);
    const bool frontier_empty = active == 0;
    uint64_t newmask = 0;
    if (!frontier_empty) {
      bool bottom_up = double(active) / (double(space.total) * width) >
                       options.pull_ratio;
      {
        obs::Span level_span("service", bottom_up ? "level_pull" : "level_push",
                             int64_t(active));
        if (bottom_up)
          run_pull();
        else
          run_push();
      }
      // Which queries discovered vertices this level (their depth grew to
      // `iteration`) — replicated so every rank tracks the same levels.
      for (uint64_t w : next) newmask |= w;
      newmask = ctx.world.allreduce(
          newmask, [](uint64_t a, uint64_t b) { return a | b; });
    }
    if (resilient) {
      // Agree on the dropped-contribution flag; the pass commits nothing
      // until every rank is known clean, so a rollback discards the level
      // wholesale (including the possibly-poisoned `active`/newmask words).
      bool faulty = ctx.world.allreduce_or(ctx.faults.take_pending());
      faulty = ctx.faults.take_pending() || faulty;
      if (faulty) {
        rollback(iteration);
        continue;
      }
      if (in_recovery) {
        ++ctx.faults.stats.recovered;
        in_recovery = false;
        consecutive_retries = 0;
      }
    }
    if (frontier_empty) break;
    for (int q = 0; q < width; ++q)
      if (newmask >> q & 1) result.levels[size_t(q)] = iteration;
    // Depth stamping rides the serial commit: every bit in `next` is fresh
    // (visit/pull only set unvisited bits), so its depth is this level.
    if (options.record_depths)
      for (uint64_t i = 0; i < local_count; ++i) {
        uint64_t bits = next[i];
        while (bits != 0) {
          int q = std::countr_zero(bits);
          bits &= bits - 1;
          result.depth[size_t(q) * local_count + i] = int32_t(iteration);
        }
      }
    for (uint64_t i = 0; i < local_count; ++i) visited[i] |= next[i];
    std::swap(curr, next);
    std::fill(next.begin(), next.end(), uint64_t(0));
    if (resilient && iteration % rec.checkpoint_interval == 0)
      save_checkpoint(iteration);
  }
  result.num_iterations = iteration - 1;
  result.compute_model_s = double(result.work_edges) *
                           options.sim_seconds_per_edge / double(pool.size());
  // The collectives advanced the modeled clock by their network seconds;
  // account the batch's compute on the same (deterministic) clock.
  obs::Tracer::advance_modeled(result.compute_model_s);
  return result;
}

}  // namespace sunbfs::service
