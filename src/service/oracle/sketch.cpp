#include "service/oracle/sketch.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"

namespace sunbfs::service::oracle {

void LandmarkSketch::install(std::vector<graph::Vertex> landmarks,
                             std::vector<int32_t> rows,
                             uint64_t num_vertices) {
  SUNBFS_CHECK(rows.size() == landmarks.size() * num_vertices);
  landmarks_ = std::move(landmarks);
  rows_ = std::move(rows);
  num_vertices_ = num_vertices;
}

SketchProbe LandmarkSketch::probe(graph::Vertex u, graph::Vertex v) const {
  SketchProbe p;
  if (u == v) {
    // d(v, v) = 0 trivially, landmark coverage or not.
    p.known_reachable = true;
    p.lower = p.upper = 0;
    return p;
  }
  for (int l = 0; l < num_landmarks(); ++l) {
    const int64_t du = depth(l, u);
    const int64_t dv = depth(l, v);
    const bool fu = du != kNoDepth;
    const bool fv = dv != kNoDepth;
    if (fu != fv) {
      // Undirected graph: one endpoint shares this landmark's component and
      // the other does not, so they are in different components — definitive.
      p.known_unreachable = true;
      p.known_reachable = false;
      return p;
    }
    if (!fu) continue;  // landmark sees neither endpoint: no information
    p.known_reachable = true;
    p.upper = std::min(p.upper, du + dv);
    p.lower = std::max(p.lower, std::abs(du - dv));
  }
  return p;
}

}  // namespace sunbfs::service::oracle
