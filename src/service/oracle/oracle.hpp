#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "partition/space.hpp"
#include "service/oracle/lru.hpp"
#include "service/oracle/sketch.hpp"
#include "service/query.hpp"

/// The distance-oracle cache: a subsystem layered between the QueryBroker
/// and the traversal engines (docs/SERVICE.md "The distance oracle").
///
/// Three artifact classes:
///  1. **Exact BFS trees** — an LRU of recent engine answers keyed by root.
///     A hit answers any query on that root (BFS scalars, dist(root, t),
///     reachability) with zero engine work.
///  2. **Landmark sketches** — k pinned roots traversed in one bit-parallel
///     MS-BFS batch; triangle bounds over their depth rows answer
///     point-to-point queries whose bounds close (LandmarkSketch).
///  3. **Leases** — every artifact expires at an absolute virtual-clock
///     time, locally and without a broadcast invalidation round; the next
///     probe that touches a stale entry evicts it (trees) or triggers one
///     batched refresh (the sketch).
///
/// Replication contract: every rank holds an identical oracle driven by
/// identical inputs (the virtual clock, the replicated query stream, depth
/// rows allgathered after each engine batch), so probes are pure-local and
/// hit/miss decisions never disturb the SPMD collective order.
namespace sunbfs::service::oracle {

struct CacheConfig {
  bool enabled = false;
  /// LRU capacity of the exact-tree cache (entries are V-length depth rows).
  size_t tree_capacity = 32;
  /// Lease on a cached exact tree (virtual seconds).
  double tree_lease_s = 0.25;
  /// Pinned landmark roots (<= kMaxBatchWidth, one bit-parallel batch).
  int landmarks = 16;
  /// Lease on the landmark sketch; expiry triggers one batched refresh.
  double sketch_lease_s = 1.0;
  /// Modeled service time charged to a cache hit (the probe is a local
  /// memory lookup, not an engine round).
  double probe_cost_s = 2e-6;
};

/// Cache telemetry, surfaced as service.cache.* (docs/OBSERVABILITY.md).
struct CacheStats {
  uint64_t probes = 0;          ///< cacheable-kind admissions probed
  uint64_t hits = 0;            ///< queries served with zero engine work
  uint64_t misses = 0;          ///< probes that fell through to the engines
  uint64_t expired = 0;         ///< lease expiries observed (trees + sketch)
  uint64_t refreshes = 0;       ///< landmark sketch (re)builds
  uint64_t sketch_answers = 0;  ///< hits closed by landmark triangle bounds
  uint64_t tree_hits = 0;       ///< hits served from a cached exact tree

  double hit_rate() const {
    return probes > 0 ? double(hits) / double(probes) : 0;
  }
};

/// One cached exact answer: the full replicated depth row from its root,
/// plus the engine-grade scalars a BFS result reports.
struct CachedTree {
  std::vector<int32_t> depth;   ///< full V-length hop depths (kNoDepth = unreached)
  uint64_t traversed_edges = 0; ///< degree-sum TEPS numerator (global, halved)
  int levels = 0;               ///< BFS levels from the root
};

class DistanceOracle {
 public:
  DistanceOracle(const CacheConfig& config, uint64_t num_vertices)
      : config_(config),
        num_vertices_(num_vertices),
        trees_(config.tree_capacity) {}

  const CacheConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }
  const CacheStats& stats() const { return stats_; }
  size_t tree_count() const { return trees_.size(); }
  uint64_t epoch() const { return epoch_; }

  /// Advance the graph epoch after a mutation batch.  Cached trees and the
  /// landmark sketch carry the epoch they were built at; stale-epoch trees
  /// self-evict on the next probe (the lease path) and the sketch stops
  /// answering immediately — triangle bounds are never served across an
  /// epoch boundary.  Replicated: every rank bumps at the same point in the
  /// query stream.
  void bump_epoch() { ++epoch_; }

  /// A probed query's cache-served answer.  `hit` false means engine work is
  /// required; the other fields are then meaningless.
  struct Answer {
    bool hit = false;
    bool sketch = false;  ///< closed by landmark bounds (else an exact tree)
    int64_t distance = -1;
    bool reachable = false;
    uint64_t traversed_edges = 0;
    int levels = 0;
  };

  /// Probe all artifact classes for `q` at virtual time `now_s`.  Order:
  /// exact tree on the root, exact tree on the target (undirected symmetry),
  /// then landmark bounds.  Expired entries encountered on the way are
  /// evicted and counted.  SSSP queries are not cacheable and never probed.
  Answer probe(const Query& q, double now_s);

  /// True when point-to-point probes need a sketch the oracle does not have
  /// (never built, lease passed, or stale epoch) — the session must refresh
  /// before probing.
  bool sketch_due(double now_s) const {
    return config_.enabled && config_.landmarks > 0 &&
           (sketch_.empty() || sketch_expires_s_ <= now_s ||
            sketch_epoch_ != epoch_);
  }

  /// True when the resident sketch may answer probes right now (live lease
  /// AND built at the current epoch).
  bool sketch_live(double now_s) const {
    return !sketch_.empty() && sketch_expires_s_ > now_s &&
           sketch_epoch_ == epoch_;
  }

  /// Install freshly gathered landmark rows at virtual time `now_s`; the new
  /// lease runs to now_s + sketch_lease_s.
  void install_sketch(std::vector<graph::Vertex> landmarks,
                      std::vector<int32_t> rows, double now_s);

  /// Cache the exact tree for `root` computed by an engine batch at virtual
  /// time `now_s`; the lease runs to now_s + tree_lease_s.
  void insert_tree(graph::Vertex root, CachedTree tree, double now_s);

 private:
  CacheConfig config_;
  uint64_t num_vertices_;
  uint64_t epoch_ = 0;  ///< graph epoch; mutation batches bump_epoch()
  CacheStats stats_;
  LeaseLru<graph::Vertex, CachedTree> trees_;
  LandmarkSketch sketch_;
  double sketch_expires_s_ = 0;
  uint64_t sketch_epoch_ = 0;  ///< epoch the resident sketch was built at
};

/// Reshuffle the allgathered per-rank depth blocks (each rank contributes
/// its owned slice query-major: block[q * count(r) + lloc]) into full
/// landmark-major rows: out[q * space.total + global].  `offsets` is the
/// per-rank offset table the allgatherv produced.
std::vector<int32_t> assemble_depth_rows(const partition::VertexSpace& space,
                                         int width,
                                         std::span<const int32_t> gathered,
                                         std::span<const size_t> offsets);

}  // namespace sunbfs::service::oracle
