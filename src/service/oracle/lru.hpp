#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "support/check.hpp"

/// Lease-aware LRU map for the distance-oracle cache (docs/SERVICE.md
/// "The distance oracle").
///
/// Every entry carries a *lease*: an absolute expiry on the service's
/// virtual clock plus the graph epoch it was built at.  Expiry is purely
/// local — a probe that touches a stale entry evicts it and reports a lease
/// expiry, so invalidation never needs a broadcast round (the Tardis-style
/// logical-lease idea: readers self-invalidate on their own clock, writers
/// only ever bump the epoch).  All state is replicated across ranks because
/// every mutation is driven by replicated quantities (the virtual clock,
/// the seeded workload, the shared epoch), which keeps the SPMD collective
/// order trivially aligned when some ranks would otherwise "hit" and others
/// "miss".
namespace sunbfs::service::oracle {

template <typename Key, typename Value>
class LeaseLru {
 public:
  struct Entry {
    Key key{};
    Value value{};
    double expires_s = 0;  ///< absolute virtual-clock lease expiry
    uint64_t epoch = 0;    ///< graph epoch the artifact was computed at
  };

  explicit LeaseLru(size_t capacity) : capacity_(capacity) {}

  size_t size() const { return order_.size(); }
  size_t capacity() const { return capacity_; }

  /// Look up `key`; a live hit is promoted to most-recently-used and
  /// returned.  An entry whose lease passed or whose epoch is stale is
  /// evicted instead (reported via `expired_out`) and the lookup misses.
  Value* find_live(const Key& key, double now_s, uint64_t epoch,
                   uint64_t* expired_out = nullptr) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    if (it->second->expires_s <= now_s || it->second->epoch != epoch) {
      if (expired_out != nullptr) ++*expired_out;
      order_.erase(it->second);
      index_.erase(it);
      return nullptr;
    }
    order_.splice(order_.begin(), order_, it->second);
    return &order_.front().value;
  }

  /// Insert or overwrite `key` as most-recently-used; the least-recently
  /// used entry is evicted when the cache is full.
  void insert(const Key& key, Value value, double expires_s, uint64_t epoch) {
    SUNBFS_CHECK(capacity_ >= 1);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      it->second->expires_s = expires_s;
      it->second->epoch = epoch;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().key);
      order_.pop_back();
    }
    order_.push_front(Entry{key, std::move(value), expires_s, epoch});
    index_[key] = order_.begin();
  }

  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  size_t capacity_;
  std::list<Entry> order_;  ///< front = most recently used
  std::unordered_map<Key, typename std::list<Entry>::iterator> index_;
};

}  // namespace sunbfs::service::oracle
