#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.hpp"

/// Landmark distance sketches for the distance-oracle cache.
///
/// k pinned landmark roots are run through the bit-parallel MS-BFS engine in
/// ONE batched traversal (one collective round per level for all k — the
/// same amortization the query batches buy), and their full depth rows are
/// replicated on every rank.  A point-to-point probe then answers from the
/// triangle inequality over hop distances:
///
///   upper(u,v) = min_L d(u,L) + d(L,v)
///   lower(u,v) = max_L |d(u,L) - d(L,v)|
///
/// On the service's undirected graphs, connectivity is an equivalence: one
/// endpoint sharing a landmark's component while the other does not *proves*
/// unreachability, and any landmark seeing both endpoints proves
/// reachability.  When an endpoint IS a landmark (or lower == upper), the
/// bounds collapse and the probe is exact — otherwise the caller falls back
/// to an exact BFS through the engines.
namespace sunbfs::service::oracle {

/// Depth value for an unreached vertex (matches MsbfsResult::depth).
inline constexpr int32_t kNoDepth = -1;

/// Outcome of one landmark probe.  `lower`/`upper` are only meaningful when
/// `known_reachable`; an unresolved probe has neither flag set.
struct SketchProbe {
  bool known_reachable = false;
  bool known_unreachable = false;
  int64_t lower = 0;
  int64_t upper = std::numeric_limits<int64_t>::max();

  /// The probe closes a Distance query exactly.
  bool exact_distance() const {
    return known_unreachable || (known_reachable && lower == upper);
  }
  /// The probe closes a Reachable query.
  bool resolved() const { return known_reachable || known_unreachable; }
};

/// Replicated landmark depth rows (landmark-major: rows[l * V + v]).
class LandmarkSketch {
 public:
  LandmarkSketch() = default;

  /// Replace the sketch with `rows` for `landmarks` over `num_vertices`
  /// global vertices.  `rows` is landmark-major and replicated — every rank
  /// installs an identical copy, so probes stay communication-free.
  void install(std::vector<graph::Vertex> landmarks, std::vector<int32_t> rows,
               uint64_t num_vertices);

  bool empty() const { return landmarks_.empty(); }
  int num_landmarks() const { return int(landmarks_.size()); }
  const std::vector<graph::Vertex>& landmarks() const { return landmarks_; }

  /// Hop depth of `v` from landmark `l` (kNoDepth when unreached).
  int32_t depth(int l, graph::Vertex v) const {
    return rows_[std::size_t(l) * num_vertices_ + std::size_t(v)];
  }

  SketchProbe probe(graph::Vertex u, graph::Vertex v) const;

 private:
  std::vector<graph::Vertex> landmarks_;
  std::vector<int32_t> rows_;
  uint64_t num_vertices_ = 0;
};

}  // namespace sunbfs::service::oracle
