#include "service/oracle/oracle.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace sunbfs::service::oracle {

namespace {

/// Fill a point-to-point answer from an exact hop distance.
void fill_point(DistanceOracle::Answer& a, QueryKind kind, int64_t distance) {
  if (kind == QueryKind::Distance) {
    a.distance = distance;
    a.reachable = distance >= 0;
  } else {
    // Reachable answers never carry a distance — the engine fallback does
    // not either, which keeps cache-served and engine answers bit-identical.
    a.distance = -1;
    a.reachable = distance >= 0;
  }
}

}  // namespace

DistanceOracle::Answer DistanceOracle::probe(const Query& q, double now_s) {
  Answer a;
  if (!config_.enabled || q.kind == QueryKind::SsspRoot) return a;
  ++stats_.probes;

  // Class 1: an exact tree on the query's root answers everything.
  if (const CachedTree* t =
          trees_.find_live(q.root, now_s, epoch_, &stats_.expired)) {
    ++stats_.hits;
    ++stats_.tree_hits;
    a.hit = true;
    if (q.kind == QueryKind::Bfs) {
      a.traversed_edges = t->traversed_edges;
      a.levels = t->levels;
    } else {
      fill_point(a, q.kind, t->depth[size_t(q.target)]);
    }
    return a;
  }
  if (q.kind == QueryKind::Bfs) {
    ++stats_.misses;
    return a;
  }

  // Undirected symmetry: a tree rooted at the *target* knows d(target, root)
  // = d(root, target).
  if (const CachedTree* t =
          trees_.find_live(q.target, now_s, epoch_, &stats_.expired)) {
    ++stats_.hits;
    ++stats_.tree_hits;
    a.hit = true;
    fill_point(a, q.kind, t->depth[size_t(q.root)]);
    return a;
  }

  // Class 2: landmark triangle bounds (the session refreshed an expired
  // sketch before probing, so a live sketch is the common case here).  A
  // sketch built at an older epoch never answers: its depth rows describe
  // the pre-mutation graph.
  if (sketch_live(now_s)) {
    const SketchProbe p = sketch_.probe(q.root, q.target);
    const bool closes = q.kind == QueryKind::Reachable ? p.resolved()
                                                       : p.exact_distance();
    if (closes) {
      ++stats_.hits;
      ++stats_.sketch_answers;
      a.hit = true;
      a.sketch = true;
      fill_point(a, q.kind, p.known_reachable ? p.lower : int64_t(-1));
      return a;
    }
  }

  ++stats_.misses;
  return a;
}

void DistanceOracle::install_sketch(std::vector<graph::Vertex> landmarks,
                                    std::vector<int32_t> rows, double now_s) {
  // A re-install only ever happens after the previous lease lapsed or the
  // epoch moved (the session refreshes on sketch_due), so it doubles as the
  // expiry record.
  if (!sketch_.empty()) ++stats_.expired;
  ++stats_.refreshes;
  sketch_.install(std::move(landmarks), std::move(rows), num_vertices_);
  sketch_expires_s_ = now_s + config_.sketch_lease_s;
  sketch_epoch_ = epoch_;
}

void DistanceOracle::insert_tree(graph::Vertex root, CachedTree tree,
                                 double now_s) {
  if (!config_.enabled || config_.tree_capacity == 0) return;
  SUNBFS_CHECK(tree.depth.size() == num_vertices_);
  trees_.insert(root, std::move(tree), now_s + config_.tree_lease_s, epoch_);
}

std::vector<int32_t> assemble_depth_rows(const partition::VertexSpace& space,
                                         int width,
                                         std::span<const int32_t> gathered,
                                         std::span<const size_t> offsets) {
  SUNBFS_CHECK(width >= 1);
  SUNBFS_CHECK(offsets.size() == size_t(space.nranks) + 1);
  std::vector<int32_t> rows(size_t(width) * space.total);
  for (int r = 0; r < space.nranks; ++r) {
    const uint64_t count = space.count(r);
    const uint64_t begin = space.begin(r);
    const int32_t* block = gathered.data() + offsets[size_t(r)];
    SUNBFS_CHECK(offsets[size_t(r) + 1] - offsets[size_t(r)] ==
                 size_t(width) * count);
    for (int q = 0; q < width; ++q)
      std::copy(block + size_t(q) * count, block + size_t(q + 1) * count,
                rows.data() + size_t(q) * space.total + begin);
  }
  return rows;
}

}  // namespace sunbfs::service::oracle
