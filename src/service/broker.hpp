#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "service/query.hpp"

/// Admission control and deadline-aware batch formation for the graph query
/// service.
///
/// The broker is deliberately communication-free: every rank of a
/// GraphSession runs an identical replica fed by the same seeded workload
/// and the same virtual clock, so all its decisions (admit, reject, expire,
/// close a batch) replicate without a single collective.  That keeps the
/// SPMD collective-ordering contract trivially satisfied and makes a whole
/// serving run replayable from its seed (docs/SERVICE.md "Determinism").
namespace sunbfs::service {

struct BrokerConfig {
  /// Close a batch when this many same-kind queries are waiting.
  int batch_width = kMaxBatchWidth;
  /// ...or when the oldest waiting query has queued this long (virtual
  /// seconds).
  double batch_age_s = 0.005;
  /// Bounded admission queue: submissions beyond this depth are rejected
  /// with a typed QueryRejected result.
  size_t queue_capacity = 1024;
};

/// FIFO admission queue + batch former.  All times are virtual seconds.
class QueryBroker {
 public:
  explicit QueryBroker(const BrokerConfig& config) : config_(config) {}

  const BrokerConfig& config() const { return config_; }

  /// Admit `q`, or reject it when the queue is full: returns false and (when
  /// `rejection` is non-null) fills it with a Rejected result carrying the
  /// QueryRejected message.
  bool submit(const Query& q, QueryResult* rejection = nullptr);

  bool empty() const { return queue_.empty(); }
  size_t depth() const { return queue_.size(); }

  /// Earliest virtual time at which a batch must close: the head-of-kind
  /// age timeout or the earliest queued deadline, whichever comes first.
  /// +infinity when the queue is empty — the session then jumps straight to
  /// the next arrival.
  double next_close_s() const;

  /// True when form_batch(now) would close a batch: width reached, age
  /// timeout passed, or an expiry needs sweeping.
  bool batch_ready(double now_s) const;

  /// Sweep expired queries (deadline <= now) into `expired` as typed
  /// QueryExpired results, then pop up to batch_width oldest queries of the
  /// head-of-queue's kind.  Returns the batch in admission order (possibly
  /// empty when the sweep drained the queue).
  std::vector<Query> form_batch(double now_s, std::vector<QueryResult>* expired);

 private:
  BrokerConfig config_;
  std::deque<Query> queue_;
};

/// Build the typed Expired result for `q` at virtual time `now_s` (also used
/// by the session for queries whose batch finished past their deadline).
QueryResult make_expired(const Query& q, double now_s);

}  // namespace sunbfs::service
