#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "service/query.hpp"

/// Admission control, overload shedding and deadline-aware batch formation
/// for the graph query service.
///
/// The broker is deliberately communication-free: every rank of a
/// GraphSession runs an identical replica fed by the same seeded workload
/// and the same virtual clock, so all its decisions (admit, reject, shed,
/// expire, close a batch) replicate without a single collective.  That keeps
/// the SPMD collective-ordering contract trivially satisfied and makes a
/// whole serving run replayable from its seed (docs/SERVICE.md
/// "Determinism").  The overload breaker below is likewise fed only by
/// replicated quantities (queue depth, terminal outcomes, the virtual
/// clock).
namespace sunbfs::service {

/// Occupancy/deadline-miss-driven overload shedding: a circuit breaker that
/// sheds the lowest-priority load while the service is saturated, so
/// admitted queries keep a bounded p99 and the shed load gets typed
/// fast-failures (QueryShed) instead of queueing toward certain expiry.
struct ShedConfig {
  bool enabled = false;
  /// Open (Closed -> Shedding) when queue depth reaches this fraction of
  /// queue_capacity...
  double queue_highwater = 0.75;
  /// ...or when the deadline-miss rate over the outcome window reaches this.
  double miss_rate_open = 0.5;
  /// Close (Probing -> Closed) when the windowed miss rate falls below this.
  double miss_rate_close = 0.15;
  /// Sliding window of terminal outcomes the miss rate is computed over.
  int window = 32;
  /// Outcomes required in the window before a rate-based transition.
  int min_samples = 8;
  /// Virtual seconds of shedding before the breaker starts probing.
  double probe_after_s = 0.02;
  /// While probing, admit one of every N sheddable queries.
  int probe_admit_every = 4;
};

/// Breaker states: Closed admits everything, Shedding fast-fails every
/// priority-0 query, Probing lets a trickle through to test the water — a
/// probe miss reopens, a healthy window closes.
enum class BreakerState : int { Closed = 0, Shedding = 1, Probing = 2 };
const char* breaker_state_name(BreakerState state);

struct BrokerConfig {
  /// Close a batch when this many same-kind queries are waiting.
  int batch_width = kMaxBatchWidth;
  /// ...or when the oldest waiting query has queued this long (virtual
  /// seconds).
  double batch_age_s = 0.005;
  /// Bounded admission queue: submissions beyond this depth are rejected
  /// with a typed QueryRejected result.
  size_t queue_capacity = 1024;
  /// Overload shedding policy (disabled by default).
  ShedConfig shed;
};

/// FIFO admission queue + batch former + overload breaker.  All times are
/// virtual seconds.
class QueryBroker {
 public:
  explicit QueryBroker(const BrokerConfig& config) : config_(config) {}

  const BrokerConfig& config() const { return config_; }

  /// Cache-probe admission step (docs/SERVICE.md "The distance oracle"):
  /// when set, submit() consults the probe FIRST — a probe returning true
  /// has filled `*result` with a terminal cache-served answer, and the query
  /// bypasses shedding, the queue and batch formation entirely.  Probes run
  /// before the shed check deliberately: a hit adds no engine load, so
  /// serving it is correct even while the breaker is open.  The probe must
  /// be replicated (same decision on every rank) like every other broker
  /// input.
  using CacheProbe = std::function<bool(const Query&, QueryResult*)>;
  void set_cache_probe(CacheProbe probe) { probe_ = std::move(probe); }

  /// Admit `q`, or refuse it: returns false and (when `rejection` is
  /// non-null) fills it with a typed Rejected result — QueryRejected when
  /// the queue is full, QueryShed when the breaker shed it.  `now_s` drives
  /// the breaker's Shedding -> Probing timer.
  bool submit(const Query& q, QueryResult* rejection = nullptr,
              double now_s = 0);

  /// Feed a terminal outcome back into the breaker's deadline-miss window
  /// (Done with a finite deadline counts as a hit, Expired as a miss; other
  /// statuses are not overload signals).  No-op when shedding is disabled.
  void on_outcome(const QueryResult& result, double now_s);

  bool empty() const { return queue_.empty(); }
  size_t depth() const { return queue_.size(); }

  BreakerState breaker() const { return state_; }
  uint64_t shed_count() const { return sheds_; }
  uint64_t breaker_transitions() const { return transitions_; }

  /// Earliest virtual time at which a batch must close: the head-of-kind
  /// age timeout or the earliest queued deadline, whichever comes first.
  /// +infinity when the queue is empty — the session then jumps straight to
  /// the next arrival.
  double next_close_s() const;

  /// True when form_batch(now) would close a batch: width reached, age
  /// timeout passed, or an expiry needs sweeping.
  bool batch_ready(double now_s) const;

  /// Sweep expired queries (deadline <= now) into `expired` as typed
  /// QueryExpired results, then pop up to batch_width oldest queries of the
  /// head-of-queue's kind.  Returns the batch in admission order (possibly
  /// empty when the sweep drained the queue).
  std::vector<Query> form_batch(double now_s, std::vector<QueryResult>* expired);

 private:
  void transition(BreakerState next, double now_s);

  BrokerConfig config_;
  CacheProbe probe_;
  std::deque<Query> queue_;
  // Breaker state (replicated: inputs are the virtual clock and outcomes).
  BreakerState state_ = BreakerState::Closed;
  std::deque<bool> window_;  ///< recent deadline outcomes, true = miss
  double shed_since_s_ = 0;
  uint64_t probe_counter_ = 0;
  uint64_t sheds_ = 0;
  uint64_t transitions_ = 0;
};

/// Build the typed Expired result for `q` at virtual time `now_s` (also used
/// by the session for queries whose batch finished past their deadline).
QueryResult make_expired(const Query& q, double now_s);

/// Build the typed Failed result for `q`: its batch exhausted in-engine
/// recovery and the retry budget / deadline rules out another attempt.
QueryResult make_failed(const Query& q, double now_s, const std::string& why);

}  // namespace sunbfs::service
