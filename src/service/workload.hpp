#pragma once

#include <cstdint>
#include <vector>

#include "service/query.hpp"
#include "support/random.hpp"

/// Seeded synthetic workloads for the graph query service.
///
/// Two standard load-generator shapes:
///  * **Open loop** — queries arrive on a Poisson process at `rate_qps`
///    regardless of completions (the honest way to measure a service under
///    offered load: queueing delay is visible, coordinated omission is not
///    possible).
///  * **Closed loop** — `users` concurrent users, each submitting one query,
///    waiting for its completion, thinking `think_s`, then submitting the
///    next (throughput self-limits to the service's speed).
///
/// Everything is drawn from seeded Xoshiro256** streams on the virtual
/// clock, so a (seed, config) pair names one exact workload: the replay
/// test serves it twice and requires bit-identical latency statistics
/// (docs/SERVICE.md "Determinism").
namespace sunbfs::service {

enum class ArrivalMode : int { Open = 0, Closed = 1 };

/// Root (and point-query target) selection over the pool: uniform, or a
/// YCSB-style zipfian skew where pool index i carries weight 1/(i+1)^theta —
/// the hot-root traffic the distance oracle's tree cache exists for.
enum class RootDist : int { Uniform = 0, Zipfian = 1 };

struct WorkloadConfig {
  ArrivalMode mode = ArrivalMode::Open;
  uint64_t seed = 1;
  uint64_t num_queries = 256;  ///< total queries across the whole run
  double rate_qps = 1e4;       ///< open loop: Poisson arrival rate
  int users = 8;               ///< closed loop: concurrent users
  double think_s = 1e-4;       ///< closed loop: think time after completion
  /// Relative deadline applied to every query (absolute deadline =
  /// arrival + deadline_s); kNoDeadline disables expiry.
  double deadline_s = kNoDeadline;
  /// Query-kind mix, partitioning one uniform draw: [0, sssp) -> SsspRoot,
  /// then distance, then reachable; the remainder are BFS.  The defaults
  /// keep the draw sequence bit-identical to the pre-oracle stream.
  double sssp_fraction = 0;
  /// Fraction of queries that are point-to-point Distance queries.
  double distance_fraction = 0;
  /// Fraction of queries that are point-to-point Reachable queries.
  double reachable_fraction = 0;
  /// Root/target selection over the pool (Uniform keeps the historical
  /// draw-for-draw stream; Zipfian uses one uniform draw inverted through
  /// the precomputed CDF, equally replay-deterministic).
  RootDist root_dist = RootDist::Uniform;
  /// Zipfian skew exponent (weight of pool index i is 1/(i+1)^theta).
  double zipf_theta = 0.99;
  /// Deterministic expiry injection for tests: every k-th query (1-based)
  /// gets a zero relative deadline, so it is already expired when the broker
  /// sweeps.  0 disables.
  uint64_t expire_every = 0;
  /// Fraction of queries issued at priority 0 (sheddable by the overload
  /// breaker); the rest are priority 1.  Derived from a hash of (seed, id)
  /// rather than an RNG draw so the query stream itself is unchanged by the
  /// priority mix.  Inert unless ShedConfig::enabled.
  double low_priority_fraction = 0.5;
};

/// Generates the query stream against a root pool (degree->=1 search keys
/// from bfs::pick_search_keys).  Pure and replicated: every rank constructs
/// one from the same config and pool and steps it identically.
class WorkloadGen {
 public:
  WorkloadGen(const WorkloadConfig& config, std::vector<graph::Vertex> roots);

  /// All queries generated and none still pending submission.
  bool exhausted() const;

  /// Virtual time of the earliest pending arrival; +infinity when none is
  /// pending (closed loop: all users are waiting on in-flight queries).
  double next_arrival_s() const;

  /// Pop every query whose arrival time is <= now, in arrival order.
  std::vector<Query> pop_ready(double now_s);

  /// Closed loop: the completing query's user thinks, then submits again.
  /// Open loop: no-op.
  void on_complete(const QueryResult& result, double now_s);

 private:
  Query make_query(Xoshiro256StarStar& rng, double arrival_s, int user);
  graph::Vertex sample_root(Xoshiro256StarStar& rng);

  WorkloadConfig config_;
  std::vector<graph::Vertex> roots_;
  /// Zipfian inverse-CDF table over pool indices (empty when uniform).
  std::vector<double> zipf_cum_;
  uint64_t issued_ = 0;  ///< queries generated so far (ids are sequential)
  // Open loop: one global arrival stream.
  Xoshiro256StarStar rng_;
  double open_next_s_ = 0;
  // Closed loop: per-user RNG streams and next-submission times (+inf while
  // the user's query is in flight or the user is done).
  std::vector<Xoshiro256StarStar> user_rng_;
  std::vector<double> user_next_s_;
  std::vector<int> user_of_id_;  ///< indexed by query id
};

}  // namespace sunbfs::service
