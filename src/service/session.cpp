#include "service/session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "bfs/runner.hpp"
#include "bfs/workspace.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "support/check.hpp"

namespace sunbfs::service {

using graph::Vertex;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(p / 100.0 * double(samples.size()));
  size_t idx = rank < 1 ? 0 : size_t(rank) - 1;
  return samples[std::min(idx, samples.size() - 1)];
}

void ServiceReport::to_report(obs::Report& report) const {
  report.add_counter("service.submitted", submitted);
  report.add_counter("service.accepted", accepted);
  report.add_counter("service.rejected", rejected);
  report.add_counter("service.completed", completed);
  report.add_counter("service.expired_in_queue", expired_in_queue);
  report.add_counter("service.expired_late", expired_late);
  report.add_counter("service.batches", batches);
  report.gauge("service.batch_occupancy", mean_batch_occupancy);
  report.gauge("service.makespan_s", makespan_s);
  report.gauge("service.qps", qps);
  report.gauge("service.latency_mean_s", latency_mean_s);
  report.gauge("service.latency_p50_s", latency_p50_s);
  report.gauge("service.latency_p95_s", latency_p95_s);
  report.gauge("service.latency_p99_s", latency_p99_s);
  spmd.to_report(report);
}

ServiceReport GraphSession::serve(const WorkloadConfig& workload,
                                  const BrokerConfig& broker_cfg) const {
  const int nranks = topology_.mesh().ranks();
  SUNBFS_CHECK(broker_cfg.batch_width >= 1 &&
               broker_cfg.batch_width <= kMaxBatchWidth);
  const graph::Graph500Config& g = config_.graph;
  partition::VertexSpace space{g.num_vertices(), nranks};

  ServiceReport report;
  // Rank 0's copies of the (replicated) serving outcome.
  std::vector<QueryResult> results0;
  uint64_t submitted = 0, rejected = 0, expired_in_queue = 0;
  uint64_t expired_late = 0, completed = 0, batches = 0;
  double occupancy_sum = 0, makespan = 0;

  report.spmd = sim::run_spmd(topology_, [&](sim::RankContext& ctx) {
    // ---- Setup: once per session, resident for the whole workload. ------
    bfs::BfsWorkspace ws(resolve_threads_per_rank(config_.threads_per_rank,
                                                  size_t(nranks)));
    uint64_t m = g.num_edges();
    auto slice = graph::generate_rmat_range(
        g, m * uint64_t(ctx.rank) / uint64_t(nranks),
        m * uint64_t(ctx.rank + 1) / uint64_t(nranks), &ws.pool());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    partition::Part1d part1 = partition::build_1d(ctx, space, slice);
    std::optional<partition::Part15d> part15;
    if (workload.sssp_fraction > 0)
      part15 = partition::build_15d(ctx, space, slice, degrees,
                                    config_.thresholds);
    slice.clear();
    slice.shrink_to_fit();
    const uint64_t local_count = space.count(ctx.rank);

    std::vector<Vertex> roots = bfs::pick_search_keys(
        ctx, space, degrees, config_.root_pool, config_.root_seed ^ g.seed);

    // Warm staging for the batched visits: one message per cross-rank
    // frontier edge, bounded by this rank's arc count.
    sim::A2aStaging<MsbfsMsg> staging;
    {
      const size_t nt = ws.pool().size();
      const size_t arcs = size_t(part1.adj.num_arcs());
      staging.set_encoding(config_.msbfs.encoding);
      staging.prime(size_t(nranks), nt, arcs / nt + 64, arcs + 64, arcs + 64);
    }
    MsbfsOptions mopts = config_.msbfs;
    mopts.threads_per_rank = config_.threads_per_rank;
    mopts.workspace = &ws;
    mopts.staging = &staging;

    // ---- Deterministic discrete-event serving loop. ---------------------
    // Broker and workload are identical replicas on every rank; the virtual
    // clock advances only by replicated quantities, so no coordination
    // collectives are needed and the SPMD collective order stays aligned.
    WorkloadGen gen(workload, roots);
    QueryBroker broker(broker_cfg);
    std::vector<QueryResult> results;
    double now = 0;
    uint64_t n_sub = 0, n_rej = 0, n_expq = 0, n_explate = 0, n_done = 0;
    uint64_t n_batches = 0;
    double occ_sum = 0;

    auto finish = [&](QueryResult r) {
      gen.on_complete(r, now);
      results.push_back(std::move(r));
    };

    for (;;) {
      if (!broker.batch_ready(now)) {
        double t = std::min(gen.next_arrival_s(), broker.next_close_s());
        if (t == kInf) break;  // drained: no arrivals, nothing queued
        now = std::max(now, t);
      }
      for (Query& q : gen.pop_ready(now)) {
        ++n_sub;
        QueryResult rej;
        if (!broker.submit(q, &rej)) {
          ++n_rej;
          finish(std::move(rej));
        }
      }
      if (!broker.batch_ready(now)) continue;
      std::vector<QueryResult> swept;
      std::vector<Query> batch = broker.form_batch(now, &swept);
      for (QueryResult& e : swept) {
        ++n_expq;
        finish(std::move(e));
      }
      if (batch.empty()) continue;

      // ---- Execute the batch against the resident graph. ----------------
      ++n_batches;
      occ_sum += double(batch.size());
      const double start = now;
      const int width = int(batch.size());
      std::vector<uint64_t> traversed(size_t(width), 0);
      std::vector<int> levels(size_t(width), 0);
      double local_cost = 0;
      const double comm0 = ctx.stats.total_modeled_s();
      if (batch.front().kind == QueryKind::Bfs) {
        std::vector<Vertex> broots(batch.size());
        for (int i = 0; i < width; ++i) broots[size_t(i)] = batch[size_t(i)].root;
        MsbfsResult r = msbfs_run(ctx, part1, broots, mopts);
        local_cost += r.compute_model_s;
        levels = r.levels;
        // Degree-sum TEPS numerator per query (as in the Graph 500 runner:
        // each in-component edge contributes twice).
        for (int q = 0; q < width; ++q) {
          uint64_t sum = 0;
          const Vertex* parent = r.parent.data() + size_t(q) * local_count;
          for (uint64_t l = 0; l < local_count; ++l)
            if (parent[l] != graph::kNoVertex) sum += degrees[l];
          traversed[size_t(q)] = sum;
        }
      } else {
        // SSSP-root queries share the batch's admission/deadline machinery
        // but execute sequentially (no bit-parallel SSSP engine yet).
        for (int i = 0; i < width; ++i) {
          auto dist = analytics::sssp15d(ctx, *part15, batch[size_t(i)].root,
                                         config_.sssp);
          uint64_t sum = 0;
          for (uint64_t l = 0; l < dist.size(); ++l)
            if (dist[l] != analytics::kInfDist) sum += degrees[l];
          traversed[size_t(i)] = sum;
        }
      }
      const double comm_delta = ctx.stats.total_modeled_s() - comm0;
      ctx.world.allreduce_inplace(std::span<uint64_t>(traversed),
                                  [](uint64_t a, uint64_t b) { return a + b; });
      for (uint64_t& t : traversed) t /= 2;
      if (batch.front().kind == QueryKind::SsspRoot)
        for (uint64_t t : traversed)
          local_cost += double(t) * config_.sssp_seconds_per_edge /
                        (double(nranks) * double(ws.pool().size()));
      // Batch service time on the virtual clock: slowest rank's modeled
      // network seconds plus its deterministic compute model.  allreduce_max
      // both replicates the clock and models the synchronous batch.
      const double service_s = ctx.world.allreduce_max(comm_delta + local_cost);
      now = start + service_s;

      for (int i = 0; i < width; ++i) {
        const Query& q = batch[size_t(i)];
        QueryResult r;
        r.id = q.id;
        r.kind = q.kind;
        r.root = q.root;
        r.arrival_s = q.arrival_s;
        r.start_s = start;
        r.done_s = now;
        r.latency_s = now - q.arrival_s;
        r.traversed_edges = traversed[size_t(i)];
        r.levels = levels[size_t(i)];
        if (now > q.deadline_s) {
          r.status = QueryStatus::Expired;
          r.error = QueryExpired(q.id, q.deadline_s, now).what();
          ++n_explate;
        } else {
          r.status = QueryStatus::Done;
          ++n_done;
        }
        finish(std::move(r));
      }
    }

    if (ctx.rank == 0) {
      results0 = std::move(results);
      submitted = n_sub;
      rejected = n_rej;
      expired_in_queue = n_expq;
      expired_late = n_explate;
      completed = n_done;
      batches = n_batches;
      occupancy_sum = occ_sum;
      makespan = now;
    }
  });

  report.results = std::move(results0);
  report.submitted = submitted;
  report.accepted = submitted - rejected;
  report.rejected = rejected;
  report.completed = completed;
  report.expired_in_queue = expired_in_queue;
  report.expired_late = expired_late;
  report.batches = batches;
  report.mean_batch_occupancy =
      batches > 0 ? occupancy_sum / double(batches) : 0;
  report.makespan_s = makespan;
  report.qps = makespan > 0 ? double(completed) / makespan : 0;
  std::vector<double> lat;
  lat.reserve(report.results.size());
  double lat_sum = 0;
  for (const QueryResult& r : report.results)
    if (r.ok()) {
      lat.push_back(r.latency_s);
      lat_sum += r.latency_s;
    }
  report.latency_mean_s = lat.empty() ? 0 : lat_sum / double(lat.size());
  report.latency_p50_s = percentile(lat, 50);
  report.latency_p95_s = percentile(lat, 95);
  report.latency_p99_s = percentile(lat, 99);
  return report;
}

}  // namespace sunbfs::service
