#include "service/session.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "bfs/runner.hpp"
#include "bfs/workspace.hpp"
#include "mutate/apply.hpp"
#include "mutate/log.hpp"
#include "mutate/repair.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace sunbfs::service {

using graph::Vertex;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  double rank = std::ceil(p / 100.0 * double(samples.size()));
  size_t idx = rank < 1 ? 0 : size_t(rank) - 1;
  return samples[std::min(idx, samples.size() - 1)];
}

void ServiceReport::to_report(obs::Report& report) const {
  report.add_counter("service.submitted", submitted);
  report.add_counter("service.accepted", accepted);
  report.add_counter("service.rejected", rejected);
  report.add_counter("service.completed", completed);
  report.add_counter("service.expired_in_queue", expired_in_queue);
  report.add_counter("service.expired_late", expired_late);
  report.add_counter("service.batches", batches);
  // Degraded-mode counters (docs/OBSERVABILITY.md "service.fault.*").
  report.add_counter("service.fault.shed", shed);
  report.add_counter("service.fault.failed", failed);
  report.add_counter("service.fault.retried", retried);
  report.add_counter("service.fault.failed_batches", failed_batches);
  report.add_counter("service.fault.hedged_batches", hedged_batches);
  report.add_counter("service.fault.breaker_transitions", breaker_transitions);
  report.add_counter("service.staging_allocs_warmup", staging_allocs_warmup);
  report.add_counter("service.staging_allocs", staging_allocs_steady);
  // Distance-oracle counters (docs/OBSERVABILITY.md "service.cache.*").
  report.add_counter("service.cache.probes", cache.probes);
  report.add_counter("service.cache.hits", cache.hits);
  report.add_counter("service.cache.misses", cache.misses);
  report.add_counter("service.cache.expired", cache.expired);
  report.add_counter("service.cache.refreshes", cache.refreshes);
  report.add_counter("service.cache.sketch_answers", cache.sketch_answers);
  report.add_counter("service.cache.tree_hits", cache.tree_hits);
  report.gauge("service.cache.hit_rate", cache.hit_rate());
  // Streaming-mutation counters (docs/OBSERVABILITY.md "service.mutate.*").
  report.add_counter("service.mutate.batches", mutate.batches);
  report.add_counter("service.mutate.epoch", mutate.epoch);
  report.add_counter("service.mutate.inserted_arcs", mutate.inserted_arcs);
  report.add_counter("service.mutate.deleted_arcs", mutate.deleted_arcs);
  report.add_counter("service.mutate.delete_misses", mutate.delete_misses);
  report.add_counter("service.mutate.compactions", mutate.compactions);
  report.add_counter("service.mutate.repair_invalidated",
                     mutate.repair_invalidated);
  report.add_counter("service.mutate.repair_relaxations",
                     mutate.repair_relaxations);
  report.add_counter("service.mutate.repair_rounds", mutate.repair_rounds);
  report.add_counter("service.mutate.sketch_repairs", mutate.sketch_repairs);
  report.gauge("service.batch_occupancy", mean_batch_occupancy);
  report.gauge("service.makespan_s", makespan_s);
  report.gauge("service.qps", qps);
  report.gauge("service.latency_mean_s", latency_mean_s);
  report.gauge("service.latency_p50_s", latency_p50_s);
  report.gauge("service.latency_p95_s", latency_p95_s);
  report.gauge("service.latency_p99_s", latency_p99_s);
  spmd.to_report(report);
}

ServiceReport GraphSession::serve(const WorkloadConfig& workload,
                                  const BrokerConfig& broker_cfg) const {
  const int nranks = topology_.mesh().ranks();
  SUNBFS_CHECK(broker_cfg.batch_width >= 1 &&
               broker_cfg.batch_width <= kMaxBatchWidth);
  const graph::Graph500Config& g = config_.graph;
  partition::VertexSpace space{g.num_vertices(), nranks};

  SUNBFS_CHECK(config_.retry_budget >= 0);

  ServiceReport report;
  // Rank 0's copies of the (replicated) serving outcome.
  std::vector<QueryResult> results0;
  uint64_t submitted = 0, accepted = 0, rejected = 0, shed = 0;
  uint64_t expired_in_queue = 0, expired_late = 0, completed = 0, failed = 0;
  uint64_t retried = 0, batches = 0, failed_batches = 0, hedged_batches = 0;
  uint64_t breaker_transitions = 0, allocs_warm = 0, allocs_steady = 0;
  double occupancy_sum = 0, makespan = 0;
  oracle::CacheStats cache_stats;
  MutateStats mut_stats;

  sim::SpmdOptions spmd_opts;
  spmd_opts.policy = config_.fault_policy;
  spmd_opts.faults = config_.faults.empty() ? nullptr : &config_.faults;
  spmd_opts.checksums = config_.checksums;

  const auto body = [&](sim::RankContext& ctx) {
    // Faults stay disarmed outside engine executions: setup and the
    // service-level reductions are not the recoverable surface, and the
    // plan's call indices must count engine collectives alone.
    ctx.faults.armed = false;
    // ---- Setup: once per session, resident for the whole workload. ------
    bfs::BfsWorkspace ws(resolve_threads_per_rank(config_.threads_per_rank,
                                                  size_t(nranks)));
    uint64_t m = g.num_edges();
    auto slice = graph::generate_rmat_range(
        g, m * uint64_t(ctx.rank) / uint64_t(nranks),
        m * uint64_t(ctx.rank + 1) / uint64_t(nranks), &ws.pool());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    partition::Part1d part1 = partition::build_1d(ctx, space, slice);
    std::optional<partition::Part15d> part15;
    if (workload.sssp_fraction > 0)
      part15 = partition::build_15d(ctx, space, slice, degrees,
                                    config_.thresholds);
    slice.clear();
    slice.shrink_to_fit();
    const uint64_t local_count = space.count(ctx.rank);

    std::vector<Vertex> roots = bfs::pick_search_keys(
        ctx, space, degrees, config_.root_pool, config_.root_seed ^ g.seed);

    // ---- Streaming mutations (src/mutate, "Mutations & epochs"). --------
    // The log is a replicated model of the full edge multiset: every rank
    // regenerates the whole edge list once and steps an identical seeded
    // generator, so batches need no communication to agree and each rank
    // filters a batch down to the arcs it stores (apply_batch_1d/15d).
    const MutationConfig& mcfg = config_.mutation;
    const bool mutating =
        mcfg.enabled && mcfg.every > 0 && mcfg.max_batches > 0;
    std::optional<mutate::MutationLog> mut_log;
    if (mutating) {
      auto full = graph::generate_rmat_range(g, 0, m, &ws.pool());
      mutate::MutationLogConfig lc;
      lc.seed = mcfg.seed;
      lc.inserts_per_batch = mcfg.inserts_per_batch;
      lc.deletes_per_batch = mcfg.deletes_per_batch;
      lc.phantom_fraction = mcfg.phantom_fraction;
      mut_log.emplace(lc, space.total, full);
    }
    // Worst-case arcs this rank can ever hold: the built partition plus
    // every insert of every batch landing here.  Staging pools primed with
    // this headroom stay alloc-free across the whole mutating run.
    const size_t insert_headroom =
        mutating ? 2 * size_t(mcfg.max_batches) *
                       size_t(std::max(0, mcfg.inserts_per_batch))
                 : 0;

    // ---- Distance-oracle cache (src/service/oracle/). -------------------
    // Landmarks pin the hot prefix of the root pool (under a zipfian
    // workload those ARE the hot roots and targets); their sketch is built
    // lazily on the first point-to-point probe and refreshed on lease
    // expiry.  The oracle is replicated on every rank: its inputs are the
    // virtual clock, the replicated query stream and depth rows allgathered
    // after each engine batch, so hit/miss decisions never diverge and the
    // SPMD collective order stays aligned.
    oracle::DistanceOracle cache(config_.cache, space.total);
    std::vector<Vertex> landmarks;
    if (config_.cache.enabled && config_.cache.landmarks > 0) {
      const size_t k = std::min({size_t(config_.cache.landmarks), roots.size(),
                                 size_t(kMaxBatchWidth)});
      landmarks.assign(roots.begin(), roots.begin() + ptrdiff_t(k));
    }
    // Resident scratch for the depth-row allgathers (reused across batches —
    // no steady-state growth).
    std::vector<int32_t> depth_gather;
    std::vector<size_t> depth_off;

    // Warm staging for the batched visits: one message per cross-rank
    // frontier edge, bounded by this rank's arc count.
    sim::ExchangeChannel<MsbfsMsg> staging;
    const sim::ExchangePlan msbfs_plan = sim::ExchangePlan::build(
        config_.msbfs.exchange.backend, ctx.nranks(), ctx.mesh);
    {
      const size_t nt = ws.pool().size();
      const size_t arcs = size_t(part1.adj.num_arcs()) + insert_headroom;
      staging.set_encoding(config_.msbfs.encoding);
      staging.prime(size_t(nranks), nt, arcs / nt + 64, arcs + 64, arcs + 64);
      staging.prime_staged(msbfs_plan, ctx.rank, nt, arcs / nt + 64,
                           arcs + 64);
    }
    // Resident repair channels + landmark tree state: the sketch's owned
    // parent/depth slices survive between batches so repair_bfs can patch
    // them instead of a full MS-BFS rebuild after every mutation.
    mutate::RepairChannels rchan;
    const bool repair_lm = mutating && config_.cache.enabled &&
                           mcfg.repair_sketch && config_.cache.landmarks > 0;
    if (mutating)
      rchan.prime(ctx, 1, size_t(part1.adj.num_arcs()) + insert_headroom,
                  config_.msbfs.encoding, config_.msbfs.exchange);
    std::vector<Vertex> lm_parent;
    std::vector<int32_t> lm_depth;
    bool lm_valid = false;
    MsbfsOptions mopts = config_.msbfs;
    mopts.threads_per_rank = config_.threads_per_rank;
    mopts.workspace = &ws;
    mopts.staging = &staging;

    // ---- Deterministic discrete-event serving loop. ---------------------
    // Broker and workload are identical replicas on every rank; the virtual
    // clock advances only by replicated quantities, so no coordination
    // collectives are needed and the SPMD collective order stays aligned.
    WorkloadGen gen(workload, roots);
    QueryBroker broker(broker_cfg);
    std::vector<QueryResult> results;
    double now = 0;
    uint64_t n_sub = 0, n_acc = 0, n_rej = 0, n_expq = 0, n_explate = 0;
    uint64_t n_done = 0, n_failed = 0, n_retried = 0, n_batches = 0;
    uint64_t n_failed_batches = 0, n_hedged = 0;
    double occ_sum = 0;
    uint64_t warm_allocs = 0;
    bool warm_captured = false;
    // Graph epoch: bumped once per applied mutation batch, stamped on every
    // result (replicated — the id-driven trigger is a pure function of the
    // workload's query ids).
    uint64_t epoch = 0;
    uint64_t mut_applied = 0, n_sketch_repairs = 0;
    mutate::ApplyStats apply_total;
    mutate::RepairStats repair_total;
    // Batch service times feeding the hedge straggle cut (replicated: every
    // rank appends the same allreduced values).
    std::vector<double> service_hist;
    // Pending re-admissions after failed batches: (retry time, query).
    std::vector<std::pair<double, Query>> retryq;

    auto finish = [&](QueryResult r) {
      broker.on_outcome(r, now);
      gen.on_complete(r, now);
      results.push_back(std::move(r));
    };
    // Admit into the broker.  submit() returning false is either a terminal
    // refusal (queue full or shed) or a cache-served answer from the
    // oracle's probe step — the hit bypassed batch formation entirely.
    auto admit = [&](const Query& q) {
      QueryResult out;
      const uint64_t sheds0 = broker.shed_count();
      if (broker.submit(q, &out, now)) return true;
      out.epoch = epoch;
      if (out.cache_hit) {
        if (out.status == QueryStatus::Done)
          ++n_done;
        else
          ++n_explate;
      } else if (broker.shed_count() == sheds0) {
        ++n_rej;
      }
      finish(std::move(out));
      return false;
    };
    auto next_retry_s = [&]() {
      double t = kInf;
      for (const auto& e : retryq) t = std::min(t, e.first);
      return t;
    };
    auto note_allocs = [&]() {
      if (warm_captured) return;
      warm_captured = true;
      warm_allocs = ws.staging_allocs() + staging.allocs() + rchan.allocs();
    };

    // Cache-probe admission (docs/SERVICE.md "The distance oracle"): the
    // broker consults the oracle before shedding/queueing.  Every input is
    // replicated (virtual clock, replicated query stream, allgathered depth
    // rows), so all ranks reach the same hit/miss decision and — crucially —
    // enter the sketch-refresh collectives together.
    if (config_.cache.enabled) {
      broker.set_cache_probe([&](const Query& q, QueryResult* out) {
        if (q.kind == QueryKind::SsspRoot) return false;
        if (query_kind_point_to_point(q.kind) && !landmarks.empty() &&
            cache.sketch_due(now)) {
          // Lazy sketch (re)build: one bit-parallel MS-BFS over the pinned
          // landmarks plus one depth-row allgather, charged to the virtual
          // clock like a batch.  Cache maintenance is not part of the
          // recoverable engine surface, so the fault plan is parked for its
          // duration (msbfs's rank-failure schedule fires by level whenever
          // a plan is installed under Recover, independent of `armed`).
          const sim::FaultPlan* plan = ctx.faults.plan;
          ctx.faults.plan = nullptr;
          const double comm0 = ctx.stats.total_modeled_s();
          MsbfsOptions sopts = mopts;
          sopts.record_depths = true;
          MsbfsResult sk = msbfs_run(ctx, part1, landmarks, sopts);
          ctx.world.allgatherv_into(std::span<const int32_t>(sk.depth),
                                    depth_gather, &depth_off);
          now += ctx.world.allreduce_max(ctx.stats.total_modeled_s() - comm0 +
                                         sk.compute_model_s);
          ctx.faults.plan = plan;
          cache.install_sketch(landmarks,
                               oracle::assemble_depth_rows(
                                   space, int(landmarks.size()), depth_gather,
                                   depth_off),
                               now);
          if (repair_lm) {
            // Keep the owned parent/depth slices resident: mutation batches
            // repair them in place (repair_bfs) instead of rebuilding.
            lm_parent = std::move(sk.parent);
            lm_depth = std::move(sk.depth);
            lm_valid = true;
          }
        }
        const oracle::DistanceOracle::Answer ans = cache.probe(q, now);
        if (!ans.hit) return false;
        QueryResult r;
        r.id = q.id;
        r.kind = q.kind;
        r.root = q.root;
        r.target = q.target;
        r.arrival_s = q.arrival_s;
        r.deadline_s = q.deadline_s;
        r.start_s = now;
        // Hits bypass batch formation: charge only the modeled probe cost,
        // without advancing the global clock — probes are rank-local reads
        // of replicated state, not a synchronous batch.
        r.done_s = now + config_.cache.probe_cost_s;
        r.latency_s = r.done_s - q.arrival_s;
        r.traversed_edges = ans.traversed_edges;
        r.levels = ans.levels;
        r.distance = ans.distance;
        r.reachable = ans.reachable;
        r.cache_hit = true;
        r.epoch = epoch;
        r.retries = q.attempt;
        if (r.done_s > q.deadline_s) {
          r.status = QueryStatus::Expired;
          r.error =
              QueryExpired(q.id, q.arrival_s, q.deadline_s, r.done_s).what();
        } else {
          r.status = QueryStatus::Done;
        }
        *out = std::move(r);
        return true;
      });
    }

    // ---- One batch: sweep expiries, form, execute, finish.  Factored out
    // of the main loop so the pre-mutation drain below can run every queued
    // batch against its admission epoch before the graph changes.
    auto run_one_batch = [&]() {
      std::vector<QueryResult> swept;
      std::vector<Query> batch = broker.form_batch(now, &swept);
      for (QueryResult& e : swept) {
        e.epoch = epoch;
        ++n_expq;
        finish(std::move(e));
      }
      if (batch.empty()) return;

      // ---- Execute the batch against the resident graph. ----------------
      ++n_batches;
      occ_sum += double(batch.size());
      const double start = now;
      const int width = int(batch.size());
      const QueryKind bkind = batch.front().kind;
      std::vector<uint64_t> traversed(size_t(width), 0);
      std::vector<int> levels(size_t(width), 0);
      // Point-to-point answers: per-query distance, -1 unreached (the target
      // owner fills its slot, an allreduce-max replicates it).
      std::vector<int64_t> pdist(size_t(width), -1);

      // One full batch execution, faults armed around the engines only.
      // Returns the batch's replicated service time; throws
      // sim::FaultDetected when in-engine recovery is exhausted — the
      // give-up point is collectively agreed, so every rank throws together
      // and the SPMD collective order stays aligned.
      auto execute_batch = [&](std::vector<uint64_t>& trav,
                               std::vector<int>& lvls,
                               std::vector<int64_t>& pd) -> double {
        std::fill(trav.begin(), trav.end(), uint64_t(0));
        std::fill(lvls.begin(), lvls.end(), 0);
        std::fill(pd.begin(), pd.end(), int64_t(-1));
        double local_cost = 0;
        const double comm0 = ctx.stats.total_modeled_s();
        // Injected straggler delays and recovery backoff are deterministic
        // (plan- and retry-schedule-driven) but do not enter the modeled
        // network clock, so charge them into the batch cost explicitly —
        // the slowest rank gates a synchronous batch.
        const double fault0 =
            ctx.faults.stats.straggler_delay_s + ctx.faults.stats.backoff_s;
        (void)ctx.faults.take_pending();  // each attempt starts clean
        ctx.faults.armed = true;
        // Local depth rows (query-major) when the oracle or a point-to-point
        // batch needs them; stays empty otherwise.
        std::vector<int32_t> batch_depth;
        try {
          if (bkind != QueryKind::SsspRoot) {
            std::vector<Vertex> broots(batch.size());
            for (int i = 0; i < width; ++i)
              broots[size_t(i)] = batch[size_t(i)].root;
            MsbfsOptions bopts = mopts;
            bopts.record_depths =
                config_.cache.enabled || query_kind_point_to_point(bkind);
            MsbfsResult r = msbfs_run(ctx, part1, broots, bopts);
            local_cost += r.compute_model_s;
            lvls = r.levels;
            batch_depth = std::move(r.depth);
            // Degree-sum TEPS numerator per query (as in the Graph 500
            // runner: each in-component edge contributes twice).  Point
            // results report 0 traversed edges, but cached trees keep the
            // engine-grade value so a later BFS hit answers bit-identically.
            for (int q = 0; q < width; ++q) {
              uint64_t sum = 0;
              const Vertex* parent = r.parent.data() + size_t(q) * local_count;
              for (uint64_t l = 0; l < local_count; ++l)
                if (parent[l] != graph::kNoVertex) sum += degrees[l];
              trav[size_t(q)] = sum;
            }
          } else {
            // SSSP-root queries share the batch's admission/deadline
            // machinery but execute sequentially (no bit-parallel SSSP
            // engine yet).
            for (int i = 0; i < width; ++i) {
              auto dist = analytics::sssp15d(
                  ctx, *part15, batch[size_t(i)].root, config_.sssp);
              uint64_t sum = 0;
              for (uint64_t l = 0; l < dist.size(); ++l)
                if (dist[l] != analytics::kInfDist) sum += degrees[l];
              trav[size_t(i)] = sum;
            }
          }
        } catch (...) {
          ctx.faults.armed = false;
          throw;
        }
        ctx.faults.armed = false;
        const double comm_delta = ctx.stats.total_modeled_s() - comm0;
        const double fault_delta = ctx.faults.stats.straggler_delay_s +
                                   ctx.faults.stats.backoff_s - fault0;
        // Service-level reductions run disarmed: they are bookkeeping, not
        // part of the recoverable engine surface.
        ctx.world.allreduce_inplace(
            std::span<uint64_t>(trav),
            [](uint64_t a, uint64_t b) { return a + b; });
        for (uint64_t& t : trav) t /= 2;
        if (query_kind_point_to_point(bkind)) {
          for (int i = 0; i < width; ++i) {
            const Vertex t = batch[size_t(i)].target;
            if (space.owner(t) == ctx.rank) {
              const int32_t d =
                  batch_depth[size_t(i) * local_count +
                              size_t(space.to_local(ctx.rank, t))];
              pd[size_t(i)] = int64_t(d);
            }
          }
          ctx.world.allreduce_inplace(
              std::span<int64_t>(pd),
              [](int64_t a, int64_t b) { return a > b ? a : b; });
        }
        if (config_.cache.enabled && bkind != QueryKind::SsspRoot) {
          // Feed the oracle: allgather the batch's depth rows and cache each
          // root's exact tree, leased from the batch's start time.  Runs on
          // the successful path only (a throw above skips it), so cached
          // trees are always engine-grade.
          ctx.world.allgatherv_into(std::span<const int32_t>(batch_depth),
                                    depth_gather, &depth_off);
          std::vector<int32_t> rows = oracle::assemble_depth_rows(
              space, width, depth_gather, depth_off);
          for (int i = 0; i < width; ++i) {
            oracle::CachedTree tree;
            tree.depth.assign(
                rows.begin() + ptrdiff_t(size_t(i) * space.total),
                rows.begin() + ptrdiff_t(size_t(i + 1) * space.total));
            tree.traversed_edges = trav[size_t(i)];
            tree.levels = lvls[size_t(i)];
            cache.insert_tree(batch[size_t(i)].root, std::move(tree), now);
          }
        }
        double cost = local_cost;
        if (bkind == QueryKind::SsspRoot)
          for (uint64_t t : trav)
            cost += double(t) * config_.sssp_seconds_per_edge /
                    (double(nranks) * double(ws.pool().size()));
        // Batch service time on the virtual clock: slowest rank's modeled
        // network seconds plus its deterministic compute model and fault
        // delays.  allreduce_max both replicates the clock and models the
        // synchronous batch.
        return ctx.world.allreduce_max(comm_delta + fault_delta + cost);
      };

      double service_s = 0;
      bool batch_failed = false;
      const double comm_before = ctx.stats.total_modeled_s();
      const double fault_before =
          ctx.faults.stats.straggler_delay_s + ctx.faults.stats.backoff_s;
      try {
        service_s = execute_batch(traversed, levels, pdist);
      } catch (const sim::FaultDetected&) {
        batch_failed = true;
        // The doomed batch still burned virtual time: charge the slowest
        // rank's modeled network seconds plus its deterministic fault
        // delays (its compute never completed).
        service_s = ctx.world.allreduce_max(
            ctx.stats.total_modeled_s() - comm_before +
            ctx.faults.stats.straggler_delay_s + ctx.faults.stats.backoff_s -
            fault_before);
      }
      note_allocs();

      if (batch_failed) {
        ++n_failed_batches;
        now = start + service_s;
        for (const Query& q : batch) {
          const double backoff = std::min(
              config_.retry_backoff_cap_s,
              config_.retry_backoff_s *
                  double(uint64_t(1) << std::min(q.attempt, 20)));
          const double retry_at = now + backoff;
          if (q.attempt < config_.retry_budget && retry_at < q.deadline_s) {
            Query rq = q;
            ++rq.attempt;
            ++n_retried;
            retryq.emplace_back(retry_at, rq);
            log_debug(QueryRetried(q.id, q.arrival_s, q.deadline_s, rq.attempt,
                                   retry_at)
                          .what());
          } else {
            ++n_failed;
            QueryResult fr =
                make_failed(q, now, "batch exhausted in-engine fault recovery");
            fr.epoch = epoch;
            finish(std::move(fr));
          }
        }
        return;
      }

      // Hedge: re-execute a batch straggling past the latency-quantile cut
      // and charge min(first, cut + second).  The engines are deterministic,
      // so results are bit-identical — the hedge only wins time when the
      // straggle came from injected faults the replay does not hit again.
      bool hedged = false;
      if (config_.hedge.enabled &&
          int(service_hist.size()) >= std::max(1, config_.hedge.min_samples)) {
        const double cut = config_.hedge.factor *
                           percentile(service_hist, config_.hedge.quantile);
        if (service_s > cut) {
          hedged = true;
          ++n_hedged;
          std::vector<uint64_t> trav2(size_t(width), 0);
          std::vector<int> lvls2(size_t(width), 0);
          std::vector<int64_t> pd2(size_t(width), -1);
          try {
            const double second_s = execute_batch(trav2, lvls2, pd2);
            service_s = std::min(service_s, cut + second_s);
          } catch (const sim::FaultDetected&) {
            // The hedge replica died too; the first result stands.
          }
        }
      }
      service_hist.push_back(service_s);
      now = start + service_s;

      for (int i = 0; i < width; ++i) {
        const Query& q = batch[size_t(i)];
        QueryResult r;
        r.id = q.id;
        r.kind = q.kind;
        r.root = q.root;
        r.target = q.target;
        r.arrival_s = q.arrival_s;
        r.deadline_s = q.deadline_s;
        r.start_s = start;
        r.done_s = now;
        r.latency_s = now - q.arrival_s;
        // Point-to-point results carry no per-tree scalars (the bit-identity
        // convention cache-served answers follow too — see QueryResult).
        const bool point = query_kind_point_to_point(q.kind);
        r.traversed_edges = point ? 0 : traversed[size_t(i)];
        r.levels = point ? 0 : levels[size_t(i)];
        if (q.kind == QueryKind::Distance) {
          r.distance = pdist[size_t(i)];
          r.reachable = r.distance >= 0;
        } else if (q.kind == QueryKind::Reachable) {
          r.reachable = pdist[size_t(i)] >= 0;
        }
        r.epoch = epoch;
        r.retries = q.attempt;
        r.hedged = hedged;
        if (now > q.deadline_s) {
          r.status = QueryStatus::Expired;
          r.error = QueryExpired(q.id, q.arrival_s, q.deadline_s, now).what();
          ++n_explate;
        } else {
          r.status = QueryStatus::Done;
          ++n_done;
        }
        finish(std::move(r));
      }
    };

    // ---- Mutation trigger ("Mutations & epochs"). -----------------------
    // Id-driven: batch k applies immediately before the first query with
    // id >= k * every is admitted.  Ids come from the replicated workload
    // generator, so every rank fires at the same point in the stream and a
    // query's epoch is independent of the virtual clock — cache-on and
    // cache-off runs see identical epochs per query id.
    auto maybe_mutate = [&](uint64_t next_id) {
      if (!mutating) return;
      while (mut_applied < mcfg.max_batches &&
             next_id >= (mut_applied + 1) * mcfg.every) {
        // Drain: every queued query executes against its admission epoch
        // before the graph changes (the read-consistency contract).
        while (!broker.empty()) run_one_batch();
        const mutate::MutationBatch& mb = mut_log->generate_next();
        // Ingest + repair are not the recoverable engine surface; park the
        // fault plan for their collectives, like the sketch-refresh path.
        const sim::FaultPlan* plan = ctx.faults.plan;
        ctx.faults.plan = nullptr;
        const double comm0 = ctx.stats.total_modeled_s();
        double local_cost =
            double(mb.inserts.size() + mb.deletes.size()) * mcfg.seconds_per_op;
        mutate::ApplyStats as =
            mutate::apply_batch_1d(ctx.rank, part1, mb, &degrees);
        if (part15)
          as.merge(mutate::apply_batch_15d(ctx.mesh, ctx.rank, *part15, mb));
        apply_total.merge(as);
        ++mut_applied;
        epoch = mut_applied;
        // The bump invalidates every cached artifact: stale-epoch trees
        // self-evict on their next probe (the lease path) and the sketch
        // stops answering immediately.
        cache.bump_epoch();
        bool repaired = false;
        if (repair_lm && lm_valid) {
          // Incremental landmark repair: only invalidated vertices re-enter
          // the frontier, and the repaired rows bit-match a full rebuild —
          // so the sketch can be reinstalled at the new epoch without an
          // MS-BFS sweep.
          mutate::RepairOptions ropts;
          ropts.channels = &rchan;
          ropts.sim_seconds_per_edge = config_.msbfs.sim_seconds_per_edge;
          for (size_t k = 0; k < landmarks.size(); ++k) {
            mutate::RepairStats rs = mutate::repair_bfs(
                ctx, part1, mb, landmarks[k],
                std::span<Vertex>(lm_parent.data() + k * local_count,
                                  local_count),
                std::span<int32_t>(lm_depth.data() + k * local_count,
                                   local_count),
                ropts);
            local_cost += rs.compute_model_s;
            repair_total.merge(rs);
          }
          ctx.world.allgatherv_into(std::span<const int32_t>(lm_depth),
                                    depth_gather, &depth_off);
          repaired = true;
          ++n_sketch_repairs;
        }
        now += ctx.world.allreduce_max(ctx.stats.total_modeled_s() - comm0 +
                                       local_cost);
        ctx.faults.plan = plan;
        if (repaired)
          cache.install_sketch(landmarks,
                               oracle::assemble_depth_rows(
                                   space, int(landmarks.size()), depth_gather,
                                   depth_off),
                               now);
        log_debug(MutationApplied(epoch, mb.inserts.size(), mb.deletes.size(),
                                  mb.delete_misses, now)
                      .what());
      }
    };

    for (;;) {
      if (!broker.batch_ready(now)) {
        double t = std::min({gen.next_arrival_s(), broker.next_close_s(),
                             next_retry_s()});
        if (t == kInf) break;  // drained: no arrivals, retries or queue
        now = std::max(now, t);
      }
      // Due re-admissions first (they carry the oldest arrivals), in
      // (retry time, id) order so every rank replays them identically...
      if (!retryq.empty()) {
        std::sort(retryq.begin(), retryq.end(),
                  [](const std::pair<double, Query>& a,
                     const std::pair<double, Query>& b) {
                    return a.first != b.first ? a.first < b.first
                                              : a.second.id < b.second.id;
                  });
        size_t due = 0;
        while (due < retryq.size() && retryq[due].first <= now) ++due;
        for (size_t i = 0; i < due; ++i) admit(retryq[i].second);
        retryq.erase(retryq.begin(), retryq.begin() + ptrdiff_t(due));
      }
      // ...then fresh arrivals, each crossing the mutation trigger first.
      for (Query& q : gen.pop_ready(now)) {
        maybe_mutate(q.id);
        ++n_sub;
        if (admit(q)) ++n_acc;
      }
      if (!broker.batch_ready(now)) continue;
      run_one_batch();
    }

    // Steady-state allocation proof: the resident pools must stop growing
    // after the first executed batch, faults or not (the chaos suite gates
    // the BFS-workload steady count at zero).
    const uint64_t total_allocs =
        ws.staging_allocs() + staging.allocs() + rchan.allocs();
    const uint64_t warm = warm_captured ? warm_allocs : total_allocs;
    const uint64_t warm_total = ctx.world.allreduce_sum(warm);
    const uint64_t steady_total = ctx.world.allreduce_sum(total_allocs - warm);

    // Mutation telemetry: arc counts are per-rank (each rank patches only
    // its own rows), so the global counters need a sum; batch counts,
    // rounds and tombstone misses are replicated.  Collective — gated on
    // the replicated config so mutation-off runs keep their exact historic
    // collective sequence.
    MutateStats mstats;
    if (mutating) {
      mstats.batches = mut_applied;
      mstats.epoch = epoch;
      mstats.inserted_arcs = ctx.world.allreduce_sum(apply_total.inserted_arcs);
      mstats.deleted_arcs = ctx.world.allreduce_sum(apply_total.deleted_arcs);
      mstats.compactions = ctx.world.allreduce_sum(apply_total.compactions);
      for (uint64_t i = 0; i < mut_applied; ++i)
        mstats.delete_misses += mut_log->batch(size_t(i)).delete_misses;
      mstats.repair_invalidated =
          ctx.world.allreduce_sum(repair_total.invalidated);
      mstats.repair_relaxations =
          ctx.world.allreduce_sum(repair_total.relaxations);
      mstats.repair_rounds = uint64_t(repair_total.cascade_rounds) +
                             uint64_t(repair_total.repair_rounds);
      mstats.sketch_repairs = n_sketch_repairs;
    }

    if (ctx.rank == 0) {
      results0 = std::move(results);
      submitted = n_sub;
      accepted = n_acc;
      rejected = n_rej;
      shed = broker.shed_count();
      expired_in_queue = n_expq;
      expired_late = n_explate;
      completed = n_done;
      failed = n_failed;
      retried = n_retried;
      batches = n_batches;
      failed_batches = n_failed_batches;
      hedged_batches = n_hedged;
      breaker_transitions = broker.breaker_transitions();
      allocs_warm = warm_total;
      allocs_steady = steady_total;
      occupancy_sum = occ_sum;
      makespan = now;
      cache_stats = cache.stats();
      mut_stats = mstats;
    }
  };
  report.spmd = sim::run_spmd(topology_, body, spmd_opts);

  report.results = std::move(results0);
  report.submitted = submitted;
  report.accepted = accepted;
  report.rejected = rejected;
  report.shed = shed;
  report.completed = completed;
  report.expired_in_queue = expired_in_queue;
  report.expired_late = expired_late;
  report.failed = failed;
  report.retried = retried;
  report.batches = batches;
  report.failed_batches = failed_batches;
  report.hedged_batches = hedged_batches;
  report.breaker_transitions = breaker_transitions;
  report.staging_allocs_warmup = allocs_warm;
  report.staging_allocs_steady = allocs_steady;
  report.cache = cache_stats;
  report.mutate = mut_stats;
  report.mean_batch_occupancy =
      batches > 0 ? occupancy_sum / double(batches) : 0;
  report.makespan_s = makespan;
  report.qps = makespan > 0 ? double(completed) / makespan : 0;
  std::vector<double> lat;
  lat.reserve(report.results.size());
  double lat_sum = 0;
  for (const QueryResult& r : report.results)
    if (r.ok()) {
      lat.push_back(r.latency_s);
      lat_sum += r.latency_s;
    }
  report.latency_mean_s = lat.empty() ? 0 : lat_sum / double(lat.size());
  report.latency_p50_s = percentile(lat, 50);
  report.latency_p95_s = percentile(lat, 95);
  report.latency_p99_s = percentile(lat, 99);
  return report;
}

}  // namespace sunbfs::service
