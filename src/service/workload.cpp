#include "service/workload.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace sunbfs::service {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Exponential inter-arrival draw for a Poisson process at `rate`.
double exp_draw(Xoshiro256StarStar& rng, double rate) {
  // 1 - U in (0, 1] keeps the log finite.
  return -std::log(1.0 - rng.next_double()) / rate;
}
}  // namespace

WorkloadGen::WorkloadGen(const WorkloadConfig& config,
                         std::vector<graph::Vertex> roots)
    : config_(config), roots_(std::move(roots)), rng_(config.seed) {
  SUNBFS_CHECK(!roots_.empty());
  SUNBFS_CHECK(config_.num_queries > 0);
  SUNBFS_CHECK(config_.sssp_fraction + config_.distance_fraction +
                   config_.reachable_fraction <=
               1.0);
  if (config_.root_dist == RootDist::Zipfian) {
    SUNBFS_CHECK(config_.zipf_theta >= 0);
    zipf_cum_.resize(roots_.size());
    double cum = 0;
    for (size_t i = 0; i < roots_.size(); ++i) {
      cum += 1.0 / std::pow(double(i + 1), config_.zipf_theta);
      zipf_cum_[i] = cum;
    }
  }
  if (config_.mode == ArrivalMode::Open) {
    SUNBFS_CHECK(config_.rate_qps > 0);
    open_next_s_ = exp_draw(rng_, config_.rate_qps);
  } else {
    SUNBFS_CHECK(config_.users > 0);
    user_rng_.reserve(size_t(config_.users));
    user_next_s_.resize(size_t(config_.users));
    for (int u = 0; u < config_.users; ++u) {
      // Independent per-user streams; staggered starts inside one think
      // window so users do not arrive in lockstep.
      user_rng_.emplace_back(config_.seed ^ SplitMix64::mix(uint64_t(u) + 1));
      user_next_s_[size_t(u)] = user_rng_.back().next_double() * config_.think_s;
    }
  }
  user_of_id_.reserve(size_t(config_.num_queries));
}

graph::Vertex WorkloadGen::sample_root(Xoshiro256StarStar& rng) {
  if (config_.root_dist == RootDist::Uniform)
    return roots_[rng.next_below(roots_.size())];
  // Zipfian: exactly one uniform draw inverted through the CDF table, so
  // the draw count per query is fixed and the stream replays exactly.
  const double r = rng.next_double() * zipf_cum_.back();
  const size_t i = size_t(
      std::lower_bound(zipf_cum_.begin(), zipf_cum_.end(), r) -
      zipf_cum_.begin());
  return roots_[std::min(i, roots_.size() - 1)];
}

Query WorkloadGen::make_query(Xoshiro256StarStar& rng, double arrival_s,
                              int user) {
  Query q;
  q.id = issued_++;
  // One draw partitions the kind mix; the historical two-kind stream is the
  // special case where both point fractions are zero.
  const double kd = rng.next_double();
  double cut = config_.sssp_fraction;
  if (kd < cut) {
    q.kind = QueryKind::SsspRoot;
  } else if (kd < (cut += config_.distance_fraction)) {
    q.kind = QueryKind::Distance;
  } else if (kd < (cut += config_.reachable_fraction)) {
    q.kind = QueryKind::Reachable;
  } else {
    q.kind = QueryKind::Bfs;
  }
  q.root = sample_root(rng);
  // Point-to-point targets come from the same pool and distribution — under
  // zipfian skew they concentrate on the hot prefix (where the oracle pins
  // its landmarks), the YCSB-style traffic shape.
  if (query_kind_point_to_point(q.kind)) q.target = sample_root(rng);
  q.arrival_s = arrival_s;
  q.deadline_s = config_.deadline_s == kNoDeadline
                     ? kNoDeadline
                     : arrival_s + config_.deadline_s;
  // Deterministic expiry injection: the k-th, 2k-th, ... queries arrive
  // already past their deadline.
  if (config_.expire_every > 0 && (q.id + 1) % config_.expire_every == 0)
    q.deadline_s = arrival_s;
  // Priority from a (seed, id) hash, not an RNG draw: the kind/root stream
  // above must not shift when the priority mix changes.
  uint64_t h = SplitMix64::mix(config_.seed ^
                               (q.id * 0x9E3779B97F4A7C15ull + 0xA5A5ull));
  double u = double(h >> 11) * 0x1.0p-53;
  q.priority = u < config_.low_priority_fraction ? 0 : 1;
  user_of_id_.push_back(user);
  return q;
}

bool WorkloadGen::exhausted() const { return issued_ >= config_.num_queries; }

double WorkloadGen::next_arrival_s() const {
  if (exhausted()) return kInf;
  if (config_.mode == ArrivalMode::Open) return open_next_s_;
  double earliest = kInf;
  for (double t : user_next_s_) earliest = std::min(earliest, t);
  return earliest;
}

std::vector<Query> WorkloadGen::pop_ready(double now_s) {
  std::vector<Query> out;
  if (config_.mode == ArrivalMode::Open) {
    while (!exhausted() && open_next_s_ <= now_s) {
      out.push_back(make_query(rng_, open_next_s_, /*user=*/0));
      open_next_s_ += exp_draw(rng_, config_.rate_qps);
    }
    return out;
  }
  // Closed loop: at most one pending submission per user.  Scan users in
  // index order each pass so ties resolve deterministically.
  for (bool popped = true; popped && !exhausted();) {
    popped = false;
    int best = -1;
    for (int u = 0; u < config_.users; ++u)
      if (user_next_s_[size_t(u)] <= now_s &&
          (best < 0 || user_next_s_[size_t(u)] < user_next_s_[size_t(best)]))
        best = u;
    if (best >= 0) {
      out.push_back(
          make_query(user_rng_[size_t(best)], user_next_s_[size_t(best)], best));
      user_next_s_[size_t(best)] = kInf;  // in flight until on_complete
      popped = true;
    }
  }
  return out;
}

void WorkloadGen::on_complete(const QueryResult& result, double now_s) {
  if (config_.mode == ArrivalMode::Open) return;
  SUNBFS_CHECK(result.id < user_of_id_.size());
  int user = user_of_id_[size_t(result.id)];
  if (exhausted()) return;
  user_next_s_[size_t(user)] = now_s + config_.think_s;
}

}  // namespace sunbfs::service
