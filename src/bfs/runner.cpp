#include "bfs/runner.hpp"

#include <mutex>

#include "bfs/bfs1d.hpp"
#include "bfs/workspace.hpp"
#include "partition/part1d.hpp"
#include "support/log.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace sunbfs::bfs {

using graph::Vertex;

std::vector<Vertex> pick_search_keys(sim::RankContext& ctx,
                                     const partition::VertexSpace& space,
                                     std::span<const uint64_t> degrees,
                                     int count, uint64_t seed) {
  // Same RNG everywhere; the owner votes on degree >= 1 and the vote is
  // allreduced, so the chosen keys are replicated without a broadcast.
  Xoshiro256StarStar rng(seed);
  std::vector<Vertex> chosen;
  while (int(chosen.size()) < count) {
    Vertex cand = Vertex(rng.next_below(space.total));
    int has_edge = 0;
    if (space.owner(cand) == ctx.rank)
      has_edge = degrees[space.to_local(ctx.rank, cand)] > 0 ? 1 : 0;
    if (ctx.world.allreduce_sum(has_edge) > 0) chosen.push_back(cand);
  }
  return chosen;
}

BfsStats sum_stats(const std::vector<BfsStats>& per_rank) {
  BfsStats total;
  for (const auto& s : per_rank) {
    for (int i = 0; i < partition::kSubgraphCount; ++i) {
      total.push_cpu_s[size_t(i)] += s.push_cpu_s[size_t(i)];
      total.pull_cpu_s[size_t(i)] += s.pull_cpu_s[size_t(i)];
      total.comm_modeled_s[size_t(i)] += s.comm_modeled_s[size_t(i)];
    }
    total.reduce_cpu_s += s.reduce_cpu_s;
    total.reduce_comm_modeled_s += s.reduce_comm_modeled_s;
    total.other_cpu_s += s.other_cpu_s;
    total.other_comm_modeled_s += s.other_comm_modeled_s;
    total.comm.merge(s.comm);
    total.num_iterations = std::max(total.num_iterations, s.num_iterations);
    if (total.iterations.size() < s.iterations.size())
      total.iterations = s.iterations;  // replicated content; keep longest
  }
  return total;
}

RunnerResult run_graph500(const sim::Topology& topology,
                          const RunnerConfig& config) {
  const sim::MeshShape mesh = topology.mesh();
  const int nranks = mesh.ranks();
  const graph::Graph500Config& g = config.graph;
  partition::VertexSpace space{g.num_vertices(), nranks};

  // Search keys: deterministic, degree >= 1 enforced after degrees are
  // known (all ranks run the same RNG; validity is allreduced).
  RunnerResult result;

  // Per-root, per-rank collection areas (indexed [root][rank]).
  std::vector<std::vector<BfsStats>> stats(size_t(config.num_roots),
                                           std::vector<BfsStats>(size_t(nranks)));
  std::vector<std::vector<double>> cpu_s(size_t(config.num_roots),
                                         std::vector<double>(size_t(nranks), 0));
  std::vector<std::vector<double>> comm_s = cpu_s;
  std::vector<double> wall_s(size_t(config.num_roots), 0);
  std::vector<uint64_t> traversed(size_t(config.num_roots), 0);
  std::vector<Vertex> roots;
  // Gathered global parent arrays per root (filled by rank 0's view).
  std::vector<std::vector<Vertex>> parents(size_t(config.num_roots));
  partition::BalanceReport balance;
  uint64_t num_eh = 0, num_e = 0;
  double partition_wall = 0;
  uint64_t threads_per_rank = 0;
  uint64_t allocs_warmup_total = 0, allocs_steady_total = 0;
  uint64_t search_a2a_bytes_total = 0, search_ag_bytes_total = 0;
  uint64_t search_a2a_inter_bytes_total = 0;

  sim::SpmdOptions spmd_options;
  spmd_options.policy = config.fault_policy;
  spmd_options.faults = config.faults;

  result.spmd = sim::run_spmd(topology, [&](sim::RankContext& ctx) {
    // Setup (generation, partitioning, root selection) runs fault-free;
    // plans fire only while armed, around the searches below.
    ctx.faults.armed = false;
    // One warm workspace (worker pool + staging buffer pools) per rank for
    // the whole run: capacities grow during the first root and stay put, so
    // steady-state searches stage and exchange without allocating.
    EngineConfig ecfg;
    ecfg.kind = config.engine;
    ecfg.thresholds = config.thresholds;
    ecfg.bfs15 = config.bfs;
    ecfg.bfs1d = config.bfs1d;
    ecfg.async = config.bfsasync;
    BfsWorkspace ws(
        resolve_threads_per_rank(ecfg.threads_request(), size_t(nranks)));
    if (ctx.rank == 0) threads_per_rank = ws.pool().size();
    WallTimer setup_wall;
    uint64_t m = g.num_edges();
    auto slice = graph::generate_rmat_range(
        g, m * uint64_t(ctx.rank) / uint64_t(nranks),
        m * uint64_t(ctx.rank + 1) / uint64_t(nranks), &ws.pool());
    auto degrees = partition::compute_local_degrees(ctx, space, slice);

    // Engine-specific resources first (the options go into make_engine by
    // value): the chip backing a chip-executed 1.5D pull kernel must outlive
    // the engine.
    std::optional<chip::Chip> chip;
    ecfg.bfs15.workspace = &ws;
    if (ecfg.kind == EngineKind::OneFiveD &&
        ecfg.bfs15.pull_kernel != Bfs15dOptions::EhPullKernel::Host) {
      chip.emplace(config.chip_geometry);
      ecfg.bfs15.chip = &*chip;
    }
    ecfg.bfs1d.workspace = &ws;
    ecfg.async.workspace = &ws;
    // Build the partition the selected engine needs and bind it (collective).
    std::unique_ptr<TraversalEngine> engine =
        make_engine(ctx, space, slice, degrees, ecfg);
    if (const partition::Part15d* part15 = engine->part15()) {
      if (ctx.rank == 0) {
        num_eh = part15->cls.num_eh();
        num_e = part15->cls.num_e();
      }
      // Collective: every rank participates, only rank 0 keeps the result.
      auto bal = partition::gather_balance(ctx, *part15);
      if (ctx.rank == 0) balance = std::move(bal);
    }
    slice.clear();
    slice.shrink_to_fit();
    if (ctx.rank == 0) partition_wall = setup_wall.seconds();

    // Pick roots (degree-aware voting, shared with the service's load
    // generator — see pick_search_keys).
    std::vector<Vertex> chosen = pick_search_keys(
        ctx, space, degrees, config.num_roots, config.root_seed ^ g.seed);
    if (ctx.rank == 0) roots = chosen;

    uint64_t warmup_allocs = 0;
    uint64_t search_a2a = 0, search_a2a_inter = 0, search_ag = 0;
    for (int i = 0; i < config.num_roots; ++i) {
      ctx.world.barrier();
      WallTimer run_wall;
      std::vector<Vertex> local_parent;
      // Search-phase wire bytes: delta of this rank's CommStats across the
      // engine call (the TEPS reduction and parent gather below run outside
      // the window).
      const uint64_t a2a0 =
          ctx.stats.entry(sim::CollectiveType::Alltoallv).bytes_sent;
      const uint64_t a2ax0 = ctx.stats.entry(sim::CollectiveType::Alltoallv)
                                 .bytes_inter_supernode;
      const uint64_t ag0 =
          ctx.stats.entry(sim::CollectiveType::Allgather).bytes_sent;
      ctx.faults.armed = true;
      {
        EngineRun r = engine->run(ctx, chosen[size_t(i)]);
        if (r.has_stats)
          stats[size_t(i)][size_t(ctx.rank)] = std::move(r.stats);
        cpu_s[size_t(i)][size_t(ctx.rank)] = r.cpu_s;
        comm_s[size_t(i)][size_t(ctx.rank)] = r.comm_modeled_s;
        local_parent = std::move(r.parent);
      }
      // Disarm for the TEPS reduction and parent gather below: faults
      // target the search itself.
      ctx.faults.armed = false;
      search_a2a +=
          ctx.stats.entry(sim::CollectiveType::Alltoallv).bytes_sent - a2a0;
      search_a2a_inter += ctx.stats.entry(sim::CollectiveType::Alltoallv)
                              .bytes_inter_supernode -
                          a2ax0;
      search_ag +=
          ctx.stats.entry(sim::CollectiveType::Allgather).bytes_sent - ag0;
      if (ctx.rank == 0) wall_s[size_t(i)] = run_wall.seconds();
      // Degree-sum TEPS numerator (exact validation count replaces it when
      // validation is enabled): each in-component edge contributes twice.
      uint64_t local_deg_sum = 0;
      for (uint64_t l = 0; l < local_parent.size(); ++l)
        if (local_parent[l] != graph::kNoVertex) local_deg_sum += degrees[l];
      uint64_t deg_sum = ctx.world.allreduce_sum(local_deg_sum);
      if (ctx.rank == 0) traversed[size_t(i)] = deg_sum / 2;
      // Assemble the global parent array for host-side validation.
      auto global_parent =
          ctx.world.allgatherv(std::span<const Vertex>(local_parent));
      if (ctx.rank == 0) parents[size_t(i)] = std::move(global_parent);
      if (i == 0) warmup_allocs = ws.staging_allocs();
    }
    // Staging-allocation audit (faults stay disarmed): every growth after
    // the warmup root is a regression of the allocation-free guarantee.
    uint64_t wu = ctx.world.allreduce_sum(warmup_allocs);
    uint64_t st =
        ctx.world.allreduce_sum(ws.staging_allocs() - warmup_allocs);
    uint64_t a2a = ctx.world.allreduce_sum(search_a2a);
    uint64_t a2ax = ctx.world.allreduce_sum(search_a2a_inter);
    uint64_t ag = ctx.world.allreduce_sum(search_ag);
    if (ctx.rank == 0) {
      allocs_warmup_total = wu;
      allocs_steady_total = st;
      search_a2a_bytes_total = a2a;
      search_a2a_inter_bytes_total = a2ax;
      search_ag_bytes_total = ag;
    }
  }, spmd_options);

  result.balance = std::move(balance);
  result.num_eh = num_eh;
  result.num_e = num_e;
  result.partition_wall_s = partition_wall;
  result.threads_per_rank = threads_per_rank;
  result.staging_allocs_warmup = allocs_warmup_total;
  result.staging_allocs_steady = allocs_steady_total;
  result.search_alltoallv_bytes = search_a2a_bytes_total;
  result.search_alltoallv_inter_bytes = search_a2a_inter_bytes_total;
  result.search_allgather_bytes = search_ag_bytes_total;

  if (!result.spmd.ok()) {
    // At least one rank's body threw (report / recover policy): per-root
    // outputs are incomplete, so skip validation and surface the rank
    // errors instead of touching half-filled arrays.
    result.all_valid = false;
    for (const auto& e : result.spmd.errors) log_warn("graph500: ", e);
    return result;
  }

  // Host-side validation against the full edge list (host pool: the SPMD
  // ranks and their workers have wound down by now).
  std::vector<graph::Edge> all_edges;
  if (config.validate) all_edges = graph::generate_rmat(g, &ThreadPool::global());

  result.all_valid = true;
  for (int i = 0; i < config.num_roots; ++i) {
    RootRun run;
    run.root = roots[size_t(i)];
    double max_cpu = 0, max_comm = 0;
    for (int r = 0; r < nranks; ++r) {
      max_cpu = std::max(max_cpu, cpu_s[size_t(i)][size_t(r)]);
      max_comm = std::max(max_comm, comm_s[size_t(i)][size_t(r)]);
    }
    run.modeled_s = max_cpu + max_comm;
    run.wall_s = wall_s[size_t(i)];
    if (config.engine == EngineKind::OneFiveD)
      run.stats = sum_stats(stats[size_t(i)]);
    if (config.validate) {
      auto v = graph::validate_bfs(g.num_vertices(), all_edges, run.root,
                                   parents[size_t(i)], &ThreadPool::global());
      run.valid = v.ok;
      run.error = v.error;
      run.traversed_edges = v.edges_in_component;
      if (!v.ok) {
        result.all_valid = false;
        log_warn("root ", run.root, " failed validation: ", v.error);
      }
    } else {
      run.valid = true;
      run.traversed_edges = std::max<uint64_t>(1, traversed[size_t(i)]);
    }
    result.runs.push_back(std::move(run));
  }

  std::vector<graph::BfsRunSample> samples;
  for (const auto& r : result.runs)
    if (r.traversed_edges > 0 && r.modeled_s > 0)
      samples.push_back(r.sample());
  if (!samples.empty())
    result.harmonic_gteps =
        graph::gteps(graph::harmonic_mean_teps(samples));
  return result;
}

void BfsStats::to_report(obs::Report& report,
                         const std::string& prefix) const {
  for (int i = 0; i < partition::kSubgraphCount; ++i) {
    const std::string sub =
        prefix + partition::subgraph_name(partition::Subgraph(i)) + ".";
    if (push_cpu_s[size_t(i)] > 0)
      report.gauge(sub + "push_cpu_s", push_cpu_s[size_t(i)]);
    if (pull_cpu_s[size_t(i)] > 0)
      report.gauge(sub + "pull_cpu_s", pull_cpu_s[size_t(i)]);
    if (comm_modeled_s[size_t(i)] > 0)
      report.gauge(sub + "comm_modeled_s", comm_modeled_s[size_t(i)]);
  }
  report.gauge(prefix + "reduce_cpu_s", reduce_cpu_s);
  report.gauge(prefix + "reduce_comm_modeled_s", reduce_comm_modeled_s);
  report.gauge(prefix + "other_cpu_s", other_cpu_s);
  report.gauge(prefix + "other_comm_modeled_s", other_comm_modeled_s);
  report.add_counter(prefix + "iterations", uint64_t(num_iterations));
  Log2Histogram& frontier = report.histogram(prefix + "frontier_active");
  for (const IterationRecord& rec : iterations)
    frontier.add(rec.active_e + rec.active_h + rec.active_l);
}

void RunnerResult::to_report(obs::Report& report) const {
  report.gauge("graph500.harmonic_gteps", harmonic_gteps);
  report.add_counter("graph500.roots", uint64_t(runs.size()));
  report.add_counter("graph500.valid_roots", [&] {
    uint64_t n = 0;
    for (const auto& r : runs)
      if (r.valid) ++n;
    return n;
  }());
  report.info("graph500.all_valid", all_valid ? "true" : "false");
  report.add_counter("graph500.num_eh", num_eh);
  report.add_counter("graph500.num_e", num_e);
  report.gauge("graph500.partition_wall_s", partition_wall_s);
  report.add_counter("spmd.threads_per_rank", threads_per_rank);
  // Staging-pool capacity growths: warmup covers the first root; the steady
  // counter must stay 0 (allocation-free steady-state staging).
  report.add_counter("comm.staging_allocs_warmup", staging_allocs_warmup);
  report.add_counter("comm.staging_allocs", staging_allocs_steady);
  // Search-phase wire bytes (engine invocations only; encoded bytes when
  // wire encoding is on) — what the BENCH_encoding ablation gates.
  report.add_counter("graph500.search_alltoallv_bytes",
                     search_alltoallv_bytes);
  report.add_counter("graph500.search_alltoallv_inter_bytes",
                     search_alltoallv_inter_bytes);
  report.add_counter("graph500.search_allgather_bytes",
                     search_allgather_bytes);
  double modeled = 0, wall = 0;
  uint64_t edges = 0;
  for (const auto& r : runs) {
    modeled += r.modeled_s;
    wall += r.wall_s;
    edges += r.traversed_edges;
  }
  report.gauge("graph500.total_modeled_s", modeled);
  report.gauge("graph500.total_wall_s", wall);
  report.add_counter("graph500.traversed_edges", edges);
  // Per-subgraph breakdown summed over roots (composition shares are what
  // the figures report).
  std::vector<BfsStats> per_root;
  per_root.reserve(runs.size());
  for (const auto& r : runs) per_root.push_back(r.stats);
  if (!per_root.empty()) sum_stats(per_root).to_report(report, "bfs.");
  spmd.to_report(report);
}

}  // namespace sunbfs::bfs
