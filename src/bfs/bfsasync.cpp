#include "bfs/bfsasync.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <span>
#include <memory>
#include <thread>

#include "bfs/messages.hpp"
#include "bfs/workspace.hpp"
#include "obs/trace.hpp"
#include "sim/termination.hpp"
#include "support/bitvector.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace sunbfs::bfs {

using graph::Vertex;
using graph::kNoVertex;

namespace {

/// One claim slot packs (depth, parent) into a word ordered so that a plain
/// numeric MIN is the relaxation rule: smaller depth wins, and on equal
/// depth the LARGER global parent wins (the complemented low half), matching
/// the sync engines' store-max tie break so quiescent outputs are comparable
/// across engines.
constexpr uint64_t kUnclaimed = UINT64_MAX;
constexpr uint32_t kNoDepth = UINT32_MAX;

uint64_t pack_claim(uint32_t depth, uint32_t parent) {
  return (uint64_t(depth) << 32) | (0xFFFFFFFFull - uint64_t(parent));
}
uint32_t claim_depth(uint64_t packed) { return uint32_t(packed >> 32); }
uint32_t claim_parent(uint64_t packed) {
  return uint32_t(0xFFFFFFFFull - (packed & 0xFFFFFFFFull));
}

/// Lock-free fetch-min over a packed claim word.
void store_min(uint64_t& slot, uint64_t packed) {
  std::atomic_ref<uint64_t> a(slot);
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (packed < cur &&
         !a.compare_exchange_weak(cur, packed, std::memory_order_relaxed)) {
  }
}

/// Below this worklist size the drain step runs serially — re-expansion
/// lists on high-diameter graphs are tiny and per-chunk dispatch would
/// dominate.
constexpr size_t kSerialDrain = 256;

/// Adaptive speculation window (depths drained past the round's shallowest
/// queued vertex).  Unbounded drain-to-fixpoint is optimal on lattices —
/// claims are final on first touch — but on low-diameter inputs it explores
/// the rank-local subgraph along inflated detour depths that the next
/// exchange immediately re-lowers, multiplying edge work and resent claims.
/// The window starts narrow and doubles while applied remote claims mostly
/// land on unclaimed vertices (speculation is paying off), halves when they
/// mostly re-lower already-claimed ones (speculation is being re-done).
constexpr uint64_t kWindowInit = 1;

constexpr uint64_t kWindowMin = 1;
constexpr uint64_t kWindowMax = uint64_t(1) << 32;

}  // namespace

BfsAsyncResult bfsasync_run(sim::RankContext& ctx,
                            const partition::Part1d& part, Vertex root,
                            const BfsAsyncOptions& options) {
  const partition::VertexSpace& space = part.space;
  SUNBFS_CHECK(root >= 0 && uint64_t(root) < space.total);
  // Packed claims carry a 32-bit global parent and AsyncVisitMsg a 32-bit
  // receiver-local destination.
  SUNBFS_CHECK(space.total < (uint64_t(1) << 32));
  SUNBFS_CHECK(space.max_count() < (uint64_t(1) << 32));
  const uint64_t local_count = space.count(ctx.rank);

  std::unique_ptr<BfsWorkspace> owned_ws;
  if (!options.workspace)
    owned_ws = std::make_unique<BfsWorkspace>(resolve_threads_per_rank(
        options.threads_per_rank, size_t(ctx.nranks())));
  BfsWorkspace& ws = options.workspace ? *options.workspace : *owned_ws;
  ThreadPool& pool = ws.pool();
  const sim::ExchangePlan plan = sim::ExchangePlan::build(
      options.exchange.backend, ctx.nranks(), ctx.mesh);
  {
    // Worst-case round: one message per dirty global target outbound, one
    // per locally owned vertex from each sender inbound — the same shape as
    // a bfs1d push level, so the same priming keeps staging_allocs flat
    // after the warmup root.
    const size_t nt = pool.size();
    const size_t ranks = size_t(ctx.nranks());
    const size_t total = size_t(space.total);
    ws.async_visits().set_encoding(options.encoding);
    ws.async_visits().prime(ranks, nt, total / nt + 65, total,
                            ranks * size_t(local_count));
    ws.async_visits().prime_staged(plan, ctx.rank, nt, total / nt + 65, total);
  }

  // Relaxed state: claims move monotonically down under fetch-min, so local
  // fixpoints and per-round folded candidates are order-independent and the
  // whole run is bit-deterministic at any thread count.
  std::vector<uint64_t> claims(local_count, kUnclaimed);
  // Depth-ordered bucket worklist: buckets[d] holds owned llocs enqueued when
  // their claim dropped to depth d.  Draining buckets in ascending order
  // expands every vertex at most once per round — at its round-final depth —
  // where an unordered worklist re-expands along every detour it relaxes
  // through.  A claim improved after enqueue leaves a stale entry behind; the
  // pop-time depth check skips it (the improving claim enqueued it lower).
  std::vector<std::vector<uint32_t>> buckets;
  size_t work_entries = 0;        // queued entries, stale included
  size_t min_bucket = SIZE_MAX;   // shallowest possibly-nonempty bucket
  auto enqueue = [&](uint32_t depth, uint32_t lloc) {
    if (buckets.size() <= depth) buckets.resize(size_t(depth) + 1);
    buckets[depth].push_back(lloc);
    ++work_entries;
    if (depth < min_bucket) min_bucket = depth;
  };
  // Lanes collect (depth << 32 | lloc) pushes; flushed serially into the
  // buckets after each parallel step (lane order, so contents — whose order
  // never matters under the min-folds — are thread-count independent anyway).
  std::vector<std::vector<uint64_t>> lane_next(pool.size());
  auto flush_lanes = [&] {
    for (auto& ln : lane_next) {
      for (uint64_t e : ln) enqueue(uint32_t(e >> 32), uint32_t(e));
      ln.clear();
    }
  };
  uint64_t window = kWindowInit;
  // Per-round folded remote candidates plus their dirty set, and the
  // best-depth-ever-sent suppression that keeps later rounds from resending
  // non-improving claims (checkpointed: a replay must resend what the
  // receiver lost).
  std::vector<uint64_t> remote_cand(space.total, kUnclaimed);
  BitVector remote_dirty(space.total);
  std::vector<uint32_t> best_sent(space.total, kNoDepth);
  std::vector<uint64_t> lane_sent(pool.size(), 0);
  std::vector<uint64_t> lane_fresh(pool.size(), 0);
  std::vector<uint64_t> lane_relower(pool.size(), 0);
  std::vector<uint64_t> pre_claims;  // apply-phase snapshot for the governor

  // Claim depth `packed` for an owned vertex; true iff the depth strictly
  // dropped (parent-only improvements at equal depth never re-expand — the
  // children's depths would not change).
  auto try_claim = [&](uint64_t lloc, uint64_t packed) {
    std::atomic_ref<uint64_t> a(claims[lloc]);
    uint64_t cur = a.load(std::memory_order_relaxed);
    while (packed < cur) {
      if (a.compare_exchange_weak(cur, packed, std::memory_order_relaxed))
        return claim_depth(packed) < claim_depth(cur);
    }
    return false;
  };

  // Expand bucket entries [lo, hi) queued at depth `d`: push depth d+1
  // claims to owned neighbors, min-fold boundary claims into remote_cand.
  // Claims of bucket-d vertices cannot change during this step (every
  // concurrent candidate is d+1), so the stale check is race-free.
  std::vector<uint32_t> cur;
  auto expand_range = [&](const std::vector<uint32_t>& vs, uint32_t d,
                          size_t lo, size_t hi, size_t lane) {
    auto& out = lane_next[lane];
    for (size_t i = lo; i < hi; ++i) {
      const uint64_t lloc = vs[i];
      const uint64_t packed =
          std::atomic_ref<uint64_t>(claims[lloc]).load(std::memory_order_relaxed);
      if (claim_depth(packed) != d) continue;  // stale: re-claimed shallower
      const uint64_t cand =
          pack_claim(d + 1, uint32_t(space.to_global(ctx.rank, lloc)));
      for (Vertex v : part.adj.neighbors(lloc)) {
        int owner = space.owner(v);
        if (owner == ctx.rank) {
          uint64_t l = space.to_local(owner, v);
          if (try_claim(l, cand))
            out.push_back((uint64_t(d + 1) << 32) | l);
        } else {
          store_min(remote_cand[uint64_t(v)], cand);
          remote_dirty.atomic_set(uint64_t(v));
        }
      }
    }
  };

  // Dense-round direction switch.  Between rounds nothing is in flight, so
  // every claim at the global minimum queued depth is final: any future
  // candidate comes from expanding a vertex at >= that depth and lands one
  // deeper.  That makes the depth-dmin claim set a level-exact frontier —
  // gather it as a bitmap and let every unsettled vertex pull its claim
  // locally, instead of pushing the dense level's every edge through the
  // alltoallv.  Taking the LARGEST frontier neighbor as parent reproduces
  // exactly the push fixpoint (min-fold keeps the max parent at equal
  // depth), so pull rounds change execution cost, not output — final
  // parents stay bit-identical across thread counts and exchange backends.
  //
  // A private descending-sorted adjacency makes that cheap: scanning in
  // decreasing global id, the FIRST frontier hit is the max frontier
  // neighbor, restoring bfs1d-pull's early exit without giving up the
  // canonical parent.  Built once per run, outside the measured compute.
  std::vector<uint64_t> adj_off(local_count + 1, 0);
  for (uint64_t lloc = 0; lloc < local_count; ++lloc)
    adj_off[lloc + 1] = adj_off[lloc] + part.adj.neighbors(lloc).size();
  std::vector<Vertex> adj_desc(adj_off[local_count]);
  for (uint64_t lloc = 0; lloc < local_count; ++lloc) {
    auto nb = part.adj.neighbors(lloc);
    std::copy(nb.begin(), nb.end(), adj_desc.begin() + ptrdiff_t(adj_off[lloc]));
    std::sort(adj_desc.begin() + ptrdiff_t(adj_off[lloc]),
              adj_desc.begin() + ptrdiff_t(adj_off[lloc + 1]),
              std::greater<Vertex>());
  }
  // Global arc count for the edge-mass pull trigger (static, one collective).
  const uint64_t total_arcs = ctx.world.allreduce_sum(adj_off[local_count]);
  BitVector pull_bits(local_count);
  // Gathered frontier flattened to global-id bit positions: the pull probe
  // loop touches every arc of every unsettled vertex, so it must not pay the
  // owner() division per probe that GatheredFrontier::get would cost.
  std::vector<uint64_t> flat_front((space.total + 63) / 64);
  auto pull_level = [&](uint32_t dmin) {
    obs::Span span("bfs", "round_pull", int64_t(dmin));
    pull_bits.reset();
    for (uint64_t lloc = 0; lloc < local_count; ++lloc)
      if (claim_depth(claims[lloc]) == dmin) pull_bits.set(lloc);
    auto& gbuf = ws.frontier();
    std::span<const uint64_t> gathered = gbuf.gather(
        ctx.world, std::span<const uint64_t>(pull_bits.data(),
                                             pull_bits.word_count()));
    const std::vector<size_t>& goff = gbuf.offsets();
    std::fill(flat_front.begin(), flat_front.end(), 0);
    for (int r = 0; r < ctx.nranks(); ++r) {
      const uint64_t base = space.begin(r);
      // A corrupted contribution comes back empty (verify_source); the short
      // span reads as an all-zero slice here and the round rolls back.
      const uint64_t nwords = std::min<uint64_t>(
          (space.count(r) + 63) / 64, goff[size_t(r) + 1] - goff[r]);
      const uint64_t* w = gathered.data() + goff[r];
      for (uint64_t j = 0; j < nwords; ++j) {
        for (uint64_t word = w[j]; word; word &= word - 1) {
          const uint64_t g = base + j * 64 + uint64_t(std::countr_zero(word));
          flat_front[g >> 6] |= uint64_t(1) << (g & 63);
        }
      }
    }
    const uint64_t cand_depth = uint64_t(dmin) + 1;
    const size_t n = size_t(local_count);
    const size_t parts = std::min(n / kSerialDrain + 1, pool.size());
    pool.run_chunks(parts, [&](size_t lane) {
      auto& out = lane_next[lane];
      for (size_t lloc = n * lane / parts; lloc < n * (lane + 1) / parts;
           ++lloc) {
        if (claim_depth(claims[lloc]) <= dmin) continue;  // settled
        for (uint64_t i = adj_off[lloc]; i < adj_off[lloc + 1]; ++i) {
          const uint64_t u = uint64_t(adj_desc[i]);
          if (!((flat_front[u >> 6] >> (u & 63)) & 1)) continue;
          if (try_claim(lloc, pack_claim(uint32_t(cand_depth), uint32_t(u))))
            out.push_back((cand_depth << 32) | lloc);
          break;  // descending scan: first hit is the max frontier neighbor
        }
      }
    });
    flush_lanes();
    // The frontier's queued entries are now redundant: every neighbor of a
    // depth-dmin vertex — local or remote — just got its final claim from
    // its own owner's pull scan, so push-expanding them later would only
    // resend settled claims.
    if (dmin < buckets.size() && !buckets[dmin].empty()) {
      work_entries -= buckets[dmin].size();
      buckets[dmin].clear();
    }
  };

  // Drain the local worklist in depth order up to the speculation window:
  // propagate through up to `window` levels of owned vertices past the
  // globally shallowest queued one with zero communication, accumulating
  // boundary claims in remote_cand.  Deeper entries stay queued for later
  // rounds — they are the speculation most likely to be re-lowered by a
  // claim still in flight.  Anchoring the window at the global minimum (one
  // cheap allreduce per round) keeps a rank that ran ahead from exploring
  // detours ever deeper while the true frontier is still levels behind on
  // some other rank; on a path only one rank holds work at a time, so the
  // global anchor degenerates to the local one and full-speed pipelined
  // drain survives.
  // Returns true when the round pulled: a pull round emits no boundary
  // candidates, so the caller skips the (empty) alltoallv exchange entirely.
  // `global_dmin` is the globally shallowest queued depth, carried over from
  // the previous round's termination probe (the probe's min-fold rider) so
  // the round needs no dedicated depth allreduce.
  auto drain = [&](uint32_t global_dmin) {
    while (min_bucket < buckets.size() && buckets[min_bucket].empty())
      ++min_bucket;
    if (global_dmin == kNoDepth)
      return false;  // all ranks idle: termination round
    // The pending frontier's shape decides push vs pull.  Bucket contents at
    // a round boundary are identical across thread counts and backends, so
    // every config flips direction on the same rounds.  Two triggers, both
    // against the fraction the pull gather itself would cost:
    //  - entry count, as in bfs1d: dense levels gather cheaper than they
    //    push;
    //  - edge mass, as in direction-optimizing BFS: a scale-free hub level
    //    can be a handful of vertices carrying a quarter of all arcs,
    //    invisible to the count trigger but ruinous to push on the hubs'
    //    owner ranks.  The absolute floor keeps tiny late frontiers
    //    (high-diameter tails) in push mode, where the speculation window
    //    covers many levels per collective round instead of one gather each.
    // Only the still-queued entries count — claims already expanded at this
    // depth by earlier speculation have paid their push, so they argue
    // neither way.
    struct FrontierLoad {
      uint64_t count = 0;  // queued entries at global_dmin (stale included)
      uint64_t mass = 0;   // their outgoing arcs
    };
    FrontierLoad load;
    if (global_dmin < buckets.size()) {
      load.count = buckets[global_dmin].size();
      for (uint32_t lloc : buckets[global_dmin])
        load.mass += adj_off[lloc + 1] - adj_off[lloc];
    }
    load = ctx.world.allreduce(load, [](FrontierLoad a, FrontierLoad b) {
      return FrontierLoad{a.count + b.count, a.mass + b.mass};
    });
    if (double(load.count) / double(space.total) > options.pull_ratio ||
        double(load.mass) > double(total_arcs) * options.pull_ratio) {
      pull_level(global_dmin);
      return true;
    }
    if (min_bucket >= buckets.size()) return false;  // locally idle
    const uint64_t limit = uint64_t(global_dmin) + window;
    // Speculating past the frontier is only worth it for light levels: a
    // bucket whose entries carry more than this rank's share of the pull
    // threshold's edge mass marks a level the direction switch would rather
    // gather than push — leave it queued so next round's trigger can make
    // that call.  The cap must be edge mass, not entry count: on scale-free
    // graphs a few hundred within-window speculative entries can be the
    // graph's top hubs holding a tenth of all arcs.
    const uint64_t spec_cap = std::max<uint64_t>(
        1, uint64_t(double(total_arcs) * options.pull_ratio /
                    double(ctx.nranks())));
    size_t d = min_bucket;
    for (; d < buckets.size() && d < limit; ++d) {
      if (buckets[d].empty()) continue;
      if (d > global_dmin) {
        uint64_t mass = 0;
        for (uint32_t lloc : buckets[d])
          mass += adj_off[lloc + 1] - adj_off[lloc];
        if (mass > spec_cap) break;
      }
      cur.swap(buckets[d]);
      work_entries -= cur.size();
      const size_t n = cur.size();
      const size_t parts = std::min(n / kSerialDrain + 1, pool.size());
      if (parts <= 1) {
        expand_range(cur, uint32_t(d), 0, n, 0);
      } else {
        pool.run_chunks(parts, [&](size_t lane) {
          expand_range(cur, uint32_t(d), n * lane / parts,
                       n * (lane + 1) / parts, lane);
        });
      }
      cur.clear();
      flush_lanes();
    }
    min_bucket = d;
    return false;
  };

  // Ship this round's folded boundary claims and apply what arrives;
  // received improvements seed the next round's worklist.
  auto exchange_round = [&](sim::TerminationDetector& term) {
    auto& staging = ws.async_visits();
    staging.begin(size_t(ctx.nranks()), pool.size(), plan, ctx.rank);
    {
      const size_t n = remote_dirty.word_count();
      const size_t parts = std::min(std::max<size_t>(n, 1), pool.size());
      pool.run_chunks(parts, [&](size_t lane) {
        size_t lo = n * lane / parts;
        size_t hi = n * (lane + 1) / parts;
        uint64_t cnt = 0;
        remote_dirty.for_each_set_words(lo, hi, [&](size_t v) {
          const uint64_t packed = remote_cand[v];
          remote_cand[v] = kUnclaimed;
          const uint32_t d = claim_depth(packed);
          if (d < best_sent[v]) {
            best_sent[v] = d;
            Vertex gv = Vertex(v);
            int owner = space.owner(gv);
            staging.push(lane, size_t(owner),
                         AsyncVisitMsg{uint32_t(space.to_local(owner, gv)),
                                       claim_parent(packed), d});
            ++cnt;
          }
        });
        lane_sent[lane] = cnt;
      });
      uint64_t sent = 0;
      for (size_t lane = 0; lane < parts; ++lane) sent += lane_sent[lane];
      term.note_sent(sent);
      remote_dirty.reset();
    }
    auto got = staging.exchange(ctx.world, pool);
    term.note_received(got.size());
    const size_t m = got.size();
    // Window feedback, measured against a pre-apply snapshot so the counts
    // are schedule-independent (two lanes racing the same destination would
    // otherwise split fresh/re-lower differently per run): an arriving
    // improvement on an unclaimed vertex means speculation is reaching new
    // ground, one on a claimed vertex means earlier speculation is being
    // re-done at a shallower depth.
    uint64_t fresh = 0, relower = 0;
    if (m != 0) {
      pre_claims = claims;
      const size_t parts = std::min(m / kSerialDrain + 1, pool.size());
      pool.run_chunks(parts, [&](size_t lane) {
        size_t lo = m * lane / parts;
        size_t hi = m * (lane + 1) / parts;
        auto& out = lane_next[lane];
        uint64_t nf = 0, nr = 0;
        for (size_t i = lo; i < hi; ++i) {
          const AsyncVisitMsg& msg = got[i];
          const uint64_t packed = pack_claim(msg.depth, msg.parent);
          const uint64_t pre = pre_claims[msg.dst];
          if (pre == kUnclaimed) {
            ++nf;
          } else if (msg.depth < claim_depth(pre)) {
            ++nr;  // strict depth drop: earlier speculation is re-done
          }
          if (try_claim(msg.dst, packed))
            out.push_back((uint64_t(msg.depth) << 32) | msg.dst);
        }
        lane_fresh[lane] = nf;
        lane_relower[lane] = nr;
      });
      for (size_t lane = 0; lane < parts; ++lane) {
        fresh += lane_fresh[lane];
        relower += lane_relower[lane];
      }
      flush_lanes();
    }
    if (relower * 16 > fresh + relower)
      window = std::max(kWindowMin, window / 2);
    else
      window = std::min(window * 2, kWindowMax);
  };

  // Strict credit counting (sum sent == sum received) holds only when no
  // messages fold in flight; staged merging plans deliver k same-target
  // claims as one, so they run the stability-only variant (safe here — every
  // exchange completes inside the collective, see sim/termination.hpp).
  sim::TerminationDetector term(plan.stages() == 0);

  if (space.owner(root) == ctx.rank) {
    uint64_t lloc = space.to_local(ctx.rank, root);
    try_claim(lloc, pack_claim(0, uint32_t(root)));
    enqueue(0, uint32_t(lloc));
  }

  // Checkpoint/rollback recovery, mirroring bfs1d: snapshot the relaxed
  // state (claims, worklist, resend suppression, termination credits) every
  // checkpoint_interval exchange rounds; on an agreed corruption or a
  // planned rank failure every rank rolls back together.
  const bool resilient = ctx.faults.recovering();
  const sim::RecoveryOptions& rec = options.recovery;
  std::vector<bool> fired_failures;
  if (resilient) {
    SUNBFS_CHECK(rec.checkpoint_interval >= 1);
    fired_failures.assign(ctx.faults.plan->rank_failures().size(), false);
  }
  // The carried frontier depth (see the probe rider below) is round state
  // like the window: a rollback must restore the value the checkpointed
  // round's probe produced, not the corrupted round's.
  uint32_t global_dmin = 0;
  struct Checkpoint {
    int round = 0;
    std::vector<uint64_t> claims;
    std::vector<uint64_t> work;  ///< bucket entries, (depth << 32 | lloc)
    std::vector<uint32_t> best_sent;
    uint64_t window = kWindowInit;
    uint32_t dmin = 0;
    uint64_t bytes_sent = 0;
    sim::TerminationDetector::Snapshot term;
  } ckpt;
  int consecutive_retries = 0;
  bool in_recovery = false;
  auto clear_work = [&] {
    for (auto& b : buckets) b.clear();
    work_entries = 0;
    min_bucket = SIZE_MAX;
  };
  auto save_checkpoint = [&](int round) {
    ckpt.round = round;
    ckpt.claims = claims;
    ckpt.work.clear();
    for (size_t d = min_bucket; d < buckets.size(); ++d)
      for (uint32_t lloc : buckets[d])
        ckpt.work.push_back((uint64_t(d) << 32) | lloc);
    ckpt.best_sent = best_sent;
    ckpt.window = window;
    ckpt.dmin = global_dmin;
    ckpt.bytes_sent = ctx.stats.total_bytes_sent();
    ckpt.term = term.save();
  };
  auto rollback = [&](int& round) {
    obs::Span span("fault", "rollback", ckpt.round);
    obs::instant("fault", "rollback_from", round);
    ++consecutive_retries;
    if (consecutive_retries > rec.max_retries)
      throw sim::FaultDetected("fault: recovery retries exhausted after " +
                               std::to_string(rec.max_retries) + " attempts");
    auto& fs = ctx.faults.stats;
    ++fs.retries;
    in_recovery = true;
    double delay = sim::backoff_delay_s(rec, consecutive_retries);
    fs.backoff_s += delay;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    obs::Tracer::advance_modeled(delay);
    fs.resent_bytes += ctx.stats.total_bytes_sent() - ckpt.bytes_sent;
    claims = ckpt.claims;
    clear_work();
    for (uint64_t e : ckpt.work) enqueue(uint32_t(e >> 32), uint32_t(e));
    best_sent = ckpt.best_sent;
    window = ckpt.window;
    global_dmin = ckpt.dmin;
    for (auto& ln : lane_next) ln.clear();
    // remote_cand/remote_dirty are clean between rounds (the emission scan
    // resets every dirty entry), so only the durable state restores.
    term.restore(ckpt.term);  // also restarts the two-wave handshake
    round = ckpt.round;
    log_debug("bfsasync rank ", ctx.rank, ": rolled back to round checkpoint ",
              ckpt.round, " (retry ", consecutive_retries, ")");
  };
  auto take_rank_failure = [&](int round) {
    const auto& failures = ctx.faults.plan->rank_failures();
    bool fired = false;
    for (size_t i = 0; i < failures.size(); ++i) {
      if (fired_failures[i] || failures[i].level != round) continue;
      fired_failures[i] = true;
      fired = true;
      if (failures[i].rank == ctx.rank) {
        ++ctx.faults.stats.injected_failures;
        log_debug("bfsasync rank ", ctx.rank,
                  ": injected hard failure at round ", round);
        claims.assign(local_count, kUnclaimed);
        clear_work();
        best_sent.assign(space.total, kNoDepth);
      }
    }
    return fired;
  };

  BfsAsyncResult result;
  obs::Span run_span("bfs", "bfsasync");
  ThreadCpuTimer cpu;
  const double comm0 = ctx.stats.total_modeled_s();
  if (resilient) save_checkpoint(0);
  int round = 0;
  // Round 1's frontier depth (global_dmin, declared with the checkpoint
  // state above) is known without communication: the only claim anywhere is
  // the root at depth 0.  Every later round's depth arrives on the previous
  // round's probe wave.
  for (;;) {
    ++round;
    obs::Span round_span("bfs", "round", round);
    // Fault plans key rank failures on the exchange round here (there are no
    // levels to key on).
    if (resilient && take_rank_failure(round)) {
      rollback(round);
      continue;
    }
    if (!resilient && ctx.faults.active())
      for (const auto& f : ctx.faults.plan->rank_failures())
        if (f.rank == ctx.rank && f.level == round)
          throw sim::RankFailure(f.rank, f.level);
    ThreadCpuTimer round_cpu;
    // A pull round emits no boundary candidates, so it skips the exchange.
    const bool pulled = drain(global_dmin);
    if (!pulled) exchange_round(term);
    obs::Tracer::advance_modeled(round_cpu.seconds());
    // Ride next round's frontier depth on the probe's min-fold.
    while (min_bucket < buckets.size() && buckets[min_bucket].empty())
      ++min_bucket;
    const uint64_t local_next = min_bucket >= buckets.size()
                                    ? uint64_t(kNoDepth)
                                    : uint64_t(min_bucket);
    uint64_t next_dmin = 0;
    const bool quiet =
        term.probe(ctx.world, work_entries == 0, local_next, &next_dmin);
    global_dmin = uint32_t(std::min<uint64_t>(next_dmin, kNoDepth));
    if (resilient) {
      bool faulty = ctx.world.allreduce_or(ctx.faults.take_pending());
      faulty = ctx.faults.take_pending() || faulty;
      // A corrupted round cannot announce termination: roll back before
      // honoring the probe.
      if (faulty) {
        rollback(round);
        continue;
      }
      if (in_recovery) {
        ++ctx.faults.stats.recovered;
        in_recovery = false;
        consecutive_retries = 0;
      }
    }
    if (quiet) break;
    if (resilient && round % rec.checkpoint_interval == 0)
      save_checkpoint(round);
  }
  result.rounds = round;
  result.probe_waves = int(term.waves());
  result.parent.resize(local_count);
  result.depth.resize(local_count);
  pool.parallel_for(0, local_count, [&](size_t lo, size_t hi) {
    for (uint64_t lloc = lo; lloc < hi; ++lloc) {
      const uint64_t packed = claims[lloc];
      if (packed == kUnclaimed) {
        result.parent[lloc] = kNoVertex;
        result.depth[lloc] = -1;
      } else {
        result.parent[lloc] = Vertex(claim_parent(packed));
        result.depth[lloc] = int64_t(claim_depth(packed));
      }
    }
  });
  result.cpu_s = cpu.seconds();
  result.comm_modeled_s = ctx.stats.total_modeled_s() - comm0;
  return result;
}

}  // namespace sunbfs::bfs
