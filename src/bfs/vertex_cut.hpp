#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/prefix.hpp"
#include "support/thread_pool.hpp"

/// Edge-aware vertex-cut load balancing (§5, after GraphIt).
///
/// In EH2EH top-down a handful of frontier vertices can carry almost all the
/// edges; cutting work by vertex count starves most workers.  Instead we
/// prefix-sum the frontier vertices' degrees and cut the frontier at equal
/// accumulated-degree boundaries, so each worker receives a balanced number
/// of edges regardless of skew.
namespace sunbfs::bfs {

/// Process `frontier` (any vertex list) on `pool`, calling
/// visit(frontier_index) for every element, with workers receiving
/// contiguous sub-ranges balanced by degree_of(frontier[i]).
template <typename V, typename DegreeFn, typename VisitFn>
void edge_aware_foreach(const std::vector<V>& frontier, DegreeFn degree_of,
                        sunbfs::ThreadPool& pool, VisitFn visit) {
  if (frontier.empty()) return;
  size_t workers = pool.size();
  if (workers <= 1 || frontier.size() < 2 * workers) {
    for (size_t i = 0; i < frontier.size(); ++i) visit(i);
    return;
  }
  // Offsets of accumulated degree (degree 0 counted as 1 so empty vertices
  // still make progress through the cut).
  std::vector<uint64_t> offsets(frontier.size() + 1, 0);
  for (size_t i = 0; i < frontier.size(); ++i)
    offsets[i + 1] = offsets[i] + std::max<uint64_t>(1, degree_of(frontier[i]));
  uint64_t total = offsets.back();
  pool.run_chunks(workers, [&](size_t w) {
    uint64_t lo_work = total * w / workers;
    uint64_t hi_work = total * (w + 1) / workers;
    size_t lo = upper_offset_index(offsets, lo_work);
    size_t hi = upper_offset_index(offsets, hi_work);
    if (w + 1 == workers) hi = frontier.size();
    for (size_t i = lo; i < hi && i < frontier.size(); ++i) visit(i);
  });
}

}  // namespace sunbfs::bfs
