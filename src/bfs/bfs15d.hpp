#pragma once

#include <vector>

#include "bfs/stats.hpp"
#include "chip/chip.hpp"
#include "partition/part15d.hpp"
#include "sim/encoding.hpp"
#include "sim/exchange.hpp"
#include "sim/runtime.hpp"

/// Distributed BFS over the 3-level degree-aware 1.5D partition (§4).
///
/// Each iteration runs six sub-iterations in decreasing endpoint-degree
/// order (EH2EH, E2L, L2E, H2L, L2H, L2L).  With sub-iteration direction
/// optimization each sub-iteration picks push or pull independently; the EH
/// frontier/visited bitmaps are re-synchronized (column allreduce followed
/// by row allreduce — the mesh-aware union) after every sub-iteration that
/// can update EH state, so later sub-iterations see the latest visited
/// status (§4.2).  Parents of delegated E/H vertices are accumulated locally
/// and reduced once after the run ("delayed reduction", §5) unless disabled.
namespace sunbfs::bfs {

class BfsWorkspace;

struct Bfs15dOptions {
  // --- intra-rank parallelism ----------------------------------------------
  /// Worker threads per rank for the intra-rank kernels.  <= 0 means auto
  /// (hardware_concurrency / nranks, floored at 1); see
  /// resolve_threads_per_rank.  Ignored when `workspace` is provided.
  int threads_per_rank = 0;
  /// Optional externally owned per-rank workspace (worker pool + reusable
  /// communication staging buffers).  The runner passes one warm workspace
  /// across roots so steady-state levels stage without allocating; when
  /// null, the engine creates a private one per run.
  BfsWorkspace* workspace = nullptr;

  /// Per-subgraph direction selection (§4.2).  When false, one direction is
  /// chosen per iteration for all subgraphs (vanilla direction optimization,
  /// the Figure 15 baseline).
  bool sub_iteration_direction = true;

  /// How the EH2EH bottom-up kernel executes.
  ///   Host    — plain host loop (CPU-timed);
  ///   ChipGld — on the chip model, frontier bits read with GLD from main
  ///             memory (the unsegmented baseline of Figure 15);
  ///   ChipRma — CG-aware core subgraph segmenting (§4.3): frontier bits
  ///             distributed over CPE LDMs and read via RMA.
  enum class EhPullKernel { Host, ChipGld, ChipRma };
  EhPullKernel pull_kernel = EhPullKernel::Host;
  /// Chip to run EH2EH pull kernels on (required unless Host).
  chip::Chip* chip = nullptr;

  /// Reduce delegated parents once at the end (true, §5) or after every
  /// iteration (false, the traditional scheme).
  bool delayed_parent_reduction = true;

  /// Use the edge-aware vertex cut for EH2EH push (§5).
  bool edge_aware_vertex_cut = true;

  /// Hierarchical L2L messaging (§4.4 "forwarding in global messaging"):
  /// instead of one global alltoallv, push messages travel down the sender's
  /// mesh column to the intersection rank with the destination's row, which
  /// re-sorts them by destination and forwards intra-row.  Halves the number
  /// of active point-to-point connections per rank (R+C instead of P).
  bool l2l_forwarding = false;

  // --- direction heuristics ------------------------------------------------
  /// Node-local subgraphs switch to pull when the source class's active
  /// fraction exceeds this (only the source ratio is used, §4.2).
  double local_pull_ratio = 0.15;
  /// Cross-node subgraphs switch to pull when active-source fraction exceeds
  /// remote_pull_factor * unvisited-destination fraction.  Pull is cheap for
  /// these subgraphs (delegated frontiers avoid per-edge messages), so the
  /// tuned factor is well below 1.
  double remote_pull_factor = 0.2;
  /// Whole-iteration threshold used when sub_iteration_direction is false.
  double global_pull_ratio = 0.04;

  // --- fault recovery ------------------------------------------------------
  /// Checkpoint/retry knobs used when the runtime runs under
  /// FaultPolicy::Recover with a FaultPlan installed: the engine snapshots
  /// its frontier bitmaps and parent array every `recovery.checkpoint_interval`
  /// levels and rolls every rank back to the last snapshot (with capped
  /// exponential backoff) when a dropped corruption or scheduled rank failure
  /// is agreed on at the end of an iteration.
  sim::RecoveryOptions recovery;

  /// Adaptive wire encoding for every staged exchange and frontier gather
  /// of the seven sub-kernels (sim/encoding.hpp); applied to the workspace
  /// pools at engine construction.
  sim::EncodingOptions encoding;

  /// Exchange plan backend for the world-wide exchanges — the non-forwarded
  /// L2L alltoallv and the delayed-parent delivery (sim/exchange.hpp).  The
  /// row/column sub-exchanges (H2L, L2H, forwarded L2L) already are a manual
  /// mesh split and always run direct.  Parents stay bit-identical across
  /// backends (ctest -L differential).
  sim::ExchangeOptions exchange;
};

struct Bfs15dResult {
  /// Parent of every owned vertex (local index order); kNoVertex where
  /// unreached.  Globally consistent after the delegated-parent reduction.
  std::vector<graph::Vertex> parent;
  BfsStats stats;
};

/// Run BFS from `root` (global vertex id).  Collective over all ranks.
Bfs15dResult bfs15d_run(sim::RankContext& ctx, const partition::Part15d& part,
                        graph::Vertex root, const Bfs15dOptions& options = {});

}  // namespace sunbfs::bfs
