#pragma once

#include <vector>

#include "partition/part1d.hpp"
#include "sim/encoding.hpp"
#include "sim/exchange.hpp"
#include "sim/runtime.hpp"

/// Vanilla 1D-partitioned BFS with direction optimization (the Table 1 /
/// §2.1 baseline): per-edge messages in top-down, a world-wide frontier
/// gather in bottom-up, no delegation of heavy vertices.
namespace sunbfs::bfs {

class BfsWorkspace;

struct Bfs1dOptions {
  /// Switch to bottom-up when the active fraction exceeds this.
  double pull_ratio = 0.04;
  /// Worker threads per rank; <= 0 means auto (see resolve_threads_per_rank).
  /// Ignored when `workspace` is provided.
  int threads_per_rank = 0;
  /// Optional externally owned per-rank workspace (worker pool + reusable
  /// staging buffers), shared across roots by the runner; null means a
  /// private one per run.
  BfsWorkspace* workspace = nullptr;
  /// Checkpoint/retry knobs under FaultPolicy::Recover (see bfs15d.hpp).
  sim::RecoveryOptions recovery;
  /// Adaptive wire encoding for the push alltoallv and the frontier
  /// allgather (sim/encoding.hpp); applied to the workspace pools each run.
  sim::EncodingOptions encoding;
  /// Exchange plan backend for the push alltoallv (sim/exchange.hpp): the
  /// direct collective, the log(P) butterfly, or the 2D row/column split.
  /// Parents stay bit-identical across backends (ctest -L differential).
  sim::ExchangeOptions exchange;
};

struct Bfs1dResult {
  std::vector<graph::Vertex> parent;  ///< owned slice, local index order
  int num_iterations = 0;
  double cpu_s = 0;           ///< this rank's compute CPU seconds
  double comm_modeled_s = 0;  ///< modeled network seconds of this run
};

/// Run BFS from `root`.  Collective over all ranks.
Bfs1dResult bfs1d_run(sim::RankContext& ctx, const partition::Part1d& part,
                      graph::Vertex root, const Bfs1dOptions& options = {});

}  // namespace sunbfs::bfs
