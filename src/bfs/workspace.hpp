#pragma once

#include <cstdint>

#include "bfs/messages.hpp"
#include "sim/comm_buffer.hpp"
#include "sim/exchange_channel.hpp"
#include "support/thread_pool.hpp"

/// Per-rank reusable BFS resources: the intra-rank worker pool and the
/// communication staging pools.
///
/// One BfsWorkspace lives per rank for the whole run (the runner creates it
/// outside the root loop and threads it through Bfs15dOptions/Bfs1dOptions),
/// so staging capacities warm up on the first root and every later
/// level/root stages and exchanges without allocating — staging_allocs()
/// must stop moving after the warmup root.  See docs/PERF.md.
///
/// The pools are ExchangeChannels (sim/exchange_channel.hpp): a direct round
/// behaves exactly like the old A2aStaging, and the engines' world-wide
/// exchanges can open staged rounds under the configured ExchangePlan
/// backend (docs/COMM.md).
namespace sunbfs::bfs {

class BfsWorkspace {
 public:
  /// `threads` is the resolved intra-rank worker count (see
  /// resolve_threads_per_rank); it is taken as-is, never defaulted here.
  explicit BfsWorkspace(size_t threads) : pool_(threads) {}

  ThreadPool& pool() { return pool_; }

  /// Staging pool for compact 8-byte messages (H2L/L2H/L2L hot paths).
  sim::ExchangeChannel<CompactMsg>& compact() { return compact_; }
  /// Staging pool for full-width visit messages, first hop (column phase of
  /// L2L forwarding, delayed parent delivery, bfs1d push).
  sim::ExchangeChannel<VisitMsg>& visit_down() { return visit_down_; }
  /// Staging pool for full-width visit messages, second hop (row phase of
  /// L2L forwarding).  Separate from visit_down so the two hops of one
  /// sub-iteration never share lanes.
  sim::ExchangeChannel<VisitMsg>& visit_along() { return visit_along_; }
  /// Reused frontier-gather receive buffer for the pull kernels.
  sim::GatherBuffer<uint64_t>& frontier() { return frontier_; }
  /// Staging pool for the asynchronous engine's speculative visit rounds
  /// (bfs/bfsasync.cpp): depth-carrying messages with a min-depth in-flight
  /// fold.
  sim::ExchangeChannel<AsyncVisitMsg>& async_visits() { return async_; }

  /// Total capacity growths across all pools since construction.
  uint64_t staging_allocs() const {
    return compact_.allocs() + visit_down_.allocs() + visit_along_.allocs() +
           frontier_.allocs() + async_.allocs();
  }

 private:
  ThreadPool pool_;
  sim::ExchangeChannel<CompactMsg> compact_;
  sim::ExchangeChannel<VisitMsg> visit_down_;
  sim::ExchangeChannel<VisitMsg> visit_along_;
  sim::GatherBuffer<uint64_t> frontier_;
  sim::ExchangeChannel<AsyncVisitMsg> async_;
};

}  // namespace sunbfs::bfs
