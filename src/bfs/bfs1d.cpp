#include "bfs/bfs1d.hpp"

#include "bfs/gathered_frontier.hpp"
#include "support/bitvector.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

namespace sunbfs::bfs {

using graph::Vertex;
using graph::kNoVertex;

Bfs1dResult bfs1d_run(sim::RankContext& ctx, const partition::Part1d& part,
                      Vertex root, const Bfs1dOptions& options) {
  const partition::VertexSpace& space = part.space;
  SUNBFS_CHECK(root >= 0 && uint64_t(root) < space.total);
  const uint64_t local_count = space.count(ctx.rank);

  std::vector<Vertex> parent(local_count, kNoVertex);
  BitVector visited(local_count), curr(local_count), next(local_count);
  BitVector dedup(space.total);

  // Compact 8-byte messages: receiver-local destination + sender-local
  // parent, reconstructed from the alltoallv source offsets.
  struct VisitMsg {
    uint32_t dst, src;
  };
  SUNBFS_CHECK(space.max_count() < (uint64_t(1) << 32));
  auto visit = [&](uint64_t lloc, Vertex p) {
    if (visited.test_and_set(lloc)) {
      parent[lloc] = p;
      next.set(lloc);
    }
  };

  if (space.owner(root) == ctx.rank)
    visit(space.to_local(ctx.rank, root), root);

  Bfs1dResult result;
  ThreadCpuTimer cpu;
  const double comm0 = ctx.stats.total_modeled_s();
  int iteration = 0;
  for (;;) {
    std::swap(curr, next);
    next.reset();
    uint64_t active = ctx.world.allreduce_sum(curr.count());
    if (active == 0) break;
    ++iteration;
    bool bottom_up =
        double(active) / double(space.total) > options.pull_ratio;
    if (!bottom_up) {
      // Per-destination dedup, as in the 1.5D engine: one message per
      // target vertex per rank.
      dedup.reset();
      std::vector<std::vector<VisitMsg>> to(size_t(ctx.nranks()));
      curr.for_each_set([&](size_t lloc) {
        for (Vertex v : part.adj.neighbors(lloc)) {
          int owner = space.owner(v);
          if (owner == ctx.rank)
            visit(space.to_local(owner, v), space.to_global(ctx.rank, lloc));
          else if (dedup.test_and_set(uint64_t(v)))
            to[size_t(owner)].push_back(VisitMsg{
                uint32_t(space.to_local(owner, v)), uint32_t(lloc)});
        }
      });
      std::vector<size_t> src_off;
      auto got = ctx.world.alltoallv(to, &src_off);
      for (int src = 0; src < ctx.nranks(); ++src)
        for (size_t i = src_off[size_t(src)]; i < src_off[size_t(src) + 1];
             ++i)
          visit(got[i].dst, space.to_global(src, got[i].src));
    } else {
      GatheredFrontier frontier = GatheredFrontier::gather(ctx.world, curr);
      for (uint64_t lloc = 0; lloc < local_count; ++lloc) {
        if (visited.get(lloc)) continue;
        for (Vertex u : part.adj.neighbors(lloc)) {
          int owner = space.owner(u);
          if (frontier.get(owner, uint64_t(u) - space.begin(owner))) {
            visit(lloc, u);
            break;  // early exit
          }
        }
      }
    }
  }

  result.parent = std::move(parent);
  result.num_iterations = iteration;
  result.cpu_s = cpu.seconds();
  result.comm_modeled_s = ctx.stats.total_modeled_s() - comm0;
  return result;
}

}  // namespace sunbfs::bfs
