#include "bfs/bfs1d.hpp"

#include <chrono>
#include <thread>

#include "bfs/gathered_frontier.hpp"
#include "obs/trace.hpp"
#include "support/bitvector.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace sunbfs::bfs {

using graph::Vertex;
using graph::kNoVertex;

Bfs1dResult bfs1d_run(sim::RankContext& ctx, const partition::Part1d& part,
                      Vertex root, const Bfs1dOptions& options) {
  const partition::VertexSpace& space = part.space;
  SUNBFS_CHECK(root >= 0 && uint64_t(root) < space.total);
  const uint64_t local_count = space.count(ctx.rank);

  std::vector<Vertex> parent(local_count, kNoVertex);
  BitVector visited(local_count), curr(local_count), next(local_count);
  BitVector dedup(space.total);

  // Compact 8-byte messages: receiver-local destination + sender-local
  // parent, reconstructed from the alltoallv source offsets.
  struct VisitMsg {
    uint32_t dst, src;
  };
  SUNBFS_CHECK(space.max_count() < (uint64_t(1) << 32));
  auto visit = [&](uint64_t lloc, Vertex p) {
    if (visited.test_and_set(lloc)) {
      parent[lloc] = p;
      next.set(lloc);
    }
  };

  if (space.owner(root) == ctx.rank)
    visit(space.to_local(ctx.rank, root), root);

  // Checkpoint/rollback recovery, as in the 1.5D engine (see bfs15d.cpp):
  // snapshot {visited, frontier, parent} every checkpoint_interval levels;
  // when a corruption was dropped (agreed collectively) or a planned rank
  // failure fires (replicated plan — no agreement needed), every rank rolls
  // back together after a capped exponential backoff.
  const bool resilient = ctx.faults.recovering();
  const sim::RecoveryOptions& rec = options.recovery;
  std::vector<bool> fired_failures;
  if (resilient) {
    SUNBFS_CHECK(rec.checkpoint_interval >= 1);
    fired_failures.assign(ctx.faults.plan->rank_failures().size(), false);
  }
  struct Checkpoint {
    int iteration = 0;
    BitVector visited, curr;
    std::vector<Vertex> parent;
    uint64_t bytes_sent = 0;
  } ckpt;
  int consecutive_retries = 0;
  bool in_recovery = false;
  auto save_checkpoint = [&](int it) {
    ckpt.iteration = it;
    ckpt.visited = visited;
    ckpt.curr = curr;
    ckpt.parent = parent;
    ckpt.bytes_sent = ctx.stats.total_bytes_sent();
  };
  auto rollback = [&](int& it) {
    obs::Span span("fault", "rollback", ckpt.iteration);
    obs::instant("fault", "rollback_from", it);
    ++consecutive_retries;
    if (consecutive_retries > rec.max_retries)
      throw sim::FaultDetected("fault: recovery retries exhausted after " +
                               std::to_string(rec.max_retries) + " attempts");
    auto& fs = ctx.faults.stats;
    ++fs.retries;
    in_recovery = true;
    double delay = sim::backoff_delay_s(rec, consecutive_retries);
    fs.backoff_s += delay;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    obs::Tracer::advance_modeled(delay);
    fs.resent_bytes += ctx.stats.total_bytes_sent() - ckpt.bytes_sent;
    visited = ckpt.visited;
    curr = ckpt.curr;
    next.reset();
    parent = ckpt.parent;
    it = ckpt.iteration;
    log_debug("bfs1d rank ", ctx.rank, ": rolled back to level checkpoint ",
              ckpt.iteration, " (retry ", consecutive_retries, ")");
  };
  auto take_rank_failure = [&](int it) {
    const auto& failures = ctx.faults.plan->rank_failures();
    bool fired = false;
    for (size_t i = 0; i < failures.size(); ++i) {
      if (fired_failures[i] || failures[i].level != it) continue;
      fired_failures[i] = true;
      fired = true;
      if (failures[i].rank == ctx.rank) {
        ++ctx.faults.stats.injected_failures;
        log_debug("bfs1d rank ", ctx.rank,
                  ": injected hard failure at level ", it);
        visited.reset();
        curr.reset();
        next.reset();
        parent.assign(local_count, kNoVertex);
      }
    }
    return fired;
  };

  auto run_level = [&](uint64_t active) {
    bool bottom_up =
        double(active) / double(space.total) > options.pull_ratio;
    obs::Span span("bfs", bottom_up ? "level_pull" : "level_push",
                   int64_t(active));
    ThreadCpuTimer level_cpu;
    if (!bottom_up) {
      // Per-destination dedup, as in the 1.5D engine: one message per
      // target vertex per rank.
      dedup.reset();
      std::vector<std::vector<VisitMsg>> to(size_t(ctx.nranks()));
      curr.for_each_set([&](size_t lloc) {
        for (Vertex v : part.adj.neighbors(lloc)) {
          int owner = space.owner(v);
          if (owner == ctx.rank)
            visit(space.to_local(owner, v), space.to_global(ctx.rank, lloc));
          else if (dedup.test_and_set(uint64_t(v)))
            to[size_t(owner)].push_back(VisitMsg{
                uint32_t(space.to_local(owner, v)), uint32_t(lloc)});
        }
      });
      std::vector<size_t> src_off;
      auto got = ctx.world.alltoallv(to, &src_off);
      for (int src = 0; src < ctx.nranks(); ++src)
        for (size_t i = src_off[size_t(src)]; i < src_off[size_t(src) + 1];
             ++i)
          visit(got[i].dst, space.to_global(src, got[i].src));
    } else {
      GatheredFrontier frontier = GatheredFrontier::gather(ctx.world, curr);
      for (uint64_t lloc = 0; lloc < local_count; ++lloc) {
        if (visited.get(lloc)) continue;
        for (Vertex u : part.adj.neighbors(lloc)) {
          int owner = space.owner(u);
          if (frontier.get(owner, uint64_t(u) - space.begin(owner))) {
            visit(lloc, u);
            break;  // early exit
          }
        }
      }
    }
    // As in the 1.5D engine, per-level compute is modeled time too; the
    // collectives above advanced the clock by their own modeled seconds.
    obs::Tracer::advance_modeled(level_cpu.seconds());
  };

  Bfs1dResult result;
  obs::Span run_span("bfs", "bfs1d");
  ThreadCpuTimer cpu;
  const double comm0 = ctx.stats.total_modeled_s();
  // Seed frontier: the root visit above landed in `next`.
  std::swap(curr, next);
  next.reset();
  if (resilient) save_checkpoint(0);
  int iteration = 0;
  for (;;) {
    ++iteration;
    obs::Span level_span("bfs", "level", iteration);
    if (resilient && take_rank_failure(iteration)) {
      rollback(iteration);
      continue;
    }
    // Without the recover policy a scheduled failure simply kills the rank.
    if (!resilient && ctx.faults.active())
      for (const auto& f : ctx.faults.plan->rank_failures())
        if (f.rank == ctx.rank && f.level == iteration)
          throw sim::RankFailure(f.rank, f.level);
    uint64_t active = ctx.world.allreduce_sum(curr.count());
    const bool frontier_empty = active == 0;
    if (!frontier_empty) run_level(active);
    if (resilient) {
      bool faulty = ctx.world.allreduce_or(ctx.faults.take_pending());
      faulty = ctx.faults.take_pending() || faulty;
      if (faulty) {
        rollback(iteration);
        continue;
      }
      if (in_recovery) {
        ++ctx.faults.stats.recovered;
        in_recovery = false;
        consecutive_retries = 0;
      }
    }
    if (frontier_empty) break;
    std::swap(curr, next);
    next.reset();
    if (resilient && iteration % rec.checkpoint_interval == 0)
      save_checkpoint(iteration);
  }
  result.num_iterations = iteration - 1;

  result.parent = std::move(parent);
  result.cpu_s = cpu.seconds();
  result.comm_modeled_s = ctx.stats.total_modeled_s() - comm0;
  return result;
}

}  // namespace sunbfs::bfs
