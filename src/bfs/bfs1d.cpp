#include "bfs/bfs1d.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "bfs/gathered_frontier.hpp"
#include "bfs/messages.hpp"
#include "bfs/workspace.hpp"
#include "obs/trace.hpp"
#include "support/bitvector.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace sunbfs::bfs {

using graph::Vertex;
using graph::kNoVertex;

namespace {

/// Lock-free fetch-max (same determinism scheme as bfs15d: all concurrent
/// candidates for one slot are recorded, the maximum wins, so output is
/// independent of the thread count).
void store_max(Vertex& slot, Vertex v) {
  std::atomic_ref<Vertex> a(slot);
  Vertex cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Bfs1dResult bfs1d_run(sim::RankContext& ctx, const partition::Part1d& part,
                      Vertex root, const Bfs1dOptions& options) {
  const partition::VertexSpace& space = part.space;
  SUNBFS_CHECK(root >= 0 && uint64_t(root) < space.total);
  const uint64_t local_count = space.count(ctx.rank);

  // Intra-rank resources: pool size from the options (resolve_threads_per_rank
  // — never a literal); the runner usually shares one warm workspace across
  // roots so staging capacities stop growing after the first.
  std::unique_ptr<BfsWorkspace> owned_ws;
  if (!options.workspace)
    owned_ws = std::make_unique<BfsWorkspace>(resolve_threads_per_rank(
        options.threads_per_rank, size_t(ctx.nranks())));
  BfsWorkspace& ws = options.workspace ? *options.workspace : *owned_ws;
  ThreadPool& pool = ws.pool();
  // Exchange plan for the push alltoallv; a degenerate plan (Direct backend,
  // or a mesh the backend cannot split) keeps every round on the plain
  // collective.
  const sim::ExchangePlan plan = sim::ExchangePlan::build(
      options.exchange.backend, ctx.nranks(), ctx.mesh);
  {
    // Prime the staging pool to its worst-case round so no exchange below
    // ever grows a buffer (comm.staging_allocs stays flat after the warmup
    // root; docs/PERF.md).  A push level stages at most one message per
    // dedup'd global target, and each of the `ranks` senders delivers at
    // most one message per locally owned vertex.
    const size_t nt = pool.size();
    const size_t ranks = size_t(ctx.nranks());
    const size_t total = size_t(space.total);
    ws.compact().set_encoding(options.encoding);
    ws.frontier().set_encoding(options.encoding);
    ws.compact().prime(ranks, nt, total / nt + 65, total,
                       ranks * size_t(local_count));
    ws.compact().prime_staged(plan, ctx.rank, nt, total / nt + 65, total);
  }

  std::vector<Vertex> parent(local_count, kNoVertex);
  BitVector visited(local_count), curr(local_count), next(local_count);
  BitVector dedup(space.total);
  // Per-target maximum staged candidate of the current push level (sender
  // lloc, what the compact message carries); cleaned by the staging scan.
  std::vector<Vertex> push_cand(space.total, kNoVertex);

  // Compact 8-byte messages: receiver-local destination + sender-local
  // parent, reconstructed from the alltoallv source offsets.
  SUNBFS_CHECK(space.max_count() < (uint64_t(1) << 32));

  // Thread-safe visit: gates read `visited`, which only moves in the serial
  // per-level commit below — stable during a threaded phase, so the claim
  // set and max-parents are thread-count independent.
  auto visit = [&](uint64_t lloc, Vertex p) {
    if (visited.atomic_get(lloc)) return;
    store_max(parent[lloc], p);
    next.atomic_set(lloc);
  };
  // Serial epilogue folding the level's claims into the visited set.
  auto commit_claims = [&] { visited |= next; };

  if (space.owner(root) == ctx.rank) {
    uint64_t lloc = space.to_local(ctx.rank, root);
    parent[lloc] = root;
    visited.set(lloc);
    next.set(lloc);
  }

  // Checkpoint/rollback recovery, as in the 1.5D engine (see bfs15d.cpp):
  // snapshot {visited, frontier, parent} every checkpoint_interval levels;
  // when a corruption was dropped (agreed collectively) or a planned rank
  // failure fires (replicated plan — no agreement needed), every rank rolls
  // back together after a capped exponential backoff.
  const bool resilient = ctx.faults.recovering();
  const sim::RecoveryOptions& rec = options.recovery;
  std::vector<bool> fired_failures;
  if (resilient) {
    SUNBFS_CHECK(rec.checkpoint_interval >= 1);
    fired_failures.assign(ctx.faults.plan->rank_failures().size(), false);
  }
  struct Checkpoint {
    int iteration = 0;
    BitVector visited, curr;
    std::vector<Vertex> parent;
    uint64_t bytes_sent = 0;
  } ckpt;
  int consecutive_retries = 0;
  bool in_recovery = false;
  auto save_checkpoint = [&](int it) {
    ckpt.iteration = it;
    ckpt.visited = visited;
    ckpt.curr = curr;
    ckpt.parent = parent;
    ckpt.bytes_sent = ctx.stats.total_bytes_sent();
  };
  auto rollback = [&](int& it) {
    obs::Span span("fault", "rollback", ckpt.iteration);
    obs::instant("fault", "rollback_from", it);
    ++consecutive_retries;
    if (consecutive_retries > rec.max_retries)
      throw sim::FaultDetected("fault: recovery retries exhausted after " +
                               std::to_string(rec.max_retries) + " attempts");
    auto& fs = ctx.faults.stats;
    ++fs.retries;
    in_recovery = true;
    double delay = sim::backoff_delay_s(rec, consecutive_retries);
    fs.backoff_s += delay;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    obs::Tracer::advance_modeled(delay);
    fs.resent_bytes += ctx.stats.total_bytes_sent() - ckpt.bytes_sent;
    visited = ckpt.visited;
    curr = ckpt.curr;
    next.reset();
    parent = ckpt.parent;
    it = ckpt.iteration;
    log_debug("bfs1d rank ", ctx.rank, ": rolled back to level checkpoint ",
              ckpt.iteration, " (retry ", consecutive_retries, ")");
  };
  auto take_rank_failure = [&](int it) {
    const auto& failures = ctx.faults.plan->rank_failures();
    bool fired = false;
    for (size_t i = 0; i < failures.size(); ++i) {
      if (fired_failures[i] || failures[i].level != it) continue;
      fired_failures[i] = true;
      fired = true;
      if (failures[i].rank == ctx.rank) {
        ++ctx.faults.stats.injected_failures;
        log_debug("bfs1d rank ", ctx.rank,
                  ": injected hard failure at level ", it);
        visited.reset();
        curr.reset();
        next.reset();
        parent.assign(local_count, kNoVertex);
      }
    }
    return fired;
  };

  auto run_level = [&](uint64_t active) {
    bool bottom_up =
        double(active) / double(space.total) > options.pull_ratio;
    obs::Span span("bfs", bottom_up ? "level_pull" : "level_push",
                   int64_t(active));
    ThreadCpuTimer level_cpu;
    if (!bottom_up) {
      // Per-destination dedup, as in the 1.5D engine: one message per
      // target vertex per rank.  Two-phase emission so the staged parent
      // per target is the max sender candidate (thread-count independent).
      dedup.reset();
      auto& staging = ws.compact();
      staging.begin(size_t(ctx.nranks()), pool.size(), plan, ctx.rank);
      pool.parallel_for(0, curr.word_count(), [&](size_t lo, size_t hi) {
        curr.for_each_set_words(lo, hi, [&](size_t lloc) {
          for (Vertex v : part.adj.neighbors(lloc)) {
            int owner = space.owner(v);
            if (owner == ctx.rank) {
              visit(space.to_local(owner, v),
                    space.to_global(ctx.rank, lloc));
            } else {
              store_max(push_cand[uint64_t(v)], Vertex(lloc));
              dedup.atomic_set(uint64_t(v));
            }
          }
        });
      });
      {
        size_t n = dedup.word_count();
        size_t parts = std::min(n, pool.size());
        pool.run_chunks(parts, [&](size_t lane) {
          size_t lo = n * lane / parts;
          size_t hi = n * (lane + 1) / parts;
          dedup.for_each_set_words(lo, hi, [&](size_t v) {
            Vertex gv = Vertex(v);
            int owner = space.owner(gv);
            staging.push(lane, size_t(owner),
                         CompactMsg{uint32_t(space.to_local(owner, gv)),
                                    uint32_t(push_cand[v])});
            push_cand[v] = kNoVertex;
          });
        });
      }
      auto got = staging.exchange(ctx.world, pool);
      const auto& src_off = staging.src_offsets();
      pool.parallel_for(0, size_t(ctx.nranks()), [&](size_t lo, size_t hi) {
        for (size_t src = lo; src < hi; ++src)
          for (size_t i = src_off[src]; i < src_off[src + 1]; ++i)
            visit(got[i].dst, space.to_global(int(src), got[i].src));
      });
    } else {
      GatheredFrontier frontier =
          GatheredFrontier::gather(ctx.world, curr, ws.frontier());
      pool.parallel_for(0, local_count, [&](size_t lo, size_t hi) {
        for (uint64_t lloc = lo; lloc < hi; ++lloc) {
          if (visited.get(lloc)) continue;
          for (Vertex u : part.adj.neighbors(lloc)) {
            int owner = space.owner(u);
            if (frontier.get(owner, uint64_t(u) - space.begin(owner))) {
              visit(lloc, u);
              break;  // early exit
            }
          }
        }
      });
    }
    commit_claims();
    // As in the 1.5D engine, per-level compute is modeled time too; the
    // collectives above advanced the clock by their own modeled seconds.
    obs::Tracer::advance_modeled(level_cpu.seconds());
  };

  Bfs1dResult result;
  obs::Span run_span("bfs", "bfs1d");
  ThreadCpuTimer cpu;
  const double comm0 = ctx.stats.total_modeled_s();
  // Seed frontier: the root visit above landed in `next`.
  std::swap(curr, next);
  next.reset();
  if (resilient) save_checkpoint(0);
  int iteration = 0;
  for (;;) {
    ++iteration;
    obs::Span level_span("bfs", "level", iteration);
    if (resilient && take_rank_failure(iteration)) {
      rollback(iteration);
      continue;
    }
    // Without the recover policy a scheduled failure simply kills the rank.
    if (!resilient && ctx.faults.active())
      for (const auto& f : ctx.faults.plan->rank_failures())
        if (f.rank == ctx.rank && f.level == iteration)
          throw sim::RankFailure(f.rank, f.level);
    uint64_t active = ctx.world.allreduce_sum(curr.count());
    const bool frontier_empty = active == 0;
    if (!frontier_empty) run_level(active);
    if (resilient) {
      bool faulty = ctx.world.allreduce_or(ctx.faults.take_pending());
      faulty = ctx.faults.take_pending() || faulty;
      if (faulty) {
        rollback(iteration);
        continue;
      }
      if (in_recovery) {
        ++ctx.faults.stats.recovered;
        in_recovery = false;
        consecutive_retries = 0;
      }
    }
    if (frontier_empty) break;
    std::swap(curr, next);
    next.reset();
    if (resilient && iteration % rec.checkpoint_interval == 0)
      save_checkpoint(iteration);
  }
  result.num_iterations = iteration - 1;

  result.parent = std::move(parent);
  result.cpu_s = cpu.seconds();
  result.comm_modeled_s = ctx.stats.total_modeled_s() - comm0;
  return result;
}

}  // namespace sunbfs::bfs
