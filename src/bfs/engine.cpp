#include "bfs/engine.hpp"

#include "support/check.hpp"

namespace sunbfs::bfs {

const char* engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::OneD: return "1d";
    case EngineKind::OneFiveD: return "1.5d";
    case EngineKind::Async: return "async";
  }
  return "1.5d";
}

bool parse_engine_kind(const std::string& s, EngineKind* out) {
  if (s == "1d") *out = EngineKind::OneD;
  else if (s == "1.5d") *out = EngineKind::OneFiveD;
  else if (s == "async") *out = EngineKind::Async;
  else return false;
  return true;
}

const char* engine_kind_choices() { return "1d, 1.5d, async"; }

std::string unknown_choice_error(const std::string& flag,
                                 const std::string& value,
                                 const std::string& choices) {
  return flag + ": unknown value '" + value + "' (valid: " + choices + ")";
}

int EngineConfig::threads_request() const {
  switch (kind) {
    case EngineKind::OneD: return bfs1d.threads_per_rank;
    case EngineKind::OneFiveD: return bfs15.threads_per_rank;
    case EngineKind::Async: return async.threads_per_rank;
  }
  return 0;
}

namespace {

class Engine1d final : public TraversalEngine {
 public:
  Engine1d(partition::Part1d part, Bfs1dOptions options)
      : part_(std::move(part)), options_(std::move(options)) {}
  EngineRun run(sim::RankContext& ctx, graph::Vertex root) override {
    Bfs1dResult r = bfs1d_run(ctx, part_, root, options_);
    EngineRun out;
    out.parent = std::move(r.parent);
    out.cpu_s = r.cpu_s;
    out.comm_modeled_s = r.comm_modeled_s;
    out.rounds = r.num_iterations;
    return out;
  }

 private:
  partition::Part1d part_;
  Bfs1dOptions options_;
};

class Engine15d final : public TraversalEngine {
 public:
  Engine15d(partition::Part15d part, Bfs15dOptions options)
      : part_(std::move(part)), options_(std::move(options)) {}
  EngineRun run(sim::RankContext& ctx, graph::Vertex root) override {
    Bfs15dResult r = bfs15d_run(ctx, part_, root, options_);
    EngineRun out;
    out.parent = std::move(r.parent);
    out.cpu_s = r.stats.total_cpu_s();
    out.comm_modeled_s = r.stats.total_comm_modeled_s();
    out.rounds = r.stats.num_iterations;
    out.stats = std::move(r.stats);
    out.has_stats = true;
    return out;
  }
  const partition::Part15d* part15() const override { return &part_; }

 private:
  partition::Part15d part_;
  Bfs15dOptions options_;
};

class EngineAsync final : public TraversalEngine {
 public:
  EngineAsync(partition::Part1d part, BfsAsyncOptions options)
      : part_(std::move(part)), options_(std::move(options)) {}
  EngineRun run(sim::RankContext& ctx, graph::Vertex root) override {
    BfsAsyncResult r = bfsasync_run(ctx, part_, root, options_);
    EngineRun out;
    out.parent = std::move(r.parent);
    out.cpu_s = r.cpu_s;
    out.comm_modeled_s = r.comm_modeled_s;
    out.rounds = r.rounds;
    return out;
  }

 private:
  partition::Part1d part_;
  BfsAsyncOptions options_;
};

}  // namespace

std::unique_ptr<TraversalEngine> make_engine(
    sim::RankContext& ctx, const partition::VertexSpace& space,
    std::span<const graph::Edge> slice, std::span<const uint64_t> local_degrees,
    const EngineConfig& config) {
  switch (config.kind) {
    case EngineKind::OneFiveD:
      return std::make_unique<Engine15d>(
          partition::build_15d(ctx, space, slice, local_degrees,
                               config.thresholds),
          config.bfs15);
    case EngineKind::OneD:
      return std::make_unique<Engine1d>(partition::build_1d(ctx, space, slice),
                                        config.bfs1d);
    case EngineKind::Async:
      return std::make_unique<EngineAsync>(
          partition::build_1d(ctx, space, slice), config.async);
  }
  SUNBFS_CHECK(false);
  return nullptr;
}

}  // namespace sunbfs::bfs
