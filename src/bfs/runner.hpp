#pragma once

#include <optional>
#include <vector>

#include "bfs/engine.hpp"
#include "chip/arch.hpp"
#include "graph/gteps.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/balance.hpp"
#include "sim/runtime.hpp"

/// Graph 500 benchmark driver: generate → partition → BFS from N random
/// search keys → validate → report harmonic-mean GTEPS.  This is the
/// end-to-end pipeline behind the headline result and most figures.
namespace sunbfs::bfs {

struct RunnerConfig {
  graph::Graph500Config graph;
  partition::DegreeThresholds thresholds;
  /// Engine selection (bfs/engine.hpp: EngineKind, parse_engine_kind,
  /// make_engine).
  EngineKind engine = EngineKind::OneFiveD;
  Bfs15dOptions bfs;  ///< chip field ignored; see chip_geometry
  Bfs1dOptions bfs1d;
  BfsAsyncOptions bfsasync;
  int num_roots = 8;
  uint64_t root_seed = 7;
  bool validate = true;
  /// Per-rank chip used when bfs.pull_kernel is chip-executed.
  chip::Geometry chip_geometry = chip::Geometry::tiny();
  /// Optional deterministic fault schedule (see sim/fault.hpp).  Faults are
  /// armed only around the BFS runs themselves — generation, partitioning
  /// and the final parent gather run fault-free, so a plan's call indices
  /// are relative to the start of the search phase.
  const sim::FaultPlan* faults = nullptr;
  sim::FaultPolicy fault_policy = sim::FaultPolicy::Recover;
};

/// Result of one search key.
struct RootRun {
  graph::Vertex root = 0;
  double modeled_s = 0;  ///< max-rank compute CPU + modeled network time
  double wall_s = 0;     ///< host wall time (simulation cost)
  uint64_t traversed_edges = 0;
  bool valid = false;
  std::string error;
  /// Per-rank stats summed (1.5D engine only).
  BfsStats stats;

  graph::BfsRunSample sample() const {
    return graph::BfsRunSample{modeled_s, traversed_edges};
  }
};

struct RunnerResult {
  std::vector<RootRun> runs;
  double harmonic_gteps = 0;  ///< over the modeled clock
  bool all_valid = false;
  partition::BalanceReport balance;       ///< 1.5D engine only
  uint64_t num_eh = 0, num_e = 0;         ///< classification sizes
  sim::SpmdReport spmd;                   ///< whole-pipeline comm stats
  double partition_wall_s = 0;            ///< generation + partitioning
  uint64_t threads_per_rank = 0;          ///< resolved intra-rank workers
  /// Communication-staging buffer growths summed over ranks: during the
  /// first (warmup) root, and during every root after it.  The steady count
  /// must be zero — the staging pools are sized by the warmup root and never
  /// allocate again (docs/PERF.md).
  uint64_t staging_allocs_warmup = 0;
  uint64_t staging_allocs_steady = 0;
  /// Wire bytes of the search phase proper — deltas of the per-rank
  /// CommStats taken around the engine invocations only (generation,
  /// partitioning and the validation parent gather excluded), summed over
  /// roots and ranks.  With encoding enabled these count encoded bytes;
  /// this is the quantity the BENCH_encoding ablation compares on/off.
  uint64_t search_alltoallv_bytes = 0;
  uint64_t search_allgather_bytes = 0;
  /// Portion of search_alltoallv_bytes that crossed a supernode boundary —
  /// the quantity the exchange-backend ablation compares: a staged plan
  /// (butterfly, 2dca) merges messages on intra-supernode hops before they
  /// reach the oversubscribed inter-supernode links (docs/COMM.md).
  uint64_t search_alltoallv_inter_bytes = 0;

  /// Fold the whole benchmark into a metrics report: headline GTEPS and
  /// validation under "graph500.", summed per-subgraph BFS breakdown under
  /// "bfs.", comm/fault/spmd aggregates via SpmdReport::to_report.  This is
  /// the object --metrics-out serializes (see docs/OBSERVABILITY.md).
  void to_report(obs::Report& report) const;
};

/// Run the full benchmark on `topology`'s mesh.  Validation runs on the
/// host against a serially regenerated edge list, so keep scales modest
/// when validate is on.
RunnerResult run_graph500(const sim::Topology& topology,
                          const RunnerConfig& config);

/// Merge per-rank stats by summing all time components (composition shares
/// are what the breakdown figures report).
BfsStats sum_stats(const std::vector<BfsStats>& per_rank);

/// Degree-aware search-key selection, shared by the Graph 500 runner and the
/// service load generator (src/service): every rank draws the same candidate
/// stream from Xoshiro256**(seed), the owner votes on degree >= 1, and the
/// vote is allreduced, so all ranks agree on the same `count` keys with at
/// least one edge each.  Collective over ctx.world; `degrees` is this rank's
/// owned-vertex degree array (local index order).  Deterministic in
/// (seed, space) — tests/test_bfs.cpp pins the keys for a fixed seed.
std::vector<graph::Vertex> pick_search_keys(sim::RankContext& ctx,
                                            const partition::VertexSpace& space,
                                            std::span<const uint64_t> degrees,
                                            int count, uint64_t seed);

}  // namespace sunbfs::bfs
