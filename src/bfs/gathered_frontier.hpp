#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "support/bitvector.hpp"

/// A frontier bitmap gathered from every rank of a communicator (used by
/// bottom-up sub-iterations whose sources live on other ranks: L2L pull
/// gathers over the world, L2H pull gathers over the mesh row).
namespace sunbfs::bfs {

class GatheredFrontier {
 public:
  /// Collective: every participant contributes its local bitmap.
  static GatheredFrontier gather(sim::Comm& comm, const BitVector& local) {
    GatheredFrontier g;
    std::span<const uint64_t> words(local.data(), local.word_count());
    g.words_ = comm.allgatherv(words, &g.word_off_);
    return g;
  }

  /// Bit `local_index` of participant `comm_index`'s bitmap.
  bool get(int comm_index, uint64_t local_index) const {
    size_t base = word_off_[size_t(comm_index)];
    return (words_[base + (local_index >> 6)] >> (local_index & 63)) & 1;
  }

 private:
  std::vector<uint64_t> words_;
  std::vector<size_t> word_off_;
};

}  // namespace sunbfs::bfs
