#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "sim/comm_buffer.hpp"
#include "support/bitvector.hpp"

/// A frontier bitmap gathered from every rank of a communicator (used by
/// bottom-up sub-iterations whose sources live on other ranks: L2L pull
/// gathers over the world, L2H pull gathers over the mesh row).
namespace sunbfs::bfs {

class GatheredFrontier {
 public:
  /// Collective: every participant contributes its local bitmap.
  static GatheredFrontier gather(sim::Comm& comm, const BitVector& local) {
    GatheredFrontier g;
    std::span<const uint64_t> words(local.data(), local.word_count());
    g.owned_words_ = comm.allgatherv(words, &g.owned_off_);
    g.words_ = g.owned_words_.data();
    g.word_off_ = g.owned_off_.data();
    return g;
  }

  /// Collective, allocation-free in steady state: gathers into `buf` (whose
  /// capacity survives across levels/roots) and returns a view into it.  The
  /// view is valid until buf's next gather.
  static GatheredFrontier gather(sim::Comm& comm, const BitVector& local,
                                 sim::GatherBuffer<uint64_t>& buf) {
    GatheredFrontier g;
    std::span<const uint64_t> words(local.data(), local.word_count());
    g.words_ = buf.gather(comm, words).data();
    g.word_off_ = buf.offsets().data();
    return g;
  }

  /// Bit `local_index` of participant `comm_index`'s bitmap.
  bool get(int comm_index, uint64_t local_index) const {
    size_t base = word_off_[size_t(comm_index)];
    return (words_[base + (local_index >> 6)] >> (local_index & 63)) & 1;
  }

 private:
  const uint64_t* words_ = nullptr;
  const size_t* word_off_ = nullptr;
  std::vector<uint64_t> owned_words_;  // backing store for the legacy path
  std::vector<size_t> owned_off_;
};

}  // namespace sunbfs::bfs
