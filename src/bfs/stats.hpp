#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "partition/part15d.hpp"
#include "sim/comm_stats.hpp"

/// Instrumentation for the BFS engines: everything needed to regenerate the
/// paper's Figures 5, 10, 11 and 15.
namespace sunbfs::bfs {

/// Frontier composition at the start of one iteration (Figure 5 data).
struct IterationRecord {
  int iteration = 0;
  uint64_t active_e = 0;  ///< E vertices in the frontier (global count)
  uint64_t active_h = 0;
  uint64_t active_l = 0;
  /// Direction chosen for each subgraph this iteration (true = bottom-up).
  std::array<bool, partition::kSubgraphCount> bottom_up{};
};

/// Per-rank statistics of one BFS run.
struct BfsStats {
  /// Rank-local compute CPU seconds attributed to each subgraph's
  /// sub-iteration, split by direction (Figures 10 and 15).
  std::array<double, partition::kSubgraphCount> push_cpu_s{};
  std::array<double, partition::kSubgraphCount> pull_cpu_s{};
  /// Modeled network seconds of the collectives issued inside each
  /// subgraph's sub-iteration (including its EH synchronization).
  std::array<double, partition::kSubgraphCount> comm_modeled_s{};
  /// Delegated-parent reduction (the paper's "reduce" bar).
  double reduce_cpu_s = 0;
  double reduce_comm_modeled_s = 0;
  /// Everything else: direction heuristics, frontier swaps, termination.
  double other_cpu_s = 0;
  double other_comm_modeled_s = 0;

  /// Communication by collective type over the whole run (Figure 11).
  sim::CommStats comm;

  std::vector<IterationRecord> iterations;

  int num_iterations = 0;

  double total_cpu_s() const {
    double t = reduce_cpu_s + other_cpu_s;
    for (int s = 0; s < partition::kSubgraphCount; ++s)
      t += push_cpu_s[size_t(s)] + pull_cpu_s[size_t(s)];
    return t;
  }

  double total_comm_modeled_s() const {
    double t = reduce_comm_modeled_s + other_comm_modeled_s;
    for (int s = 0; s < partition::kSubgraphCount; ++s)
      t += comm_modeled_s[size_t(s)];
    return t;
  }

  /// Fold into a metrics report: per-subgraph "<prefix><sub>.push_cpu_s" /
  /// ".pull_cpu_s" / ".comm_modeled_s" gauges, reduce/other components, the
  /// iteration count and a log2 histogram of per-iteration frontier sizes
  /// ("<prefix>frontier_active").  The embedded CommStats is *not* folded
  /// here (callers usually want the whole-pipeline SpmdReport instead).
  void to_report(obs::Report& report,
                 const std::string& prefix = "bfs.") const;
};

/// Cross-rank roll-up of one run, computed by the harness.
struct RunTiming {
  /// Modeled run time: max over ranks of compute CPU plus the (rank-
  /// identical) modeled communication time.  This is the clock used for
  /// GTEPS in scaling experiments (single-host wall time cannot express the
  /// parallelism being simulated).
  double modeled_s = 0;
  /// Host wall time of the whole SPMD run (simulation cost, for reference).
  double wall_s = 0;
};

/// Roll per-rank stats into run timing.
inline RunTiming roll_up(const std::vector<BfsStats>& per_rank,
                         double wall_s) {
  RunTiming t;
  t.wall_s = wall_s;
  double max_cpu = 0, comm = 0;
  for (const auto& s : per_rank) {
    max_cpu = std::max(max_cpu, s.total_cpu_s());
    comm = std::max(comm, s.total_comm_modeled_s());
  }
  t.modeled_s = max_cpu + comm;
  return t;
}

}  // namespace sunbfs::bfs
