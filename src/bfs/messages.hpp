#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "sim/encoding.hpp"
#include "sim/exchange.hpp"

/// Wire formats of the engines' visit messages (shared by bfs1d, bfs15d and
/// the reusable staging pools in BfsWorkspace), plus their adaptive wire
/// codecs (sim/encoding.hpp): the destination id is the sort/bitmap key and
/// the remaining fields travel as varints.  The ExchangeMergePolicy
/// specializations below are what staged exchange plans (sim/exchange.hpp)
/// fold in flight; each reproduces the engines' store-max parent reduction.
namespace sunbfs::bfs {

/// Full-width visit message: set `dst`'s parent to `parent`.  Used where the
/// destination must survive re-routing (L2L forwarding) or already is a
/// global id (delayed parent delivery).
struct VisitMsg {
  graph::Vertex dst;     // global L id (L2L forwarding) or global vertex id
  graph::Vertex parent;  // global vertex id
};

/// Compact 8-byte visit message for the hot alltoallv paths: destinations
/// travel as receiver-local indices (or EH ids) and parents as sender-local
/// indices (or EH ids); the receiver reconstructs global ids from the
/// alltoallv source offsets.  Halves the per-edge traffic, as record BFS
/// implementations do.
struct CompactMsg {
  uint32_t dst;
  uint32_t src;
};

/// Speculative visit of the asynchronous engine (bfs/bfsasync.cpp): claim
/// depth `depth` for receiver-local vertex `dst` with global parent
/// `parent`.  Unlike the level-synchronous messages the depth must travel —
/// one exchange round carries claims from many BFS levels at once, and a
/// vertex may be re-claimed by a shallower visit later.  The engine checks
/// that the vertex space fits 32 bits before staging these.
struct AsyncVisitMsg {
  uint32_t dst;     ///< receiver-local vertex index
  uint32_t parent;  ///< global parent id
  uint32_t depth;   ///< speculative depth claimed for dst
};

}  // namespace sunbfs::bfs

namespace sunbfs::sim {

template <>
struct WireFormat<bfs::VisitMsg> {
  static uint64_t key(const bfs::VisitMsg& m) { return uint64_t(m.dst); }
  static bool less(const bfs::VisitMsg& a, const bfs::VisitMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.parent < b.parent;
  }
  static size_t rest_size(const bfs::VisitMsg& m) {
    return varint_size(zigzag(m.parent));
  }
  static uint8_t* put_rest(const bfs::VisitMsg& m, uint8_t* p) {
    return put_varint(p, zigzag(m.parent));
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, bfs::VisitMsg& m) {
    if (key > uint64_t(INT64_MAX)) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr) return nullptr;
    m.dst = graph::Vertex(key);
    m.parent = unzigzag(v);
    return p;
  }
};

template <>
struct WireFormat<bfs::CompactMsg> {
  static uint64_t key(const bfs::CompactMsg& m) { return m.dst; }
  static bool less(const bfs::CompactMsg& a, const bfs::CompactMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
  }
  static size_t rest_size(const bfs::CompactMsg& m) {
    return varint_size(m.src);
  }
  static uint8_t* put_rest(const bfs::CompactMsg& m, uint8_t* p) {
    return put_varint(p, m.src);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, bfs::CompactMsg& m) {
    if (key > UINT32_MAX) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr || v > UINT32_MAX) return nullptr;
    m.dst = uint32_t(key);
    m.src = uint32_t(v);
    return p;
  }
};

/// Visit messages for the same destination collapse to the max parent — the
/// engines' store_max claim makes the winning parent per (vertex, level)
/// order-independent, so dropping the losers in flight changes nothing a
/// receiver can observe.
template <>
struct ExchangeMergePolicy<bfs::VisitMsg> {
  static constexpr bool enabled = true;
  static bool same(const bfs::VisitMsg& a, uint32_t, const bfs::VisitMsg& b,
                   uint32_t) {
    return a.dst == b.dst;
  }
  static void fold(bfs::VisitMsg& into, uint32_t&, const bfs::VisitMsg& from,
                   uint32_t) {
    if (from.parent > into.parent) into.parent = from.parent;
  }
};

template <>
struct WireFormat<bfs::AsyncVisitMsg> {
  static uint64_t key(const bfs::AsyncVisitMsg& m) { return m.dst; }
  static bool less(const bfs::AsyncVisitMsg& a, const bfs::AsyncVisitMsg& b) {
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.parent < b.parent;
  }
  static size_t rest_size(const bfs::AsyncVisitMsg& m) {
    return varint_size(m.depth) + varint_size(m.parent);
  }
  static uint8_t* put_rest(const bfs::AsyncVisitMsg& m, uint8_t* p) {
    p = put_varint(p, m.depth);
    return put_varint(p, m.parent);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, bfs::AsyncVisitMsg& m) {
    if (key > UINT32_MAX) return nullptr;
    uint64_t depth = 0, parent = 0;
    p = get_varint(p, end, &depth);
    if (p == nullptr || depth > UINT32_MAX) return nullptr;
    p = get_varint(p, end, &parent);
    if (p == nullptr || parent > UINT32_MAX) return nullptr;
    m.dst = uint32_t(key);
    m.depth = uint32_t(depth);
    m.parent = uint32_t(parent);
    return p;
  }
};

/// Compact visits carry sender-local parents, so the fold compares and keeps
/// the max (source rank, local id) pair — under the monotone block layout
/// (to_global(rank, lloc) = base[rank] + lloc) that IS the max global
/// parent, and the surviving source rank rides the route so the receiver's
/// reconstruction still resolves it.  Only the world-communicator sites use
/// staged plans: the H2L row exchange, whose src field is an EH id with a
/// non-monotone global mapping, always runs direct.
template <>
struct ExchangeMergePolicy<bfs::CompactMsg> {
  static constexpr bool enabled = true;
  static bool same(const bfs::CompactMsg& a, uint32_t, const bfs::CompactMsg& b,
                   uint32_t) {
    return a.dst == b.dst;
  }
  static void fold(bfs::CompactMsg& into, uint32_t& into_src_part,
                   const bfs::CompactMsg& from, uint32_t from_src_part) {
    if (from_src_part > into_src_part ||
        (from_src_part == into_src_part && from.src > into.src)) {
      into.src = from.src;
      into_src_part = from_src_part;
    }
  }
};

/// Async visits fold to the minimum depth (max global parent on ties) — the
/// same compare-and-lower rule the receiving rank's claim slot applies, so
/// collapsing speculative duplicates in flight changes nothing a receiver
/// can observe.  Unlike CompactMsg the parent is already a global id, so the
/// surviving source rank is irrelevant to reconstruction.
template <>
struct ExchangeMergePolicy<bfs::AsyncVisitMsg> {
  static constexpr bool enabled = true;
  static bool same(const bfs::AsyncVisitMsg& a, uint32_t,
                   const bfs::AsyncVisitMsg& b, uint32_t) {
    return a.dst == b.dst;
  }
  static void fold(bfs::AsyncVisitMsg& into, uint32_t&,
                   const bfs::AsyncVisitMsg& from, uint32_t) {
    if (from.depth < into.depth ||
        (from.depth == into.depth && from.parent > into.parent)) {
      into.depth = from.depth;
      into.parent = from.parent;
    }
  }
};

}  // namespace sunbfs::sim
