#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "sim/encoding.hpp"

/// Wire formats of the engines' visit messages (shared by bfs1d, bfs15d and
/// the reusable staging pools in BfsWorkspace), plus their adaptive wire
/// codecs (sim/encoding.hpp): the destination id is the sort/bitmap key and
/// the remaining fields travel as varints.
namespace sunbfs::bfs {

/// Full-width visit message: set `dst`'s parent to `parent`.  Used where the
/// destination must survive re-routing (L2L forwarding) or already is a
/// global id (delayed parent delivery).
struct VisitMsg {
  graph::Vertex dst;     // global L id (L2L forwarding) or global vertex id
  graph::Vertex parent;  // global vertex id
};

/// Compact 8-byte visit message for the hot alltoallv paths: destinations
/// travel as receiver-local indices (or EH ids) and parents as sender-local
/// indices (or EH ids); the receiver reconstructs global ids from the
/// alltoallv source offsets.  Halves the per-edge traffic, as record BFS
/// implementations do.
struct CompactMsg {
  uint32_t dst;
  uint32_t src;
};

}  // namespace sunbfs::bfs

namespace sunbfs::sim {

template <>
struct WireFormat<bfs::VisitMsg> {
  static uint64_t key(const bfs::VisitMsg& m) { return uint64_t(m.dst); }
  static bool less(const bfs::VisitMsg& a, const bfs::VisitMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.parent < b.parent;
  }
  static size_t rest_size(const bfs::VisitMsg& m) {
    return varint_size(zigzag(m.parent));
  }
  static uint8_t* put_rest(const bfs::VisitMsg& m, uint8_t* p) {
    return put_varint(p, zigzag(m.parent));
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, bfs::VisitMsg& m) {
    if (key > uint64_t(INT64_MAX)) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr) return nullptr;
    m.dst = graph::Vertex(key);
    m.parent = unzigzag(v);
    return p;
  }
};

template <>
struct WireFormat<bfs::CompactMsg> {
  static uint64_t key(const bfs::CompactMsg& m) { return m.dst; }
  static bool less(const bfs::CompactMsg& a, const bfs::CompactMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
  }
  static size_t rest_size(const bfs::CompactMsg& m) {
    return varint_size(m.src);
  }
  static uint8_t* put_rest(const bfs::CompactMsg& m, uint8_t* p) {
    return put_varint(p, m.src);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, bfs::CompactMsg& m) {
    if (key > UINT32_MAX) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr || v > UINT32_MAX) return nullptr;
    m.dst = uint32_t(key);
    m.src = uint32_t(v);
    return p;
  }
};

}  // namespace sunbfs::sim
