#pragma once

#include <cstdint>

#include "graph/types.hpp"

/// Wire formats of the engines' visit messages (shared by bfs1d, bfs15d and
/// the reusable staging pools in BfsWorkspace).
namespace sunbfs::bfs {

/// Full-width visit message: set `dst`'s parent to `parent`.  Used where the
/// destination must survive re-routing (L2L forwarding) or already is a
/// global id (delayed parent delivery).
struct VisitMsg {
  graph::Vertex dst;     // global L id (L2L forwarding) or global vertex id
  graph::Vertex parent;  // global vertex id
};

/// Compact 8-byte visit message for the hot alltoallv paths: destinations
/// travel as receiver-local indices (or EH ids) and parents as sender-local
/// indices (or EH ids); the receiver reconstructs global ids from the
/// alltoallv source offsets.  Halves the per-edge traffic, as record BFS
/// implementations do.
struct CompactMsg {
  uint32_t dst;
  uint32_t src;
};

}  // namespace sunbfs::bfs
