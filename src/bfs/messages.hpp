#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "sim/encoding.hpp"
#include "sim/exchange.hpp"

/// Wire formats of the engines' visit messages (shared by bfs1d, bfs15d and
/// the reusable staging pools in BfsWorkspace), plus their adaptive wire
/// codecs (sim/encoding.hpp): the destination id is the sort/bitmap key and
/// the remaining fields travel as varints.  The ExchangeMergePolicy
/// specializations below are what staged exchange plans (sim/exchange.hpp)
/// fold in flight; each reproduces the engines' store-max parent reduction.
namespace sunbfs::bfs {

/// Full-width visit message: set `dst`'s parent to `parent`.  Used where the
/// destination must survive re-routing (L2L forwarding) or already is a
/// global id (delayed parent delivery).
struct VisitMsg {
  graph::Vertex dst;     // global L id (L2L forwarding) or global vertex id
  graph::Vertex parent;  // global vertex id
};

/// Compact 8-byte visit message for the hot alltoallv paths: destinations
/// travel as receiver-local indices (or EH ids) and parents as sender-local
/// indices (or EH ids); the receiver reconstructs global ids from the
/// alltoallv source offsets.  Halves the per-edge traffic, as record BFS
/// implementations do.
struct CompactMsg {
  uint32_t dst;
  uint32_t src;
};

}  // namespace sunbfs::bfs

namespace sunbfs::sim {

template <>
struct WireFormat<bfs::VisitMsg> {
  static uint64_t key(const bfs::VisitMsg& m) { return uint64_t(m.dst); }
  static bool less(const bfs::VisitMsg& a, const bfs::VisitMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.parent < b.parent;
  }
  static size_t rest_size(const bfs::VisitMsg& m) {
    return varint_size(zigzag(m.parent));
  }
  static uint8_t* put_rest(const bfs::VisitMsg& m, uint8_t* p) {
    return put_varint(p, zigzag(m.parent));
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, bfs::VisitMsg& m) {
    if (key > uint64_t(INT64_MAX)) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr) return nullptr;
    m.dst = graph::Vertex(key);
    m.parent = unzigzag(v);
    return p;
  }
};

template <>
struct WireFormat<bfs::CompactMsg> {
  static uint64_t key(const bfs::CompactMsg& m) { return m.dst; }
  static bool less(const bfs::CompactMsg& a, const bfs::CompactMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
  }
  static size_t rest_size(const bfs::CompactMsg& m) {
    return varint_size(m.src);
  }
  static uint8_t* put_rest(const bfs::CompactMsg& m, uint8_t* p) {
    return put_varint(p, m.src);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, bfs::CompactMsg& m) {
    if (key > UINT32_MAX) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr || v > UINT32_MAX) return nullptr;
    m.dst = uint32_t(key);
    m.src = uint32_t(v);
    return p;
  }
};

/// Visit messages for the same destination collapse to the max parent — the
/// engines' store_max claim makes the winning parent per (vertex, level)
/// order-independent, so dropping the losers in flight changes nothing a
/// receiver can observe.
template <>
struct ExchangeMergePolicy<bfs::VisitMsg> {
  static constexpr bool enabled = true;
  static bool same(const bfs::VisitMsg& a, uint32_t, const bfs::VisitMsg& b,
                   uint32_t) {
    return a.dst == b.dst;
  }
  static void fold(bfs::VisitMsg& into, uint32_t&, const bfs::VisitMsg& from,
                   uint32_t) {
    if (from.parent > into.parent) into.parent = from.parent;
  }
};

/// Compact visits carry sender-local parents, so the fold compares and keeps
/// the max (source rank, local id) pair — under the monotone block layout
/// (to_global(rank, lloc) = base[rank] + lloc) that IS the max global
/// parent, and the surviving source rank rides the route so the receiver's
/// reconstruction still resolves it.  Only the world-communicator sites use
/// staged plans: the H2L row exchange, whose src field is an EH id with a
/// non-monotone global mapping, always runs direct.
template <>
struct ExchangeMergePolicy<bfs::CompactMsg> {
  static constexpr bool enabled = true;
  static bool same(const bfs::CompactMsg& a, uint32_t, const bfs::CompactMsg& b,
                   uint32_t) {
    return a.dst == b.dst;
  }
  static void fold(bfs::CompactMsg& into, uint32_t& into_src_part,
                   const bfs::CompactMsg& from, uint32_t from_src_part) {
    if (from_src_part > into_src_part ||
        (from_src_part == into_src_part && from.src > into.src)) {
      into.src = from.src;
      into_src_part = from_src_part;
    }
  }
};

}  // namespace sunbfs::sim
