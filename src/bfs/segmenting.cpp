#include "bfs/segmenting.hpp"

#include <cstring>

#include "partition/space.hpp"
#include "support/check.hpp"

namespace sunbfs::bfs {

namespace {
/// Word-aligned segmentation of the frontier bitmap over core groups.
partition::VertexSpace word_segments(uint64_t k_bits, int n_cgs) {
  uint64_t words = (k_bits + 63) / 64;
  return partition::VertexSpace{words, n_cgs};
}
}  // namespace

ChipEhPuller::ChipEhPuller(chip::Chip& chip, const partition::Part15d& part,
                           const sim::MeshShape& mesh, int my_row,
                           ChipEhPullConfig cfg)
    : chip_(chip), cfg_(cfg), k_(part.cls.num_eh()) {
  const int n_cgs = chip.geometry().core_groups;
  partition::VertexSpace segs = word_segments(k_, n_cgs);

  // Split the reverse arcs by the segment of their random-read endpoint x.
  std::vector<std::vector<graph::Vertex>> rows(static_cast<size_t>(n_cgs));
  std::vector<std::vector<graph::Vertex>> vals(static_cast<size_t>(n_cgs));
  const graph::Csr& rev = part.eh2eh_rev;
  for (uint64_t y = 0; y < rev.num_rows(); ++y) {
    for (graph::Vertex x : rev.neighbors(y)) {
      int g = k_ == 0 ? 0 : segs.owner(graph::Vertex(uint64_t(x) / 64));
      rows[size_t(g)].push_back(graph::Vertex(y));
      vals[size_t(g)].push_back(x);
    }
  }
  seg_csr_.reserve(size_t(n_cgs));
  for (int g = 0; g < n_cgs; ++g)
    seg_csr_.push_back(graph::Csr::from_arcs(k_, rows[size_t(g)],
                                             vals[size_t(g)]));

  // Destination list: EH ids owned (cyclically) by ranks in this mesh row.
  for (uint64_t y = 0; y < k_; ++y)
    if (mesh.row_of(part.eh_space.owner(graph::Vertex(y))) == my_row)
      targets_.push_back(y);
  found_.assign(k_, 0);
}

ChipEhPullResult ChipEhPuller::pull(const BitVector& curr,
                                    const BitVector& visited,
                                    std::span<const graph::Vertex> cand,
                                    bool use_rma) {
  SUNBFS_CHECK(curr.size() == k_ && visited.size() == k_);
  SUNBFS_CHECK(cand.size() == k_);
  const auto& geo = chip_.geometry();
  const int n_cgs = geo.core_groups;
  const int ncpe = geo.cpes_per_cg;
  partition::VertexSpace segs = word_segments(k_, n_cgs);
  std::memset(found_.data(), 0, found_.size());

  // Per-CPE output staging in host memory (each slot written by one CPE).
  std::vector<std::vector<ChipPullVisit>> outs(
      size_t(geo.total_cpes()));

  const size_t line_bytes = cfg_.line_bytes;
  const uint64_t t_total = targets_.size();

  auto report = chip_.run([&](chip::CpeContext& cpe) {
    const int g = cpe.cg();
    const int me = cpe.cpe();
    const double dma_bpc = cpe.cost().dma_bytes_per_cycle_per_cpe(
        geo.core_groups, geo.cpes_per_cg);
    // Streaming costs: destinations are scanned sequentially.  Every
    // destination costs its visited/found bits (chunked DMA); only
    // unvisited destinations fetch their CSR offset pair, and values are
    // 32-bit segment-local indices streamed alongside.
    const double seq_cost_per_y = 0.25 / dma_bpc;
    const double seq_cost_per_unvisited_y = 8.0 / dma_bpc;
    const double seq_cost_per_arc = 4.0 / dma_bpc;

    cpe.ldm().reset_alloc();
    // --- Load this CG's frontier segment into distributed LDM lines.
    const uint64_t seg_word_lo = segs.begin(g);
    const uint64_t seg_words = segs.count(g);
    const uint64_t seg_bytes = seg_words * 8;
    const uint64_t n_lines = (seg_bytes + line_bytes - 1) / line_bytes;
    const uint64_t my_lines = n_lines / uint64_t(ncpe) +
                              (uint64_t(me) < n_lines % uint64_t(ncpe) ? 1 : 0);
    size_t lines_off = 0;
    if (use_rma) {
      lines_off = cpe.ldm().alloc(std::max<uint64_t>(my_lines, 1) * line_bytes);
      for (uint64_t l = uint64_t(me), slot = 0; l < n_lines;
           l += uint64_t(ncpe), ++slot) {
        uint64_t byte_lo = l * line_bytes;
        uint64_t nbytes = std::min<uint64_t>(line_bytes, seg_bytes - byte_lo);
        cpe.dma_get(cpe.ldm().data() + lines_off + slot * line_bytes,
                    reinterpret_cast<const unsigned char*>(curr.data() +
                                                           seg_word_lo) +
                        byte_lo,
                    nbytes);
      }
      cpe.sync_cg();
    }

    // Figure 7 offset mapping: word -> (line, cpe, slot, offset-in-line).
    auto read_frontier_word = [&](uint64_t word) -> uint64_t {
      if (!use_rma) {
        return cpe.gld(curr.data()[word]);
      }
      uint64_t byte = (word - seg_word_lo) * 8;
      uint64_t line = byte / line_bytes;
      int owner_cpe = int(line % uint64_t(ncpe));
      uint64_t slot = line / uint64_t(ncpe);
      size_t off = lines_off + slot * line_bytes + byte % line_bytes;
      return cpe.rma_read<uint64_t>(owner_cpe, off);
    };

    auto& out = outs[size_t(g * ncpe + me)];
    const graph::Csr& csr = seg_csr_[size_t(g)];

    // Rounds: CG g processes destination interval (g + t) mod n_cgs in
    // round t; chip-wide sync between rounds keeps writes exclusive.
    for (int t = 0; t < n_cgs; ++t) {
      int interval = (g + t) % n_cgs;
      uint64_t ilo = t_total * uint64_t(interval) / uint64_t(n_cgs);
      uint64_t ihi = t_total * uint64_t(interval + 1) / uint64_t(n_cgs);
      // CPEs split the interval with a stride: destination ids are ordered
      // by degree, so contiguous splits would hand one CPE all the hubs.
      for (uint64_t i = ilo + uint64_t(me); i < ihi; i += uint64_t(ncpe)) {
        uint64_t y = targets_[i];
        cpe.add_cycles(seq_cost_per_y);
        if (visited.get(y) || cand[y] != graph::kNoVertex || found_[y])
          continue;
        cpe.add_cycles(seq_cost_per_unvisited_y);
        for (graph::Vertex xv : csr.neighbors(y)) {
          uint64_t x = uint64_t(xv);
          cpe.add_cycles(seq_cost_per_arc);
          uint64_t word = read_frontier_word(x >> 6);
          if ((word >> (x & 63)) & 1) {
            found_[y] = 1;  // distinct y per CPE per round: no race
            // Visits are buffered in LDM and streamed out in batches
            // (sequential write side of the kernel): amortized DMA cost.
            cpe.add_cycles(double(sizeof(ChipPullVisit)) / dma_bpc);
            out.push_back(ChipPullVisit{y, x});
            break;  // early exit
          }
        }
      }
      if (n_cgs > 1) cpe.sync_chip();
    }
  });

  ChipEhPullResult result;
  result.report = report;
  for (auto& o : outs)
    result.visits.insert(result.visits.end(), o.begin(), o.end());
  return result;
}

}  // namespace sunbfs::bfs
