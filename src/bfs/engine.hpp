#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bfs/bfs15d.hpp"
#include "bfs/bfs1d.hpp"
#include "bfs/bfsasync.hpp"
#include "bfs/stats.hpp"
#include "partition/classify.hpp"
#include "sim/runtime.hpp"

/// Engine selection in one place: every driver that lets the user choose a
/// BFS engine (graph500_runner, the crossover bench, tests) goes through
/// parse_engine_kind and make_engine, so the set of engines, their partition
/// requirements and their option plumbing cannot drift apart between
/// call sites.
namespace sunbfs::bfs {

/// Which BFS engine to run.
enum class EngineKind {
  OneD,      ///< vanilla 1D baseline, level-synchronous
  OneFiveD,  ///< degree-aware 1.5D (the paper's system), level-synchronous
  Async,     ///< relaxed-frontier asynchronous engine (bfs/bfsasync.hpp)
};

/// CLI spelling of `kind` ("1d", "1.5d", "async").
const char* engine_kind_name(EngineKind kind);

/// Parse a CLI spelling; false on anything not listed by
/// engine_kind_choices().
bool parse_engine_kind(const std::string& s, EngineKind* out);

/// Comma-separated valid spellings for error messages ("1d, 1.5d, async").
const char* engine_kind_choices();

/// "--engine: unknown value 'x' (valid: 1d, 1.5d, async)" — the typed
/// rejection every driver prints for an enum-valued flag, built here so CLI
/// unit tests can pin the shape once for all tools.
std::string unknown_choice_error(const std::string& flag,
                                 const std::string& value,
                                 const std::string& choices);

/// Everything make_engine needs to build and later run one engine.  The
/// per-engine option structs are taken as-is (the caller points workspace /
/// chip fields at rank-lifetime resources before calling).
struct EngineConfig {
  EngineKind kind = EngineKind::OneFiveD;
  partition::DegreeThresholds thresholds;  ///< 1.5D classification
  Bfs15dOptions bfs15;
  Bfs1dOptions bfs1d;
  BfsAsyncOptions async;

  /// The selected engine's threads_per_rank request (needed before any
  /// workspace exists).
  int threads_request() const;
};

/// One root's traversal, shape-normalized across engines.
struct EngineRun {
  std::vector<graph::Vertex> parent;  ///< owned slice, local index order
  double cpu_s = 0;                   ///< this rank's compute CPU seconds
  double comm_modeled_s = 0;          ///< modeled network seconds
  /// Collective rounds of the traversal loop: BFS levels for the
  /// level-synchronous engines, exchange rounds for the async engine.
  int rounds = 0;
  BfsStats stats;          ///< per-subgraph breakdown (1.5D only)
  bool has_stats = false;  ///< whether `stats` is populated
};

/// A partition bound to an engine, reusable across roots.
class TraversalEngine {
 public:
  virtual ~TraversalEngine() = default;
  /// Run one traversal from `root`.  Collective over all ranks.
  virtual EngineRun run(sim::RankContext& ctx, graph::Vertex root) = 0;
  /// The underlying 1.5D partition when this engine has one (balance
  /// reports, classification sizes); null for the 1D-partitioned engines.
  virtual const partition::Part15d* part15() const { return nullptr; }
};

/// Build the partition `config.kind` needs from this rank's slice of the
/// global edge list and bind it to the engine.  Collective over all ranks
/// (the partition builds run alltoallvs); `local_degrees` must come from
/// partition::compute_local_degrees over the same slices.
std::unique_ptr<TraversalEngine> make_engine(
    sim::RankContext& ctx, const partition::VertexSpace& space,
    std::span<const graph::Edge> slice, std::span<const uint64_t> local_degrees,
    const EngineConfig& config);

}  // namespace sunbfs::bfs
