#include "bfs/bfs15d.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "bfs/gathered_frontier.hpp"
#include "obs/trace.hpp"
#include "bfs/segmenting.hpp"
#include "bfs/vertex_cut.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

namespace sunbfs::bfs {

using graph::Vertex;
using graph::kNoVertex;
using partition::Subgraph;

namespace {

/// Number of set bits of `bv` in [lo, hi).
uint64_t count_range(const BitVector& bv, uint64_t lo, uint64_t hi) {
  uint64_t n = 0;
  for (uint64_t i = lo; i < hi; ++i)
    if (bv.get(i)) ++n;
  return n;
}

/// Message for remote visits: set `dst`'s parent to `parent`.
struct VisitMsg {
  Vertex dst;     // global L id (H2L, L2L) or EH id (L2H)
  Vertex parent;  // global vertex id
};

/// Compact 8-byte visit message for the hot alltoallv paths: destinations
/// travel as receiver-local indices (or EH ids) and parents as sender-local
/// indices (or EH ids); the receiver reconstructs global ids from the
/// alltoallv source offsets.  Halves the per-edge traffic, as record BFS
/// implementations do.
struct CompactMsg {
  uint32_t dst;
  uint32_t src;
};

class Engine {
 public:
  Engine(sim::RankContext& ctx, const partition::Part15d& part, Vertex root,
         const Bfs15dOptions& opts)
      : ctx_(ctx),
        part_(part),
        opts_(opts),
        mesh_(ctx.mesh),
        my_row_(ctx.row_index()),
        my_col_(ctx.col_index()),
        k_(part.cls.num_eh()),
        num_e_(part.cls.num_e()),
        root_(root) {
    SUNBFS_CHECK(root >= 0 && uint64_t(root) < part.space.total);
    if (opts_.pull_kernel != Bfs15dOptions::EhPullKernel::Host)
      SUNBFS_CHECK_MSG(opts_.chip != nullptr,
                       "chip-executed pull kernel requires a chip");
    eh_curr_.resize(k_);
    eh_visited_.resize(k_);
    eh_next_.resize(k_);
    eh_next_local_.resize(k_);
    cand_.assign(k_, kNoVertex);
    local_count_ = part.local_count;
    parent_.assign(local_count_, kNoVertex);
    l_visited_.resize(local_count_);
    l_curr_.resize(local_count_);
    l_next_.resize(local_count_);
    num_l_global_ = part.space.total - k_;
    dedup_l_.resize(part.space.total);
    dedup_eh_.resize(k_);
    // Compact 8-byte messages index vertices with 32 bits.
    SUNBFS_CHECK(part.space.max_count() < (uint64_t(1) << 32));
    SUNBFS_CHECK(k_ < (uint64_t(1) << 32));
    l_unvisited_ = 0;
    for (uint64_t l = 0; l < local_count_; ++l)
      if (!part.local_is_eh.get(l)) ++l_unvisited_;
    // EH ids owned by ranks in this rank's mesh row (pull destinations) and
    // column (push sources).  Ownership is cyclic, so these are strided id
    // sets; materialize them once (|EH| is small by construction).  The H
    // subsets drive the scoped delegation sync: H frontier/visited bits are
    // only kept valid on the owner's row and column ("delegated on rows and
    // columns", §4.1), while E bits are kept valid globally.
    for (uint64_t kid = 0; kid < k_; ++kid) {
      int owner = part.eh_space.owner(graph::Vertex(kid));
      if (mesh_.row_of(owner) == my_row_) {
        row_targets_.push_back(kid);
        if (kid >= num_e_) row_h_ids_.push_back(kid);
      }
      if (mesh_.col_of(owner) == my_col_) {
        col_sources_.push_back(kid);
        if (kid >= num_e_) col_h_ids_.push_back(kid);
      }
      if (owner == ctx.rank && kid >= num_e_) owned_h_ids_.push_back(kid);
    }
  }

  Bfs15dResult run() {
    obs::Span run_span("bfs", "bfs15d");
    ThreadCpuTimer run_cpu;
    const double comm_start = ctx_.stats.total_modeled_s();

    resilient_ = ctx_.faults.recovering();
    if (resilient_) {
      SUNBFS_CHECK(opts_.recovery.checkpoint_interval >= 1);
      fired_failures_.assign(ctx_.faults.plan->rank_failures().size(), false);
    }

    seed_root();
    if (resilient_) save_checkpoint(0);
    int iteration = 0;
    for (;;) {
      ++iteration;
      obs::Span level_span("bfs", "level", iteration);
      // A scheduled hard failure is in the (replicated) plan, so every rank
      // sees it fire at the same level without an agreement round: the
      // victim's volatile state is wiped and everyone rolls back together.
      if (resilient_ && take_rank_failure(iteration)) {
        rollback(iteration);
        continue;
      }
      // Without the recover policy a scheduled failure simply kills the rank.
      if (!resilient_ && ctx_.faults.active())
        for (const auto& f : ctx_.faults.plan->rank_failures())
          if (f.rank == ctx_.rank && f.level == iteration)
            throw sim::RankFailure(f.rank, f.level);
      IterationRecord rec;
      rec.iteration = iteration;
      rec.active_e = count_range(eh_curr_, 0, num_e_);  // E bits are global
      // One fused collective carries the L counters and the owner-counted H
      // counters (H bits are only scope-valid, so owners count them).
      refresh_counts(l_curr_.count());
      rec.active_h = act_h_;
      rec.active_l = act_l_;
      const bool frontier_empty =
          rec.active_e + rec.active_h + rec.active_l == 0;

      if (!frontier_empty) {
        rec.bottom_up[int(Subgraph::EH2EH)] = decide(Subgraph::EH2EH, rec);
        sub_eh2eh(rec.bottom_up[int(Subgraph::EH2EH)]);

        rec.bottom_up[int(Subgraph::E2L)] = decide(Subgraph::E2L, rec);
        sub_e2l(rec.bottom_up[int(Subgraph::E2L)]);

        // L2E only updates E bits, which no later sub-iteration of this
        // iteration reads; its sync is folded into L2H's (one fewer
        // mesh-wide union per iteration).
        rec.bottom_up[int(Subgraph::L2E)] = decide(Subgraph::L2E, rec);
        sub_l2e(rec.bottom_up[int(Subgraph::L2E)]);

        // Latest-unvisited refresh (§4.2) before the direction-sensitive
        // remote sub-iterations; earlier sub-iterations changed the
        // unvisited counts (l_curr_ is immutable within the iteration, so
        // act is stable).
        refresh_counts(l_curr_.count());
        rec.bottom_up[int(Subgraph::H2L)] = decide(Subgraph::H2L, rec);
        sub_h2l(rec.bottom_up[int(Subgraph::H2L)]);

        rec.bottom_up[int(Subgraph::L2H)] = decide(Subgraph::L2H, rec);
        sub_l2h(rec.bottom_up[int(Subgraph::L2H)]);

        rec.bottom_up[int(Subgraph::L2L)] = decide(Subgraph::L2L, rec);
        sub_l2l(rec.bottom_up[int(Subgraph::L2L)]);
      }

      // Globally consistent detection point: any rank that dropped a
      // corrupted contribution this iteration forces everyone back to the
      // last checkpoint before the broken state is committed.  A corruption
      // of this agreement collective itself is dropped identically on every
      // rank, so the local re-check stays replicated too.
      if (resilient_) {
        bool faulty = ctx_.world.allreduce_or(ctx_.faults.take_pending());
        faulty = ctx_.faults.take_pending() || faulty;
        if (faulty) {
          rollback(iteration);
          continue;
        }
        note_clean_pass();
      }
      if (frontier_empty) break;

      stats_.iterations.push_back(rec);
      // Advance the frontier.
      eh_curr_ = eh_next_;
      eh_next_.reset();
      std::swap(l_curr_, l_next_);
      l_next_.reset();
      if (!opts_.delayed_parent_reduction) reduce_parents_checked();
      if (resilient_ && iteration % opts_.recovery.checkpoint_interval == 0)
        save_checkpoint(iteration);
    }
    stats_.num_iterations = iteration - 1;

    if (opts_.delayed_parent_reduction) reduce_parents_checked();

    // "Other" is everything not attributed to a sub-iteration or to the
    // parent reduction: heuristics, frontier swaps, termination checks.
    stats_.other_cpu_s =
        std::max(0.0, run_cpu.seconds() - attributed_host_cpu_);
    double attributed_comm = stats_.reduce_comm_modeled_s;
    for (double c : stats_.comm_modeled_s) attributed_comm += c;
    stats_.other_comm_modeled_s = std::max(
        0.0, ctx_.stats.total_modeled_s() - comm_start - attributed_comm);

    stats_.comm = ctx_.stats;
    Bfs15dResult result;
    result.parent = std::move(parent_);
    result.stats = std::move(stats_);
    return result;
  }

 private:
  // ---- setup -------------------------------------------------------------
  void seed_root() {
    uint64_t k = part_.cls.eh_of(root_);
    if (k != partition::EhlTable::kNotEh) {
      eh_visited_.set(k);
      eh_curr_.set(k);
      cand_[k] = root_;  // replicated: every rank records the self-parent
    } else if (part_.space.owner(root_) == ctx_.rank) {
      uint64_t l = part_.space.to_local(ctx_.rank, root_);
      parent_[l] = root_;
      l_visited_.set(l);
      l_curr_.set(l);
      --l_unvisited_;
    }
  }

  // ---- direction selection (§4.2) ----------------------------------------
  // Every input is either replicated (EH bitmaps) or allreduced (L counts),
  // so all ranks always reach the same decision — required, because the two
  // directions of a sub-iteration issue different collectives.
  bool decide(Subgraph s, const IterationRecord& rec) const {
    auto frac = [](uint64_t a, uint64_t b) {
      return b == 0 ? 0.0 : double(a) / double(b);
    };
    if (!opts_.sub_iteration_direction) {
      double r_all = frac(rec.active_e + rec.active_h + rec.active_l,
                          part_.space.total);
      return r_all > opts_.global_pull_ratio;
    }
    double r_e = frac(rec.active_e, num_e_);
    double r_h = frac(rec.active_h, k_ - num_e_);
    double r_l = frac(rec.active_l, num_l_global_);
    switch (s) {
      case Subgraph::EH2EH:
        return frac(rec.active_e + rec.active_h, k_) > opts_.local_pull_ratio;
      case Subgraph::E2L:
        return r_e > opts_.local_pull_ratio;
      case Subgraph::L2E:
        return r_l > opts_.local_pull_ratio;
      case Subgraph::H2L:
        return r_h > opts_.remote_pull_factor *
                         frac(unv_l_global_, num_l_global_);
      case Subgraph::L2H:
        return r_l > opts_.remote_pull_factor *
                         frac(unv_h_global_, k_ - num_e_);
      case Subgraph::L2L:
        return r_l > opts_.remote_pull_factor *
                         frac(unv_l_global_, num_l_global_);
    }
    return false;
  }

  /// One allreduce refreshing the global L counters and the global H
  /// counters (each rank contributes its owned H bits, which are always
  /// within its validity scope).
  void refresh_counts(uint64_t local_active_l) {
    struct Counts {
      uint64_t act_l, unv_l, act_h, unv_h;
    };
    uint64_t act_h = 0, unv_h = 0;
    for (uint64_t h : owned_h_ids_) {
      if (eh_curr_.get(h)) ++act_h;
      if (!eh_visited_.get(h)) ++unv_h;
    }
    Counts c = ctx_.world.allreduce(
        Counts{local_active_l, l_unvisited_, act_h, unv_h},
        [](Counts a, Counts b) {
          return Counts{a.act_l + b.act_l, a.unv_l + b.unv_l,
                        a.act_h + b.act_h, a.unv_h + b.unv_h};
        });
    act_l_ = c.act_l;
    unv_l_global_ = c.unv_l;
    act_h_ = c.act_h;
    unv_h_global_ = c.unv_h;
  }

  // ---- shared helpers -----------------------------------------------------
  /// Attribute a sub-iteration's compute + communication.  If the body sets
  /// time_override_ >= 0 (chip kernels), that value replaces measured CPU.
  template <typename Fn>
  void timed_sub(Subgraph s, bool bottom_up, Fn&& fn) {
    obs::Span span("bfs", partition::subgraph_name(s), bottom_up ? 1 : 0);
    double comm0 = ctx_.stats.total_modeled_s();
    time_override_ = -1.0;
    ThreadCpuTimer cpu;
    fn();
    attributed_host_cpu_ += cpu.seconds();
    double t = time_override_ >= 0 ? time_override_ : cpu.seconds();
    // The attributed compute is modeled time too: the collectives inside
    // fn() advanced the rank's modeled clock themselves, compute does it
    // here, so the span covers both on the modeled timeline.
    obs::Tracer::advance_modeled(t);
    auto& arr = bottom_up ? stats_.pull_cpu_s : stats_.push_cpu_s;
    arr[size_t(int(s))] += t;
    stats_.comm_modeled_s[size_t(int(s))] +=
        ctx_.stats.total_modeled_s() - comm0;
  }

  /// Mesh-aware union of locally discovered EH visits, honoring the
  /// delegation scopes of §4.1:
  ///   1. column allreduce of the full bitmap (E and H column unions);
  ///   2. row allreduce of the E prefix (E becomes globally valid — global
  ///      delegation) plus the packed bits of H owned by this row (each H
  ///      becomes valid on its owner's row);
  ///   3. column allreduce of the packed bits of H owned by this column
  ///      (each H becomes valid on its owner's column).
  /// After this an H bit is correct exactly on its owner's row and column —
  /// every rank that stores arcs touching it — while off-scope H bits may
  /// be stale.  The row/column steps move |E| + |H|/C + |H|/R bits instead
  /// of |E| + |H|: the communication saving H delegation exists for.
  void sync_eh() {
    if (k_ == 0) return;  // no delegated vertices at all (pure-1D config)
    std::span<uint64_t> words(eh_next_local_.data(),
                              eh_next_local_.word_count());
    auto lor = [](uint64_t a, uint64_t b) { return a | b; };
    ctx_.col.allreduce_inplace(words, lor);
    // Row step: one collective carrying [E prefix words | packed row-H bits].
    if (ctx_.row.size() > 1) {
      size_t e_words = (num_e_ + 63) / 64;
      std::vector<uint64_t> buf(e_words + (row_h_ids_.size() + 63) / 64, 0);
      std::copy_n(eh_next_local_.data(), e_words, buf.data());
      pack_ids(row_h_ids_, buf.data() + e_words);
      ctx_.row.allreduce_inplace(std::span<uint64_t>(buf), lor);
      std::copy_n(buf.data(), e_words, eh_next_local_.data());
      unpack_ids(row_h_ids_, buf.data() + e_words);
    }
    // Column step for column-owned H bits (owner now has the full union).
    if (ctx_.col.size() > 1 && !col_h_ids_.empty()) {
      std::vector<uint64_t> buf((col_h_ids_.size() + 63) / 64, 0);
      pack_ids(col_h_ids_, buf.data());
      ctx_.col.allreduce_inplace(std::span<uint64_t>(buf), lor);
      unpack_ids(col_h_ids_, buf.data());
    }
    eh_visited_ |= eh_next_local_;
    eh_next_ |= eh_next_local_;
    eh_next_local_.reset();
  }

  void pack_ids(const std::vector<uint64_t>& ids, uint64_t* packed) {
    for (size_t i = 0; i < ids.size(); ++i)
      if (eh_next_local_.get(ids[i]))
        packed[i >> 6] |= uint64_t(1) << (i & 63);
  }

  void unpack_ids(const std::vector<uint64_t>& ids, const uint64_t* packed) {
    for (size_t i = 0; i < ids.size(); ++i)
      if ((packed[i >> 6] >> (i & 63)) & 1) eh_next_local_.set(ids[i]);
  }

  void visit_local_l(uint64_t lloc, Vertex parent) {
    if (l_visited_.test_and_set(lloc)) {
      parent_[lloc] = parent;
      l_next_.set(lloc);
      --l_unvisited_;
    }
  }

  /// Record an EH visit candidate; returns false if already visited/found.
  bool visit_eh(uint64_t k, Vertex parent) {
    if (eh_visited_.get(k)) return false;
    if (!eh_next_local_.test_and_set(k)) return false;
    cand_[k] = parent;
    return true;
  }

  Vertex local_to_global(uint64_t lloc) const {
    return part_.space.to_global(ctx_.rank, lloc);
  }

  // ---- EH2EH (§4.1/4.3) ---------------------------------------------------
  void sub_eh2eh(bool bottom_up) {
    timed_sub(Subgraph::EH2EH, bottom_up, [&] {
      if (!bottom_up) {
        // Top-down with edge-aware vertex cut (§5).
        std::vector<uint64_t> active;
        for (uint64_t x : col_sources_)
          if (eh_curr_.get(x) && part_.eh2eh.degree(x) > 0)
            active.push_back(x);
        auto body = [&](size_t i) {
          uint64_t x = active[i];
          Vertex px = part_.cls.eh_to_global(x);
          for (Vertex y : part_.eh2eh.neighbors(x))
            visit_eh(uint64_t(y), px);
        };
        if (opts_.edge_aware_vertex_cut) {
          edge_aware_foreach(
              active,
              [&](uint64_t x) { return part_.eh2eh.degree(x); }, pool_, body);
        } else {
          for (size_t i = 0; i < active.size(); ++i) body(i);
        }
      } else if (opts_.pull_kernel == Bfs15dOptions::EhPullKernel::Host) {
        for (uint64_t y : row_targets_) {
          if (eh_visited_.get(y) || eh_next_local_.get(y)) continue;
          for (Vertex x : part_.eh2eh_rev.neighbors(y)) {
            if (eh_curr_.get(uint64_t(x))) {
              visit_eh(y, part_.cls.eh_to_global(uint64_t(x)));
              break;  // early exit
            }
          }
        }
      } else {
        // Chip-executed pull (GLD baseline or segmented RMA kernel, §4.3).
        if (!puller_)
          puller_ = std::make_unique<ChipEhPuller>(*opts_.chip, part_, mesh_,
                                                   my_row_);
        bool rma = opts_.pull_kernel == Bfs15dOptions::EhPullKernel::ChipRma;
        auto out = puller_->pull(eh_curr_, eh_visited_, cand_, rma);
        for (const auto& v : out.visits)
          visit_eh(v.y, part_.cls.eh_to_global(v.x));
        time_override_ = out.report.modeled_seconds;
      }
      sync_eh();
    });
  }

  // ---- E2L / L2E (no communication: E is globally delegated) --------------
  void sub_e2l(bool bottom_up) {
    timed_sub(Subgraph::E2L, bottom_up, [&] {
      if (!bottom_up) {
        for (uint64_t e = 0; e < num_e_; ++e) {
          if (!eh_curr_.get(e) || part_.e2l.degree(e) == 0) continue;
          Vertex pe = part_.cls.eh_to_global(e);
          for (Vertex lloc : part_.e2l.neighbors(e))
            visit_local_l(uint64_t(lloc), pe);
        }
      } else {
        for (uint64_t lloc = 0; lloc < local_count_; ++lloc) {
          if (l_visited_.get(lloc) || part_.local_is_eh.get(lloc)) continue;
          for (Vertex e : part_.l2e.neighbors(lloc)) {
            if (eh_curr_.get(uint64_t(e))) {
              visit_local_l(lloc, part_.cls.eh_to_global(uint64_t(e)));
              break;
            }
          }
        }
      }
    });
  }

  void sub_l2e(bool bottom_up) {
    timed_sub(Subgraph::L2E, bottom_up, [&] {
      if (!bottom_up) {
        l_curr_.for_each_set([&](size_t lloc) {
          Vertex pl = local_to_global(lloc);
          for (Vertex e : part_.l2e.neighbors(lloc))
            visit_eh(uint64_t(e), pl);
        });
      } else {
        for (uint64_t e = 0; e < num_e_; ++e) {
          if (eh_visited_.get(e) || eh_next_local_.get(e)) continue;
          for (Vertex lloc : part_.e2l.neighbors(e)) {
            if (l_curr_.get(uint64_t(lloc))) {
              visit_eh(e, local_to_global(uint64_t(lloc)));
              break;
            }
          }
        }
      }
      // No sync here: L2E only marks E vertices, which nothing reads before
      // L2H's sync covers them.
    });
  }

  // ---- H2L (push messages intra-row) ---------------------------------------
  void sub_h2l(bool bottom_up) {
    timed_sub(Subgraph::H2L, bottom_up, [&] {
      if (!bottom_up) {
        // Push with per-destination dedup: at most one message per target
        // vertex per rank, whatever the hub fan-in (a standard trick of
        // record BFS implementations; any winning parent is valid).
        dedup_l_.reset();
        std::vector<std::vector<CompactMsg>> to(size_t(mesh_.cols));
        for (uint64_t h = num_e_; h < k_; ++h) {
          if (!eh_curr_.get(h) || part_.h2l.degree(h) == 0) continue;
          for (Vertex l : part_.h2l.neighbors(h)) {
            if (!dedup_l_.test_and_set(uint64_t(l))) continue;
            int owner = part_.space.owner(l);
            to[size_t(mesh_.col_of(owner))].push_back(CompactMsg{
                uint32_t(part_.space.to_local(owner, l)), uint32_t(h)});
          }
        }
        auto got = ctx_.row.alltoallv(to);
        for (const CompactMsg& m : got)
          visit_local_l(m.dst, part_.cls.eh_to_global(m.src));
      } else {
        // Pull at the storage ranks over the destination-major mirror
        // ("stored by the destination index"): gather the row's visited
        // bitmap, scan unvisited destinations, early-exit on the first
        // active h (whose bits are valid here — this rank is in h's
        // column), and send one message per newly found vertex instead of
        // one per edge.
        GatheredFrontier row_visited =
            GatheredFrontier::gather(ctx_.row, l_visited_);
        std::vector<std::vector<CompactMsg>> to(size_t(mesh_.cols));
        int col = 0;
        for (uint64_t rl = 0; rl < part_.h2l_by_l.num_rows(); ++rl) {
          if (part_.h2l_by_l.degree(rl) == 0) continue;
          while (part_.row_l_offsets[size_t(col) + 1] <= rl) ++col;
          uint64_t lloc = rl - part_.row_l_offsets[size_t(col)];
          if (row_visited.get(col, lloc)) continue;
          for (Vertex h : part_.h2l_by_l.neighbors(rl)) {
            if (eh_curr_.get(uint64_t(h))) {
              to[size_t(col)].push_back(
                  CompactMsg{uint32_t(lloc), uint32_t(h)});
              break;  // early exit: one message per vertex
            }
          }
        }
        auto got = ctx_.row.alltoallv(to);
        for (const CompactMsg& m : got)
          visit_local_l(m.dst, part_.cls.eh_to_global(m.src));
      }
    });
  }

  // ---- L2H -----------------------------------------------------------------
  void sub_l2h(bool bottom_up) {
    timed_sub(Subgraph::L2H, bottom_up, [&] {
      if (!bottom_up) {
        // Push to h's column delegate in this row (intra-row message).
        dedup_eh_.reset();
        std::vector<std::vector<CompactMsg>> to(size_t(mesh_.cols));
        l_curr_.for_each_set([&](size_t lloc) {
          for (Vertex h : part_.l2h.neighbors(lloc)) {
            if (eh_visited_.get(uint64_t(h))) continue;
            if (!dedup_eh_.test_and_set(uint64_t(h))) continue;
            int col = mesh_.col_of(part_.eh_space.owner(h));
            to[size_t(col)].push_back(
                CompactMsg{uint32_t(h), uint32_t(lloc)});
          }
        });
        std::vector<size_t> src_off;
        auto got = ctx_.row.alltoallv(to, &src_off);
        for (int src_col = 0; src_col < mesh_.cols; ++src_col) {
          int src_rank = mesh_.rank_of(my_row_, src_col);
          for (size_t i = src_off[size_t(src_col)];
               i < src_off[size_t(src_col) + 1]; ++i)
            visit_eh(uint64_t(got[i].dst),
                     part_.space.to_global(src_rank, got[i].src));
        }
      } else {
        // Pull at the H2L storage ranks: L frontier gathered along the row
        // (the allgather component of Figure 11).
        GatheredFrontier row_frontier =
            GatheredFrontier::gather(ctx_.row, l_curr_);
        for (uint64_t h = num_e_; h < k_; ++h) {
          if (eh_visited_.get(h) || eh_next_local_.get(h)) continue;
          for (Vertex l : part_.h2l.neighbors(h)) {
            int owner = part_.space.owner(l);
            uint64_t lloc = uint64_t(l) - part_.space.begin(owner);
            if (row_frontier.get(mesh_.col_of(owner), lloc)) {
              visit_eh(h, l);
              break;
            }
          }
        }
      }
      sync_eh();
    });
  }

  // ---- L2L (classic 1D messaging) -------------------------------------------
  void sub_l2l(bool bottom_up) {
    timed_sub(Subgraph::L2L, bottom_up, [&] {
      if (!bottom_up) {
        if (opts_.l2l_forwarding) {
          // Stage 1: sort outgoing messages by the forwarding rank — the
          // intersection of this rank's column and the destination's row —
          // and exchange along the column.
          dedup_l_.reset();
          std::vector<std::vector<VisitMsg>> down(size_t(mesh_.rows));
          l_curr_.for_each_set([&](size_t lloc) {
            Vertex pl = local_to_global(lloc);
            for (Vertex l2 : part_.l2l.neighbors(lloc)) {
              int owner = part_.space.owner(l2);
              if (owner == ctx_.rank)
                visit_local_l(part_.space.to_local(owner, l2), pl);
              else if (dedup_l_.test_and_set(uint64_t(l2)))
                down[size_t(mesh_.row_of(owner))].push_back(VisitMsg{l2, pl});
            }
          });
          auto staged = ctx_.col.alltoallv(down);
          // Stage 2: the forwarder re-sorts by destination column (the
          // OCS-RMA use case "forwarding in global messaging") and sends
          // along its row.
          std::vector<std::vector<VisitMsg>> along(size_t(mesh_.cols));
          for (const VisitMsg& m : staged) {
            int owner = part_.space.owner(m.dst);
            SUNBFS_ASSERT(mesh_.row_of(owner) == my_row_);
            along[size_t(mesh_.col_of(owner))].push_back(m);
          }
          auto got = ctx_.row.alltoallv(along);
          for (const VisitMsg& m : got)
            visit_local_l(part_.space.to_local(ctx_.rank, m.dst), m.parent);
        } else {
          dedup_l_.reset();
          std::vector<std::vector<CompactMsg>> to(size_t(mesh_.ranks()));
          l_curr_.for_each_set([&](size_t lloc) {
            Vertex pl = local_to_global(lloc);
            for (Vertex l2 : part_.l2l.neighbors(lloc)) {
              int owner = part_.space.owner(l2);
              if (owner == ctx_.rank)
                visit_local_l(part_.space.to_local(owner, l2), pl);
              else if (dedup_l_.test_and_set(uint64_t(l2)))
                to[size_t(owner)].push_back(CompactMsg{
                    uint32_t(part_.space.to_local(owner, l2)),
                    uint32_t(lloc)});
            }
          });
          std::vector<size_t> src_off;
          auto got = ctx_.world.alltoallv(to, &src_off);
          for (int src = 0; src < ctx_.nranks(); ++src)
            for (size_t i = src_off[size_t(src)]; i < src_off[size_t(src) + 1];
                 ++i)
              visit_local_l(got[i].dst,
                            part_.space.to_global(src, got[i].src));
        }
      } else {
        GatheredFrontier world_frontier =
            GatheredFrontier::gather(ctx_.world, l_curr_);
        for (uint64_t lloc = 0; lloc < local_count_; ++lloc) {
          if (l_visited_.get(lloc) || part_.local_is_eh.get(lloc)) continue;
          for (Vertex l2 : part_.l2l.neighbors(lloc)) {
            int owner = part_.space.owner(l2);
            uint64_t l2loc = uint64_t(l2) - part_.space.begin(owner);
            if (world_frontier.get(owner, l2loc)) {
              visit_local_l(lloc, l2);
              break;
            }
          }
        }
      }
    });
  }

  // ---- delayed reduction of delegated parents (§5) --------------------------
  void reduce_parents() {
    obs::Span span("bfs", "reduce_parents");
    double comm0 = ctx_.stats.total_modeled_s();
    ThreadCpuTimer cpu;
    uint64_t block = part_.eh_space.max_count();
    std::vector<Vertex> contrib(block * uint64_t(ctx_.nranks()), kNoVertex);
    for (int r = 0; r < ctx_.nranks(); ++r) {
      uint64_t n = part_.eh_space.count(r);
      for (uint64_t i = 0; i < n; ++i)
        contrib[uint64_t(r) * block + i] =
            cand_[uint64_t(part_.eh_space.to_global(r, i))];
    }
    auto mine = ctx_.world.reduce_scatter_block(
        std::span<const Vertex>(contrib), block,
        [](Vertex a, Vertex b) { return std::max(a, b); });
    // Deliver reduced parents to the owners of the original vertex ids.
    std::vector<std::vector<VisitMsg>> to(size_t(ctx_.nranks()));
    for (uint64_t i = 0; i < part_.eh_space.count(ctx_.rank); ++i) {
      if (mine[i] == kNoVertex) continue;
      Vertex g = part_.cls.eh_to_global(
          uint64_t(part_.eh_space.to_global(ctx_.rank, i)));
      to[size_t(part_.space.owner(g))].push_back(VisitMsg{g, mine[i]});
    }
    auto got = ctx_.world.alltoallv(to);
    for (const VisitMsg& m : got)
      parent_[part_.space.to_local(ctx_.rank, m.dst)] = m.parent;
    stats_.reduce_cpu_s += cpu.seconds();
    attributed_host_cpu_ += cpu.seconds();
    obs::Tracer::advance_modeled(cpu.seconds());
    stats_.reduce_comm_modeled_s += ctx_.stats.total_modeled_s() - comm0;
  }

  /// reduce_parents under the recover policy.  The reduction is idempotent —
  /// contributions are rebuilt from cand_ on every call — so a corrupted
  /// exchange is simply re-run (with backoff), no checkpoint rollback needed.
  void reduce_parents_checked() {
    for (;;) {
      reduce_parents();
      if (!resilient_) return;
      bool faulty = ctx_.world.allreduce_or(ctx_.faults.take_pending());
      faulty = ctx_.faults.take_pending() || faulty;
      if (!faulty) {
        note_clean_pass();
        return;
      }
      backoff_or_give_up("parent reduction");
      log_debug("bfs15d rank ", ctx_.rank,
                ": corrupted parent reduction, re-running (retry ",
                consecutive_retries_, ")");
    }
  }

  // ---- checkpoint / rollback recovery (fault plans, sim/fault.hpp) ----------
  /// True when a scheduled hard failure fires at this level.  The plan is
  /// replicated, so every rank returns the same answer without
  /// communication; each failure fires exactly once even across replays.
  bool take_rank_failure(int iteration) {
    const auto& failures = ctx_.faults.plan->rank_failures();
    bool fired = false;
    for (size_t i = 0; i < failures.size(); ++i) {
      if (fired_failures_[i] || failures[i].level != iteration) continue;
      fired_failures_[i] = true;
      fired = true;
      if (failures[i].rank == ctx_.rank) {
        ++ctx_.faults.stats.injected_failures;
        log_debug("bfs15d rank ", ctx_.rank,
                  ": injected hard failure at level ", iteration);
        // Model the crash: everything not in the checkpoint is lost.
        eh_curr_.reset();
        eh_visited_.reset();
        eh_next_.reset();
        eh_next_local_.reset();
        cand_.assign(k_, kNoVertex);
        parent_.assign(local_count_, kNoVertex);
        l_visited_.reset();
        l_curr_.reset();
        l_next_.reset();
        l_unvisited_ = 0;
      }
    }
    return fired;
  }

  void save_checkpoint(int iteration) {
    ckpt_.iteration = iteration;
    ckpt_.eh_curr = eh_curr_;
    ckpt_.eh_visited = eh_visited_;
    ckpt_.cand = cand_;
    ckpt_.parent = parent_;
    ckpt_.l_visited = l_visited_;
    ckpt_.l_curr = l_curr_;
    ckpt_.l_unvisited = l_unvisited_;
    ckpt_.iterations_recorded = stats_.iterations.size();
    ckpt_.bytes_sent = ctx_.stats.total_bytes_sent();
  }

  /// Roll back to the last checkpoint.  Collectively consistent: every rank
  /// takes this path in the same iteration (the pending flags were agreed on
  /// or the failure came from the replicated plan).
  void rollback(int& iteration) {
    obs::Span span("fault", "rollback", ckpt_.iteration);
    obs::instant("fault", "rollback_from", iteration);
    backoff_or_give_up("recovery");
    ctx_.faults.stats.resent_bytes +=
        ctx_.stats.total_bytes_sent() - ckpt_.bytes_sent;
    eh_curr_ = ckpt_.eh_curr;
    eh_visited_ = ckpt_.eh_visited;
    eh_next_.reset();
    eh_next_local_.reset();
    cand_ = ckpt_.cand;
    parent_ = ckpt_.parent;
    l_visited_ = ckpt_.l_visited;
    l_curr_ = ckpt_.l_curr;
    l_next_.reset();
    l_unvisited_ = ckpt_.l_unvisited;
    stats_.iterations.resize(ckpt_.iterations_recorded);
    iteration = ckpt_.iteration;
    log_debug("bfs15d rank ", ctx_.rank, ": rolled back to level checkpoint ",
              ckpt_.iteration, " (retry ", consecutive_retries_, ")");
  }

  /// Account one retry, sleep the capped exponential backoff, and throw
  /// FaultDetected once the retry budget is exhausted.
  void backoff_or_give_up(const char* what) {
    auto& fs = ctx_.faults.stats;
    ++consecutive_retries_;
    if (consecutive_retries_ > opts_.recovery.max_retries)
      throw sim::FaultDetected(std::string("fault: ") + what +
                               " retries exhausted after " +
                               std::to_string(opts_.recovery.max_retries) +
                               " attempts");
    ++fs.retries;
    in_recovery_ = true;
    double delay = sim::backoff_delay_s(opts_.recovery, consecutive_retries_);
    fs.backoff_s += delay;
    {
      obs::Span span("fault", "backoff", consecutive_retries_);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      obs::Tracer::advance_modeled(delay);
    }
  }

  /// A clean agreement round: if a recovery was in flight, the replay
  /// succeeded — count it and reset the consecutive-retry budget.
  void note_clean_pass() {
    if (!in_recovery_) return;
    ++ctx_.faults.stats.recovered;
    in_recovery_ = false;
    consecutive_retries_ = 0;
  }

  // ---- members --------------------------------------------------------------
  sim::RankContext& ctx_;
  const partition::Part15d& part_;
  Bfs15dOptions opts_;
  sim::MeshShape mesh_;
  int my_row_, my_col_;
  uint64_t k_, num_e_;
  Vertex root_;

  BitVector eh_curr_, eh_visited_, eh_next_, eh_next_local_;
  std::vector<Vertex> cand_;
  uint64_t local_count_ = 0;
  std::vector<Vertex> parent_;
  BitVector l_visited_, l_curr_, l_next_;
  uint64_t l_unvisited_ = 0;
  uint64_t num_l_global_ = 0;
  uint64_t act_l_ = 0, unv_l_global_ = 0;
  uint64_t act_h_ = 0, unv_h_global_ = 0;
  std::vector<uint64_t> row_targets_, col_sources_;
  std::vector<uint64_t> row_h_ids_, col_h_ids_, owned_h_ids_;
  /// Per-push-sub-iteration message dedup: at most one message per target.
  BitVector dedup_l_, dedup_eh_;
  std::unique_ptr<ChipEhPuller> puller_;
  double time_override_ = -1.0;
  double attributed_host_cpu_ = 0.0;
  ThreadPool pool_{1};  // intra-rank workers (serial on the 1-core harness)
  BfsStats stats_;

  // ---- fault recovery state -------------------------------------------------
  /// In-memory per-rank level checkpoint: everything rollback() restores.
  /// eh_next_ / eh_next_local_ / l_next_ / dedup bitmaps are always empty at
  /// checkpoint boundaries, so they are reset rather than saved.
  struct Checkpoint {
    int iteration = 0;
    BitVector eh_curr, eh_visited;
    std::vector<Vertex> cand, parent;
    BitVector l_visited, l_curr;
    uint64_t l_unvisited = 0;
    size_t iterations_recorded = 0;
    uint64_t bytes_sent = 0;
  };
  bool resilient_ = false;  ///< recover policy + plan installed
  Checkpoint ckpt_;
  std::vector<bool> fired_failures_;  ///< one-shot latch per planned failure
  int consecutive_retries_ = 0;
  bool in_recovery_ = false;
};

}  // namespace

Bfs15dResult bfs15d_run(sim::RankContext& ctx, const partition::Part15d& part,
                        Vertex root, const Bfs15dOptions& options) {
  Engine engine(ctx, part, root, options);
  return engine.run();
}

}  // namespace sunbfs::bfs
