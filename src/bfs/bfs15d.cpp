#include "bfs/bfs15d.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "bfs/gathered_frontier.hpp"
#include "bfs/messages.hpp"
#include "bfs/workspace.hpp"
#include "obs/trace.hpp"
#include "bfs/segmenting.hpp"
#include "bfs/vertex_cut.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/prefix.hpp"
#include "support/timer.hpp"

namespace sunbfs::bfs {

using graph::Vertex;
using graph::kNoVertex;
using partition::Subgraph;

namespace {

/// Number of set bits of `bv` in [lo, hi).
uint64_t count_range(const BitVector& bv, uint64_t lo, uint64_t hi) {
  uint64_t n = 0;
  for (uint64_t i = lo; i < hi; ++i)
    if (bv.get(i)) ++n;
  return n;
}

/// Lock-free fetch-max on a parent/candidate slot.  Every concurrent writer
/// records its value; the slot ends at the maximum, which is independent of
/// scheduling — the keystone of thread-count-independent BFS output (all
/// candidate values written to one slot within a phase share one id space,
/// so the maximum is well-defined).
void store_max(Vertex& slot, Vertex v) {
  std::atomic_ref<Vertex> a(slot);
  Vertex cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

class Engine {
 public:
  Engine(sim::RankContext& ctx, const partition::Part15d& part, Vertex root,
         const Bfs15dOptions& opts)
      : ctx_(ctx),
        part_(part),
        opts_(opts),
        mesh_(ctx.mesh),
        my_row_(ctx.row_index()),
        my_col_(ctx.col_index()),
        k_(part.cls.num_eh()),
        num_e_(part.cls.num_e()),
        root_(root),
        owned_ws_(opts.workspace
                      ? nullptr
                      : std::make_unique<BfsWorkspace>(resolve_threads_per_rank(
                            opts.threads_per_rank, size_t(ctx.nranks())))),
        ws_(opts.workspace ? *opts.workspace : *owned_ws_),
        pool_(ws_.pool()) {
    SUNBFS_CHECK(root >= 0 && uint64_t(root) < part.space.total);
    if (opts_.pull_kernel != Bfs15dOptions::EhPullKernel::Host)
      SUNBFS_CHECK_MSG(opts_.chip != nullptr,
                       "chip-executed pull kernel requires a chip");
    eh_curr_.resize(k_);
    eh_visited_.resize(k_);
    eh_next_.resize(k_);
    eh_next_local_.resize(k_);
    cand_.assign(k_, kNoVertex);
    local_count_ = part.local_count;
    parent_.assign(local_count_, kNoVertex);
    l_visited_.resize(local_count_);
    l_curr_.resize(local_count_);
    l_next_.resize(local_count_);
    num_l_global_ = part.space.total - k_;
    dedup_l_.resize(part.space.total);
    dedup_eh_.resize(k_);
    push_cand_.assign(part.space.total, kNoVertex);
    push_cand_eh_.assign(k_, kNoVertex);
    // Compact 8-byte messages index vertices with 32 bits.
    SUNBFS_CHECK(part.space.max_count() < (uint64_t(1) << 32));
    SUNBFS_CHECK(k_ < (uint64_t(1) << 32));
    l_unvisited_ = 0;
    for (uint64_t l = 0; l < local_count_; ++l)
      if (!part.local_is_eh.get(l)) ++l_unvisited_;
    // EH ids owned by ranks in this rank's mesh row (pull destinations) and
    // column (push sources).  Ownership is cyclic, so these are strided id
    // sets; materialize them once (|EH| is small by construction).  The H
    // subsets drive the scoped delegation sync: H frontier/visited bits are
    // only kept valid on the owner's row and column ("delegated on rows and
    // columns", §4.1), while E bits are kept valid globally.
    for (uint64_t kid = 0; kid < k_; ++kid) {
      int owner = part.eh_space.owner(graph::Vertex(kid));
      if (mesh_.row_of(owner) == my_row_) {
        row_targets_.push_back(kid);
        if (kid >= num_e_) row_h_ids_.push_back(kid);
      }
      if (mesh_.col_of(owner) == my_col_) {
        col_sources_.push_back(kid);
        if (kid >= num_e_) col_h_ids_.push_back(kid);
      }
      if (owner == ctx.rank && kid >= num_e_) owned_h_ids_.push_back(kid);
    }
    // Prime the shared staging pools to their worst-case round shapes so no
    // exchange after construction ever grows a buffer (comm.staging_allocs
    // stays flat after the warmup root; docs/PERF.md).  Bounds: a push round
    // stages at most one message per dedup'd target — a global L vertex
    // (space.total) or an EH id (k_) — and a receiver gets at most one
    // message per sender per target it is responsible for.
    {
      ws_.compact().set_encoding(opts_.encoding);
      ws_.visit_down().set_encoding(opts_.encoding);
      ws_.visit_along().set_encoding(opts_.encoding);
      ws_.frontier().set_encoding(opts_.encoding);
      const size_t nt = pool_.size();
      const size_t ranks = size_t(mesh_.ranks());
      const size_t rows = size_t(mesh_.rows), cols = size_t(mesh_.cols);
      const size_t total = size_t(part_.space.total);
      const size_t local = size_t(local_count_);
      const size_t kmsgs = size_t(k_);
      size_t row_total = 0;  // L vertices owned by this rank's mesh row
      for (int c = 0; c < mesh_.cols; ++c)
        row_total += size_t(part_.space.count(mesh_.rank_of(my_row_, c)));
      auto lane = [nt](size_t cap) { return cap / nt + 65; };
      // compact(): H2L push (cols parts, <= total), L2H push (cols parts,
      // <= k_), non-forwarded L2L (ranks parts, <= total).
      const size_t c_send = std::max(total, kmsgs);
      ws_.compact().prime(ranks, nt, lane(c_send), c_send,
                          std::max(ranks * local, cols * kmsgs));
      // visit_down(): L2L forwarding hop 1 (rows parts, <= total) and the
      // parent-reduction delivery (ranks parts, <= k_ + padding).
      const size_t d_send = std::max(total, kmsgs);
      ws_.visit_down().prime(ranks, nt, lane(d_send), d_send,
                             std::max(rows * row_total, kmsgs + ranks));
      // visit_along(): L2L forwarding hop 2 re-sorts hop 1's receipts.
      const size_t a_send = rows * row_total;
      ws_.visit_along().prime(cols, nt, lane(a_send), a_send, ranks * local);
      // Staged exchange plan for the two world-wide exchanges (non-forwarded
      // L2L, delayed-parent delivery); the row/column sub-exchanges above
      // already are a manual mesh split and always run direct.
      world_plan_ = sim::ExchangePlan::build(opts_.exchange.backend,
                                             mesh_.ranks(), mesh_);
      ws_.compact().prime_staged(world_plan_, ctx_.rank, nt, lane(c_send),
                                 c_send);
      ws_.visit_down().prime_staged(world_plan_, ctx_.rank, nt, lane(d_send),
                                    d_send);
    }
  }

  Bfs15dResult run() {
    obs::Span run_span("bfs", "bfs15d");
    ThreadCpuTimer run_cpu;
    const double comm_start = ctx_.stats.total_modeled_s();

    resilient_ = ctx_.faults.recovering();
    if (resilient_) {
      SUNBFS_CHECK(opts_.recovery.checkpoint_interval >= 1);
      fired_failures_.assign(ctx_.faults.plan->rank_failures().size(), false);
    }

    seed_root();
    if (resilient_) save_checkpoint(0);
    int iteration = 0;
    for (;;) {
      ++iteration;
      obs::Span level_span("bfs", "level", iteration);
      // A scheduled hard failure is in the (replicated) plan, so every rank
      // sees it fire at the same level without an agreement round: the
      // victim's volatile state is wiped and everyone rolls back together.
      if (resilient_ && take_rank_failure(iteration)) {
        rollback(iteration);
        continue;
      }
      // Without the recover policy a scheduled failure simply kills the rank.
      if (!resilient_ && ctx_.faults.active())
        for (const auto& f : ctx_.faults.plan->rank_failures())
          if (f.rank == ctx_.rank && f.level == iteration)
            throw sim::RankFailure(f.rank, f.level);
      IterationRecord rec;
      rec.iteration = iteration;
      rec.active_e = count_range(eh_curr_, 0, num_e_);  // E bits are global
      // One fused collective carries the L counters and the owner-counted H
      // counters (H bits are only scope-valid, so owners count them).
      refresh_counts(l_curr_.count());
      rec.active_h = act_h_;
      rec.active_l = act_l_;
      const bool frontier_empty =
          rec.active_e + rec.active_h + rec.active_l == 0;

      if (!frontier_empty) {
        rec.bottom_up[int(Subgraph::EH2EH)] = decide(Subgraph::EH2EH, rec);
        sub_eh2eh(rec.bottom_up[int(Subgraph::EH2EH)]);

        rec.bottom_up[int(Subgraph::E2L)] = decide(Subgraph::E2L, rec);
        sub_e2l(rec.bottom_up[int(Subgraph::E2L)]);

        // L2E only updates E bits, which no later sub-iteration of this
        // iteration reads; its sync is folded into L2H's (one fewer
        // mesh-wide union per iteration).
        rec.bottom_up[int(Subgraph::L2E)] = decide(Subgraph::L2E, rec);
        sub_l2e(rec.bottom_up[int(Subgraph::L2E)]);

        // Latest-unvisited refresh (§4.2) before the direction-sensitive
        // remote sub-iterations; earlier sub-iterations changed the
        // unvisited counts (l_curr_ is immutable within the iteration, so
        // act is stable).
        refresh_counts(l_curr_.count());
        rec.bottom_up[int(Subgraph::H2L)] = decide(Subgraph::H2L, rec);
        sub_h2l(rec.bottom_up[int(Subgraph::H2L)]);

        rec.bottom_up[int(Subgraph::L2H)] = decide(Subgraph::L2H, rec);
        sub_l2h(rec.bottom_up[int(Subgraph::L2H)]);

        rec.bottom_up[int(Subgraph::L2L)] = decide(Subgraph::L2L, rec);
        sub_l2l(rec.bottom_up[int(Subgraph::L2L)]);
      }

      // Globally consistent detection point: any rank that dropped a
      // corrupted contribution this iteration forces everyone back to the
      // last checkpoint before the broken state is committed.  A corruption
      // of this agreement collective itself is dropped identically on every
      // rank, so the local re-check stays replicated too.
      if (resilient_) {
        bool faulty = ctx_.world.allreduce_or(ctx_.faults.take_pending());
        faulty = ctx_.faults.take_pending() || faulty;
        if (faulty) {
          rollback(iteration);
          continue;
        }
        note_clean_pass();
      }
      if (frontier_empty) break;

      stats_.iterations.push_back(rec);
      // Advance the frontier.
      eh_curr_ = eh_next_;
      eh_next_.reset();
      std::swap(l_curr_, l_next_);
      l_next_.reset();
      if (!opts_.delayed_parent_reduction) reduce_parents_checked();
      if (resilient_ && iteration % opts_.recovery.checkpoint_interval == 0)
        save_checkpoint(iteration);
    }
    stats_.num_iterations = iteration - 1;

    if (opts_.delayed_parent_reduction) reduce_parents_checked();

    // "Other" is everything not attributed to a sub-iteration or to the
    // parent reduction: heuristics, frontier swaps, termination checks.
    stats_.other_cpu_s =
        std::max(0.0, run_cpu.seconds() - attributed_host_cpu_);
    double attributed_comm = stats_.reduce_comm_modeled_s;
    for (double c : stats_.comm_modeled_s) attributed_comm += c;
    stats_.other_comm_modeled_s = std::max(
        0.0, ctx_.stats.total_modeled_s() - comm_start - attributed_comm);

    stats_.comm = ctx_.stats;
    Bfs15dResult result;
    result.parent = std::move(parent_);
    result.stats = std::move(stats_);
    return result;
  }

 private:
  // ---- setup -------------------------------------------------------------
  void seed_root() {
    uint64_t k = part_.cls.eh_of(root_);
    if (k != partition::EhlTable::kNotEh) {
      eh_visited_.set(k);
      eh_curr_.set(k);
      cand_[k] = root_;  // replicated: every rank records the self-parent
    } else if (part_.space.owner(root_) == ctx_.rank) {
      uint64_t l = part_.space.to_local(ctx_.rank, root_);
      parent_[l] = root_;
      l_visited_.set(l);
      l_curr_.set(l);
      --l_unvisited_;
    }
  }

  // ---- direction selection (§4.2) ----------------------------------------
  // Every input is either replicated (EH bitmaps) or allreduced (L counts),
  // so all ranks always reach the same decision — required, because the two
  // directions of a sub-iteration issue different collectives.
  bool decide(Subgraph s, const IterationRecord& rec) const {
    auto frac = [](uint64_t a, uint64_t b) {
      return b == 0 ? 0.0 : double(a) / double(b);
    };
    if (!opts_.sub_iteration_direction) {
      double r_all = frac(rec.active_e + rec.active_h + rec.active_l,
                          part_.space.total);
      return r_all > opts_.global_pull_ratio;
    }
    double r_e = frac(rec.active_e, num_e_);
    double r_h = frac(rec.active_h, k_ - num_e_);
    double r_l = frac(rec.active_l, num_l_global_);
    switch (s) {
      case Subgraph::EH2EH:
        return frac(rec.active_e + rec.active_h, k_) > opts_.local_pull_ratio;
      case Subgraph::E2L:
        return r_e > opts_.local_pull_ratio;
      case Subgraph::L2E:
        return r_l > opts_.local_pull_ratio;
      case Subgraph::H2L:
        return r_h > opts_.remote_pull_factor *
                         frac(unv_l_global_, num_l_global_);
      case Subgraph::L2H:
        return r_l > opts_.remote_pull_factor *
                         frac(unv_h_global_, k_ - num_e_);
      case Subgraph::L2L:
        return r_l > opts_.remote_pull_factor *
                         frac(unv_l_global_, num_l_global_);
    }
    return false;
  }

  /// One allreduce refreshing the global L counters and the global H
  /// counters (each rank contributes its owned H bits, which are always
  /// within its validity scope).
  void refresh_counts(uint64_t local_active_l) {
    struct Counts {
      uint64_t act_l, unv_l, act_h, unv_h;
    };
    uint64_t act_h = 0, unv_h = 0;
    for (uint64_t h : owned_h_ids_) {
      if (eh_curr_.get(h)) ++act_h;
      if (!eh_visited_.get(h)) ++unv_h;
    }
    Counts c = ctx_.world.allreduce(
        Counts{local_active_l, l_unvisited_, act_h, unv_h},
        [](Counts a, Counts b) {
          return Counts{a.act_l + b.act_l, a.unv_l + b.unv_l,
                        a.act_h + b.act_h, a.unv_h + b.unv_h};
        });
    act_l_ = c.act_l;
    unv_l_global_ = c.unv_l;
    act_h_ = c.act_h;
    unv_h_global_ = c.unv_h;
  }

  // ---- shared helpers -----------------------------------------------------
  /// Attribute a sub-iteration's compute + communication.  If the body sets
  /// time_override_ >= 0 (chip kernels), that value replaces measured CPU.
  template <typename Fn>
  void timed_sub(Subgraph s, bool bottom_up, Fn&& fn) {
    obs::Span span("bfs", partition::subgraph_name(s), bottom_up ? 1 : 0);
    double comm0 = ctx_.stats.total_modeled_s();
    time_override_ = -1.0;
    ThreadCpuTimer cpu;
    fn();
    attributed_host_cpu_ += cpu.seconds();
    double t = time_override_ >= 0 ? time_override_ : cpu.seconds();
    // The attributed compute is modeled time too: the collectives inside
    // fn() advanced the rank's modeled clock themselves, compute does it
    // here, so the span covers both on the modeled timeline.
    obs::Tracer::advance_modeled(t);
    auto& arr = bottom_up ? stats_.pull_cpu_s : stats_.push_cpu_s;
    arr[size_t(int(s))] += t;
    stats_.comm_modeled_s[size_t(int(s))] +=
        ctx_.stats.total_modeled_s() - comm0;
  }

  /// Parallel loop over [0, n) in contiguous blocks: fn(lane, lo, hi), where
  /// `lane` < pool_.size() is a stable single-writer lane id for staging
  /// pushes (A2aStaging lanes are single-writer by contract).
  template <typename Fn>
  void par_ranges(size_t n, Fn&& fn) {
    if (n == 0) return;
    size_t parts = std::min(n, pool_.size());
    pool_.run_chunks(parts, [&](size_t p) {
      size_t lo = n * p / parts;
      size_t hi = n * (p + 1) / parts;
      if (lo < hi) fn(p, lo, hi);
    });
  }

  /// Mesh-aware union of locally discovered EH visits, honoring the
  /// delegation scopes of §4.1:
  ///   1. column allreduce of the full bitmap (E and H column unions);
  ///   2. row allreduce of the E prefix (E becomes globally valid — global
  ///      delegation) plus the packed bits of H owned by this row (each H
  ///      becomes valid on its owner's row);
  ///   3. column allreduce of the packed bits of H owned by this column
  ///      (each H becomes valid on its owner's column).
  /// After this an H bit is correct exactly on its owner's row and column —
  /// every rank that stores arcs touching it — while off-scope H bits may
  /// be stale.  The row/column steps move |E| + |H|/C + |H|/R bits instead
  /// of |E| + |H|: the communication saving H delegation exists for.
  void sync_eh() {
    if (k_ == 0) return;  // no delegated vertices at all (pure-1D config)
    std::span<uint64_t> words(eh_next_local_.data(),
                              eh_next_local_.word_count());
    auto lor = [](uint64_t a, uint64_t b) { return a | b; };
    ctx_.col.allreduce_inplace(words, lor);
    // Row step: one collective carrying [E prefix words | packed row-H bits].
    if (ctx_.row.size() > 1) {
      size_t e_words = (num_e_ + 63) / 64;
      std::vector<uint64_t> buf(e_words + (row_h_ids_.size() + 63) / 64, 0);
      std::copy_n(eh_next_local_.data(), e_words, buf.data());
      pack_ids(row_h_ids_, buf.data() + e_words);
      ctx_.row.allreduce_inplace(std::span<uint64_t>(buf), lor);
      std::copy_n(buf.data(), e_words, eh_next_local_.data());
      unpack_ids(row_h_ids_, buf.data() + e_words);
    }
    // Column step for column-owned H bits (owner now has the full union).
    if (ctx_.col.size() > 1 && !col_h_ids_.empty()) {
      std::vector<uint64_t> buf((col_h_ids_.size() + 63) / 64, 0);
      pack_ids(col_h_ids_, buf.data());
      ctx_.col.allreduce_inplace(std::span<uint64_t>(buf), lor);
      unpack_ids(col_h_ids_, buf.data());
    }
    eh_visited_ |= eh_next_local_;
    eh_next_ |= eh_next_local_;
    eh_next_local_.reset();
  }

  void pack_ids(const std::vector<uint64_t>& ids, uint64_t* packed) {
    for (size_t i = 0; i < ids.size(); ++i)
      if (eh_next_local_.get(ids[i]))
        packed[i >> 6] |= uint64_t(1) << (i & 63);
  }

  void unpack_ids(const std::vector<uint64_t>& ids, const uint64_t* packed) {
    for (size_t i = 0; i < ids.size(); ++i)
      if ((packed[i >> 6] >> (i & 63)) & 1) eh_next_local_.set(ids[i]);
  }

  // ---- thread-safe visit primitives ---------------------------------------
  // The determinism scheme: during a (possibly threaded) phase, gates read
  // only *stable* visited bitmaps — l_visited_ moves in commit_l_claims()
  // and eh_visited_ in sync_eh(), both serial epilogues, never mid-phase.
  // Every candidate parent is recorded with an unconditional fetch-max and
  // claims are atomic bit sets, so the set of claimed vertices and the final
  // parent values depend only on the (deterministic) candidate sets, not on
  // thread interleaving: output is bit-identical at every threads_per_rank.

  /// Record an L visit claim; the claim is committed by commit_l_claims().
  void visit_local_l_mt(uint64_t lloc, Vertex parent) {
    if (l_visited_.atomic_get(lloc)) return;
    store_max(parent_[lloc], parent);
    l_next_.atomic_set(lloc);
  }

  /// Record an EH visit candidate; committed (and scoped-synced) by sync_eh().
  void visit_eh_mt(uint64_t k, Vertex parent) {
    if (eh_visited_.atomic_get(k)) return;
    store_max(cand_[k], parent);
    eh_next_local_.atomic_set(k);
  }

  /// Serial epilogue of every L-claiming sub-iteration: fold the claims
  /// accumulated in l_next_ into l_visited_ and the unvisited counter.
  /// Idempotent across sub-iterations (l_next_ accumulates over the whole
  /// level; only the not-yet-visited delta is counted).
  void commit_l_claims() {
    uint64_t newly = 0;
    for (size_t w = 0; w < l_next_.word_count(); ++w)
      newly += uint64_t(
          __builtin_popcountll(l_next_.word(w) & ~l_visited_.word(w)));
    SUNBFS_ASSERT(newly <= l_unvisited_);
    l_unvisited_ -= newly;
    l_visited_ |= l_next_;
  }

  Vertex local_to_global(uint64_t lloc) const {
    return part_.space.to_global(ctx_.rank, lloc);
  }

  // ---- EH2EH (§4.1/4.3) ---------------------------------------------------
  void sub_eh2eh(bool bottom_up) {
    timed_sub(Subgraph::EH2EH, bottom_up, [&] {
      if (!bottom_up) {
        // Top-down with edge-aware vertex cut (§5).
        std::vector<uint64_t> active;
        for (uint64_t x : col_sources_)
          if (eh_curr_.get(x) && part_.eh2eh.degree(x) > 0)
            active.push_back(x);
        auto body = [&](size_t i) {
          uint64_t x = active[i];
          Vertex px = part_.cls.eh_to_global(x);
          for (Vertex y : part_.eh2eh.neighbors(x))
            visit_eh_mt(uint64_t(y), px);
        };
        if (opts_.edge_aware_vertex_cut) {
          edge_aware_foreach(
              active,
              [&](uint64_t x) { return part_.eh2eh.degree(x); }, pool_, body);
        } else {
          pool_.parallel_for(0, active.size(), [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) body(i);
          });
        }
      } else if (opts_.pull_kernel == Bfs15dOptions::EhPullKernel::Host) {
        // Destination-partitioned: each target y is scanned by exactly one
        // worker, preserving the serial early exit.
        pool_.parallel_for(0, row_targets_.size(), [&](size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            uint64_t y = row_targets_[i];
            if (eh_visited_.get(y) || eh_next_local_.atomic_get(y)) continue;
            for (Vertex x : part_.eh2eh_rev.neighbors(y)) {
              if (eh_curr_.get(uint64_t(x))) {
                visit_eh_mt(y, part_.cls.eh_to_global(uint64_t(x)));
                break;  // early exit
              }
            }
          }
        });
      } else {
        // Chip-executed pull (GLD baseline or segmented RMA kernel, §4.3).
        if (!puller_)
          puller_ = std::make_unique<ChipEhPuller>(*opts_.chip, part_, mesh_,
                                                   my_row_);
        bool rma = opts_.pull_kernel == Bfs15dOptions::EhPullKernel::ChipRma;
        auto out = puller_->pull(eh_curr_, eh_visited_, cand_, rma);
        for (const auto& v : out.visits)
          visit_eh_mt(v.y, part_.cls.eh_to_global(v.x));
        time_override_ = out.report.modeled_seconds;
      }
      sync_eh();
    });
  }

  // ---- E2L / L2E (no communication: E is globally delegated) --------------
  void sub_e2l(bool bottom_up) {
    timed_sub(Subgraph::E2L, bottom_up, [&] {
      if (!bottom_up) {
        pool_.parallel_for(0, num_e_, [&](size_t lo, size_t hi) {
          for (uint64_t e = lo; e < hi; ++e) {
            if (!eh_curr_.get(e) || part_.e2l.degree(e) == 0) continue;
            Vertex pe = part_.cls.eh_to_global(e);
            for (Vertex lloc : part_.e2l.neighbors(e))
              visit_local_l_mt(uint64_t(lloc), pe);
          }
        });
      } else {
        pool_.parallel_for(0, local_count_, [&](size_t lo, size_t hi) {
          for (uint64_t lloc = lo; lloc < hi; ++lloc) {
            if (l_visited_.get(lloc) || part_.local_is_eh.get(lloc)) continue;
            for (Vertex e : part_.l2e.neighbors(lloc)) {
              if (eh_curr_.get(uint64_t(e))) {
                visit_local_l_mt(lloc, part_.cls.eh_to_global(uint64_t(e)));
                break;
              }
            }
          }
        });
      }
      commit_l_claims();
    });
  }

  void sub_l2e(bool bottom_up) {
    timed_sub(Subgraph::L2E, bottom_up, [&] {
      if (!bottom_up) {
        pool_.parallel_for(0, l_curr_.word_count(), [&](size_t lo, size_t hi) {
          l_curr_.for_each_set_words(lo, hi, [&](size_t lloc) {
            Vertex pl = local_to_global(lloc);
            for (Vertex e : part_.l2e.neighbors(lloc))
              visit_eh_mt(uint64_t(e), pl);
          });
        });
      } else {
        pool_.parallel_for(0, num_e_, [&](size_t lo, size_t hi) {
          for (uint64_t e = lo; e < hi; ++e) {
            if (eh_visited_.get(e) || eh_next_local_.atomic_get(e)) continue;
            for (Vertex lloc : part_.e2l.neighbors(e)) {
              if (l_curr_.get(uint64_t(lloc))) {
                visit_eh_mt(e, local_to_global(uint64_t(lloc)));
                break;
              }
            }
          }
        });
      }
      // No sync here: L2E only marks E vertices, which nothing reads before
      // L2H's sync covers them.
    });
  }

  // ---- H2L (push messages intra-row) ---------------------------------------
  void sub_h2l(bool bottom_up) {
    timed_sub(Subgraph::H2L, bottom_up, [&] {
      auto& staging = ws_.compact();
      staging.begin(size_t(mesh_.cols), pool_.size());
      if (!bottom_up) {
        // Push with per-destination dedup: at most one message per target
        // vertex per rank, whatever the hub fan-in (a standard trick of
        // record BFS implementations; any winning parent is valid).
        // Two-phase emission so the staged message per target is the *max*
        // candidate hub — thread-count independent — rather than whichever
        // hub got there first.
        dedup_l_.reset();
        pool_.parallel_for(num_e_, k_, [&](size_t lo, size_t hi) {
          for (uint64_t h = lo; h < hi; ++h) {
            if (!eh_curr_.get(h) || part_.h2l.degree(h) == 0) continue;
            for (Vertex l : part_.h2l.neighbors(h)) {
              store_max(push_cand_[uint64_t(l)], Vertex(h));
              dedup_l_.atomic_set(uint64_t(l));
            }
          }
        });
        par_ranges(dedup_l_.word_count(), [&](size_t lane, size_t lo,
                                              size_t hi) {
          dedup_l_.for_each_set_words(lo, hi, [&](size_t l) {
            Vertex lv = Vertex(l);
            int owner = part_.space.owner(lv);
            staging.push(
                lane, size_t(mesh_.col_of(owner)),
                CompactMsg{uint32_t(part_.space.to_local(owner, lv)),
                           uint32_t(push_cand_[l])});
            push_cand_[l] = kNoVertex;  // leave the pool clean for next use
          });
        });
      } else {
        // Pull at the storage ranks over the destination-major mirror
        // ("stored by the destination index"): gather the row's visited
        // bitmap, scan unvisited destinations, early-exit on the first
        // active h (whose bits are valid here — this rank is in h's
        // column), and send one message per newly found vertex instead of
        // one per edge.
        GatheredFrontier row_visited =
            GatheredFrontier::gather(ctx_.row, l_visited_, ws_.frontier());
        par_ranges(part_.h2l_by_l.num_rows(), [&](size_t lane, size_t lo,
                                                  size_t hi) {
          size_t col = upper_offset_index(part_.row_l_offsets, uint64_t(lo));
          for (uint64_t rl = lo; rl < hi; ++rl) {
            if (part_.h2l_by_l.degree(rl) == 0) continue;
            while (part_.row_l_offsets[col + 1] <= rl) ++col;
            uint64_t lloc = rl - part_.row_l_offsets[col];
            if (row_visited.get(int(col), lloc)) continue;
            for (Vertex h : part_.h2l_by_l.neighbors(rl)) {
              if (eh_curr_.get(uint64_t(h))) {
                staging.push(lane, col,
                             CompactMsg{uint32_t(lloc), uint32_t(h)});
                break;  // early exit: one message per vertex
              }
            }
          }
        });
      }
      auto got = staging.exchange(ctx_.row, pool_);
      pool_.parallel_for(0, got.size(), [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
          visit_local_l_mt(got[i].dst, part_.cls.eh_to_global(got[i].src));
      });
      commit_l_claims();
    });
  }

  // ---- L2H -----------------------------------------------------------------
  void sub_l2h(bool bottom_up) {
    timed_sub(Subgraph::L2H, bottom_up, [&] {
      if (!bottom_up) {
        // Push to h's column delegate in this row (intra-row message).
        // Two-phase emission as in H2L push; the staged parent per h is the
        // max sender-local lloc (monotone with the global id for one rank).
        dedup_eh_.reset();
        auto& staging = ws_.compact();
        staging.begin(size_t(mesh_.cols), pool_.size());
        pool_.parallel_for(0, l_curr_.word_count(), [&](size_t lo, size_t hi) {
          l_curr_.for_each_set_words(lo, hi, [&](size_t lloc) {
            for (Vertex h : part_.l2h.neighbors(lloc)) {
              if (eh_visited_.get(uint64_t(h))) continue;
              store_max(push_cand_eh_[uint64_t(h)], Vertex(lloc));
              dedup_eh_.atomic_set(uint64_t(h));
            }
          });
        });
        par_ranges(dedup_eh_.word_count(), [&](size_t lane, size_t lo,
                                               size_t hi) {
          dedup_eh_.for_each_set_words(lo, hi, [&](size_t h) {
            int col = mesh_.col_of(part_.eh_space.owner(Vertex(h)));
            staging.push(lane, size_t(col),
                         CompactMsg{uint32_t(h),
                                    uint32_t(push_cand_eh_[h])});
            push_cand_eh_[h] = kNoVertex;
          });
        });
        auto got = staging.exchange(ctx_.row, pool_);
        const auto& src_off = staging.src_offsets();
        pool_.parallel_for(0, size_t(mesh_.cols), [&](size_t lo, size_t hi) {
          for (size_t c = lo; c < hi; ++c) {
            int src_rank = mesh_.rank_of(my_row_, int(c));
            for (size_t i = src_off[c]; i < src_off[c + 1]; ++i)
              visit_eh_mt(uint64_t(got[i].dst),
                          part_.space.to_global(src_rank, got[i].src));
          }
        });
      } else {
        // Pull at the H2L storage ranks: L frontier gathered along the row
        // (the allgather component of Figure 11).
        GatheredFrontier row_frontier =
            GatheredFrontier::gather(ctx_.row, l_curr_, ws_.frontier());
        pool_.parallel_for(num_e_, k_, [&](size_t klo, size_t khi) {
          for (uint64_t h = klo; h < khi; ++h) {
            if (eh_visited_.get(h) || eh_next_local_.atomic_get(h)) continue;
            for (Vertex l : part_.h2l.neighbors(h)) {
              int owner = part_.space.owner(l);
              uint64_t lloc = uint64_t(l) - part_.space.begin(owner);
              if (row_frontier.get(mesh_.col_of(owner), lloc)) {
                visit_eh_mt(h, l);
                break;
              }
            }
          }
        });
      }
      sync_eh();
    });
  }

  // ---- L2L (classic 1D messaging) -------------------------------------------
  void sub_l2l(bool bottom_up) {
    timed_sub(Subgraph::L2L, bottom_up, [&] {
      if (!bottom_up) {
        if (opts_.l2l_forwarding) {
          // Stage 1: sort outgoing messages by the forwarding rank — the
          // intersection of this rank's column and the destination's row —
          // and exchange along the column.
          dedup_l_.reset();
          auto& down = ws_.visit_down();
          down.begin(size_t(mesh_.rows), pool_.size());
          pool_.parallel_for(0, l_curr_.word_count(),
                             [&](size_t lo, size_t hi) {
            l_curr_.for_each_set_words(lo, hi, [&](size_t lloc) {
              Vertex pl = local_to_global(lloc);
              for (Vertex l2 : part_.l2l.neighbors(lloc)) {
                int owner = part_.space.owner(l2);
                if (owner == ctx_.rank) {
                  visit_local_l_mt(part_.space.to_local(owner, l2), pl);
                } else {
                  store_max(push_cand_[uint64_t(l2)], pl);
                  dedup_l_.atomic_set(uint64_t(l2));
                }
              }
            });
          });
          par_ranges(dedup_l_.word_count(), [&](size_t lane, size_t lo,
                                                size_t hi) {
            dedup_l_.for_each_set_words(lo, hi, [&](size_t l2) {
              int owner = part_.space.owner(Vertex(l2));
              down.push(lane, size_t(mesh_.row_of(owner)),
                        VisitMsg{Vertex(l2), push_cand_[l2]});
              push_cand_[l2] = kNoVertex;
            });
          });
          auto staged = down.exchange(ctx_.col, pool_);
          // Stage 2: the forwarder re-sorts by destination column (the
          // OCS-RMA use case "forwarding in global messaging") and sends
          // along its row.
          auto& along = ws_.visit_along();
          along.begin(size_t(mesh_.cols), pool_.size());
          par_ranges(staged.size(), [&](size_t lane, size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i) {
              const VisitMsg& m = staged[i];
              int owner = part_.space.owner(m.dst);
              SUNBFS_ASSERT(mesh_.row_of(owner) == my_row_);
              along.push(lane, size_t(mesh_.col_of(owner)), m);
            }
          });
          auto got = along.exchange(ctx_.row, pool_);
          pool_.parallel_for(0, got.size(), [&](size_t lo, size_t hi) {
            for (size_t i = lo; i < hi; ++i)
              visit_local_l_mt(part_.space.to_local(ctx_.rank, got[i].dst),
                               got[i].parent);
          });
        } else {
          dedup_l_.reset();
          auto& staging = ws_.compact();
          staging.begin(size_t(mesh_.ranks()), pool_.size(), world_plan_,
                        ctx_.rank);
          pool_.parallel_for(0, l_curr_.word_count(),
                             [&](size_t lo, size_t hi) {
            l_curr_.for_each_set_words(lo, hi, [&](size_t lloc) {
              Vertex pl = local_to_global(lloc);
              for (Vertex l2 : part_.l2l.neighbors(lloc)) {
                int owner = part_.space.owner(l2);
                if (owner == ctx_.rank) {
                  visit_local_l_mt(part_.space.to_local(owner, l2), pl);
                } else {
                  // Candidate = sender-local lloc (what the compact message
                  // carries); monotone with the sender's global id.
                  store_max(push_cand_[uint64_t(l2)], Vertex(lloc));
                  dedup_l_.atomic_set(uint64_t(l2));
                }
              }
            });
          });
          par_ranges(dedup_l_.word_count(), [&](size_t lane, size_t lo,
                                                size_t hi) {
            dedup_l_.for_each_set_words(lo, hi, [&](size_t l2) {
              Vertex lv = Vertex(l2);
              int owner = part_.space.owner(lv);
              staging.push(
                  lane, size_t(owner),
                  CompactMsg{uint32_t(part_.space.to_local(owner, lv)),
                             uint32_t(push_cand_[l2])});
              push_cand_[l2] = kNoVertex;
            });
          });
          auto got = staging.exchange(ctx_.world, pool_);
          const auto& src_off = staging.src_offsets();
          pool_.parallel_for(0, size_t(ctx_.nranks()),
                             [&](size_t lo, size_t hi) {
            for (size_t src = lo; src < hi; ++src)
              for (size_t i = src_off[src]; i < src_off[src + 1]; ++i)
                visit_local_l_mt(
                    got[i].dst,
                    part_.space.to_global(int(src), got[i].src));
          });
        }
      } else {
        GatheredFrontier world_frontier =
            GatheredFrontier::gather(ctx_.world, l_curr_, ws_.frontier());
        pool_.parallel_for(0, local_count_, [&](size_t lo, size_t hi) {
          for (uint64_t lloc = lo; lloc < hi; ++lloc) {
            if (l_visited_.get(lloc) || part_.local_is_eh.get(lloc)) continue;
            for (Vertex l2 : part_.l2l.neighbors(lloc)) {
              int owner = part_.space.owner(l2);
              uint64_t l2loc = uint64_t(l2) - part_.space.begin(owner);
              if (world_frontier.get(owner, l2loc)) {
                visit_local_l_mt(lloc, l2);
                break;
              }
            }
          }
        });
      }
      commit_l_claims();
    });
  }

  // ---- delayed reduction of delegated parents (§5) --------------------------
  void reduce_parents() {
    obs::Span span("bfs", "reduce_parents");
    double comm0 = ctx_.stats.total_modeled_s();
    ThreadCpuTimer cpu;
    uint64_t block = part_.eh_space.max_count();
    std::vector<Vertex> contrib(block * uint64_t(ctx_.nranks()), kNoVertex);
    pool_.parallel_for(0, size_t(ctx_.nranks()), [&](size_t lo, size_t hi) {
      for (size_t r = lo; r < hi; ++r) {
        uint64_t n = part_.eh_space.count(int(r));
        for (uint64_t i = 0; i < n; ++i)
          contrib[uint64_t(r) * block + i] =
              cand_[uint64_t(part_.eh_space.to_global(int(r), i))];
      }
    });
    auto mine = ctx_.world.reduce_scatter_block(
        std::span<const Vertex>(contrib), block,
        [](Vertex a, Vertex b) { return std::max(a, b); });
    // Deliver reduced parents to the owners of the original vertex ids
    // (destination vertices are unique, so receiver writes are race-free).
    auto& staging = ws_.visit_down();
    staging.begin(size_t(ctx_.nranks()), pool_.size(), world_plan_,
                  ctx_.rank);
    par_ranges(size_t(part_.eh_space.count(ctx_.rank)),
               [&](size_t lane, size_t lo, size_t hi) {
      for (uint64_t i = lo; i < hi; ++i) {
        if (mine[i] == kNoVertex) continue;
        Vertex g = part_.cls.eh_to_global(
            uint64_t(part_.eh_space.to_global(ctx_.rank, i)));
        staging.push(lane, size_t(part_.space.owner(g)),
                     VisitMsg{g, mine[i]});
      }
    });
    auto got = staging.exchange(ctx_.world, pool_);
    pool_.parallel_for(0, got.size(), [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i)
        parent_[part_.space.to_local(ctx_.rank, got[i].dst)] = got[i].parent;
    });
    stats_.reduce_cpu_s += cpu.seconds();
    attributed_host_cpu_ += cpu.seconds();
    obs::Tracer::advance_modeled(cpu.seconds());
    stats_.reduce_comm_modeled_s += ctx_.stats.total_modeled_s() - comm0;
  }

  /// reduce_parents under the recover policy.  The reduction is idempotent —
  /// contributions are rebuilt from cand_ on every call — so a corrupted
  /// exchange is simply re-run (with backoff), no checkpoint rollback needed.
  void reduce_parents_checked() {
    for (;;) {
      reduce_parents();
      if (!resilient_) return;
      bool faulty = ctx_.world.allreduce_or(ctx_.faults.take_pending());
      faulty = ctx_.faults.take_pending() || faulty;
      if (!faulty) {
        note_clean_pass();
        return;
      }
      backoff_or_give_up("parent reduction");
      log_debug("bfs15d rank ", ctx_.rank,
                ": corrupted parent reduction, re-running (retry ",
                consecutive_retries_, ")");
    }
  }

  // ---- checkpoint / rollback recovery (fault plans, sim/fault.hpp) ----------
  /// True when a scheduled hard failure fires at this level.  The plan is
  /// replicated, so every rank returns the same answer without
  /// communication; each failure fires exactly once even across replays.
  bool take_rank_failure(int iteration) {
    const auto& failures = ctx_.faults.plan->rank_failures();
    bool fired = false;
    for (size_t i = 0; i < failures.size(); ++i) {
      if (fired_failures_[i] || failures[i].level != iteration) continue;
      fired_failures_[i] = true;
      fired = true;
      if (failures[i].rank == ctx_.rank) {
        ++ctx_.faults.stats.injected_failures;
        log_debug("bfs15d rank ", ctx_.rank,
                  ": injected hard failure at level ", iteration);
        // Model the crash: everything not in the checkpoint is lost.
        eh_curr_.reset();
        eh_visited_.reset();
        eh_next_.reset();
        eh_next_local_.reset();
        cand_.assign(k_, kNoVertex);
        parent_.assign(local_count_, kNoVertex);
        l_visited_.reset();
        l_curr_.reset();
        l_next_.reset();
        l_unvisited_ = 0;
      }
    }
    return fired;
  }

  void save_checkpoint(int iteration) {
    ckpt_.iteration = iteration;
    ckpt_.eh_curr = eh_curr_;
    ckpt_.eh_visited = eh_visited_;
    ckpt_.cand = cand_;
    ckpt_.parent = parent_;
    ckpt_.l_visited = l_visited_;
    ckpt_.l_curr = l_curr_;
    ckpt_.l_unvisited = l_unvisited_;
    ckpt_.iterations_recorded = stats_.iterations.size();
    ckpt_.bytes_sent = ctx_.stats.total_bytes_sent();
  }

  /// Roll back to the last checkpoint.  Collectively consistent: every rank
  /// takes this path in the same iteration (the pending flags were agreed on
  /// or the failure came from the replicated plan).
  void rollback(int& iteration) {
    obs::Span span("fault", "rollback", ckpt_.iteration);
    obs::instant("fault", "rollback_from", iteration);
    backoff_or_give_up("recovery");
    ctx_.faults.stats.resent_bytes +=
        ctx_.stats.total_bytes_sent() - ckpt_.bytes_sent;
    eh_curr_ = ckpt_.eh_curr;
    eh_visited_ = ckpt_.eh_visited;
    eh_next_.reset();
    eh_next_local_.reset();
    cand_ = ckpt_.cand;
    parent_ = ckpt_.parent;
    l_visited_ = ckpt_.l_visited;
    l_curr_ = ckpt_.l_curr;
    l_next_.reset();
    l_unvisited_ = ckpt_.l_unvisited;
    stats_.iterations.resize(ckpt_.iterations_recorded);
    iteration = ckpt_.iteration;
    log_debug("bfs15d rank ", ctx_.rank, ": rolled back to level checkpoint ",
              ckpt_.iteration, " (retry ", consecutive_retries_, ")");
  }

  /// Account one retry, sleep the capped exponential backoff, and throw
  /// FaultDetected once the retry budget is exhausted.
  void backoff_or_give_up(const char* what) {
    auto& fs = ctx_.faults.stats;
    ++consecutive_retries_;
    if (consecutive_retries_ > opts_.recovery.max_retries)
      throw sim::FaultDetected(std::string("fault: ") + what +
                               " retries exhausted after " +
                               std::to_string(opts_.recovery.max_retries) +
                               " attempts");
    ++fs.retries;
    in_recovery_ = true;
    double delay = sim::backoff_delay_s(opts_.recovery, consecutive_retries_);
    fs.backoff_s += delay;
    {
      obs::Span span("fault", "backoff", consecutive_retries_);
      std::this_thread::sleep_for(std::chrono::duration<double>(delay));
      obs::Tracer::advance_modeled(delay);
    }
  }

  /// A clean agreement round: if a recovery was in flight, the replay
  /// succeeded — count it and reset the consecutive-retry budget.
  void note_clean_pass() {
    if (!in_recovery_) return;
    ++ctx_.faults.stats.recovered;
    in_recovery_ = false;
    consecutive_retries_ = 0;
  }

  // ---- members --------------------------------------------------------------
  sim::RankContext& ctx_;
  const partition::Part15d& part_;
  Bfs15dOptions opts_;
  sim::MeshShape mesh_;
  int my_row_, my_col_;
  uint64_t k_, num_e_;
  Vertex root_;
  /// Staged route for the two world-wide exchanges; degenerate (0 stages)
  /// under the Direct backend.
  sim::ExchangePlan world_plan_;

  /// Intra-rank resources: the worker pool (sized by
  /// resolve_threads_per_rank from the options — never a literal) plus the
  /// reusable staging buffer pools.  When the runner supplies a shared
  /// workspace, the engine borrows it so capacities stay warm across roots;
  /// otherwise a private one is created per run.
  std::unique_ptr<BfsWorkspace> owned_ws_;
  BfsWorkspace& ws_;
  ThreadPool& pool_;

  BitVector eh_curr_, eh_visited_, eh_next_, eh_next_local_;
  std::vector<Vertex> cand_;
  uint64_t local_count_ = 0;
  std::vector<Vertex> parent_;
  BitVector l_visited_, l_curr_, l_next_;
  uint64_t l_unvisited_ = 0;
  uint64_t num_l_global_ = 0;
  uint64_t act_l_ = 0, unv_l_global_ = 0;
  uint64_t act_h_ = 0, unv_h_global_ = 0;
  std::vector<uint64_t> row_targets_, col_sources_;
  std::vector<uint64_t> row_h_ids_, col_h_ids_, owned_h_ids_;
  /// Per-push-sub-iteration message dedup: at most one message per target.
  BitVector dedup_l_, dedup_eh_;
  /// Per-target maximum staged candidate of the current push phase; always
  /// kNoVertex outside a push (the staging scan cleans the slots it wrote).
  std::vector<Vertex> push_cand_;     // indexed by global vertex id
  std::vector<Vertex> push_cand_eh_;  // indexed by EH id
  std::unique_ptr<ChipEhPuller> puller_;
  double time_override_ = -1.0;
  double attributed_host_cpu_ = 0.0;
  BfsStats stats_;

  // ---- fault recovery state -------------------------------------------------
  /// In-memory per-rank level checkpoint: everything rollback() restores.
  /// eh_next_ / eh_next_local_ / l_next_ / dedup bitmaps are always empty at
  /// checkpoint boundaries, so they are reset rather than saved.
  struct Checkpoint {
    int iteration = 0;
    BitVector eh_curr, eh_visited;
    std::vector<Vertex> cand, parent;
    BitVector l_visited, l_curr;
    uint64_t l_unvisited = 0;
    size_t iterations_recorded = 0;
    uint64_t bytes_sent = 0;
  };
  bool resilient_ = false;  ///< recover policy + plan installed
  Checkpoint ckpt_;
  std::vector<bool> fired_failures_;  ///< one-shot latch per planned failure
  int consecutive_retries_ = 0;
  bool in_recovery_ = false;
};

}  // namespace

Bfs15dResult bfs15d_run(sim::RankContext& ctx, const partition::Part15d& part,
                        Vertex root, const Bfs15dOptions& options) {
  Engine engine(ctx, part, root, options);
  return engine.run();
}

}  // namespace sunbfs::bfs
