#pragma once

#include <span>
#include <vector>

#include "chip/chip.hpp"
#include "partition/part15d.hpp"
#include "sim/topology.hpp"
#include "support/bitvector.hpp"

/// CG-aware core subgraph segmenting (§4.3, Figures 6 and 7).
///
/// The EH2EH bottom-up kernel random-reads the column frontier bit vector —
/// too large for one LDM.  The kernel splits the frontier's index range into
/// one segment per core group and the EH2EH arcs by which segment their
/// random-read endpoint falls in; core group g only processes segment g,
/// holding the segment's bits distributed line-wise over its 64 CPE LDMs
/// (line = cfg.line_bytes, round-robin by line index, Figure 7) and reading
/// them with RMA instead of GLD.  Destinations are cut into one interval per
/// CG and round-robin scheduled across rounds with a chip-wide sync so no
/// two CGs ever write the same interval (write safety without atomics).
///
/// Sequential accesses (destination scan, CSR offsets/values, visited bits)
/// are charged at amortized DMA streaming cost; only the random frontier
/// reads differ between the RMA mode and the GLD baseline — exactly the
/// contrast Figure 15's "+Segment." bar measures.
namespace sunbfs::bfs {

struct ChipPullVisit {
  uint64_t y = 0;  ///< newly visited EH id
  uint64_t x = 0;  ///< its frontier neighbor (EH id)
};

struct ChipEhPullConfig {
  /// LDM line granularity for the distributed frontier bitmap (paper: 1024).
  size_t line_bytes = 1024;
};

struct ChipEhPullResult {
  std::vector<ChipPullVisit> visits;
  chip::KernelReport report;
};

/// One rank's chip-executed EH2EH pull kernel.  Construct once per BFS run;
/// pull() may be called every iteration.
class ChipEhPuller {
 public:
  ChipEhPuller(chip::Chip& chip, const partition::Part15d& part,
               const sim::MeshShape& mesh, int my_row,
               ChipEhPullConfig cfg = {});

  /// Scan this rank's unvisited destinations (skipping those with a parent
  /// candidate in `cand`) and pull from `curr`.  use_rma selects the
  /// segmented RMA kernel; false runs the GLD baseline on the same chip.
  ChipEhPullResult pull(const BitVector& curr, const BitVector& visited,
                        std::span<const graph::Vertex> cand, bool use_rma);

  uint64_t num_targets() const { return targets_.size(); }

 private:
  chip::Chip& chip_;
  ChipEhPullConfig cfg_;
  uint64_t k_ = 0;                     ///< EH id count (frontier bits)
  std::vector<graph::Csr> seg_csr_;    ///< per-CG arc segment
  std::vector<uint64_t> targets_;      ///< this rank's destination EH ids
  std::vector<uint8_t> found_;         ///< per-pass dedup, indexed by EH id
};

}  // namespace sunbfs::bfs
