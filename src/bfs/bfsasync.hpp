#pragma once

#include <cstdint>
#include <vector>

#include "partition/part1d.hpp"
#include "sim/encoding.hpp"
#include "sim/exchange.hpp"
#include "sim/runtime.hpp"

/// Asynchronous relaxed-frontier BFS over the 1D partition.
///
/// The level-synchronous engines pay at least one collective round per BFS
/// level, which dominates on high-diameter inputs (docs/PERF.md).  This
/// engine decouples collective rounds from levels: each rank drains its
/// local relaxation worklist to a fixpoint — propagating through arbitrarily
/// many levels of locally owned vertices with zero communication — then
/// exchanges the folded speculative claims that cross rank boundaries and
/// probes a counting termination detector (sim/termination.hpp).  Claims are
/// relaxed, not level-ordered: a vertex's (depth, parent) is taken by atomic
/// compare-and-lower and may be re-claimed by a shallower visit in a later
/// round.  Output is only guaranteed correct at quiescence, where the depths
/// equal the true BFS depths and every parent sits exactly one level above
/// its child (the ctest -L differential relaxed-correctness oracle).
namespace sunbfs::bfs {

class BfsWorkspace;

struct BfsAsyncOptions {
  /// Worker threads per rank; <= 0 means auto (see resolve_threads_per_rank).
  /// Ignored when `workspace` is provided.
  int threads_per_rank = 0;
  /// Optional externally owned per-rank workspace, shared across roots by
  /// the runner; null means a private one per run.
  BfsWorkspace* workspace = nullptr;
  /// Checkpoint/retry knobs under FaultPolicy::Recover; checkpoint_interval
  /// counts exchange rounds here (there are no levels to count).
  sim::RecoveryOptions recovery;
  /// Adaptive wire encoding for the visit exchanges (sim/encoding.hpp).
  sim::EncodingOptions encoding;
  /// Exchange plan backend (sim/exchange.hpp).  Staged plans fold
  /// same-target speculative visits in flight to their minimum depth.
  sim::ExchangeOptions exchange;
  /// Dense-round direction switch: the round gathers the settled frontier
  /// (all claims at the global minimum queued depth — final by monotonicity)
  /// as a bitmap and pulls into unsettled vertices, instead of pushing every
  /// edge of it through the alltoallv, when the pending bucket entries at
  /// that depth exceed this fraction of the vertex count OR their outgoing
  /// arcs exceed this fraction of the total arc count.  The edge-mass
  /// trigger catches scale-free hub levels that are tiny by count; the same
  /// fraction also caps how much edge mass the speculative drain will push
  /// past the frontier.  Same crossover default as bfs1d's push/pull switch.
  double pull_ratio = 0.04;
};

struct BfsAsyncResult {
  std::vector<graph::Vertex> parent;  ///< owned slice, local index order
  /// Final depths of the owned slice (-1 unreached); at quiescence these
  /// bit-match graph::reference_bfs levels.
  std::vector<int64_t> depth;
  /// Exchange rounds executed (the async analogue of levels — each cost one
  /// alltoallv + one termination probe, NOT one round per BFS level).
  int rounds = 0;
  /// Termination-detection waves probed (two consecutive agreeing waves end
  /// the run).
  int probe_waves = 0;
  double cpu_s = 0;           ///< this rank's compute CPU seconds
  double comm_modeled_s = 0;  ///< modeled network seconds of this run
};

/// Run relaxed BFS from `root`.  Collective over all ranks.
BfsAsyncResult bfsasync_run(sim::RankContext& ctx,
                            const partition::Part1d& part, graph::Vertex root,
                            const BfsAsyncOptions& options = {});

}  // namespace sunbfs::bfs
