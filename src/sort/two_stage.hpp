#pragma once

#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "sort/ocs_rma.hpp"

/// Two-stage sorting in destination updating (§4.4).
///
/// After alltoallv, a rank must apply a batch of (destination, value)
/// messages to its vertex arrays.  GST and atomics are slow on the chip, so
/// the paper sorts the messages into fixed-length destination ranges small
/// enough that a range's slice of the destination array fits in LDM, and
/// assigns each range to exactly one core — updates then happen in LDM with
/// exclusive ownership and no atomics at all.
///
/// We realize the two sorting stages with one OCS-RMA pass straight to
/// sub-range granularity (the generic kernel makes the hierarchical split
/// unnecessary), followed by an exclusive per-sub-range apply pass.
namespace sunbfs::sort {

/// One destination update.
template <typename V>
struct UpdateMsg {
  uint64_t dst;  ///< index into the destination array
  V value;
};

struct TwoStageResult {
  uint64_t applied = 0;        ///< messages for which apply() returned true
  chip::KernelReport report;   ///< sort + apply, sequenced
};

/// Apply `messages` to `dest` on the chip model.  `apply(slot, value)` is
/// called with exclusive ownership of the slot (inside the owning CPE's
/// LDM copy) and returns whether it changed the slot.  `subrange_len` is
/// the destination range owned by one CPE (0 = auto-size to a quarter of
/// LDM); each sub-range slice must fit in LDM, which is checked.
template <typename V, typename ApplyFn>
TwoStageResult two_stage_update(chip::Chip& chip,
                                std::span<const UpdateMsg<V>> messages,
                                std::span<V> dest, ApplyFn apply,
                                size_t subrange_len = 0, int n_cgs = -1,
                                const OcsParams& params = {}) {
  static_assert(std::is_trivially_copyable_v<V>);
  obs::Span span("sort", "two_stage_update", int64_t(messages.size()));
  const auto& geo = chip.geometry();
  if (n_cgs < 0) n_cgs = geo.core_groups;
  if (subrange_len == 0)
    subrange_len = std::max<size_t>(1, geo.ldm_bytes / (4 * sizeof(V)));
  const uint32_t nsub =
      uint32_t((dest.size() + subrange_len - 1) / subrange_len);

  TwoStageResult result;
  if (messages.empty() || dest.empty()) return result;

  // Stage 1: OCS-RMA sort of the messages by destination sub-range.
  std::vector<UpdateMsg<V>> sorted(messages.size());
  auto bucket_of = [subrange_len](const UpdateMsg<V>& m) {
    return uint32_t(m.dst / subrange_len);
  };
  auto ocs = ocs_rma_bucket_sort<UpdateMsg<V>>(
      chip, messages, std::span(sorted), std::max(nsub, 1u), bucket_of,
      n_cgs, params);

  // Stage 2: exclusive apply — sub-ranges dealt round-robin over CPEs; each
  // CPE stages its destination slice in LDM, applies its message run, and
  // writes the slice back.  No atomics, no GST.
  const int total_cpes = n_cgs * geo.cpes_per_cg;
  std::vector<uint64_t> applied_per_cpe(size_t(total_cpes), 0);
  auto apply_report = chip.run(
      [&](chip::CpeContext& cpe) {
        int g = cpe.cg() * geo.cpes_per_cg + cpe.cpe();
        cpe.ldm().reset_alloc();
        // No slice can be larger than the destination itself.
        size_t slice_len = std::min(subrange_len, dest.size());
        size_t slice_off = cpe.ldm().alloc(slice_len * sizeof(V));
        V* slice = cpe.ldm().template as<V>(slice_off);
        const size_t chunk =
            std::max<size_t>(1, params.input_chunk_bytes /
                                    sizeof(UpdateMsg<V>));
        size_t moff = cpe.ldm().alloc(chunk * sizeof(UpdateMsg<V>));
        UpdateMsg<V>* mbuf = cpe.ldm().template as<UpdateMsg<V>>(moff);
        uint64_t applied = 0;
        for (uint32_t s = uint32_t(g); s < nsub; s += uint32_t(total_cpes)) {
          uint64_t lo = ocs.offsets[s], hi = ocs.offsets[s + 1];
          if (lo == hi) continue;
          size_t dst_lo = size_t(s) * subrange_len;
          size_t dst_n = std::min(subrange_len, dest.size() - dst_lo);
          cpe.dma_get(slice, dest.data() + dst_lo, dst_n * sizeof(V));
          for (uint64_t pos = lo; pos < hi; pos += chunk) {
            size_t nmsg = std::min<uint64_t>(chunk, hi - pos);
            cpe.dma_get(mbuf, sorted.data() + pos,
                        nmsg * sizeof(UpdateMsg<V>));
            for (size_t i = 0; i < nmsg; ++i) {
              SUNBFS_ASSERT(mbuf[i].dst >= dst_lo &&
                            mbuf[i].dst < dst_lo + dst_n);
              if (apply(slice[mbuf[i].dst - dst_lo], mbuf[i].value))
                ++applied;
              cpe.add_cycles(2 * cpe.cost().ldm_cycles);
            }
          }
          cpe.dma_put(dest.data() + dst_lo, slice, dst_n * sizeof(V));
        }
        applied_per_cpe[size_t(g)] = applied;
      },
      n_cgs);

  for (uint64_t a : applied_per_cpe) result.applied += a;
  result.report = detail::merge_sequential(ocs.report, apply_report);
  return result;
}

}  // namespace sunbfs::sort
