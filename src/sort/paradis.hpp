#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>

#include "obs/trace.hpp"
#include "support/prefix.hpp"
#include "support/thread_pool.hpp"

/// In-place parallel radix sort, PARADIS-inspired (Cho et al., VLDB'15).
///
/// The paper's in-place global sort (§5) uses PARADIS as its node-local
/// sorting kernel so that graphs occupying nearly all of main memory can be
/// preprocessed.  We implement the same contract — in-place MSB radix sort
/// over a user key function, parallel across sub-buckets — using an
/// American-flag permutation per digit and ThreadPool recursion across the
/// resulting buckets.
namespace sunbfs::sort {

namespace detail {
inline constexpr size_t kRadixBits = 8;
inline constexpr size_t kRadixBuckets = size_t(1) << kRadixBits;
inline constexpr size_t kRadixCutoff = 64;  // below: comparison sort

template <typename T, typename KeyFn>
void radix_sort_level(std::span<T> data, KeyFn key_of, int shift,
                      sunbfs::ThreadPool& pool, bool parallel) {
  if (data.size() <= kRadixCutoff || shift < 0) {
    std::sort(data.begin(), data.end(), [&](const T& a, const T& b) {
      return key_of(a) < key_of(b);
    });
    return;
  }
  auto digit = [&](const T& v) -> size_t {
    return size_t(key_of(v) >> shift) & (kRadixBuckets - 1);
  };

  std::array<uint64_t, kRadixBuckets> counts{};
  for (const T& v : data) counts[digit(v)]++;

  std::array<uint64_t, kRadixBuckets> heads{}, tails{};
  uint64_t running = 0;
  for (size_t b = 0; b < kRadixBuckets; ++b) {
    heads[b] = running;
    running += counts[b];
    tails[b] = running;
  }

  // American-flag in-place permutation: repeatedly take the element at the
  // head of the first unfinished bucket and walk its displacement cycle.
  std::array<uint64_t, kRadixBuckets> cursor = heads;
  for (size_t b = 0; b < kRadixBuckets; ++b) {
    while (cursor[b] < tails[b]) {
      T v = data[cursor[b]];
      size_t d = digit(v);
      if (d == b) {
        cursor[b]++;
        continue;
      }
      // Displace until an element belonging to bucket b lands here.
      do {
        std::swap(v, data[cursor[d]++]);
        d = digit(v);
      } while (d != b);
      data[cursor[b]++] = v;
    }
  }

  // Recurse per bucket; parallel across buckets at the top level.
  int next_shift = shift - int(kRadixBits);
  if (parallel) {
    pool.run_chunks(kRadixBuckets, [&](size_t b) {
      auto sub = data.subspan(heads[b], tails[b] - heads[b]);
      radix_sort_level<T, KeyFn>(sub, key_of, next_shift, pool, false);
    });
  } else {
    for (size_t b = 0; b < kRadixBuckets; ++b) {
      auto sub = data.subspan(heads[b], tails[b] - heads[b]);
      radix_sort_level<T, KeyFn>(sub, key_of, next_shift, pool, false);
    }
  }
}
}  // namespace detail

/// Sort `data` in place by the 64-bit key `key_of(element)`, ascending.
/// Uses no auxiliary array proportional to the input (in-place), and runs
/// sub-buckets of the most significant digit in parallel on `pool`.
template <typename T, typename KeyFn>
void paradis_sort(std::span<T> data, KeyFn key_of,
                  sunbfs::ThreadPool& pool = sunbfs::ThreadPool::global()) {
  if (data.size() <= 1) return;
  obs::Span span("sort", "paradis_sort", int64_t(data.size()));
  // Find the highest bit actually used to skip empty leading digits.
  uint64_t max_key = 0;
  for (const T& v : data) max_key = std::max(max_key, uint64_t(key_of(v)));
  int bits = max_key == 0 ? 1 : 64 - __builtin_clzll(max_key);
  int shift =
      int((size_t(bits - 1) / detail::kRadixBits) * detail::kRadixBits);
  detail::radix_sort_level<T, KeyFn>(data, key_of, shift, pool, true);
}

/// Convenience overload for plain integer spans.
inline void paradis_sort_u64(std::span<uint64_t> data) {
  paradis_sort(data, [](uint64_t v) { return v; });
}

}  // namespace sunbfs::sort
