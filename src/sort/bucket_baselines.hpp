#pragma once

#include <atomic>
#include <span>
#include <vector>

#include "chip/chip.hpp"
#include "sort/ocs_rma.hpp"
#include "support/prefix.hpp"

/// Baseline bucketing kernels that OCS-RMA is compared against (§6.3 /
/// Figure 14): a sequential MPE implementation and a CPE implementation that
/// relies on main-memory atomics instead of on-chip sorting (the approach
/// OCS-RMA exists to avoid).
namespace sunbfs::sort {

/// Sequential bucket sort on one MPE.  Two passes (count, place), every
/// element access charged at cache-missing main-memory cost.
template <typename T, typename BucketFn>
OcsResult mpe_bucket_sort(chip::Chip& chip, std::span<const T> input,
                          std::span<T> output, uint32_t num_buckets,
                          BucketFn bucket_of) {
  SUNBFS_CHECK(output.size() == input.size());
  OcsResult result;
  std::vector<uint64_t> counts(num_buckets, 0);
  result.report = chip.run_mpe([&](chip::MpeContext& mpe) {
    for (const T& v : input) {
      uint32_t b = bucket_of(mpe.load(v));
      SUNBFS_ASSERT(b < num_buckets);
      counts[b]++;
      mpe.add_cycles(3);
    }
    std::vector<uint64_t> cursor = offsets_from_counts(counts);
    for (const T& v : input) {
      T val = mpe.load(v);
      uint32_t b = bucket_of(val);
      mpe.store(output[cursor[b]++], val);
      mpe.add_cycles(3);
    }
  });
  result.offsets = offsets_from_counts(counts);
  return result;
}

/// CPE bucketing without on-chip sorting: every record is appended to its
/// bucket through a main-memory atomic reservation and an uncached store.
/// This is the "conventional parallel bucket sort requires atomic operations
/// per message" strawman of §4.4.
template <typename T, typename BucketFn>
OcsResult atomic_append_bucket_sort(chip::Chip& chip, std::span<const T> input,
                                    std::span<T> output, uint32_t num_buckets,
                                    BucketFn bucket_of, int n_cgs = -1,
                                    const OcsParams& params = {}) {
  SUNBFS_CHECK(output.size() == input.size());
  const auto& geo = chip.geometry();
  if (n_cgs < 0) n_cgs = geo.core_groups;
  const int total_cpes = n_cgs * geo.cpes_per_cg;

  // Count phase reuses the OCS counting approach (it is not the bottleneck).
  std::vector<uint64_t> per_cpe_counts(size_t(total_cpes) * num_buckets);
  auto count_report = chip.run(
      [&](chip::CpeContext& cpe) {
        int g = cpe.cg() * geo.cpes_per_cg + cpe.cpe();
        size_t lo = input.size() * size_t(g) / size_t(total_cpes);
        size_t hi = input.size() * size_t(g + 1) / size_t(total_cpes);
        cpe.ldm().reset_alloc();
        size_t coff = cpe.ldm().alloc(num_buckets * sizeof(uint64_t));
        uint64_t* counts = cpe.ldm().as<uint64_t>(coff);
        std::memset(counts, 0, num_buckets * sizeof(uint64_t));
        const size_t chunk =
            std::max<size_t>(1, params.input_chunk_bytes / sizeof(T));
        size_t ioff = cpe.ldm().alloc(chunk * sizeof(T));
        T* buf = cpe.ldm().as<T>(ioff);
        for (size_t pos = lo; pos < hi; pos += chunk) {
          size_t n = std::min(chunk, hi - pos);
          cpe.dma_get(buf, input.data() + pos, n * sizeof(T));
          for (size_t i = 0; i < n; ++i) counts[bucket_of(buf[i])]++;
          cpe.add_cycles(double(n) * params.producer_cycles_per_record);
        }
        cpe.dma_put(per_cpe_counts.data() + size_t(g) * num_buckets, counts,
                    num_buckets * sizeof(uint64_t));
      },
      n_cgs);

  std::vector<uint64_t> counts(num_buckets, 0);
  for (int p = 0; p < total_cpes; ++p)
    for (uint32_t b = 0; b < num_buckets; ++b)
      counts[b] += per_cpe_counts[size_t(p) * num_buckets + b];
  std::vector<uint64_t> offsets = offsets_from_counts(counts);

  std::vector<std::atomic<uint64_t>> cursors(num_buckets);
  for (auto& c : cursors) c.store(0, std::memory_order_relaxed);

  auto place_report = chip.run(
      [&](chip::CpeContext& cpe) {
        int g = cpe.cg() * geo.cpes_per_cg + cpe.cpe();
        size_t lo = input.size() * size_t(g) / size_t(total_cpes);
        size_t hi = input.size() * size_t(g + 1) / size_t(total_cpes);
        cpe.ldm().reset_alloc();
        const size_t chunk =
            std::max<size_t>(1, params.input_chunk_bytes / sizeof(T));
        size_t ioff = cpe.ldm().alloc(chunk * sizeof(T));
        T* buf = cpe.ldm().as<T>(ioff);
        for (size_t pos = lo; pos < hi; pos += chunk) {
          size_t n = std::min(chunk, hi - pos);
          cpe.dma_get(buf, input.data() + pos, n * sizeof(T));
          for (size_t i = 0; i < n; ++i) {
            uint32_t b = bucket_of(buf[i]);
            // One atomic + one uncached store per record: the inefficiency
            // OCS-RMA eliminates.
            uint64_t pos_in_bucket = cpe.atomic_add(cursors[b], 1);
            cpe.gst(output[offsets[b] + pos_in_bucket], buf[i]);
          }
        }
      },
      n_cgs);

  OcsResult result;
  result.offsets = std::move(offsets);
  result.report = detail::merge_sequential(count_report, place_report);
  return result;
}

/// Plain host reference (no chip model), for correctness checks.
template <typename T, typename BucketFn>
std::vector<uint64_t> reference_bucket_sort(std::span<const T> input,
                                            std::span<T> output,
                                            uint32_t num_buckets,
                                            BucketFn bucket_of) {
  SUNBFS_CHECK(output.size() == input.size());
  std::vector<uint64_t> counts(num_buckets, 0);
  for (const T& v : input) counts[bucket_of(v)]++;
  std::vector<uint64_t> offsets = offsets_from_counts(counts);
  std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const T& v : input) output[cursor[bucket_of(v)]++] = v;
  return offsets;
}

}  // namespace sunbfs::sort
