#include <cstdint>

// The sort module is header-only templates; this translation unit anchors
// the library target.
namespace sunbfs::sort {
const char* module_name() { return "sunbfs_sort"; }
}  // namespace sunbfs::sort
