#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "obs/trace.hpp"
#include "sim/comm.hpp"
#include "sort/paradis.hpp"
#include "support/check.hpp"

/// Parallel Sorting by Regular Sampling (Shi & Schaeffer, 1992) across the
/// SPMD ranks — the paper's "in-place global sort" (§5) used to split and
/// rebuild all six subgraphs during preprocessing.
///
/// Protocol: local sort (PARADIS) → each rank contributes P regular samples
/// → every rank picks the same P-1 pivots from the gathered sample →
/// partition local runs by pivot → alltoallv exchange → local multiway merge.
/// The result is a globally sorted sequence distributed over ranks (rank i's
/// elements all ≤ rank i+1's), roughly balanced for non-adversarial inputs.
namespace sunbfs::sort {

/// Globally sort the per-rank `local` arrays by `key_of` (64-bit key).
/// Returns this rank's slice of the sorted global sequence.
template <typename T, typename KeyFn>
std::vector<T> psrs_sort(sim::Comm& comm, std::vector<T> local, KeyFn key_of) {
  static_assert(std::is_trivially_copyable_v<T>);
  obs::Span span("sort", "psrs_sort", int64_t(local.size()));
  const int p = comm.size();
  if (p == 1) {
    paradis_sort(std::span<T>(local), key_of);
    return local;
  }

  paradis_sort(std::span<T>(local), key_of);

  // Regular sampling: p samples per rank at positions (i+1)*n/(p+1).
  std::vector<uint64_t> samples;
  samples.reserve(size_t(p));
  for (int i = 0; i < p; ++i) {
    if (local.empty()) break;
    size_t idx = (size_t(i) + 1) * local.size() / (size_t(p) + 1);
    samples.push_back(uint64_t(key_of(local[std::min(idx, local.size() - 1)])));
  }
  std::vector<uint64_t> all_samples =
      comm.allgatherv(std::span<const uint64_t>(samples));
  std::sort(all_samples.begin(), all_samples.end());

  // p-1 pivots at regular positions of the gathered sample.
  std::vector<uint64_t> pivots;
  pivots.reserve(size_t(p) - 1);
  if (!all_samples.empty()) {
    for (int i = 1; i < p; ++i) {
      size_t idx = size_t(i) * all_samples.size() / size_t(p);
      pivots.push_back(all_samples[std::min(idx, all_samples.size() - 1)]);
    }
  }

  // Partition the locally sorted run by the pivots.
  std::vector<std::vector<T>> to(static_cast<size_t>(p));
  size_t start = 0;
  for (int d = 0; d < p; ++d) {
    size_t end = local.size();
    if (d + 1 < p && size_t(d) < pivots.size()) {
      uint64_t piv = pivots[size_t(d)];
      // First index with key > piv (elements equal to a pivot stay left).
      auto it = std::upper_bound(
          local.begin() + long(start), local.end(), piv,
          [&](uint64_t k, const T& v) { return k < uint64_t(key_of(v)); });
      end = size_t(it - local.begin());
    }
    to[size_t(d)].assign(local.begin() + long(start), local.begin() + long(end));
    start = end;
  }
  SUNBFS_CHECK(start == local.size());
  local.clear();
  local.shrink_to_fit();

  // Exchange and merge the received sorted runs.
  std::vector<size_t> src_off;
  std::vector<T> received = comm.alltoallv(to, &src_off);
  to.clear();
  to.shrink_to_fit();
  // The p runs are each sorted; a final sort is O(n log p)-ish via PARADIS.
  paradis_sort(std::span<T>(received), key_of);
  return received;
}

}  // namespace sunbfs::sort
