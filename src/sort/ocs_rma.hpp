#pragma once

#include <atomic>
#include <cstring>
#include <span>
#include <vector>

#include "chip/chip.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/prefix.hpp"

/// On-Chip Sorting with RMA (OCS-RMA), §4.4 of the paper.
///
/// A generic bucket-sort meta-kernel for the SW26010-Pro model.  Within each
/// core group the CPEs are split into producers and consumers: producers
/// stream the input from main memory via DMA, append each record to a small
/// per-consumer send buffer and RMA-put full buffers into the owning
/// consumer's LDM; consumers bucket the received records into per-bucket
/// staging blocks and DMA-put full blocks to the output region.  Bucket b is
/// owned by consumer (b mod num_consumers) of every CG.
///
/// With one CG, each bucket has exactly one owner, so output cursors live in
/// consumer LDM and no atomic instruction is executed (the paper's
/// "exclusiveness guarantee").  With several CGs, cursor reservation uses
/// main-memory atomics — the paper's cross-CG synchronization — making the
/// multi-CG version slightly less efficient per CG, as in Figure 14.
namespace sunbfs::sort {

/// Tuning knobs for the OCS-RMA kernel.
struct OcsParams {
  /// Size of each RMA send/receive buffer and of each output staging block.
  /// The paper uses 512-byte buffers (32 per core).
  size_t buffer_bytes = 512;
  /// DMA grain for streaming the input slab.
  size_t input_chunk_bytes = 2048;
  /// Modeled compute cycles per record on a producer (bucket computation).
  double producer_cycles_per_record = 2.0;
  /// Modeled compute cycles per record on a consumer (staging append).
  double consumer_cycles_per_record = 1.2;
};

/// Result of a bucket sort: bucket layout plus the merged kernel report of
/// the counting and distribution phases.
struct OcsResult {
  /// offsets[b] .. offsets[b+1] delimit bucket b in the output.
  std::vector<uint64_t> offsets;
  chip::KernelReport report;
};

namespace detail {
inline constexpr uint32_t kOcsFlagEmpty = 0;
inline constexpr uint32_t kOcsFlagDone = 0xFFFFFFFFu;

inline chip::KernelReport merge_sequential(const chip::KernelReport& a,
                                           const chip::KernelReport& b) {
  chip::KernelReport out;
  out.max_cycles = a.max_cycles + b.max_cycles;
  out.modeled_seconds = a.modeled_seconds + b.modeled_seconds;
  out.wall_seconds = a.wall_seconds + b.wall_seconds;
  out.totals.cycles = a.totals.cycles + b.totals.cycles;
  out.totals.dma_bytes = a.totals.dma_bytes + b.totals.dma_bytes;
  out.totals.rma_bytes = a.totals.rma_bytes + b.totals.rma_bytes;
  out.totals.dma_ops = a.totals.dma_ops + b.totals.dma_ops;
  out.totals.rma_ops = a.totals.rma_ops + b.totals.rma_ops;
  out.totals.gld_ops = a.totals.gld_ops + b.totals.gld_ops;
  out.totals.gst_ops = a.totals.gst_ops + b.totals.gst_ops;
  out.totals.atomic_ops = a.totals.atomic_ops + b.totals.atomic_ops;
  return out;
}
}  // namespace detail

/// Bucket-sort `input` into `output` (same length) on the chip model.
/// `bucket_of(record)` must return a value in [0, num_buckets).  Records
/// within a bucket appear in unspecified order (messages race through the
/// on-chip network, as on hardware).  Runs on the first `n_cgs` core groups
/// (-1 = all).
template <typename T, typename BucketFn>
OcsResult ocs_rma_bucket_sort(chip::Chip& chip, std::span<const T> input,
                              std::span<T> output, uint32_t num_buckets,
                              BucketFn bucket_of, int n_cgs = -1,
                              const OcsParams& params = {}) {
  static_assert(std::is_trivially_copyable_v<T>);
  obs::Span span("sort", "ocs_rma_bucket_sort", int64_t(input.size()));
  SUNBFS_CHECK(output.size() == input.size());
  SUNBFS_CHECK(num_buckets >= 1);
  const auto& geo = chip.geometry();
  if (n_cgs < 0) n_cgs = geo.core_groups;
  const int ncpes = geo.cpes_per_cg;
  const int nprod = ncpes / 2;
  const int ncons = ncpes - nprod;
  SUNBFS_CHECK(nprod >= 1 && ncons >= 1);
  const size_t recs_per_buf = params.buffer_bytes / sizeof(T);
  SUNBFS_CHECK_MSG(recs_per_buf >= 1, "record larger than OCS buffer");
  const uint32_t buckets_per_cons =
      (num_buckets + uint32_t(ncons) - 1) / uint32_t(ncons);
  const int total_producers = n_cgs * nprod;

  // ---- Phase 1: counting.  Every CPE histograms a sub-slab (all 64 cores
  // participate — there is no producer/consumer split before messages
  // exist); rows are merged on the host (cheap: num_buckets entries) into
  // global bucket offsets.
  const int total_counters = n_cgs * ncpes;
  std::vector<uint64_t> per_producer_counts(size_t(total_counters) *
                                            num_buckets);
  auto count_report = chip.run(
      [&](chip::CpeContext& cpe) {
        int gp = cpe.cg() * ncpes + cpe.cpe();
        size_t lo = input.size() * size_t(gp) / size_t(total_counters);
        size_t hi = input.size() * size_t(gp + 1) / size_t(total_counters);

        cpe.ldm().reset_alloc();
        size_t counts_off = cpe.ldm().alloc(num_buckets * sizeof(uint64_t));
        uint64_t* counts = cpe.ldm().as<uint64_t>(counts_off);
        std::memset(counts, 0, num_buckets * sizeof(uint64_t));
        const size_t chunk_recs =
            std::max<size_t>(1, params.input_chunk_bytes / sizeof(T));
        size_t in_off = cpe.ldm().alloc(chunk_recs * sizeof(T));
        T* in_buf = cpe.ldm().as<T>(in_off);

        for (size_t pos = lo; pos < hi; pos += chunk_recs) {
          size_t n = std::min(chunk_recs, hi - pos);
          cpe.dma_get(in_buf, input.data() + pos, n * sizeof(T));
          for (size_t i = 0; i < n; ++i) {
            uint32_t b = bucket_of(in_buf[i]);
            SUNBFS_ASSERT(b < num_buckets);
            counts[b]++;
          }
          cpe.add_cycles(double(n) * params.producer_cycles_per_record);
        }
        cpe.dma_put(per_producer_counts.data() + size_t(gp) * num_buckets,
                    counts, num_buckets * sizeof(uint64_t));
      },
      n_cgs);

  std::vector<uint64_t> counts(num_buckets, 0);
  for (int p = 0; p < total_counters; ++p)
    for (uint32_t b = 0; b < num_buckets; ++b)
      counts[b] += per_producer_counts[size_t(p) * num_buckets + b];
  std::vector<uint64_t> offsets = offsets_from_counts(counts);

  // ---- Phase 2: distribution through RMA producer/consumer pipes.
  // Cross-CG output reservation (multi-CG only).
  std::vector<std::atomic<uint64_t>> cursors(num_buckets);
  for (auto& c : cursors) c.store(0, std::memory_order_relaxed);

  auto distribute_report = chip.run(
      [&](chip::CpeContext& cpe) {
        const bool is_producer = cpe.cpe() < nprod;
        cpe.ldm().reset_alloc();
        if (is_producer) {
          // LDM layout: per-consumer send buffers + ack flags.
          size_t send_off =
              cpe.ldm().alloc(size_t(ncons) * params.buffer_bytes);
          size_t ack_off =
              cpe.ldm().alloc(size_t(ncons) * sizeof(uint32_t), 4);
          std::vector<size_t> fill(size_t(ncons), 0);  // records buffered
          for (int j = 0; j < ncons; ++j)
            cpe.ldm_atomic<uint32_t>(ack_off + size_t(j) * 4).store(1);
          cpe.sync_cg();

          auto send_buf = [&](int j) {
            return cpe.ldm().template as<T>(send_off +
                                            size_t(j) * params.buffer_bytes);
          };
          // Consumer j's LDM layout mirrors ours; its receive slot for local
          // producer i starts at recv_base + i * buffer_bytes and its flag
          // array at flag_base (computed identically below).
          const size_t recv_base = 0;
          const size_t flag_base = size_t(nprod) * params.buffer_bytes;
          auto flush = [&](int j) {
            if (fill[size_t(j)] == 0) return;
            auto& ack = cpe.ldm_atomic<uint32_t>(ack_off + size_t(j) * 4);
            cpe.wait([&] {
              return ack.load(std::memory_order_acquire) == 1;
            });
            ack.store(0, std::memory_order_relaxed);
            int cons_cpe = nprod + j;
            cpe.rma_put(cons_cpe,
                        recv_base + size_t(cpe.cpe()) * params.buffer_bytes,
                        send_buf(j), fill[size_t(j)] * sizeof(T));
            cpe.rma_post<uint32_t>(cons_cpe,
                                   flag_base + size_t(cpe.cpe()) * 4,
                                   uint32_t(fill[size_t(j)]));
            fill[size_t(j)] = 0;
          };

          int gp = cpe.cg() * nprod + cpe.cpe();
          size_t lo = input.size() * size_t(gp) / size_t(total_producers);
          size_t hi = input.size() * size_t(gp + 1) / size_t(total_producers);
          const size_t chunk_recs =
              std::max<size_t>(1, params.input_chunk_bytes / sizeof(T));
          size_t in_off = cpe.ldm().alloc(chunk_recs * sizeof(T));
          T* in_buf = cpe.ldm().as<T>(in_off);
          for (size_t pos = lo; pos < hi; pos += chunk_recs) {
            size_t n = std::min(chunk_recs, hi - pos);
            cpe.dma_get(in_buf, input.data() + pos, n * sizeof(T));
            for (size_t i = 0; i < n; ++i) {
              uint32_t b = bucket_of(in_buf[i]);
              int j = int(b % uint32_t(ncons));
              send_buf(j)[fill[size_t(j)]++] = in_buf[i];
              if (fill[size_t(j)] == recs_per_buf) flush(j);
            }
            cpe.add_cycles(double(n) * params.producer_cycles_per_record);
          }
          for (int j = 0; j < ncons; ++j) {
            flush(j);
            // Raise DONE after the last payload is acknowledged.
            auto& ack = cpe.ldm_atomic<uint32_t>(ack_off + size_t(j) * 4);
            cpe.wait([&] {
              return ack.load(std::memory_order_acquire) == 1;
            });
            cpe.rma_post<uint32_t>(nprod + j,
                                   flag_base + size_t(cpe.cpe()) * 4,
                                   detail::kOcsFlagDone);
          }
        } else {
          const int me = cpe.cpe() - nprod;  // consumer index in CG
          // LDM layout: per-producer receive buffers + flags, then staging
          // blocks and (single-CG) plain cursors for owned buckets.
          size_t recv_off =
              cpe.ldm().alloc(size_t(nprod) * params.buffer_bytes);
          size_t flag_off =
              cpe.ldm().alloc(size_t(nprod) * sizeof(uint32_t), 4);
          size_t stage_off =
              cpe.ldm().alloc(size_t(buckets_per_cons) * params.buffer_bytes);
          size_t sfill_off =
              cpe.ldm().alloc(size_t(buckets_per_cons) * sizeof(uint64_t));
          size_t lcur_off =
              cpe.ldm().alloc(size_t(buckets_per_cons) * sizeof(uint64_t));
          uint64_t* sfill = cpe.ldm().as<uint64_t>(sfill_off);
          uint64_t* lcur = cpe.ldm().as<uint64_t>(lcur_off);
          std::memset(sfill, 0, size_t(buckets_per_cons) * sizeof(uint64_t));
          std::memset(lcur, 0, size_t(buckets_per_cons) * sizeof(uint64_t));
          for (int i = 0; i < nprod; ++i)
            cpe.ldm_atomic<uint32_t>(flag_off + size_t(i) * 4)
                .store(detail::kOcsFlagEmpty);
          cpe.sync_cg();

          auto stage_buf = [&](uint32_t slot) {
            return cpe.ldm().template as<T>(stage_off +
                                            size_t(slot) * params.buffer_bytes);
          };
          auto flush_bucket = [&](uint32_t b) {
            uint32_t slot = b / uint32_t(ncons);
            uint64_t n = sfill[slot];
            if (n == 0) return;
            uint64_t pos;
            if (n_cgs == 1) {
              pos = lcur[slot];  // exclusive ownership: no atomics
              lcur[slot] += n;
              cpe.add_cycles(cpe.cost().ldm_cycles * 2);
            } else {
              pos = cpe.atomic_add(cursors[b], n);
            }
            cpe.dma_put(output.data() + offsets[b] + pos, stage_buf(slot),
                        n * sizeof(T));
            sfill[slot] = 0;
          };

          int done = 0;
          while (done < nprod) {
            bool progressed = false;
            for (int i = 0; i < nprod; ++i) {
              auto& flag = cpe.ldm_atomic<uint32_t>(flag_off + size_t(i) * 4);
              uint32_t f = flag.load(std::memory_order_acquire);
              if (f == detail::kOcsFlagEmpty) continue;
              progressed = true;
              if (f == detail::kOcsFlagDone) {
                ++done;
                flag.store(detail::kOcsFlagEmpty, std::memory_order_relaxed);
                continue;
              }
              const T* recv = cpe.ldm().template as<T>(
                  recv_off + size_t(i) * params.buffer_bytes);
              for (uint32_t k = 0; k < f; ++k) {
                uint32_t b = bucket_of(recv[k]);
                SUNBFS_ASSERT(int(b % uint32_t(ncons)) == me);
                uint32_t slot = b / uint32_t(ncons);
                stage_buf(slot)[sfill[slot]++] = recv[k];
                if (sfill[slot] == recs_per_buf) flush_bucket(b);
              }
              cpe.add_cycles(double(f) * params.consumer_cycles_per_record);
              flag.store(detail::kOcsFlagEmpty, std::memory_order_release);
              // Acknowledge so the producer can reuse its send buffer; the
              // producer's ack flag array sits right after its send buffers.
              size_t prod_ack_base = size_t(ncons) * params.buffer_bytes;
              cpe.rma_post<uint32_t>(i, prod_ack_base + size_t(me) * 4, 1);
            }
            if (!progressed) std::this_thread::yield();
          }
          for (uint32_t b = uint32_t(me); b < num_buckets;
               b += uint32_t(ncons))
            flush_bucket(b);
        }
      },
      n_cgs);

  OcsResult result;
  result.offsets = std::move(offsets);
  result.report = detail::merge_sequential(count_report, distribute_report);
  return result;
}

}  // namespace sunbfs::sort
