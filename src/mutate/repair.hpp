#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analytics/delta_stepping.hpp"
#include "analytics/sssp.hpp"
#include "mutate/log.hpp"
#include "partition/part1d.hpp"
#include "sim/exchange_channel.hpp"
#include "sim/runtime.hpp"
#include "support/thread_pool.hpp"

/// Incremental BFS/SSSP repair after a mutation batch: only vertices whose
/// parent / relaxed edge was invalidated re-enter the frontier, instead of
/// a full recompute.  Differential-oracle contract (ctest -L mutation):
/// repaired trees/distances bit-match a full recompute on the mutated
/// snapshot.
///
/// Both repairs run the same two phases over the post-mutation 1D
/// adjacency, collectively:
///
///   1. **Cascade invalidation.**  Seeds are owned vertices whose tree /
///      tightness support was deleted by the batch; each invalidated vertex
///      pushes to its neighbors, and a receiver joins the invalid set when
///      its own support points at the sender (BFS: parent == sender; SSSP:
///      old distance tight through the sender).  For BFS the invalid set is
///      exactly the tree descendants of the seeds; for SSSP it is a
///      conservative closure (every vertex all of whose old shortest paths
///      died is included).  Valid receivers are the repair boundary.
///   2. **Repair relaxation.**  Invalidated state resets to unreached;
///      boundary vertices and insert endpoints re-enter the frontier and
///      chaotic (Bellman-Ford) rounds relax until a fixpoint, which equals
///      the exact recompute because surviving values never undershoot the
///      mutated graph's true values.  BFS additionally restores the
///      canonical max-global-id parent rule: receivers take ties by max
///      source, and a receiver that cannot improve echoes its own depth
///      back to a pushing neighbor whose depth just dropped, so late
///      same-depth parents are never missed.
///
/// Affected-region discovery rides the ordinary ExchangeChannel pools —
/// encoded, checksummed, staged-backend routed — and a caller can hand in
/// resident primed channels so steady-state `comm.staging_allocs` stays 0.
namespace sunbfs::mutate {

/// Cascade invalidation push for global vertex `dst` (receiver-owned).
/// `val` names the support being revoked: the sender's global id for BFS
/// (receiver checks parent == val), the sender's old distance plus the edge
/// weight for SSSP (receiver checks dist == val).
struct InvMsg {
  graph::Vertex dst;
  uint64_t val;
};

/// BFS repair relaxation: candidate depth `depth` for `dst` via parent
/// `src` (the sender's global id).
struct RelaxMsg {
  graph::Vertex dst;
  uint32_t depth;
  graph::Vertex src;
};

/// Depth value used for unreached vertices in the owned depth slices
/// (matches the service's query-tree convention).
inline constexpr int32_t kUnreachedDepth = -1;

/// Resident staging for the repair exchanges.  Prime once with the 1D
/// partition's worst case (everything a rank can push in one round is
/// bounded by its arc capacity) plus any expected insert headroom, then
/// reuse across mutation batches: steady allocs stay zero.
struct RepairChannels {
  sim::ExchangeChannel<InvMsg> inv;
  sim::ExchangeChannel<RelaxMsg> relax;
  sim::ExchangeChannel<analytics::DistMsg> dist;
  sim::ExchangePlan plan;

  void prime(sim::RankContext& ctx, size_t nthreads, size_t arc_cap,
             const sim::EncodingOptions& encoding,
             const sim::ExchangeOptions& exchange);

  uint64_t allocs() const {
    return inv.allocs() + relax.allocs() + dist.allocs();
  }
};

struct RepairOptions {
  /// Worker pool for the exchange legs; null runs single-threaded.
  ThreadPool* pool = nullptr;
  /// Resident primed channels; null uses private per-call ones.
  RepairChannels* channels = nullptr;
  sim::EncodingOptions encoding;
  sim::ExchangeOptions exchange;
  /// Modeled seconds per scanned arc, charged by the caller from
  /// RepairStats::compute_model_s (same scale as the engines'
  /// sim_seconds_per_edge).
  double sim_seconds_per_edge = 2e-9;
};

struct RepairStats {
  uint64_t invalidated = 0;   ///< owned vertices invalidated (local)
  uint64_t seeds = 0;         ///< deletion/insert seeds (local)
  uint64_t relaxations = 0;   ///< candidate messages applied (local)
  int cascade_rounds = 0;     ///< collective invalidation rounds
  int repair_rounds = 0;      ///< collective relaxation rounds
  double compute_model_s = 0;  ///< modeled local scan cost (not replicated)

  void merge(const RepairStats& o) {
    invalidated += o.invalidated;
    seeds += o.seeds;
    relaxations += o.relaxations;
    cascade_rounds += o.cascade_rounds;
    repair_rounds += o.repair_rounds;
    compute_model_s += o.compute_model_s;
  }
};

/// Repair one BFS tree in place after `batch` was applied to `part`.
/// `parent`/`depth` are this rank's owned slices (local index order) of a
/// tree rooted at `root` that was exact before the mutation; on return they
/// bit-match a fresh traversal of the mutated graph (canonical
/// max-global-id parents).  Collective.
RepairStats repair_bfs(sim::RankContext& ctx, const partition::Part1d& part,
                       const MutationBatch& batch, graph::Vertex root,
                       std::span<graph::Vertex> parent,
                       std::span<int32_t> depth,
                       const RepairOptions& options = {});

/// Repair owned SSSP distances in place after `batch` was applied; weights
/// come from analytics::edge_weight under `weights`.  On return `dist`
/// bit-matches a fresh SSSP on the mutated graph.  Collective.
RepairStats repair_sssp(sim::RankContext& ctx, const partition::Part1d& part,
                        const MutationBatch& batch, graph::Vertex root,
                        std::span<analytics::Dist> dist,
                        const analytics::SsspOptions& weights,
                        const RepairOptions& options = {});

}  // namespace sunbfs::mutate

namespace sunbfs::sim {

/// Wire codec for cascade invalidations: destination keys the sort/bitmap,
/// the revoked-support value rides as a varint.
template <>
struct WireFormat<mutate::InvMsg> {
  static uint64_t key(const mutate::InvMsg& m) { return uint64_t(m.dst); }
  static bool less(const mutate::InvMsg& a, const mutate::InvMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.val < b.val;
  }
  static size_t rest_size(const mutate::InvMsg& m) {
    return varint_size(m.val);
  }
  static uint8_t* put_rest(const mutate::InvMsg& m, uint8_t* p) {
    return put_varint(p, m.val);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, mutate::InvMsg& m) {
    if (key > uint64_t(INT64_MAX)) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr) return nullptr;
    m.dst = graph::Vertex(key);
    m.val = v;
    return p;
  }
};

/// Staged-exchange fold for invalidations: a revocation is identified by
/// (dst, val), so only exact duplicates collapse — folding different
/// supports together would drop invalidations.
template <>
struct ExchangeMergePolicy<mutate::InvMsg> {
  static constexpr bool enabled = true;
  static bool same(const mutate::InvMsg& a, uint32_t /*a_src*/,
                   const mutate::InvMsg& b, uint32_t /*b_src*/) {
    return a.dst == b.dst && a.val == b.val;
  }
  static void fold(mutate::InvMsg& /*into*/, uint32_t& into_src_part,
                   const mutate::InvMsg& /*from*/, uint32_t from_src_part) {
    // Identical payloads; keep the smaller source lane for determinism.
    if (from_src_part < into_src_part) into_src_part = from_src_part;
  }
};

/// Wire codec for BFS repair relaxations: varint depth then varint parent.
template <>
struct WireFormat<mutate::RelaxMsg> {
  static uint64_t key(const mutate::RelaxMsg& m) { return uint64_t(m.dst); }
  static bool less(const mutate::RelaxMsg& a, const mutate::RelaxMsg& b) {
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.src < b.src;
  }
  static size_t rest_size(const mutate::RelaxMsg& m) {
    return varint_size(m.depth) + varint_size(uint64_t(m.src));
  }
  static uint8_t* put_rest(const mutate::RelaxMsg& m, uint8_t* p) {
    p = put_varint(p, m.depth);
    return put_varint(p, uint64_t(m.src));
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, mutate::RelaxMsg& m) {
    if (key > uint64_t(INT64_MAX)) return nullptr;
    uint64_t d = 0, s = 0;
    p = get_varint(p, end, &d);
    if (p == nullptr) return nullptr;
    p = get_varint(p, end, &s);
    if (p == nullptr) return nullptr;
    if (d > uint64_t(UINT32_MAX) || s > uint64_t(INT64_MAX)) return nullptr;
    m.dst = graph::Vertex(key);
    m.depth = uint32_t(d);
    m.src = graph::Vertex(s);
    return p;
  }
};

/// BFS repair relaxations must NOT merge in flight: the receiver echoes its
/// own depth back to each pushing source (the late same-depth-parent rule
/// above), so collapsing two sources' candidates for one destination would
/// silently drop an echo and with it a canonical parent.  Staged backends
/// still route the messages; they just carry them unmerged.
template <>
struct ExchangeMergePolicy<mutate::RelaxMsg> {
  static constexpr bool enabled = false;
};

}  // namespace sunbfs::sim
