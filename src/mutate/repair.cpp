#include "mutate/repair.hpp"

#include <algorithm>
#include <limits>

#include "support/bitvector.hpp"
#include "support/check.hpp"

namespace sunbfs::mutate {

using graph::Vertex;
using graph::kNoVertex;

void RepairChannels::prime(sim::RankContext& ctx, size_t nthreads,
                           size_t arc_cap,
                           const sim::EncodingOptions& encoding,
                           const sim::ExchangeOptions& exchange) {
  plan = sim::ExchangePlan::build(exchange.backend, ctx.nranks(), ctx.mesh);
  const size_t nparts = size_t(ctx.nranks());
  // One round stages at most one message per live arc from the frontier
  // side plus one echo per received message (BFS only), so 2x arc capacity
  // bounds every leg.  Repair stages serially (lane 0); `nthreads` lanes
  // are primed anyway so a pooled begin() never grows.
  const size_t cap = 2 * arc_cap + 64;
  auto prime_one = [&](auto& ch) {
    ch.set_encoding(encoding);
    ch.prime(nparts, nthreads, cap, cap, cap);
    ch.prime_staged(plan, ctx.rank, nthreads, cap, cap);
  };
  prime_one(inv);
  prime_one(relax);
  prime_one(dist);
}

namespace {

/// Shared per-call state of one repair: the invalid/boundary sets from the
/// cascade phase and the relaxation frontier.
struct RepairState {
  BitVector invalid;
  BitVector boundary;
  BitVector in_frontier;
  std::vector<uint32_t> wave;      // cascade: newly invalidated locals
  std::vector<uint32_t> frontier;  // repair: locals to push from

  explicit RepairState(uint64_t local_count)
      : invalid(size_t(local_count)),
        boundary(size_t(local_count)),
        in_frontier(size_t(local_count)) {}

  void invalidate(uint64_t lloc, RepairStats& stats) {
    if (invalid.get(size_t(lloc))) return;
    invalid.set(size_t(lloc));
    wave.push_back(uint32_t(lloc));
    ++stats.invalidated;
  }

  void enqueue(uint64_t lloc) {
    if (in_frontier.test_and_set(size_t(lloc))) frontier.push_back(uint32_t(lloc));
  }
};

/// Cascade invalidation shared by both repairs.  `seed_round` stages the
/// deletion-support revocations (round 0); `push_from` stages one
/// invalidated vertex's revocations; `on_msg` applies one received
/// revocation, returning the local index to invalidate or -1.
template <typename SeedFn, typename PushFn, typename MsgFn>
void run_cascade(sim::RankContext& ctx, const partition::VertexSpace& space,
                 sim::ExchangeChannel<InvMsg>& ch,
                 const sim::ExchangePlan& plan, ThreadPool& pool,
                 RepairState& st, RepairStats& stats, SeedFn&& seed_round,
                 PushFn&& push_from, MsgFn&& on_msg) {
  const size_t nranks = size_t(ctx.nranks());
  bool first = true;
  for (;;) {
    ch.begin(nranks, 1, plan, ctx.rank);
    uint64_t staged = 0;
    auto push = [&](Vertex dst, uint64_t val) {
      ch.push(0, size_t(space.owner(dst)), InvMsg{dst, val});
      ++staged;
    };
    if (first) {
      seed_round(push);
      first = false;
    }
    for (uint32_t lv : st.wave) push_from(lv, push);
    st.wave.clear();
    if (ctx.world.allreduce_sum(staged) == 0) break;
    ++stats.cascade_rounds;
    std::span<const InvMsg> got = ch.exchange(ctx.world, pool);
    for (const InvMsg& m : got) {
      uint64_t lv = space.to_local(ctx.rank, m.dst);
      if (st.invalid.get(size_t(lv))) continue;
      if (on_msg(lv, m)) {
        st.invalidate(lv, stats);
      } else {
        st.boundary.set(size_t(lv));
      }
    }
  }
}

}  // namespace

RepairStats repair_bfs(sim::RankContext& ctx, const partition::Part1d& part,
                       const MutationBatch& batch, Vertex root,
                       std::span<Vertex> parent, std::span<int32_t> depth,
                       const RepairOptions& options) {
  const partition::VertexSpace& space = part.space;
  const uint64_t local_count = space.count(ctx.rank);
  SUNBFS_CHECK(parent.size() == local_count && depth.size() == local_count);

  std::unique_ptr<ThreadPool> owned_pool;
  if (options.pool == nullptr) owned_pool = std::make_unique<ThreadPool>(1);
  ThreadPool& pool = options.pool != nullptr ? *options.pool : *owned_pool;
  std::unique_ptr<RepairChannels> owned_ch;
  if (options.channels == nullptr) {
    owned_ch = std::make_unique<RepairChannels>();
    owned_ch->prime(ctx, 1, size_t(part.adj.arc_capacity()),
                    options.encoding, options.exchange);
  }
  RepairChannels& ch =
      options.channels != nullptr ? *options.channels : *owned_ch;

  RepairStats stats;
  RepairState st(local_count);
  uint64_t arcs_scanned = 0;

  // ---- Phase 1: cascade invalidation. ---------------------------------
  // Deletion seeds need no round trip: the parent array stores the global
  // parent id, so the owner of the child checks the revoked tree edge
  // locally.  The seed round therefore stages nothing; seeds go straight
  // into the first wave.
  for (const graph::Edge& e : batch.deletes) {
    auto seed = [&](Vertex child, Vertex lost_parent) {
      if (child == root || space.owner(child) != ctx.rank) return;
      uint64_t lv = space.to_local(ctx.rank, child);
      if (parent[lv] == lost_parent && child != lost_parent)
        st.invalidate(lv, stats);
    };
    seed(e.u, e.v);
    seed(e.v, e.u);
  }
  stats.seeds = st.wave.size();

  run_cascade(
      ctx, space, ch.inv, ch.plan, pool, st, stats,
      /*seed_round=*/[&](auto&& /*push*/) {},
      /*push_from=*/
      [&](uint32_t lv, auto&& push) {
        Vertex g = space.to_global(ctx.rank, lv);
        for (Vertex nbr : part.adj.neighbors(lv)) push(nbr, uint64_t(g));
        arcs_scanned += part.adj.degree(lv);
      },
      /*on_msg=*/
      [&](uint64_t lv, const InvMsg& m) {
        return parent[lv] == Vertex(m.val) && m.dst != root;
      });

  // ---- Phase 2: reset + repair relaxation. ----------------------------
  st.invalid.for_each_set([&](size_t lv) {
    parent[lv] = kNoVertex;
    depth[lv] = kUnreachedDepth;
  });
  st.boundary.and_not(st.invalid);
  st.boundary.for_each_set([&](size_t lv) {
    if (depth[lv] >= 0) st.enqueue(lv);
  });
  for (const graph::Edge& e : batch.inserts) {
    for (Vertex a : {e.u, e.v}) {
      if (space.owner(a) != ctx.rank) continue;
      uint64_t la = space.to_local(ctx.rank, a);
      if (!st.invalid.get(size_t(la)) && depth[la] >= 0) st.enqueue(la);
    }
  }
  stats.seeds += st.frontier.size();

  const size_t nranks = size_t(ctx.nranks());
  std::vector<RelaxMsg> echoes;
  for (;;) {
    ch.relax.begin(nranks, 1, ch.plan, ctx.rank);
    uint64_t staged = 0;
    for (uint32_t lv : st.frontier) {
      SUNBFS_ASSERT(depth[lv] >= 0);
      Vertex g = space.to_global(ctx.rank, lv);
      uint32_t cand = uint32_t(depth[lv]) + 1;
      for (Vertex nbr : part.adj.neighbors(lv)) {
        ch.relax.push(0, size_t(space.owner(nbr)), RelaxMsg{nbr, cand, g});
        ++staged;
      }
      arcs_scanned += part.adj.degree(lv);
    }
    for (const RelaxMsg& m : echoes) {
      ch.relax.push(0, size_t(space.owner(m.dst)), m);
      ++staged;
    }
    echoes.clear();
    st.frontier.clear();
    st.in_frontier.reset();
    if (ctx.world.allreduce_sum(staged) == 0) break;
    ++stats.repair_rounds;
    std::span<const RelaxMsg> got = ch.relax.exchange(ctx.world, pool);
    for (const RelaxMsg& m : got) {
      uint64_t lv = space.to_local(ctx.rank, m.dst);
      int64_t dv = depth[lv] < 0 ? std::numeric_limits<int64_t>::max()
                                 : int64_t(depth[lv]);
      if (int64_t(m.depth) < dv) {
        depth[lv] = int32_t(m.depth);
        parent[lv] = m.src;
        ++stats.relaxations;
        st.enqueue(lv);
      } else if (int64_t(m.depth) == dv && m.src > parent[lv]) {
        parent[lv] = m.src;
        ++stats.relaxations;
        // A parent-only improvement changes no depth: nothing downstream
        // of lv can move, so it does not re-enter the frontier.
      }
      // Late same-depth parents: if this vertex could be a (tied-or-better)
      // parent for the pusher, answer with its own depth.  The pusher's
      // depth just changed (or it seeded), so without the echo a
      // never-changed neighbor's candidacy would be lost.
      if (depth[lv] >= 0 && uint32_t(depth[lv]) + 2 <= m.depth &&
          m.src != m.dst)
        echoes.push_back(
            RelaxMsg{m.src, uint32_t(depth[lv]) + 1, m.dst});
    }
  }

  stats.compute_model_s = double(arcs_scanned) * options.sim_seconds_per_edge;
  return stats;
}

RepairStats repair_sssp(sim::RankContext& ctx, const partition::Part1d& part,
                        const MutationBatch& batch, Vertex root,
                        std::span<analytics::Dist> dist,
                        const analytics::SsspOptions& weights,
                        const RepairOptions& options) {
  using analytics::Dist;
  using analytics::kInfDist;
  const partition::VertexSpace& space = part.space;
  const uint64_t local_count = space.count(ctx.rank);
  SUNBFS_CHECK(dist.size() == local_count);

  std::unique_ptr<ThreadPool> owned_pool;
  if (options.pool == nullptr) owned_pool = std::make_unique<ThreadPool>(1);
  ThreadPool& pool = options.pool != nullptr ? *options.pool : *owned_pool;
  std::unique_ptr<RepairChannels> owned_ch;
  if (options.channels == nullptr) {
    owned_ch = std::make_unique<RepairChannels>();
    owned_ch->prime(ctx, 1, size_t(part.adj.arc_capacity()),
                    options.encoding, options.exchange);
  }
  RepairChannels& ch =
      options.channels != nullptr ? *options.channels : *owned_ch;

  auto weight = [&](Vertex a, Vertex b) {
    return analytics::edge_weight(a, b, weights.weight_seed,
                                  weights.max_weight);
  };

  RepairStats stats;
  RepairState st(local_count);
  uint64_t arcs_scanned = 0;

  // ---- Phase 1: cascade invalidation. ---------------------------------
  // A deletion seed needs the far endpoint's old distance, so the seed
  // round messages each deleted edge's revoked tightness from the endpoint
  // owners (the deleted arcs are already gone from the adjacency).
  run_cascade(
      ctx, space, ch.inv, ch.plan, pool, st, stats,
      /*seed_round=*/
      [&](auto&& push) {
        for (const graph::Edge& e : batch.deletes) {
          auto seed = [&](Vertex from, Vertex to) {
            if (from == to || space.owner(from) != ctx.rank) return;
            uint64_t lf = space.to_local(ctx.rank, from);
            if (dist[lf] < kInfDist)
              push(to, uint64_t(dist[lf] + weight(from, to)));
          };
          seed(e.u, e.v);
          seed(e.v, e.u);
        }
      },
      /*push_from=*/
      [&](uint32_t lv, auto&& push) {
        // dist[lv] still holds the pre-reset value during the cascade.
        Vertex g = space.to_global(ctx.rank, lv);
        for (Vertex nbr : part.adj.neighbors(lv))
          push(nbr, uint64_t(dist[lv] + weight(g, nbr)));
        arcs_scanned += part.adj.degree(lv);
      },
      /*on_msg=*/
      [&](uint64_t lv, const InvMsg& m) {
        // The root's distance 0 can never equal a positive-weight basis.
        return dist[lv] < kInfDist && dist[lv] == Dist(m.val);
      });
  stats.seeds = stats.invalidated;

  // ---- Phase 2: reset + repair relaxation. ----------------------------
  st.invalid.for_each_set([&](size_t lv) { dist[lv] = kInfDist; });
  st.boundary.and_not(st.invalid);
  st.boundary.for_each_set([&](size_t lv) {
    if (dist[lv] < kInfDist) st.enqueue(lv);
  });
  for (const graph::Edge& e : batch.inserts) {
    for (Vertex a : {e.u, e.v}) {
      if (space.owner(a) != ctx.rank) continue;
      uint64_t la = space.to_local(ctx.rank, a);
      if (!st.invalid.get(size_t(la)) && dist[la] < kInfDist) st.enqueue(la);
    }
  }
  (void)root;

  const size_t nranks = size_t(ctx.nranks());
  for (;;) {
    ch.dist.begin(nranks, 1, ch.plan, ctx.rank);
    uint64_t staged = 0;
    for (uint32_t lv : st.frontier) {
      Vertex g = space.to_global(ctx.rank, lv);
      for (Vertex nbr : part.adj.neighbors(lv)) {
        ch.dist.push(0, size_t(space.owner(nbr)),
                     analytics::DistMsg{nbr, dist[lv] + weight(g, nbr)});
        ++staged;
      }
      arcs_scanned += part.adj.degree(lv);
    }
    st.frontier.clear();
    st.in_frontier.reset();
    if (ctx.world.allreduce_sum(staged) == 0) break;
    ++stats.repair_rounds;
    std::span<const analytics::DistMsg> got = ch.dist.exchange(ctx.world, pool);
    for (const analytics::DistMsg& m : got) {
      uint64_t lv = space.to_local(ctx.rank, m.dst);
      if (m.dist < dist[lv]) {
        dist[lv] = m.dist;
        ++stats.relaxations;
        st.enqueue(lv);
      }
    }
  }

  stats.compute_model_s = double(arcs_scanned) * options.sim_seconds_per_edge;
  return stats;
}

}  // namespace sunbfs::mutate
