#include "mutate/apply.hpp"

#include "support/check.hpp"

namespace sunbfs::mutate {

namespace {

/// Append one arc, compacting the CSR once when the row is full.
void insert_arc(graph::Csr& csr, uint64_t row, graph::Vertex value,
                ApplyStats& stats) {
  if (!csr.insert_arc(row, value)) {
    csr.compact();
    ++stats.compactions;
    SUNBFS_CHECK(csr.insert_arc(row, value));
  }
  ++stats.inserted_arcs;
}

void erase_arcs(graph::Csr& csr, uint64_t row, graph::Vertex value,
                ApplyStats& stats, uint64_t* removed_out = nullptr) {
  uint64_t removed = csr.erase_arcs(row, value);
  stats.deleted_arcs += removed;
  if (removed_out != nullptr) *removed_out = removed;
}

}  // namespace

ApplyStats apply_batch_1d(int rank, partition::Part1d& part,
                          const MutationBatch& batch,
                          std::vector<uint64_t>* local_degrees) {
  const partition::VertexSpace& space = part.space;
  ApplyStats stats;
  auto bump_degree = [&](uint64_t lloc, int64_t delta) {
    if (local_degrees != nullptr)
      (*local_degrees)[lloc] = uint64_t(int64_t((*local_degrees)[lloc]) + delta);
  };
  for (const graph::Edge& e : batch.inserts) {
    if (space.owner(e.u) == rank) {
      uint64_t lu = space.to_local(rank, e.u);
      insert_arc(part.adj, lu, e.v, stats);
      bump_degree(lu, 1);
    }
    if (space.owner(e.v) == rank) {
      uint64_t lv = space.to_local(rank, e.v);
      insert_arc(part.adj, lv, e.u, stats);
      bump_degree(lv, 1);
    }
  }
  for (const graph::Edge& e : batch.deletes) {
    uint64_t removed_total = 0;
    bool owned = false;
    if (space.owner(e.u) == rank) {
      owned = true;
      uint64_t removed = 0;
      uint64_t lu = space.to_local(rank, e.u);
      erase_arcs(part.adj, lu, e.v, stats, &removed);
      bump_degree(lu, -int64_t(removed));
      removed_total += removed;
    }
    // A self loop's two arc copies share one row; the erase above already
    // removed both.
    if (e.u != e.v && space.owner(e.v) == rank) {
      owned = true;
      uint64_t removed = 0;
      uint64_t lv = space.to_local(rank, e.v);
      erase_arcs(part.adj, lv, e.u, stats, &removed);
      bump_degree(lv, -int64_t(removed));
      removed_total += removed;
    }
    if (owned && removed_total == 0) ++stats.delete_misses;
  }
  return stats;
}

ApplyStats apply_batch_15d(const sim::MeshShape& mesh, int rank,
                           partition::Part15d& part,
                           const MutationBatch& batch) {
  const partition::VertexSpace& space = part.space;
  const partition::EhlTable& cls = part.cls;
  [[maybe_unused]] const int my_row = mesh.row_of(rank);
  ApplyStats stats;
  auto eh_rank = [&](uint64_t eh_id) {
    return part.eh_space.owner(graph::Vertex(eh_id));
  };
  auto row_local = [&](graph::Vertex l) {
    int owner = space.owner(l);
    SUNBFS_ASSERT(mesh.row_of(owner) == my_row);
    return part.row_l_offsets[size_t(mesh.col_of(owner))] +
           space.to_local(owner, l);
  };

  // One edge op lands on the exact CSR rows build_15d would have routed its
  // arcs to; `add` switches between append and erase so insert and delete
  // walk identical placement code.
  auto patch_edge = [&](const graph::Edge& e, bool add) {
    uint64_t touched = 0;
    auto patch = [&](graph::Csr& csr, uint64_t row, graph::Vertex value) {
      if (add) {
        insert_arc(csr, row, value, stats);
        ++touched;
      } else {
        uint64_t removed = 0;
        erase_arcs(csr, row, value, stats, &removed);
        touched += removed;
      }
    };
    uint64_t ka = cls.eh_of(e.u);
    uint64_t kb = cls.eh_of(e.v);
    bool a_eh = ka != partition::EhlTable::kNotEh;
    bool b_eh = kb != partition::EhlTable::kNotEh;
    if (a_eh && b_eh) {
      // Both orientations, self loops twice (matching build_15d).  A
      // deleted self loop's duplicate arcs die on the first erase; skip the
      // second orientation so delete_misses stays accurate.
      int n_orient = (!add && ka == kb) ? 1 : 2;
      for (int o = 0; o < n_orient; ++o) {
        uint64_t x = o == 0 ? ka : kb;
        uint64_t y = o == 0 ? kb : ka;
        int dest =
            mesh.rank_of(mesh.row_of(eh_rank(y)), mesh.col_of(eh_rank(x)));
        if (dest != rank) continue;
        patch(part.eh2eh, x, graph::Vertex(y));
        patch(part.eh2eh_rev, y, graph::Vertex(x));
      }
    } else if (a_eh || b_eh) {
      uint64_t k = a_eh ? ka : kb;
      graph::Vertex l = a_eh ? e.v : e.u;
      int lo = space.owner(l);
      if (cls.is_e(k)) {
        if (lo == rank) {
          patch(part.e2l, k, graph::Vertex(space.to_local(rank, l)));
          patch(part.l2e, space.to_local(rank, l), graph::Vertex(k));
        }
      } else {
        int hl_rank =
            mesh.rank_of(mesh.row_of(lo), mesh.col_of(eh_rank(k)));
        if (hl_rank == rank) {
          patch(part.h2l, k, l);
          patch(part.h2l_by_l, row_local(l), graph::Vertex(k));
        }
        if (lo == rank) patch(part.l2h, space.to_local(rank, l), graph::Vertex(k));
      }
    } else {
      if (space.owner(e.u) == rank)
        patch(part.l2l, space.to_local(rank, e.u), e.v);
      if (e.u != e.v && space.owner(e.v) == rank)
        patch(part.l2l, space.to_local(rank, e.v), e.u);
    }
    return touched;
  };

  for (const graph::Edge& e : batch.inserts) patch_edge(e, true);
  for (const graph::Edge& e : batch.deletes)
    if (patch_edge(e, false) == 0) ++stats.delete_misses;

  part.arc_counts[int(partition::Subgraph::EH2EH)] = part.eh2eh.num_arcs();
  part.arc_counts[int(partition::Subgraph::E2L)] = part.e2l.num_arcs();
  part.arc_counts[int(partition::Subgraph::L2E)] = part.l2e.num_arcs();
  part.arc_counts[int(partition::Subgraph::H2L)] = part.h2l.num_arcs();
  part.arc_counts[int(partition::Subgraph::L2H)] = part.l2h.num_arcs();
  part.arc_counts[int(partition::Subgraph::L2L)] = part.l2l.num_arcs();
  return stats;
}

}  // namespace sunbfs::mutate
