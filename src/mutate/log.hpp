#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.hpp"

/// Seeded deterministic mutation log: the streaming-ingest side of the
/// dynamic-graph scenario (ROADMAP "Streaming graph mutations").
///
/// The log models the global graph as an undirected edge multiset keyed by
/// the normalized endpoint pair and generates edge insert/delete batches
/// from one seeded stream:
///
///   * inserts draw uniform endpoint pairs, rejecting self loops, edges
///     already present and edges already used by this batch (duplicate-edge
///     dedup) — an accepted insert always creates a new distinct edge;
///   * deletes either target a live edge (uniform over the distinct live
///     set) or draw a random pair that is usually absent — a tombstone
///     no-op recorded in `delete_misses`.  Deleting an edge removes every
///     duplicate copy the base graph had (tombstone semantics).
///
/// The log is replicated: every rank constructs it from the same (seed,
/// base edge list) and reads identical batches, so applying a batch to the
/// local partitions needs no communication, and a batch can be replayed
/// from the log after a fault rollback.  Real ingest would shard the stream
/// and route ops to partition owners — see DESIGN.md's deviation note.
namespace sunbfs::mutate {

/// One epoch's worth of edge mutations.  Inserts and deletes are disjoint,
/// internally deduplicated, normalized (u <= v) and key-sorted; applying is
/// order-independent.  Semantics: all inserts land, then all deletes.
struct MutationBatch {
  uint64_t epoch = 0;  ///< epoch created by applying this batch (1-based)
  std::vector<graph::Edge> inserts;
  std::vector<graph::Edge> deletes;
  /// Deletes that hit no live edge (tombstone no-ops), decided globally at
  /// generation time against the replicated model.
  uint64_t delete_misses = 0;
};

struct MutationLogConfig {
  uint64_t seed = 99;
  int inserts_per_batch = 6;
  int deletes_per_batch = 6;
  /// Fraction of delete draws taken as uniform vertex pairs (usually
  /// absent -> tombstone no-op) instead of live edges.
  double phantom_fraction = 0.25;
};

class MutationLog {
 public:
  /// `base` is the full global edge list (duplicates and self loops kept,
  /// multiplicity preserved); identical on every rank.
  MutationLog(const MutationLogConfig& config, uint64_t num_vertices,
              std::span<const graph::Edge> base);

  /// Generate (and retain) the next batch.  Deterministic: batch k depends
  /// only on (config, base, k).
  const MutationBatch& generate_next();

  /// Batches generated so far; batch(i) replays batch i (epoch i + 1).
  uint64_t size() const { return batches_.size(); }
  const MutationBatch& batch(uint64_t i) const { return batches_[i]; }

  /// Multiplicity of edge {u, v} in the current snapshot (0 == absent).
  uint64_t multiplicity(graph::Vertex u, graph::Vertex v) const;
  /// Distinct live edges.
  uint64_t live_edges() const { return live_keys_.size(); }
  /// Live arcs, counting multiplicity and both directions (self loops
  /// twice): matches Part1d::adj.num_arcs() summed over ranks.
  uint64_t live_arcs() const { return live_arcs_; }

  /// The current global edge list (normalized, key-sorted, multiplicity
  /// expanded): deterministic, so SPMD ranks can slice it consistently to
  /// rebuild reference partitions of the mutated graph.
  std::vector<graph::Edge> snapshot() const;

 private:
  struct EdgeState {
    uint64_t count = 0;     // multiplicity
    uint64_t live_idx = 0;  // position in live_keys_ (for uniform draws)
  };

  uint64_t key_of(graph::Vertex u, graph::Vertex v) const;
  void model_insert(uint64_t key);
  bool model_delete(uint64_t key);  // false == miss

  MutationLogConfig config_;
  uint64_t num_vertices_ = 0;
  std::unordered_map<uint64_t, EdgeState> edges_;
  std::vector<uint64_t> live_keys_;
  uint64_t live_arcs_ = 0;
  std::vector<MutationBatch> batches_;
};

}  // namespace sunbfs::mutate
