#pragma once

#include <cstdint>
#include <vector>

#include "mutate/log.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "sim/topology.hpp"

/// In-place application of a mutation batch to the resident partitions —
/// per-subgraph CSR patch/append with periodic compaction, no
/// re-partitioning and no communication (the log is replicated, so every
/// rank filters the same batch down to the arcs it stores).
///
/// The 1.5D placement rules are exactly build_15d's: classification (the
/// EhlTable, the EH id space, local_is_eh) is frozen at build time, so a
/// vertex that grows past a degree threshold after mutations keeps its
/// class until the next full rebuild — see DESIGN.md's deviation note.
namespace sunbfs::mutate {

struct ApplyStats {
  uint64_t inserted_arcs = 0;  ///< arcs added to this rank's CSRs
  uint64_t deleted_arcs = 0;   ///< arcs removed from this rank's CSRs
  /// Delete ops owning rows here that removed nothing (local tombstone
  /// no-ops; the global miss count lives on MutationBatch::delete_misses).
  uint64_t delete_misses = 0;
  uint64_t compactions = 0;  ///< CSR rebuilds triggered by full rows

  void merge(const ApplyStats& o) {
    inserted_arcs += o.inserted_arcs;
    deleted_arcs += o.deleted_arcs;
    delete_misses += o.delete_misses;
    compactions += o.compactions;
  }
};

/// Patch this rank's 1D partition.  Pure-local; deterministic.  When
/// `local_degrees` is given (the session's degree slice), it is kept in
/// sync with the adjacency.
ApplyStats apply_batch_1d(int rank, partition::Part1d& part,
                          const MutationBatch& batch,
                          std::vector<uint64_t>* local_degrees = nullptr);

/// Patch this rank's 1.5D partition (all six subgraph CSRs plus the
/// destination-major h2l_by_l mirror); arc_counts are refreshed.
/// Pure-local; deterministic.
ApplyStats apply_batch_15d(const sim::MeshShape& mesh, int rank,
                           partition::Part15d& part,
                           const MutationBatch& batch);

}  // namespace sunbfs::mutate
