#include "mutate/log.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/random.hpp"

namespace sunbfs::mutate {

namespace {

constexpr int kMaxDraws = 64;  // rejection-sampling retries per op

bool key_less(const graph::Edge& a, const graph::Edge& b) {
  return a.u != b.u ? a.u < b.u : a.v < b.v;
}

}  // namespace

MutationLog::MutationLog(const MutationLogConfig& config,
                         uint64_t num_vertices,
                         std::span<const graph::Edge> base)
    : config_(config), num_vertices_(num_vertices) {
  SUNBFS_CHECK(num_vertices_ > 0 && num_vertices_ < (uint64_t(1) << 32));
  for (const graph::Edge& e : base) {
    uint64_t key = key_of(e.u, e.v);
    auto [it, fresh] = edges_.try_emplace(key);
    if (fresh) {
      it->second.live_idx = live_keys_.size();
      live_keys_.push_back(key);
    }
    it->second.count++;
    live_arcs_ += 2;  // both directions; self loops count twice
  }
}

uint64_t MutationLog::key_of(graph::Vertex u, graph::Vertex v) const {
  SUNBFS_ASSERT(u >= 0 && uint64_t(u) < num_vertices_);
  SUNBFS_ASSERT(v >= 0 && uint64_t(v) < num_vertices_);
  uint64_t lo = uint64_t(u < v ? u : v);
  uint64_t hi = uint64_t(u < v ? v : u);
  return (lo << 32) | hi;
}

void MutationLog::model_insert(uint64_t key) {
  auto [it, fresh] = edges_.try_emplace(key);
  SUNBFS_ASSERT(fresh);  // generator only inserts novel edges
  it->second.count = 1;
  it->second.live_idx = live_keys_.size();
  live_keys_.push_back(key);
  live_arcs_ += 2;
}

bool MutationLog::model_delete(uint64_t key) {
  auto it = edges_.find(key);
  if (it == edges_.end()) return false;
  live_arcs_ -= 2 * it->second.count;
  // Swap-remove from the live list, keeping the moved key's index fresh.
  uint64_t idx = it->second.live_idx;
  uint64_t moved = live_keys_.back();
  live_keys_[idx] = moved;
  live_keys_.pop_back();
  if (moved != key) edges_[moved].live_idx = idx;
  edges_.erase(it);
  return true;
}

uint64_t MutationLog::multiplicity(graph::Vertex u, graph::Vertex v) const {
  auto it = edges_.find(key_of(u, v));
  return it == edges_.end() ? 0 : it->second.count;
}

std::vector<graph::Edge> MutationLog::snapshot() const {
  std::vector<uint64_t> keys = live_keys_;
  std::sort(keys.begin(), keys.end());
  std::vector<graph::Edge> out;
  out.reserve(size_t(live_arcs_ / 2));
  for (uint64_t key : keys) {
    graph::Edge e{graph::Vertex(key >> 32),
                  graph::Vertex(key & 0xFFFFFFFFull)};
    for (uint64_t c = edges_.at(key).count; c > 0; --c) out.push_back(e);
  }
  return out;
}

const MutationBatch& MutationLog::generate_next() {
  // One generator per batch, derived from (seed, batch index): batch k's
  // draws do not depend on how many draws earlier batches consumed.
  Xoshiro256StarStar rng(SplitMix64::mix(config_.seed) ^
                         SplitMix64::mix(batches_.size() + 1));
  MutationBatch batch;
  batch.epoch = batches_.size() + 1;

  // Keys already used by this batch: inserts and deletes stay disjoint and
  // internally deduplicated.
  std::vector<uint64_t> used;
  auto in_batch = [&](uint64_t key) {
    return std::find(used.begin(), used.end(), key) != used.end();
  };

  for (int i = 0; i < config_.inserts_per_batch; ++i) {
    for (int draw = 0; draw < kMaxDraws; ++draw) {
      graph::Vertex u = graph::Vertex(rng.next_below(num_vertices_));
      graph::Vertex v = graph::Vertex(rng.next_below(num_vertices_));
      if (u == v) continue;
      uint64_t key = key_of(u, v);
      if (edges_.count(key) != 0 || in_batch(key)) continue;
      batch.inserts.push_back({u < v ? u : v, u < v ? v : u});
      used.push_back(key);
      model_insert(key);
      break;
    }
  }

  for (int i = 0; i < config_.deletes_per_batch; ++i) {
    bool phantom = rng.next_double() < config_.phantom_fraction;
    if (!phantom && live_keys_.empty()) phantom = true;
    for (int draw = 0; draw < kMaxDraws; ++draw) {
      uint64_t key;
      if (phantom) {
        graph::Vertex u = graph::Vertex(rng.next_below(num_vertices_));
        graph::Vertex v = graph::Vertex(rng.next_below(num_vertices_));
        if (u == v) continue;
        key = key_of(u, v);
      } else {
        key = live_keys_[rng.next_below(live_keys_.size())];
      }
      if (in_batch(key)) continue;
      batch.deletes.push_back({graph::Vertex(key >> 32),
                               graph::Vertex(key & 0xFFFFFFFFull)});
      used.push_back(key);
      if (!model_delete(key)) batch.delete_misses++;
      break;
    }
  }

  std::sort(batch.inserts.begin(), batch.inserts.end(), key_less);
  std::sort(batch.deletes.begin(), batch.deletes.end(), key_less);
  batches_.push_back(std::move(batch));
  return batches_.back();
}

}  // namespace sunbfs::mutate
