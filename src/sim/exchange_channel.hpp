#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "sim/comm_buffer.hpp"
#include "sim/exchange.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

/// Execution of an ExchangePlan over the reusable staging pools.
///
/// ExchangeChannel<T> keeps the A2aStaging begin/push/exchange/src_offsets
/// surface the engines already speak, and adds one staged-round overload of
/// begin(): hand it a plan with stages() > 0 and every push is wrapped in a
/// Routed<T> envelope, sent through the plan's hops (each hop an ordinary —
/// encoded, checksummed, fault-injectable — alltoallv over the same
/// communicator), merged in flight where the payload's ExchangeMergePolicy
/// allows, and finally unwrapped into a receive buffer whose per-source
/// delimiters match what a direct alltoallv would have produced.  Receivers
/// that reconstruct global ids from the source rank (CompactMsg, MsbfsMsg)
/// therefore work unchanged; they only ever see messages in a different
/// order, which every receive path tolerates by contract (docs/PERF.md).
///
/// Two pools by value: `direct_` carries plain T rounds, `hop_` carries the
/// routed envelopes.  Keeping them separate (rather than nesting
/// A2aStaging<Routed<T>> rounds inside one pool) preserves the grow-only
/// capacity story — prime() + prime_staged() reserve both shapes up front
/// and steady-state `comm.staging_allocs` stays zero for every backend.
namespace sunbfs::sim {

template <typename T>
class ExchangeChannel {
 public:
  /// Wire-encoding policy for both legs.  As with A2aStaging, set before
  /// priming so encoded buffers land in the warmup reservation.
  void set_encoding(const EncodingOptions& enc) {
    direct_.set_encoding(enc);
    hop_.set_encoding(enc);
  }
  const EncodingOptions& encoding() const { return direct_.encoding(); }

  /// Open a direct round: plain alltoallv, byte-identical to A2aStaging.
  void begin(size_t nparts, size_t nthreads) {
    staged_ = false;
    nparts_ = nparts;
    direct_.begin(nparts, nthreads);
  }

  /// Open a staged round routed by `plan`; `self` is this rank's id in the
  /// communicator the exchange will run over.  A degenerate plan
  /// (stages() == 0) falls back to the direct round — same bytes, same
  /// collective count on every rank.
  void begin(size_t nparts, size_t nthreads, const ExchangePlan& plan,
             int self) {
    if (plan.stages() == 0) {
      begin(nparts, nthreads);
      return;
    }
    SUNBFS_ASSERT(size_t(plan.nparts()) == nparts);
    staged_ = true;
    plan_ = &plan;
    self_ = self;
    nparts_ = nparts;
    hop_.set_merge(true);
    hop_.begin(nparts, nthreads);
  }

  /// Append one message for final destination `dst` from writer lane
  /// `thread`.  Staged rounds stage into the stage-0 hop's lane.
  void push(size_t thread, size_t dst, const T& msg) {
    if (!staged_) {
      direct_.push(thread, dst, msg);
      return;
    }
    const size_t first = size_t(plan_->hop(0, self_, int(dst)));
    hop_.push(thread, first,
              Routed<T>{Routed<T>::make_route(uint32_t(dst), uint32_t(self_)),
                        msg});
  }

  /// Run the round: one alltoallv when direct, one per stage when staged
  /// (re-staging between hops, merging at every one).  Returns the received
  /// concatenation, delimited per original source by src_offsets().
  std::span<const T> exchange(Comm& comm, ThreadPool& pool) {
    if (!staged_) return direct_.exchange(comm, pool);
    std::span<const Routed<T>> held = hop_.exchange(comm, pool);
    for (int s = 1; s < plan_->stages(); ++s) {
      hop_.begin(nparts_, 1);
      for (const Routed<T>& m : held)
        hop_.push(0, size_t(plan_->hop(s, self_, int(m.dst_part()))), m);
      held = hop_.exchange(comm, pool);
    }
    // Every surviving envelope terminates here; unwrap with a stable
    // counting sort by source rank so src_offsets() delimits exactly as a
    // direct alltoallv would (the merge policies guarantee each survivor's
    // source is the one whose payload the receiver must attribute).
    if (src_offsets_.capacity() < nparts_ + 1) ++allocs_;
    src_offsets_.assign(nparts_ + 1, 0);
    for (const Routed<T>& m : held) {
      SUNBFS_ASSERT(m.dst_part() == uint32_t(self_));
      ++src_offsets_[m.src_part() + 1];
    }
    for (size_t s = 0; s < nparts_; ++s) src_offsets_[s + 1] += src_offsets_[s];
    if (fill_.capacity() < nparts_) ++allocs_;
    fill_.assign(src_offsets_.begin(), src_offsets_.end() - 1);
    if (held.size() > final_.capacity()) ++allocs_;
    final_.clear();
    final_.resize(held.size());
    for (const Routed<T>& m : held) final_[fill_[m.src_part()]++] = m.msg;
    return final_;
  }

  /// Per-source delimiters into the last exchange()'s result (nparts+1).
  const std::vector<size_t>& src_offsets() const {
    return staged_ ? src_offsets_ : direct_.src_offsets();
  }

  /// Pre-size the direct leg (identical contract to A2aStaging::prime).
  void prime(size_t nparts, size_t nthreads, size_t lane_cap, size_t send_cap,
             size_t recv_cap) {
    direct_.prime(nparts, nthreads, lane_cap, send_cap, recv_cap);
  }

  /// Pre-size the staged leg for `plan` rounds staged by `nthreads` writers.
  /// `lane_cap` bounds one writer's whole staged volume (a single first hop
  /// can absorb everything a thread pushes), `volume_cap` bounds the rank's
  /// per-stage traffic.  Only the hop lanes the plan can actually reach from
  /// `self` get the big reservations; everything else stays at zero, which
  /// is what keeps staged priming affordable while steady-state allocs still
  /// reach zero after the warmup root.
  void prime_staged(const ExchangePlan& plan, int self, size_t nthreads,
                    size_t lane_cap, size_t volume_cap) {
    if (plan.stages() == 0) return;
    const size_t nparts = size_t(plan.nparts());
    // Convergent stages (the fold hop, row splits) can briefly double a
    // rank's held volume relative to the uniform per-rank bound.
    const size_t stage_cap = 2 * volume_cap + 64;
    hop_.prime(nparts, nthreads, /*lane_cap=*/0, stage_cap, stage_cap);
    for (int d = 0; d < int(nparts); ++d) {
      const size_t h0 = size_t(plan.hop(0, self, d));
      for (size_t t = 0; t < nthreads; ++t)
        hop_.prime_lane(nparts, t, h0, lane_cap);
      // hop(s, self, d) at later stages assumes `self` can legitimately
      // hold messages there; a butterfly tail rank (self >= q on a
      // non-power-of-two communicator) cannot — it folded everything away
      // at stage 0 and hop() composes out of range for it.  Such a rank
      // pushes nothing at those stages either, so skipping the lane keeps
      // primed lanes == pushed lanes (steady allocs stay zero).
      for (int s = 1; s < plan.stages(); ++s) {
        const size_t hs = size_t(plan.hop(s, self, d));
        if (hs < nparts) hop_.prime_lane(nparts, 0, hs, stage_cap);
      }
    }
    if (src_offsets_.capacity() < nparts + 1) {
      ++allocs_;
      src_offsets_.reserve(nparts + 1);
    }
    if (fill_.capacity() < nparts) {
      ++allocs_;
      fill_.reserve(nparts);
    }
    if (final_.capacity() < volume_cap) {
      ++allocs_;
      final_.reserve(volume_cap);
    }
  }

  /// Total capacity growths across both legs since construction.
  uint64_t allocs() const {
    return direct_.allocs() + hop_.allocs() + allocs_;
  }

 private:
  A2aStaging<T> direct_;
  A2aStaging<Routed<T>> hop_;
  const ExchangePlan* plan_ = nullptr;
  int self_ = 0;
  size_t nparts_ = 0;
  bool staged_ = false;
  std::vector<T> final_;              // unwrapped staged receive buffer
  std::vector<size_t> src_offsets_;   // staged per-source delimiters
  std::vector<size_t> fill_;          // counting-sort cursors
  uint64_t allocs_ = 0;
};

}  // namespace sunbfs::sim
