#include "sim/runtime.hpp"

#include <mutex>
#include <thread>

#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace sunbfs::sim {

SpmdReport run_spmd(const Topology& topology,
                    const std::function<void(RankContext&)>& body,
                    const SpmdOptions& options) {
  const MeshShape mesh = topology.mesh();
  const int nranks = mesh.ranks();
  SUNBFS_CHECK(nranks >= 1);

  // Shared collective state: one world group, one group per row and column.
  std::vector<int> world_ranks(nranks);
  for (int r = 0; r < nranks; ++r) world_ranks[r] = r;
  CommShared world_shared(world_ranks, &topology);

  std::vector<std::unique_ptr<CommShared>> row_shared;
  for (int r = 0; r < mesh.rows; ++r) {
    std::vector<int> ranks(mesh.cols);
    for (int c = 0; c < mesh.cols; ++c) ranks[c] = mesh.rank_of(r, c);
    row_shared.push_back(std::make_unique<CommShared>(ranks, &topology));
  }
  std::vector<std::unique_ptr<CommShared>> col_shared;
  for (int c = 0; c < mesh.cols; ++c) {
    std::vector<int> ranks(mesh.rows);
    for (int r = 0; r < mesh.rows; ++r) ranks[r] = mesh.rank_of(r, c);
    col_shared.push_back(std::make_unique<CommShared>(ranks, &topology));
  }

  auto abort_all = [&] {
    world_shared.barrier.abort();
    for (auto& s : row_shared) s->barrier.abort();
    for (auto& s : col_shared) s->barrier.abort();
  };

  std::vector<RankContext> contexts(nranks);
  std::mutex err_mu;
  std::exception_ptr first_error;
  // Every rank's exception message (not just the first): multi-rank failures
  // must stay diagnosable.
  std::vector<std::string> rank_errors(static_cast<size_t>(nranks));
  std::vector<bool> rank_failed(size_t(nranks), false);

  auto rank_main = [&](int rank) {
    RankContext& ctx = contexts[rank];
    ctx.rank = rank;
    ctx.mesh = mesh;
    ctx.topology = &topology;
    ctx.faults.plan = options.faults;
    ctx.faults.policy = options.policy;
    ctx.faults.checksums = options.checksums_enabled();
    ctx.world = Comm(&world_shared, rank, &ctx.stats, &ctx.faults);
    ctx.row = Comm(row_shared[mesh.row_of(rank)].get(), mesh.col_of(rank),
                   &ctx.stats, &ctx.faults);
    ctx.col = Comm(col_shared[mesh.col_of(rank)].get(), mesh.row_of(rank),
                   &ctx.stats, &ctx.faults);
    // Bind this thread to rank `rank`'s trace buffer for the body's
    // lifetime.  Buffers are keyed by global rank, so sequential run_spmd
    // calls extend one per-rank timeline.
    obs::AttachThread trace_attach(rank);
    obs::Span span("spmd", "rank_body", rank);
    try {
      body(ctx);
    } catch (const AbortError&) {
      // Another rank failed first; just unwind.
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
        rank_errors[size_t(rank)] = e.what();
        rank_failed[size_t(rank)] = true;
      }
      abort_all();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!first_error) first_error = std::current_exception();
        rank_errors[size_t(rank)] = "unknown exception";
        rank_failed[size_t(rank)] = true;
      }
      abort_all();
    }
  };

  if (nranks == 1) {
    rank_main(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(nranks);
    for (int r = 0; r < nranks; ++r)
      threads.emplace_back(rank_main, r);
    for (auto& t : threads) t.join();
  }

  if (first_error && options.policy == FaultPolicy::Abort)
    std::rethrow_exception(first_error);

  SpmdReport report;
  report.per_rank.reserve(nranks);
  report.fault_per_rank.reserve(nranks);
  for (auto& ctx : contexts) {
    report.per_rank.push_back(ctx.stats);
    report.fault_per_rank.push_back(ctx.faults.stats);
  }
  for (int r = 0; r < nranks; ++r)
    if (rank_failed[size_t(r)]) {
      report.errors.push_back("rank " + std::to_string(r) + ": " +
                              rank_errors[size_t(r)]);
      log_debug("spmd: ", report.errors.back());
    }
  return report;
}

void SpmdReport::to_report(obs::Report& report) const {
  aggregate().to_report(report, "comm.");
  fault_totals().to_report(report, "fault.");
  report.add_counter("spmd.ranks", uint64_t(per_rank.size()));
  report.add_counter("spmd.rank_errors", uint64_t(errors.size()));
  report.gauge("spmd.modeled_comm_s", modeled_comm_s());
}

SpmdReport run_spmd(const Topology& topology,
                    const std::function<void(RankContext&)>& body) {
  return run_spmd(topology, body, SpmdOptions{});
}

SpmdReport run_spmd(MeshShape mesh,
                    const std::function<void(RankContext&)>& body) {
  Topology topology(mesh);
  return run_spmd(topology, body, SpmdOptions{});
}

}  // namespace sunbfs::sim
