#pragma once

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

/// Whole-attempt rollback-and-replay for collective engines without
/// per-level checkpoints (the SSSP / delta-stepping query path).  The BFS
/// engines checkpoint mid-search because a search is long; a single SSSP
/// query is short enough that the cheapest consistent checkpoint is its
/// initial state, so recovery is: run the attempt, agree collectively on
/// the dropped-contribution flag, and either commit or discard the attempt
/// wholesale, back off (capped exponential, on the modeled clock) and
/// replay.  The decision inputs — the replicated fault plan and the agreed
/// flag — are identical on every rank, so all ranks restart at the same
/// point and the committed result is bit-identical to a fault-free run.
namespace sunbfs::sim {

/// Hands planned rank failures to the replay driver.  The body must call
/// epoch(n) once per round/bucket sweep with a replicated counter n
/// (starting at 1), at a collective-aligned point: failures fire there,
/// mid-attempt, the way they fire mid-search in bfs1d/bfs15d.  Under
/// FaultPolicy::Recover the attempt is discarded on every rank (the victim
/// counts the injection); under other policies the victim rank dies with
/// sim::RankFailure.
class ReplayGuard {
 public:
  /// Internal control-flow signal thrown by epoch(); run_with_replay
  /// catches it.  Never escapes to callers.
  struct Aborted {};

  ReplayGuard(RankContext& ctx, bool resilient)
      : ctx_(ctx), resilient_(resilient) {
    if (resilient_)
      fired_.assign(ctx_.faults.plan->rank_failures().size(), false);
  }

  void epoch(int level) {
    if (!resilient_) {
      if (ctx_.faults.active())
        for (const auto& f : ctx_.faults.plan->rank_failures())
          if (f.rank == ctx_.rank && f.level == level)
            throw RankFailure(f.rank, f.level);
      return;
    }
    // Replicated plan, replicated epoch counter: every rank latches the
    // same entries and aborts the attempt at the same program point.
    const auto& failures = ctx_.faults.plan->rank_failures();
    bool fired = false;
    for (size_t i = 0; i < failures.size(); ++i) {
      if (fired_[i] || failures[i].level != level) continue;
      fired_[i] = true;
      fired = true;
      if (failures[i].rank == ctx_.rank) {
        ++ctx_.faults.stats.injected_failures;
        log_debug("replay rank ", ctx_.rank,
                  ": injected hard failure at epoch ", level);
      }
    }
    if (fired) throw Aborted{};
  }

 private:
  RankContext& ctx_;
  bool resilient_;
  std::vector<bool> fired_;
};

/// Run `body(guard)` — one full collective pass over ctx.world — under the
/// rollback-and-replay contract described above.  Returns the first
/// committed (fault-free) attempt's result; throws FaultDetected once
/// rec.max_retries consecutive attempts were discarded.  Without the
/// Recover policy the body runs exactly once (planned rank failures then
/// kill their rank via the guard).
template <typename Body>
auto run_with_replay(RankContext& ctx, const RecoveryOptions& rec,
                     Body&& body) {
  const bool resilient = ctx.faults.recovering();
  ReplayGuard guard(ctx, resilient);
  if (!resilient) return body(guard);
  int consecutive_retries = 0;
  bool in_recovery = false;
  auto rollback = [&](const char* why) {
    obs::Span span("fault", "replay_restart");
    ++consecutive_retries;
    if (consecutive_retries > rec.max_retries)
      throw FaultDetected("fault: recovery retries exhausted after " +
                          std::to_string(rec.max_retries) + " attempts");
    auto& fs = ctx.faults.stats;
    ++fs.retries;
    in_recovery = true;
    double delay = backoff_delay_s(rec, consecutive_retries);
    fs.backoff_s += delay;
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    obs::Tracer::advance_modeled(delay);
    log_debug("replay rank ", ctx.rank, ": attempt discarded (", why,
              "), retry ", consecutive_retries);
  };
  for (;;) {
    // The attempt starts clean: pending flags left over from a discarded
    // attempt were accounted for by that attempt's rollback already.
    (void)ctx.faults.take_pending();
    const uint64_t bytes0 = ctx.stats.total_bytes_sent();
    bool aborted = false;
    using Result = decltype(body(guard));
    Result result{};
    try {
      result = body(guard);
    } catch (const ReplayGuard::Aborted&) {
      aborted = true;
    }
    // Aborted or not, every rank reaches this agreement at the same program
    // position (the abort decision is replicated), so it stays aligned.
    bool faulty = ctx.world.allreduce_or(ctx.faults.take_pending());
    faulty = ctx.faults.take_pending() || faulty;
    if (aborted || faulty) {
      ctx.faults.stats.resent_bytes += ctx.stats.total_bytes_sent() - bytes0;
      rollback(aborted ? "rank failure" : "dropped contribution");
      continue;
    }
    if (in_recovery) {
      ++ctx.faults.stats.recovered;
      in_recovery = false;
      consecutive_retries = 0;
    }
    return result;
  }
}

}  // namespace sunbfs::sim
