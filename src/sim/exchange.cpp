#include "sim/exchange.hpp"

#include <algorithm>

namespace sunbfs::sim {

/// Uniform-traffic volume model: every rank starts with `bytes_per_rank`
/// spread evenly over all destinations, and each stage routes every held
/// (destination-rank) flow one hop.  Per stage we charge
/// Topology::transfer_time with the most loaded rank's intra/inter split —
/// the same max-semantics the collectives use — and accumulate the link
/// bytes.  Merging is deliberately not modeled: the score is the price of a
/// plan's hops, the measured benches show what in-flight merging buys back.
ExchangeScore score_exchange_plan(const Topology& topo,
                                  const ExchangePlan& plan,
                                  uint64_t bytes_per_rank) {
  const int nparts = std::max(plan.nparts(), 1);
  const double per_flow = double(bytes_per_rank) / double(nparts);
  ExchangeScore score;
  score.stages = plan.stages();

  // vol[h * nparts + d]: bytes held at rank h destined for rank d.
  std::vector<double> vol(size_t(nparts) * size_t(nparts), per_flow);
  std::vector<double> next(vol.size());
  std::vector<double> intra(size_t(nparts), 0.0);
  std::vector<double> inter(size_t(nparts), 0.0);

  auto charge = [&](auto hop_of) {
    std::fill(next.begin(), next.end(), 0.0);
    std::fill(intra.begin(), intra.end(), 0.0);
    std::fill(inter.begin(), inter.end(), 0.0);
    for (int h = 0; h < nparts; ++h)
      for (int d = 0; d < nparts; ++d) {
        const double v = vol[size_t(h) * size_t(nparts) + size_t(d)];
        if (v == 0) continue;
        const int to = hop_of(h, d);
        next[size_t(to) * size_t(nparts) + size_t(d)] += v;
        if (to == h) continue;  // self-hops are free, as in Comm
        if (topo.same_supernode(h, to))
          intra[size_t(h)] += v;
        else
          inter[size_t(h)] += v;
      }
    double max_intra = 0, max_inter = 0, sum_intra = 0, sum_inter = 0;
    for (int h = 0; h < nparts; ++h) {
      max_intra = std::max(max_intra, intra[size_t(h)]);
      max_inter = std::max(max_inter, inter[size_t(h)]);
      sum_intra += intra[size_t(h)];
      sum_inter += inter[size_t(h)];
    }
    score.total_bytes += uint64_t(sum_intra + sum_inter);
    score.inter_bytes += uint64_t(sum_inter);
    score.modeled_s += topo.transfer_time(nparts, uint64_t(max_intra),
                                          uint64_t(max_inter));
    vol.swap(next);
  };

  if (plan.stages() == 0) {
    charge([&](int /*h*/, int d) { return d; });
    return score;
  }
  for (int s = 0; s < plan.stages(); ++s)
    charge([&](int h, int d) { return plan.hop(s, h, d); });
  return score;
}

}  // namespace sunbfs::sim
