#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/comm_stats.hpp"

/// Fault injection and detection for the SPMD runtime.
///
/// At the paper's scale (103,912 nodes) stragglers, corrupted transfers and
/// dying ranks are routine, so the simulated runtime must exercise the
/// unhappy paths too.  A FaultPlan is a deterministic, seeded schedule of
/// faults keyed on (rank, collective type, per-rank call index) — the same
/// plan over the same program replays the same faults at exactly the same
/// points.  Comm consults the plan at every collective: stragglers delay the
/// caller before it publishes, payload faults corrupt the published bytes
/// (the sender's checksum still covers the original payload, so receivers
/// detect the mismatch), and rank failures fire at a chosen BFS level
/// through the engines' recovery loops.
///
/// Detection raises a typed FaultDetected on the receiving rank — or, under
/// the `recover` policy, drops the corrupted contribution and records a
/// pending fault so the BFS engines can roll back to their last checkpoint
/// at a globally consistent point and replay.
///
/// Contract with the engines (PR 1): faults fire only while
/// FaultState::armed, and call indices in a plan count *armed* calls of
/// each collective type per global rank — arm/disarm placement is part of
/// the reproducibility contract.  After a detection under `recover`, every
/// rank must reach the same rollback decision collectively (the engines
/// allreduce the pending flag) before any rank replays.  All accounting
/// lands in FaultStats, aggregated through SpmdReport and exportable into
/// an obs::Report via to_report().
namespace sunbfs::sim {

/// Categories of injectable faults.
enum class FaultKind : int {
  Straggler,    ///< delay a rank before it enters a collective
  BitFlip,      ///< flip one bit of a published payload
  Truncate,     ///< shorten a published payload
  RankFailure,  ///< hard failure of one rank at a chosen BFS level
};

const char* fault_kind_name(FaultKind kind);

/// What run_spmd / the BFS engines do when a fault is detected.
enum class FaultPolicy : int {
  Abort,    ///< rethrow on the caller (the pre-fault-framework behaviour)
  Report,   ///< collect every rank's error into the SpmdReport, don't throw
  Recover,  ///< defer detection; engines roll back to a checkpoint and replay
};

/// Whether collectives compute and verify payload checksums.
enum class ChecksumMode : int {
  Auto,  ///< on exactly when a FaultPlan is installed
  On,
  Off,
};

/// Raised when a checksum or size mismatch is detected inside a collective.
class FaultDetected : public std::runtime_error {
 public:
  explicit FaultDetected(const std::string& what,
                         CollectiveType collective = CollectiveType::Barrier,
                         int source_rank = -1, int detector_rank = -1)
      : std::runtime_error(what),
        collective(collective),
        source_rank(source_rank),
        detector_rank(detector_rank) {}

  CollectiveType collective;
  int source_rank;    ///< global rank that published the bad payload (-1 n/a)
  int detector_rank;  ///< global rank that noticed
};

/// Raised on a rank scheduled to fail hard (abort / report policies only;
/// under recover the engines absorb the failure and restore from checkpoint).
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, int level)
      : std::runtime_error("injected hard failure of rank " +
                           std::to_string(rank) + " at BFS level " +
                           std::to_string(level)),
        rank(rank),
        level(level) {}

  int rank;
  int level;
};

/// xxhash-style 64-bit payload checksum (XXH64 with a fixed seed).
uint64_t checksum64(const void* data, uint64_t nbytes);

/// One scheduled straggler delay.
struct StragglerFault {
  int rank = 0;
  CollectiveType collective = CollectiveType::Alltoallv;
  uint64_t call_index = 0;  ///< nth armed call of `collective` on `rank`
  double delay_s = 0;
};

/// One scheduled payload corruption (bit flip or truncation).
struct PayloadFault {
  int rank = 0;  ///< sender whose published payload is corrupted
  CollectiveType collective = CollectiveType::Alltoallv;
  uint64_t call_index = 0;
  FaultKind kind = FaultKind::BitFlip;
  /// For alltoallv: destination index within the communicator whose message
  /// is corrupted; -1 picks the first non-empty message.
  int peer = -1;
};

/// One scheduled hard rank failure.
struct RankFailureFault {
  int rank = 0;
  int level = 1;  ///< BFS iteration (1-based) at whose start the rank dies
};

/// Deterministic, seeded schedule of faults.  Immutable once installed;
/// shared read-only by every rank thread.
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& add_straggler(int rank, CollectiveType collective,
                           uint64_t call_index, double delay_s);
  FaultPlan& add_bitflip(int rank, CollectiveType collective,
                         uint64_t call_index, int peer = -1);
  FaultPlan& add_truncate(int rank, CollectiveType collective,
                          uint64_t call_index, int peer = -1);
  FaultPlan& add_rank_failure(int rank, int level);

  /// Seeded random plan: `stragglers` delays, `corruptions` payload faults
  /// and `failures` hard rank failures spread over `nranks` ranks, firing
  /// within the first few dozen armed collectives / `max_level` BFS levels.
  static FaultPlan random(uint64_t seed, int nranks, int stragglers,
                          int corruptions, int failures, int max_level = 3);

  /// Straggler scheduled for this exact call, or nullptr.
  const StragglerFault* straggler(int rank, CollectiveType collective,
                                  uint64_t call_index) const;
  /// Payload fault scheduled for this exact call, or nullptr.
  const PayloadFault* payload(int rank, CollectiveType collective,
                              uint64_t call_index) const;
  const std::vector<RankFailureFault>& rank_failures() const {
    return rank_failures_;
  }

  bool empty() const {
    return stragglers_.empty() && payloads_.empty() && rank_failures_.empty();
  }

  std::string to_string() const;

 private:
  std::vector<StragglerFault> stragglers_;
  std::vector<PayloadFault> payloads_;
  std::vector<RankFailureFault> rank_failures_;
};

/// Per-rank fault accounting, surfaced through SpmdReport.
struct FaultStats {
  uint64_t injected_stragglers = 0;
  uint64_t injected_corruptions = 0;
  uint64_t injected_failures = 0;
  uint64_t detected = 0;   ///< checksum mismatches observed by this rank
  uint64_t recovered = 0;  ///< successful rollback + replay completions
  uint64_t retries = 0;    ///< rollbacks attempted
  double backoff_s = 0;    ///< total retry backoff slept
  double straggler_delay_s = 0;
  /// Bytes sent since the last checkpoint when a rollback fired (they are
  /// re-sent during replay and re-charged through the topology cost model).
  uint64_t resent_bytes = 0;

  uint64_t injected() const {
    return injected_stragglers + injected_corruptions + injected_failures;
  }

  void merge(const FaultStats& other);
  std::string to_string() const;

  /// Fold into a metrics report as "<prefix>injected_stragglers",
  /// "<prefix>detected", ... (see docs/OBSERVABILITY.md).
  void to_report(obs::Report& report,
                 const std::string& prefix = "fault.") const;
};

/// Per-rank mutable fault state: the installed plan, policy, call counters
/// and pending-detection flag.  Owned by RankContext; consulted by Comm.
struct FaultState {
  const FaultPlan* plan = nullptr;
  FaultPolicy policy = FaultPolicy::Abort;
  bool checksums = false;
  /// Plans fire only while armed; call counters advance only while armed, so
  /// call indices are relative to the arming point (the BFS phase).
  bool armed = true;
  FaultStats stats;
  /// Armed collective calls issued by this rank, per collective type.
  std::array<uint64_t, kCollectiveTypeCount> calls{};
  /// Payload faults whose scheduled call carried no payload to corrupt;
  /// they stick and fire at the rank's next non-empty call of that type.
  std::array<const PayloadFault*, kCollectiveTypeCount> deferred{};
  /// Set when a corruption was detected under the recover policy; the BFS
  /// engines agree on it collectively and roll back.
  bool pending = false;

  bool active() const { return plan != nullptr && armed; }
  bool recovering() const {
    return plan != nullptr && policy == FaultPolicy::Recover;
  }
  bool take_pending() {
    bool p = pending;
    pending = false;
    return p;
  }
};

/// Knobs of the engines' checkpoint/retry loop.
struct RecoveryOptions {
  /// Save a level checkpoint every this many BFS iterations (>= 1).
  int checkpoint_interval = 2;
  /// Rollbacks allowed before the run gives up with FaultDetected.
  int max_retries = 8;
  /// Capped exponential backoff slept before each replay.
  double backoff_base_s = 0.5e-3;
  double backoff_cap_s = 8e-3;
};

/// Backoff before retry number `retry` (1-based): base * 2^(retry-1), capped.
double backoff_delay_s(const RecoveryOptions& opts, int retry);

}  // namespace sunbfs::sim
