#pragma once

#include <cstdint>
#include <string>

#include "support/check.hpp"

/// Machine topology and network cost model.
///
/// The paper's machine organizes processes into an R×C virtual mesh whose
/// rows map to supernodes; intra-supernode links are unblocked while the
/// top-level fat tree is oversubscribed (8× on New Sunway).  We reproduce
/// those proportions in a cost model: every collective charges modeled
/// seconds computed from the bytes each participant moves, split into
/// intra-supernode and inter-supernode portions.
///
/// Contract: the cost model is a pure function of (params, byte counts), so
/// every rank of a collective computes the *same* modeled seconds from the
/// same aggregate counts (max-semantics — the collective is as slow as its
/// slowest participant).  This determinism is what lets CommStats report a
/// single modeled time per collective, lets the obs tracer keep per-rank
/// modeled clocks aligned across ranks, and makes fault-replay (PR 1)
/// re-charge resent bytes identically.  The modeled clock never reads host
/// time; real per-rank imbalance is measured separately as the arrival
/// spread in CommStats::imbalance_s.
namespace sunbfs::sim {

/// Shape of the R×C process mesh.  Ranks are numbered row-major
/// (rank = row * cols + col), matching the paper's Figure 1 numbering.
struct MeshShape {
  int rows = 1;
  int cols = 1;

  int ranks() const { return rows * cols; }
  int row_of(int rank) const { return rank / cols; }
  int col_of(int rank) const { return rank % cols; }
  int rank_of(int row, int col) const { return row * cols + col; }
};

/// Parameters of the modeled interconnect.  Defaults mirror New Sunway
/// proportions (200 Gbps NIC, 8× oversubscribed top-level fat tree) with
/// supernodes equal to mesh rows, as in the paper.
struct TopologyParams {
  /// Ranks per supernode; 0 means "one mesh row per supernode".
  int ranks_per_supernode = 0;
  /// Per-NIC injection bandwidth, bytes/second (200 Gbps = 25 GB/s).
  double nic_bytes_per_s = 25.0e9;
  /// Effective bandwidth divisor for traffic crossing supernodes.
  double oversubscription = 8.0;
  /// Per-hop software+wire latency per collective step, seconds.
  double latency_s = 2.0e-6;
};

/// Static topology: mesh shape, supernode mapping and transfer-time model.
class Topology {
 public:
  Topology(MeshShape mesh, TopologyParams params = {});

  const MeshShape& mesh() const { return mesh_; }
  const TopologyParams& params() const { return params_; }

  int ranks_per_supernode() const { return ranks_per_supernode_; }
  int supernode_count() const;
  int supernode_of(int rank) const { return rank / ranks_per_supernode_; }

  bool same_supernode(int a, int b) const {
    return supernode_of(a) == supernode_of(b);
  }

  /// Modeled seconds for a collective over `participants` ranks where the
  /// most loaded rank moves `max_intra_bytes` within its supernode and
  /// `max_inter_bytes` across supernodes.
  double transfer_time(int participants, uint64_t max_intra_bytes,
                       uint64_t max_inter_bytes) const;

  std::string to_string() const;

 private:
  MeshShape mesh_;
  TopologyParams params_;
  int ranks_per_supernode_;
};

}  // namespace sunbfs::sim
