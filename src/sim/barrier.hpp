#pragma once

#include <condition_variable>
#include <mutex>
#include <stdexcept>

/// Abortable rendezvous barrier for the SPMD runtime.
namespace sunbfs::sim {

/// Thrown out of Barrier::wait on every rank when the SPMD run is aborted
/// (some rank threw); unwinds rank threads so the runtime can join them.
class AbortError : public std::runtime_error {
 public:
  AbortError() : std::runtime_error("SPMD run aborted by another rank") {}
};

/// Sense-reversing barrier over a fixed number of participants, with an
/// abort channel so a failing rank never deadlocks its peers.
class Barrier {
 public:
  explicit Barrier(int participants);

  /// Block until all participants arrive.  Throws AbortError if abort() was
  /// or is called while waiting.
  void wait();

  /// Wake all waiters with AbortError and make future waits throw.
  void abort();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int participants_;
  int waiting_ = 0;
  uint64_t phase_ = 0;
  bool aborted_ = false;
};

}  // namespace sunbfs::sim
