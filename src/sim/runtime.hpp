#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/comm.hpp"
#include "sim/comm_stats.hpp"
#include "sim/topology.hpp"

/// SPMD runtime: runs one function body on every rank of a virtual machine,
/// each rank on its own thread, exactly like an MPI program launched with
/// mpirun.  The body communicates through the world / row / column
/// communicators in its RankContext.
namespace sunbfs::sim {

/// Everything a rank can see: its coordinates, communicators and stats.
struct RankContext {
  int rank = 0;
  MeshShape mesh;
  const Topology* topology = nullptr;
  Comm world;  ///< all ranks
  Comm row;    ///< ranks sharing this rank's mesh row (intra-supernode)
  Comm col;    ///< ranks sharing this rank's mesh column
  CommStats stats;

  int row_index() const { return mesh.row_of(rank); }
  int col_index() const { return mesh.col_of(rank); }
  int nranks() const { return mesh.ranks(); }
};

/// Result of an SPMD run: per-rank communication statistics (indexed by
/// global rank) plus their aggregate.
struct SpmdReport {
  std::vector<CommStats> per_rank;

  CommStats aggregate() const {
    CommStats total;
    for (const auto& s : per_rank) total.merge(s);
    return total;
  }

  /// Modeled network seconds of the run (max semantics: every rank records
  /// the same modeled time per collective, so any rank's total works; we use
  /// rank 0).
  double modeled_comm_s() const {
    return per_rank.empty() ? 0.0 : per_rank[0].total_modeled_s();
  }
};

/// Run `body` on every rank of `topology`'s mesh.  Blocks until all ranks
/// finish.  If any rank throws, all ranks are aborted and the first
/// non-abort exception is rethrown on the caller.
SpmdReport run_spmd(const Topology& topology,
                    const std::function<void(RankContext&)>& body);

/// Convenience overload with default topology parameters.
SpmdReport run_spmd(MeshShape mesh,
                    const std::function<void(RankContext&)>& body);

}  // namespace sunbfs::sim
