#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/comm.hpp"
#include "sim/comm_stats.hpp"
#include "sim/fault.hpp"
#include "sim/topology.hpp"

/// SPMD runtime: runs one function body on every rank of a virtual machine,
/// each rank on its own thread, exactly like an MPI program launched with
/// mpirun.  The body communicates through the world / row / column
/// communicators in its RankContext.
///
/// The contract between the runtime and rank bodies:
///
///  * **Ranks.**  Global rank r lives at mesh coordinates
///    (mesh.row_of(r), mesh.col_of(r)); the row/col communicators renumber
///    it to its coordinate within the group.  A rank's body runs on exactly
///    one thread for the whole call, so thread-local state (including the
///    tracer attachment the runtime installs) is per-rank state.
///  * **Collectives** must be entered by all ranks of the communicator in
///    the same program order — see sim/comm.hpp for the full collective
///    contract, including the two-clock + imbalance accounting every call
///    deposits into RankContext::stats.
///  * **Faults** (PR 1).  The runtime arms nothing by itself: it installs
///    the plan/policy/checksum configuration into RankContext::faults and
///    the engines arm/disarm around the regions they can recover.  Under
///    FaultPolicy::Abort a throwing rank aborts every barrier and the first
///    exception is rethrown on the caller; under Report/Recover all rank
///    errors are collected into SpmdReport::errors and the survivors'
///    statistics are still returned.
namespace sunbfs::sim {

/// Everything a rank can see: its coordinates, communicators and stats.
struct RankContext {
  int rank = 0;
  MeshShape mesh;
  const Topology* topology = nullptr;
  Comm world;  ///< all ranks
  Comm row;    ///< ranks sharing this rank's mesh row (intra-supernode)
  Comm col;    ///< ranks sharing this rank's mesh column
  CommStats stats;
  FaultState faults;  ///< fault plan, policy, counters (see sim/fault.hpp)

  int row_index() const { return mesh.row_of(rank); }
  int col_index() const { return mesh.col_of(rank); }
  int nranks() const { return mesh.ranks(); }
};

/// How run_spmd reacts to faults and rank exceptions.
struct SpmdOptions {
  /// Abort rethrows the first non-abort exception on the caller (the
  /// historical behaviour); Report collects every rank's exception message
  /// into SpmdReport::errors and returns; Recover additionally defers
  /// checksum mismatches so the BFS engines can roll back and replay.
  FaultPolicy policy = FaultPolicy::Abort;
  /// Deterministic fault schedule consulted at every collective (optional).
  const FaultPlan* faults = nullptr;
  /// Payload checksum verification; Auto enables it exactly when a plan is
  /// installed, so fault-free runs pay nothing.
  ChecksumMode checksums = ChecksumMode::Auto;

  bool checksums_enabled() const {
    return checksums == ChecksumMode::On ||
           (checksums == ChecksumMode::Auto && faults != nullptr);
  }
};

/// Result of an SPMD run: per-rank communication statistics (indexed by
/// global rank), their aggregate, per-rank fault accounting and — under the
/// report / recover policies — every failed rank's exception message.
struct SpmdReport {
  std::vector<CommStats> per_rank;
  std::vector<FaultStats> fault_per_rank;
  /// One "rank N: message" entry per rank whose body threw (all of them, not
  /// just the first — multi-rank failures stay diagnosable).  Empty on a
  /// clean run; always empty under the abort policy, which rethrows instead.
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }

  CommStats aggregate() const {
    CommStats total;
    for (const auto& s : per_rank) total.merge(s);
    return total;
  }

  /// Cross-rank roll-up of fault injection/detection/recovery counters.
  FaultStats fault_totals() const {
    FaultStats total;
    for (const auto& f : fault_per_rank) total.merge(f);
    return total;
  }

  /// Modeled network seconds of the run (max semantics: every rank records
  /// the same modeled time per collective, so any rank's total works; we use
  /// rank 0).
  double modeled_comm_s() const {
    return per_rank.empty() ? 0.0 : per_rank[0].total_modeled_s();
  }

  /// Fold the run into a metrics report: aggregated comm counters under
  /// "comm.", fault totals under "fault.", rank/error counts under "spmd.".
  void to_report(obs::Report& report) const;
};

/// Run `body` on every rank of `topology`'s mesh.  Blocks until all ranks
/// finish.  Under the default (abort) policy, if any rank throws, all ranks
/// are aborted and the first non-abort exception is rethrown on the caller;
/// the other policies are described on SpmdOptions.
SpmdReport run_spmd(const Topology& topology,
                    const std::function<void(RankContext&)>& body,
                    const SpmdOptions& options);

/// Abort-policy overloads (the historical interface).
SpmdReport run_spmd(const Topology& topology,
                    const std::function<void(RankContext&)>& body);
SpmdReport run_spmd(MeshShape mesh,
                    const std::function<void(RankContext&)>& body);

}  // namespace sunbfs::sim
