#include "sim/comm_stats.hpp"

#include <sstream>

namespace sunbfs::sim {

const char* collective_type_name(CollectiveType type) {
  switch (type) {
    case CollectiveType::Alltoallv: return "alltoallv";
    case CollectiveType::Allgather: return "allgather";
    case CollectiveType::ReduceScatter: return "reduce_scatter";
    case CollectiveType::Allreduce: return "allreduce";
    case CollectiveType::Broadcast: return "broadcast";
    case CollectiveType::Barrier: return "barrier";
  }
  return "?";
}

void CommStats::record(CollectiveType type, uint64_t bytes_sent,
                       uint64_t bytes_inter_supernode, double modeled_s,
                       double wall_s, double imbalance_s) {
  auto& e = entries_[int(type)];
  e.calls += 1;
  e.bytes_sent += bytes_sent;
  e.bytes_inter_supernode += bytes_inter_supernode;
  e.modeled_s += modeled_s;
  e.wall_s += wall_s;
  e.imbalance_s += imbalance_s;
}

double CommStats::total_modeled_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.modeled_s;
  return t;
}

double CommStats::total_wall_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.wall_s;
  return t;
}

double CommStats::total_imbalance_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.imbalance_s;
  return t;
}

uint64_t CommStats::total_bytes_sent() const {
  uint64_t b = 0;
  for (const auto& e : entries_) b += e.bytes_sent;
  return b;
}

uint64_t CommStats::total_bytes_inter_supernode() const {
  uint64_t b = 0;
  for (const auto& e : entries_) b += e.bytes_inter_supernode;
  return b;
}

void CommStats::merge(const CommStats& other) {
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    entries_[i].calls += other.entries_[i].calls;
    entries_[i].bytes_sent += other.entries_[i].bytes_sent;
    entries_[i].bytes_inter_supernode += other.entries_[i].bytes_inter_supernode;
    entries_[i].modeled_s += other.entries_[i].modeled_s;
    entries_[i].wall_s += other.entries_[i].wall_s;
    entries_[i].imbalance_s += other.entries_[i].imbalance_s;
  }
  checksums_verified_ += other.checksums_verified_;
  checksum_mismatches_ += other.checksum_mismatches_;
}

void CommStats::reset() {
  entries_ = {};
  checksums_verified_ = 0;
  checksum_mismatches_ = 0;
}

std::string CommStats::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    const auto& e = entries_[i];
    if (e.calls == 0) continue;
    os << "  " << collective_type_name(CollectiveType(i)) << ": " << e.calls
       << " calls, " << e.bytes_sent << " B sent (" << e.bytes_inter_supernode
       << " B inter-supernode), modeled " << e.modeled_s << " s, wall "
       << e.wall_s << " s (" << e.imbalance_s << " s waiting)\n";
  }
  if (checksums_verified_ > 0)
    os << "  checksums: " << checksums_verified_ << " verified, "
       << checksum_mismatches_ << " mismatched\n";
  return os.str();
}

void CommStats::to_report(obs::Report& report,
                          const std::string& prefix) const {
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    const auto& e = entries_[i];
    if (e.calls == 0) continue;
    std::string p = prefix + collective_type_name(CollectiveType(i)) + ".";
    report.add_counter(p + "calls", e.calls);
    report.add_counter(p + "bytes_sent", e.bytes_sent);
    report.add_counter(p + "bytes_inter_supernode", e.bytes_inter_supernode);
    report.gauge(p + "modeled_s", e.modeled_s);
    report.gauge(p + "wall_s", e.wall_s);
    report.gauge(p + "imbalance_s", e.imbalance_s);
  }
  report.gauge(prefix + "total_modeled_s", total_modeled_s());
  report.gauge(prefix + "total_wall_s", total_wall_s());
  report.gauge(prefix + "total_imbalance_s", total_imbalance_s());
  report.add_counter(prefix + "total_bytes_sent", total_bytes_sent());
  report.add_counter(prefix + "total_bytes_inter_supernode",
                     total_bytes_inter_supernode());
  if (checksums_verified_ > 0) {
    report.add_counter(prefix + "checksums_verified", checksums_verified_);
    report.add_counter(prefix + "checksum_mismatches", checksum_mismatches_);
  }
}

}  // namespace sunbfs::sim
