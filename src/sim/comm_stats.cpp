#include "sim/comm_stats.hpp"

#include <sstream>

namespace sunbfs::sim {

const char* collective_type_name(CollectiveType type) {
  switch (type) {
    case CollectiveType::Alltoallv: return "alltoallv";
    case CollectiveType::Allgather: return "allgather";
    case CollectiveType::ReduceScatter: return "reduce_scatter";
    case CollectiveType::Allreduce: return "allreduce";
    case CollectiveType::Broadcast: return "broadcast";
    case CollectiveType::Barrier: return "barrier";
  }
  return "?";
}

const char* wire_codec_name(WireCodec codec) {
  switch (codec) {
    case WireCodec::Raw: return "raw";
    case WireCodec::Varint: return "varint";
    case WireCodec::Bitmap: return "bitmap";
  }
  return "?";
}

void CommStats::note_encoding(CollectiveType type, WireCodec codec,
                              uint64_t blocks, uint64_t messages,
                              uint64_t raw_bytes, uint64_t encoded_bytes) {
  auto& e = encodings_[int(type)][int(codec)];
  e.blocks += blocks;
  e.messages += messages;
  e.raw_bytes += raw_bytes;
  e.encoded_bytes += encoded_bytes;
}

int64_t CommStats::encoding_saved_bytes() const {
  int64_t saved = 0;
  for (const auto& row : encodings_)
    for (const auto& e : row)
      saved += int64_t(e.raw_bytes) - int64_t(e.encoded_bytes);
  return saved;
}

void CommStats::record(CollectiveType type, uint64_t bytes_sent,
                       uint64_t bytes_inter_supernode, double modeled_s,
                       double wall_s, double imbalance_s) {
  auto& e = entries_[int(type)];
  e.calls += 1;
  e.bytes_sent += bytes_sent;
  e.bytes_inter_supernode += bytes_inter_supernode;
  e.modeled_s += modeled_s;
  e.wall_s += wall_s;
  e.imbalance_s += imbalance_s;
}

double CommStats::total_modeled_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.modeled_s;
  return t;
}

double CommStats::total_wall_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.wall_s;
  return t;
}

double CommStats::total_imbalance_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.imbalance_s;
  return t;
}

uint64_t CommStats::total_bytes_sent() const {
  uint64_t b = 0;
  for (const auto& e : entries_) b += e.bytes_sent;
  return b;
}

uint64_t CommStats::total_bytes_inter_supernode() const {
  uint64_t b = 0;
  for (const auto& e : entries_) b += e.bytes_inter_supernode;
  return b;
}

void CommStats::merge(const CommStats& other) {
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    entries_[i].calls += other.entries_[i].calls;
    entries_[i].bytes_sent += other.entries_[i].bytes_sent;
    entries_[i].bytes_inter_supernode += other.entries_[i].bytes_inter_supernode;
    entries_[i].modeled_s += other.entries_[i].modeled_s;
    entries_[i].wall_s += other.entries_[i].wall_s;
    entries_[i].imbalance_s += other.entries_[i].imbalance_s;
  }
  for (int t = 0; t < kCollectiveTypeCount; ++t) {
    for (int c = 0; c < kWireCodecCount; ++c) {
      encodings_[t][c].blocks += other.encodings_[t][c].blocks;
      encodings_[t][c].messages += other.encodings_[t][c].messages;
      encodings_[t][c].raw_bytes += other.encodings_[t][c].raw_bytes;
      encodings_[t][c].encoded_bytes += other.encodings_[t][c].encoded_bytes;
    }
  }
  checksums_verified_ += other.checksums_verified_;
  checksum_mismatches_ += other.checksum_mismatches_;
}

void CommStats::reset() {
  entries_ = {};
  encodings_ = {};
  checksums_verified_ = 0;
  checksum_mismatches_ = 0;
}

std::string CommStats::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    const auto& e = entries_[i];
    if (e.calls == 0) continue;
    os << "  " << collective_type_name(CollectiveType(i)) << ": " << e.calls
       << " calls, " << e.bytes_sent << " B sent (" << e.bytes_inter_supernode
       << " B inter-supernode), modeled " << e.modeled_s << " s, wall "
       << e.wall_s << " s (" << e.imbalance_s << " s waiting)\n";
  }
  for (int t = 0; t < kCollectiveTypeCount; ++t) {
    for (int c = 0; c < kWireCodecCount; ++c) {
      const auto& e = encodings_[t][c];
      if (e.blocks == 0) continue;
      os << "  " << collective_type_name(CollectiveType(t)) << "/"
         << wire_codec_name(WireCodec(c)) << ": " << e.blocks << " blocks, "
         << e.messages << " messages, " << e.raw_bytes << " B raw -> "
         << e.encoded_bytes << " B wire\n";
    }
  }
  if (checksums_verified_ > 0)
    os << "  checksums: " << checksums_verified_ << " verified, "
       << checksum_mismatches_ << " mismatched\n";
  return os.str();
}

void CommStats::to_report(obs::Report& report,
                          const std::string& prefix) const {
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    const auto& e = entries_[i];
    if (e.calls == 0) continue;
    std::string p = prefix + collective_type_name(CollectiveType(i)) + ".";
    report.add_counter(p + "calls", e.calls);
    report.add_counter(p + "bytes_sent", e.bytes_sent);
    report.add_counter(p + "bytes_inter_supernode", e.bytes_inter_supernode);
    report.gauge(p + "modeled_s", e.modeled_s);
    report.gauge(p + "wall_s", e.wall_s);
    report.gauge(p + "imbalance_s", e.imbalance_s);
  }
  report.gauge(prefix + "total_modeled_s", total_modeled_s());
  report.gauge(prefix + "total_wall_s", total_wall_s());
  report.gauge(prefix + "total_imbalance_s", total_imbalance_s());
  report.add_counter(prefix + "total_bytes_sent", total_bytes_sent());
  report.add_counter(prefix + "total_bytes_inter_supernode",
                     total_bytes_inter_supernode());
  bool any_encoding = false;
  for (int t = 0; t < kCollectiveTypeCount; ++t) {
    for (int c = 0; c < kWireCodecCount; ++c) {
      const auto& e = encodings_[t][c];
      if (e.blocks == 0) continue;
      any_encoding = true;
      std::string p = prefix + "encoding." +
                      collective_type_name(CollectiveType(t)) + "." +
                      wire_codec_name(WireCodec(c)) + ".";
      report.add_counter(p + "blocks", e.blocks);
      report.add_counter(p + "messages", e.messages);
      report.add_counter(p + "raw_bytes", e.raw_bytes);
      report.add_counter(p + "encoded_bytes", e.encoded_bytes);
    }
  }
  if (any_encoding)
    report.gauge(prefix + "encoding.saved_bytes",
                 double(encoding_saved_bytes()));
  if (checksums_verified_ > 0) {
    report.add_counter(prefix + "checksums_verified", checksums_verified_);
    report.add_counter(prefix + "checksum_mismatches", checksum_mismatches_);
  }
}

}  // namespace sunbfs::sim
