#include "sim/comm_stats.hpp"

#include <sstream>

namespace sunbfs::sim {

const char* collective_type_name(CollectiveType type) {
  switch (type) {
    case CollectiveType::Alltoallv: return "alltoallv";
    case CollectiveType::Allgather: return "allgather";
    case CollectiveType::ReduceScatter: return "reduce_scatter";
    case CollectiveType::Allreduce: return "allreduce";
    case CollectiveType::Broadcast: return "broadcast";
    case CollectiveType::Barrier: return "barrier";
  }
  return "?";
}

void CommStats::record(CollectiveType type, uint64_t bytes_sent,
                       uint64_t bytes_inter_supernode, double modeled_s,
                       double wall_s) {
  auto& e = entries_[int(type)];
  e.calls += 1;
  e.bytes_sent += bytes_sent;
  e.bytes_inter_supernode += bytes_inter_supernode;
  e.modeled_s += modeled_s;
  e.wall_s += wall_s;
}

double CommStats::total_modeled_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.modeled_s;
  return t;
}

double CommStats::total_wall_s() const {
  double t = 0;
  for (const auto& e : entries_) t += e.wall_s;
  return t;
}

uint64_t CommStats::total_bytes_sent() const {
  uint64_t b = 0;
  for (const auto& e : entries_) b += e.bytes_sent;
  return b;
}

uint64_t CommStats::total_bytes_inter_supernode() const {
  uint64_t b = 0;
  for (const auto& e : entries_) b += e.bytes_inter_supernode;
  return b;
}

void CommStats::merge(const CommStats& other) {
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    entries_[i].calls += other.entries_[i].calls;
    entries_[i].bytes_sent += other.entries_[i].bytes_sent;
    entries_[i].bytes_inter_supernode += other.entries_[i].bytes_inter_supernode;
    entries_[i].modeled_s += other.entries_[i].modeled_s;
    entries_[i].wall_s += other.entries_[i].wall_s;
  }
  checksums_verified_ += other.checksums_verified_;
  checksum_mismatches_ += other.checksum_mismatches_;
}

void CommStats::reset() {
  entries_ = {};
  checksums_verified_ = 0;
  checksum_mismatches_ = 0;
}

std::string CommStats::to_string() const {
  std::ostringstream os;
  for (int i = 0; i < kCollectiveTypeCount; ++i) {
    const auto& e = entries_[i];
    if (e.calls == 0) continue;
    os << "  " << collective_type_name(CollectiveType(i)) << ": " << e.calls
       << " calls, " << e.bytes_sent << " B sent (" << e.bytes_inter_supernode
       << " B inter-supernode), modeled " << e.modeled_s << " s, wall "
       << e.wall_s << " s\n";
  }
  if (checksums_verified_ > 0)
    os << "  checksums: " << checksums_verified_ << " verified, "
       << checksum_mismatches_ << " mismatched\n";
  return os.str();
}

}  // namespace sunbfs::sim
