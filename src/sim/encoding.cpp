#include "sim/encoding.hpp"

#include <bit>

namespace sunbfs::sim {

BlockPlan plan_words(std::span<const uint64_t> words) {
  const uint64_t nwords = words.size();
  if (nwords == 0) return {WireCodec::Bitmap, 0};
  const uint64_t header = 1 + varint_size(nwords);
  const uint64_t raw_bytes = header + nwords * 8;
  uint64_t nbits = 0, sparse_body = 0, prev = 0;
  for (uint64_t w = 0; w < nwords; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      const uint64_t pos = w * 64 + uint64_t(std::countr_zero(word));
      word &= word - 1;
      sparse_body += varint_size(nbits == 0 ? pos : pos - prev);
      prev = pos;
      ++nbits;
    }
  }
  const uint64_t sparse_bytes = header + varint_size(nbits) + sparse_body;
  if (sparse_bytes < raw_bytes) return {WireCodec::Varint, sparse_bytes};
  return {WireCodec::Bitmap, raw_bytes};
}

uint8_t* write_words(std::span<const uint64_t> words, WireCodec codec,
                     uint8_t* out) {
  const uint64_t nwords = words.size();
  if (nwords == 0) return out;
  *out++ = uint8_t(codec);
  out = put_varint(out, nwords);
  if (codec == WireCodec::Bitmap) {
    std::memcpy(out, words.data(), nwords * 8);
    return out + nwords * 8;
  }
  // Varint: count of set bits, then delta-coded positions.
  uint64_t nbits = 0;
  for (uint64_t w : words) nbits += uint64_t(std::popcount(w));
  out = put_varint(out, nbits);
  uint64_t prev = 0;
  bool first = true;
  for (uint64_t w = 0; w < nwords; ++w) {
    uint64_t word = words[w];
    while (word != 0) {
      const uint64_t pos = w * 64 + uint64_t(std::countr_zero(word));
      word &= word - 1;
      out = put_varint(out, first ? pos : pos - prev);
      prev = pos;
      first = false;
    }
  }
  return out;
}

bool read_words_header(const uint8_t* p, size_t nbytes, WordsHeader* h) {
  if (nbytes == 0) {
    *h = WordsHeader{WireCodec::Bitmap, 0, p};
    return true;
  }
  const uint8_t* end = p + nbytes;
  const uint8_t codec = *p++;
  if (codec != uint8_t(WireCodec::Bitmap) &&
      codec != uint8_t(WireCodec::Varint))
    return false;
  uint64_t nwords = 0;
  p = get_varint(p, end, &nwords);
  if (p == nullptr || nwords == 0) return false;
  *h = WordsHeader{WireCodec(codec), nwords, p};
  return true;
}

bool decode_words(const WordsHeader& h, const uint8_t* end, uint64_t* out) {
  const uint8_t* p = h.body;
  if (h.codec == WireCodec::Bitmap) {
    if (uint64_t(end - p) != h.nwords * 8) return false;
    std::memcpy(out, p, h.nwords * 8);
    return true;
  }
  std::memset(out, 0, h.nwords * 8);
  uint64_t nbits = 0;
  p = get_varint(p, end, &nbits);
  if (p == nullptr) return false;
  uint64_t pos = 0;
  for (uint64_t i = 0; i < nbits; ++i) {
    uint64_t delta = 0;
    p = get_varint(p, end, &delta);
    if (p == nullptr) return false;
    pos = (i == 0) ? delta : pos + delta;
    if (pos >= h.nwords * 64) return false;
    out[pos / 64] |= uint64_t(1) << (pos % 64);
  }
  return p == end;
}

}  // namespace sunbfs::sim
