#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

#include "sim/comm_stats.hpp"

/// Adaptive wire encoding for staged collective payloads.
///
/// The paper's traversal wins come from shrinking what crosses the network:
/// bottom-up sub-iterations ship bitmap frontiers while top-down levels ship
/// sparse vertex lists.  This header applies the same switch at the wire
/// level of the simulator: every destination block of an A2aStaging exchange
/// (and every published frontier span of a GatherBuffer gather) is measured
/// against three encodings and ships as whichever is smallest:
///
///   Raw     sorted fixed-width structs — the fallback that bounds every
///           block at raw size + a small header,
///   Varint  messages sorted by key; keys delta-coded as varints, non-key
///           fields ("rests") as per-type varints,
///   Bitmap  a dense bitmap over the key range [0, max_key] plus the rests
///           in key order — only eligible when keys are unique.
///
/// Wire layout of a block: [codec byte][varint message count][body].  A
/// zero-byte block is a valid empty block (zero messages) — this is what a
/// contribution dropped by fault recovery decodes as.  Because the sender
/// picks min(raw, varint, bitmap) with exact measured sizes, an encoded
/// block never exceeds raw size + kBlockHeaderMax, which is what lets
/// A2aStaging pre-reserve encoded buffers and keep comm.staging_allocs at 0
/// in steady state.
///
/// Decoding is fully bounds-checked and non-throwing at this layer: every
/// read_*/decode_* function returns false on truncated or malformed input
/// (callers decide whether that is a test expectation or a fatal error).
/// Encoded bytes flow through Comm::alltoallv_flat / allgatherv_into like
/// any payload, so fault-injection checksums and Topology byte charging
/// cover the encoded representation.
///
/// Message types opt in by specializing WireFormat<T> (see bfs/messages.hpp,
/// service/msbfs.hpp, analytics/delta_stepping.hpp):
///
///   static uint64_t key(const T&);                 // sort/bitmap key
///   static bool less(const T&, const T&);          // total order, key-major
///   static size_t rest_size(const T&);             // encoded non-key bytes
///   static uint8_t* put_rest(const T&, uint8_t*);  // append non-key fields
///   static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
///                                  uint64_t key, T&);  // null on error
///
/// less() must be a *total* order (tie-break on every field) so that sorting
/// is deterministic under duplicate keys; receivers are already insensitive
/// to message order (fetch-max parents, atomic bit claims — docs/PERF.md).
namespace sunbfs::sim {

/// Per-pool encoding policy, threaded from engine options into the staging
/// pools.  Enabled by default: the encoded path is the product path, and the
/// fault suite exercises checksums over encoded bytes.
struct EncodingOptions {
  bool enabled = true;
  /// Blocks with fewer messages than this skip the sort + measure pass and
  /// ship raw: at a handful of messages the header dominates any saving.
  uint32_t min_messages = 8;
};

/// Worst-case block header: codec byte + varint(count or nwords).
inline constexpr size_t kBlockHeaderMax = 11;

inline size_t varint_size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline uint8_t* put_varint(uint8_t* p, uint64_t v) {
  while (v >= 0x80) {
    *p++ = uint8_t(v) | 0x80;
    v >>= 7;
  }
  *p++ = uint8_t(v);
  return p;
}

/// LEB128 decode with bounds checking; nullptr on truncation or a value
/// wider than 64 bits.
inline const uint8_t* get_varint(const uint8_t* p, const uint8_t* end,
                                 uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; p < end && shift < 64; shift += 7) {
    uint8_t b = *p++;
    v |= uint64_t(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return p;
    }
  }
  return nullptr;
}

/// Zigzag mapping for signed rests (e.g. Vertex parents): small magnitudes
/// of either sign stay short.
inline uint64_t zigzag(int64_t v) {
  return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}
inline int64_t unzigzag(uint64_t v) {
  return int64_t(v >> 1) ^ -int64_t(v & 1);
}

/// Primary template: only types with an explicit specialization can travel
/// encoded.
template <typename T>
struct WireFormat;

/// Sender-side decision for one block: which codec and exactly how many
/// wire bytes (header included) it will occupy.
struct BlockPlan {
  WireCodec codec = WireCodec::Raw;
  uint64_t bytes = 0;
};

/// Parsed block header: where the body starts and how many messages follow.
struct BlockHeader {
  WireCodec codec = WireCodec::Raw;
  uint64_t count = 0;
  const uint8_t* body = nullptr;
};

/// Measure `msgs` under all eligible codecs and return the smallest.
/// `sorted` tells the planner whether the caller ran the key-major sort —
/// unsorted blocks (below EncodingOptions::min_messages) always ship raw.
template <typename T>
BlockPlan plan_block(std::span<const T> msgs, bool sorted) {
  using WF = WireFormat<T>;
  const uint64_t n = msgs.size();
  if (n == 0) return {WireCodec::Raw, 0};
  const uint64_t header = 1 + varint_size(n);
  BlockPlan best{WireCodec::Raw, header + n * sizeof(T)};
  if (!sorted) return best;
  uint64_t rests = 0, deltas = 0, prev = 0;
  bool unique = true;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t k = WF::key(msgs[i]);
    rests += WF::rest_size(msgs[i]);
    deltas += varint_size(i == 0 ? k : k - prev);
    if (i > 0 && k == prev) unique = false;
    prev = k;
  }
  const uint64_t varint_bytes = header + deltas + rests;
  if (varint_bytes < best.bytes) best = {WireCodec::Varint, varint_bytes};
  if (unique) {
    const uint64_t nwords = (WF::key(msgs[n - 1]) + 1 + 63) / 64;
    const uint64_t bitmap_bytes =
        header + varint_size(nwords) + nwords * 8 + rests;
    if (bitmap_bytes < best.bytes) best = {WireCodec::Bitmap, bitmap_bytes};
  }
  return best;
}

/// Serialize `msgs` under `codec`; returns one past the last byte written
/// (exactly plan_block(...).bytes past `out`).  The caller guarantees the
/// preconditions the plan was made under (same order, unique keys for
/// Bitmap).
template <typename T>
uint8_t* write_block(std::span<const T> msgs, WireCodec codec, uint8_t* out) {
  using WF = WireFormat<T>;
  const uint64_t n = msgs.size();
  if (n == 0) return out;
  *out++ = uint8_t(codec);
  out = put_varint(out, n);
  switch (codec) {
    case WireCodec::Raw:
      std::memcpy(out, msgs.data(), n * sizeof(T));
      return out + n * sizeof(T);
    case WireCodec::Varint: {
      uint64_t prev = 0;
      for (uint64_t i = 0; i < n; ++i) {
        const uint64_t k = WF::key(msgs[i]);
        out = put_varint(out, i == 0 ? k : k - prev);
        prev = k;
        out = WF::put_rest(msgs[i], out);
      }
      return out;
    }
    case WireCodec::Bitmap: {
      const uint64_t nwords = (WF::key(msgs[n - 1]) + 1 + 63) / 64;
      out = put_varint(out, nwords);
      std::memset(out, 0, nwords * 8);
      for (const T& m : msgs) {
        const uint64_t k = WF::key(m);
        out[k >> 3] |= uint8_t(uint8_t(1) << (k & 7));
      }
      out += nwords * 8;
      for (const T& m : msgs) out = WF::put_rest(m, out);
      return out;
    }
  }
  return out;
}

/// Parse the header of an encoded block.  A zero-byte block is the valid
/// empty block (count 0).  Returns false on a malformed header — unknown
/// codec byte, truncated count, or an explicit count of 0 (which must be
/// expressed as the empty block instead).
inline bool read_block_header(const uint8_t* p, size_t nbytes,
                              BlockHeader* h) {
  if (nbytes == 0) {
    *h = BlockHeader{WireCodec::Raw, 0, p};
    return true;
  }
  const uint8_t* end = p + nbytes;
  const uint8_t codec = *p++;
  if (codec > uint8_t(WireCodec::Bitmap)) return false;
  uint64_t n = 0;
  p = get_varint(p, end, &n);
  if (p == nullptr || n == 0) return false;
  *h = BlockHeader{WireCodec(codec), n, p};
  return true;
}

/// Decode the body of a parsed block into `out` (capacity h.count).  The
/// block must consume its byte range exactly; any truncation, overrun,
/// out-of-range key/field or bitmap popcount mismatch returns false.
template <typename T>
bool decode_block(const BlockHeader& h, const uint8_t* end, T* out) {
  using WF = WireFormat<T>;
  const uint8_t* p = h.body;
  switch (h.codec) {
    case WireCodec::Raw: {
      if (uint64_t(end - p) != h.count * sizeof(T)) return false;
      std::memcpy(out, p, h.count * sizeof(T));
      return true;
    }
    case WireCodec::Varint: {
      uint64_t key = 0;
      for (uint64_t i = 0; i < h.count; ++i) {
        uint64_t delta = 0;
        p = get_varint(p, end, &delta);
        if (p == nullptr) return false;
        key = (i == 0) ? delta : key + delta;
        p = WF::get_rest(p, end, key, out[i]);
        if (p == nullptr) return false;
      }
      return p == end;
    }
    case WireCodec::Bitmap: {
      uint64_t nwords = 0;
      p = get_varint(p, end, &nwords);
      if (p == nullptr || nwords > uint64_t(end - p) / 8) return false;
      const uint8_t* bits = p;
      p += nwords * 8;
      uint64_t i = 0;
      for (uint64_t byte = 0; byte < nwords * 8; ++byte) {
        uint8_t b = bits[byte];
        while (b != 0) {
          if (i == h.count) return false;  // more set bits than messages
          const uint64_t key = byte * 8 + uint64_t(std::countr_zero(b));
          b &= uint8_t(b - 1);
          p = WF::get_rest(p, end, key, out[i]);
          if (p == nullptr) return false;
          ++i;
        }
      }
      return i == h.count && p == end;
    }
  }
  return false;
}

/// --- Frontier word streams -----------------------------------------------
///
/// GatherBuffer<uint64_t> payloads are bitmap words, not messages; they get
/// their own two codecs: Bitmap ships the words raw (dense frontiers),
/// Varint ships delta-coded set-bit positions (sparse frontiers).  Layout:
/// [codec byte][varint nwords][body]; empty span = zero-byte block.
/// The decoded word count is position-independent of density, so the raw
/// and encoded gathers produce identical word layouts.
struct WordsHeader {
  WireCodec codec = WireCodec::Bitmap;
  uint64_t nwords = 0;
  const uint8_t* body = nullptr;
};

BlockPlan plan_words(std::span<const uint64_t> words);
uint8_t* write_words(std::span<const uint64_t> words, WireCodec codec,
                     uint8_t* out);
bool read_words_header(const uint8_t* p, size_t nbytes, WordsHeader* h);
/// Decode into `out` (capacity h.nwords); false on malformed body.
bool decode_words(const WordsHeader& h, const uint8_t* end, uint64_t* out);

}  // namespace sunbfs::sim
