#pragma once

#include <cstdint>

#include "sim/comm.hpp"

/// Counting termination detection for asynchronous engines.
///
/// The level-synchronous engines know they are done when an allreduced
/// frontier count hits zero — there is a global level boundary to ask the
/// question at.  An asynchronous engine has no levels: work keeps appearing
/// as long as any message anywhere can still trigger a relaxation, so
/// "done" is a distributed-quiescence question.  The classic answer
/// (Mattern's four-counter / double-wave scheme) counts message credits:
/// every rank tracks how many messages it has sent (S_i) and received (R_i)
/// since the start of the computation, and a probe wave reduces
/// (sum S, sum R, all locally idle).  One wave is not safe — a message can
/// be in flight past the probe, reactivating a rank that already reported
/// idle — so termination is announced only when TWO consecutive waves agree:
/// both observe every rank idle, and the four counters (S and R of each
/// wave) show that no traffic moved in between.  Any message delivered
/// between the waves would bump R; any new send would bump S; either
/// difference restarts the handshake.
///
/// The probe is one allreduce over a small fixed struct, so on the simulator's
/// collectives it costs the same as the sync engines' per-level frontier
/// count — the async win is paying it O(probe waves) times instead of
/// O(diameter) times.
///
/// Credit accounting modes.  With `strict_credits` (the default) the waves
/// additionally require sum S == sum R — the full four-counter rule, which
/// is what makes the scheme safe on a genuinely asynchronous transport
/// where receipt lags sending (tests/test_async.cpp races a delayed-delivery
/// channel against the probe).  An engine whose channel *folds* messages in
/// flight (ExchangeMergePolicy under a staged ExchangePlan: k same-target
/// messages arrive as one representative) must turn strict credits off,
/// because delivered counts legitimately undershoot sent counts.  That stays
/// safe here because every exchange completes inside the collective call —
/// there is no in-flight state at probe time — so two agreeing all-idle
/// waves with frozen counters already imply quiescence.
namespace sunbfs::sim {

class TerminationDetector {
 public:
  explicit TerminationDetector(bool strict_credits = true)
      : strict_(strict_credits) {}

  /// Credit bookkeeping: call as messages leave / arrive.
  void note_sent(uint64_t n) { sent_ += n; }
  void note_received(uint64_t n) { received_ += n; }

  uint64_t sent() const { return sent_; }
  uint64_t received() const { return received_; }
  uint64_t waves() const { return waves_; }

  /// One probe wave (collective over `comm` — every rank must call it in the
  /// same program order with its own idle flag).  Returns true when global
  /// quiescence is certain: this wave and the previous one both saw every
  /// rank idle and identical global (S, R) — and, under strict credits,
  /// S == R.
  /// `aux`/`aux_min` piggyback a min-fold on the wave: an engine can ride
  /// its next-round coordination value (e.g. the globally shallowest queued
  /// depth) on the probe it already pays for instead of a second allreduce.
  /// The rider never affects the termination decision.
  bool probe(Comm& comm, bool locally_idle, uint64_t aux = 0,
             uint64_t* aux_min = nullptr) {
    Wave mine{sent_, received_, locally_idle ? uint64_t(1) : uint64_t(0),
              aux};
    Wave global = comm.allreduce(mine, [](const Wave& a, const Wave& b) {
      return Wave{a.sent + b.sent, a.received + b.received, a.idle & b.idle,
                  a.aux < b.aux ? a.aux : b.aux};
    });
    if (aux_min) *aux_min = global.aux;
    ++waves_;
    const bool settled = global.idle != 0 &&
                         (!strict_ || global.sent == global.received);
    const bool unchanged = have_prev_ && prev_.idle != 0 &&
                           global.sent == prev_.sent &&
                           global.received == prev_.received;
    prev_ = global;
    have_prev_ = true;
    return settled && unchanged;
  }

  /// Forget the previous wave (anything that re-injects work — e.g. a
  /// rollback replay — must restart the two-wave handshake).
  void reset_waves() { have_prev_ = false; }

  /// Rollback support: the engines checkpoint the detector with the rest of
  /// their state so replayed messages are re-counted consistently.
  struct Snapshot {
    uint64_t sent = 0;
    uint64_t received = 0;
  };
  Snapshot save() const { return Snapshot{sent_, received_}; }
  void restore(const Snapshot& snap) {
    sent_ = snap.sent;
    received_ = snap.received;
    have_prev_ = false;
  }

 private:
  struct Wave {
    uint64_t sent = 0;
    uint64_t received = 0;
    uint64_t idle = 1;
    uint64_t aux = UINT64_MAX;  ///< min-folded rider, unused by termination
  };

  bool strict_;
  uint64_t sent_ = 0;
  uint64_t received_ = 0;
  Wave prev_{};
  bool have_prev_ = false;
  uint64_t waves_ = 0;
};

}  // namespace sunbfs::sim
