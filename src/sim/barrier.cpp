#include "sim/barrier.hpp"

#include "support/check.hpp"

namespace sunbfs::sim {

Barrier::Barrier(int participants) : participants_(participants) {
  SUNBFS_CHECK(participants >= 1);
}

void Barrier::wait() {
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) throw AbortError();
  if (++waiting_ == participants_) {
    waiting_ = 0;
    ++phase_;
    cv_.notify_all();
    return;
  }
  uint64_t my_phase = phase_;
  cv_.wait(lk, [&] { return aborted_ || phase_ != my_phase; });
  if (aborted_) throw AbortError();
}

void Barrier::abort() {
  std::lock_guard<std::mutex> lk(mu_);
  aborted_ = true;
  cv_.notify_all();
}

}  // namespace sunbfs::sim
