#include "sim/fault.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "support/check.hpp"
#include "support/random.hpp"

namespace sunbfs::sim {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Straggler: return "straggler";
    case FaultKind::BitFlip: return "bit-flip";
    case FaultKind::Truncate: return "truncate";
    case FaultKind::RankFailure: return "rank-failure";
  }
  return "?";
}

// ---- checksum64: XXH64 ------------------------------------------------------

namespace {
constexpr uint64_t kP1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kP2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kP3 = 0x165667B19E3779F9ull;
constexpr uint64_t kP4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kP5 = 0x27D4EB2F165667C5ull;
constexpr uint64_t kSeed = 0x5C0FB15Dull;  // fixed: checksums must agree

inline uint64_t rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t read64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline uint32_t read32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t round64(uint64_t acc, uint64_t input) {
  acc += input * kP2;
  acc = rotl64(acc, 31);
  return acc * kP1;
}

inline uint64_t merge_round(uint64_t acc, uint64_t val) {
  acc ^= round64(0, val);
  return acc * kP1 + kP4;
}
}  // namespace

uint64_t checksum64(const void* data, uint64_t nbytes) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  const unsigned char* end = p + nbytes;
  uint64_t h;
  if (nbytes >= 32) {
    uint64_t v1 = kSeed + kP1 + kP2, v2 = kSeed + kP2, v3 = kSeed,
             v4 = kSeed - kP1;
    do {
      v1 = round64(v1, read64(p));
      v2 = round64(v2, read64(p + 8));
      v3 = round64(v3, read64(p + 16));
      v4 = round64(v4, read64(p + 24));
      p += 32;
    } while (p + 32 <= end);
    h = rotl64(v1, 1) + rotl64(v2, 7) + rotl64(v3, 12) + rotl64(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = kSeed + kP5;
  }
  h += nbytes;
  while (p + 8 <= end) {
    h ^= round64(0, read64(p));
    h = rotl64(h, 27) * kP1 + kP4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= uint64_t(read32(p)) * kP1;
    h = rotl64(h, 23) * kP2 + kP3;
    p += 4;
  }
  while (p < end) {
    h ^= uint64_t(*p) * kP5;
    h = rotl64(h, 11) * kP1;
    ++p;
  }
  h ^= h >> 33;
  h *= kP2;
  h ^= h >> 29;
  h *= kP3;
  h ^= h >> 32;
  return h;
}

// ---- FaultPlan --------------------------------------------------------------

FaultPlan& FaultPlan::add_straggler(int rank, CollectiveType collective,
                                    uint64_t call_index, double delay_s) {
  SUNBFS_CHECK(rank >= 0 && delay_s >= 0);
  stragglers_.push_back(StragglerFault{rank, collective, call_index, delay_s});
  return *this;
}

FaultPlan& FaultPlan::add_bitflip(int rank, CollectiveType collective,
                                  uint64_t call_index, int peer) {
  SUNBFS_CHECK(rank >= 0);
  payloads_.push_back(
      PayloadFault{rank, collective, call_index, FaultKind::BitFlip, peer});
  return *this;
}

FaultPlan& FaultPlan::add_truncate(int rank, CollectiveType collective,
                                   uint64_t call_index, int peer) {
  SUNBFS_CHECK(rank >= 0);
  payloads_.push_back(
      PayloadFault{rank, collective, call_index, FaultKind::Truncate, peer});
  return *this;
}

FaultPlan& FaultPlan::add_rank_failure(int rank, int level) {
  SUNBFS_CHECK(rank >= 0 && level >= 1);
  rank_failures_.push_back(RankFailureFault{rank, level});
  return *this;
}

FaultPlan FaultPlan::random(uint64_t seed, int nranks, int stragglers,
                            int corruptions, int failures, int max_level) {
  SUNBFS_CHECK(nranks >= 1 && max_level >= 1);
  Xoshiro256StarStar rng(seed ^ 0xFA017ull);
  FaultPlan plan;
  // Corruptions target the bulk BFS collectives; call indices stay small so
  // they fire within the first BFS run after arming.
  const CollectiveType kTargets[] = {CollectiveType::Alltoallv,
                                     CollectiveType::Allgather,
                                     CollectiveType::Allreduce};
  for (int i = 0; i < stragglers; ++i)
    plan.add_straggler(int(rng.next_below(uint64_t(nranks))),
                       CollectiveType::Allreduce, rng.next_below(6),
                       0.5e-3 + rng.next_double() * 2e-3);
  for (int i = 0; i < corruptions; ++i) {
    CollectiveType t = kTargets[rng.next_below(3)];
    int rank = int(rng.next_below(uint64_t(nranks)));
    uint64_t call = 1 + rng.next_below(8);
    if (rng.next_below(2) == 0)
      plan.add_bitflip(rank, t, call);
    else
      plan.add_truncate(rank, t, call);
  }
  for (int i = 0; i < failures; ++i)
    plan.add_rank_failure(int(rng.next_below(uint64_t(nranks))),
                          1 + int(rng.next_below(uint64_t(max_level))));
  return plan;
}

const StragglerFault* FaultPlan::straggler(int rank, CollectiveType collective,
                                           uint64_t call_index) const {
  for (const auto& s : stragglers_)
    if (s.rank == rank && s.collective == collective &&
        s.call_index == call_index)
      return &s;
  return nullptr;
}

const PayloadFault* FaultPlan::payload(int rank, CollectiveType collective,
                                       uint64_t call_index) const {
  for (const auto& f : payloads_)
    if (f.rank == rank && f.collective == collective &&
        f.call_index == call_index)
      return &f;
  return nullptr;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  for (const auto& s : stragglers_)
    os << "  straggler: rank " << s.rank << ", "
       << collective_type_name(s.collective) << " call " << s.call_index
       << ", " << s.delay_s * 1e3 << " ms\n";
  for (const auto& f : payloads_)
    os << "  " << fault_kind_name(f.kind) << ": rank " << f.rank << ", "
       << collective_type_name(f.collective) << " call " << f.call_index
       << "\n";
  for (const auto& f : rank_failures_)
    os << "  rank-failure: rank " << f.rank << " at level " << f.level << "\n";
  return os.str();
}

// ---- FaultStats -------------------------------------------------------------

void FaultStats::merge(const FaultStats& other) {
  injected_stragglers += other.injected_stragglers;
  injected_corruptions += other.injected_corruptions;
  injected_failures += other.injected_failures;
  detected += other.detected;
  recovered += other.recovered;
  retries += other.retries;
  backoff_s += other.backoff_s;
  straggler_delay_s += other.straggler_delay_s;
  resent_bytes += other.resent_bytes;
}

std::string FaultStats::to_string() const {
  std::ostringstream os;
  os << "injected " << injected() << " (" << injected_stragglers
     << " stragglers, " << injected_corruptions << " corruptions, "
     << injected_failures << " failures), detected " << detected
     << ", recovered " << recovered << ", retries " << retries << ", backoff "
     << backoff_s * 1e3 << " ms, resent " << resent_bytes << " B";
  return os.str();
}

void FaultStats::to_report(obs::Report& report,
                           const std::string& prefix) const {
  report.add_counter(prefix + "injected_stragglers", injected_stragglers);
  report.add_counter(prefix + "injected_corruptions", injected_corruptions);
  report.add_counter(prefix + "injected_failures", injected_failures);
  report.add_counter(prefix + "detected", detected);
  report.add_counter(prefix + "recovered", recovered);
  report.add_counter(prefix + "retries", retries);
  report.add_counter(prefix + "resent_bytes", resent_bytes);
  report.gauge(prefix + "backoff_s",
               report.gauge(prefix + "backoff_s") + backoff_s);
  report.gauge(prefix + "straggler_delay_s",
               report.gauge(prefix + "straggler_delay_s") +
                   straggler_delay_s);
}

double backoff_delay_s(const RecoveryOptions& opts, int retry) {
  SUNBFS_CHECK(retry >= 1);
  double d = opts.backoff_base_s;
  for (int i = 1; i < retry && d < opts.backoff_cap_s; ++i) d *= 2;
  return std::min(d, opts.backoff_cap_s);
}

}  // namespace sunbfs::sim
