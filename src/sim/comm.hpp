#pragma once

#include <chrono>
#include <cstring>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/trace.hpp"
#include "sim/barrier.hpp"
#include "sim/comm_stats.hpp"
#include "sim/fault.hpp"
#include "sim/topology.hpp"
#include "support/check.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"

/// MPI-style collectives for the in-process SPMD runtime.
///
/// A Comm is a lightweight per-rank handle onto shared state owned by the
/// runtime.  The contract every caller relies on:
///
///  * **Ordering.**  Collectives must be entered by every rank of the
///    communicator in the same program order, exactly as in MPI; there is no
///    tag matching, so a reordered call pairs with the wrong publication
///    slots.  The engines guarantee this by deriving every branch that picks
///    a collective from replicated or allreduced state.
///  * **Payloads** must be trivially copyable; publication passes raw
///    pointers through shared slots, and receivers memcpy out of them.
///    Buffers must stay live and unmodified until the collective returns on
///    every rank (the trailing barrier enforces this).
///  * **Accounting.**  Every collective records into the rank's CommStats:
///    payload bytes (split intra/inter-supernode), modeled network seconds
///    from the Topology cost model (identical on every participating rank —
///    max-semantics), measured wall seconds, and the rank's wait-for-peers
///    imbalance: the thread-CPU arrival spread at the collective (how much
///    longer the slowest peer computed since the previous collective).  The
///    CPU clock makes that split meaningful even when the host
///    oversubscribes rank threads onto fewer cores, where a wall-clock wait
///    would mostly measure scheduler serialization.  When tracing is
///    attached it also emits an obs span on both
///    clocks and advances the rank's modeled clock.
///  * **Fault surface** (PR 1).  Faults fire only while the rank's
///    FaultState is armed, and a plan's call indices count armed calls of
///    each collective type per global rank — arming is therefore part of
///    the reproducibility contract: the same plan over the same program
///    replays identically.
///
/// When a FaultPlan is installed the collectives become the fault surface:
/// stragglers sleep before publishing, scheduled payload faults corrupt the
/// published bytes (never the caller's buffer), and — when checksums are on —
/// every received contribution is verified against the sender's xxhash-style
/// checksum of the original payload.  A mismatch raises FaultDetected naming
/// both ranks, or, under the recover policy, drops the corrupted contribution
/// and records a pending fault for the engines' checkpoint/rollback loop.
namespace sunbfs::sim {

/// Shared state backing one communicator group; owned by the runtime.
struct CommShared {
  CommShared(std::vector<int> ranks, const Topology* topo);

  std::vector<int> global_ranks;  // participant global ranks, by index
  const Topology* topology;
  Barrier barrier;
  // Publication slots, one per participant (pointer + byte count + checksum
  // of the original payload).
  std::vector<const void*> ptrs;
  std::vector<uint64_t> nbytes;
  std::vector<uint64_t> sums;
  // Alltoallv publication matrix: slot [src * P + dst].
  std::vector<const void*> a2a_ptrs;
  std::vector<uint64_t> a2a_nbytes;
  std::vector<uint64_t> a2a_sums;
  // Scratch used by segment-parallel reductions.
  std::vector<unsigned char> scratch;
  // Per-rank thread-CPU seconds since the previous collective,
  // double-buffered by collective parity (see Comm::arrival_base).
  std::vector<double> cpu_arrival;
};

/// Per-rank communicator handle.
class Comm {
 public:
  Comm() = default;
  Comm(CommShared* shared, int index, CommStats* stats,
       FaultState* faults = nullptr)
      : shared_(shared), index_(index), stats_(stats), faults_(faults) {}

  bool valid() const { return shared_ != nullptr; }
  /// Rank of the caller within this communicator.
  int rank() const { return index_; }
  /// Number of participants.
  int size() const { return int(shared_->global_ranks.size()); }
  /// Global rank of participant `index`.
  int global_rank_of(int index) const { return shared_->global_ranks[index]; }

  /// Synchronize all participants.
  void barrier() {
    WallTimer t;
    begin_collective(CollectiveType::Barrier);
    double cpu = deposit_cpu_arrival();
    shared_->barrier.wait();
    record(CollectiveType::Barrier, 0, 0,
           topo().transfer_time(size(), 0, 0), t.seconds(), cpu);
  }

  /// Element-wise reduction of a single value across all participants;
  /// every rank receives the result.
  template <typename T, typename Op>
  T allreduce(const T& value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    WallTimer t;
    uint64_t call = begin_collective(CollectiveType::Allreduce);
    double cpu = deposit_cpu_arrival();
    publish_checked(CollectiveType::Allreduce, call, &value, sizeof(T));
    shared_->barrier.wait();
    // Fold the verified contributions; every rank reads the same shared
    // slots and checksums, so dropped sources are dropped identically
    // everywhere and replicated decisions stay replicated.
    T acc = value;
    bool seeded = false;
    for (int j = 0; j < size(); ++j) {
      if (!verify_source(CollectiveType::Allreduce, j, shared_->ptrs[j],
                         shared_->nbytes[j], shared_->sums[j]))
        continue;
      check_source_size(CollectiveType::Allreduce, j, shared_->nbytes[j],
                        sizeof(T));
      T v;
      std::memcpy(&v, shared_->ptrs[j], sizeof(T));
      acc = seeded ? op(acc, v) : v;
      seeded = true;
    }
    auto [intra, inter] = symmetric_bytes(sizeof(T));
    shared_->barrier.wait();
    record(CollectiveType::Allreduce, sizeof(T), inter,
           topo().transfer_time(size(), intra, inter), t.seconds(), cpu);
    return acc;
  }

  /// Sum-reduction convenience.
  template <typename T>
  T allreduce_sum(const T& value) {
    return allreduce(value, [](T a, T b) { return a + b; });
  }

  /// Logical-or reduction convenience.
  bool allreduce_or(bool value) {
    return allreduce(int(value), [](int a, int b) { return a | b; }) != 0;
  }

  /// Max-reduction convenience.
  template <typename T>
  T allreduce_max(const T& value) {
    return allreduce(value, [](T a, T b) { return a > b ? a : b; });
  }

  /// Gather one value from each participant; result indexed by rank.
  /// Dropped (corrupted) contributions come back value-initialized.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WallTimer t;
    uint64_t call = begin_collective(CollectiveType::Allgather);
    double cpu = deposit_cpu_arrival();
    publish_checked(CollectiveType::Allgather, call, &value, sizeof(T));
    shared_->barrier.wait();
    std::vector<T> out(size());
    for (int j = 0; j < size(); ++j) {
      if (!verify_source(CollectiveType::Allgather, j, shared_->ptrs[j],
                         shared_->nbytes[j], shared_->sums[j]))
        continue;
      check_source_size(CollectiveType::Allgather, j, shared_->nbytes[j],
                        sizeof(T));
      std::memcpy(&out[j], shared_->ptrs[j], sizeof(T));
    }
    auto [intra, inter] = symmetric_bytes(sizeof(T));
    shared_->barrier.wait();
    record(CollectiveType::Allgather, sizeof(T), inter,
           topo().transfer_time(size(), intra, inter), t.seconds(), cpu);
    return out;
  }

  /// Variable-size gather: concatenation of every participant's span in rank
  /// order.  If `offsets` is non-null it receives size()+1 entries delimiting
  /// each rank's contribution in the result.  Dropped contributions appear
  /// empty.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> mine,
                            std::vector<size_t>* offsets = nullptr) {
    std::vector<T> out;
    allgatherv_into(mine, out, offsets);
    return out;
  }

  /// Allocation-free allgatherv: writes the concatenation into `out`,
  /// reusing its capacity across calls.  `grow_allocs` (when non-null) is
  /// incremented iff this call had to grow `out` — the steady-state
  /// allocation proof behind comm.staging_allocs.
  template <typename T>
  void allgatherv_into(std::span<const T> mine, std::vector<T>& out,
                       std::vector<size_t>* offsets = nullptr,
                       uint64_t* grow_allocs = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    WallTimer t;
    uint64_t call = begin_collective(CollectiveType::Allgather);
    double cpu = deposit_cpu_arrival();
    publish_checked(CollectiveType::Allgather, call, mine.data(),
                    mine.size_bytes());
    shared_->barrier.wait();
    // Effective per-source sizes: published sizes minus dropped corruptions.
    // Never trust a sender-published byte count blindly — a count that is not
    // a multiple of the element size would silently truncate and shift every
    // later rank's data.
    std::vector<uint64_t>& eff = eff_scratch_;
    eff.assign(static_cast<size_t>(size()), 0);
    size_t total_bytes = 0;
    for (int j = 0; j < size(); ++j) {
      uint64_t nb = shared_->nbytes[j];
      if (!verify_source(CollectiveType::Allgather, j, shared_->ptrs[j], nb,
                         shared_->sums[j]))
        nb = 0;
      check_source_multiple(CollectiveType::Allgather, j, nb, sizeof(T));
      eff[size_t(j)] = nb;
      total_bytes += nb;
    }
    size_t need = total_bytes / sizeof(T);
    if (grow_allocs && need > out.capacity()) ++*grow_allocs;
    out.clear();
    out.resize(need);
    if (offsets) offsets->assign(size_t(size()) + 1, 0);
    size_t pos = 0;
    for (int j = 0; j < size(); ++j) {
      if (offsets) (*offsets)[j] = pos / sizeof(T);
      if (eff[size_t(j)] > 0)
        std::memcpy(reinterpret_cast<unsigned char*>(out.data()) + pos,
                    shared_->ptrs[j], eff[size_t(j)]);
      pos += eff[size_t(j)];
    }
    if (offsets) (*offsets)[size()] = pos / sizeof(T);
    // Each rank's NIC receives everyone else's contribution.
    auto [intra, inter] = gatherv_bytes();
    shared_->barrier.wait();
    record(CollectiveType::Allgather, mine.size_bytes(), inter,
           topo().transfer_time(size(), intra, inter), t.seconds(), cpu);
  }

  /// MPI_Reduce_scatter_block: `contrib` has size() * block elements; rank r
  /// receives the element-wise reduction of block r across all participants.
  template <typename T, typename Op>
  std::vector<T> reduce_scatter_block(std::span<const T> contrib, size_t block,
                                      Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    SUNBFS_CHECK(contrib.size() == block * size_t(size()));
    WallTimer t;
    uint64_t call = begin_collective(CollectiveType::ReduceScatter);
    double cpu = deposit_cpu_arrival();
    publish_checked(CollectiveType::ReduceScatter, call, contrib.data(),
                    contrib.size_bytes());
    shared_->barrier.wait();
    std::vector<T> out(block);
    // Seed from the caller's own (uncorrupted) contribution so a dropped
    // source never leaves the result unseeded.
    std::memcpy(out.data(), contrib.data() + size_t(index_) * block,
                block * sizeof(T));
    for (int j = 0; j < size(); ++j) {
      if (j == index_) continue;
      if (!verify_source(CollectiveType::ReduceScatter, j, shared_->ptrs[j],
                         shared_->nbytes[j], shared_->sums[j]))
        continue;
      check_source_size(CollectiveType::ReduceScatter, j, shared_->nbytes[j],
                        contrib.size_bytes());
      const T* blk = static_cast<const T*>(shared_->ptrs[j]) +
                     size_t(index_) * block;
      for (size_t i = 0; i < block; ++i) out[i] = op(out[i], blk[i]);
    }
    auto [intra, inter] = symmetric_bytes(block * sizeof(T));
    shared_->barrier.wait();
    record(CollectiveType::ReduceScatter, contrib.size_bytes(), inter,
           topo().transfer_time(size(), intra, inter), t.seconds(), cpu);
    return out;
  }

  /// Element-wise allreduce over a span, in place (used for frontier
  /// bit-vector unions along mesh columns).  Implemented as a
  /// segment-parallel reduce + gather through shared scratch.
  template <typename T, typename Op>
  void allreduce_inplace(std::span<T> data, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size() == 1) return;  // nothing to exchange
    WallTimer t;
    uint64_t call = begin_collective(CollectiveType::Allreduce);
    double cpu = deposit_cpu_arrival();
    publish_checked(CollectiveType::Allreduce, call, data.data(),
                    data.size_bytes());
    if (index_ == 0) shared_->scratch.resize(data.size_bytes());
    shared_->barrier.wait();
    // Verify every contribution once; all ranks read the same shared
    // checksums, so the set of honest sources is identical everywhere.
    const bool sums = checksums_on();
    std::vector<bool> use;
    if (sums) {
      use.resize(size_t(size()));
      for (int j = 0; j < size(); ++j) {
        use[size_t(j)] =
            verify_source(CollectiveType::Allreduce, j, shared_->ptrs[j],
                          shared_->nbytes[j], shared_->sums[j]);
        if (use[size_t(j)])
          check_source_size(CollectiveType::Allreduce, j, shared_->nbytes[j],
                            data.size_bytes());
      }
    } else {
      check_source_size(CollectiveType::Allreduce, 0, shared_->nbytes[0],
                        data.size_bytes());
    }
    // Each participant reduces its own contiguous segment into scratch,
    // seeding from its own original buffer (immune to publish corruption).
    size_t n = data.size();
    size_t lo = n * size_t(index_) / size_t(size());
    size_t hi = n * size_t(index_ + 1) / size_t(size());
    T* scratch = reinterpret_cast<T*>(shared_->scratch.data());
    for (size_t i = lo; i < hi; ++i) {
      T acc = data[i];
      for (int j = 0; j < size(); ++j) {
        if (j == index_ || (sums && !use[size_t(j)])) continue;
        acc = op(acc, static_cast<const T*>(shared_->ptrs[j])[i]);
      }
      scratch[i] = acc;
    }
    shared_->barrier.wait();
    std::memcpy(data.data(), scratch, data.size_bytes());
    auto [intra, inter] = symmetric_bytes(data.size_bytes());
    shared_->barrier.wait();
    record(CollectiveType::Allreduce, data.size_bytes(), inter,
           topo().transfer_time(size(), intra, inter), t.seconds(), cpu);
  }

  /// Personalized all-to-all: `to[d]` is the message for participant d; the
  /// result is the concatenation of messages addressed to the caller in
  /// source-rank order.  If `src_offsets` is non-null it receives size()+1
  /// entries delimiting each source's data in the result.  Dropped messages
  /// appear empty.
  template <typename T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& to,
                           std::vector<size_t>* src_offsets = nullptr) {
    SUNBFS_CHECK(int(to.size()) == size());
    std::vector<T> out;
    alltoallv_core<T>(
        [&](int d) -> std::pair<const void*, uint64_t> {
          return {to[size_t(d)].data(), to[size_t(d)].size() * sizeof(T)};
        },
        out, src_offsets, nullptr);
    return out;
  }

  /// Allocation-free personalized all-to-all over a flat, pre-staged send
  /// buffer: `send` holds the messages for all destinations back-to-back and
  /// `elem_offsets` (size()+1 entries, in elements) delimits destination d's
  /// span as [elem_offsets[d], elem_offsets[d+1]).  The received
  /// concatenation is written into `out`, reusing its capacity across calls;
  /// `grow_allocs` (when non-null) is incremented iff this call had to grow
  /// `out` — the steady-state allocation proof behind comm.staging_allocs.
  /// Fault injection, checksums and byte/imbalance accounting are identical
  /// to the vector-of-vectors overload (both run the same core).
  template <typename T>
  void alltoallv_flat(std::span<const T> send,
                      std::span<const uint64_t> elem_offsets,
                      std::vector<T>& out,
                      std::vector<size_t>* src_offsets = nullptr,
                      uint64_t* grow_allocs = nullptr) {
    SUNBFS_CHECK(elem_offsets.size() == size_t(size()) + 1);
    SUNBFS_CHECK(elem_offsets[size_t(size())] <= send.size());
    alltoallv_core<T>(
        [&](int d) -> std::pair<const void*, uint64_t> {
          uint64_t lo = elem_offsets[size_t(d)];
          uint64_t hi = elem_offsets[size_t(d) + 1];
          return {send.data() + lo, (hi - lo) * sizeof(T)};
        },
        out, src_offsets, grow_allocs);
  }

  /// Broadcast `data` from participant `root` into every rank's buffer.
  /// A dropped (corrupted) broadcast leaves the receivers' buffers untouched.
  template <typename T>
  void broadcast(std::span<T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    SUNBFS_CHECK(root >= 0 && root < size());
    WallTimer t;
    uint64_t call = begin_collective(CollectiveType::Broadcast);
    double cpu = deposit_cpu_arrival();
    publish_checked(CollectiveType::Broadcast, call, data.data(),
                    data.size_bytes());
    shared_->barrier.wait();
    if (verify_source(CollectiveType::Broadcast, root, shared_->ptrs[root],
                      shared_->nbytes[root], shared_->sums[root])) {
      check_source_size(CollectiveType::Broadcast, root,
                        shared_->nbytes[root], data.size_bytes());
      if (index_ != root)
        std::memcpy(data.data(), shared_->ptrs[root], data.size_bytes());
    }
    auto [intra, inter] = symmetric_bytes(data.size_bytes());
    shared_->barrier.wait();
    record(CollectiveType::Broadcast, index_ == root ? data.size_bytes() : 0,
           index_ == root ? inter : 0,
           topo().transfer_time(size(), intra, inter), t.seconds(), cpu);
  }

  /// Sender-side wire-encoding accounting (sim/encoding.hpp): how many
  /// blocks/messages travelled under `codec` on `type` collectives and how
  /// the encoded bytes compare to the fixed-width representation.  Pure
  /// bookkeeping — the encoded payload itself flows through the normal
  /// publish/verify path, so checksums and Topology charging already see it.
  void note_encoding(CollectiveType type, WireCodec codec, uint64_t blocks,
                     uint64_t messages, uint64_t raw_bytes,
                     uint64_t encoded_bytes) {
    if (stats_)
      stats_->note_encoding(type, codec, blocks, messages, raw_bytes,
                            encoded_bytes);
  }

 private:
  const Topology& topo() const { return *shared_->topology; }

  int my_global_rank() const { return shared_->global_ranks[index_]; }

  bool checksums_on() const { return faults_ != nullptr && faults_->checksums; }

  /// Shared alltoallv implementation.  `part(d)` yields destination d's
  /// payload as {pointer, bytes}; the received concatenation lands in `out`
  /// (capacity reused; growth counted into `grow_allocs` when non-null).
  /// This single core carries the fault-injection surface (straggler +
  /// payload corruption + checksum verification) and the byte/imbalance
  /// accounting for every staging flavour.
  template <typename T, typename PartFn>
  void alltoallv_core(PartFn&& part, std::vector<T>& out,
                      std::vector<size_t>* src_offsets,
                      uint64_t* grow_allocs) {
    static_assert(std::is_trivially_copyable_v<T>);
    WallTimer t;
    uint64_t call = begin_collective(CollectiveType::Alltoallv);
    double cpu = deposit_cpu_arrival();
    int p = size();
    const PayloadFault* fault = pending_payload(CollectiveType::Alltoallv,
                                                call);
    int corrupt_dst = -1;
    if (fault) {
      // Corrupt the message to the scheduled peer (or the first non-empty).
      corrupt_dst = fault->peer >= 0 ? fault->peer % p : -1;
      if (corrupt_dst >= 0 && part(corrupt_dst).second == 0) corrupt_dst = -1;
      if (corrupt_dst < 0)
        for (int d = 0; d < p && corrupt_dst < 0; ++d)
          if (part(d).second != 0) corrupt_dst = d;
      if (corrupt_dst < 0) {  // nothing to corrupt this call; stay pending
        defer_payload(CollectiveType::Alltoallv, fault);
        fault = nullptr;
      }
    }
    for (int d = 0; d < p; ++d) {
      auto [ptr, nb] = part(d);
      if (checksums_on())
        shared_->a2a_sums[size_t(index_) * p + d] = checksum64(ptr, nb);
      if (fault && d == corrupt_dst) corrupt(*fault, ptr, nb);
      shared_->a2a_ptrs[size_t(index_) * p + d] = ptr;
      shared_->a2a_nbytes[size_t(index_) * p + d] = nb;
    }
    shared_->barrier.wait();
    std::vector<uint64_t>& eff = eff_scratch_;
    eff.assign(static_cast<size_t>(p), 0);
    size_t total_bytes = 0;
    for (int s = 0; s < p; ++s) {
      size_t slot = size_t(s) * p + index_;
      uint64_t nb = shared_->a2a_nbytes[slot];
      if (!verify_source(CollectiveType::Alltoallv, s,
                         shared_->a2a_ptrs[slot], nb,
                         checksums_on() ? shared_->a2a_sums[slot] : 0))
        nb = 0;
      // A sender-published byte count must always cover whole elements;
      // trusting it blindly would desync the receiver's message framing.
      check_source_multiple(CollectiveType::Alltoallv, s, nb, sizeof(T));
      eff[size_t(s)] = nb;
      total_bytes += nb;
    }
    size_t need = total_bytes / sizeof(T);
    if (grow_allocs && need > out.capacity()) ++*grow_allocs;
    out.clear();
    out.resize(need);
    if (src_offsets) src_offsets->assign(size_t(p) + 1, 0);
    size_t pos = 0;
    for (int s = 0; s < p; ++s) {
      if (src_offsets) (*src_offsets)[s] = pos / sizeof(T);
      uint64_t nb = eff[size_t(s)];
      if (nb > 0)
        std::memcpy(reinterpret_cast<unsigned char*>(out.data()) + pos,
                    shared_->a2a_ptrs[size_t(s) * p + index_], nb);
      pos += nb;
    }
    if (src_offsets) (*src_offsets)[p] = pos / sizeof(T);
    auto [sent, intra, inter, max_intra, max_inter] = a2a_bytes();
    shared_->barrier.wait();
    record(CollectiveType::Alltoallv, sent, inter,
           topo().transfer_time(p, max_intra, max_inter), t.seconds(), cpu);
  }

  /// Count this armed collective call, fire any scheduled straggler delay,
  /// and return the call index the fault plan is keyed on.
  uint64_t begin_collective(CollectiveType type) {
    if (faults_ == nullptr || !faults_->active()) return ~uint64_t(0);
    uint64_t call = faults_->calls[int(type)]++;
    if (const StragglerFault* s =
            faults_->plan->straggler(my_global_rank(), type, call)) {
      faults_->stats.injected_stragglers += 1;
      faults_->stats.straggler_delay_s += s->delay_s;
      log_debug("fault: injected straggler on rank ", my_global_rank(), ", ",
                collective_type_name(type), " call ", call, ", ",
                s->delay_s * 1e3, " ms");
      std::this_thread::sleep_for(
          std::chrono::duration<double>(s->delay_s));
      straggle_pending_s_ += s->delay_s;  // sleep is off the CPU clock
    }
    return call;
  }

  /// Payload fault scheduled for this exact call — or one deferred from an
  /// earlier call of this type that carried no payload to corrupt.  Callers
  /// must re-stash via defer_payload if this call has no payload either.
  const PayloadFault* pending_payload(CollectiveType type, uint64_t call) {
    if (faults_ == nullptr || !faults_->active()) return nullptr;
    if (const PayloadFault* f =
            faults_->plan->payload(my_global_rank(), type, call))
      return f;
    const PayloadFault* f = faults_->deferred[size_t(type)];
    faults_->deferred[size_t(type)] = nullptr;
    return f;
  }

  /// Keep `fault` pending for this rank's next call of `type`: its scheduled
  /// call had nothing to corrupt (every message empty).
  void defer_payload(CollectiveType type, const PayloadFault* fault) {
    faults_->deferred[size_t(type)] = fault;
    log_debug("fault: deferring ", fault_kind_name(fault->kind), " on rank ",
              my_global_rank(), " — ", collective_type_name(type),
              " call had no payload");
  }

  /// Apply `fault` to the payload about to be published: the original bytes
  /// are copied into rank-local scratch and the copy is corrupted, so the
  /// caller's buffer stays intact and the pre-computed checksum still covers
  /// the true payload.
  void corrupt(const PayloadFault& fault, const void*& ptr, uint64_t& nbytes) {
    if (nbytes == 0) return;  // nothing to corrupt
    corrupt_buf_.assign(static_cast<const unsigned char*>(ptr),
                        static_cast<const unsigned char*>(ptr) + nbytes);
    if (fault.kind == FaultKind::BitFlip)
      corrupt_buf_[nbytes / 2] ^= 0x10;
    else
      nbytes -= 1;  // truncate: drop the trailing byte
    ptr = corrupt_buf_.data();
    faults_->stats.injected_corruptions += 1;
    log_debug("fault: injected ", fault_kind_name(fault.kind), " on rank ",
              my_global_rank(), ", ", collective_type_name(fault.collective),
              " call ", fault.call_index);
  }

  /// Publish `(ptr, bytes)` with its checksum, applying any payload fault
  /// scheduled for this call.
  void publish_checked(CollectiveType type, uint64_t call, const void* ptr,
                       uint64_t bytes) {
    if (checksums_on()) shared_->sums[index_] = checksum64(ptr, bytes);
    if (const PayloadFault* fault = pending_payload(type, call)) {
      if (bytes == 0)
        defer_payload(type, fault);  // nothing to corrupt this call
      else
        corrupt(*fault, ptr, bytes);
    }
    shared_->ptrs[index_] = ptr;
    shared_->nbytes[index_] = bytes;
  }

  /// Verify participant `src`'s published payload against its checksum.
  /// Returns true when the contribution is usable.  On mismatch: records the
  /// detection and either throws FaultDetected (abort / report policies) or
  /// marks a pending fault and returns false so the caller drops the
  /// contribution (recover policy).
  bool verify_source(CollectiveType type, int src, const void* ptr,
                     uint64_t nbytes, uint64_t sum) {
    if (!checksums_on()) return true;
    bool ok = checksum64(ptr, nbytes) == sum;
    if (stats_) stats_->note_checksum(ok);
    if (ok) return true;
    faults_->stats.detected += 1;
    std::string msg = detail::log_format(
        "fault: checksum mismatch in ", collective_type_name(type),
        " — payload from rank ", global_rank_of(src), " corrupt at rank ",
        my_global_rank());
    log_debug(msg);
    if (faults_->policy == FaultPolicy::Recover) {
      faults_->pending = true;
      return false;
    }
    throw FaultDetected(msg, type, global_rank_of(src), my_global_rank());
  }

  /// Matched-size assertion for fixed-size contributions.
  void check_source_size(CollectiveType type, int src, uint64_t nbytes,
                         uint64_t expected) const {
    SUNBFS_CHECK_MSG(
        nbytes == expected,
        detail::log_format(collective_type_name(type), ": rank ",
                           global_rank_of(src), " published ", nbytes,
                           " bytes where receiver rank ", my_global_rank(),
                           " expected ", expected));
  }

  /// Element-size divisibility assertion for variable-size contributions.
  void check_source_multiple(CollectiveType type, int src, uint64_t nbytes,
                             uint64_t elem) const {
    SUNBFS_CHECK_MSG(
        nbytes % elem == 0,
        detail::log_format(collective_type_name(type), ": rank ",
                           global_rank_of(src), " published ", nbytes,
                           " bytes, not a multiple of the ", elem,
                           "-byte element size expected by receiver rank ",
                           my_global_rank()));
  }

  /// Deposit this rank's thread-CPU seconds consumed since its previous
  /// collective on this communicator (plus any injected straggler delay,
  /// whose sleep is invisible to the CPU clock).  Must run before the
  /// collective's first barrier; the spread of these deposits across ranks
  /// is the wait-for-peers measurement behind CollectiveEntry::imbalance_s.
  /// The thread-CPU clock (not wall) keeps it meaningful when the host
  /// oversubscribes rank threads onto fewer cores.
  double deposit_cpu_arrival() {
    double now = ThreadCpuTimer::now();
    double delta = last_cpu_ >= 0 ? now - last_cpu_ : 0.0;
    delta += straggle_pending_s_;
    straggle_pending_s_ = 0;
    shared_->cpu_arrival[arrival_base() + size_t(index_)] = delta;
    return delta;
  }

  /// Base slot of the current collective's arrival buffer.  Double-buffered
  /// by parity: a rank racing into collective k+1 deposits into the other
  /// half, and it cannot reach k+2 (which overwrites half k) before every
  /// peer passed a barrier of k+1 — i.e. after they finished reading half k.
  size_t arrival_base() const {
    return size_t(collective_seq_ & 1) * size_t(size());
  }

  void record(CollectiveType type, uint64_t bytes_sent, uint64_t inter,
              double modeled_s, double wall_s, double my_cpu_delta) {
    // Arrival spread: how much longer the slowest peer computed before this
    // collective — the wait this rank would incur on a dedicated machine.
    double max_delta = my_cpu_delta;
    size_t base = arrival_base();
    for (int j = 0; j < size(); ++j)
      max_delta = std::max(max_delta, shared_->cpu_arrival[base + size_t(j)]);
    double imbalance_s = max_delta - my_cpu_delta;
    last_cpu_ = ThreadCpuTimer::now();
    ++collective_seq_;
    if (stats_)
      stats_->record(type, bytes_sent, inter, modeled_s, wall_s, imbalance_s);
    // One span per collective on both clocks; advances this rank's modeled
    // clock so BFS/chip spans recorded later line up after it.
    obs::complete_span("comm", collective_type_name(type),
                       int64_t(bytes_sent), wall_s, modeled_s,
                       /*advance_modeled=*/true);
  }

  /// For symmetric collectives where each rank effectively exchanges
  /// `bytes_per_rank` with every peer group: returns {intra, inter} bytes the
  /// most loaded rank moves across each network level.
  std::pair<uint64_t, uint64_t> symmetric_bytes(uint64_t bytes_per_rank) const {
    uint64_t intra = 0, inter = 0;
    int me = shared_->global_ranks[index_];
    for (int j = 0; j < size(); ++j) {
      if (j == index_) continue;
      if (topo().same_supernode(me, shared_->global_ranks[j]))
        intra += bytes_per_rank;
      else
        inter += bytes_per_rank;
    }
    return {intra, inter};
  }

  /// allgatherv: most loaded rank receives everyone's contribution.
  std::pair<uint64_t, uint64_t> gatherv_bytes() const {
    uint64_t intra = 0, inter = 0;
    int me = shared_->global_ranks[index_];
    for (int j = 0; j < size(); ++j) {
      if (j == index_) continue;
      if (topo().same_supernode(me, shared_->global_ranks[j]))
        intra += shared_->nbytes[j];
      else
        inter += shared_->nbytes[j];
    }
    return {intra, inter};
  }

  /// alltoallv byte accounting: {my_sent, my_intra, my_inter,
  /// max_rank_intra, max_rank_inter}.
  std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t> a2a_bytes()
      const {
    int p = size();
    uint64_t my_sent = 0, my_intra = 0, my_inter = 0;
    uint64_t max_intra = 0, max_inter = 0;
    for (int s = 0; s < p; ++s) {
      uint64_t s_intra = 0, s_inter = 0;
      int gs = shared_->global_ranks[s];
      for (int d = 0; d < p; ++d) {
        if (s == d) continue;
        uint64_t nb = shared_->a2a_nbytes[size_t(s) * p + d];
        if (topo().same_supernode(gs, shared_->global_ranks[d]))
          s_intra += nb;
        else
          s_inter += nb;
      }
      if (s == index_) {
        my_intra = s_intra;
        my_inter = s_inter;
        my_sent = s_intra + s_inter;
      }
      max_intra = std::max(max_intra, s_intra);
      max_inter = std::max(max_inter, s_inter);
    }
    return {my_sent, my_intra, my_inter, max_intra, max_inter};
  }

  CommShared* shared_ = nullptr;
  int index_ = 0;
  double last_cpu_ = -1;           ///< thread-CPU reading at last record()
  double straggle_pending_s_ = 0;  ///< injected delay folded into next deposit
  uint64_t collective_seq_ = 0;    ///< parity for the arrival double-buffer
  CommStats* stats_ = nullptr;
  FaultState* faults_ = nullptr;
  /// Scratch holding the corrupted copy of a published payload until the
  /// collective completes.
  std::vector<unsigned char> corrupt_buf_;
  /// Reused per-source effective-size scratch for alltoallv/allgatherv
  /// (capacity is retained across calls — no steady-state allocation).
  std::vector<uint64_t> eff_scratch_;
};

}  // namespace sunbfs::sim
