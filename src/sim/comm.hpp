#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "sim/barrier.hpp"
#include "sim/comm_stats.hpp"
#include "sim/topology.hpp"
#include "support/check.hpp"
#include "support/timer.hpp"

/// MPI-style collectives for the in-process SPMD runtime.
///
/// A Comm is a lightweight per-rank handle onto shared state owned by the
/// runtime.  Collectives must be entered by every rank of the communicator in
/// the same order, exactly as in MPI.  Payload types must be trivially
/// copyable.  Every collective records bytes moved, modeled network time (from
/// the Topology cost model) and measured wall time into the rank's CommStats.
namespace sunbfs::sim {

/// Shared state backing one communicator group; owned by the runtime.
struct CommShared {
  CommShared(std::vector<int> ranks, const Topology* topo);

  std::vector<int> global_ranks;  // participant global ranks, by index
  const Topology* topology;
  Barrier barrier;
  // Publication slots, one per participant (pointer + byte count).
  std::vector<const void*> ptrs;
  std::vector<uint64_t> nbytes;
  // Alltoallv publication matrix: slot [src * P + dst].
  std::vector<const void*> a2a_ptrs;
  std::vector<uint64_t> a2a_nbytes;
  // Scratch used by segment-parallel reductions.
  std::vector<unsigned char> scratch;
};

/// Per-rank communicator handle.
class Comm {
 public:
  Comm() = default;
  Comm(CommShared* shared, int index, CommStats* stats)
      : shared_(shared), index_(index), stats_(stats) {}

  bool valid() const { return shared_ != nullptr; }
  /// Rank of the caller within this communicator.
  int rank() const { return index_; }
  /// Number of participants.
  int size() const { return int(shared_->global_ranks.size()); }
  /// Global rank of participant `index`.
  int global_rank_of(int index) const { return shared_->global_ranks[index]; }

  /// Synchronize all participants.
  void barrier() {
    WallTimer t;
    shared_->barrier.wait();
    record(CollectiveType::Barrier, 0, 0,
           topo().transfer_time(size(), 0, 0), t.seconds());
  }

  /// Element-wise reduction of a single value across all participants;
  /// every rank receives the result.
  template <typename T, typename Op>
  T allreduce(const T& value, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    WallTimer t;
    publish(&value, sizeof(T));
    shared_->barrier.wait();
    T acc = *static_cast<const T*>(shared_->ptrs[0]);
    for (int j = 1; j < size(); ++j)
      acc = op(acc, *static_cast<const T*>(shared_->ptrs[j]));
    auto [intra, inter] = symmetric_bytes(sizeof(T));
    shared_->barrier.wait();
    record(CollectiveType::Allreduce, sizeof(T), inter,
           topo().transfer_time(size(), intra, inter), t.seconds());
    return acc;
  }

  /// Sum-reduction convenience.
  template <typename T>
  T allreduce_sum(const T& value) {
    return allreduce(value, [](T a, T b) { return a + b; });
  }

  /// Logical-or reduction convenience.
  bool allreduce_or(bool value) {
    return allreduce(int(value), [](int a, int b) { return a | b; }) != 0;
  }

  /// Max-reduction convenience.
  template <typename T>
  T allreduce_max(const T& value) {
    return allreduce(value, [](T a, T b) { return a > b ? a : b; });
  }

  /// Gather one value from each participant; result indexed by rank.
  template <typename T>
  std::vector<T> allgather(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    WallTimer t;
    publish(&value, sizeof(T));
    shared_->barrier.wait();
    std::vector<T> out(size());
    for (int j = 0; j < size(); ++j)
      std::memcpy(&out[j], shared_->ptrs[j], sizeof(T));
    auto [intra, inter] = symmetric_bytes(sizeof(T));
    shared_->barrier.wait();
    record(CollectiveType::Allgather, sizeof(T), inter,
           topo().transfer_time(size(), intra, inter), t.seconds());
    return out;
  }

  /// Variable-size gather: concatenation of every participant's span in rank
  /// order.  If `offsets` is non-null it receives size()+1 entries delimiting
  /// each rank's contribution in the result.
  template <typename T>
  std::vector<T> allgatherv(std::span<const T> mine,
                            std::vector<size_t>* offsets = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    WallTimer t;
    publish(mine.data(), mine.size_bytes());
    shared_->barrier.wait();
    size_t total_bytes = 0;
    for (int j = 0; j < size(); ++j) total_bytes += shared_->nbytes[j];
    std::vector<T> out(total_bytes / sizeof(T));
    if (offsets) offsets->assign(size_t(size()) + 1, 0);
    size_t pos = 0;
    for (int j = 0; j < size(); ++j) {
      if (offsets) (*offsets)[j] = pos / sizeof(T);
      if (shared_->nbytes[j] > 0)
        std::memcpy(reinterpret_cast<unsigned char*>(out.data()) + pos,
                    shared_->ptrs[j], shared_->nbytes[j]);
      pos += shared_->nbytes[j];
    }
    if (offsets) (*offsets)[size()] = pos / sizeof(T);
    // Each rank's NIC receives everyone else's contribution.
    auto [intra, inter] = gatherv_bytes();
    shared_->barrier.wait();
    record(CollectiveType::Allgather, mine.size_bytes(), inter,
           topo().transfer_time(size(), intra, inter), t.seconds());
    return out;
  }

  /// MPI_Reduce_scatter_block: `contrib` has size() * block elements; rank r
  /// receives the element-wise reduction of block r across all participants.
  template <typename T, typename Op>
  std::vector<T> reduce_scatter_block(std::span<const T> contrib, size_t block,
                                      Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    SUNBFS_CHECK(contrib.size() == block * size_t(size()));
    WallTimer t;
    publish(contrib.data(), contrib.size_bytes());
    shared_->barrier.wait();
    std::vector<T> out(block);
    const T* base0 = static_cast<const T*>(shared_->ptrs[0]);
    std::memcpy(out.data(), base0 + size_t(index_) * block, block * sizeof(T));
    for (int j = 1; j < size(); ++j) {
      const T* base = static_cast<const T*>(shared_->ptrs[j]);
      const T* blk = base + size_t(index_) * block;
      for (size_t i = 0; i < block; ++i) out[i] = op(out[i], blk[i]);
    }
    auto [intra, inter] = symmetric_bytes(block * sizeof(T));
    shared_->barrier.wait();
    record(CollectiveType::ReduceScatter, contrib.size_bytes(), inter,
           topo().transfer_time(size(), intra, inter), t.seconds());
    return out;
  }

  /// Element-wise allreduce over a span, in place (used for frontier
  /// bit-vector unions along mesh columns).  Implemented as a
  /// segment-parallel reduce + gather through shared scratch.
  template <typename T, typename Op>
  void allreduce_inplace(std::span<T> data, Op op) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (size() == 1) return;  // nothing to exchange
    WallTimer t;
    publish(data.data(), data.size_bytes());
    if (index_ == 0) shared_->scratch.resize(data.size_bytes());
    shared_->barrier.wait();
    SUNBFS_CHECK(shared_->nbytes[0] == data.size_bytes());
    // Each participant reduces its own contiguous segment into scratch.
    size_t n = data.size();
    size_t lo = n * size_t(index_) / size_t(size());
    size_t hi = n * size_t(index_ + 1) / size_t(size());
    T* scratch = reinterpret_cast<T*>(shared_->scratch.data());
    for (size_t i = lo; i < hi; ++i) {
      T acc = static_cast<const T*>(shared_->ptrs[0])[i];
      for (int j = 1; j < size(); ++j)
        acc = op(acc, static_cast<const T*>(shared_->ptrs[j])[i]);
      scratch[i] = acc;
    }
    shared_->barrier.wait();
    std::memcpy(data.data(), scratch, data.size_bytes());
    auto [intra, inter] = symmetric_bytes(data.size_bytes());
    shared_->barrier.wait();
    record(CollectiveType::Allreduce, data.size_bytes(), inter,
           topo().transfer_time(size(), intra, inter), t.seconds());
  }

  /// Personalized all-to-all: `to[d]` is the message for participant d; the
  /// result is the concatenation of messages addressed to the caller in
  /// source-rank order.  If `src_offsets` is non-null it receives size()+1
  /// entries delimiting each source's data in the result.
  template <typename T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& to,
                           std::vector<size_t>* src_offsets = nullptr) {
    static_assert(std::is_trivially_copyable_v<T>);
    SUNBFS_CHECK(int(to.size()) == size());
    WallTimer t;
    int p = size();
    for (int d = 0; d < p; ++d) {
      shared_->a2a_ptrs[size_t(index_) * p + d] = to[d].data();
      shared_->a2a_nbytes[size_t(index_) * p + d] = to[d].size() * sizeof(T);
    }
    shared_->barrier.wait();
    size_t total_bytes = 0;
    for (int s = 0; s < p; ++s)
      total_bytes += shared_->a2a_nbytes[size_t(s) * p + index_];
    std::vector<T> out(total_bytes / sizeof(T));
    if (src_offsets) src_offsets->assign(size_t(p) + 1, 0);
    size_t pos = 0;
    for (int s = 0; s < p; ++s) {
      if (src_offsets) (*src_offsets)[s] = pos / sizeof(T);
      uint64_t nb = shared_->a2a_nbytes[size_t(s) * p + index_];
      if (nb > 0)
        std::memcpy(reinterpret_cast<unsigned char*>(out.data()) + pos,
                    shared_->a2a_ptrs[size_t(s) * p + index_], nb);
      pos += nb;
    }
    if (src_offsets) (*src_offsets)[p] = pos / sizeof(T);
    auto [sent, intra, inter, max_intra, max_inter] = a2a_bytes();
    shared_->barrier.wait();
    record(CollectiveType::Alltoallv, sent, inter,
           topo().transfer_time(p, max_intra, max_inter), t.seconds());
    return out;
  }

  /// Broadcast `data` from participant `root` into every rank's buffer.
  template <typename T>
  void broadcast(std::span<T> data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    SUNBFS_CHECK(root >= 0 && root < size());
    WallTimer t;
    publish(data.data(), data.size_bytes());
    shared_->barrier.wait();
    SUNBFS_CHECK(shared_->nbytes[root] == data.size_bytes());
    if (index_ != root)
      std::memcpy(data.data(), shared_->ptrs[root], data.size_bytes());
    auto [intra, inter] = symmetric_bytes(data.size_bytes());
    shared_->barrier.wait();
    record(CollectiveType::Broadcast, index_ == root ? data.size_bytes() : 0,
           index_ == root ? inter : 0,
           topo().transfer_time(size(), intra, inter), t.seconds());
  }

 private:
  const Topology& topo() const { return *shared_->topology; }

  void publish(const void* ptr, uint64_t bytes) {
    shared_->ptrs[index_] = ptr;
    shared_->nbytes[index_] = bytes;
  }

  void record(CollectiveType type, uint64_t bytes_sent, uint64_t inter,
              double modeled_s, double wall_s) {
    if (stats_) stats_->record(type, bytes_sent, inter, modeled_s, wall_s);
  }

  /// For symmetric collectives where each rank effectively exchanges
  /// `bytes_per_rank` with every peer group: returns {intra, inter} bytes the
  /// most loaded rank moves across each network level.
  std::pair<uint64_t, uint64_t> symmetric_bytes(uint64_t bytes_per_rank) const {
    uint64_t intra = 0, inter = 0;
    int me = shared_->global_ranks[index_];
    for (int j = 0; j < size(); ++j) {
      if (j == index_) continue;
      if (topo().same_supernode(me, shared_->global_ranks[j]))
        intra += bytes_per_rank;
      else
        inter += bytes_per_rank;
    }
    return {intra, inter};
  }

  /// allgatherv: most loaded rank receives everyone's contribution.
  std::pair<uint64_t, uint64_t> gatherv_bytes() const {
    uint64_t intra = 0, inter = 0;
    int me = shared_->global_ranks[index_];
    for (int j = 0; j < size(); ++j) {
      if (j == index_) continue;
      if (topo().same_supernode(me, shared_->global_ranks[j]))
        intra += shared_->nbytes[j];
      else
        inter += shared_->nbytes[j];
    }
    return {intra, inter};
  }

  /// alltoallv byte accounting: {my_sent, my_intra, my_inter,
  /// max_rank_intra, max_rank_inter}.
  std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t> a2a_bytes()
      const {
    int p = size();
    uint64_t my_sent = 0, my_intra = 0, my_inter = 0;
    uint64_t max_intra = 0, max_inter = 0;
    for (int s = 0; s < p; ++s) {
      uint64_t s_intra = 0, s_inter = 0;
      int gs = shared_->global_ranks[s];
      for (int d = 0; d < p; ++d) {
        if (s == d) continue;
        uint64_t nb = shared_->a2a_nbytes[size_t(s) * p + d];
        if (topo().same_supernode(gs, shared_->global_ranks[d]))
          s_intra += nb;
        else
          s_inter += nb;
      }
      if (s == index_) {
        my_intra = s_intra;
        my_inter = s_inter;
        my_sent = s_intra + s_inter;
      }
      max_intra = std::max(max_intra, s_intra);
      max_inter = std::max(max_inter, s_inter);
    }
    return {my_sent, my_intra, my_inter, max_intra, max_inter};
  }

  CommShared* shared_ = nullptr;
  int index_ = 0;
  CommStats* stats_ = nullptr;
};

}  // namespace sunbfs::sim
