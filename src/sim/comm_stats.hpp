#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

/// Per-rank accounting of communication by collective type.
///
/// Figure 11 of the paper breaks BFS time into alltoallv / allgather /
/// reduce-scatter / compute / imbalance; this structure captures the
/// communication side of that breakdown for every run.  Each collective
/// records on two clocks (modeled network seconds from the topology cost
/// model; measured host wall seconds) plus a first-class wait-for-peers
/// measurement — the thread-CPU arrival spread at the collective — so the
/// imbalance bar is measured, not derived by subtraction.
namespace sunbfs::sim {

enum class CollectiveType : int {
  Alltoallv = 0,
  Allgather,
  ReduceScatter,
  Allreduce,
  Broadcast,
  Barrier,
};
inline constexpr int kCollectiveTypeCount = 6;

/// Human-readable name ("alltoallv", "allgather", ...).
const char* collective_type_name(CollectiveType type);

/// Wire encodings a staged payload block can travel as (sim/encoding.hpp):
/// raw fixed-width structs, delta-sorted varint keys, or a dense key bitmap.
/// The sender picks per block per level by measured size — the wire-level
/// analogue of the paper's top-down/bottom-up frontier-format switch.
enum class WireCodec : int {
  Raw = 0,
  Varint,
  Bitmap,
};
inline constexpr int kWireCodecCount = 3;

/// Human-readable codec name ("raw", "varint", "bitmap").
const char* wire_codec_name(WireCodec codec);

/// Accumulated per-(collective, codec) encoding histogram bucket.
struct EncodingEntry {
  uint64_t blocks = 0;         ///< destination blocks shipped with this codec
  uint64_t messages = 0;       ///< messages (or frontier words) inside them
  uint64_t raw_bytes = 0;      ///< pre-encoding fixed-width payload bytes
  uint64_t encoded_bytes = 0;  ///< bytes actually published on the wire
};

/// Accumulated counters for one collective type.
struct CollectiveEntry {
  uint64_t calls = 0;
  /// Bytes this rank sent (payload, not counting duplication inside the
  /// collective algorithm).
  uint64_t bytes_sent = 0;
  /// Portion of bytes_sent that crossed a supernode boundary.
  uint64_t bytes_inter_supernode = 0;
  /// Modeled network seconds (identical on every participating rank).
  double modeled_s = 0.0;
  /// Measured wall seconds spent inside the collective on this rank.
  double wall_s = 0.0;
  /// Wait-for-peers this rank would incur on a dedicated machine: how much
  /// longer the slowest participant computed (thread-CPU clock, plus any
  /// injected straggler delay) since the previous collective — the
  /// Figure 11 "imbalance" component, measured at every collective by
  /// Comm::deposit_cpu_arrival rather than derived by subtraction.
  double imbalance_s = 0.0;
};

/// Per-rank communication statistics.
class CommStats {
 public:
  void record(CollectiveType type, uint64_t bytes_sent,
              uint64_t bytes_inter_supernode, double modeled_s,
              double wall_s, double imbalance_s);

  /// Record one payload-checksum verification (ok or mismatched).
  void note_checksum(bool ok) {
    ++checksums_verified_;
    if (!ok) ++checksum_mismatches_;
  }
  uint64_t checksums_verified() const { return checksums_verified_; }
  uint64_t checksum_mismatches() const { return checksum_mismatches_; }

  const CollectiveEntry& entry(CollectiveType type) const {
    return entries_[int(type)];
  }

  /// Record one batch of payload blocks shipped under `codec` on `type`
  /// collectives (sender side; raw_bytes is what the fixed-width structs
  /// would have cost, encoded_bytes is what actually hit the wire).
  void note_encoding(CollectiveType type, WireCodec codec, uint64_t blocks,
                     uint64_t messages, uint64_t raw_bytes,
                     uint64_t encoded_bytes);

  const EncodingEntry& encoding_entry(CollectiveType type,
                                      WireCodec codec) const {
    return encodings_[int(type)][int(codec)];
  }

  /// Total wire bytes saved by encoding: sum over the histogram of
  /// (raw_bytes - encoded_bytes).  Signed because blocks that stay raw pay
  /// a small per-block header on the wire.
  int64_t encoding_saved_bytes() const;

  /// Sum of modeled seconds over all collective types.
  double total_modeled_s() const;
  /// Sum of measured wall seconds over all collective types.
  double total_wall_s() const;
  /// Sum of wait-for-peers (arrival spread) seconds over all types.
  double total_imbalance_s() const;
  uint64_t total_bytes_sent() const;
  uint64_t total_bytes_inter_supernode() const;

  /// Element-wise accumulate (for cross-rank aggregation).
  void merge(const CommStats& other);

  void reset();

  std::string to_string() const;

  /// Fold into a metrics report: per-type counters/gauges under
  /// "<prefix><type>." plus "<prefix>checksums_*" (see
  /// docs/OBSERVABILITY.md for the schema).  Empty collective types are
  /// skipped.
  void to_report(obs::Report& report,
                 const std::string& prefix = "comm.") const;

 private:
  std::array<CollectiveEntry, kCollectiveTypeCount> entries_{};
  std::array<std::array<EncodingEntry, kWireCodecCount>, kCollectiveTypeCount>
      encodings_{};
  uint64_t checksums_verified_ = 0;
  uint64_t checksum_mismatches_ = 0;
};

}  // namespace sunbfs::sim
