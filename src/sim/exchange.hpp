#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/comm_buffer.hpp"
#include "sim/encoding.hpp"
#include "sim/topology.hpp"
#include "support/check.hpp"

/// Pluggable exchange plans for the staged point-to-point (alltoallv-shaped)
/// frontier traffic of every engine (docs/COMM.md "Exchange plans").
///
/// The engines stage one personalized message stream per destination each
/// level; how those streams reach their destinations is the exchange plan:
///
///   Direct     one alltoallv — every rank injects every destination block
///              straight onto the network (the paper's hardware-assisted
///              exchange; our modeled baseline),
///   Butterfly  log2(P) staged hops (ButterFly BFS, arXiv 2103.13577): each
///              stage fixes one bit of the destination rank, messages are
///              re-staged between hops, and mergeable messages headed for
///              the same (destination rank, key) collapse at every stage —
///              duplicate visits die before they ever cross the
///              oversubscribed top-level links,
///   TwoDCA     the 2D communication-avoiding split (Buluç & Madduri, arXiv
///              1104.4518): stage one moves messages within the holder's
///              mesh row to the destination's column, stage two delivers
///              down the column — at most one inter-supernode hop per
///              message, with the same in-flight merging.
///
/// A plan is pure routing metadata: build() derives the stage list from
/// (backend, nparts, mesh) and hop() answers "where does a message for `dst`
/// held at `holder` go next".  Execution lives in ExchangeChannel
/// (sim/exchange_channel.hpp), which runs every stage through the ordinary
/// A2aStaging pools, so wire encoding, xxhash64 checksums, fault injection
/// and Topology byte charging all apply per stage unchanged.  stages() == 0
/// means "this plan degenerates to the direct alltoallv" (one rank, a mesh
/// the backend cannot split, or the Direct backend itself).
namespace sunbfs::sim {

enum class ExchangeBackend : uint8_t { Direct = 0, Butterfly = 1, TwoDCA = 2 };

inline const char* exchange_backend_name(ExchangeBackend b) {
  switch (b) {
    case ExchangeBackend::Direct: return "direct";
    case ExchangeBackend::Butterfly: return "butterfly";
    case ExchangeBackend::TwoDCA: return "2dca";
  }
  return "direct";
}

/// Parse "direct" / "butterfly" / "2dca"; false on anything else.
inline bool parse_exchange_backend(const std::string& s, ExchangeBackend* out) {
  if (s == "direct") *out = ExchangeBackend::Direct;
  else if (s == "butterfly") *out = ExchangeBackend::Butterfly;
  else if (s == "2dca") *out = ExchangeBackend::TwoDCA;
  else return false;
  return true;
}

/// Per-engine exchange policy, threaded from runner flags into engine
/// options (Bfs1dOptions, Bfs15dOptions, MsbfsOptions, DeltaSteppingOptions).
struct ExchangeOptions {
  ExchangeBackend backend = ExchangeBackend::Direct;
};

/// Staged routing plan for one (backend, nparts, mesh) combination.
class ExchangePlan {
 public:
  /// Direct plan: zero stages, pure alltoallv.
  ExchangePlan() = default;

  /// Derive the stage list.  `nparts` is the communicator size the exchange
  /// runs over; `mesh` is the full process mesh (TwoDCA needs the row/column
  /// geometry and only applies when nparts covers the whole mesh).
  static ExchangePlan build(ExchangeBackend backend, int nparts,
                            MeshShape mesh) {
    ExchangePlan plan;
    plan.backend_ = backend;
    plan.nparts_ = nparts;
    plan.mesh_ = mesh;
    if (nparts <= 1) return plan;
    switch (backend) {
      case ExchangeBackend::Direct:
        break;
      case ExchangeBackend::Butterfly: {
        // q = largest power of two <= nparts.  Non-power-of-two sizes fold
        // the tail ranks [q, nparts) onto [0, nparts - q) first, run the
        // log2(q) bit stages on the power-of-two core, then unfold.
        int q = 1;
        while (q * 2 <= nparts) q *= 2;
        plan.q_ = q;
        if (nparts > q) plan.push_stage(StageKind::Fold, 0);
        // Low bits first: with row-major rank numbering the low bits select
        // the column, so the early stages hop inside a supernode row and
        // merging happens before any oversubscribed inter-supernode link.
        for (int bit = 1; bit < q; bit *= 2)
          plan.push_stage(StageKind::Bit, bit);
        if (nparts > q) plan.push_stage(StageKind::Unfold, 0);
        break;
      }
      case ExchangeBackend::TwoDCA:
        // Row split then column delivery; needs the full mesh and a shape
        // with something to split (a 1xC or Rx1 mesh is already direct).
        if (nparts == mesh.ranks() && mesh.rows > 1 && mesh.cols > 1) {
          plan.push_stage(StageKind::RowSplit, 0);
          plan.push_stage(StageKind::ColDeliver, 0);
        }
        break;
    }
    return plan;
  }

  ExchangeBackend backend() const { return backend_; }
  int nparts() const { return nparts_; }
  /// Number of staged hops; 0 means execute as one direct alltoallv.
  int stages() const { return int(kinds_.size()); }

  /// Next hop for a message destined to `dst` currently held at `holder`.
  /// hop(stage, ...) == holder is a (free) self-hop.  After running every
  /// stage in order the message is at `dst`.
  int hop(int stage, int holder, int dst) const {
    SUNBFS_ASSERT(stage >= 0 && stage < stages());
    SUNBFS_ASSERT(holder >= 0 && holder < nparts_);
    SUNBFS_ASSERT(dst >= 0 && dst < nparts_);
    switch (kinds_[size_t(stage)]) {
      case StageKind::Fold:
        return holder >= q_ ? holder - q_ : holder;
      case StageKind::Bit: {
        const int bit = bits_[size_t(stage)];
        const int t = dst >= q_ ? dst - q_ : dst;  // core image of dst
        return (holder & ~bit) | (t & bit);
      }
      case StageKind::Unfold:
        return dst >= q_ ? dst : holder;
      case StageKind::RowSplit:
        return mesh_.rank_of(mesh_.row_of(holder), mesh_.col_of(dst));
      case StageKind::ColDeliver:
        return dst;
    }
    return dst;
  }

 private:
  enum class StageKind : uint8_t { Fold, Bit, Unfold, RowSplit, ColDeliver };

  void push_stage(StageKind kind, int bit) {
    kinds_.push_back(kind);
    bits_.push_back(bit);
  }

  ExchangeBackend backend_ = ExchangeBackend::Direct;
  int nparts_ = 0;
  int q_ = 0;  // butterfly power-of-two core size
  MeshShape mesh_{};
  std::vector<StageKind> kinds_;
  std::vector<int> bits_;  // parallel to kinds_; the bit of each Bit stage
};

/// ---- In-flight merging ---------------------------------------------------
///
/// A staged exchange holds messages from many sources at intermediate ranks;
/// collapsing messages that a receiver would reduce anyway is where the
/// butterfly's byte win comes from.  A message type opts in by specializing
/// ExchangeMergePolicy<T> next to its WireFormat (bfs/messages.hpp,
/// service/msbfs.hpp, analytics/delta_stepping.hpp):
///
///   static constexpr bool enabled;
///   static bool same(const T& a, uint32_t a_src_part,
///                    const T& b, uint32_t b_src_part);  // same merge group
///   static void fold(T& into, uint32_t& into_src_part,
///                    const T& from, uint32_t from_src_part);
///
/// fold() must reproduce the receiver's reduction exactly (max parent, min
/// distance, OR of query masks), and same() must group only messages the
/// receiver would reduce together — when a merged message's meaning depends
/// on which rank sent it (CompactMsg local source indices), either same()
/// keeps sources apart (MsbfsMsg) or fold() rewrites the surviving source
/// rank (CompactMsg picks the max (rank, local-id) pair, which is the max
/// global parent under the monotone block layout).  Merging only ever runs
/// inside staged plans; the Direct backend's bytes are untouched.
template <typename T>
struct ExchangeMergePolicy {
  static constexpr bool enabled = false;
};

/// Routing envelope for staged hops: the final destination rank and the
/// originating rank ride along so intermediate holders can re-stage and the
/// final holder can rebuild the per-source delimiters the receivers' index
/// reconstruction depends on.  `route` leads the struct so the layout has no
/// uninitialized padding beyond what T itself carries (raw-codec blocks and
/// fault checksums memcpy whole structs).
template <typename T>
struct Routed {
  uint64_t route;  // dst_part << 32 | src_part
  T msg;

  static uint64_t make_route(uint32_t dst_part, uint32_t src_part) {
    return (uint64_t(dst_part) << 32) | uint64_t(src_part);
  }
  uint32_t dst_part() const { return uint32_t(route >> 32); }
  uint32_t src_part() const { return uint32_t(route); }
};

/// ExchangeFold bridge: A2aStaging's merge pass (comm_buffer.hpp) folds
/// adjacent same-group Routed messages using the payload's merge policy.
/// Grouping ignores the source rank — collapsing duplicates from different
/// sources is the point — so fold() lets the policy pick the surviving
/// source.
template <typename T>
struct ExchangeFold<Routed<T>> {
  static constexpr bool enabled = ExchangeMergePolicy<T>::enabled;
  static bool same(const Routed<T>& a, const Routed<T>& b) {
    return a.dst_part() == b.dst_part() &&
           ExchangeMergePolicy<T>::same(a.msg, a.src_part(), b.msg,
                                        b.src_part());
  }
  static void fold(Routed<T>& into, const Routed<T>& from) {
    uint32_t src = into.src_part();
    ExchangeMergePolicy<T>::fold(into.msg, src, from.msg, from.src_part());
    into.route = Routed<T>::make_route(into.dst_part(), src);
  }
};

/// Wire format of the routing envelope: the payload's key drives sorting and
/// delta coding; the route and the payload's rest fields travel as varints.
/// Same-key messages order route-major, which is exactly the adjacency the
/// merge pass needs (same destination rank together, then same source).
template <typename T>
struct WireFormat<Routed<T>> {
  using Inner = WireFormat<T>;
  static uint64_t key(const Routed<T>& m) { return Inner::key(m.msg); }
  static bool less(const Routed<T>& a, const Routed<T>& b) {
    const uint64_t ka = key(a), kb = key(b);
    if (ka != kb) return ka < kb;
    if (a.route != b.route) return a.route < b.route;
    return Inner::less(a.msg, b.msg);
  }
  static size_t rest_size(const Routed<T>& m) {
    return varint_size(m.dst_part()) + varint_size(m.src_part()) +
           Inner::rest_size(m.msg);
  }
  static uint8_t* put_rest(const Routed<T>& m, uint8_t* p) {
    p = put_varint(p, m.dst_part());
    p = put_varint(p, m.src_part());
    return Inner::put_rest(m.msg, p);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, Routed<T>& m) {
    uint64_t dst_part = 0, src_part = 0;
    p = get_varint(p, end, &dst_part);
    if (p == nullptr || dst_part > UINT32_MAX) return nullptr;
    p = get_varint(p, end, &src_part);
    if (p == nullptr || src_part > UINT32_MAX) return nullptr;
    m.route = Routed<T>::make_route(uint32_t(dst_part), uint32_t(src_part));
    return Inner::get_rest(p, end, key, m.msg);
  }
};

/// ---- Plan scoring --------------------------------------------------------

/// Modeled cost of running one exchange of `bytes_per_rank` per-rank payload
/// under a plan, from the uniform-traffic volume model (no merge discount —
/// the score is the upper bound a backend must beat through merging; the
/// benches report both the score and the measured bytes).
struct ExchangeScore {
  int stages = 0;            ///< 0 = direct
  uint64_t total_bytes = 0;  ///< bytes crossing any link, all stages
  uint64_t inter_bytes = 0;  ///< subset crossing supernodes
  double modeled_s = 0;      ///< sum of per-stage Topology::transfer_time
};

/// Score `plan` on `topo` assuming every rank sends `bytes_per_rank` spread
/// uniformly over all destinations.  Self-hops are free, matching Comm's
/// byte accounting.
ExchangeScore score_exchange_plan(const Topology& topo,
                                  const ExchangePlan& plan,
                                  uint64_t bytes_per_rank);

}  // namespace sunbfs::sim
