#include "sim/comm.hpp"

namespace sunbfs::sim {

CommShared::CommShared(std::vector<int> ranks, const Topology* topo)
    : global_ranks(std::move(ranks)),
      topology(topo),
      barrier(int(global_ranks.size())),
      ptrs(global_ranks.size(), nullptr),
      nbytes(global_ranks.size(), 0),
      sums(global_ranks.size(), 0),
      a2a_ptrs(global_ranks.size() * global_ranks.size(), nullptr),
      a2a_nbytes(global_ranks.size() * global_ranks.size(), 0),
      a2a_sums(global_ranks.size() * global_ranks.size(), 0),
      cpu_arrival(global_ranks.size() * 2, 0.0) {
  SUNBFS_CHECK(!global_ranks.empty());
  SUNBFS_CHECK(topology != nullptr);
}

}  // namespace sunbfs::sim
