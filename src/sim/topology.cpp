#include "sim/topology.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace sunbfs::sim {

Topology::Topology(MeshShape mesh, TopologyParams params)
    : mesh_(mesh), params_(params) {
  SUNBFS_CHECK(mesh.rows >= 1 && mesh.cols >= 1);
  ranks_per_supernode_ = params.ranks_per_supernode > 0
                             ? params.ranks_per_supernode
                             : mesh.cols;
  SUNBFS_CHECK(ranks_per_supernode_ >= 1);
  SUNBFS_CHECK(params_.nic_bytes_per_s > 0);
  SUNBFS_CHECK(params_.oversubscription >= 1.0);
}

int Topology::supernode_count() const {
  return (mesh_.ranks() + ranks_per_supernode_ - 1) / ranks_per_supernode_;
}

double Topology::transfer_time(int participants, uint64_t max_intra_bytes,
                               uint64_t max_inter_bytes) const {
  SUNBFS_CHECK(participants >= 1);
  // log2(P) latency steps (tree/ring collective schedule), plus serialized
  // injection of the most loaded NIC.  Inter-supernode bytes contend on the
  // oversubscribed top-level tree.
  int steps = participants > 1 ? std::bit_width(unsigned(participants - 1)) : 0;
  double t = params_.latency_s * double(steps + 1);
  t += double(max_intra_bytes) / params_.nic_bytes_per_s;
  t += double(max_inter_bytes) * params_.oversubscription /
       params_.nic_bytes_per_s;
  return t;
}

std::string Topology::to_string() const {
  std::ostringstream os;
  os << "mesh " << mesh_.rows << "x" << mesh_.cols << ", "
     << supernode_count() << " supernodes ("
     << ranks_per_supernode_ << " ranks each), NIC "
     << params_.nic_bytes_per_s / 1e9 << " GB/s, oversubscription "
     << params_.oversubscription << "x";
  return os.str();
}

}  // namespace sunbfs::sim
