#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

/// Reusable communication staging buffers.
///
/// The engines' hot loops stage one personalized message stream per
/// destination every level.  Rebuilding a vector-of-vectors for that each
/// call is where the constant factors hide (ButterFly-BFS; Buluç & Madduri),
/// so these pools keep every buffer's capacity alive across levels and
/// roots: per-thread per-destination staging lanes feed a
/// count → exclusive-scan → parallel-fill pass into one flat send buffer,
/// which Comm::alltoallv_flat publishes without copying.  Each pool counts
/// every capacity growth it performs; after the warmup root the count must
/// stop moving — that is the `comm.staging_allocs` metric emitted by the
/// runner (see docs/PERF.md).
namespace sunbfs::sim {

/// Flat alltoallv staging pool: stage with push(), then exchange().
template <typename T>
class A2aStaging {
 public:
  /// Open a staging round with `nparts` destinations and `nthreads` writer
  /// lanes.  Lane capacities survive from previous rounds.
  void begin(size_t nparts, size_t nthreads) {
    SUNBFS_ASSERT(nparts > 0 && nthreads > 0);
    nparts_ = nparts;
    nthreads_ = nthreads;
    size_t lanes = nparts * nthreads;
    if (lanes > lanes_.size()) {
      ++allocs_;  // structural growth: first use, or a wider round shape
      lanes_.resize(lanes);
    }
    if (nthreads > lane_allocs_.size()) lane_allocs_.resize(nthreads, 0);
    for (size_t i = 0; i < lanes; ++i) lanes_[i].clear();
  }

  /// Pre-size every buffer for the worst-case round: up to `nparts`
  /// destinations, `nthreads` writer lanes of up to `lane_cap` messages
  /// each, a flat send payload of up to `send_cap` messages and a received
  /// concatenation of up to `recv_cap`.  Growth performed here is counted
  /// like any other, so prime before the measured rounds (the engines do it
  /// at construction, from partition-derived bounds) and it lands in the
  /// warmup figure; afterwards allocs() stops moving.
  void prime(size_t nparts, size_t nthreads, size_t lane_cap, size_t send_cap,
             size_t recv_cap) {
    size_t lanes = nparts * nthreads;
    if (lanes > lanes_.size()) {
      ++allocs_;
      lanes_.resize(lanes);
    }
    if (nthreads > lane_allocs_.size()) lane_allocs_.resize(nthreads, 0);
    for (auto& lane : lanes_)
      if (lane.capacity() < lane_cap) {
        ++allocs_;
        lane.reserve(lane_cap);
      }
    if (offsets_.capacity() < nparts + 1) {
      ++allocs_;
      offsets_.reserve(nparts + 1);
    }
    if (send_.capacity() < send_cap) {
      ++allocs_;
      send_.reserve(send_cap);
    }
    if (recv_.capacity() < recv_cap) {
      ++allocs_;
      recv_.reserve(recv_cap);
    }
    if (src_offsets_.capacity() < nparts + 1) {
      ++allocs_;
      src_offsets_.reserve(nparts + 1);
    }
  }

  /// Append one message for destination `dst` from writer lane `thread`.
  /// Lanes are single-writer: each thread only pushes to its own lane index.
  void push(size_t thread, size_t dst, const T& msg) {
    SUNBFS_ASSERT(thread < nthreads_ && dst < nparts_);
    auto& lane = lanes_[thread * nparts_ + dst];
    if (lane.size() == lane.capacity()) ++lane_allocs_[thread];
    lane.push_back(msg);
  }

  /// Merge the lanes into the flat send buffer (counts → exclusive scan →
  /// parallel fill over destinations) and run the all-to-all.  Returns the
  /// received concatenation, delimited per source by src_offsets().
  std::span<const T> exchange(Comm& comm, ThreadPool& pool) {
    for (size_t t = 0; t < nthreads_; ++t) {
      allocs_ += lane_allocs_[t];
      lane_allocs_[t] = 0;
    }
    if (offsets_.capacity() < nparts_ + 1) ++allocs_;
    offsets_.assign(nparts_ + 1, 0);
    for (size_t d = 0; d < nparts_; ++d)
      for (size_t t = 0; t < nthreads_; ++t)
        offsets_[d + 1] += lanes_[t * nparts_ + d].size();
    for (size_t d = 0; d < nparts_; ++d) offsets_[d + 1] += offsets_[d];
    size_t total = offsets_[nparts_];
    if (total > send_.capacity()) ++allocs_;
    send_.clear();
    send_.resize(total);
    pool.parallel_for(0, nparts_, [&](size_t lo, size_t hi) {
      for (size_t d = lo; d < hi; ++d) {
        T* out = send_.data() + offsets_[d];
        for (size_t t = 0; t < nthreads_; ++t) {
          const auto& lane = lanes_[t * nparts_ + d];
          out = std::copy(lane.begin(), lane.end(), out);
        }
      }
    });
    comm.alltoallv_flat<T>(send_, offsets_, recv_, &src_offsets_, &allocs_);
    return recv_;
  }

  /// Per-source delimiters into the last exchange()'s result (nparts+1).
  const std::vector<size_t>& src_offsets() const { return src_offsets_; }

  /// Total capacity growths this pool ever performed (lanes, send, recv).
  /// Stops moving once every round shape has been seen — zero new allocs in
  /// steady state.
  uint64_t allocs() const { return allocs_; }

 private:
  size_t nparts_ = 0;
  size_t nthreads_ = 0;
  std::vector<std::vector<T>> lanes_;  // [thread * nparts + dst], grow-only
  std::vector<uint64_t> lane_allocs_;  // per-thread growth counts
  std::vector<uint64_t> offsets_;      // exclusive scan, nparts+1
  std::vector<T> send_;                // flat staged payload
  std::vector<T> recv_;                // reused receive buffer
  std::vector<size_t> src_offsets_;
  uint64_t allocs_ = 0;
};

/// Reused allgatherv receive buffer (frontier gathers in the pull kernels).
template <typename T>
class GatherBuffer {
 public:
  /// Gather every rank's span; result valid until the next call.
  std::span<const T> gather(Comm& comm, std::span<const T> mine) {
    comm.allgatherv_into(mine, data_, &offsets_, &allocs_);
    return data_;
  }

  const std::vector<size_t>& offsets() const { return offsets_; }
  uint64_t allocs() const { return allocs_; }

 private:
  std::vector<T> data_;
  std::vector<size_t> offsets_;
  uint64_t allocs_ = 0;
};

}  // namespace sunbfs::sim
