#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/comm.hpp"
#include "sim/encoding.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

/// Reusable communication staging buffers.
///
/// The engines' hot loops stage one personalized message stream per
/// destination every level.  Rebuilding a vector-of-vectors for that each
/// call is where the constant factors hide (ButterFly-BFS; Buluç & Madduri),
/// so these pools keep every buffer's capacity alive across levels and
/// roots: per-thread per-destination staging lanes feed a
/// count → exclusive-scan → parallel-fill pass into one flat send buffer,
/// which Comm::alltoallv_flat publishes without copying.  Each pool counts
/// every capacity growth it performs; after the warmup root the count must
/// stop moving — that is the `comm.staging_allocs` metric emitted by the
/// runner (see docs/PERF.md).
///
/// When wire encoding is enabled (EncodingOptions, the default), the flat
/// payload makes one extra hop: each destination block is sorted, measured
/// and serialized under the cheapest codec (sim/encoding.hpp) into a pooled
/// byte buffer, the collective moves bytes, and receivers decode back into
/// the typed receive buffer.  Checksums, fault injection and Topology byte
/// charging all act on the encoded bytes because that is what gets
/// published.  Decoded blocks arrive key-sorted rather than in staging
/// order; every engine receive path is order-insensitive (fetch-max
/// parents, atomic bit claims — docs/PERF.md), which is what makes the
/// re-ordering safe.
namespace sunbfs::sim {

/// In-flight merge hook for staged exchange plans (sim/exchange.hpp): when
/// enabled for a message type, A2aStaging::exchange() with set_merge(true)
/// sorts each destination block (WireFormat<T>::less) and folds adjacent
/// same()-group messages into one before anything ships.  The primary
/// template disables merging; Routed<T> bridges to the payload's
/// ExchangeMergePolicy.  same() groups must be contiguous under the wire
/// order — i.e. same(a, b) implies equal sort keys.
template <typename T>
struct ExchangeFold {
  static constexpr bool enabled = false;
};

/// Flat alltoallv staging pool: stage with push(), then exchange().
template <typename T>
class A2aStaging {
 public:
  /// Open a staging round with `nparts` destinations and `nthreads` writer
  /// lanes.  Lane capacities survive from previous rounds.
  void begin(size_t nparts, size_t nthreads) {
    SUNBFS_ASSERT(nparts > 0 && nthreads > 0);
    nparts_ = nparts;
    nthreads_ = nthreads;
    size_t lanes = nparts * nthreads;
    if (lanes > lanes_.size()) {
      ++allocs_;  // structural growth: first use, or a wider round shape
      lanes_.resize(lanes);
    }
    if (nthreads > lane_allocs_.size()) lane_allocs_.resize(nthreads, 0);
    for (size_t i = 0; i < lanes; ++i) lanes_[i].clear();
  }

  /// Pre-size every buffer for the worst-case round: up to `nparts`
  /// destinations, `nthreads` writer lanes of up to `lane_cap` messages
  /// each, a flat send payload of up to `send_cap` messages and a received
  /// concatenation of up to `recv_cap`.  Growth performed here is counted
  /// like any other, so prime before the measured rounds (the engines do it
  /// at construction, from partition-derived bounds) and it lands in the
  /// warmup figure; afterwards allocs() stops moving.
  void prime(size_t nparts, size_t nthreads, size_t lane_cap, size_t send_cap,
             size_t recv_cap) {
    size_t lanes = nparts * nthreads;
    if (lanes > lanes_.size()) {
      ++allocs_;
      lanes_.resize(lanes);
    }
    if (nthreads > lane_allocs_.size()) lane_allocs_.resize(nthreads, 0);
    for (auto& lane : lanes_)
      if (lane.capacity() < lane_cap) {
        ++allocs_;
        lane.reserve(lane_cap);
      }
    if (offsets_.capacity() < nparts + 1) {
      ++allocs_;
      offsets_.reserve(nparts + 1);
    }
    if (send_.capacity() < send_cap) {
      ++allocs_;
      send_.reserve(send_cap);
    }
    if (recv_.capacity() < recv_cap) {
      ++allocs_;
      recv_.reserve(recv_cap);
    }
    if (src_offsets_.capacity() < nparts + 1) {
      ++allocs_;
      src_offsets_.reserve(nparts + 1);
    }
    if (enc_.enabled) {
      // Codec selection takes min(raw, ...) per block, so the encoded
      // payload is bounded by the raw payload plus one header per block —
      // reserving that here is what keeps the encoded path allocation-free
      // after warmup.
      reserve_bytes(enc_send_, send_cap * sizeof(T) + nparts * kBlockHeaderMax);
      reserve_bytes(enc_recv_, recv_cap * sizeof(T) + nparts * kBlockHeaderMax);
      reserve_n(plans_, nparts);
      reserve_n(headers_, nparts);
      reserve_n(enc_offsets_, nparts + 1);
      reserve_n(enc_src_offsets_, nparts + 1);
    }
  }

  /// Set the wire-encoding policy for subsequent exchanges.  Call before
  /// prime() so the encoded buffers are included in the warmup reservation.
  void set_encoding(const EncodingOptions& enc) { enc_ = enc; }
  const EncodingOptions& encoding() const { return enc_; }

  /// Enable the in-flight merge pass (no-op unless ExchangeFold<T> opts in).
  /// Only ever set on staged-exchange hop pools: the direct path must ship
  /// byte-identical traffic whether or not the type is mergeable.
  void set_merge(bool merge) { merge_ = merge; }

  /// Reserve one specific lane's capacity (counted like any growth).  The
  /// staged-exchange channel uses this to prime exactly the hop lanes a plan
  /// can reach instead of every (thread, destination) pair.  `nparts` fixes
  /// the round shape the lane index is computed against, as in prime().
  void prime_lane(size_t nparts, size_t thread, size_t dst, size_t cap) {
    const size_t lane = thread * nparts + dst;
    SUNBFS_ASSERT(lane < lanes_.size());
    if (lanes_[lane].capacity() < cap) {
      ++allocs_;
      lanes_[lane].reserve(cap);
    }
  }

  /// Append one message for destination `dst` from writer lane `thread`.
  /// Lanes are single-writer: each thread only pushes to its own lane index.
  void push(size_t thread, size_t dst, const T& msg) {
    SUNBFS_ASSERT(thread < nthreads_ && dst < nparts_);
    auto& lane = lanes_[thread * nparts_ + dst];
    if (lane.size() == lane.capacity()) ++lane_allocs_[thread];
    lane.push_back(msg);
  }

  /// Merge the lanes into the flat send buffer (counts → exclusive scan →
  /// parallel fill over destinations) and run the all-to-all.  Returns the
  /// received concatenation, delimited per source by src_offsets().
  std::span<const T> exchange(Comm& comm, ThreadPool& pool) {
    for (size_t t = 0; t < nthreads_; ++t) {
      allocs_ += lane_allocs_[t];
      lane_allocs_[t] = 0;
    }
    if (offsets_.capacity() < nparts_ + 1) ++allocs_;
    offsets_.assign(nparts_ + 1, 0);
    for (size_t d = 0; d < nparts_; ++d)
      for (size_t t = 0; t < nthreads_; ++t)
        offsets_[d + 1] += lanes_[t * nparts_ + d].size();
    for (size_t d = 0; d < nparts_; ++d) offsets_[d + 1] += offsets_[d];
    size_t total = offsets_[nparts_];
    if (total > send_.capacity()) ++allocs_;
    send_.clear();
    send_.resize(total);
    pool.parallel_for(0, nparts_, [&](size_t lo, size_t hi) {
      for (size_t d = lo; d < hi; ++d) {
        T* out = send_.data() + offsets_[d];
        for (size_t t = 0; t < nthreads_; ++t) {
          const auto& lane = lanes_[t * nparts_ + d];
          out = std::copy(lane.begin(), lane.end(), out);
        }
      }
    });
    if constexpr (ExchangeFold<T>::enabled) {
      if (merge_ && total > 0) fold_blocks(pool);
    }
    if (!enc_.enabled) {
      comm.alltoallv_flat<T>(send_, offsets_, recv_, &src_offsets_, &allocs_);
      return recv_;
    }
    return exchange_encoded(comm, pool);
  }

  /// Per-source delimiters into the last exchange()'s result (nparts+1).
  const std::vector<size_t>& src_offsets() const { return src_offsets_; }

  /// Total capacity growths this pool ever performed (lanes, send, recv).
  /// Stops moving once every round shape has been seen — zero new allocs in
  /// steady state.
  uint64_t allocs() const { return allocs_; }

 private:
  template <typename V>
  void reserve_n(V& v, size_t n) {
    if (v.capacity() < n) {
      ++allocs_;
      v.reserve(n);
    }
  }
  void reserve_bytes(std::vector<uint8_t>& v, size_t n) { reserve_n(v, n); }

  /// Merge pass: sort each destination block into wire order, fold adjacent
  /// same()-group messages (the policy reproduces the receiver's reduction),
  /// then compact the flat payload and its offsets in place.  Sorting here
  /// means the later encoded leg re-sorts already-ordered blocks — cheap —
  /// and the raw leg ships sorted blocks, which every receive path tolerates
  /// (they are order-insensitive by contract).
  void fold_blocks(ThreadPool& pool) {
    reserve_n(fold_counts_, nparts_);
    fold_counts_.assign(nparts_, 0);
    pool.parallel_for(0, nparts_, [&](size_t lo, size_t hi) {
      for (size_t d = lo; d < hi; ++d) {
        T* block = send_.data() + offsets_[d];
        const size_t n = offsets_[d + 1] - offsets_[d];
        std::sort(block, block + n, WireFormat<T>::less);
        size_t w = 0;
        for (size_t i = 0; i < n; ++i) {
          if (w > 0 && ExchangeFold<T>::same(block[w - 1], block[i]))
            ExchangeFold<T>::fold(block[w - 1], block[i]);
          else
            block[w++] = block[i];
        }
        fold_counts_[d] = w;
      }
    });
    size_t out = 0;
    for (size_t d = 0; d < nparts_; ++d) {
      const size_t from = offsets_[d];
      const size_t n = fold_counts_[d];
      if (from != out)
        std::move(send_.begin() + long(from), send_.begin() + long(from + n),
                  send_.begin() + long(out));
      offsets_[d] = out;
      out += n;
    }
    offsets_[nparts_] = out;
    send_.resize(out);
  }

  /// Encoded leg of exchange(): sort + plan each destination block, write
  /// the winning codec into the pooled byte buffer, move bytes, decode.
  std::span<const T> exchange_encoded(Comm& comm, ThreadPool& pool) {
    using WF = WireFormat<T>;
    reserve_n(plans_, nparts_);
    plans_.assign(nparts_, BlockPlan{});
    pool.parallel_for(0, nparts_, [&](size_t lo, size_t hi) {
      for (size_t d = lo; d < hi; ++d) {
        std::span<T> block(send_.data() + offsets_[d],
                           offsets_[d + 1] - offsets_[d]);
        const bool sorted = block.size() >= enc_.min_messages;
        if (sorted) std::sort(block.begin(), block.end(), WF::less);
        plans_[d] = plan_block<T>(block, sorted);
      }
    });
    reserve_n(enc_offsets_, nparts_ + 1);
    enc_offsets_.assign(nparts_ + 1, 0);
    for (size_t d = 0; d < nparts_; ++d)
      enc_offsets_[d + 1] = enc_offsets_[d] + plans_[d].bytes;
    const size_t enc_total = enc_offsets_[nparts_];
    if (enc_total > enc_send_.capacity()) ++allocs_;
    enc_send_.clear();
    enc_send_.resize(enc_total);
    pool.parallel_for(0, nparts_, [&](size_t lo, size_t hi) {
      for (size_t d = lo; d < hi; ++d) {
        std::span<const T> block(send_.data() + offsets_[d],
                                 offsets_[d + 1] - offsets_[d]);
        uint8_t* out = enc_send_.data() + enc_offsets_[d];
        uint8_t* done = write_block<T>(block, plans_[d].codec, out);
        SUNBFS_ASSERT(done == enc_send_.data() + enc_offsets_[d + 1]);
        (void)done;
      }
    });
    // Sender-side histogram: one note per codec actually used this round.
    EncodingEntry used[kWireCodecCount];
    for (size_t d = 0; d < nparts_; ++d) {
      const size_t n = offsets_[d + 1] - offsets_[d];
      if (n == 0) continue;
      auto& u = used[int(plans_[d].codec)];
      u.blocks += 1;
      u.messages += n;
      u.raw_bytes += n * sizeof(T);
      u.encoded_bytes += plans_[d].bytes;
    }
    for (int c = 0; c < kWireCodecCount; ++c)
      if (used[c].blocks > 0)
        comm.note_encoding(CollectiveType::Alltoallv, WireCodec(c),
                           used[c].blocks, used[c].messages, used[c].raw_bytes,
                           used[c].encoded_bytes);
    comm.alltoallv_flat<uint8_t>(enc_send_, enc_offsets_, enc_recv_,
                                 &enc_src_offsets_, &allocs_);
    // Header peek → per-source message counts → typed decode.  A source
    // dropped by fault recovery arrives as a zero-byte block (count 0).
    reserve_n(headers_, nparts_);
    headers_.assign(nparts_, BlockHeader{});
    reserve_n(src_offsets_, nparts_ + 1);
    src_offsets_.assign(nparts_ + 1, 0);
    size_t total = 0;
    for (size_t s = 0; s < nparts_; ++s) {
      const size_t nb = enc_src_offsets_[s + 1] - enc_src_offsets_[s];
      SUNBFS_CHECK_MSG(
          read_block_header(enc_recv_.data() + enc_src_offsets_[s], nb,
                            &headers_[s]),
          "wire decode: malformed block header");
      src_offsets_[s] = total;
      total += headers_[s].count;
    }
    src_offsets_[nparts_] = total;
    if (total > recv_.capacity()) ++allocs_;
    recv_.clear();
    recv_.resize(total);
    pool.parallel_for(0, nparts_, [&](size_t lo, size_t hi) {
      for (size_t s = lo; s < hi; ++s) {
        if (headers_[s].count == 0) continue;
        const uint8_t* end = enc_recv_.data() + enc_src_offsets_[s + 1];
        SUNBFS_CHECK_MSG(
            decode_block<T>(headers_[s], end, recv_.data() + src_offsets_[s]),
            "wire decode: corrupt block body");
      }
    });
    return recv_;
  }

  size_t nparts_ = 0;
  size_t nthreads_ = 0;
  std::vector<std::vector<T>> lanes_;  // [thread * nparts + dst], grow-only
  std::vector<uint64_t> lane_allocs_;  // per-thread growth counts
  std::vector<uint64_t> offsets_;      // exclusive scan, nparts+1
  std::vector<T> send_;                // flat staged payload
  std::vector<T> recv_;                // reused receive buffer
  std::vector<size_t> src_offsets_;
  EncodingOptions enc_{};
  bool merge_ = false;                 // staged-hop in-flight merging
  std::vector<uint64_t> fold_counts_;  // post-merge block sizes
  std::vector<BlockPlan> plans_;         // per-destination codec decisions
  std::vector<BlockHeader> headers_;     // per-source parsed headers
  std::vector<uint8_t> enc_send_;        // encoded flat payload
  std::vector<uint8_t> enc_recv_;        // encoded received concatenation
  std::vector<uint64_t> enc_offsets_;    // encoded byte scan, nparts+1
  std::vector<size_t> enc_src_offsets_;  // received byte delimiters
  uint64_t allocs_ = 0;
};

/// Reused allgatherv receive buffer (frontier gathers in the pull kernels).
/// For uint64_t payloads — the frontier bitmap words every pull kernel
/// gathers — an enabled EncodingOptions routes through the word codecs of
/// sim/encoding.hpp: dense frontiers ship their words raw, sparse frontiers
/// ship delta-coded set-bit positions.  The decoded word layout is identical
/// to the raw gather, so GatheredFrontier indexing is unchanged.
template <typename T>
class GatherBuffer {
 public:
  /// Set the wire-encoding policy (only effective for uint64_t word
  /// streams; other element types always gather raw).
  void set_encoding(const EncodingOptions& enc) { enc_ = enc; }
  const EncodingOptions& encoding() const { return enc_; }

  /// Gather every rank's span; result valid until the next call.
  std::span<const T> gather(Comm& comm, std::span<const T> mine) {
    if constexpr (std::is_same_v<T, uint64_t>) {
      if (enc_.enabled) return gather_encoded(comm, mine);
    }
    comm.allgatherv_into(mine, data_, &offsets_, &allocs_);
    return data_;
  }

  const std::vector<size_t>& offsets() const { return offsets_; }
  uint64_t allocs() const { return allocs_; }

 private:
  std::span<const T> gather_encoded(Comm& comm, std::span<const uint64_t> mine) {
    // Every rank publishes its full word span each level, so the decoded
    // total is shape-constant; the worst-case encoded byte reservation below
    // (raw words + one header per rank) makes later, denser levels reuse the
    // first level's capacity — steady-state allocs stay zero.
    const BlockPlan plan = plan_words(mine);
    if (enc_send_.capacity() < mine.size_bytes() + kBlockHeaderMax) {
      ++allocs_;
      enc_send_.reserve(mine.size_bytes() + kBlockHeaderMax);
    }
    enc_send_.clear();
    enc_send_.resize(plan.bytes);
    uint8_t* done = write_words(mine, plan.codec, enc_send_.data());
    SUNBFS_ASSERT(done == enc_send_.data() + plan.bytes);
    (void)done;
    if (!mine.empty())
      comm.note_encoding(CollectiveType::Allgather, plan.codec, 1,
                         mine.size(), mine.size_bytes(), plan.bytes);
    comm.allgatherv_into<uint8_t>(enc_send_, enc_recv_, &enc_offsets_,
                                  &allocs_);
    const size_t nranks = size_t(comm.size());
    if (headers_.capacity() < nranks) ++allocs_;
    headers_.assign(nranks, WordsHeader{});
    if (offsets_.capacity() < nranks + 1) ++allocs_;
    offsets_.assign(nranks + 1, 0);
    size_t total = 0;
    for (size_t s = 0; s < nranks; ++s) {
      const size_t nb = enc_offsets_[s + 1] - enc_offsets_[s];
      SUNBFS_CHECK_MSG(
          read_words_header(enc_recv_.data() + enc_offsets_[s], nb,
                            &headers_[s]),
          "wire decode: malformed frontier block header");
      offsets_[s] = total;
      total += headers_[s].nwords;
    }
    offsets_[nranks] = total;
    if (data_.capacity() < total) ++allocs_;
    data_.clear();
    data_.resize(total);
    for (size_t s = 0; s < nranks; ++s) {
      if (headers_[s].nwords == 0) continue;
      const uint8_t* end = enc_recv_.data() + enc_offsets_[s + 1];
      SUNBFS_CHECK_MSG(
          decode_words(headers_[s], end, data_.data() + offsets_[s]),
          "wire decode: corrupt frontier block body");
    }
    // Decoded totals are shape-constant, so this worst-case reservation
    // (raw words + one header per rank) absorbs every later — possibly
    // denser, hence larger on the wire — gather of the same shape.
    if (enc_recv_.capacity() < total * 8 + nranks * kBlockHeaderMax) {
      ++allocs_;
      enc_recv_.reserve(total * 8 + nranks * kBlockHeaderMax);
    }
    return data_;
  }

  std::vector<T> data_;
  std::vector<size_t> offsets_;
  EncodingOptions enc_{};
  std::vector<uint8_t> enc_send_;
  std::vector<uint8_t> enc_recv_;
  std::vector<size_t> enc_offsets_;
  std::vector<WordsHeader> headers_;
  uint64_t allocs_ = 0;
};

}  // namespace sunbfs::sim
