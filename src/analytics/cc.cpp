#include "analytics/cc.hpp"

#include <functional>
#include <limits>
#include <numeric>

#include "analytics/propagate.hpp"
#include "support/check.hpp"

namespace sunbfs::analytics {

using graph::Vertex;

namespace {
/// Min-label propagation expressed as a propagation program: every vertex
/// repeatedly adopts the smallest label among itself and its neighbors.
struct MinLabelProgram {
  using Value = Vertex;
  Value identity() const { return std::numeric_limits<Vertex>::max(); }
  Value combine(Value a, Value b) const { return std::min(a, b); }
  Value contribution(Value u_value, Vertex, Vertex) const { return u_value; }
  bool update(Value& state, const Value& gathered) const {
    if (gathered < state) {
      state = gathered;
      return true;
    }
    return false;
  }
};
}  // namespace

std::vector<Vertex> cc15d(sim::RankContext& ctx,
                          const partition::Part15d& part) {
  PropagationEngine<MinLabelProgram> engine(ctx, part, MinLabelProgram{},
                                            {.incremental = true});
  engine.initialize([](Vertex v) { return v; });
  engine.run();
  return engine.owned_values();
}

std::vector<Vertex> reference_cc(uint64_t num_vertices,
                                 std::span<const graph::Edge> edges) {
  std::vector<Vertex> parent(num_vertices);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<Vertex(Vertex)> find = [&](Vertex v) {
    while (parent[size_t(v)] != v) {
      parent[size_t(v)] = parent[size_t(parent[size_t(v)])];
      v = parent[size_t(v)];
    }
    return v;
  };
  for (const graph::Edge& e : edges) {
    Vertex a = find(e.u), b = find(e.v);
    if (a != b) parent[size_t(std::max(a, b))] = std::min(a, b);
  }
  std::vector<Vertex> label(num_vertices);
  for (uint64_t v = 0; v < num_vertices; ++v) label[v] = find(Vertex(v));
  return label;
}

}  // namespace sunbfs::analytics
