#include "analytics/delta_stepping.hpp"

#include "sim/comm_buffer.hpp"
#include "sim/exchange_channel.hpp"
#include "sim/recover.hpp"
#include "support/bitvector.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace sunbfs::analytics {

using graph::Vertex;
using sunbfs::ThreadPool;

namespace {

/// One relaxation sweep over all six subgraph components, restricted to
/// source vertices flagged active and to edges passing `weight_pred`.
/// Newly improved vertices are flagged in the `improved` outputs.
class DeltaRelaxer {
 public:
  DeltaRelaxer(sim::RankContext& ctx, const partition::Part15d& part,
               const DeltaSteppingOptions& opts)
      : ctx_(ctx),
        part_(part),
        opts_(opts),
        k_(part.cls.num_eh()),
        nloc_(part.local_count),
        plan_(sim::ExchangePlan::build(opts.exchange.backend, ctx.nranks(),
                                       ctx.mesh)) {
    staging_.set_encoding(opts.encoding);
  }

  Dist w(Vertex a, Vertex b) const {
    return edge_weight(a, b, opts_.weights.weight_seed,
                       opts_.weights.max_weight);
  }

  /// Sweep; returns whether any distance improved globally.
  template <typename WeightPred>
  bool sweep(const BitVector& act_eh, const BitVector& act_l,
             std::vector<Dist>& eh_dist, std::vector<Dist>& l_dist,
             BitVector& improved_eh, BitVector& improved_l,
             WeightPred take_edge) {
    const partition::EhlTable& cls = part_.cls;
    // --- relax into EH ---------------------------------------------------
    std::vector<Dist> acc = eh_dist;
    for (uint64_t x = 0; x < part_.eh2eh.num_rows(); ++x) {
      if (part_.eh2eh.degree(x) == 0 || !act_eh.get(x)) continue;
      Vertex gx = cls.eh_to_global(x);
      for (Vertex y : part_.eh2eh.neighbors(x)) {
        Dist wt = w(gx, cls.eh_to_global(uint64_t(y)));
        if (!take_edge(wt)) continue;
        acc[size_t(y)] = std::min(acc[size_t(y)], eh_dist[x] + wt);
      }
    }
    for (uint64_t l = 0; l < nloc_; ++l) {
      if (!act_l.get(l)) continue;
      Vertex gl = part_.space.to_global(ctx_.rank, l);
      auto relax_to_eh = [&](Vertex t) {
        Dist wt = w(gl, cls.eh_to_global(uint64_t(t)));
        if (take_edge(wt))
          acc[size_t(t)] = std::min(acc[size_t(t)], l_dist[l] + wt);
      };
      for (Vertex e : part_.l2e.neighbors(l)) relax_to_eh(e);
      for (Vertex h : part_.l2h.neighbors(l)) relax_to_eh(h);
    }
    if (k_ > 0) {
      auto dmin = [](Dist a, Dist b) { return a < b ? a : b; };
      ctx_.col.allreduce_inplace(std::span<Dist>(acc), dmin);
      ctx_.row.allreduce_inplace(std::span<Dist>(acc), dmin);
    }
    bool changed = false;
    for (uint64_t i = 0; i < k_; ++i) {
      if (acc[i] < eh_dist[i]) {
        eh_dist[i] = acc[i];
        improved_eh.set(i);
        if (part_.eh_space.owner(Vertex(i)) == ctx_.rank) changed = true;
      }
    }

    // --- relax into L ------------------------------------------------------
    // From EH (delegated mirrors at the owner; sources are active EH).
    for (uint64_t l = 0; l < nloc_; ++l) {
      Vertex gl = part_.space.to_global(ctx_.rank, l);
      Dist best = l_dist[l];
      auto relax_from_eh = [&](Vertex s) {
        if (!act_eh.get(uint64_t(s))) return;
        Dist wt = w(cls.eh_to_global(uint64_t(s)), gl);
        if (take_edge(wt) && eh_dist[size_t(s)] < kInfDist)
          best = std::min(best, eh_dist[size_t(s)] + wt);
      };
      for (Vertex e : part_.l2e.neighbors(l)) relax_from_eh(e);
      for (Vertex h : part_.l2h.neighbors(l)) relax_from_eh(h);
      if (best < l_dist[l]) {
        l_dist[l] = best;
        improved_l.set(l);
        changed = true;
      }
    }
    // L -> L with messages through the staged (wire-encoded) pool.
    staging_.begin(size_t(ctx_.nranks()), 1, plan_, ctx_.rank);
    act_l.for_each_set([&](size_t l) {
      Vertex gl = part_.space.to_global(ctx_.rank, l);
      for (Vertex l2 : part_.l2l.neighbors(l)) {
        Dist wt = w(gl, l2);
        if (!take_edge(wt)) continue;
        Dist cand = l_dist[l] + wt;
        int owner = part_.space.owner(l2);
        if (owner == ctx_.rank) {
          uint64_t t = part_.space.to_local(owner, l2);
          if (cand < l_dist[t]) {
            l_dist[t] = cand;
            improved_l.set(t);
            changed = true;
          }
        } else {
          staging_.push(0, size_t(owner), DistMsg{l2, cand});
        }
      }
    });
    auto got = staging_.exchange(ctx_.world, pool_);
    for (const DistMsg& m : got) {
      uint64_t t = part_.space.to_local(ctx_.rank, m.dst);
      if (m.dist < l_dist[t]) {
        l_dist[t] = m.dist;
        improved_l.set(t);
        changed = true;
      }
    }
    return ctx_.world.allreduce_or(changed);
  }

 private:
  sim::RankContext& ctx_;
  const partition::Part15d& part_;
  const DeltaSteppingOptions& opts_;
  uint64_t k_, nloc_;
  sim::ExchangePlan plan_;
  sim::ExchangeChannel<DistMsg> staging_;
  ThreadPool pool_{1};  // relaxation sweeps are serial; size-1 pools inline
};

/// One full delta-stepping attempt (the unit the replay driver commits or
/// discards wholesale).  Distances, bucket bookkeeping and stats are all
/// rebuilt per attempt; planned rank failures fire at the replicated
/// bucket-epoch counter via the guard.
struct DeltaAttempt {
  std::vector<Dist> out;
  DeltaSteppingStats stats;
};

DeltaAttempt run_delta_attempt(sim::RankContext& ctx,
                               const partition::Part15d& part, Vertex root,
                               const DeltaSteppingOptions& options,
                               sim::ReplayGuard& guard) {
  const partition::EhlTable& cls = part.cls;
  const uint64_t k = cls.num_eh();
  const uint64_t nloc = part.local_count;
  const Dist delta = options.delta;

  std::vector<Dist> eh_dist(k, kInfDist);
  std::vector<Dist> l_dist(nloc, kInfDist);
  uint64_t root_eh = cls.eh_of(root);
  if (root_eh != partition::EhlTable::kNotEh)
    eh_dist[root_eh] = 0;
  else if (part.space.owner(root) == ctx.rank)
    l_dist[part.space.to_local(ctx.rank, root)] = 0;

  DeltaRelaxer relaxer(ctx, part, options);
  BitVector act_eh(k), act_l(nloc);
  BitVector imp_eh(k), imp_l(nloc);
  DeltaSteppingStats local_stats;

  auto in_bucket = [&](Dist d, uint64_t bucket) {
    return d < kInfDist && d / delta == bucket;
  };
  // Mark bucket members active; when only_improved, restrict to vertices
  // improved by the previous sweep (the classic delta-stepping re-queue).
  auto fill_active = [&](uint64_t bucket, bool only_improved) {
    act_eh.reset();
    act_l.reset();
    for (uint64_t i = 0; i < k; ++i)
      if (in_bucket(eh_dist[i], bucket) && (!only_improved || imp_eh.get(i)))
        act_eh.set(i);
    for (uint64_t l = 0; l < nloc; ++l)
      if (in_bucket(l_dist[l], bucket) && !part.local_is_eh.get(l) &&
          (!only_improved || imp_l.get(l)))
        act_l.set(l);
  };
  // Smallest bucket index >= `from` with an unsettled vertex, or ~0.
  auto next_bucket = [&](uint64_t from) {
    uint64_t local = ~uint64_t(0);
    for (uint64_t i = 0; i < k; ++i)
      if (part.eh_space.owner(Vertex(i)) == ctx.rank &&
          eh_dist[i] < kInfDist && eh_dist[i] / delta >= from)
        local = std::min(local, eh_dist[i] / delta);
    for (uint64_t l = 0; l < nloc; ++l)
      if (!part.local_is_eh.get(l) && l_dist[l] < kInfDist &&
          l_dist[l] / delta >= from)
        local = std::min(local, l_dist[l] / delta);
    return ctx.world.allreduce(
        local, [](uint64_t a, uint64_t b) { return std::min(a, b); });
  };

  uint64_t bucket = next_bucket(0);
  while (bucket != ~uint64_t(0)) {
    ++local_stats.buckets_processed;
    guard.epoch(local_stats.buckets_processed);
    // Inner light-edge rounds: first from all bucket members, then only
    // from members improved in the previous round.
    bool first = true;
    for (;;) {
      fill_active(bucket, !first);
      imp_eh.reset();
      imp_l.reset();
      ++local_stats.light_rounds;
      bool changed = relaxer.sweep(act_eh, act_l, eh_dist, l_dist, imp_eh,
                                   imp_l, [&](Dist w) { return w <= delta; });
      first = false;
      if (!changed) break;
      // Continue while improvements landed inside this bucket.
      bool again_local = false;
      for (uint64_t i = 0; i < k && !again_local; ++i)
        if (imp_eh.get(i) && in_bucket(eh_dist[i], bucket) &&
            part.eh_space.owner(Vertex(i)) == ctx.rank)
          again_local = true;
      for (uint64_t l = 0; l < nloc && !again_local; ++l)
        if (imp_l.get(l) && in_bucket(l_dist[l], bucket)) again_local = true;
      if (!ctx.world.allreduce_or(again_local)) break;
    }
    // Heavy phase: relax heavy edges once from all settled bucket members.
    fill_active(bucket, false);
    imp_eh.reset();
    imp_l.reset();
    relaxer.sweep(act_eh, act_l, eh_dist, l_dist, imp_eh, imp_l,
                  [&](Dist w) { return w > delta; });
    bucket = next_bucket(bucket + 1);
  }

  DeltaAttempt done;
  done.stats = local_stats;
  done.out.resize(nloc);
  for (uint64_t l = 0; l < nloc; ++l) {
    Vertex g = part.space.to_global(ctx.rank, l);
    uint64_t eh = cls.eh_of(g);
    done.out[l] = eh == partition::EhlTable::kNotEh ? l_dist[l] : eh_dist[eh];
  }
  return done;
}

}  // namespace

std::vector<Dist> sssp15d_delta(sim::RankContext& ctx,
                                const partition::Part15d& part, Vertex root,
                                const DeltaSteppingOptions& options,
                                DeltaSteppingStats* stats) {
  SUNBFS_CHECK(root >= 0 && uint64_t(root) < part.space.total);
  SUNBFS_CHECK(options.delta >= 1);
  DeltaAttempt attempt =
      sim::run_with_replay(ctx, options.recovery, [&](sim::ReplayGuard& g) {
        return run_delta_attempt(ctx, part, root, options, g);
      });
  if (stats) *stats = attempt.stats;
  return std::move(attempt.out);
}

}  // namespace sunbfs::analytics
