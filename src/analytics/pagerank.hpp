#pragma once

#include <span>
#include <vector>

#include "partition/part15d.hpp"
#include "sim/runtime.hpp"

/// PageRank over the 1.5D partition (§8: "the push-pull selection behind
/// [sub-iteration direction optimization] works on many graph algorithms,
/// including ... PageRank").
///
/// Power iteration with damping and dangling-mass redistribution.  E/H rank
/// accumulators are merged with the column+row sum-reduction; H-to-L and
/// E-to-L contributions are computed locally at the L owner from the
/// mirrored CSRs (delegation avoids messages exactly as in BFS); only
/// L-to-L contributions are messaged.
namespace sunbfs::analytics {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  /// Stop when the global L1 change drops below this.
  double tolerance = 1e-12;
};

/// Ranks of this rank's owned vertices (local index order); sums to 1 over
/// all ranks.  `local_degrees` must match partition::compute_local_degrees.
/// Collective.
std::vector<double> pagerank15d(sim::RankContext& ctx,
                                const partition::Part15d& part,
                                std::span<const uint64_t> local_degrees,
                                const PageRankOptions& options = {});

/// Serial reference power iteration with the identical update rule.
std::vector<double> reference_pagerank(uint64_t num_vertices,
                                       std::span<const graph::Edge> edges,
                                       const PageRankOptions& options = {});

}  // namespace sunbfs::analytics
