#pragma once

#include <span>
#include <vector>

#include "partition/part15d.hpp"
#include "sim/runtime.hpp"
#include "support/bitvector.hpp"

/// Generic propagation engine over the 1.5D partition — the paper's §8
/// proposal that the partitioning is "neutral to the graph algorithm to run
/// on" and the seed of its "next-generation ShenTu" future work.
///
/// An algorithm supplies, via a Program type:
///   using Value      — per-vertex state (trivially copyable);
///   Value identity() — the neutral element of the gather;
///   Value combine(a, b) — associative+commutative gather of contributions;
///   Value contribution(u_value, u_global, v_global)
///                    — what vertex u sends along edge (u, v);
///   bool update(Value& state, const Value& gathered)
///                    — fold the gathered value into the state; returns
///                      whether the state changed (drives termination).
///
/// Each round propagates over all six subgraph components exactly once per
/// directed arc: EH2EH arcs locally, L→E/H at the L owner, E/H→L through
/// the delegated mirrors (no messages — the whole point of delegation), and
/// L→L with owner messages.  E/H accumulators are merged with the mesh
/// column+row reduction under `combine`.  Rounds repeat until no vertex
/// changes (or `max_rounds`).
///
/// Because every global arc contributes exactly once and accumulators start
/// from identity(), the engine is correct for both idempotent gathers
/// (min/max — label propagation, SSSP) and non-idempotent ones
/// (+ — PageRank-style sums).
namespace sunbfs::analytics {

struct PropagateResult {
  int rounds = 0;
  bool converged = false;
};

struct PropagateOptions {
  /// When true, only vertices whose state changed in the previous round
  /// contribute in the next one — the delta/frontier execution every
  /// monotone program (min/max label propagation, SSSP relaxation) admits.
  /// Must stay false for programs whose gather must see every neighbor
  /// each round (e.g. sums).
  bool incremental = false;
};

template <typename Program>
class PropagationEngine {
 public:
  using Value = typename Program::Value;

  PropagationEngine(sim::RankContext& ctx, const partition::Part15d& part,
                    Program program, PropagateOptions options = {})
      : ctx_(ctx),
        part_(part),
        program_(std::move(program)),
        options_(options),
        k_(part.cls.num_eh()),
        nloc_(part.local_count),
        eh_value_(k_, program_.identity()),
        l_value_(nloc_, program_.identity()),
        eh_changed_(k_),
        l_changed_(nloc_) {
    // Every vertex is a source in the first round.
    for (uint64_t i = 0; i < k_; ++i) eh_changed_.set(i);
    for (uint64_t l = 0; l < nloc_; ++l) l_changed_.set(l);
  }

  /// Per-vertex state accessors (EH values are replicated; L values owned).
  Value& eh_value(uint64_t eh_id) { return eh_value_[eh_id]; }
  Value& local_value(uint64_t lloc) { return l_value_[lloc]; }

  /// Initialize every vertex's state from init(global_id).
  template <typename InitFn>
  void initialize(InitFn init) {
    for (uint64_t i = 0; i < k_; ++i)
      eh_value_[i] = init(part_.cls.eh_to_global(i));
    for (uint64_t l = 0; l < nloc_; ++l)
      l_value_[l] = init(part_.space.to_global(ctx_.rank, l));
  }

  /// Run until convergence or max_rounds.  Collective.
  PropagateResult run(int max_rounds = 1 << 20) {
    PropagateResult result;
    for (int round = 0; round < max_rounds; ++round) {
      ++result.rounds;
      if (!step()) {
        result.converged = true;
        break;
      }
    }
    return result;
  }

  /// One full propagation round; returns whether anything changed globally.
  /// Collective.
  bool step() {
    const partition::EhlTable& cls = part_.cls;
    auto contrib_eh = [&](uint64_t u, graph::Vertex v_global) {
      return program_.contribution(eh_value_[u], cls.eh_to_global(u),
                                   v_global);
    };
    auto contrib_l = [&](uint64_t lloc, graph::Vertex v_global) {
      return program_.contribution(l_value_[lloc],
                                   part_.space.to_global(ctx_.rank, lloc),
                                   v_global);
    };

    const bool inc = options_.incremental;
    auto eh_active = [&](uint64_t x) { return !inc || eh_changed_.get(x); };
    auto l_active = [&](uint64_t l) { return !inc || l_changed_.get(l); };

    // --- gather into EH -------------------------------------------------
    std::vector<Value> acc_eh(k_, program_.identity());
    for (uint64_t x = 0; x < part_.eh2eh.num_rows(); ++x) {
      if (part_.eh2eh.degree(x) == 0 || !eh_active(x)) continue;
      for (graph::Vertex y : part_.eh2eh.neighbors(x))
        acc_eh[size_t(y)] = program_.combine(
            acc_eh[size_t(y)], contrib_eh(x, cls.eh_to_global(uint64_t(y))));
    }
    for (uint64_t l = 0; l < nloc_; ++l) {
      if (!l_active(l)) continue;
      for (graph::Vertex e : part_.l2e.neighbors(l))
        acc_eh[size_t(e)] = program_.combine(
            acc_eh[size_t(e)], contrib_l(l, cls.eh_to_global(uint64_t(e))));
      for (graph::Vertex h : part_.l2h.neighbors(l))
        acc_eh[size_t(h)] = program_.combine(
            acc_eh[size_t(h)], contrib_l(l, cls.eh_to_global(uint64_t(h))));
    }
    if (k_ > 0) {
      auto op = [this](Value a, Value b) { return program_.combine(a, b); };
      ctx_.col.allreduce_inplace(std::span<Value>(acc_eh), op);
      ctx_.row.allreduce_inplace(std::span<Value>(acc_eh), op);
    }

    // --- gather into L ----------------------------------------------------
    std::vector<Value> acc_l(nloc_, program_.identity());
    for (uint64_t l = 0; l < nloc_; ++l) {
      graph::Vertex gl = part_.space.to_global(ctx_.rank, l);
      for (graph::Vertex e : part_.l2e.neighbors(l))
        if (eh_active(uint64_t(e)))
          acc_l[l] = program_.combine(acc_l[l], contrib_eh(uint64_t(e), gl));
      for (graph::Vertex h : part_.l2h.neighbors(l))
        if (eh_active(uint64_t(h)))
          acc_l[l] = program_.combine(acc_l[l], contrib_eh(uint64_t(h), gl));
    }
    struct Msg {
      graph::Vertex dst;
      Value value;
    };
    std::vector<std::vector<Msg>> to(size_t(ctx_.nranks()));
    for (uint64_t l = 0; l < nloc_; ++l) {
      if (!l_active(l)) continue;
      for (graph::Vertex l2 : part_.l2l.neighbors(l)) {
        int owner = part_.space.owner(l2);
        if (owner == ctx_.rank) {
          uint64_t t = part_.space.to_local(owner, l2);
          acc_l[t] = program_.combine(acc_l[t], contrib_l(l, l2));
        } else {
          to[size_t(owner)].push_back(Msg{l2, contrib_l(l, l2)});
        }
      }
    }
    auto got = ctx_.world.alltoallv(to);
    for (const Msg& m : got) {
      uint64_t t = part_.space.to_local(ctx_.rank, m.dst);
      acc_l[t] = program_.combine(acc_l[t], m.value);
    }

    // --- update -----------------------------------------------------------
    bool changed = false;
    eh_changed_.reset();
    l_changed_.reset();
    for (uint64_t i = 0; i < k_; ++i) {
      // Replicated update: identical inputs everywhere, identical result.
      bool c = program_.update(eh_value_[i], acc_eh[i]);
      if (c) eh_changed_.set(i);  // replicated, like the value itself
      // Only the owner votes, so "changed" is counted once per vertex.
      if (c && part_.eh_space.owner(graph::Vertex(i)) == ctx_.rank)
        changed = true;
    }
    for (uint64_t l = 0; l < nloc_; ++l) {
      if (part_.local_is_eh.get(l)) continue;
      if (program_.update(l_value_[l], acc_l[l])) {
        l_changed_.set(l);
        changed = true;
      }
    }
    return ctx_.world.allreduce_or(changed);
  }

  /// Final per-owned-vertex values (local index order).  EH vertices read
  /// from the replicated array.
  std::vector<Value> owned_values() const {
    std::vector<Value> out(nloc_);
    for (uint64_t l = 0; l < nloc_; ++l) {
      graph::Vertex g = part_.space.to_global(ctx_.rank, l);
      uint64_t eh = part_.cls.eh_of(g);
      out[l] =
          eh == partition::EhlTable::kNotEh ? l_value_[l] : eh_value_[eh];
    }
    return out;
  }

  Program& program() { return program_; }

 private:
  sim::RankContext& ctx_;
  const partition::Part15d& part_;
  Program program_;
  PropagateOptions options_;
  uint64_t k_, nloc_;
  std::vector<Value> eh_value_, l_value_;
  BitVector eh_changed_, l_changed_;
};

}  // namespace sunbfs::analytics
