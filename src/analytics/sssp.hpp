#pragma once

#include <span>
#include <vector>

#include "partition/part15d.hpp"
#include "sim/fault.hpp"
#include "sim/runtime.hpp"

/// Single-source shortest paths over the 1.5D partition (Graph 500's second
/// kernel; §8 lists SSSP among the algorithms the push-pull structure
/// carries to).
///
/// Edge weights are synthesized deterministically and symmetrically from the
/// endpoint ids (the Graph 500 SSSP benchmark likewise attaches generated
/// weights to the Kronecker graph).  Relaxation is chaotic Bellman-Ford over
/// the six subgraph components per round: E/H distances are replicated and
/// merged with the column+row min-reduction; L-to-L relaxations message.
namespace sunbfs::analytics {

using Dist = uint64_t;
inline constexpr Dist kInfDist = ~Dist(0) / 4;

/// Deterministic symmetric weight in [1, max_weight] for edge {u, v}.
Dist edge_weight(graph::Vertex u, graph::Vertex v, uint64_t seed,
                 Dist max_weight = 255);

struct SsspOptions {
  uint64_t weight_seed = 42;
  Dist max_weight = 255;
  /// Rollback-and-replay knobs, honoured under FaultPolicy::Recover: the
  /// whole query replays from its initial state after a dropped corrupted
  /// contribution or a planned rank failure (sim/recover.hpp), with results
  /// bit-identical to a fault-free run.
  sim::RecoveryOptions recovery;
};

/// Distances of this rank's owned vertices (kInfDist if unreachable).
/// Collective.
std::vector<Dist> sssp15d(sim::RankContext& ctx,
                          const partition::Part15d& part, graph::Vertex root,
                          const SsspOptions& options = {});

/// Serial reference (Dijkstra) with the same weight function.
std::vector<Dist> reference_sssp(uint64_t num_vertices,
                                 std::span<const graph::Edge> edges,
                                 graph::Vertex root,
                                 const SsspOptions& options = {});

/// Outcome of validating one SSSP run (Graph 500 kernel-3-style rules).
struct SsspValidation {
  bool ok = false;
  std::string error;
  uint64_t reached = 0;
  uint64_t edges_in_component = 0;  ///< TEPS numerator (self loops excluded)
};

/// Validate `dist` as the exact shortest distances from `root` without a
/// reference solution:
///   1. dist[root] == 0;
///   2. an edge never connects a reached and an unreached vertex;
///   3. every edge is feasible: |d(u) - d(v)| <= w(u, v);
///   4. every reached non-root vertex has a tight predecessor
///      (d(v) == d(u) + w(u, v) for some neighbor u).
/// With positive weights, (1)+(3) bound d from above by the true distance
/// and (4) bounds it from below, so passing implies exactness.
SsspValidation validate_sssp(uint64_t num_vertices,
                             std::span<const graph::Edge> edges,
                             graph::Vertex root, std::span<const Dist> dist,
                             const SsspOptions& options = {});

}  // namespace sunbfs::analytics
