#include "analytics/sssp_runner.hpp"

#include "bfs/runner.hpp"
#include "partition/part15d.hpp"
#include "support/timer.hpp"

namespace sunbfs::analytics {

using graph::Vertex;

SsspRunnerResult run_graph500_sssp(const sim::Topology& topology,
                                   const SsspRunnerConfig& config) {
  const sim::MeshShape mesh = topology.mesh();
  const int nranks = mesh.ranks();
  const graph::Graph500Config& g = config.graph;
  partition::VertexSpace space{g.num_vertices(), nranks};

  SsspRunnerResult result;
  std::vector<Vertex> roots;
  std::vector<std::vector<Dist>> dists(size_t(config.num_roots));
  std::vector<std::vector<double>> cpu(size_t(config.num_roots),
                                       std::vector<double>(size_t(nranks), 0));
  std::vector<std::vector<double>> comm = cpu;
  std::vector<int> rounds(size_t(config.num_roots), 0);
  uint64_t num_eh = 0;

  sim::run_spmd(topology, [&](sim::RankContext& ctx) {
    uint64_t m = g.num_edges();
    auto slice = graph::generate_rmat_range(
        g, m * uint64_t(ctx.rank) / uint64_t(nranks),
        m * uint64_t(ctx.rank + 1) / uint64_t(nranks));
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part =
        partition::build_15d(ctx, space, slice, degrees, config.thresholds);
    if (ctx.rank == 0) num_eh = part.cls.num_eh();
    slice.clear();
    slice.shrink_to_fit();

    // Same deterministic root-selection protocol as the BFS runner.
    std::vector<Vertex> chosen = bfs::pick_search_keys(
        ctx, space, degrees, config.num_roots, config.root_seed ^ g.seed);
    if (ctx.rank == 0) roots = chosen;

    for (int i = 0; i < config.num_roots; ++i) {
      ctx.world.barrier();
      double comm0 = ctx.stats.total_modeled_s();
      ThreadCpuTimer timer;
      auto dist = sssp15d(ctx, part, chosen[size_t(i)], config.sssp);
      cpu[size_t(i)][size_t(ctx.rank)] = timer.seconds();
      comm[size_t(i)][size_t(ctx.rank)] =
          ctx.stats.total_modeled_s() - comm0;
      auto gathered = ctx.world.allgatherv(std::span<const Dist>(dist));
      if (ctx.rank == 0) dists[size_t(i)] = std::move(gathered);
    }
  });

  result.num_eh = num_eh;
  std::vector<graph::Edge> all_edges;
  if (config.validate) all_edges = graph::generate_rmat(g);

  result.all_valid = true;
  std::vector<graph::BfsRunSample> samples;
  for (int i = 0; i < config.num_roots; ++i) {
    SsspRootRun run;
    run.root = roots[size_t(i)];
    double max_cpu = 0, max_comm = 0;
    for (int r = 0; r < nranks; ++r) {
      max_cpu = std::max(max_cpu, cpu[size_t(i)][size_t(r)]);
      max_comm = std::max(max_comm, comm[size_t(i)][size_t(r)]);
    }
    run.modeled_s = max_cpu + max_comm;
    if (config.validate) {
      auto v = validate_sssp(g.num_vertices(), all_edges, run.root,
                             dists[size_t(i)], config.sssp);
      run.valid = v.ok;
      run.error = v.error;
      run.traversed_edges = v.edges_in_component;
      if (!v.ok) result.all_valid = false;
    } else {
      run.valid = true;
      uint64_t reached_edges = 0;
      for (uint64_t v = 0; v < g.num_vertices(); ++v)
        if (dists[size_t(i)][v] < kInfDist) ++reached_edges;
      run.traversed_edges = std::max<uint64_t>(1, reached_edges * 16);
    }
    if (run.traversed_edges > 0 && run.modeled_s > 0)
      samples.push_back(
          graph::BfsRunSample{run.modeled_s, run.traversed_edges});
    result.runs.push_back(std::move(run));
  }
  if (!samples.empty())
    result.harmonic_gteps = graph::gteps(graph::harmonic_mean_teps(samples));
  return result;
}

}  // namespace sunbfs::analytics
