#include "analytics/pagerank.hpp"

#include <cmath>

#include "graph/csr.hpp"
#include "support/check.hpp"

namespace sunbfs::analytics {

using graph::Vertex;

std::vector<double> pagerank15d(sim::RankContext& ctx,
                                const partition::Part15d& part,
                                std::span<const uint64_t> local_degrees,
                                const PageRankOptions& options) {
  const partition::EhlTable& cls = part.cls;
  const uint64_t k = cls.num_eh();
  const uint64_t nloc = part.local_count;
  const double n = double(part.space.total);
  SUNBFS_CHECK(local_degrees.size() == nloc);

  // Replicated EH ranks; owned L ranks (entries of EH-owned locals unused).
  std::vector<double> eh_rank(k, 1.0 / n);
  std::vector<double> l_rank(nloc, 1.0 / n);

  struct RankMsg {
    Vertex dst;
    double contribution;
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    // Out-contributions.
    auto c_eh = [&](uint64_t e) {
      return eh_rank[e] / double(cls.eh_degree(e));  // EH degree >= h > 0
    };
    auto c_l = [&](uint64_t l) {
      return local_degrees[l] > 0 ? l_rank[l] / double(local_degrees[l]) : 0.0;
    };

    // Dangling mass (degree-0 vertices are always L).
    double dangling_local = 0;
    for (uint64_t l = 0; l < nloc; ++l)
      if (local_degrees[l] == 0 && !part.local_is_eh.get(l))
        dangling_local += l_rank[l];
    double dangling = ctx.world.allreduce_sum(dangling_local);

    // --- accumulate into EH ---------------------------------------------
    std::vector<double> acc_eh(k, 0.0);
    for (uint64_t x = 0; x < part.eh2eh.num_rows(); ++x) {
      if (part.eh2eh.degree(x) == 0) continue;
      double c = c_eh(x);
      for (Vertex y : part.eh2eh.neighbors(x)) acc_eh[size_t(y)] += c;
    }
    for (uint64_t l = 0; l < nloc; ++l) {
      double c = c_l(l);
      if (c == 0) continue;
      for (Vertex e : part.l2e.neighbors(l)) acc_eh[size_t(e)] += c;
      for (Vertex h : part.l2h.neighbors(l)) acc_eh[size_t(h)] += c;
    }
    if (k > 0) {
      auto add = [](double a, double b) { return a + b; };
      ctx.col.allreduce_inplace(std::span<double>(acc_eh), add);
      ctx.row.allreduce_inplace(std::span<double>(acc_eh), add);
    }

    // --- accumulate into L ------------------------------------------------
    std::vector<double> acc_l(nloc, 0.0);
    for (uint64_t l = 0; l < nloc; ++l) {
      double sum = 0;
      for (Vertex e : part.l2e.neighbors(l)) sum += c_eh(uint64_t(e));
      for (Vertex h : part.l2h.neighbors(l)) sum += c_eh(uint64_t(h));
      acc_l[l] = sum;
    }
    std::vector<std::vector<RankMsg>> to(size_t(ctx.nranks()));
    for (uint64_t l = 0; l < nloc; ++l) {
      double c = c_l(l);
      if (c == 0) continue;
      for (Vertex l2 : part.l2l.neighbors(l)) {
        int owner = part.space.owner(l2);
        if (owner == ctx.rank)
          acc_l[part.space.to_local(owner, l2)] += c;
        else
          to[size_t(owner)].push_back(RankMsg{l2, c});
      }
    }
    auto got = ctx.world.alltoallv(to);
    for (const RankMsg& m : got)
      acc_l[part.space.to_local(ctx.rank, m.dst)] += m.contribution;

    // --- update -----------------------------------------------------------
    const double base = (1.0 - options.damping) / n +
                        options.damping * dangling / n;
    double delta_local = 0;
    for (uint64_t i = 0; i < k; ++i) {
      double next = base + options.damping * acc_eh[i];
      // Every rank computes the identical value; only the owner of the
      // original vertex counts the delta.
      if (part.space.owner(cls.eh_to_global(i)) == ctx.rank)
        delta_local += std::abs(next - eh_rank[i]);
      eh_rank[i] = next;
    }
    for (uint64_t l = 0; l < nloc; ++l) {
      if (part.local_is_eh.get(l)) continue;
      double next = base + options.damping * acc_l[l];
      delta_local += std::abs(next - l_rank[l]);
      l_rank[l] = next;
    }
    double delta = ctx.world.allreduce_sum(delta_local);
    if (delta < options.tolerance) break;
  }

  std::vector<double> out(nloc);
  for (uint64_t l = 0; l < nloc; ++l) {
    Vertex g = part.space.to_global(ctx.rank, l);
    uint64_t eh = cls.eh_of(g);
    out[l] = eh == partition::EhlTable::kNotEh ? l_rank[l] : eh_rank[eh];
  }
  return out;
}

std::vector<double> reference_pagerank(uint64_t num_vertices,
                                       std::span<const graph::Edge> edges,
                                       const PageRankOptions& options) {
  graph::Csr adj = graph::Csr::from_undirected(num_vertices, edges);
  const double n = double(num_vertices);
  std::vector<double> rank(num_vertices, 1.0 / n);
  std::vector<double> next(num_vertices);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0;
    for (uint64_t v = 0; v < num_vertices; ++v)
      if (adj.degree(v) == 0) dangling += rank[v];
    const double base =
        (1.0 - options.damping) / n + options.damping * dangling / n;
    std::fill(next.begin(), next.end(), base);
    for (uint64_t v = 0; v < num_vertices; ++v) {
      if (adj.degree(v) == 0) continue;
      double c = options.damping * rank[v] / double(adj.degree(v));
      for (Vertex u : adj.neighbors(v)) next[size_t(u)] += c;
    }
    double delta = 0;
    for (uint64_t v = 0; v < num_vertices; ++v)
      delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

}  // namespace sunbfs::analytics
