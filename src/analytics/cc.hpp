#pragma once

#include <span>
#include <vector>

#include "partition/part15d.hpp"
#include "sim/runtime.hpp"

/// Connected components over the 1.5D partition — the paper's §8 claim that
/// 3-level degree-aware 1.5D partitioning is neutral to the graph algorithm.
///
/// Min-label propagation: every vertex starts with its own id; labels flow
/// along all six subgraph components until a fixpoint.  E/H labels are
/// replicated and merged with the same column+row reduction the BFS engine
/// uses for frontiers; L-to-L propagation uses the same intra-/inter-rank
/// messaging as BFS top-down.
namespace sunbfs::analytics {

/// Labels of this rank's owned vertices (local index order).  Two vertices
/// are in the same component iff they end with the same label (the minimum
/// global vertex id of the component).  Collective.
std::vector<graph::Vertex> cc15d(sim::RankContext& ctx,
                                 const partition::Part15d& part);

/// Serial reference (union-find).
std::vector<graph::Vertex> reference_cc(uint64_t num_vertices,
                                        std::span<const graph::Edge> edges);

}  // namespace sunbfs::analytics
