#pragma once

#include <string>
#include <vector>

#include "analytics/sssp.hpp"
#include "graph/gteps.hpp"
#include "graph/rmat.hpp"
#include "partition/classify.hpp"
#include "sim/runtime.hpp"

/// Graph 500 kernel 3 driver: SSSP over the same generated graph,
/// partitioning and machine as the BFS runner — the benchmark's second
/// kernel, which the paper's §8 names among the algorithms its techniques
/// carry to.  Search keys, timing and the harmonic-mean TEPS convention
/// match the BFS runner; validation uses the reference-free structural
/// rules of validate_sssp.
namespace sunbfs::analytics {

struct SsspRunnerConfig {
  graph::Graph500Config graph;
  partition::DegreeThresholds thresholds{2048, 128};
  SsspOptions sssp;
  int num_roots = 4;
  uint64_t root_seed = 7;
  bool validate = true;
};

struct SsspRootRun {
  graph::Vertex root = 0;
  double modeled_s = 0;
  uint64_t traversed_edges = 0;
  int rounds = 0;
  bool valid = false;
  std::string error;
};

struct SsspRunnerResult {
  std::vector<SsspRootRun> runs;
  double harmonic_gteps = 0;
  bool all_valid = false;
  uint64_t num_eh = 0;
};

SsspRunnerResult run_graph500_sssp(const sim::Topology& topology,
                                   const SsspRunnerConfig& config);

}  // namespace sunbfs::analytics
