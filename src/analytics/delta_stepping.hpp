#pragma once

#include "analytics/sssp.hpp"
#include "sim/encoding.hpp"
#include "sim/exchange.hpp"

/// Delta-stepping SSSP over the 1.5D partition (Meyer & Sanders; the
/// algorithm behind the massively parallel SSSP the paper cites [5] and
/// behind Graph 500 kernel-3 reference implementations).
///
/// Distances are processed in buckets of width delta.  A bucket is settled
/// by repeated relaxation of *light* edges (weight <= delta) from its
/// members — new members pulled into the bucket join the next inner round —
/// and then *heavy* edges (weight > delta) are relaxed once from the
/// settled members.  Compared to the Bellman-Ford rounds of sssp15d, far
/// fewer relaxations re-run on long paths.
///
/// The distributed layout matches the rest of the library: E/H distances
/// replicated and merged with the mesh column+row min-reduction, L
/// distances owned, L-to-L relaxations messaged.  Bucket control decisions
/// (inner-loop termination, next bucket index) are allreduced, so every
/// rank steps through identical phases.
namespace sunbfs::analytics {

struct DeltaSteppingOptions {
  SsspOptions weights;
  /// Bucket width.  Values near the mean edge weight work well; the
  /// default matches the default max_weight's mean of ~128.
  Dist delta = 128;
  /// Adaptive wire encoding for the L-to-L relaxation alltoallv
  /// (sim/encoding.hpp).
  sim::EncodingOptions encoding;
  /// Exchange plan backend for the L-to-L relaxation alltoallv
  /// (sim/exchange.hpp).  Distances stay bit-identical across backends
  /// (ctest -L differential).
  sim::ExchangeOptions exchange;
  /// Rollback-and-replay knobs under FaultPolicy::Recover (whole-query
  /// replay, sim/recover.hpp); rank failures fire at bucket epochs.
  sim::RecoveryOptions recovery;
};

/// One cross-rank L-to-L relaxation: candidate distance `dist` for global
/// vertex `dst` (owned by the receiver).
struct DistMsg {
  graph::Vertex dst;
  Dist dist;
};

struct DeltaSteppingStats {
  int buckets_processed = 0;
  int light_rounds = 0;
};

/// Distances of this rank's owned vertices (kInfDist if unreachable).
/// Exact (agrees with Dijkstra).  Collective.
std::vector<Dist> sssp15d_delta(sim::RankContext& ctx,
                                const partition::Part15d& part,
                                graph::Vertex root,
                                const DeltaSteppingOptions& options = {},
                                DeltaSteppingStats* stats = nullptr);

}  // namespace sunbfs::analytics

namespace sunbfs::sim {

/// Wire codec for L-to-L relaxations: the global destination id keys the
/// sort/bitmap; the candidate distance follows as a varint (bucketed
/// distances are small early on, and exact measurement falls back to raw
/// when they are not).
template <>
struct WireFormat<analytics::DistMsg> {
  static uint64_t key(const analytics::DistMsg& m) { return uint64_t(m.dst); }
  static bool less(const analytics::DistMsg& a, const analytics::DistMsg& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.dist < b.dist;
  }
  static size_t rest_size(const analytics::DistMsg& m) {
    return varint_size(uint64_t(m.dist));
  }
  static uint8_t* put_rest(const analytics::DistMsg& m, uint8_t* p) {
    return put_varint(p, m.dist);
  }
  static const uint8_t* get_rest(const uint8_t* p, const uint8_t* end,
                                 uint64_t key, analytics::DistMsg& m) {
    if (key > uint64_t(INT64_MAX)) return nullptr;
    uint64_t v = 0;
    p = get_varint(p, end, &v);
    if (p == nullptr) return nullptr;
    m.dst = graph::Vertex(key);
    m.dist = analytics::Dist(v);
    return p;
  }
};

/// Staged-exchange fold for L-to-L relaxations: the receiver keeps the
/// minimum candidate distance per destination, so an intermediate hop may
/// take the min early.  Source ranks are irrelevant to the reduction.
template <>
struct ExchangeMergePolicy<analytics::DistMsg> {
  static constexpr bool enabled = true;
  static bool same(const analytics::DistMsg& a, uint32_t /*a_src_part*/,
                   const analytics::DistMsg& b, uint32_t /*b_src_part*/) {
    return a.dst == b.dst;
  }
  static void fold(analytics::DistMsg& into, uint32_t& into_src_part,
                   const analytics::DistMsg& from, uint32_t from_src_part) {
    // Keep the (dist, src_part) minimum so the surviving message is
    // independent of fold order; the receiver's min over dist alone is
    // unchanged by which src_part delivers it.
    if (from.dist < into.dist ||
        (from.dist == into.dist && from_src_part < into_src_part)) {
      into.dist = from.dist;
      into_src_part = from_src_part;
    }
  }
};

}  // namespace sunbfs::sim
