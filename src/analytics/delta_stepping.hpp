#pragma once

#include "analytics/sssp.hpp"

/// Delta-stepping SSSP over the 1.5D partition (Meyer & Sanders; the
/// algorithm behind the massively parallel SSSP the paper cites [5] and
/// behind Graph 500 kernel-3 reference implementations).
///
/// Distances are processed in buckets of width delta.  A bucket is settled
/// by repeated relaxation of *light* edges (weight <= delta) from its
/// members — new members pulled into the bucket join the next inner round —
/// and then *heavy* edges (weight > delta) are relaxed once from the
/// settled members.  Compared to the Bellman-Ford rounds of sssp15d, far
/// fewer relaxations re-run on long paths.
///
/// The distributed layout matches the rest of the library: E/H distances
/// replicated and merged with the mesh column+row min-reduction, L
/// distances owned, L-to-L relaxations messaged.  Bucket control decisions
/// (inner-loop termination, next bucket index) are allreduced, so every
/// rank steps through identical phases.
namespace sunbfs::analytics {

struct DeltaSteppingOptions {
  SsspOptions weights;
  /// Bucket width.  Values near the mean edge weight work well; the
  /// default matches the default max_weight's mean of ~128.
  Dist delta = 128;
};

struct DeltaSteppingStats {
  int buckets_processed = 0;
  int light_rounds = 0;
};

/// Distances of this rank's owned vertices (kInfDist if unreachable).
/// Exact (agrees with Dijkstra).  Collective.
std::vector<Dist> sssp15d_delta(sim::RankContext& ctx,
                                const partition::Part15d& part,
                                graph::Vertex root,
                                const DeltaSteppingOptions& options = {},
                                DeltaSteppingStats* stats = nullptr);

}  // namespace sunbfs::analytics
