#include "analytics/sssp.hpp"

#include <queue>
#include <sstream>

#include "analytics/propagate.hpp"

#include "graph/csr.hpp"
#include "sim/recover.hpp"
#include "support/check.hpp"
#include "support/random.hpp"

namespace sunbfs::analytics {

using graph::Vertex;

Dist edge_weight(Vertex u, Vertex v, uint64_t seed, Dist max_weight) {
  uint64_t a = uint64_t(std::min(u, v));
  uint64_t b = uint64_t(std::max(u, v));
  uint64_t h = SplitMix64::mix(seed ^ (a * 0x9E3779B97F4A7C15ull + b + 1));
  return 1 + h % max_weight;
}

namespace {
/// Bellman-Ford relaxation as a propagation program: a vertex's state is
/// its tentative distance; along edge (u, v) it contributes
/// dist(u) + w(u, v); the gather keeps the minimum.
struct RelaxProgram {
  using Value = Dist;
  uint64_t seed;
  Dist max_weight;

  Value identity() const { return kInfDist; }
  Value combine(Value a, Value b) const { return std::min(a, b); }
  Value contribution(Value u_value, Vertex u, Vertex v) const {
    if (u_value >= kInfDist) return kInfDist;
    return u_value + edge_weight(u, v, seed, max_weight);
  }
  bool update(Value& state, const Value& gathered) const {
    if (gathered < state) {
      state = gathered;
      return true;
    }
    return false;
  }
};
}  // namespace

std::vector<Dist> sssp15d(sim::RankContext& ctx,
                          const partition::Part15d& part, Vertex root,
                          const SsspOptions& options) {
  SUNBFS_CHECK(root >= 0 && uint64_t(root) < part.space.total);
  // Whole-query rollback-and-replay (sim/recover.hpp): the engine is
  // rebuilt per attempt, so a discarded attempt leaves no state behind; the
  // guard fires planned rank failures at the replicated round counter.
  return sim::run_with_replay(
      ctx, options.recovery, [&](sim::ReplayGuard& guard) {
        PropagationEngine<RelaxProgram> engine(
            ctx, part, RelaxProgram{options.weight_seed, options.max_weight},
            {.incremental = true});
        engine.initialize(
            [&](Vertex v) { return v == root ? Dist(0) : kInfDist; });
        for (int round = 1; round <= (1 << 20); ++round) {
          guard.epoch(round);
          if (!engine.step()) break;
        }
        return engine.owned_values();
      });
}

SsspValidation validate_sssp(uint64_t num_vertices,
                             std::span<const graph::Edge> edges,
                             Vertex root, std::span<const Dist> dist,
                             const SsspOptions& options) {
  SsspValidation res;
  auto fail = [&](const std::string& why) {
    res.ok = false;
    res.error = why;
    return res;
  };
  if (dist.size() != num_vertices) return fail("distance array size mismatch");
  if (root < 0 || uint64_t(root) >= num_vertices)
    return fail("root out of range");
  if (dist[size_t(root)] != 0) return fail("dist[root] != 0");

  auto w = [&](Vertex a, Vertex b) {
    return edge_weight(a, b, options.weight_seed, options.max_weight);
  };
  // Rules 2 and 3 over the edge list; count the TEPS numerator.
  for (const graph::Edge& e : edges) {
    if (e.u < 0 || uint64_t(e.u) >= num_vertices || e.v < 0 ||
        uint64_t(e.v) >= num_vertices)
      return fail("edge endpoint out of range");
    bool ru = dist[size_t(e.u)] < kInfDist;
    bool rv = dist[size_t(e.v)] < kInfDist;
    if (ru != rv) return fail("edge connects reached and unreached vertices");
    if (!ru) continue;
    Dist hi = std::max(dist[size_t(e.u)], dist[size_t(e.v)]);
    Dist lo = std::min(dist[size_t(e.u)], dist[size_t(e.v)]);
    if (e.u != e.v && hi - lo > w(e.u, e.v))
      return fail("edge violates the triangle inequality");
    if (e.u != e.v) res.edges_in_component++;
  }
  // Rule 4: tight predecessor for every reached non-root vertex.
  graph::Csr adj = graph::Csr::from_undirected(num_vertices, edges);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    if (dist[v] >= kInfDist) continue;
    ++res.reached;
    if (Vertex(v) == root) continue;
    bool tight = false;
    for (Vertex u : adj.neighbors(v)) {
      if (dist[size_t(u)] >= kInfDist) continue;
      if (dist[size_t(u)] + w(u, Vertex(v)) == dist[v]) {
        tight = true;
        break;
      }
    }
    if (!tight) {
      std::ostringstream os;
      os << "vertex " << v << " has no tight predecessor";
      return fail(os.str());
    }
  }
  res.ok = true;
  return res;
}

std::vector<Dist> reference_sssp(uint64_t num_vertices,
                                 std::span<const graph::Edge> edges,
                                 Vertex root, const SsspOptions& options) {
  graph::Csr adj = graph::Csr::from_undirected(num_vertices, edges);
  std::vector<Dist> dist(num_vertices, kInfDist);
  dist[size_t(root)] = 0;
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0, root);
  while (!pq.empty()) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[size_t(v)]) continue;
    for (Vertex u : adj.neighbors(uint64_t(v))) {
      Dist cand = d + edge_weight(v, u, options.weight_seed,
                                  options.max_weight);
      if (cand < dist[size_t(u)]) {
        dist[size_t(u)] = cand;
        pq.emplace(cand, u);
      }
    }
  }
  return dist;
}

}  // namespace sunbfs::analytics
