#pragma once

#include <sstream>
#include <string>

/// Minimal leveled logger.
///
/// Benches and examples log progress at Info; the library itself only logs at
/// Debug so that benchmark output stays parseable.
namespace sunbfs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` (thread safe).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string log_format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::Debug)
    log_line(LogLevel::Debug, detail::log_format(std::forward<Args>(args)...));
}

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::Info)
    log_line(LogLevel::Info, detail::log_format(std::forward<Args>(args)...));
}

template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::Warn)
    log_line(LogLevel::Warn, detail::log_format(std::forward<Args>(args)...));
}

template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::Error)
    log_line(LogLevel::Error, detail::log_format(std::forward<Args>(args)...));
}

}  // namespace sunbfs
