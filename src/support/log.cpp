#include "support/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sunbfs {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    default: return "?";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lk(g_mu);
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace sunbfs
