#pragma once

#include <chrono>
#include <cstdint>
#include <ctime>

/// Wall-clock timing utilities used by the benchmark harness and by the BFS
/// time-breakdown instrumentation (Figures 10, 11, 15).
namespace sunbfs {

/// High-resolution wall timer.
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restart the timer.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time over repeated start/stop intervals; used to attribute
/// wall time to named phases (per subgraph, per collective type).
class TimeAccumulator {
 public:
  void start() { timer_.reset(); }
  void stop() { total_ += timer_.seconds(); }

  /// Add externally measured seconds (e.g. modeled network time).
  void add(double seconds) { total_ += seconds; }

  double seconds() const { return total_; }
  void reset() { total_ = 0.0; }

 private:
  WallTimer timer_;
  double total_ = 0.0;
};

/// Per-thread CPU time.  Rank threads time-share host cores, so wall clocks
/// cannot attribute compute to a rank; CLOCK_THREAD_CPUTIME_ID can.  All
/// per-rank compute measurements in the BFS engines use this clock.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }

  void reset() { start_ = now(); }

  /// CPU seconds consumed by the calling thread since the last reset().
  double seconds() const { return now() - start_; }

  static double now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
  }

 private:
  double start_ = 0;
};

/// Accumulates per-thread CPU time over start/stop intervals.
class CpuTimeAccumulator {
 public:
  void start() { timer_.reset(); }
  void stop() { total_ += timer_.seconds(); }
  void add(double seconds) { total_ += seconds; }
  double seconds() const { return total_; }
  void reset() { total_ = 0.0; }

 private:
  ThreadCpuTimer timer_;
  double total_ = 0.0;
};

/// RAII helper adding the scope's CPU time to a CpuTimeAccumulator.
class ScopedCpuTimer {
 public:
  explicit ScopedCpuTimer(CpuTimeAccumulator& acc) : acc_(acc) {
    acc_.start();
  }
  ~ScopedCpuTimer() { acc_.stop(); }
  ScopedCpuTimer(const ScopedCpuTimer&) = delete;
  ScopedCpuTimer& operator=(const ScopedCpuTimer&) = delete;

 private:
  CpuTimeAccumulator& acc_;
};

/// RAII helper adding the scope's duration to an accumulator.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimeAccumulator& acc) : acc_(acc) { acc_.start(); }
  ~ScopedTimer() { acc_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeAccumulator& acc_;
};

}  // namespace sunbfs
