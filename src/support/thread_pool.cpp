#include "support/thread_pool.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace sunbfs {

namespace {
// Pool currently executing a chunk on this thread; lets nested
// run_chunks/parallel_for calls on the same pool degrade to inline
// execution instead of deadlocking on the dispatch protocol.
thread_local ThreadPool* tls_current_pool = nullptr;

struct CurrentPoolScope {
  ThreadPool* prev;
  explicit CurrentPoolScope(ThreadPool* pool) : prev(tls_current_pool) {
    tls_current_pool = pool;
  }
  ~CurrentPoolScope() { tls_current_pool = prev; }
};
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  // The caller participates in every batch, so spawn threads-1 workers.
  for (size_t i = 0; i + 1 < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::record_error(size_t chunk) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!error_ || chunk < error_chunk_) {
    error_ = std::current_exception();
    error_chunk_ = chunk;
  }
}

void ThreadPool::worker_loop() {
  uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    {
      CurrentPoolScope scope(this);
      for (;;) {
        size_t chunk;
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (next_chunk_ >= job_chunks_) break;
          chunk = next_chunk_++;
        }
        try {
          (*job)(chunk);
        } catch (...) {
          record_error(chunk);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_inline(size_t nchunks,
                            const std::function<void(size_t)>& fn) {
  // Ascending order: the first throw is necessarily the lowest chunk index,
  // matching the parallel path's deterministic-first-exception guarantee.
  for (size_t i = 0; i < nchunks; ++i) fn(i);
}

void ThreadPool::run_chunks(size_t nchunks,
                            const std::function<void(size_t)>& fn) {
  if (nchunks == 0) return;
  if (workers_.empty() || tls_current_pool == this) {
    run_inline(nchunks, fn);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_chunks_ = nchunks;
    next_chunk_ = 0;
    pending_ = workers_.size();
    error_ = nullptr;
    error_chunk_ = std::numeric_limits<size_t>::max();
    ++epoch_;
  }
  cv_start_.notify_all();
  // Caller participates.
  {
    CurrentPoolScope scope(this);
    for (;;) {
      size_t chunk;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (next_chunk_ >= job_chunks_) break;
        chunk = next_chunk_++;
      }
      try {
        fn(chunk);
      } catch (...) {
        record_error(chunk);
      }
    }
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
    job_ = nullptr;
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }
}

void ThreadPool::parallel_for(size_t begin, size_t end,
                              const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  size_t n = end - begin;
  size_t parts = std::min(n, size());
  run_chunks(parts, [&](size_t p) {
    size_t lo = begin + n * p / parts;
    size_t hi = begin + n * (p + 1) / parts;
    if (lo < hi) fn(lo, hi);
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

size_t resolve_threads_per_rank(int requested, size_t nranks) {
  if (nranks == 0) nranks = 1;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t threads = requested > 0 ? size_t(requested)
                                 : std::max<size_t>(1, hw / nranks);
  SUNBFS_ASSERT(nranks * threads <= 2 * hw);
  return threads;
}

}  // namespace sunbfs
