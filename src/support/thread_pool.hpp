#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// Shared-memory worker pool for intra-rank parallelism.
///
/// On the simulated machine each rank's "CPE cluster" compute is expressed as
/// parallel_for over local ranges; on a single-core host the pool degrades
/// gracefully to inline execution.
namespace sunbfs {

/// Fixed-size thread pool executing indexed task batches.
class ThreadPool {
 public:
  /// Create a pool with `threads` workers.  0 means
  /// std::thread::hardware_concurrency().  A pool of size <= 1 executes
  /// everything inline on the caller thread.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.empty() ? 1 : workers_.size() + 1; }

  /// Run fn(chunk_index) for chunk_index in [0, nchunks), distributing chunks
  /// across workers (caller participates).  Blocks until all chunks finish.
  /// Exceptions from fn propagate to the caller (first one wins).
  void run_chunks(size_t nchunks, const std::function<void(size_t)>& fn);

  /// Parallel loop over [begin, end) in contiguous blocks, one block per
  /// participant: fn(block_begin, block_end).
  void parallel_for(size_t begin, size_t end,
                    const std::function<void(size_t, size_t)>& fn);

  /// Process-wide default pool (size = hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_chunks_ = 0;
  size_t next_chunk_ = 0;
  size_t pending_ = 0;
  uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace sunbfs
