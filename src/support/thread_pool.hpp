#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// Shared-memory worker pool for intra-rank parallelism.
///
/// On the simulated machine each rank's "CPE cluster" compute is expressed as
/// parallel_for over local ranges; on a single-core host the pool degrades
/// gracefully to inline execution.
namespace sunbfs {

/// Fixed-size thread pool executing indexed task batches.
///
/// Guarantees (see tests/test_support.cpp, ctest -L tsan):
///  - Exceptions: when chunks throw, the exception from the *lowest-indexed*
///    throwing chunk propagates to the caller, regardless of scheduling
///    order — so a failing parallel loop reports the same error at any
///    thread count.
///  - Re-entrancy: calling run_chunks / parallel_for from inside a chunk of
///    the same pool degrades to inline execution on the calling thread
///    instead of deadlocking on the dispatch protocol.
class ThreadPool {
 public:
  /// Create a pool with `threads` workers.  0 means
  /// std::thread::hardware_concurrency().  A pool of size <= 1 executes
  /// everything inline on the caller thread.
  explicit ThreadPool(size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.empty() ? 1 : workers_.size() + 1; }

  /// Run fn(chunk_index) for chunk_index in [0, nchunks), distributing chunks
  /// across workers (caller participates).  Blocks until all chunks finish.
  /// If any chunks throw, the exception from the lowest chunk index is
  /// rethrown on the caller (deterministic across thread counts).
  void run_chunks(size_t nchunks, const std::function<void(size_t)>& fn);

  /// Parallel loop over [begin, end) in contiguous blocks, one block per
  /// participant: fn(block_begin, block_end).
  void parallel_for(size_t begin, size_t end,
                    const std::function<void(size_t, size_t)>& fn);

  /// Process-wide default pool (size = hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();
  void run_inline(size_t nchunks, const std::function<void(size_t)>& fn);
  void record_error(size_t chunk);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_chunks_ = 0;
  size_t next_chunk_ = 0;
  size_t pending_ = 0;
  uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  size_t error_chunk_ = 0;
};

/// Resolve the intra-rank worker-thread count for one rank of an nranks-wide
/// SPMD run.  `requested` <= 0 means auto: hardware_concurrency / nranks,
/// floored at 1, so rank-threads x workers never oversubscribe the host by
/// default.  Debug builds assert the explicit-knob total stays within 2x the
/// hardware (tests may deliberately oversubscribe a little on small hosts).
size_t resolve_threads_per_rank(int requested, size_t nranks);

}  // namespace sunbfs
