#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

/// Declarative command-line flags for the example/bench binaries.
///
/// Every tool declares its flags once in a table; parsing and the usage text
/// are both generated from that table, so a flag the parser accepts is — by
/// construction — listed by --help, and an argv token that matches no
/// declared flag is a parse error rather than being silently ignored.  That
/// closes the historical gap where graph500_runner accepted flags its help
/// never mentioned (tests/test_support.cpp audits the invariant).
namespace sunbfs {

struct CliFlag {
  std::string name;        ///< including the leading "--"
  std::string value_name;  ///< empty for boolean flags
  std::string help;
  bool takes_value() const { return !value_name.empty(); }
};

class CliFlags {
 public:
  CliFlags(std::string tool, std::string summary)
      : tool_(std::move(tool)), summary_(std::move(summary)) {
    add("--help", "", "print this usage text and exit");
  }

  /// Declare a flag.  `value_name` empty means boolean (presence-only).
  void add(const std::string& name, const std::string& value_name,
           const std::string& help) {
    flags_.push_back(CliFlag{name, value_name, help});
  }

  const std::vector<CliFlag>& flags() const { return flags_; }

  /// Parse argv strictly against the table.  Returns false (with a message
  /// in *error) on an unknown flag or a missing value; --help alone does not
  /// fail parsing — check help_requested().
  bool parse(int argc, char** argv, std::string* error) {
    for (int i = 1; i < argc; ++i) {
      const CliFlag* flag = find(argv[i]);
      if (flag == nullptr) {
        if (error) *error = std::string("unknown flag '") + argv[i] + "'";
        return false;
      }
      if (!flag->takes_value()) {
        set_.push_back({flag->name, ""});
        continue;
      }
      if (i + 1 >= argc) {
        if (error)
          *error = "flag '" + flag->name + "' expects a " + flag->value_name +
                   " value";
        return false;
      }
      set_.push_back({flag->name, argv[++i]});
    }
    return true;
  }

  bool help_requested() const { return has("--help"); }

  bool has(const std::string& name) const {
    for (const auto& kv : set_)
      if (kv.first == name) return true;
    return false;
  }

  /// Last-provided value of `name`, or `def` when absent.
  std::string str(const std::string& name, const std::string& def = "") const {
    std::string out = def;
    for (const auto& kv : set_)
      if (kv.first == name) out = kv.second;
    return out;
  }

  uint64_t u64(const std::string& name, uint64_t def) const {
    if (!has(name)) return def;
    return std::strtoull(str(name).c_str(), nullptr, 10);
  }

  double f64(const std::string& name, double def) const {
    if (!has(name)) return def;
    return std::strtod(str(name).c_str(), nullptr);
  }

  /// Usage text generated from the flag table: every declared flag appears,
  /// with its value placeholder and help line.
  std::string usage() const {
    std::string out = "usage: " + tool_;
    for (const auto& f : flags_) {
      out += " [" + f.name;
      if (f.takes_value()) out += " " + f.value_name;
      out += "]";
    }
    out += "\n\n" + summary_ + "\n\n";
    size_t width = 0;
    for (const auto& f : flags_) {
      size_t w = f.name.size() + (f.takes_value() ? f.value_name.size() + 1 : 0);
      width = std::max(width, w);
    }
    for (const auto& f : flags_) {
      std::string head = "  " + f.name;
      if (f.takes_value()) head += " " + f.value_name;
      out += head;
      out.append(width + 4 - (head.size() - 2), ' ');
      out += f.help + "\n";
    }
    return out;
  }

 private:
  const CliFlag* find(const char* arg) const {
    for (const auto& f : flags_)
      if (f.name == arg) return &f;
    return nullptr;
  }

  std::string tool_;
  std::string summary_;
  std::vector<CliFlag> flags_;
  std::vector<std::pair<std::string, std::string>> set_;  // parse results
};

}  // namespace sunbfs
