#pragma once

#include <cstddef>
#include <vector>

/// Prefix-sum helpers used by bucket sorts, CSR construction and the
/// edge-aware vertex-cut load balancer.
namespace sunbfs {

/// Exclusive prefix sum in place; returns the total.
template <typename T>
T exclusive_prefix_sum(std::vector<T>& v) {
  T running = 0;
  for (auto& x : v) {
    T next = running + x;
    x = running;
    running = next;
  }
  return running;
}

/// Exclusive prefix sum into a fresh vector with one extra trailing element
/// holding the total (CSR row-offset style).
template <typename T>
std::vector<T> offsets_from_counts(const std::vector<T>& counts) {
  std::vector<T> off(counts.size() + 1);
  T running = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    off[i] = running;
    running += counts[i];
  }
  off[counts.size()] = running;
  return off;
}

/// Largest index i in a sorted offsets array such that offsets[i] <= value.
/// Used to split work by accumulated degree (GraphIt-style vertex cut).
template <typename T>
size_t upper_offset_index(const std::vector<T>& offsets, T value) {
  size_t lo = 0, hi = offsets.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (offsets[mid] <= value)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace sunbfs
