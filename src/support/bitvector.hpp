#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

/// Dense bit vectors.
///
/// BFS frontiers and visited sets are bit vectors over local vertex ranges
/// (the paper's "activation bit vectors").  Two flavours are provided:
/// BitVector for single-writer phases and AtomicBitVector for concurrent
/// top-down updates.
namespace sunbfs {

/// Plain dense bit vector with word-level access for fast scans.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t nbits) { resize(nbits); }

  void resize(size_t nbits) {
    nbits_ = nbits;
    words_.assign(word_count(), 0);
  }

  size_t size() const { return nbits_; }
  size_t word_count() const { return (nbits_ + 63) / 64; }

  bool get(size_t i) const {
    SUNBFS_ASSERT(i < nbits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(size_t i) {
    SUNBFS_ASSERT(i < nbits_);
    words_[i >> 6] |= uint64_t(1) << (i & 63);
  }

  void clear(size_t i) {
    SUNBFS_ASSERT(i < nbits_);
    words_[i >> 6] &= ~(uint64_t(1) << (i & 63));
  }

  /// Set bit i, returning whether it was previously clear.
  bool test_and_set(size_t i) {
    SUNBFS_ASSERT(i < nbits_);
    uint64_t mask = uint64_t(1) << (i & 63);
    uint64_t& w = words_[i >> 6];
    bool was_clear = (w & mask) == 0;
    w |= mask;
    return was_clear;
  }

  /// Concurrent-phase accessors: lock-free word operations via
  /// std::atomic_ref so threaded kernels can share one plain BitVector
  /// without copying into AtomicBitVector.  Do not mix with the plain
  /// mutators on the same words within a concurrent phase.
  bool atomic_get(size_t i) const {
    SUNBFS_ASSERT(i < nbits_);
    std::atomic_ref<const uint64_t> w(words_[i >> 6]);
    return (w.load(std::memory_order_relaxed) >> (i & 63)) & 1;
  }

  void atomic_set(size_t i) {
    SUNBFS_ASSERT(i < nbits_);
    std::atomic_ref<uint64_t> w(words_[i >> 6]);
    w.fetch_or(uint64_t(1) << (i & 63), std::memory_order_relaxed);
  }

  /// Atomically set bit i; returns true if this call changed it from 0 to 1.
  bool atomic_test_and_set(size_t i) {
    SUNBFS_ASSERT(i < nbits_);
    uint64_t mask = uint64_t(1) << (i & 63);
    std::atomic_ref<uint64_t> w(words_[i >> 6]);
    uint64_t prev = w.fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  /// Zero all bits without changing the size.
  void reset() { std::fill(words_.begin(), words_.end(), 0); }

  /// Number of set bits.
  size_t count() const;

  /// True if no bit is set.
  bool none() const;

  /// In-place union with another vector of the same size.
  void operator|=(const BitVector& other);

  /// In-place difference: clear every bit that is set in `other`.
  void and_not(const BitVector& other);

  /// Call fn(i) for every set bit, in increasing order.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for_each_set_words(0, words_.size(), fn);
  }

  /// Call fn(i) for every set bit whose word index lies in [word_lo,
  /// word_hi), in increasing order.  Lets threaded kernels split a frontier
  /// scan into disjoint word ranges.
  template <typename Fn>
  void for_each_set_words(size_t word_lo, size_t word_hi, Fn&& fn) const {
    for (size_t w = word_lo; w < word_hi; ++w) {
      uint64_t bits = words_[w];
      while (bits != 0) {
        int b = __builtin_ctzll(bits);
        fn(w * 64 + size_t(b));
        bits &= bits - 1;
      }
    }
  }

  uint64_t word(size_t w) const { return words_[w]; }
  uint64_t* data() { return words_.data(); }
  const uint64_t* data() const { return words_.data(); }

  bool operator==(const BitVector& other) const {
    return nbits_ == other.nbits_ && words_ == other.words_;
  }

 private:
  size_t nbits_ = 0;
  std::vector<uint64_t> words_;
};

/// Bit vector supporting concurrent set operations from multiple threads.
class AtomicBitVector {
 public:
  AtomicBitVector() = default;
  explicit AtomicBitVector(size_t nbits) { resize(nbits); }

  void resize(size_t nbits) {
    nbits_ = nbits;
    words_ = std::vector<std::atomic<uint64_t>>((nbits + 63) / 64);
    reset();
  }

  size_t size() const { return nbits_; }

  bool get(size_t i) const {
    SUNBFS_ASSERT(i < nbits_);
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1;
  }

  /// Atomically set bit i; returns true if this call changed it from 0 to 1.
  bool test_and_set(size_t i) {
    SUNBFS_ASSERT(i < nbits_);
    uint64_t mask = uint64_t(1) << (i & 63);
    uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  void reset() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Copy the current contents into a plain BitVector.
  BitVector snapshot() const {
    BitVector out(nbits_);
    for (size_t w = 0; w < words_.size(); ++w)
      out.data()[w] = words_[w].load(std::memory_order_relaxed);
    return out;
  }

 private:
  size_t nbits_ = 0;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace sunbfs
