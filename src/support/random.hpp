#pragma once

#include <cstdint>

/// Deterministic, fast pseudo-random number generators.
///
/// All randomness in the library flows through these generators so that any
/// run is reproducible from (seed, topology).  SplitMix64 is used to expand
/// seeds; Xoshiro256StarStar is the workhorse stream generator.
namespace sunbfs {

/// SplitMix64: tiny generator mainly used to seed other generators and to
/// hash integers (e.g. Graph500 vertex scrambling).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Stateless mix of a single value (useful as a hash).
  static uint64_t mix(uint64_t x) {
    SplitMix64 g(x);
    return g.next();
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: all-purpose 64-bit generator (Blackman & Vigna).
class Xoshiro256StarStar {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256StarStar(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ull; }

  uint64_t operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() { return double(next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  uint64_t next_below(uint64_t bound) {
    __uint128_t m = (__uint128_t)next() * bound;
    uint64_t lo = (uint64_t)m;
    if (lo < bound) {
      uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = (__uint128_t)next() * bound;
        lo = (uint64_t)m;
      }
    }
    return (uint64_t)(m >> 64);
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace sunbfs
