#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// Log-scale histogram used for degree-distribution reporting (Figure 2) and
/// summary statistics over per-partition sizes (Figure 13).
namespace sunbfs {

/// Power-of-two bucketed histogram over non-negative 64-bit values.
/// Bucket b holds values in [2^b, 2^(b+1)) except bucket 0 which holds {0,1}.
class Log2Histogram {
 public:
  Log2Histogram();

  void add(uint64_t value, uint64_t weight = 1);

  /// Index of the highest non-empty bucket + 1.
  size_t bucket_count() const;

  uint64_t bucket(size_t b) const { return counts_[b]; }

  /// Inclusive lower bound of bucket b.
  static uint64_t bucket_low(size_t b);

  uint64_t total() const { return total_; }

  /// Multi-line human readable rendering (one row per non-empty bucket).
  std::string to_string() const;

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Streaming min/max/mean summary for balance reporting.
struct Summary {
  uint64_t n = 0;
  double min = 0, max = 0, sum = 0;

  void add(double x) {
    if (n == 0) {
      min = max = x;
    } else {
      if (x < min) min = x;
      if (x > max) max = x;
    }
    sum += x;
    ++n;
  }

  double mean() const { return n ? sum / double(n) : 0.0; }
  /// (max-min)/max, the paper's Figure 13 spread metric.
  double spread() const { return max > 0 ? (max - min) / max : 0.0; }
  /// max/mean - 1, the paper's "maximum against average" metric.
  double max_over_mean() const {
    return mean() > 0 ? max / mean() - 1.0 : 0.0;
  }
};

}  // namespace sunbfs
