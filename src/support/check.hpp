#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

/// Runtime checking utilities.
///
/// SUNBFS_CHECK is always on (cheap invariants, argument validation); it
/// throws sunbfs::CheckError so tests can assert on failures instead of
/// aborting the process.  SUNBFS_ASSERT compiles out in NDEBUG builds and is
/// meant for hot-loop invariants.
namespace sunbfs {

/// Exception thrown when a SUNBFS_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::string what = std::string("check failed: ") + cond + " at " + file +
                     ":" + std::to_string(line);
  if (!msg.empty()) what += " — " + msg;
  throw CheckError(what);
}
}  // namespace detail

}  // namespace sunbfs

#define SUNBFS_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::sunbfs::detail::check_failed(#cond, __FILE__, __LINE__, {});    \
  } while (0)

#define SUNBFS_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond))                                                        \
      ::sunbfs::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define SUNBFS_ASSERT(cond) ((void)0)
#else
#define SUNBFS_ASSERT(cond) SUNBFS_CHECK(cond)
#endif
