#include "support/histogram.hpp"

#include <sstream>

namespace sunbfs {

Log2Histogram::Log2Histogram() : counts_(65, 0) {}

void Log2Histogram::add(uint64_t value, uint64_t weight) {
  size_t b = value < 2 ? 0 : size_t(63 - __builtin_clzll(value));
  counts_[b] += weight;
  total_ += weight;
}

size_t Log2Histogram::bucket_count() const {
  size_t hi = 0;
  for (size_t b = 0; b < counts_.size(); ++b)
    if (counts_[b] != 0) hi = b + 1;
  return hi;
}

uint64_t Log2Histogram::bucket_low(size_t b) {
  return b == 0 ? 0 : (uint64_t(1) << b);
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  size_t n = bucket_count();
  for (size_t b = 0; b < n; ++b) {
    if (counts_[b] == 0) continue;
    os << "  [" << bucket_low(b) << ", " << (bucket_low(b + 1)) << "): "
       << counts_[b] << "\n";
  }
  return os.str();
}

}  // namespace sunbfs
