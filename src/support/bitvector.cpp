#include "support/bitvector.hpp"

namespace sunbfs {

size_t BitVector::count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += size_t(__builtin_popcountll(w));
  return n;
}

bool BitVector::none() const {
  for (uint64_t w : words_)
    if (w != 0) return false;
  return true;
}

void BitVector::operator|=(const BitVector& other) {
  SUNBFS_CHECK(nbits_ == other.nbits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
}

void BitVector::and_not(const BitVector& other) {
  SUNBFS_CHECK(nbits_ == other.nbits_);
  for (size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
}

}  // namespace sunbfs
