#!/usr/bin/env python3
"""Audit relative links in the repo's markdown: every target must exist.

Usage:

    python3 tools/check_doc_links.py [--root .]

The docs cross-reference each other heavily (README -> docs/COMM.md ->
docs/OBSERVABILITY.md -> ...), and a rename or move silently strands
readers: nothing in the build touches markdown, so tier-1 stays green
while the tour dead-ends.  This script walks every tracked-looking
`*.md` file (skipping build trees and dot-directories) and audits two
kinds of reference:

* inline markdown links `[text](target)` — each relative target must
  resolve to an existing file or directory from the linking file's
  location.  External schemes (http/https/mailto) and pure in-page
  `#anchors` are skipped; `path#anchor` targets are checked for the path
  part only.  Fenced code blocks and inline code spans are stripped
  first so link-syntax *examples* don't trip the audit.
* backticked repo paths — the house style writes cross-references as
  `docs/COMM.md` or `src/sim/exchange.hpp` in code spans, not as
  markdown links.  Any code span matching `<known-top-dir>/<path>` with
  no placeholder characters must exist relative to the repo root.  A
  path naming a built runner (`examples/graph500_runner`) also passes
  when the matching `.cpp` source exists.

Exit: 0 clean, 1 on any broken reference, 2 when no markdown is found.
Stdlib only.
"""

import argparse
import re
import sys
from pathlib import Path

SKIP_DIRS = {"build", "build-tsan", ".git", ".github"}
SKIP_SCHEMES = ("http://", "https://", "mailto:")

LINK_RE = re.compile(r"\[[^\]\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)
CODE_SPAN_RE = re.compile(r"`([^`\n]*)`")

# Backticked repo paths: root-relative, starting at a known top-level
# directory, with no glob/placeholder characters.  `reports/` holds
# committed baselines the docs point CI at, so it is audited too.
PATH_TOP_DIRS = ("src", "docs", "tools", "tests", "bench", "examples",
                 "reports")
PATH_RE = re.compile(
    r"^(?:%s)/[A-Za-z0-9_./-]*$" % "|".join(PATH_TOP_DIRS))


def markdown_files(root: Path) -> list:
    out = []
    for path in sorted(root.rglob("*.md")):
        rel_parts = path.relative_to(root).parts
        if any(p in SKIP_DIRS or p.startswith(".") for p in rel_parts[:-1]):
            continue
        out.append(path)
    return out


def links_in(text: str) -> list:
    text = FENCE_RE.sub("", text)
    text = CODE_SPAN_RE.sub("", text)
    return LINK_RE.findall(text)


def backticked_paths_in(text: str) -> list:
    text = FENCE_RE.sub("", text)
    return [span for span in CODE_SPAN_RE.findall(text)
            if PATH_RE.match(span)]


def check_file(path: Path, root: Path) -> tuple:
    text = path.read_text()
    rel_name = path.relative_to(root)
    broken, checked = [], 0

    for target in links_in(text):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        checked += 1
        resolved = (path.parent / rel).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            broken.append(f"{rel_name}: [..]({target}) escapes the repo")
            continue
        if not resolved.exists():
            broken.append(f"{rel_name}: [..]({target}) -> missing "
                          f"{resolved.relative_to(root.resolve())}")

    for span in backticked_paths_in(text):
        checked += 1
        target = root / span
        if not (target.exists() or target.with_suffix(".cpp").exists()):
            broken.append(f"{rel_name}: `{span}` does not exist")

    return broken, checked


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parent.parent,
                    help="repository root to scan (default: the repo)")
    args = ap.parse_args()
    root = args.root

    files = markdown_files(root)
    if not files:
        print(f"check_doc_links: no markdown under {root}", file=sys.stderr)
        return 2

    broken = []
    nchecked = 0
    for path in files:
        bad, checked = check_file(path, root)
        broken.extend(bad)
        nchecked += checked

    if broken:
        print("check_doc_links: FAILED", file=sys.stderr)
        for line in broken:
            print(f"  {line}", file=sys.stderr)
        return 1
    print(f"check_doc_links: OK ({len(files)} files, "
          f"{nchecked} references)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
