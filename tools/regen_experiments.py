#!/usr/bin/env python3
"""Regenerate the measured numbers in EXPERIMENTS.md from bench metrics JSON.

Every bench binary accepts `--metrics-out PATH` and writes a
sunbfs.metrics/1 JSON report (see docs/OBSERVABILITY.md).  This script
reads those reports and rewrites the marked blocks of EXPERIMENTS.md so
the measured numbers in the document are provably the numbers a bench
actually produced, not hand-copied ones.

Pipeline (from the repo root):

    cmake --build build -j
    mkdir -p reports
    build/bench/bench_table1_partitioning  --metrics-out reports/bench_table1_partitioning.json
    build/bench/bench_fig11_comm_breakdown --metrics-out reports/bench_fig11_comm_breakdown.json
    python3 tools/regen_experiments.py --write     # rewrite EXPERIMENTS.md
    python3 tools/regen_experiments.py --check     # CI: fail if stale

Blocks are delimited in EXPERIMENTS.md by marker comments:

    <!-- regen:NAME begin (tool: BENCH) -->
    ...generated content...
    <!-- regen:NAME end -->

Only the content between markers is touched; surrounding prose is yours.
Stdlib only — no third-party dependencies.
"""

import argparse
import difflib
import json
import re
import sys
from pathlib import Path

SCHEMA = "sunbfs.metrics/1"

# ---------------------------------------------------------------------------
# report loading


def load_report(reports_dir: Path, tool: str) -> dict:
    path = reports_dir / f"{tool}.json"
    if not path.is_file():
        raise FileNotFoundError(
            f"{path} not found — run `build/bench/{tool} --metrics-out {path}` first"
        )
    doc = json.loads(path.read_text())
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    return doc


def gauge(doc: dict, key: str) -> float:
    return float(doc["gauges"][key])


def counter(doc: dict, key: str) -> int:
    return int(doc["counters"][key])


def info(doc: dict, key: str) -> str:
    return str(doc["info"][key])


# ---------------------------------------------------------------------------
# block generators — one per regen marker


def gen_table1(doc: dict) -> str:
    """Table 1 measured column: GTEPS + traffic per partitioning method."""
    rows = [
        # (slug, display name, paper column)
        ("1d_heavy_delegates", "1D + heavy delegates",
         "15.4–23.8 kGTEPS records (2014–16)"),
        ("2d_all_delegated", "2D", "38.6–103 kGTEPS records (2015–21)"),
        ("degree_aware_15d", "degree-aware 1.5D",
         "**180,792 GTEPS, 8× graph size**"),
        ("vanilla_1d", "vanilla 1D", "(infeasible at paper scale)"),
    ]
    scale, ranks = info(doc, "table1.scale"), info(doc, "table1.ranks")
    out = [f"| | paper | measured (scale {scale}, {ranks} ranks) | MB sent | inter-supernode MB |",
           "|---|---|---|---|---|"]
    for slug, name, paper in rows:
        g = gauge(doc, f"table1.{slug}.gteps")
        sent = counter(doc, f"table1.{slug}.bytes_sent") / 1e6
        inter = counter(doc, f"table1.{slug}.bytes_inter_supernode") / 1e6
        out.append(f"| {name} | {paper} | {g:.2f} GTEPS | {sent:.1f} | {inter:.1f} |")
    speedup = gauge(doc, "table1.speedup_vs_best_baseline")
    out.append("")
    out.append(f"1.5D / best delegation baseline = {speedup:.2f}× on this substrate "
               "(paper: 1.75× over the 2021 2D record, at 8× the graph size).")
    return "\n".join(out)


def gen_fig11(doc: dict) -> str:
    """Figure 11 measured shares by rank count."""
    ranks = sorted(
        {int(m.group(1)) for k in doc["gauges"]
         if (m := re.match(r"fig11\.ranks(\d+)\.", k))}
    )
    out = ["| ranks | compute | imbalance | alltoallv | allgather | reduce-scatter | allreduce |",
           "|---|---|---|---|---|---|---|"]
    for p in ranks:
        row = f"fig11.ranks{p}."
        cells = [f"{gauge(doc, row + col):.1f}%" for col in (
            "compute_pct", "imbalance_pct", "alltoallv_pct",
            "allgather_pct", "reduce_scatter_pct", "allreduce_pct")]
        out.append(f"| {p} | " + " | ".join(cells) + " |")
    first, last = f"fig11.ranks{ranks[0]}.", f"fig11.ranks{ranks[-1]}."
    imb = [gauge(doc, f"fig11.ranks{p}.imbalance_pct") for p in ranks]
    out.append("")
    out.append(
        f"Compute share falls {gauge(doc, first + 'compute_pct'):.0f}% → "
        f"{gauge(doc, last + 'compute_pct'):.0f}% from {ranks[0]} to {ranks[-1]} "
        f"ranks; alltoallv ({gauge(doc, first + 'alltoallv_pct'):.0f}% → "
        f"{gauge(doc, last + 'alltoallv_pct'):.0f}%) and the frontier-union "
        f"reductions ({gauge(doc, first + 'allreduce_pct'):.0f}% → "
        f"{gauge(doc, last + 'allreduce_pct'):.0f}%, surfaced as allreduce in "
        "this implementation — same mesh-wide union pattern) lead the "
        "collectives; the measured arrival-spread imbalance spans "
        f"{min(imb):.1f}–{max(imb):.1f}% (see the shape note below)."
    )
    return "\n".join(out)


def gen_tpr(doc: dict) -> str:
    """Threads-per-rank scaling of the headline pipeline (docs/PERF.md)."""
    tprs = sorted(
        {int(m.group(1)) for k in doc["gauges"]
         if (m := re.match(r"headline\.tpr(\d+)\.", k))}
    )
    if not tprs:
        raise KeyError("no headline.tprN.* gauges in the headline report — "
                       "re-run bench_headline_graph500 (it sweeps "
                       "SUNBFS_TPR_SWEEP, default 1,2,4)")
    base = gauge(doc, f"headline.tpr{tprs[0]}.wall_s")
    out = ["| threads/rank | BFS wall s | mean modeled s | GTEPS "
           "| wall speedup vs {} | steady staging allocs |".format(tprs[0]),
           "|---|---|---|---|---|---|"]
    steady = []
    for t in tprs:
        p = f"headline.tpr{t}."
        wall = gauge(doc, p + "wall_s")
        steady.append(counter(doc, p + "staging_allocs_steady"))
        out.append(
            f"| {t} | {wall:.3f} | {gauge(doc, p + 'modeled_s'):.6f} "
            f"| {gauge(doc, p + 'gteps'):.3f} | {base / wall:.2f}× "
            f"| {steady[-1]} |")
    out.append("")
    out.append(
        "Wall clock is host-dependent: on a host with at least "
        "2 × ranks hardware threads the sweep shows the intra-rank kernel "
        "speedup; on fewer (e.g. single-core CI) extra threads only add "
        "oversubscription cost, while the BFS output stays bit-identical "
        "and `comm.staging_allocs` stays at "
        f"{max(steady)} after the warmup root at every thread count.")
    return "\n".join(out)


def gen_exchange(doc: dict) -> str:
    """Exchange-backend ablation: measured bytes per plan (docs/COMM.md)."""
    combos = sorted(
        {(int(m.group(1)), m.group(2)) for k in doc["counters"]
         if (m := re.match(r"exchange\.ranks(\d+)\.([a-z0-9]+)\.stages$", k))}
    )
    if not combos:
        raise KeyError("no exchange.ranks<P>.<backend>.* metrics — re-run "
                       "bench_exchange --metrics-out reports/bench_exchange.json")
    order = {"direct": 0, "butterfly": 1, "2dca": 2}
    combos.sort(key=lambda c: (c[0], order.get(c[1], 9)))
    out = ["| ranks | backend | stages | alltoallv KB | inter-supernode KB "
           "| inter bytes vs direct | steady staging allocs |",
           "|---|---|---|---|---|---|---|"]
    best = None
    largest = combos[-1][0]
    for p, backend in combos:
        row = f"exchange.ranks{p}.{backend}."
        red = gauge(doc, row + "inter_reduction_pct")
        out.append(
            f"| {p} | {backend} | {counter(doc, row + 'stages')} "
            f"| {counter(doc, row + 'alltoallv_bytes') / 1e3:.1f} "
            f"| {counter(doc, row + 'alltoallv_inter_bytes') / 1e3:.1f} "
            f"| {'—' if backend == 'direct' else f'{-red:+.1f}%'} "
            f"| {counter(doc, row + 'staging_allocs_steady')} |")
        if p == largest and backend != "direct":
            if best is None or red > best[1]:
                best = (backend, red)
    out.append("")
    out.append(
        f"At the largest mesh ({largest} ranks) the staged plans cut the "
        "inter-supernode subset of the search alltoallv bytes below the "
        f"direct exchange — best: {best[0]}, −{best[1]:.1f}% — while paying "
        "more total (mostly cheap intra-supernode) bytes for the extra hops; "
        "output stays bit-identical and the staging pools stay "
        "allocation-free under every backend.")
    return "\n".join(out)


def gen_async(doc: dict) -> str:
    """Sync-vs-async crossover sweep (docs/PERF.md, bench_async_crossover)."""
    combos = sorted(
        {(m.group(1), m.group(2)) for k in doc["counters"]
         if (m := re.match(r"crossover\.(\w+)\.([\w.]+)\.rounds$", k))}
    )
    if not combos:
        raise KeyError("no crossover.<input>.<engine>.* metrics — re-run "
                       "bench_async_crossover --metrics-out "
                       "reports/bench_async_crossover.json")
    input_order = {"path8192": 0, "grid2x4096": 1, "torus64x64": 2}
    engine_order = {"1d": 0, "1.5d": 1, "async": 2}
    combos.sort(key=lambda c: (input_order.get(c[0], 9), c[0],
                               engine_order.get(c[1], 9)))
    out = ["| input | diameter | engine | rounds | collective calls "
           "| alltoallv KB | modeled total s |",
           "|---|---|---|---|---|---|---|"]
    ratios = []  # (input, 1d calls / async calls) on the gated lattices
    tax_key = None
    for inp, engine in combos:
        row = f"crossover.{inp}.{engine}."
        diameter = counter(doc, f"crossover.{inp}.diameter")
        out.append(
            f"| {inp} | {diameter if diameter else '~log n'} | {engine} "
            f"| {counter(doc, row + 'rounds')} "
            f"| {counter(doc, row + 'collective_calls')} "
            f"| {counter(doc, row + 'alltoallv_bytes') / 1e3:.1f} "
            f"| {gauge(doc, row + 'modeled_total_s'):.6f} |")
        if engine == "async" and diameter >= 4096:
            ratios.append((inp,
                           counter(doc, f"crossover.{inp}.1d.collective_calls")
                           / counter(doc, row + "collective_calls")))
        if engine == "async" and f"crossover.{inp}.async_tax_vs_best_sync" \
                in doc["gauges"]:
            tax_key = f"crossover.{inp}.async_tax_vs_best_sync"
    out.append("")
    ratio_txt = ", ".join(f"{inp}: {r:.0f}×" for inp, r in ratios)
    tax = gauge(doc, tax_key)
    out.append(
        "On the diameter ≥ 4096 lattices the relaxed engine finishes in "
        f"{ratio_txt} fewer collective calls than level-synchronous 1D "
        "(gate: ≥ 10×) with lower modeled time; on R-MAT, where level "
        "synchrony is already cheap, the relaxation tax vs the best sync "
        f"engine is {tax:.2f}× (gate: ≤ 1.25×).")
    return "\n".join(out)


GENERATORS = {
    # marker name -> (bench tool, generator)
    "table1": ("bench_table1_partitioning", gen_table1),
    "fig11": ("bench_fig11_comm_breakdown", gen_fig11),
    "tpr": ("bench_headline_graph500", gen_tpr),
    "exchange": ("bench_exchange", gen_exchange),
    "async": ("bench_async_crossover", gen_async),
}

MARKER_RE = re.compile(
    r"<!-- regen:(?P<name>[\w-]+) begin \(tool: (?P<tool>[\w-]+)\) -->\n"
    r"(?P<body>.*?)"
    r"<!-- regen:(?P=name) end -->",
    re.DOTALL,
)


# ---------------------------------------------------------------------------
# driver


def regenerate(text: str, reports_dir: Path) -> str:
    seen = set()

    def replace(m: re.Match) -> str:
        name, tool = m.group("name"), m.group("tool")
        if name not in GENERATORS:
            raise KeyError(f"EXPERIMENTS.md references unknown regen block {name!r}")
        expected_tool, gen = GENERATORS[name]
        if tool != expected_tool:
            raise ValueError(
                f"block {name!r} names tool {tool!r}, generator expects {expected_tool!r}")
        seen.add(name)
        body = gen(load_report(reports_dir, tool))
        return (f"<!-- regen:{name} begin (tool: {tool}) -->\n"
                f"{body}\n"
                f"<!-- regen:{name} end -->")

    out = MARKER_RE.sub(replace, text)
    missing = set(GENERATORS) - seen
    if missing:
        raise KeyError(f"EXPERIMENTS.md is missing regen markers for: {sorted(missing)}")
    return out


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reports", type=Path, default=Path("reports"),
                    help="directory of bench --metrics-out JSON files (default: reports/)")
    ap.add_argument("--experiments", type=Path, default=Path("EXPERIMENTS.md"))
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--write", action="store_true",
                      help="rewrite EXPERIMENTS.md in place")
    mode.add_argument("--check", action="store_true",
                      help="exit 1 (with a diff) if EXPERIMENTS.md is stale [default]")
    args = ap.parse_args()

    old = args.experiments.read_text()
    try:
        new = regenerate(old, args.reports)
    except (FileNotFoundError, KeyError, ValueError) as e:
        print(f"regen_experiments: {e}", file=sys.stderr)
        return 2

    if args.write:
        if new != old:
            args.experiments.write_text(new)
            print(f"regen_experiments: rewrote {args.experiments}")
        else:
            print(f"regen_experiments: {args.experiments} already up to date")
        return 0

    if new == old:
        print(f"regen_experiments: {args.experiments} is up to date")
        return 0
    sys.stdout.writelines(difflib.unified_diff(
        old.splitlines(keepends=True), new.splitlines(keepends=True),
        fromfile=str(args.experiments), tofile=f"{args.experiments} (regenerated)"))
    print("regen_experiments: STALE — run with --write to update", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
