#!/usr/bin/env python3
"""Compare two sunbfs.bench/1 summaries and fail on regressions.

Usage:

    python3 tools/bench_compare.py old.json new.json [--max-regress PCT]

`old.json` / `new.json` are the BENCH_*.json files the bench binaries write
(e.g. bench_headline_graph500 -> BENCH_headline.json).  The comparison runs
over the *intersection* of the two "metrics" objects; keys present on only
one side are reported as warnings, not errors, so a bench that grows or
drops a metric (a new load point, say) still compares cleanly against older
baselines.  A metric regresses when it moves in its bad direction (lower
GTEPS/QPS, higher latency, wall/modeled time or peak RSS) by more than
--max-regress percent (default 10).  Exit status: 0 when no shared metric
regresses, 1 on regression, 2 on malformed input or an empty intersection.
Stdlib only (tools/test_bench_compare.py covers the contract).
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "sunbfs.bench/1"

# Substrings marking larger-is-better metrics (throughputs, savings, and the
# distance-oracle cache effectiveness keys hit_rate/hits); everything else is
# smaller-is-better (times, latencies, memory, and the wire byte counts of
# the encoding ablation).  Latency quantiles (the p99 keys of the service
# bench's fault-mode points) fall in the default smaller-is-better class.
HIGHER_IS_BETTER_SUBSTRINGS = ("gteps", "qps", "teps", "reduction", "saved",
                               "hit_rate", "hits")

# Fault-mode counters move in coarse steps (one extra retry wave under a
# reshaped fault schedule multiplies the count), so they compare at a wider
# band: --max-regress times the matching multiplier.  Matched by key
# *prefix* — the fault points' latency keys carry "shed" in their point-name
# suffix (latency_p99_ms_fault_shed) and must gate at the normal band.
TOLERANCE_MULTIPLIER_PREFIXES = {"retries_": 3.0, "sheds_": 3.0,
                                 "failed_": 3.0}


def higher_is_better(key: str) -> bool:
    k = key.lower()
    return any(s in k for s in HIGHER_IS_BETTER_SUBSTRINGS)


def tolerance_multiplier(key: str) -> float:
    k = key.lower()
    mult = 1.0
    for prefix, m in TOLERANCE_MULTIPLIER_PREFIXES.items():
        if k.startswith(prefix):
            mult = max(mult, m)
    return mult


def load(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise ValueError(f"{path}: {e}") from e
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        raise ValueError(f"{path}: missing or empty 'metrics' object")
    return doc


def regression_pct(key: str, old: float, new: float) -> float:
    """Signed percent change in the metric's *bad* direction (>0 = worse)."""
    if old == 0:
        return 0.0
    change = (new - old) / abs(old) * 100.0
    return -change if higher_is_better(key) else change


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", type=Path, help="baseline BENCH_*.json")
    ap.add_argument("new", type=Path, help="candidate BENCH_*.json")
    ap.add_argument("--max-regress", type=float, default=10.0, metavar="PCT",
                    help="allowed movement in the bad direction, percent "
                         "(default: 10)")
    args = ap.parse_args()

    try:
        old_doc, new_doc = load(args.old), load(args.new)
    except ValueError as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    if old_doc.get("bench") != new_doc.get("bench"):
        print(f"bench_compare: comparing different benches "
              f"({old_doc.get('bench')!r} vs {new_doc.get('bench')!r})",
              file=sys.stderr)
        return 2

    old_m, new_m = old_doc["metrics"], new_doc["metrics"]
    for key in sorted(set(old_m) - set(new_m)):
        print(f"bench_compare: warning: {key!r} only in baseline "
              f"{args.old} — skipped", file=sys.stderr)
    for key in sorted(set(new_m) - set(old_m)):
        print(f"bench_compare: warning: {key!r} only in candidate "
              f"{args.new} — skipped", file=sys.stderr)
    shared = sorted(set(old_m) & set(new_m))
    if not shared:
        print("bench_compare: no metrics in common", file=sys.stderr)
        return 2

    failed = []
    print(f"{'metric':<18} {'old':>14} {'new':>14} {'worse by':>10}")
    for key in shared:
        old_v, new_v = float(old_m[key]), float(new_m[key])
        pct = regression_pct(key, old_v, new_v)
        allowed = args.max_regress * tolerance_multiplier(key)
        verdict = ""
        if pct > allowed:
            failed.append(key)
            verdict = "  REGRESSED"
        print(f"{key:<18} {old_v:>14.6g} {new_v:>14.6g} {pct:>+9.1f}%{verdict}")

    if failed:
        print(f"bench_compare: REGRESSION in {', '.join(failed)} "
              f"(> {args.max_regress:.1f}% worse)", file=sys.stderr)
        return 1
    print(f"bench_compare: OK (no shared metric more than "
          f"{args.max_regress:.1f}% worse)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
