#!/usr/bin/env python3
"""Audit ctest labels: every registered test must carry at least one label
from the known list.

Usage:

    python3 tools/check_test_labels.py [--build-dir build]

CI's label-driven jobs (ctest -L tsan / faults / service / differential)
silently run *nothing* when a suite is unlabeled or typo-labeled.  The
tests/CMakeLists.txt helper already rejects unknown labels at configure
time; this script re-audits the *generated* ctest metadata
(`ctest --show-only=json-v1`), so a test registered outside the helper — or
a helper edit that drops the validation — still fails CI.  The known-label
list is parsed from tests/CMakeLists.txt's SUNBFS_KNOWN_TEST_LABELS so
there is exactly one place to extend.  Exit: 0 clean, 1 on any unlabeled or
unknown-labeled test, 2 when ctest metadata cannot be read.  Stdlib only.
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path


def known_labels(repo_root: Path) -> set:
    text = (repo_root / "tests" / "CMakeLists.txt").read_text()
    m = re.search(r"set\(SUNBFS_KNOWN_TEST_LABELS\s+([^)]*)\)", text)
    if not m:
        raise ValueError("SUNBFS_KNOWN_TEST_LABELS not found in tests/CMakeLists.txt")
    labels = set(m.group(1).split())
    if not labels:
        raise ValueError("SUNBFS_KNOWN_TEST_LABELS is empty")
    return labels


def ctest_tests(build_dir: Path) -> list:
    proc = subprocess.run(
        ["ctest", "--show-only=json-v1"], cwd=build_dir,
        capture_output=True, text=True)
    if proc.returncode != 0:
        raise ValueError(f"ctest --show-only failed in {build_dir}:\n{proc.stderr}")
    return json.loads(proc.stdout).get("tests", [])


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", type=Path, default=Path("build"),
                    help="CMake build directory (default: build)")
    args = ap.parse_args()
    repo_root = Path(__file__).resolve().parent.parent

    try:
        known = known_labels(repo_root)
        tests = ctest_tests(args.build_dir)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"check_test_labels: {e}", file=sys.stderr)
        return 2
    if not tests:
        print("check_test_labels: ctest reported no tests", file=sys.stderr)
        return 2

    bad = []
    for t in tests:
        name = t.get("name", "?")
        labels = []
        for prop in t.get("properties", []):
            if prop.get("name") == "LABELS":
                labels = prop.get("value", [])
        if not labels:
            bad.append(f"{name}: no labels")
        for label in labels:
            if label not in known:
                bad.append(f"{name}: unknown label '{label}'")

    if bad:
        print("check_test_labels: FAILED", file=sys.stderr)
        for line in bad:
            print(f"  {line}", file=sys.stderr)
        print(f"  known labels: {' '.join(sorted(known))}", file=sys.stderr)
        return 1
    print(f"check_test_labels: OK ({len(tests)} tests, "
          f"{len(known)} known labels)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
