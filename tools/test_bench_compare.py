#!/usr/bin/env python3
"""Unit tests for tools/bench_compare.py (stdlib only; CI runs this file
directly: `python3 tools/test_bench_compare.py`).

The contract under test: comparison runs over the intersection of the two
metrics objects (asymmetric keys warn, they do not error), "qps"/"gteps"
metrics are higher-is-better, regressions past --max-regress exit 1, and
malformed input or an empty intersection exits 2.
"""

import io
import json
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import bench_compare  # noqa: E402


def run_compare(old: dict, new: dict, *extra_args: str):
    """Run bench_compare.main() on two temp JSON docs; return (code, out, err)."""
    with tempfile.TemporaryDirectory() as d:
        old_p, new_p = Path(d) / "old.json", Path(d) / "new.json"
        old_p.write_text(json.dumps(old))
        new_p.write_text(json.dumps(new))
        argv = sys.argv
        sys.argv = ["bench_compare.py", str(old_p), str(new_p), *extra_args]
        out, err = io.StringIO(), io.StringIO()
        try:
            with redirect_stdout(out), redirect_stderr(err):
                code = bench_compare.main()
        finally:
            sys.argv = argv
        return code, out.getvalue(), err.getvalue()


def doc(metrics: dict, bench: str = "demo", schema: str = "sunbfs.bench/1"):
    return {"schema": schema, "bench": bench, "metrics": metrics}


class BenchCompareTest(unittest.TestCase):
    def test_identical_ok(self):
        code, out, _ = run_compare(doc({"gteps": 1.0}), doc({"gteps": 1.0}))
        self.assertEqual(code, 0)
        self.assertIn("OK", out)

    def test_asymmetric_keys_warn_not_error(self):
        # Baseline lacks a metric the candidate has (and vice versa): the
        # shared key still compares, the odd ones warn on stderr, exit 0.
        old = doc({"gteps": 1.0, "old_only_s": 2.0})
        new = doc({"gteps": 1.0, "qps_new_point": 500.0})
        code, out, err = run_compare(old, new)
        self.assertEqual(code, 0)
        self.assertIn("warning", err)
        self.assertIn("old_only_s", err)
        self.assertIn("qps_new_point", err)
        self.assertIn("gteps", out)

    def test_no_shared_keys_is_error(self):
        code, _, err = run_compare(doc({"a": 1.0}), doc({"b": 1.0}))
        self.assertEqual(code, 2)
        self.assertIn("no metrics in common", err)

    def test_lower_is_better_regression(self):
        code, out, _ = run_compare(doc({"wall_s": 1.0}), doc({"wall_s": 1.5}))
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)

    def test_higher_is_better_qps_regression(self):
        # qps dropping is a regression; qps rising is not.
        code, _, _ = run_compare(doc({"qps_open_low": 1000.0}),
                                 doc({"qps_open_low": 500.0}))
        self.assertEqual(code, 1)
        code, _, _ = run_compare(doc({"qps_open_low": 1000.0}),
                                 doc({"qps_open_low": 2000.0}))
        self.assertEqual(code, 0)

    def test_higher_is_better_gteps_improvement_ok(self):
        code, _, _ = run_compare(doc({"gteps": 1.0}), doc({"gteps": 2.0}))
        self.assertEqual(code, 0)

    def test_max_regress_threshold(self):
        old, new = doc({"wall_s": 1.0}), doc({"wall_s": 1.15})
        code, _, _ = run_compare(old, new)  # 15% > default 10%
        self.assertEqual(code, 1)
        code, _, _ = run_compare(old, new, "--max-regress", "20")
        self.assertEqual(code, 0)

    def test_schema_mismatch_is_error(self):
        code, _, err = run_compare(doc({"gteps": 1.0}, schema="bogus/9"),
                                   doc({"gteps": 1.0}))
        self.assertEqual(code, 2)
        self.assertIn("schema", err)

    def test_bench_mismatch_is_error(self):
        code, _, err = run_compare(doc({"gteps": 1.0}, bench="a"),
                                   doc({"gteps": 1.0}, bench="b"))
        self.assertEqual(code, 2)
        self.assertIn("different benches", err)

    def test_higher_is_better_classifier(self):
        self.assertTrue(bench_compare.higher_is_better("qps_open_low"))
        self.assertTrue(bench_compare.higher_is_better("harmonic_GTEPS"))
        self.assertTrue(bench_compare.higher_is_better("alltoallv_reduction_pct"))
        self.assertTrue(bench_compare.higher_is_better("encoding_saved_bytes"))
        self.assertFalse(bench_compare.higher_is_better("latency_p99_ms"))
        self.assertFalse(bench_compare.higher_is_better("peak_rss_bytes"))
        self.assertFalse(bench_compare.higher_is_better("alltoallv_bytes"))

    def test_lower_is_better_wire_bytes_regression(self):
        # The encoding ablation's byte counts: growth is a regression, a
        # shrink is an improvement.
        old, new = doc({"alltoallv_bytes": 100000.0}), doc({"alltoallv_bytes": 130000.0})
        code, out, _ = run_compare(old, new)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        code, _, _ = run_compare(new, old)
        self.assertEqual(code, 0)

    def test_fault_mode_counters_get_wider_band(self):
        # Fault-mode counters (retries/sheds/failed of the service bench's
        # fault points) compare at 3x --max-regress: +25% retries passes the
        # default 10% gate, +40% still fails.
        code, _, _ = run_compare(doc({"retries_fault_recover": 20.0}),
                                 doc({"retries_fault_recover": 25.0}))
        self.assertEqual(code, 0)
        code, out, _ = run_compare(doc({"retries_fault_recover": 20.0}),
                                   doc({"retries_fault_recover": 28.0}))
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        code, _, _ = run_compare(doc({"sheds_fault_shed": 40.0}),
                                 doc({"sheds_fault_shed": 50.0}))
        self.assertEqual(code, 0)

    def test_fault_mode_p99_stays_tight_and_lower_is_better(self):
        # The fault points' latency quantiles get NO widened band: the whole
        # point of shedding is a bounded p99, so it gates like any latency.
        old = doc({"latency_p99_ms_fault_shed": 5.0})
        new = doc({"latency_p99_ms_fault_shed": 6.0})
        code, out, _ = run_compare(old, new)
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        code, _, _ = run_compare(new, old)  # improvement passes
        self.assertEqual(code, 0)

    def test_tolerance_multiplier_classifier(self):
        self.assertEqual(bench_compare.tolerance_multiplier("retries_x"), 3.0)
        self.assertEqual(bench_compare.tolerance_multiplier("sheds_fault"), 3.0)
        self.assertEqual(bench_compare.tolerance_multiplier("failed_open"), 3.0)
        self.assertEqual(
            bench_compare.tolerance_multiplier("latency_p99_ms_fault_shed"),
            1.0)
        self.assertEqual(bench_compare.tolerance_multiplier("qps_open"), 1.0)

    def test_higher_is_better_cache_keys(self):
        # The distance-oracle cache keys: a falling hit rate or hit count is
        # a regression, a rise is an improvement.
        self.assertTrue(bench_compare.higher_is_better("hit_rate_zipf_cache"))
        self.assertTrue(bench_compare.higher_is_better("hits_zipf_cache"))
        code, out, _ = run_compare(doc({"hit_rate_zipf_cache": 0.6}),
                                   doc({"hit_rate_zipf_cache": 0.4}))
        self.assertEqual(code, 1)
        self.assertIn("REGRESSED", out)
        code, _, _ = run_compare(doc({"hit_rate_zipf_cache": 0.6}),
                                 doc({"hit_rate_zipf_cache": 0.8}))
        self.assertEqual(code, 0)
        code, _, _ = run_compare(doc({"hits_zipf_cache": 50.0}),
                                 doc({"hits_zipf_cache": 40.0}))
        self.assertEqual(code, 1)

    def test_higher_is_better_reduction_pct_regression(self):
        # A shrinking reduction percentage means the encoder got worse.
        code, _, _ = run_compare(doc({"alltoallv_reduction_pct": 50.0}),
                                 doc({"alltoallv_reduction_pct": 30.0}))
        self.assertEqual(code, 1)
        code, _, _ = run_compare(doc({"alltoallv_reduction_pct": 50.0}),
                                 doc({"alltoallv_reduction_pct": 60.0}))
        self.assertEqual(code, 0)


if __name__ == "__main__":
    unittest.main()
