file(REMOVE_RECURSE
  "CMakeFiles/bench_kernel3_sssp.dir/bench_kernel3_sssp.cpp.o"
  "CMakeFiles/bench_kernel3_sssp.dir/bench_kernel3_sssp.cpp.o.d"
  "bench_kernel3_sssp"
  "bench_kernel3_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kernel3_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
