# Empty dependencies file for bench_kernel3_sssp.
# This may be replaced when dependencies are built.
