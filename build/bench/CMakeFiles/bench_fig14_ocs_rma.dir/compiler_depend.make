# Empty compiler generated dependencies file for bench_fig14_ocs_rma.
# This may be replaced when dependencies are built.
