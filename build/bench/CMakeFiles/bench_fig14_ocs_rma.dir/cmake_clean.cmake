file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_ocs_rma.dir/bench_fig14_ocs_rma.cpp.o"
  "CMakeFiles/bench_fig14_ocs_rma.dir/bench_fig14_ocs_rma.cpp.o.d"
  "bench_fig14_ocs_rma"
  "bench_fig14_ocs_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_ocs_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
