# Empty dependencies file for bench_fig05_activation.
# This may be replaced when dependencies are built.
