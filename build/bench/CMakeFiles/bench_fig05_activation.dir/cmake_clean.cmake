file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_activation.dir/bench_fig05_activation.cpp.o"
  "CMakeFiles/bench_fig05_activation.dir/bench_fig05_activation.cpp.o.d"
  "bench_fig05_activation"
  "bench_fig05_activation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_activation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
