# Empty dependencies file for bench_fig09_weak_scaling.
# This may be replaced when dependencies are built.
