file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ablation.dir/bench_fig15_ablation.cpp.o"
  "CMakeFiles/bench_fig15_ablation.dir/bench_fig15_ablation.cpp.o.d"
  "bench_fig15_ablation"
  "bench_fig15_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
