# Empty compiler generated dependencies file for bench_fig15_ablation.
# This may be replaced when dependencies are built.
