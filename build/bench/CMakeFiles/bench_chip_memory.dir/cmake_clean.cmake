file(REMOVE_RECURSE
  "CMakeFiles/bench_chip_memory.dir/bench_chip_memory.cpp.o"
  "CMakeFiles/bench_chip_memory.dir/bench_chip_memory.cpp.o.d"
  "bench_chip_memory"
  "bench_chip_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chip_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
