# Empty dependencies file for bench_chip_memory.
# This may be replaced when dependencies are built.
