# Empty dependencies file for bench_fig12_thresholds.
# This may be replaced when dependencies are built.
