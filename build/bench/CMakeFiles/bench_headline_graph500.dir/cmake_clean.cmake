file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_graph500.dir/bench_headline_graph500.cpp.o"
  "CMakeFiles/bench_headline_graph500.dir/bench_headline_graph500.cpp.o.d"
  "bench_headline_graph500"
  "bench_headline_graph500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_graph500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
