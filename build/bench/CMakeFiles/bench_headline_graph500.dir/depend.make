# Empty dependencies file for bench_headline_graph500.
# This may be replaced when dependencies are built.
