# Empty compiler generated dependencies file for sunbfs_analytics.
# This may be replaced when dependencies are built.
