file(REMOVE_RECURSE
  "libsunbfs_analytics.a"
)
