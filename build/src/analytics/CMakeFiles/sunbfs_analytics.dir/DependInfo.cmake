
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/cc.cpp" "src/analytics/CMakeFiles/sunbfs_analytics.dir/cc.cpp.o" "gcc" "src/analytics/CMakeFiles/sunbfs_analytics.dir/cc.cpp.o.d"
  "/root/repo/src/analytics/delta_stepping.cpp" "src/analytics/CMakeFiles/sunbfs_analytics.dir/delta_stepping.cpp.o" "gcc" "src/analytics/CMakeFiles/sunbfs_analytics.dir/delta_stepping.cpp.o.d"
  "/root/repo/src/analytics/pagerank.cpp" "src/analytics/CMakeFiles/sunbfs_analytics.dir/pagerank.cpp.o" "gcc" "src/analytics/CMakeFiles/sunbfs_analytics.dir/pagerank.cpp.o.d"
  "/root/repo/src/analytics/sssp.cpp" "src/analytics/CMakeFiles/sunbfs_analytics.dir/sssp.cpp.o" "gcc" "src/analytics/CMakeFiles/sunbfs_analytics.dir/sssp.cpp.o.d"
  "/root/repo/src/analytics/sssp_runner.cpp" "src/analytics/CMakeFiles/sunbfs_analytics.dir/sssp_runner.cpp.o" "gcc" "src/analytics/CMakeFiles/sunbfs_analytics.dir/sssp_runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sunbfs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sunbfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sunbfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sunbfs_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/sunbfs_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/sunbfs_chip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
