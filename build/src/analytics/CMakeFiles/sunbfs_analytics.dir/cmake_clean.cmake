file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_analytics.dir/cc.cpp.o"
  "CMakeFiles/sunbfs_analytics.dir/cc.cpp.o.d"
  "CMakeFiles/sunbfs_analytics.dir/delta_stepping.cpp.o"
  "CMakeFiles/sunbfs_analytics.dir/delta_stepping.cpp.o.d"
  "CMakeFiles/sunbfs_analytics.dir/pagerank.cpp.o"
  "CMakeFiles/sunbfs_analytics.dir/pagerank.cpp.o.d"
  "CMakeFiles/sunbfs_analytics.dir/sssp.cpp.o"
  "CMakeFiles/sunbfs_analytics.dir/sssp.cpp.o.d"
  "CMakeFiles/sunbfs_analytics.dir/sssp_runner.cpp.o"
  "CMakeFiles/sunbfs_analytics.dir/sssp_runner.cpp.o.d"
  "libsunbfs_analytics.a"
  "libsunbfs_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
