file(REMOVE_RECURSE
  "libsunbfs_bfs.a"
)
