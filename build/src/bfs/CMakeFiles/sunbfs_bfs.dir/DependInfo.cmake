
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bfs/bfs15d.cpp" "src/bfs/CMakeFiles/sunbfs_bfs.dir/bfs15d.cpp.o" "gcc" "src/bfs/CMakeFiles/sunbfs_bfs.dir/bfs15d.cpp.o.d"
  "/root/repo/src/bfs/bfs1d.cpp" "src/bfs/CMakeFiles/sunbfs_bfs.dir/bfs1d.cpp.o" "gcc" "src/bfs/CMakeFiles/sunbfs_bfs.dir/bfs1d.cpp.o.d"
  "/root/repo/src/bfs/runner.cpp" "src/bfs/CMakeFiles/sunbfs_bfs.dir/runner.cpp.o" "gcc" "src/bfs/CMakeFiles/sunbfs_bfs.dir/runner.cpp.o.d"
  "/root/repo/src/bfs/segmenting.cpp" "src/bfs/CMakeFiles/sunbfs_bfs.dir/segmenting.cpp.o" "gcc" "src/bfs/CMakeFiles/sunbfs_bfs.dir/segmenting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sunbfs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sunbfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sunbfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sunbfs_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/sunbfs_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/sunbfs_sort.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
