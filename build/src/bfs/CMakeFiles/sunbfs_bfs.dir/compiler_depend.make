# Empty compiler generated dependencies file for sunbfs_bfs.
# This may be replaced when dependencies are built.
