file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_bfs.dir/bfs15d.cpp.o"
  "CMakeFiles/sunbfs_bfs.dir/bfs15d.cpp.o.d"
  "CMakeFiles/sunbfs_bfs.dir/bfs1d.cpp.o"
  "CMakeFiles/sunbfs_bfs.dir/bfs1d.cpp.o.d"
  "CMakeFiles/sunbfs_bfs.dir/runner.cpp.o"
  "CMakeFiles/sunbfs_bfs.dir/runner.cpp.o.d"
  "CMakeFiles/sunbfs_bfs.dir/segmenting.cpp.o"
  "CMakeFiles/sunbfs_bfs.dir/segmenting.cpp.o.d"
  "libsunbfs_bfs.a"
  "libsunbfs_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
