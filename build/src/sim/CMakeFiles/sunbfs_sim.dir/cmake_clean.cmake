file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_sim.dir/barrier.cpp.o"
  "CMakeFiles/sunbfs_sim.dir/barrier.cpp.o.d"
  "CMakeFiles/sunbfs_sim.dir/comm.cpp.o"
  "CMakeFiles/sunbfs_sim.dir/comm.cpp.o.d"
  "CMakeFiles/sunbfs_sim.dir/comm_stats.cpp.o"
  "CMakeFiles/sunbfs_sim.dir/comm_stats.cpp.o.d"
  "CMakeFiles/sunbfs_sim.dir/fault.cpp.o"
  "CMakeFiles/sunbfs_sim.dir/fault.cpp.o.d"
  "CMakeFiles/sunbfs_sim.dir/runtime.cpp.o"
  "CMakeFiles/sunbfs_sim.dir/runtime.cpp.o.d"
  "CMakeFiles/sunbfs_sim.dir/topology.cpp.o"
  "CMakeFiles/sunbfs_sim.dir/topology.cpp.o.d"
  "libsunbfs_sim.a"
  "libsunbfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
