
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/barrier.cpp" "src/sim/CMakeFiles/sunbfs_sim.dir/barrier.cpp.o" "gcc" "src/sim/CMakeFiles/sunbfs_sim.dir/barrier.cpp.o.d"
  "/root/repo/src/sim/comm.cpp" "src/sim/CMakeFiles/sunbfs_sim.dir/comm.cpp.o" "gcc" "src/sim/CMakeFiles/sunbfs_sim.dir/comm.cpp.o.d"
  "/root/repo/src/sim/comm_stats.cpp" "src/sim/CMakeFiles/sunbfs_sim.dir/comm_stats.cpp.o" "gcc" "src/sim/CMakeFiles/sunbfs_sim.dir/comm_stats.cpp.o.d"
  "/root/repo/src/sim/fault.cpp" "src/sim/CMakeFiles/sunbfs_sim.dir/fault.cpp.o" "gcc" "src/sim/CMakeFiles/sunbfs_sim.dir/fault.cpp.o.d"
  "/root/repo/src/sim/runtime.cpp" "src/sim/CMakeFiles/sunbfs_sim.dir/runtime.cpp.o" "gcc" "src/sim/CMakeFiles/sunbfs_sim.dir/runtime.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/sim/CMakeFiles/sunbfs_sim.dir/topology.cpp.o" "gcc" "src/sim/CMakeFiles/sunbfs_sim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sunbfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
