# Empty dependencies file for sunbfs_sim.
# This may be replaced when dependencies are built.
