file(REMOVE_RECURSE
  "libsunbfs_sim.a"
)
