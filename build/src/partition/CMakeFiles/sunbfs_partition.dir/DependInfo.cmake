
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/classify.cpp" "src/partition/CMakeFiles/sunbfs_partition.dir/classify.cpp.o" "gcc" "src/partition/CMakeFiles/sunbfs_partition.dir/classify.cpp.o.d"
  "/root/repo/src/partition/part15d.cpp" "src/partition/CMakeFiles/sunbfs_partition.dir/part15d.cpp.o" "gcc" "src/partition/CMakeFiles/sunbfs_partition.dir/part15d.cpp.o.d"
  "/root/repo/src/partition/part1d.cpp" "src/partition/CMakeFiles/sunbfs_partition.dir/part1d.cpp.o" "gcc" "src/partition/CMakeFiles/sunbfs_partition.dir/part1d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/sunbfs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sunbfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sunbfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/sunbfs_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/sunbfs_chip.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
