file(REMOVE_RECURSE
  "libsunbfs_partition.a"
)
