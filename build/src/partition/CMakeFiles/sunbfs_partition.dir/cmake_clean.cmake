file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_partition.dir/classify.cpp.o"
  "CMakeFiles/sunbfs_partition.dir/classify.cpp.o.d"
  "CMakeFiles/sunbfs_partition.dir/part15d.cpp.o"
  "CMakeFiles/sunbfs_partition.dir/part15d.cpp.o.d"
  "CMakeFiles/sunbfs_partition.dir/part1d.cpp.o"
  "CMakeFiles/sunbfs_partition.dir/part1d.cpp.o.d"
  "libsunbfs_partition.a"
  "libsunbfs_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
