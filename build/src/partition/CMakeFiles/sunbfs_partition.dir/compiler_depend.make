# Empty compiler generated dependencies file for sunbfs_partition.
# This may be replaced when dependencies are built.
