# Empty dependencies file for sunbfs_sort.
# This may be replaced when dependencies are built.
