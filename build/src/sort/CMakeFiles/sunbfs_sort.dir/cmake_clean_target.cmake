file(REMOVE_RECURSE
  "libsunbfs_sort.a"
)
