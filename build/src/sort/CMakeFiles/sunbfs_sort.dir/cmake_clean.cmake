file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_sort.dir/common.cpp.o"
  "CMakeFiles/sunbfs_sort.dir/common.cpp.o.d"
  "libsunbfs_sort.a"
  "libsunbfs_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
