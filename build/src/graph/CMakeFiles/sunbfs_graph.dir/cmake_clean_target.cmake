file(REMOVE_RECURSE
  "libsunbfs_graph.a"
)
