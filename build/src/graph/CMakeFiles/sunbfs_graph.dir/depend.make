# Empty dependencies file for sunbfs_graph.
# This may be replaced when dependencies are built.
