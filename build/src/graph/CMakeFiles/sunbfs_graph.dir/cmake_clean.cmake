file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_graph.dir/csr.cpp.o"
  "CMakeFiles/sunbfs_graph.dir/csr.cpp.o.d"
  "CMakeFiles/sunbfs_graph.dir/io.cpp.o"
  "CMakeFiles/sunbfs_graph.dir/io.cpp.o.d"
  "CMakeFiles/sunbfs_graph.dir/rmat.cpp.o"
  "CMakeFiles/sunbfs_graph.dir/rmat.cpp.o.d"
  "CMakeFiles/sunbfs_graph.dir/validate.cpp.o"
  "CMakeFiles/sunbfs_graph.dir/validate.cpp.o.d"
  "libsunbfs_graph.a"
  "libsunbfs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
