# Empty compiler generated dependencies file for sunbfs_support.
# This may be replaced when dependencies are built.
