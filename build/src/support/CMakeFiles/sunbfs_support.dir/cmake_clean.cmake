file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_support.dir/bitvector.cpp.o"
  "CMakeFiles/sunbfs_support.dir/bitvector.cpp.o.d"
  "CMakeFiles/sunbfs_support.dir/histogram.cpp.o"
  "CMakeFiles/sunbfs_support.dir/histogram.cpp.o.d"
  "CMakeFiles/sunbfs_support.dir/log.cpp.o"
  "CMakeFiles/sunbfs_support.dir/log.cpp.o.d"
  "CMakeFiles/sunbfs_support.dir/thread_pool.cpp.o"
  "CMakeFiles/sunbfs_support.dir/thread_pool.cpp.o.d"
  "libsunbfs_support.a"
  "libsunbfs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
