file(REMOVE_RECURSE
  "libsunbfs_support.a"
)
