file(REMOVE_RECURSE
  "libsunbfs_chip.a"
)
