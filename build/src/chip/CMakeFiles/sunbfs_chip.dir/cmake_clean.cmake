file(REMOVE_RECURSE
  "CMakeFiles/sunbfs_chip.dir/chip.cpp.o"
  "CMakeFiles/sunbfs_chip.dir/chip.cpp.o.d"
  "libsunbfs_chip.a"
  "libsunbfs_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sunbfs_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
