# Empty dependencies file for sunbfs_chip.
# This may be replaced when dependencies are built.
