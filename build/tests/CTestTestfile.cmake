# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;12;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_chip "/root/repo/build/tests/test_chip")
set_tests_properties(test_chip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;13;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sort "/root/repo/build/tests/test_sort")
set_tests_properties(test_sort PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;14;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_graph "/root/repo/build/tests/test_graph")
set_tests_properties(test_graph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;15;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_partition "/root/repo/build/tests/test_partition")
set_tests_properties(test_partition PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_bfs "/root/repo/build/tests/test_bfs")
set_tests_properties(test_bfs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;17;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fault "/root/repo/build/tests/test_fault")
set_tests_properties(test_fault PROPERTIES  LABELS "faults" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;18;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_analytics "/root/repo/build/tests/test_analytics")
set_tests_properties(test_analytics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;21;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_stress "/root/repo/build/tests/test_stress")
set_tests_properties(test_stress PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;22;sunbfs_test;/root/repo/tests/CMakeLists.txt;0;")
