
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fault.cpp" "tests/CMakeFiles/test_fault.dir/test_fault.cpp.o" "gcc" "tests/CMakeFiles/test_fault.dir/test_fault.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytics/CMakeFiles/sunbfs_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/bfs/CMakeFiles/sunbfs_bfs.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/sunbfs_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/sunbfs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/sunbfs_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/chip/CMakeFiles/sunbfs_chip.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sunbfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sunbfs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
