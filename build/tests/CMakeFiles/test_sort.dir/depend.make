# Empty dependencies file for test_sort.
# This may be replaced when dependencies are built.
