# Empty compiler generated dependencies file for file_bfs.
# This may be replaced when dependencies are built.
