file(REMOVE_RECURSE
  "CMakeFiles/file_bfs.dir/file_bfs.cpp.o"
  "CMakeFiles/file_bfs.dir/file_bfs.cpp.o.d"
  "file_bfs"
  "file_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
