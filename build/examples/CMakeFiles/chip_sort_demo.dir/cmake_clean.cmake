file(REMOVE_RECURSE
  "CMakeFiles/chip_sort_demo.dir/chip_sort_demo.cpp.o"
  "CMakeFiles/chip_sort_demo.dir/chip_sort_demo.cpp.o.d"
  "chip_sort_demo"
  "chip_sort_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_sort_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
