# Empty compiler generated dependencies file for chip_sort_demo.
# This may be replaced when dependencies are built.
