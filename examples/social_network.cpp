// Social-network analytics on the 1.5D framework (the paper's §8 claim
// that the partitioning is neutral to the algorithm, and its introduction's
// motivating workloads: risk management, ranking, trajectory analysis).
//
// On one skewed R-MAT "social graph", partitioned once, this example runs:
//   1. connected components  — community / fraud-ring discovery,
//   2. PageRank              — influencer ranking,
//   3. BFS                   — degrees of separation from the top influencer,
//   4. SSSP                  — weighted closeness over interaction costs.
//
//   ./social_network [scale]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "analytics/cc.hpp"
#include "analytics/pagerank.hpp"
#include "analytics/sssp.hpp"
#include "bfs/bfs15d.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part15d.hpp"
#include "sim/runtime.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  graph::Graph500Config cfg;
  cfg.scale = argc > 1 ? std::atoi(argv[1]) : 13;
  cfg.seed = 7;
  sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{cfg.num_vertices(), mesh.ranks()};

  std::printf("social_network: %llu members, %llu relationships, %d ranks\n\n",
              (unsigned long long)cfg.num_vertices(),
              (unsigned long long)cfg.num_edges(), mesh.ranks());

  std::vector<graph::Vertex> labels;
  std::vector<double> ranks;
  std::vector<graph::Vertex> parent;
  std::vector<analytics::Dist> dist;
  graph::Vertex influencer = 0;

  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    uint64_t m = cfg.num_edges();
    auto slice = graph::generate_rmat_range(
        cfg, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
        m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    // One partition serves all four analytics.
    auto part = partition::build_15d(ctx, space, slice, degrees, {512, 64});

    auto l = analytics::cc15d(ctx, part);
    auto r = analytics::pagerank15d(ctx, part, degrees);

    // Top influencer = highest PageRank (owner nominates, world votes).
    double best_rank = -1;
    graph::Vertex best_v = 0;
    for (uint64_t i = 0; i < r.size(); ++i)
      if (r[i] > best_rank) {
        best_rank = r[i];
        best_v = space.to_global(ctx.rank, i);
      }
    struct Nominee {
      double rank;
      graph::Vertex v;
    };
    Nominee winner = ctx.world.allreduce(
        Nominee{best_rank, best_v}, [](Nominee a, Nominee b) {
          return a.rank > b.rank ? a : b;
        });

    auto bfs_res = bfs::bfs15d_run(ctx, part, winner.v);
    auto sssp_res = analytics::sssp15d(ctx, part, winner.v);

    auto gl = ctx.world.allgatherv(std::span<const graph::Vertex>(l));
    auto gr = ctx.world.allgatherv(std::span<const double>(r));
    auto gp =
        ctx.world.allgatherv(std::span<const graph::Vertex>(bfs_res.parent));
    auto gd = ctx.world.allgatherv(std::span<const analytics::Dist>(sssp_res));
    if (ctx.rank == 0) {
      labels = std::move(gl);
      ranks = std::move(gr);
      parent = std::move(gp);
      dist = std::move(gd);
      influencer = winner.v;
    }
  });

  // --- 1. communities ----------------------------------------------------
  std::map<graph::Vertex, uint64_t> comp_size;
  for (graph::Vertex l : labels) comp_size[l]++;
  std::vector<uint64_t> sizes;
  for (auto& [l, n] : comp_size) sizes.push_back(n);
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("communities: %zu total; largest %llu members (%.1f%%); "
              "isolated members %llu\n",
              comp_size.size(), (unsigned long long)sizes[0],
              100.0 * double(sizes[0]) / double(cfg.num_vertices()),
              (unsigned long long)std::count(sizes.begin(), sizes.end(), 1ul));

  // --- 2. influencers ----------------------------------------------------
  std::printf("top influencer: member %lld (PageRank %.6f)\n",
              (long long)influencer, ranks[size_t(influencer)]);

  // --- 3. degrees of separation ------------------------------------------
  auto levels = graph::levels_from_parents(cfg.num_vertices(), parent,
                                           influencer);
  std::map<int64_t, uint64_t> by_hops;
  for (int64_t lv : levels)
    if (lv >= 0) by_hops[lv]++;
  std::printf("degrees of separation from the influencer:\n");
  for (auto& [hops, n] : by_hops)
    std::printf("  %2lld hops: %llu members\n", (long long)hops,
                (unsigned long long)n);

  // --- 4. weighted closeness ----------------------------------------------
  uint64_t reachable = 0;
  double sum_cost = 0;
  for (analytics::Dist d : dist)
    if (d < analytics::kInfDist) {
      ++reachable;
      sum_cost += double(d);
    }
  std::printf("weighted closeness: mean interaction cost %.1f over %llu "
              "reachable members\n",
              sum_cost / double(reachable), (unsigned long long)reachable);
  return 0;
}
