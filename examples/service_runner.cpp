// Graph query service demo: bring up a GraphSession (generate + partition
// once, keep everything resident), then serve a seeded synthetic workload
// through the batching QueryBroker and print per-query outcomes plus the
// latency/throughput summary.  Run with --help for the full flag table.
//
// The whole run is deterministic in its seeds: arrivals, roots, batch
// formation and the virtual clock replay identically, so two invocations
// with the same flags print the same latencies (docs/SERVICE.md).
//
// --faults LEVEL (1-3) injects a deterministic fault schedule of increasing
// intensity, seeded by --fault-seed, mirroring graph500_runner: under the
// default recover policy the engines checkpoint/replay, the broker retries
// queries whose batch exhausted recovery, and recovered answers stay
// bit-identical to a fault-free run.  --shed arms the overload breaker,
// --hedge the straggler re-execution.  Fault runs are diagnostics, not
// benchmark numbers.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bfs/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/session.hpp"
#include "support/cli.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  CliFlags cli("service_runner",
               "Graph query service: one resident GraphSession serving a "
               "seeded open- or closed-loop workload of BFS / SSSP-root "
               "queries with batching, deadlines and admission control.");
  cli.add("--scale", "N", "log2 of the vertex count (default 11)");
  cli.add("--seed", "S", "graph generator seed (default 1)");
  cli.add("--rows", "R", "mesh rows (default 2)");
  cli.add("--cols", "C", "mesh columns (default 2)");
  cli.add("--threads-per-rank", "T",
          "intra-rank worker threads; 0 = auto (default)");
  cli.add("--queries", "N", "total queries in the workload (default 64)");
  cli.add("--mode", "open|closed", "arrival process (default open)");
  cli.add("--rate", "QPS", "open loop: Poisson arrival rate (default 2000)");
  cli.add("--users", "U", "closed loop: concurrent users (default 8)");
  cli.add("--think-ms", "MS", "closed loop: think time (default 1)");
  cli.add("--deadline-ms", "MS",
          "relative per-query deadline; 0 = none (default 0)");
  cli.add("--width", "W", "batch width, <= 64 (default 64)");
  cli.add("--age-ms", "MS", "batch age timeout (default 5)");
  cli.add("--queue-cap", "N", "admission queue capacity (default 1024)");
  cli.add("--mix-sssp", "F", "fraction of SSSP-root queries (default 0)");
  cli.add("--mix-distance", "F",
          "fraction of point-to-point distance queries (default 0)");
  cli.add("--mix-reachable", "F",
          "fraction of point-to-point reachability queries (default 0)");
  cli.add("--root-dist", "uniform|zipfian",
          "root/target distribution over the pool (default uniform)");
  cli.add("--zipf-theta", "T", "zipfian skew exponent (default 0.99)");
  cli.add("--cache", "",
          "enable the distance-oracle cache (trees + landmark sketches)");
  cli.add("--cache-capacity", "N",
          "exact-tree LRU capacity (default 32)");
  cli.add("--landmarks", "K",
          "pinned landmark roots for the sketch, <= 64 (default 16)");
  cli.add("--lease-ms", "MS", "exact-tree lease (default 250)");
  cli.add("--sketch-lease-ms", "MS", "landmark-sketch lease (default 1000)");
  cli.add("--mutations", "N",
          "enable streaming mutations: N edge inserts + N deletes per batch "
          "(default 0 = off)");
  cli.add("--mutation-rate", "R",
          "mutation batches per query: apply one batch every round(1/R) "
          "query ids (default 1/32)");
  cli.add("--mutation-seed", "S", "mutation stream seed (default 99)");
  cli.add("--exchange", "direct|butterfly|2dca",
          "exchange plan for the batched-visit alltoallv (default direct)");
  cli.add("--wl-seed", "S", "workload seed (default 1)");
  cli.add("--root-pool", "N", "root pool size (default 64)");
  cli.add("--faults", "LEVEL",
          "inject a deterministic fault schedule of intensity 1-3 (default "
          "0 = off)");
  cli.add("--fault-seed", "S", "fault schedule seed (default 1)");
  cli.add("--fault-policy", "abort|report|recover",
          "reaction to detected faults (default recover)");
  cli.add("--retry-budget", "N",
          "broker re-admissions per query after a failed batch (default 2)");
  cli.add("--shed", "",
          "enable the overload breaker (sheds priority-0 queries)");
  cli.add("--hedge", "",
          "enable hedged re-execution of straggling batches");
  cli.add("--trace-out", "PATH", "write Chrome trace_event JSON");
  cli.add("--metrics-out", "PATH", "write the sunbfs.metrics/1 report");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n\n%s", error.c_str(), cli.usage().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  service::ServiceConfig cfg;
  cfg.graph.scale = int(cli.u64("--scale", 11));
  cfg.graph.seed = cli.u64("--seed", 1);
  cfg.threads_per_rank = int(cli.u64("--threads-per-rank", 0));
  cfg.root_pool = int(cli.u64("--root-pool", 64));
  sim::ExchangeBackend backend = sim::ExchangeBackend::Direct;
  if (!sim::parse_exchange_backend(cli.str("--exchange", "direct"),
                                   &backend)) {
    std::fprintf(stderr, "%s\n\n%s",
                 bfs::unknown_choice_error("--exchange",
                                           cli.str("--exchange"),
                                           "direct, butterfly, 2dca")
                     .c_str(),
                 cli.usage().c_str());
    return 2;
  }
  cfg.msbfs.exchange.backend = backend;
  sim::MeshShape mesh{int(cli.u64("--rows", 2)), int(cli.u64("--cols", 2))};
  sim::Topology topo(mesh);

  service::WorkloadConfig wl;
  wl.mode = cli.str("--mode", "open") == "closed"
                ? service::ArrivalMode::Closed
                : service::ArrivalMode::Open;
  wl.seed = cli.u64("--wl-seed", 1);
  wl.num_queries = cli.u64("--queries", 64);
  wl.rate_qps = cli.f64("--rate", 2000);
  wl.users = int(cli.u64("--users", 8));
  wl.think_s = cli.f64("--think-ms", 1) * 1e-3;
  double deadline_ms = cli.f64("--deadline-ms", 0);
  if (deadline_ms > 0) wl.deadline_s = deadline_ms * 1e-3;
  wl.sssp_fraction = cli.f64("--mix-sssp", 0);
  wl.distance_fraction = cli.f64("--mix-distance", 0);
  wl.reachable_fraction = cli.f64("--mix-reachable", 0);
  std::string root_dist = cli.str("--root-dist", "uniform");
  if (root_dist != "uniform" && root_dist != "zipfian") {
    std::fprintf(stderr, "%s\n\n%s",
                 bfs::unknown_choice_error("--root-dist", root_dist,
                                           "uniform, zipfian")
                     .c_str(),
                 cli.usage().c_str());
    return 2;
  }
  wl.root_dist = root_dist == "zipfian" ? service::RootDist::Zipfian
                                        : service::RootDist::Uniform;
  wl.zipf_theta = cli.f64("--zipf-theta", 0.99);

  // Streaming mutations (docs/SERVICE.md "Mutations & epochs"): --mutations N
  // arms the seeded log with N inserts + N deletes per batch; --mutation-rate
  // R spaces batches every round(1/R) query ids.
  const uint64_t mutation_ops = cli.u64("--mutations", 0);
  if (mutation_ops > 0) {
    cfg.mutation.enabled = true;
    cfg.mutation.inserts_per_batch = int(mutation_ops);
    cfg.mutation.deletes_per_batch = int(mutation_ops);
    cfg.mutation.seed = cli.u64("--mutation-seed", 99);
    const double rate = cli.f64("--mutation-rate", 1.0 / 32.0);
    if (rate > 0)
      cfg.mutation.every =
          std::max<uint64_t>(1, uint64_t(std::llround(1.0 / rate)));
  }

  cfg.cache.enabled = cli.has("--cache");
  cfg.cache.tree_capacity = cli.u64("--cache-capacity", 32);
  cfg.cache.landmarks = int(cli.u64("--landmarks", 16));
  cfg.cache.tree_lease_s = cli.f64("--lease-ms", 250) * 1e-3;
  cfg.cache.sketch_lease_s = cli.f64("--sketch-lease-ms", 1000) * 1e-3;

  // Fault schedule by intensity level: 1 = one straggler, 2 = the
  // graph500_runner acceptance mix (straggler + corruptions + one hard
  // failure), 3 = a storm of all three kinds.
  const int fault_level = int(cli.u64("--faults", 0));
  if (fault_level > 0) {
    const uint64_t fseed = cli.u64("--fault-seed", 1);
    const int s = fault_level >= 3 ? 2 : 1;
    const int c = fault_level >= 3 ? 4 : (fault_level >= 2 ? 2 : 1);
    const int f = fault_level >= 3 ? 2 : (fault_level >= 2 ? 1 : 0);
    cfg.faults = sim::FaultPlan::random(fseed, mesh.ranks(), s, c, f);
    std::string policy = cli.str("--fault-policy", "recover");
    if (policy == "abort")
      cfg.fault_policy = sim::FaultPolicy::Abort;
    else if (policy == "report")
      cfg.fault_policy = sim::FaultPolicy::Report;
    else
      cfg.fault_policy = sim::FaultPolicy::Recover;
  }
  cfg.retry_budget = int(cli.u64("--retry-budget", 2));
  cfg.hedge.enabled = cli.has("--hedge");

  service::BrokerConfig broker;
  broker.batch_width = int(cli.u64("--width", 64));
  broker.batch_age_s = cli.f64("--age-ms", 5) * 1e-3;
  broker.queue_capacity = cli.u64("--queue-cap", 1024);
  broker.shed.enabled = cli.has("--shed");

  std::string trace_out = cli.str("--trace-out");
  std::string metrics_out = cli.str("--metrics-out");
  if (!trace_out.empty()) obs::Tracer::instance().enable();

  std::printf("service_runner: SCALE %d graph resident on %s (exchange %s)\n",
              cfg.graph.scale, topo.to_string().c_str(),
              sim::exchange_backend_name(backend));
  std::printf("workload: %llu queries, %s loop, deadline %s, sssp mix %.2f\n",
              (unsigned long long)wl.num_queries,
              wl.mode == service::ArrivalMode::Open ? "open" : "closed",
              deadline_ms > 0 ? (std::to_string(deadline_ms) + " ms").c_str()
                              : "none",
              wl.sssp_fraction);
  std::printf("broker: width %d, age %.1f ms, queue capacity %zu, "
              "shedding %s, hedging %s\n\n",
              broker.batch_width, broker.batch_age_s * 1e3,
              broker.queue_capacity, broker.shed.enabled ? "on" : "off",
              cfg.hedge.enabled ? "on" : "off");
  if (fault_level > 0)
    std::printf("fault plan (level %d):\n%s\n", fault_level,
                cfg.faults.to_string().c_str());

  service::GraphSession session(topo, cfg);
  service::ServiceReport report;
  try {
    report = session.serve(wl, broker);
  } catch (const std::exception& e) {
    std::printf("aborted: %s\n", e.what());
    return 1;
  }
  if (!report.spmd.ok()) {
    for (const auto& e : report.spmd.errors)
      std::printf("error: %s\n", e.c_str());
    return 1;
  }

  std::printf("%6s %5s %9s %14s %12s %12s %6s %5s\n", "id", "kind", "status",
              "root", "latency ms", "trav. edges", "dist", "cache");
  for (const auto& r : report.results)
    std::printf("%6llu %5s %9s %14lld %12.4f %12llu %6lld %5s\n",
                (unsigned long long)r.id, service::query_kind_name(r.kind),
                service::query_status_name(r.status), (long long)r.root,
                r.latency_s * 1e3, (unsigned long long)r.traversed_edges,
                (long long)r.distance, r.cache_hit ? "hit" : "-");

  std::printf("\nsubmitted %llu, accepted %llu, rejected %llu, shed %llu, "
              "completed %llu, expired %llu (%llu queued + %llu late), "
              "failed %llu\n",
              (unsigned long long)report.submitted,
              (unsigned long long)report.accepted,
              (unsigned long long)report.rejected,
              (unsigned long long)report.shed,
              (unsigned long long)report.completed,
              (unsigned long long)report.expired_total(),
              (unsigned long long)report.expired_in_queue,
              (unsigned long long)report.expired_late,
              (unsigned long long)report.failed);
  std::printf("batches %llu, mean occupancy %.2f queries/batch\n",
              (unsigned long long)report.batches,
              report.mean_batch_occupancy);
  if (fault_level > 0 || report.failed_batches > 0 || report.shed > 0 ||
      report.hedged_batches > 0) {
    std::printf("degraded: %llu failed batches, %llu retries, %llu hedged "
                "batches, %llu breaker transitions, staging allocs "
                "%llu warm / %llu steady\n",
                (unsigned long long)report.failed_batches,
                (unsigned long long)report.retried,
                (unsigned long long)report.hedged_batches,
                (unsigned long long)report.breaker_transitions,
                (unsigned long long)report.staging_allocs_warmup,
                (unsigned long long)report.staging_allocs_steady);
    auto f = report.spmd.fault_totals();
    std::printf("faults: %s\n", f.to_string().c_str());
  }
  if (cfg.cache.enabled) {
    const auto& c = report.cache;
    std::printf("cache: %llu probes, %llu hits (%.1f%%; %llu tree + %llu "
                "sketch), %llu expired leases, %llu sketch refreshes\n",
                (unsigned long long)c.probes, (unsigned long long)c.hits,
                c.hit_rate() * 100.0, (unsigned long long)c.tree_hits,
                (unsigned long long)c.sketch_answers,
                (unsigned long long)c.expired,
                (unsigned long long)c.refreshes);
  }
  if (cfg.mutation.enabled) {
    const auto& mu = report.mutate;
    std::printf("mutations: %llu batches -> epoch %llu, %llu arcs inserted / "
                "%llu deleted, %llu tombstone misses, %llu compactions\n",
                (unsigned long long)mu.batches, (unsigned long long)mu.epoch,
                (unsigned long long)mu.inserted_arcs,
                (unsigned long long)mu.deleted_arcs,
                (unsigned long long)mu.delete_misses,
                (unsigned long long)mu.compactions);
    if (mu.sketch_repairs > 0)
      std::printf("repair: %llu sketch repairs (%llu invalidated, %llu "
                  "relaxations, %llu rounds)\n",
                  (unsigned long long)mu.sketch_repairs,
                  (unsigned long long)mu.repair_invalidated,
                  (unsigned long long)mu.repair_relaxations,
                  (unsigned long long)mu.repair_rounds);
  }
  std::printf("virtual makespan %.6f s -> %.1f QPS\n", report.makespan_s,
              report.qps);
  std::printf("latency (modeled): mean %.4f ms, p50 %.4f ms, p95 %.4f ms, "
              "p99 %.4f ms\n",
              report.latency_mean_s * 1e3, report.latency_p50_s * 1e3,
              report.latency_p95_s * 1e3, report.latency_p99_s * 1e3);

  if (!trace_out.empty()) {
    if (obs::Tracer::instance().write_chrome_trace_file(trace_out))
      std::printf("trace: wrote %zu events to %s\n",
                  obs::Tracer::instance().event_count(), trace_out.c_str());
    else
      std::printf("trace: FAILED writing %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::Report metrics;
    metrics.info("tool", "service_runner");
    metrics.info("scale", int64_t(cfg.graph.scale));
    metrics.info("mesh", std::to_string(mesh.rows) + "x" +
                             std::to_string(mesh.cols));
    metrics.info("mode",
                 wl.mode == service::ArrivalMode::Open ? "open" : "closed");
    metrics.info("faults",
                 fault_level > 0 ? std::to_string(fault_level) : "off");
    metrics.info("exchange", sim::exchange_backend_name(backend));
    report.to_report(metrics);
    if (metrics.write_file(metrics_out))
      std::printf("metrics: wrote %s\n", metrics_out.c_str());
    else
      std::printf("metrics: FAILED writing %s\n", metrics_out.c_str());
  }
  return 0;
}
