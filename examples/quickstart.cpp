// Quickstart: the smallest complete use of the library.
//
// Generates a Graph 500 R-MAT graph, partitions it with 3-level
// degree-aware 1.5D partitioning over a 2x2 simulated mesh, runs one BFS,
// validates the result against the Graph 500 rules, and prints a summary.
//
//   ./quickstart [scale]
#include <cstdio>
#include <cstdlib>

#include "bfs/bfs15d.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part15d.hpp"
#include "sim/runtime.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  graph::Graph500Config graph_cfg;
  graph_cfg.scale = argc > 1 ? std::atoi(argv[1]) : 12;
  graph_cfg.seed = 1;

  // The simulated machine: a 2x2 mesh of ranks; rows are supernodes.
  sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{graph_cfg.num_vertices(), mesh.ranks()};
  partition::DegreeThresholds thresholds{256, 32};

  std::printf("quickstart: scale %d (%llu vertices, %llu edges) on a %dx%d "
              "mesh\n",
              graph_cfg.scale,
              (unsigned long long)graph_cfg.num_vertices(),
              (unsigned long long)graph_cfg.num_edges(), mesh.rows,
              mesh.cols);

  graph::Vertex root = graph::generate_rmat_range(graph_cfg, 0, 1)[0].u;
  std::vector<graph::Vertex> parent;  // assembled global BFS tree

  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    // 1. Every rank generates exactly its slice of the edge list.
    uint64_t m = graph_cfg.num_edges();
    auto slice = graph::generate_rmat_range(
        graph_cfg, m * uint64_t(ctx.rank) / uint64_t(ctx.nranks()),
        m * uint64_t(ctx.rank + 1) / uint64_t(ctx.nranks()));

    // 2. Distributed degree computation and 1.5D partitioning.
    auto degrees = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, degrees, thresholds);
    if (ctx.rank == 0)
      std::printf("classified %llu E + %llu H vertices out of %llu\n",
                  (unsigned long long)part.cls.num_e(),
                  (unsigned long long)part.cls.num_h(),
                  (unsigned long long)space.total);

    // 3. BFS with sub-iteration direction optimization (defaults).
    auto result = bfs::bfs15d_run(ctx, part, root);
    if (ctx.rank == 0)
      std::printf("BFS finished in %d iterations\n",
                  result.stats.num_iterations);

    // 4. Gather the distributed parent array for validation.
    auto gathered =
        ctx.world.allgatherv(std::span<const graph::Vertex>(result.parent));
    if (ctx.rank == 0) parent = std::move(gathered);
  });

  // 5. Validate against the Graph 500 specification.
  auto edges = graph::generate_rmat(graph_cfg);
  auto check = graph::validate_bfs(graph_cfg.num_vertices(), edges, root,
                                   parent);
  std::printf("root %lld: reached %llu vertices, %llu edges in component, "
              "validation %s\n",
              (long long)root, (unsigned long long)check.reached,
              (unsigned long long)check.edges_in_component,
              check.ok ? "PASSED" : check.error.c_str());
  return check.ok ? 0 : 1;
}
