// Running the pipeline on an external graph (§8: the partitioning "is
// designed for any graph with extremely skewed degree distribution, which
// is commonly found in social networks, web graphs").
//
// Reads a SNAP-style text edge list (or writes a demo one first),
// partitions it 1.5D, runs BFS from the highest-degree vertex, validates,
// and prints per-class statistics.
//
//   ./file_bfs [path/to/edges.txt]
#include <algorithm>
#include <cstdio>

#include "bfs/bfs15d.hpp"
#include "graph/io.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "partition/part15d.hpp"
#include "sim/runtime.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    // No input given: write a demo edge list so the example is runnable
    // stand-alone (a small R-MAT graph in the text format).
    path = "file_bfs_demo_edges.txt";
    graph::Graph500Config demo;
    demo.scale = 11;
    graph::write_edge_list_text(path, graph::generate_rmat(demo));
    std::printf("no input given; wrote demo graph to %s\n", path.c_str());
  }

  uint64_t num_vertices = 0;
  auto edges = graph::read_edge_list_text(path, &num_vertices);
  std::printf("loaded %s: %zu edges over %llu vertices\n", path.c_str(),
              edges.size(), (unsigned long long)num_vertices);

  // Pick thresholds from the degree distribution: E ~ top 0.01%%, H ~ top 1%%.
  auto degrees = graph::undirected_degrees(num_vertices, edges);
  auto sorted = degrees;
  std::sort(sorted.rbegin(), sorted.rend());
  partition::DegreeThresholds th;
  th.e = std::max<uint64_t>(2, sorted[sorted.size() / 10000]);
  th.h = std::max<uint64_t>(2, std::min(th.e, sorted[sorted.size() / 100]));
  graph::Vertex root =
      graph::Vertex(std::max_element(degrees.begin(), degrees.end()) -
                    degrees.begin());
  std::printf("auto thresholds: E >= %llu, H >= %llu; root = hub %lld "
              "(degree %llu)\n",
              (unsigned long long)th.e, (unsigned long long)th.h,
              (long long)root, (unsigned long long)degrees[size_t(root)]);

  sim::MeshShape mesh{2, 2};
  partition::VertexSpace space{num_vertices, mesh.ranks()};
  std::vector<graph::Vertex> parent;
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    // Each rank takes its slice of the loaded list (in a production system
    // each rank would read its own byte range of the file).
    size_t lo = edges.size() * size_t(ctx.rank) / size_t(ctx.nranks());
    size_t hi = edges.size() * size_t(ctx.rank + 1) / size_t(ctx.nranks());
    std::span<const graph::Edge> slice(edges.data() + lo, hi - lo);
    auto deg = partition::compute_local_degrees(ctx, space, slice);
    auto part = partition::build_15d(ctx, space, slice, deg, th);
    if (ctx.rank == 0)
      std::printf("classified |E| = %llu, |H| = %llu\n",
                  (unsigned long long)part.cls.num_e(),
                  (unsigned long long)part.cls.num_h());
    auto res = bfs::bfs15d_run(ctx, part, root);
    auto gathered =
        ctx.world.allgatherv(std::span<const graph::Vertex>(res.parent));
    if (ctx.rank == 0) parent = std::move(gathered);
  });

  auto check = graph::validate_bfs(num_vertices, edges, root, parent);
  std::printf("BFS from %lld: reached %llu vertices / %llu in-component "
              "edges; validation %s\n",
              (long long)root, (unsigned long long)check.reached,
              (unsigned long long)check.edges_in_component,
              check.ok ? "PASSED" : check.error.c_str());
  return check.ok ? 0 : 1;
}
