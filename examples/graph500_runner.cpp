// Full Graph 500 benchmark pipeline as a command-line tool.
//
//   ./graph500_runner [--scale N] [--rows R] [--cols C] [--roots K]
//                     [--e-threshold D] [--h-threshold D] [--no-validate]
//                     [--engine 1d|1.5d] [--baseline-direction]
//                     [--threads-per-rank T]
//                     [--faults SEED] [--fault-policy abort|report|recover]
//                     [--trace-out PATH] [--metrics-out PATH]
//
// --threads-per-rank sets the intra-rank worker count of every BFS kernel
// (and the generator/validator); 0 (default) means auto — hardware
// concurrency divided by the rank count, never oversubscribing the host.
//
// --trace-out writes the run as Chrome trace_event JSON (open in Perfetto:
// per-rank BFS levels, collectives, and — under --faults — rollback/replay
// spans on the modeled clock).  --metrics-out writes the machine-readable
// sunbfs.metrics/1 report that tools/regen_experiments.py consumes; see
// docs/OBSERVABILITY.md.
//
// Runs generation -> partitioning -> K timed BFS runs -> validation and
// prints a Graph 500-style report with the time breakdowns of Figures 10
// and 11 for the configured machine.
//
// --faults SEED injects a deterministic fault schedule (one straggler, two
// payload corruptions, one hard rank failure) into the searches; under the
// default recover policy the engines roll back to level checkpoints and the
// run still validates.  Fault runs are diagnostics, not benchmark numbers.
#include <cstdio>
#include <cstring>
#include <string>

#include "bfs/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace sunbfs;

namespace {
uint64_t arg_u64(int argc, char** argv, const char* name, uint64_t def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0)
      return std::strtoull(argv[i + 1], nullptr, 10);
  return def;
}
bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}
const char* arg_str(int argc, char** argv, const char* name, const char* def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return def;
}
}  // namespace

int main(int argc, char** argv) {
  bfs::RunnerConfig cfg;
  cfg.graph.scale = int(arg_u64(argc, argv, "--scale", 14));
  cfg.graph.seed = arg_u64(argc, argv, "--seed", 1);
  cfg.thresholds.e = arg_u64(argc, argv, "--e-threshold", 2048);
  cfg.thresholds.h = arg_u64(argc, argv, "--h-threshold", 128);
  cfg.num_roots = int(arg_u64(argc, argv, "--roots", 8));
  cfg.bfs.threads_per_rank =
      int(arg_u64(argc, argv, "--threads-per-rank", 0));
  cfg.bfs1d.threads_per_rank = cfg.bfs.threads_per_rank;
  cfg.validate = !has_flag(argc, argv, "--no-validate");
  cfg.bfs.sub_iteration_direction = !has_flag(argc, argv,
                                              "--baseline-direction");
  if (std::string(arg_str(argc, argv, "--engine", "1.5d")) == "1d")
    cfg.engine = bfs::EngineKind::OneD;
  sim::MeshShape mesh{int(arg_u64(argc, argv, "--rows", 2)),
                      int(arg_u64(argc, argv, "--cols", 2))};
  sim::Topology topo(mesh);

  const char* trace_out = arg_str(argc, argv, "--trace-out", nullptr);
  const char* metrics_out = arg_str(argc, argv, "--metrics-out", nullptr);
  if (trace_out) obs::Tracer::instance().enable();

  // Optional deterministic fault injection (the acceptance scenario: one
  // straggler, two payload corruptions, one hard rank failure).
  sim::FaultPlan plan;
  if (has_flag(argc, argv, "--faults")) {
    uint64_t fseed = arg_u64(argc, argv, "--faults", 1);
    plan = sim::FaultPlan::random(fseed, mesh.ranks(), /*stragglers=*/1,
                                  /*corruptions=*/2, /*failures=*/1);
    cfg.faults = &plan;
    std::string policy = arg_str(argc, argv, "--fault-policy", "recover");
    if (policy == "abort")
      cfg.fault_policy = sim::FaultPolicy::Abort;
    else if (policy == "report")
      cfg.fault_policy = sim::FaultPolicy::Report;
    else
      cfg.fault_policy = sim::FaultPolicy::Recover;
  }

  std::printf("graph500_runner: SCALE %d, edge factor %d, %s engine\n",
              cfg.graph.scale, cfg.graph.edge_factor,
              cfg.engine == bfs::EngineKind::OneFiveD ? "1.5D" : "1D");
  std::printf("machine: %s\n", topo.to_string().c_str());
  std::printf("thresholds: E >= %llu, H >= %llu; %d search keys; "
              "validation %s\n\n",
              (unsigned long long)cfg.thresholds.e,
              (unsigned long long)cfg.thresholds.h, cfg.num_roots,
              cfg.validate ? "on" : "off");

  if (cfg.faults) std::printf("fault plan:\n%s\n", plan.to_string().c_str());

  bfs::RunnerResult result;
  try {
    result = bfs::run_graph500(topo, cfg);
  } catch (const std::exception& e) {
    // Abort policy: the first detection / rank failure is rethrown here.
    std::printf("aborted: %s\n", e.what());
    return 1;
  }

  if (cfg.faults) {
    auto f = result.spmd.fault_totals();
    std::printf("faults: %s\n", f.to_string().c_str());
    for (const auto& e : result.spmd.errors)
      std::printf("  error: %s\n", e.c_str());
    std::printf("\n");
    if (!result.spmd.ok()) {
      std::printf("run failed under the %s fault policy\n",
                  cfg.fault_policy == sim::FaultPolicy::Report ? "report"
                                                               : "recover");
      return 1;
    }
  }

  std::printf("%6s %14s %14s %12s %7s\n", "key", "root", "trav. edges",
              "modeled s", "valid");
  for (size_t i = 0; i < result.runs.size(); ++i) {
    const auto& r = result.runs[i];
    std::printf("%6zu %14lld %14llu %12.6f %7s\n", i, (long long)r.root,
                (unsigned long long)r.traversed_edges, r.modeled_s,
                r.valid ? "yes" : "NO");
  }
  if (cfg.engine == bfs::EngineKind::OneFiveD) {
    std::printf("\nclassification: |E| = %llu, |EH| = %llu\n",
                (unsigned long long)result.num_e,
                (unsigned long long)result.num_eh);
    std::printf("time by subgraph (all runs, %% of attributed time):\n");
    double t[partition::kSubgraphCount] = {}, reduce = 0, other = 0,
           total = 0;
    for (const auto& run : result.runs) {
      for (int s = 0; s < partition::kSubgraphCount; ++s)
        t[s] += run.stats.push_cpu_s[size_t(s)] +
                run.stats.pull_cpu_s[size_t(s)] +
                run.stats.comm_modeled_s[size_t(s)];
      reduce += run.stats.reduce_cpu_s + run.stats.reduce_comm_modeled_s;
      other += run.stats.other_cpu_s + run.stats.other_comm_modeled_s;
    }
    for (double x : t) total += x;
    total += reduce + other;
    for (int s = 0; s < partition::kSubgraphCount; ++s)
      std::printf("  %-6s %5.1f%%\n",
                  partition::subgraph_name(partition::Subgraph(s)),
                  100 * t[s] / total);
    std::printf("  %-6s %5.1f%%\n  %-6s %5.1f%%\n", "reduce",
                100 * reduce / total, "other", 100 * other / total);
  }
  std::printf("\nharmonic mean: %.3f GTEPS (modeled)\n",
              result.harmonic_gteps);
  if (cfg.validate)
    std::printf("validation: %s\n", result.all_valid ? "ALL PASSED" : "FAILED");

  if (trace_out) {
    if (obs::Tracer::instance().write_chrome_trace_file(trace_out))
      std::printf("trace: wrote %zu events to %s\n",
                  obs::Tracer::instance().event_count(), trace_out);
    else
      std::printf("trace: FAILED writing %s\n", trace_out);
  }
  if (metrics_out) {
    obs::Report report;
    report.info("tool", "graph500_runner");
    report.info("scale", int64_t(cfg.graph.scale));
    report.info("edge_factor", int64_t(cfg.graph.edge_factor));
    report.info("mesh", std::to_string(mesh.rows) + "x" +
                            std::to_string(mesh.cols));
    report.info("engine",
                cfg.engine == bfs::EngineKind::OneFiveD ? "1.5d" : "1d");
    report.info("faults", cfg.faults ? "on" : "off");
    result.to_report(report);
    if (report.write_file(metrics_out))
      std::printf("metrics: wrote %s\n", metrics_out);
    else
      std::printf("metrics: FAILED writing %s\n", metrics_out);
  }
  return cfg.validate && !result.all_valid ? 1 : 0;
}
