// Full Graph 500 benchmark pipeline as a command-line tool (run with --help
// for the complete flag table; the usage text is generated from the same
// table the parser matches against, so every accepted flag is listed).
//
// --threads-per-rank sets the intra-rank worker count of every BFS kernel
// (and the generator/validator); 0 (default) means auto — hardware
// concurrency divided by the rank count, never oversubscribing the host.
//
// --trace-out writes the run as Chrome trace_event JSON (open in Perfetto:
// per-rank BFS levels, collectives, and — under --faults — rollback/replay
// spans on the modeled clock).  --metrics-out writes the machine-readable
// sunbfs.metrics/1 report that tools/regen_experiments.py consumes; see
// docs/OBSERVABILITY.md.
//
// Runs generation -> partitioning -> K timed BFS runs -> validation and
// prints a Graph 500-style report with the time breakdowns of Figures 10
// and 11 for the configured machine.
//
// --faults SEED injects a deterministic fault schedule (one straggler, two
// payload corruptions, one hard rank failure) into the searches; under the
// default recover policy the engines roll back to level checkpoints and the
// run still validates.  Fault runs are diagnostics, not benchmark numbers.
#include <cstdio>
#include <string>

#include "bfs/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/cli.hpp"

using namespace sunbfs;

int main(int argc, char** argv) {
  CliFlags cli("graph500_runner",
               "Graph 500 benchmark pipeline: generate -> partition -> K "
               "timed BFS searches -> validate -> GTEPS report.");
  cli.add("--scale", "N", "log2 of the vertex count (default 14)");
  cli.add("--seed", "S", "graph generator seed (default 1)");
  cli.add("--rows", "R", "mesh rows (default 2)");
  cli.add("--cols", "C", "mesh columns (default 2)");
  cli.add("--roots", "K", "number of search keys (default 8)");
  cli.add("--e-threshold", "D", "degree threshold for E vertices (default 2048)");
  cli.add("--h-threshold", "D", "degree threshold for H vertices (default 128)");
  cli.add("--no-validate", "", "skip host-side validation");
  cli.add("--no-encoding", "",
          "ship raw structs instead of adaptive wire encoding");
  cli.add("--exchange", "direct|butterfly|2dca",
          "exchange plan for the world-wide alltoallvs (default direct)");
  cli.add("--engine", "1d|1.5d|async", "BFS engine (default 1.5d)");
  cli.add("--baseline-direction", "",
          "disable per-sub-iteration direction choice (whole-level only)");
  cli.add("--threads-per-rank", "T",
          "intra-rank worker threads; 0 = auto (default)");
  cli.add("--faults", "SEED",
          "inject a deterministic fault schedule from SEED");
  cli.add("--fault-policy", "abort|report|recover",
          "reaction to detected faults (default recover)");
  cli.add("--trace-out", "PATH", "write Chrome trace_event JSON");
  cli.add("--metrics-out", "PATH", "write the sunbfs.metrics/1 report");
  std::string error;
  if (!cli.parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n\n%s", error.c_str(), cli.usage().c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage().c_str());
    return 0;
  }

  bfs::RunnerConfig cfg;
  cfg.graph.scale = int(cli.u64("--scale", 14));
  cfg.graph.seed = cli.u64("--seed", 1);
  cfg.thresholds.e = cli.u64("--e-threshold", 2048);
  cfg.thresholds.h = cli.u64("--h-threshold", 128);
  cfg.num_roots = int(cli.u64("--roots", 8));
  cfg.bfs.threads_per_rank = int(cli.u64("--threads-per-rank", 0));
  cfg.bfs1d.threads_per_rank = cfg.bfs.threads_per_rank;
  cfg.bfsasync.threads_per_rank = cfg.bfs.threads_per_rank;
  cfg.validate = !cli.has("--no-validate");
  cfg.bfs.encoding.enabled = !cli.has("--no-encoding");
  cfg.bfs1d.encoding.enabled = cfg.bfs.encoding.enabled;
  cfg.bfsasync.encoding.enabled = cfg.bfs.encoding.enabled;
  sim::ExchangeBackend backend = sim::ExchangeBackend::Direct;
  if (!sim::parse_exchange_backend(cli.str("--exchange", "direct"),
                                   &backend)) {
    std::fprintf(stderr, "%s\n\n%s",
                 bfs::unknown_choice_error("--exchange",
                                           cli.str("--exchange"),
                                           "direct, butterfly, 2dca")
                     .c_str(),
                 cli.usage().c_str());
    return 2;
  }
  cfg.bfs.exchange.backend = backend;
  cfg.bfs1d.exchange.backend = backend;
  cfg.bfsasync.exchange.backend = backend;
  cfg.bfs.sub_iteration_direction = !cli.has("--baseline-direction");
  if (!bfs::parse_engine_kind(cli.str("--engine", "1.5d"), &cfg.engine)) {
    std::fprintf(stderr, "%s\n\n%s",
                 bfs::unknown_choice_error("--engine", cli.str("--engine"),
                                           bfs::engine_kind_choices())
                     .c_str(),
                 cli.usage().c_str());
    return 2;
  }
  sim::MeshShape mesh{int(cli.u64("--rows", 2)), int(cli.u64("--cols", 2))};
  sim::Topology topo(mesh);

  std::string trace_out = cli.str("--trace-out");
  std::string metrics_out = cli.str("--metrics-out");
  if (!trace_out.empty()) obs::Tracer::instance().enable();

  // Optional deterministic fault injection (the acceptance scenario: one
  // straggler, two payload corruptions, one hard rank failure).
  sim::FaultPlan plan;
  if (cli.has("--faults")) {
    uint64_t fseed = cli.u64("--faults", 1);
    plan = sim::FaultPlan::random(fseed, mesh.ranks(), /*stragglers=*/1,
                                  /*corruptions=*/2, /*failures=*/1);
    cfg.faults = &plan;
    std::string policy = cli.str("--fault-policy", "recover");
    if (policy == "abort")
      cfg.fault_policy = sim::FaultPolicy::Abort;
    else if (policy == "report")
      cfg.fault_policy = sim::FaultPolicy::Report;
    else
      cfg.fault_policy = sim::FaultPolicy::Recover;
  }

  std::printf("graph500_runner: SCALE %d, edge factor %d, %s engine\n",
              cfg.graph.scale, cfg.graph.edge_factor,
              bfs::engine_kind_name(cfg.engine));
  std::printf("machine: %s\n", topo.to_string().c_str());
  std::printf("exchange: %s\n", sim::exchange_backend_name(backend));
  std::printf("thresholds: E >= %llu, H >= %llu; %d search keys; "
              "validation %s\n\n",
              (unsigned long long)cfg.thresholds.e,
              (unsigned long long)cfg.thresholds.h, cfg.num_roots,
              cfg.validate ? "on" : "off");

  if (cfg.faults) std::printf("fault plan:\n%s\n", plan.to_string().c_str());

  bfs::RunnerResult result;
  try {
    result = bfs::run_graph500(topo, cfg);
  } catch (const std::exception& e) {
    // Abort policy: the first detection / rank failure is rethrown here.
    std::printf("aborted: %s\n", e.what());
    return 1;
  }

  if (cfg.faults) {
    auto f = result.spmd.fault_totals();
    std::printf("faults: %s\n", f.to_string().c_str());
    for (const auto& e : result.spmd.errors)
      std::printf("  error: %s\n", e.c_str());
    std::printf("\n");
    if (!result.spmd.ok()) {
      std::printf("run failed under the %s fault policy\n",
                  cfg.fault_policy == sim::FaultPolicy::Report ? "report"
                                                               : "recover");
      return 1;
    }
  }

  std::printf("%6s %14s %14s %12s %7s\n", "key", "root", "trav. edges",
              "modeled s", "valid");
  for (size_t i = 0; i < result.runs.size(); ++i) {
    const auto& r = result.runs[i];
    std::printf("%6zu %14lld %14llu %12.6f %7s\n", i, (long long)r.root,
                (unsigned long long)r.traversed_edges, r.modeled_s,
                r.valid ? "yes" : "NO");
  }
  if (cfg.engine == bfs::EngineKind::OneFiveD) {
    std::printf("\nclassification: |E| = %llu, |EH| = %llu\n",
                (unsigned long long)result.num_e,
                (unsigned long long)result.num_eh);
    std::printf("time by subgraph (all runs, %% of attributed time):\n");
    double t[partition::kSubgraphCount] = {}, reduce = 0, other = 0,
           total = 0;
    for (const auto& run : result.runs) {
      for (int s = 0; s < partition::kSubgraphCount; ++s)
        t[s] += run.stats.push_cpu_s[size_t(s)] +
                run.stats.pull_cpu_s[size_t(s)] +
                run.stats.comm_modeled_s[size_t(s)];
      reduce += run.stats.reduce_cpu_s + run.stats.reduce_comm_modeled_s;
      other += run.stats.other_cpu_s + run.stats.other_comm_modeled_s;
    }
    for (double x : t) total += x;
    total += reduce + other;
    for (int s = 0; s < partition::kSubgraphCount; ++s)
      std::printf("  %-6s %5.1f%%\n",
                  partition::subgraph_name(partition::Subgraph(s)),
                  100 * t[s] / total);
    std::printf("  %-6s %5.1f%%\n  %-6s %5.1f%%\n", "reduce",
                100 * reduce / total, "other", 100 * other / total);
  }
  std::printf("\nsearch wire bytes: %llu alltoallv (%llu inter-supernode), "
              "%llu allgather (encoding %s, exchange %s)\n",
              (unsigned long long)result.search_alltoallv_bytes,
              (unsigned long long)result.search_alltoallv_inter_bytes,
              (unsigned long long)result.search_allgather_bytes,
              cfg.bfs.encoding.enabled ? "on" : "off",
              sim::exchange_backend_name(backend));
  std::printf("\nharmonic mean: %.3f GTEPS (modeled)\n",
              result.harmonic_gteps);
  if (cfg.validate)
    std::printf("validation: %s\n", result.all_valid ? "ALL PASSED" : "FAILED");

  if (!trace_out.empty()) {
    if (obs::Tracer::instance().write_chrome_trace_file(trace_out))
      std::printf("trace: wrote %zu events to %s\n",
                  obs::Tracer::instance().event_count(), trace_out.c_str());
    else
      std::printf("trace: FAILED writing %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::Report report;
    report.info("tool", "graph500_runner");
    report.info("scale", int64_t(cfg.graph.scale));
    report.info("edge_factor", int64_t(cfg.graph.edge_factor));
    report.info("mesh", std::to_string(mesh.rows) + "x" +
                            std::to_string(mesh.cols));
    report.info("engine", bfs::engine_kind_name(cfg.engine));
    report.info("faults", cfg.faults ? "on" : "off");
    report.info("encoding", cfg.bfs.encoding.enabled ? "on" : "off");
    report.info("exchange", sim::exchange_backend_name(backend));
    result.to_report(report);
    if (report.write_file(metrics_out))
      std::printf("metrics: wrote %s\n", metrics_out.c_str());
    else
      std::printf("metrics: FAILED writing %s\n", metrics_out.c_str());
  }
  return cfg.validate && !result.all_valid ? 1 : 0;
}
