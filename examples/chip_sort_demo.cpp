// Using OCS-RMA directly: the on-chip sorting meta-kernel as a library.
//
// The paper presents OCS-RMA as a generic kernel template (message
// generation, forwarding, destination updating all reuse it).  This example
// drives it stand-alone on the chip model: bucketing a batch of BFS-style
// "visit messages" by destination rank, exactly the messaging step of §4.4,
// and compares against the MPE and atomic-append baselines.
//
//   ./chip_sort_demo [log2_messages]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "chip/chip.hpp"
#include "sort/bucket_baselines.hpp"
#include "sort/ocs_rma.hpp"
#include "support/random.hpp"

using namespace sunbfs;

namespace {
// A remote-edge visit message: destination vertex and proposed parent.
struct VisitMsg {
  uint64_t dst;
  uint64_t parent;
};
}  // namespace

int main(int argc, char** argv) {
  const int log_n = argc > 1 ? std::atoi(argv[1]) : 18;
  const size_t n = size_t(1) << log_n;
  const uint32_t num_ranks = 64;  // message buckets = destination ranks

  std::printf("chip_sort_demo: bucketing %zu visit messages (%zu MB) by "
              "destination rank on the SW26010-Pro model\n\n",
              n, n * sizeof(VisitMsg) >> 20);

  Xoshiro256StarStar rng(123);
  std::vector<VisitMsg> messages(n);
  for (auto& m : messages) {
    m.dst = rng.next();
    m.parent = rng.next();
  }
  std::vector<VisitMsg> sorted(n);
  auto bucket_of = [num_ranks](const VisitMsg& m) {
    return uint32_t(m.dst % num_ranks);
  };

  chip::Chip chip(chip::Geometry::sw26010pro());
  const uint64_t bytes = n * sizeof(VisitMsg);

  auto ocs = sort::ocs_rma_bucket_sort<VisitMsg>(
      chip, messages, std::span(sorted), num_ranks, bucket_of);
  std::printf("OCS-RMA (6 CGs):      %8.2f GB/s modeled, %llu RMA ops, "
              "%llu atomics\n",
              ocs.report.modeled_bytes_per_s(bytes) / 1e9,
              (unsigned long long)ocs.report.totals.rma_ops,
              (unsigned long long)ocs.report.totals.atomic_ops);

  auto atomic = sort::atomic_append_bucket_sort<VisitMsg>(
      chip, messages, std::span(sorted), num_ranks, bucket_of);
  std::printf("atomic-append (6 CGs):%8.2f GB/s modeled, %llu atomics\n",
              atomic.report.modeled_bytes_per_s(bytes) / 1e9,
              (unsigned long long)atomic.report.totals.atomic_ops);

  auto mpe = sort::mpe_bucket_sort<VisitMsg>(chip, messages,
                                             std::span(sorted), num_ranks,
                                             bucket_of);
  std::printf("MPE sequential:       %8.4f GB/s modeled\n",
              mpe.report.modeled_bytes_per_s(bytes) / 1e9);

  // The buckets are ready to hand to alltoallv: print the layout.
  std::printf("\nper-destination message counts (first 8 ranks):");
  for (uint32_t b = 0; b < 8; ++b)
    std::printf(" %llu",
                (unsigned long long)(ocs.offsets[b + 1] - ocs.offsets[b]));
  std::printf(" ...\n");
  return 0;
}
