// Tests for the SPMD runtime: topology cost model, barriers and every
// collective, including sub-communicators, statistics and abort semantics.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "sim/runtime.hpp"
#include "support/check.hpp"

namespace sunbfs::sim {
namespace {

TEST(Topology, SupernodeMappingFollowsRows) {
  Topology topo(MeshShape{4, 3});
  EXPECT_EQ(topo.ranks_per_supernode(), 3);
  EXPECT_EQ(topo.supernode_count(), 4);
  EXPECT_TRUE(topo.same_supernode(0, 2));
  EXPECT_FALSE(topo.same_supernode(2, 3));
  EXPECT_EQ(topo.supernode_of(11), 3);
}

TEST(Topology, CustomSupernodeSize) {
  TopologyParams p;
  p.ranks_per_supernode = 2;
  Topology topo(MeshShape{2, 4}, p);
  EXPECT_EQ(topo.supernode_count(), 4);
  EXPECT_TRUE(topo.same_supernode(0, 1));
  EXPECT_FALSE(topo.same_supernode(1, 2));
}

TEST(Topology, InterSupernodeBytesCostMore) {
  Topology topo(MeshShape{4, 4});
  double intra = topo.transfer_time(4, 1 << 20, 0);
  double inter = topo.transfer_time(4, 0, 1 << 20);
  EXPECT_GT(inter, intra * 4);  // 8x oversubscription on the default params
}

TEST(Topology, LatencyGrowsWithParticipants) {
  Topology topo(MeshShape{16, 16});
  EXPECT_LT(topo.transfer_time(2, 0, 0), topo.transfer_time(256, 0, 0));
}

TEST(MeshShape, RowMajorNumbering) {
  MeshShape m{3, 5};
  EXPECT_EQ(m.ranks(), 15);
  EXPECT_EQ(m.row_of(7), 1);
  EXPECT_EQ(m.col_of(7), 2);
  EXPECT_EQ(m.rank_of(1, 2), 7);
}

TEST(Runtime, RunsEveryRankOnce) {
  std::vector<std::atomic<int>> counts(6);
  run_spmd(MeshShape{2, 3}, [&](RankContext& ctx) {
    counts[ctx.rank].fetch_add(1);
    EXPECT_EQ(ctx.world.size(), 6);
    EXPECT_EQ(ctx.row.size(), 3);
    EXPECT_EQ(ctx.col.size(), 2);
    EXPECT_EQ(ctx.row.rank(), ctx.col_index());
    EXPECT_EQ(ctx.col.rank(), ctx.row_index());
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(Runtime, SingleRankWorks) {
  int ran = 0;
  run_spmd(MeshShape{1, 1}, [&](RankContext& ctx) {
    ran = 1;
    EXPECT_EQ(ctx.world.allreduce_sum(5), 5);
  });
  EXPECT_EQ(ran, 1);
}

TEST(Runtime, ExceptionAbortsAllRanksAndRethrows) {
  EXPECT_THROW(run_spmd(MeshShape{2, 2},
                        [&](RankContext& ctx) {
                          if (ctx.rank == 2) throw std::runtime_error("rank2");
                          // Other ranks block in a barrier; must be released.
                          ctx.world.barrier();
                          ctx.world.barrier();
                        }),
               std::runtime_error);
}

TEST(Collectives, AllreduceSumAndMax) {
  run_spmd(MeshShape{2, 2}, [&](RankContext& ctx) {
    int sum = ctx.world.allreduce_sum(ctx.rank + 1);
    EXPECT_EQ(sum, 1 + 2 + 3 + 4);
    int mx = ctx.world.allreduce_max(ctx.rank * 10);
    EXPECT_EQ(mx, 30);
    EXPECT_TRUE(ctx.world.allreduce_or(ctx.rank == 3));
    EXPECT_FALSE(ctx.world.allreduce_or(false));
  });
}

TEST(Collectives, AllgatherOrdersByRank) {
  run_spmd(MeshShape{1, 4}, [&](RankContext& ctx) {
    auto got = ctx.world.allgather(100 + ctx.rank);
    EXPECT_EQ(got, (std::vector<int>{100, 101, 102, 103}));
  });
}

TEST(Collectives, AllgathervVariableSizes) {
  run_spmd(MeshShape{2, 2}, [&](RankContext& ctx) {
    std::vector<int> mine(size_t(ctx.rank), ctx.rank);  // rank r sends r copies
    std::vector<size_t> offsets;
    auto got = ctx.world.allgatherv(std::span<const int>(mine), &offsets);
    EXPECT_EQ(got.size(), 0u + 1 + 2 + 3);
    EXPECT_EQ(offsets, (std::vector<size_t>{0, 0, 1, 3, 6}));
    EXPECT_EQ(got, (std::vector<int>{1, 2, 2, 3, 3, 3}));
  });
}

TEST(Collectives, ReduceScatterBlockSums) {
  // Each rank contributes [rank, rank, rank, rank] over 2 blocks of size 2;
  // rank r receives block r summed over ranks.
  run_spmd(MeshShape{1, 2}, [&](RankContext& ctx) {
    std::vector<int> contrib = {ctx.rank, ctx.rank + 1, 10 * ctx.rank,
                                10 * ctx.rank + 1};
    auto mine = ctx.world.reduce_scatter_block(
        std::span<const int>(contrib), 2, [](int a, int b) { return a + b; });
    ASSERT_EQ(mine.size(), 2u);
    if (ctx.rank == 0) {
      EXPECT_EQ(mine[0], 0 + 1);
      EXPECT_EQ(mine[1], 1 + 2);
    } else {
      EXPECT_EQ(mine[0], 0 + 10);
      EXPECT_EQ(mine[1], 1 + 11);
    }
  });
}

TEST(Collectives, AllreduceInplaceUnionsWords) {
  run_spmd(MeshShape{2, 2}, [&](RankContext& ctx) {
    std::vector<uint64_t> bits(8, 0);
    bits[size_t(ctx.rank) * 2] = uint64_t(1) << ctx.rank;
    ctx.world.allreduce_inplace(std::span<uint64_t>(bits),
                                [](uint64_t a, uint64_t b) { return a | b; });
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(bits[size_t(r) * 2], uint64_t(1) << r) << "rank " << r;
    EXPECT_EQ(bits[1], 0u);
  });
}

TEST(Collectives, AlltoallvRoutesMessages) {
  run_spmd(MeshShape{2, 2}, [&](RankContext& ctx) {
    int p = ctx.world.size();
    // Rank s sends (s*10+d) repeated (s+d) times to rank d.
    std::vector<std::vector<int>> to(p);
    for (int d = 0; d < p; ++d)
      to[d].assign(size_t(ctx.rank + d), ctx.rank * 10 + d);
    std::vector<size_t> src_off;
    auto got = ctx.world.alltoallv(to, &src_off);
    ASSERT_EQ(src_off.size(), size_t(p) + 1);
    for (int s = 0; s < p; ++s) {
      size_t n = src_off[s + 1] - src_off[s];
      EXPECT_EQ(n, size_t(s + ctx.rank));
      for (size_t i = src_off[s]; i < src_off[s + 1]; ++i)
        EXPECT_EQ(got[i], s * 10 + ctx.rank);
    }
  });
}

TEST(Collectives, AlltoallvEmptyMessagesOk) {
  run_spmd(MeshShape{1, 3}, [&](RankContext& ctx) {
    std::vector<std::vector<int>> to(3);
    auto got = ctx.world.alltoallv(to);
    EXPECT_TRUE(got.empty());
  });
}

TEST(Collectives, BroadcastFromNonzeroRoot) {
  run_spmd(MeshShape{2, 2}, [&](RankContext& ctx) {
    std::vector<double> data(5, ctx.rank == 2 ? 3.25 : 0.0);
    ctx.world.broadcast(std::span<double>(data), 2);
    for (double d : data) EXPECT_DOUBLE_EQ(d, 3.25);
  });
}

TEST(Collectives, RowAndColumnCommsAreDisjoint) {
  run_spmd(MeshShape{2, 3}, [&](RankContext& ctx) {
    // Row sum: ranks in row r are {3r, 3r+1, 3r+2}.
    int row_sum = ctx.row.allreduce_sum(ctx.rank);
    int r = ctx.row_index();
    EXPECT_EQ(row_sum, 3 * r + 3 * r + 1 + 3 * r + 2);
    // Column gather: ranks in column c are {c, c+3}.
    auto col = ctx.col.allgather(ctx.rank);
    EXPECT_EQ(col, (std::vector<int>{ctx.col_index(), ctx.col_index() + 3}));
  });
}

TEST(Stats, BytesAndModeledTimeRecorded) {
  auto report = run_spmd(MeshShape{2, 2}, [&](RankContext& ctx) {
    std::vector<std::vector<int>> to(4);
    for (int d = 0; d < 4; ++d) to[d].assign(100, d);
    ctx.world.alltoallv(to);
  });
  const auto& e0 = report.per_rank[0].entry(CollectiveType::Alltoallv);
  EXPECT_EQ(e0.calls, 1u);
  // 3 remote destinations x 100 ints.
  EXPECT_EQ(e0.bytes_sent, 3u * 100 * sizeof(int));
  EXPECT_GT(e0.modeled_s, 0.0);
  // In a 2x2 mesh with rows as supernodes, half of remote traffic crosses.
  EXPECT_EQ(e0.bytes_inter_supernode, 2u * 100 * sizeof(int));
  // Modeled time identical on all ranks.
  for (const auto& s : report.per_rank)
    EXPECT_DOUBLE_EQ(s.entry(CollectiveType::Alltoallv).modeled_s,
                     e0.modeled_s);
  CommStats agg = report.aggregate();
  EXPECT_EQ(agg.entry(CollectiveType::Alltoallv).calls, 4u);
}

TEST(Stats, MergeAndReset) {
  CommStats a, b;
  a.record(CollectiveType::Allgather, 100, 40, 0.5, 0.6, 0.05);
  b.record(CollectiveType::Allgather, 50, 0, 0.1, 0.2, 0.01);
  a.merge(b);
  EXPECT_EQ(a.entry(CollectiveType::Allgather).bytes_sent, 150u);
  EXPECT_EQ(a.entry(CollectiveType::Allgather).calls, 2u);
  EXPECT_DOUBLE_EQ(a.total_modeled_s(), 0.6);
  a.reset();
  EXPECT_EQ(a.total_bytes_sent(), 0u);
}

TEST(Collectives, InplaceAllreduceSingleRankIsNoop) {
  sim::run_spmd(sim::MeshShape{1, 1}, [&](sim::RankContext& ctx) {
    std::vector<uint64_t> data = {1, 2, 3};
    ctx.world.allreduce_inplace(std::span<uint64_t>(data),
                                [](uint64_t a, uint64_t b) { return a | b; });
    EXPECT_EQ(data, (std::vector<uint64_t>{1, 2, 3}));
    // No bytes recorded for the no-op.
    EXPECT_EQ(ctx.stats.entry(CollectiveType::Allreduce).calls, 0u);
  });
}

TEST(Collectives, AllgathervAllEmpty) {
  sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
    std::vector<int> nothing;
    std::vector<size_t> off;
    auto got = ctx.world.allgatherv(std::span<const int>(nothing), &off);
    EXPECT_TRUE(got.empty());
    EXPECT_EQ(off, (std::vector<size_t>{0, 0, 0, 0, 0}));
  });
}

TEST(Collectives, BroadcastStructPayload) {
  struct Payload {
    double a;
    int b;
  };
  sim::run_spmd(sim::MeshShape{1, 3}, [&](sim::RankContext& ctx) {
    std::vector<Payload> data(4);
    if (ctx.rank == 1)
      for (int i = 0; i < 4; ++i) data[size_t(i)] = {i * 1.5, i};
    ctx.world.broadcast(std::span<Payload>(data), 1);
    for (int i = 0; i < 4; ++i) {
      EXPECT_DOUBLE_EQ(data[size_t(i)].a, i * 1.5);
      EXPECT_EQ(data[size_t(i)].b, i);
    }
  });
}

TEST(Collectives, AllreduceMinOnSigned) {
  sim::run_spmd(sim::MeshShape{2, 2}, [&](sim::RankContext& ctx) {
    int64_t v = ctx.rank == 2 ? -5 : ctx.rank;
    int64_t mn = ctx.world.allreduce(
        v, [](int64_t a, int64_t b) { return std::min(a, b); });
    EXPECT_EQ(mn, -5);
  });
}

TEST(Barrier, ManyIterationsStayInSync) {
  // Stress sequencing: a counter that every rank increments between barriers
  // must be exactly nranks * i after barrier i.
  const int iters = 50;
  std::atomic<int> counter{0};
  run_spmd(MeshShape{1, 4}, [&](RankContext& ctx) {
    for (int i = 1; i <= iters; ++i) {
      counter.fetch_add(1);
      ctx.world.barrier();
      EXPECT_EQ(counter.load(), 4 * i);
      ctx.world.barrier();
    }
  });
}

}  // namespace
}  // namespace sunbfs::sim
