// Tests for the observability layer (src/obs): span tracing on the two
// clocks, Chrome trace export, the metrics registry and its JSON round
// trip, and the zero-allocation guarantee of the disabled tracer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>

#include "bfs/runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/runtime.hpp"

using namespace sunbfs;

// ---- global allocation counter (for the zero-overhead test) ---------------

namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (!p) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace {

// Fresh-tracer fixture: every test starts disabled and empty.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
  void TearDown() override {
    obs::Tracer::instance().disable();
    obs::Tracer::instance().clear();
  }
};

#if SUNBFS_OBS_TRACE_ENABLED

TEST_F(ObsTest, DisabledSpanAllocatesNothing) {
  ASSERT_FALSE(obs::Tracer::instance().enabled());
  // Not attached, not enabled: constructing spans and advancing the clock
  // must be free.  (The real guarantee is one thread-local pointer check.)
  uint64_t before = g_allocs.load();
  for (int i = 0; i < 10000; ++i) {
    obs::Span span("test", "noop", i);
    obs::Tracer::advance_modeled(1.0);
    obs::complete_span("test", "noop", i, 0.1, 0.2);
    obs::instant("test", "noop");
  }
  EXPECT_EQ(g_allocs.load(), before);
  EXPECT_EQ(obs::Tracer::instance().event_count(), 0u);
}

TEST_F(ObsTest, SpanNestingAndOrdering) {
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  obs::TraceBuffer* buf = tracer.attach_thread(3);
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->rank(), 3);

  {
    obs::Span outer("bfs", "level", 1);
    obs::Tracer::advance_modeled(1.0);
    {
      obs::Span inner("comm", "allreduce");
      obs::Tracer::advance_modeled(0.5);
    }
    obs::Tracer::advance_modeled(0.25);
  }
  tracer.detach_thread();

  ASSERT_EQ(buf->events().size(), 2u);
  // Spans complete inner-first (destructor order).
  const obs::TraceEvent& inner = buf->events()[0];
  const obs::TraceEvent& outer = buf->events()[1];
  EXPECT_STREQ(inner.name, "allreduce");
  EXPECT_STREQ(outer.name, "level");
  EXPECT_EQ(outer.arg, 1);
  // Modeled clock: outer spans [0, 1.75], inner spans [1.0, 1.5].
  EXPECT_DOUBLE_EQ(outer.modeled_begin_s, 0.0);
  EXPECT_DOUBLE_EQ(outer.modeled_dur_s, 1.75);
  EXPECT_DOUBLE_EQ(inner.modeled_begin_s, 1.0);
  EXPECT_DOUBLE_EQ(inner.modeled_dur_s, 0.5);
  // Nesting on the wall clock too: inner within outer.
  EXPECT_GE(inner.wall_begin_s, outer.wall_begin_s);
  EXPECT_LE(inner.wall_begin_s + inner.wall_dur_s,
            outer.wall_begin_s + outer.wall_dur_s + 1e-9);
}

TEST_F(ObsTest, CompleteSpanAdvanceSemantics) {
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  obs::TraceBuffer* buf = tracer.attach_thread(0);
  ASSERT_NE(buf, nullptr);

  // advance=false lays the span down without moving the clock (chip kernels
  // whose modeled time a caller attributes).
  obs::complete_span("chip", "kernel", 42, 0.001, 2.0);
  EXPECT_DOUBLE_EQ(buf->modeled_now(), 0.0);
  // advance=true moves it (collectives).
  obs::complete_span("comm", "alltoallv", 128, 0.001, 3.0, true);
  EXPECT_DOUBLE_EQ(buf->modeled_now(), 3.0);
  tracer.detach_thread();

  ASSERT_EQ(buf->events().size(), 2u);
  EXPECT_DOUBLE_EQ(buf->events()[0].modeled_dur_s, 2.0);
  EXPECT_DOUBLE_EQ(buf->events()[1].modeled_begin_s, 0.0);
  EXPECT_DOUBLE_EQ(buf->events()[1].modeled_dur_s, 3.0);
}

TEST_F(ObsTest, ReattachExtendsPerRankTimeline) {
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  obs::TraceBuffer* first = tracer.attach_thread(1);
  obs::Tracer::advance_modeled(5.0);
  tracer.detach_thread();
  obs::TraceBuffer* again = tracer.attach_thread(1);
  EXPECT_EQ(first, again);  // same rank -> same buffer, clock continues
  EXPECT_DOUBLE_EQ(again->modeled_now(), 5.0);
  tracer.detach_thread();
}

TEST_F(ObsTest, ChromeTraceJsonSchema) {
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  tracer.attach_thread(0);
  {
    obs::Span span("bfs", "level", 7);
    obs::Tracer::advance_modeled(0.5);
  }
  obs::instant("fault", "rollback_from", 3);
  tracer.detach_thread();

  std::ostringstream os;
  tracer.write_chrome_trace(os);
  obs::Json doc = obs::Json::parse(os.str());  // throws on malformed JSON

  const obs::Json& events = doc.at("traceEvents");
  // Metadata (thread name) + one complete span + one instant.
  ASSERT_EQ(events.size(), 3u);
  bool saw_meta = false, saw_span = false, saw_instant = false;
  for (size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events.at(i);
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      saw_meta = true;
      EXPECT_EQ(e.at("name").as_string(), "thread_name");
      EXPECT_EQ(e.at("args").at("name").as_string(), "rank 0");
    } else if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(e.at("cat").as_string(), "bfs");
      EXPECT_EQ(e.at("name").as_string(), "level");
      EXPECT_EQ(e.at("tid").as_int(), 0);
      // ts/dur are modeled microseconds.
      EXPECT_DOUBLE_EQ(e.at("dur").as_double(), 0.5 * 1e6);
      EXPECT_EQ(e.at("args").at("arg").as_int(), 7);
      EXPECT_TRUE(e.at("args").has("wall_dur_s"));
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(e.at("cat").as_string(), "fault");
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST_F(ObsTest, SpmdRunProducesPerRankTimelines) {
  auto& tracer = obs::Tracer::instance();
  tracer.enable();
  sim::run_spmd(sim::MeshShape{2, 2}, [](sim::RankContext& ctx) {
    ctx.world.barrier();
    (void)ctx.world.allreduce_sum(uint64_t(ctx.rank));
  });
  // Each rank emitted at least: barrier span, allreduce span, rank_body.
  EXPECT_GE(tracer.event_count(), 12u);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  obs::Json doc = obs::Json::parse(os.str());
  bool tids[4] = {};
  const obs::Json& events = doc.at("traceEvents");
  for (size_t i = 0; i < events.size(); ++i) {
    int64_t tid = events.at(i).at("tid").as_int();
    ASSERT_GE(tid, 0);
    ASSERT_LT(tid, 4);
    tids[tid] = true;
  }
  EXPECT_TRUE(tids[0] && tids[1] && tids[2] && tids[3]);
}

#endif  // SUNBFS_OBS_TRACE_ENABLED

// ---- metrics registry ------------------------------------------------------

TEST(Metrics, CountersGaugesInfoBasics) {
  obs::Report r;
  EXPECT_TRUE(r.empty());
  r.add_counter("a.calls", 2);
  r.add_counter("a.calls", 3);
  r.gauge("a.seconds", 1.5);
  r.info("tool", "test");
  r.info("scale", int64_t(14));
  EXPECT_EQ(r.counter("a.calls"), 5u);
  EXPECT_DOUBLE_EQ(r.gauge("a.seconds"), 1.5);
  EXPECT_EQ(r.info("tool"), "test");
  EXPECT_EQ(r.info("scale"), "14");
  EXPECT_FALSE(r.has_counter("missing"));
  EXPECT_EQ(r.counter("missing"), 0u);
}

TEST(Metrics, MergeAcrossRanks) {
  // Per-rank reports aggregate like an allreduce: counters and histograms
  // sum, gauges last-write, info unions.
  obs::Report ranks[4];
  for (int r = 0; r < 4; ++r) {
    ranks[r].add_counter("comm.alltoallv.calls", 10);
    ranks[r].add_counter("comm.alltoallv.bytes_sent", uint64_t(r) * 100);
    ranks[r].gauge("comm.total_modeled_s", 0.25);
    ranks[r].histogram("bfs.frontier_active").add(uint64_t(1) << r);
  }
  obs::Report total;
  for (int r = 0; r < 4; ++r) total.merge(ranks[r]);
  EXPECT_EQ(total.counter("comm.alltoallv.calls"), 40u);
  EXPECT_EQ(total.counter("comm.alltoallv.bytes_sent"), 600u);
  EXPECT_DOUBLE_EQ(total.gauge("comm.total_modeled_s"), 0.25);
  EXPECT_EQ(total.histogram("bfs.frontier_active").total(), 4u);
}

TEST(Metrics, JsonRoundTrip) {
  obs::Report r;
  r.info("tool", "round_trip");
  r.add_counter("x.calls", 123456789);
  r.gauge("x.seconds", 0.0625);
  r.histogram("x.sizes").add(7);
  r.histogram("x.sizes").add(4096, 3);

  obs::Report back = obs::Report::from_json(r.to_json());
  EXPECT_EQ(back.info("tool"), "round_trip");
  EXPECT_EQ(back.counter("x.calls"), 123456789u);
  EXPECT_DOUBLE_EQ(back.gauge("x.seconds"), 0.0625);
  EXPECT_EQ(back.histogram("x.sizes").total(), 4u);
  // Byte-identical re-serialization: the round trip is lossless.
  EXPECT_EQ(back.to_json(), r.to_json());
}

TEST(Metrics, SchemaVersionRejected) {
  EXPECT_THROW(obs::Report::from_json("{\"schema\": \"other.metrics/1\"}"),
               std::runtime_error);
  EXPECT_THROW(obs::Report::from_json("{\"schema\": \"sunbfs.metrics/999\"}"),
               std::runtime_error);
}

TEST(Metrics, SpmdReportAggregation) {
  // CommStats/FaultStats fold into one Report whose totals equal the
  // aggregate the runtime computed rank-by-rank.
  auto spmd = sim::run_spmd(sim::MeshShape{2, 2}, [](sim::RankContext& ctx) {
    std::vector<std::vector<uint64_t>> to(size_t(ctx.nranks()));
    for (int r = 0; r < ctx.nranks(); ++r) to[size_t(r)] = {uint64_t(r), 7};
    (void)ctx.world.alltoallv(to);
    (void)ctx.world.allreduce_sum(uint64_t(1));
  });
  obs::Report rep;
  spmd.to_report(rep);
  auto agg = spmd.aggregate();
  EXPECT_EQ(rep.counter("spmd.ranks"), 4u);
  EXPECT_EQ(rep.counter("comm.total_bytes_sent"), agg.total_bytes_sent());
  EXPECT_EQ(rep.counter("comm.alltoallv.calls"),
            agg.entry(sim::CollectiveType::Alltoallv).calls);
  EXPECT_DOUBLE_EQ(rep.gauge("comm.total_modeled_s"), agg.total_modeled_s());
  EXPECT_GE(rep.gauge("comm.total_imbalance_s"), 0.0);
  // The imbalance split is a portion of wall time, never more than it.
  EXPECT_LE(rep.gauge("comm.total_imbalance_s"),
            rep.gauge("comm.total_wall_s") + 1e-12);
}

TEST(Metrics, RunnerReportMatchesStdout) {
  // The numbers --metrics-out serializes are the numbers the runner prints:
  // same RunnerResult fields, no separate computation.
  bfs::RunnerConfig cfg;
  cfg.graph.scale = 10;
  cfg.num_roots = 2;
  cfg.validate = true;
  sim::Topology topo(sim::MeshShape{2, 2});
  auto result = bfs::run_graph500(topo, cfg);
  ASSERT_TRUE(result.all_valid);

  obs::Report rep;
  result.to_report(rep);
  EXPECT_DOUBLE_EQ(rep.gauge("graph500.harmonic_gteps"),
                   result.harmonic_gteps);
  EXPECT_EQ(rep.counter("graph500.roots"), uint64_t(result.runs.size()));
  EXPECT_EQ(rep.counter("graph500.valid_roots"), uint64_t(result.runs.size()));
  EXPECT_EQ(rep.info("graph500.all_valid"), "true");
  EXPECT_EQ(rep.counter("graph500.num_eh"), result.num_eh);
  uint64_t edges = 0;
  for (const auto& r : result.runs) edges += r.traversed_edges;
  EXPECT_EQ(rep.counter("graph500.traversed_edges"), edges);
  EXPECT_GT(rep.counter("bfs.iterations"), 0u);
  EXPECT_GT(rep.histogram("bfs.frontier_active").total(), 0u);
  // And it survives the serialization boundary the tools consume through.
  obs::Report back = obs::Report::from_json(rep.to_json());
  EXPECT_DOUBLE_EQ(back.gauge("graph500.harmonic_gteps"),
                   result.harmonic_gteps);
}

// ---- JSON parser ----------------------------------------------------------

TEST(Json, ParsesAndDumps) {
  obs::Json doc = obs::Json::parse(
      "{\"a\": [1, 2.5, true, null, \"x\\u0041\"], \"b\": {\"c\": -3}}");
  EXPECT_EQ(doc.at("a").size(), 5u);
  EXPECT_DOUBLE_EQ(doc.at("a").at(size_t(1)).as_double(), 2.5);
  EXPECT_TRUE(doc.at("a").at(size_t(2)).as_bool());
  EXPECT_EQ(doc.at("a").at(size_t(4)).as_string(), "xA");
  EXPECT_EQ(doc.at("b").at("c").as_int(), -3);
  // dump -> parse is stable.
  obs::Json again = obs::Json::parse(doc.dump(2));
  EXPECT_EQ(again.at("b").at("c").as_int(), -3);
}

TEST(Json, RejectsMalformed) {
  EXPECT_THROW(obs::Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("tru"), std::runtime_error);
  EXPECT_THROW(obs::Json::parse("{} trailing"), std::runtime_error);
}

}  // namespace
