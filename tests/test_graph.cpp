// Tests for the graph substrate: R-MAT generator conformance, vertex
// scrambling, CSR construction, reference BFS, Graph 500 validation rules
// and TEPS accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <map>
#include <set>

#include "graph/csr.hpp"
#include "graph/gteps.hpp"
#include "graph/io.hpp"
#include "graph/lattice.hpp"
#include "graph/rmat.hpp"
#include "graph/validate.hpp"
#include "support/check.hpp"

namespace sunbfs::graph {
namespace {

TEST(Scrambler, IsABijection) {
  for (int scale : {1, 2, 3, 5, 10}) {
    VertexScrambler s(scale, 12345);
    uint64_t n = uint64_t(1) << scale;
    std::set<Vertex> seen;
    for (uint64_t v = 0; v < n; ++v) {
      Vertex sv = s.scramble(Vertex(v));
      ASSERT_GE(sv, 0);
      ASSERT_LT(uint64_t(sv), n) << "scale " << scale;
      seen.insert(sv);
      ASSERT_EQ(s.unscramble(sv), Vertex(v));
    }
    EXPECT_EQ(seen.size(), n) << "scale " << scale;
  }
}

TEST(Scrambler, DifferentSeedsDiffer) {
  VertexScrambler a(10, 1), b(10, 2);
  int diff = 0;
  for (Vertex v = 0; v < 1024; ++v)
    if (a.scramble(v) != b.scramble(v)) ++diff;
  EXPECT_GT(diff, 1000);
}

TEST(Rmat, DeterministicAndRangeConsistent) {
  Graph500Config cfg;
  cfg.scale = 10;
  cfg.seed = 99;
  auto all = generate_rmat(cfg);
  EXPECT_EQ(all.size(), cfg.num_edges());
  // A sub-range must equal the corresponding slice of the full list.
  auto slice = generate_rmat_range(cfg, 100, 200);
  for (size_t i = 0; i < slice.size(); ++i)
    EXPECT_EQ(slice[i], all[100 + i]);
  // Regenerating gives identical output.
  auto again = generate_rmat(cfg);
  EXPECT_EQ(all.size(), again.size());
  EXPECT_TRUE(std::equal(all.begin(), all.end(), again.begin()));
}

TEST(Rmat, EndpointsInRange) {
  Graph500Config cfg;
  cfg.scale = 8;
  for (const Edge& e : generate_rmat(cfg)) {
    ASSERT_GE(e.u, 0);
    ASSERT_LT(uint64_t(e.u), cfg.num_vertices());
    ASSERT_GE(e.v, 0);
    ASSERT_LT(uint64_t(e.v), cfg.num_vertices());
  }
}

TEST(Rmat, DegreeDistributionIsSkewed) {
  // The defining property the whole paper builds on: extremely skewed
  // degrees.  At scale 14 the max degree must dwarf the mean (32) and a
  // large fraction of vertices must sit far below the mean.
  Graph500Config cfg;
  cfg.scale = 14;
  auto edges = generate_rmat(cfg);
  auto deg = undirected_degrees(cfg.num_vertices(), edges);
  uint64_t max_deg = 0, below_mean = 0;
  for (uint64_t d : deg) {
    max_deg = std::max(max_deg, d);
    if (d < 32) ++below_mean;
  }
  EXPECT_GT(max_deg, 2000u);  // heavy hubs
  EXPECT_GT(below_mean, cfg.num_vertices() / 2);  // long light tail
}

TEST(Rmat, ScrambledIdsCarryNoDegreeInfo) {
  // Average degree of the low-id half must be close to the high-id half;
  // without scrambling, low ids (many zero bits chosen with prob A=0.57)
  // would be much heavier.
  Graph500Config cfg;
  cfg.scale = 12;
  auto deg = undirected_degrees(cfg.num_vertices(), generate_rmat(cfg));
  uint64_t half = cfg.num_vertices() / 2;
  double lo = 0, hi = 0;
  for (uint64_t v = 0; v < half; ++v) lo += double(deg[v]);
  for (uint64_t v = half; v < cfg.num_vertices(); ++v) hi += double(deg[v]);
  EXPECT_LT(std::abs(lo - hi) / (lo + hi), 0.05);
}

TEST(Csr, FromUndirectedBuildsSymmetricAdjacency) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 2}, {0, 1}};
  Csr adj = Csr::from_undirected(4, edges);
  EXPECT_EQ(adj.num_rows(), 4u);
  EXPECT_EQ(adj.num_arcs(), 8u);  // 2 per edge, self loop twice
  EXPECT_EQ(adj.degree(0), 2u);   // duplicate edge kept
  EXPECT_EQ(adj.degree(1), 3u);
  EXPECT_EQ(adj.degree(2), 3u);
  EXPECT_EQ(adj.degree(3), 0u);
  auto n1 = adj.neighbors(1);
  std::multiset<Vertex> got(n1.begin(), n1.end());
  EXPECT_EQ(got, (std::multiset<Vertex>{0, 0, 2}));
}

TEST(Csr, FromArcsGroupsByRow) {
  std::vector<Vertex> rows = {2, 0, 2, 1};
  std::vector<Vertex> vals = {10, 20, 30, 40};
  Csr csr = Csr::from_arcs(3, rows, vals);
  EXPECT_EQ(csr.degree(0), 1u);
  EXPECT_EQ(csr.neighbors(0)[0], 20);
  EXPECT_EQ(csr.degree(2), 2u);
  std::multiset<Vertex> r2(csr.neighbors(2).begin(), csr.neighbors(2).end());
  EXPECT_EQ(r2, (std::multiset<Vertex>{10, 30}));
}

TEST(ReferenceBfs, SimplePath) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}};
  auto parent = reference_bfs(5, edges, 0);
  EXPECT_EQ(parent[0], 0);
  EXPECT_EQ(parent[1], 0);
  EXPECT_EQ(parent[2], 1);
  EXPECT_EQ(parent[3], 2);
  EXPECT_EQ(parent[4], kNoVertex);
}

TEST(Validate, AcceptsReferenceBfs) {
  Graph500Config cfg;
  cfg.scale = 10;
  auto edges = generate_rmat(cfg);
  Vertex root = edges[0].u;
  auto parent = reference_bfs(cfg.num_vertices(), edges, root);
  auto res = validate_bfs(cfg.num_vertices(), edges, root, parent);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_GT(res.reached, 0u);
  EXPECT_GT(res.edges_in_component, 0u);
  EXPECT_LE(res.edges_in_component, edges.size());
}

TEST(Validate, RejectsBadRootParent) {
  std::vector<Edge> edges = {{0, 1}};
  std::vector<Vertex> parent = {kNoVertex, 0};  // parent[0] should be 0
  auto res = validate_bfs(2, edges, 0, parent);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("root"), std::string::npos);
}

TEST(Validate, RejectsFabricatedTreeEdge) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}};
  std::vector<Vertex> parent = {0, 0, 0};  // 2's parent 0: no such edge
  auto res = validate_bfs(3, edges, 0, parent);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("not in graph"), std::string::npos);
}

TEST(Validate, RejectsNonSpanningTree) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}};
  std::vector<Vertex> parent = {0, 0, kNoVertex};  // 2 reachable but missed
  auto res = validate_bfs(3, edges, 0, parent);
  EXPECT_FALSE(res.ok);
}

TEST(Validate, RejectsLevelSkip) {
  // Path 0-1-2-3 plus chord 0-3 claimed as tree edge at wrong level is
  // caught by level rules: parent chain 3->2->1->0 but parent[3]=0 gives
  // level(3)=1 while edge (2,3) spans levels 2 and 1 — fine; instead
  // fabricate: parent[2]=0 -> not an edge.  Use cycle instead:
  std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}};
  std::vector<Vertex> parent = {0, 2, 1};  // 1<->2 parent cycle
  auto res = validate_bfs(3, edges, 0, parent);
  EXPECT_FALSE(res.ok);
}

TEST(Validate, RejectsCrossComponentReach) {
  std::vector<Edge> edges = {{0, 1}, {2, 3}};
  std::vector<Vertex> parent = {0, 0, kNoVertex, kNoVertex};
  auto res = validate_bfs(4, edges, 0, parent);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.reached, 2u);
  EXPECT_EQ(res.edges_in_component, 1u);
  // Claiming to reach the other component without a path must fail.
  std::vector<Vertex> bad = {0, 0, 3, 2};  // 2,3 parented to each other
  EXPECT_FALSE(validate_bfs(4, edges, 0, bad).ok);
}

TEST(Validate, SelfLoopsExcludedFromTeps) {
  std::vector<Edge> edges = {{0, 1}, {0, 0}, {1, 1}};
  auto parent = reference_bfs(2, edges, 0);
  auto res = validate_bfs(2, edges, 0, parent);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.edges_in_component, 1u);
}

TEST(Levels, ComputedByWalking) {
  std::vector<Vertex> parent = {0, 0, 1, 1, kNoVertex};
  auto lv = levels_from_parents(5, parent, 0);
  EXPECT_EQ(lv, (std::vector<int64_t>{0, 1, 2, 2, -1}));
}

TEST(Levels, DetectsCycle) {
  std::vector<Vertex> parent = {0, 2, 1};
  EXPECT_THROW(levels_from_parents(3, parent, 0), CheckError);
}

TEST(Gteps, HarmonicMean) {
  std::vector<BfsRunSample> runs = {{1.0, 1000}, {1.0, 3000}};
  // Harmonic mean of 1000 and 3000 TEPS = 1500.
  EXPECT_DOUBLE_EQ(harmonic_mean_teps(runs), 1500.0);
  EXPECT_DOUBLE_EQ(gteps(1.5e12), 1500.0);
}

TEST(Gteps, DegreeDistributionCounts) {
  std::vector<uint64_t> degrees = {0, 1, 1, 5, 5, 5};
  auto dist = degree_distribution(degrees);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[1], 2u);
  EXPECT_EQ(dist[5], 3u);
}


TEST(Validate, RejectsWrongSizeParentArray) {
  std::vector<Edge> edges = {{0, 1}};
  std::vector<Vertex> parent = {0};
  EXPECT_FALSE(validate_bfs(2, edges, 0, parent).ok);
  EXPECT_FALSE(validate_bfs(2, edges, 5, std::vector<Vertex>{0, 0}).ok);
}

TEST(Rmat, MinimalScaleOne) {
  Graph500Config cfg;
  cfg.scale = 1;
  auto edges = generate_rmat(cfg);
  EXPECT_EQ(edges.size(), 32u);
  for (const Edge& e : edges) {
    ASSERT_GE(e.u, 0);
    ASSERT_LE(e.u, 1);
    ASSERT_GE(e.v, 0);
    ASSERT_LE(e.v, 1);
  }
}

TEST(Gteps, RejectsEmptyAndZeroRuns) {
  std::vector<BfsRunSample> empty;
  EXPECT_THROW(harmonic_mean_teps(empty), CheckError);
  std::vector<BfsRunSample> zero = {{0.0, 100}};
  EXPECT_THROW(harmonic_mean_teps(zero), CheckError);
}

TEST(EdgeListIo, TextRoundTripWithCommentsAndBlanks) {
  Graph500Config cfg;
  cfg.scale = 8;
  auto edges = generate_rmat(cfg);
  std::string path = ::testing::TempDir() + "/edges.txt";
  write_edge_list_text(path, edges);
  uint64_t n = 0;
  auto back = read_edge_list_text(path, &n);
  EXPECT_EQ(back.size(), edges.size());
  EXPECT_TRUE(std::equal(edges.begin(), edges.end(), back.begin()));
  EXPECT_LE(n, cfg.num_vertices());
  EXPECT_GT(n, 0u);
}

TEST(EdgeListIo, BinaryRoundTrip) {
  Graph500Config cfg;
  cfg.scale = 9;
  auto edges = generate_rmat(cfg);
  std::string path = ::testing::TempDir() + "/edges.bin";
  write_edge_list_binary(path, edges);
  uint64_t n = 0;
  auto back = read_edge_list_binary(path, &n);
  EXPECT_TRUE(std::equal(edges.begin(), edges.end(), back.begin()));
}

TEST(EdgeListIo, RejectsMissingAndMalformedFiles) {
  uint64_t n = 0;
  EXPECT_THROW(read_edge_list_text("/nonexistent/file.txt", &n), CheckError);
  std::string path = ::testing::TempDir() + "/bad.txt";
  {
    std::ofstream out(path);
    out << "# header\n1 2\nnot numbers here\n";
  }
  EXPECT_THROW(read_edge_list_text(path, &n), CheckError);
  std::string badbin = ::testing::TempDir() + "/bad.bin";
  {
    std::ofstream out(badbin, std::ios::binary);
    out << "xyz";  // not a multiple of sizeof(Edge)
  }
  EXPECT_THROW(read_edge_list_binary(badbin, &n), CheckError);
}

TEST(EdgeListIo, TextParserSkipsCommentsAndWhitespace) {
  std::string path = ::testing::TempDir() + "/snap.txt";
  {
    std::ofstream out(path);
    out << "# SNAP-style header\n";
    out << "\n";
    out << "  0 5\n";
    out << "\t5 9\n";
    out << "# trailing comment\n";
  }
  uint64_t n = 0;
  auto edges = read_edge_list_text(path, &n);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 5}));
  EXPECT_EQ(edges[1], (Edge{5, 9}));
  EXPECT_EQ(n, 10u);
}

// ------------------------------------- deterministic lattice generators

// Simple, well-formed edge lists: endpoints in range, no self loops, no
// duplicates in either orientation, and exactly the advertised count.
void expect_simple_lattice(const LatticeConfig& cfg) {
  auto edges = generate_lattice(cfg);
  ASSERT_EQ(edges.size(), cfg.num_edges());
  std::set<std::pair<Vertex, Vertex>> seen;
  for (const Edge& e : edges) {
    ASSERT_GE(e.u, 0);
    ASSERT_GE(e.v, 0);
    ASSERT_LT(uint64_t(e.u), cfg.num_vertices());
    ASSERT_LT(uint64_t(e.v), cfg.num_vertices());
    ASSERT_NE(e.u, e.v) << "self loop";
    auto key = std::minmax(e.u, e.v);
    ASSERT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate edge " << e.u << "-" << e.v;
  }
}

TEST(Lattice, GeneratesSimpleGraphsOfTheAdvertisedSize) {
  expect_simple_lattice(LatticeConfig::path(2));
  expect_simple_lattice(LatticeConfig::path(257));
  expect_simple_lattice(LatticeConfig::grid(1, 7));
  expect_simple_lattice(LatticeConfig::grid(8, 13));
  expect_simple_lattice(LatticeConfig::torus(5, 9));
  // Short torus dimensions must not emit self loops or duplicate wraps.
  expect_simple_lattice(LatticeConfig::torus(2, 6));
  expect_simple_lattice(LatticeConfig::torus(1, 6));
  expect_simple_lattice(LatticeConfig::torus(2, 2));
}

// Same contract as the R-MAT generator: edge i is a pure function of
// (config, i), so disjoint ranges concatenate to the canonical list.
TEST(Lattice, RangeConcatenationIsTheCanonicalList) {
  const LatticeConfig cfg = LatticeConfig::torus(6, 8);
  auto full = generate_lattice(cfg);
  for (int parts : {2, 3, 5}) {
    std::vector<Edge> cat;
    uint64_t m = cfg.num_edges();
    for (int p = 0; p < parts; ++p) {
      auto range = generate_lattice_range(
          cfg, m * uint64_t(p) / uint64_t(parts),
          m * uint64_t(p + 1) / uint64_t(parts));
      cat.insert(cat.end(), range.begin(), range.end());
    }
    ASSERT_EQ(cat.size(), full.size());
    for (size_t i = 0; i < full.size(); ++i) ASSERT_EQ(cat[i], full[i]);
  }
}

// The diameter helper against the serial reference: the BFS eccentricity of
// a corner (path/grid) or any vertex (torus is vertex-transitive) is the
// diameter.
TEST(Lattice, DiameterMatchesReferenceBfsEccentricity) {
  for (const LatticeConfig& cfg :
       {LatticeConfig::path(97), LatticeConfig::grid(9, 14),
        LatticeConfig::torus(8, 11), LatticeConfig::torus(2, 9)}) {
    auto edges = generate_lattice(cfg);
    auto parent = reference_bfs(cfg.num_vertices(), edges, 0);
    auto levels = levels_from_parents(cfg.num_vertices(), parent, 0);
    int64_t ecc = 0;
    for (int64_t l : levels) {
      ASSERT_GE(l, 0) << "lattice must be connected";
      ecc = std::max(ecc, l);
    }
    EXPECT_EQ(uint64_t(ecc), cfg.diameter())
        << cfg.rows << "x" << cfg.cols << " kind "
        << int(cfg.kind);
  }
}

}  // namespace
}  // namespace sunbfs::graph
