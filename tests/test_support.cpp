// Unit tests for the support module: bit vectors, RNG, prefix sums,
// histograms, thread pool, checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "support/bitvector.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/histogram.hpp"
#include "support/prefix.hpp"
#include "support/random.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace sunbfs {
namespace {

TEST(Check, ThrowsCheckErrorWithLocation) {
  try {
    SUNBFS_CHECK_MSG(1 == 2, "math broke");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
}

TEST(Check, PassingConditionDoesNotThrow) {
  EXPECT_NO_THROW(SUNBFS_CHECK(2 + 2 == 4));
}

TEST(BitVector, SetGetClear) {
  BitVector bv(200);
  EXPECT_EQ(bv.size(), 200u);
  EXPECT_FALSE(bv.get(63));
  bv.set(63);
  bv.set(64);
  bv.set(199);
  EXPECT_TRUE(bv.get(63));
  EXPECT_TRUE(bv.get(64));
  EXPECT_TRUE(bv.get(199));
  EXPECT_EQ(bv.count(), 3u);
  bv.clear(64);
  EXPECT_FALSE(bv.get(64));
  EXPECT_EQ(bv.count(), 2u);
}

TEST(BitVector, TestAndSetReportsTransition) {
  BitVector bv(10);
  EXPECT_TRUE(bv.test_and_set(3));
  EXPECT_FALSE(bv.test_and_set(3));
  EXPECT_TRUE(bv.get(3));
}

TEST(BitVector, ForEachSetVisitsInOrder) {
  BitVector bv(300);
  std::vector<size_t> expected = {0, 1, 63, 64, 65, 128, 299};
  for (size_t i : expected) bv.set(i);
  std::vector<size_t> seen;
  bv.for_each_set([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitVector, UnionAndDifference) {
  BitVector a(100), b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);
  BitVector u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3u);
  EXPECT_TRUE(u.get(1) && u.get(50) && u.get(99));
  u.and_not(b);
  EXPECT_EQ(u.count(), 1u);
  EXPECT_TRUE(u.get(1));
}

TEST(BitVector, NoneAndReset) {
  BitVector bv(77);
  EXPECT_TRUE(bv.none());
  bv.set(76);
  EXPECT_FALSE(bv.none());
  bv.reset();
  EXPECT_TRUE(bv.none());
  EXPECT_EQ(bv.size(), 77u);
}

TEST(BitVector, SizeMismatchUnionThrows) {
  BitVector a(10), b(20);
  EXPECT_THROW(a |= b, CheckError);
}

TEST(AtomicBitVector, ConcurrentSetsCountOnce) {
  AtomicBitVector bv(1 << 12);
  std::atomic<size_t> firsts{0};
  ThreadPool pool(4);
  pool.run_chunks(8, [&](size_t chunk) {
    // All chunks try to set the same bits; each bit reports "first" once.
    for (size_t i = chunk % 2; i < bv.size(); i += 2)
      if (bv.test_and_set(i)) firsts.fetch_add(1);
  });
  EXPECT_EQ(firsts.load(), bv.size());
  BitVector snap = bv.snapshot();
  EXPECT_EQ(snap.count(), bv.size());
}

TEST(Random, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  SplitMix64 c(43);
  EXPECT_NE(SplitMix64(42).next(), c.next());
}

TEST(Random, XoshiroUniformBelow) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.next_below(17);
    ASSERT_LT(v, 17u);
  }
}

TEST(Random, XoshiroDoubleInUnitInterval) {
  Xoshiro256StarStar rng(1234);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Prefix, ExclusiveInPlace) {
  std::vector<int> v = {3, 1, 4, 1, 5};
  int total = exclusive_prefix_sum(v);
  EXPECT_EQ(total, 14);
  EXPECT_EQ(v, (std::vector<int>{0, 3, 4, 8, 9}));
}

TEST(Prefix, OffsetsFromCounts) {
  std::vector<uint64_t> counts = {2, 0, 3};
  auto off = offsets_from_counts(counts);
  EXPECT_EQ(off, (std::vector<uint64_t>{0, 2, 2, 5}));
}

TEST(Prefix, UpperOffsetIndexFindsBlock) {
  std::vector<uint64_t> off = {0, 10, 10, 25, 40};
  EXPECT_EQ(upper_offset_index(off, uint64_t(0)), 0u);
  EXPECT_EQ(upper_offset_index(off, uint64_t(9)), 0u);
  EXPECT_EQ(upper_offset_index(off, uint64_t(10)), 2u);
  EXPECT_EQ(upper_offset_index(off, uint64_t(39)), 3u);
  EXPECT_EQ(upper_offset_index(off, uint64_t(40)), 4u);
}

TEST(Histogram, BucketsPowersOfTwo) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bucket(0), 2u);  // {0,1}
  EXPECT_EQ(h.bucket(1), 2u);  // [2,4)
  EXPECT_EQ(h.bucket(2), 1u);  // [4,8)
  EXPECT_EQ(h.bucket(9), 1u);  // [512,1024)
}

TEST(Histogram, SummarySpreadMetrics) {
  Summary s;
  s.add(90);
  s.add(100);
  s.add(110);
  EXPECT_DOUBLE_EQ(s.mean(), 100.0);
  EXPECT_NEAR(s.spread(), (110.0 - 90.0) / 110.0, 1e-12);
  EXPECT_NEAR(s.max_over_mean(), 0.10, 1e-12);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  int sum = 0;
  pool.run_chunks(10, [&](size_t c) { sum += int(c); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run_chunks(8,
                      [&](size_t c) {
                        if (c == 5) throw std::runtime_error("boom");
                      }),
      std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> n{0};
  pool.run_chunks(4, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 4);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, LowestChunkExceptionWinsDeterministically) {
  // Several chunks throw; the caller must always see the error from the
  // lowest chunk index, independent of which worker hit its chunk first.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::string got;
    try {
      pool.run_chunks(64, [&](size_t c) {
        if (c == 7 || c == 13 || c == 50)
          throw std::runtime_error("chunk " + std::to_string(c));
      });
      FAIL() << "run_chunks did not propagate";
    } catch (const std::runtime_error& e) {
      got = e.what();
    }
    EXPECT_EQ(got, "chunk 7");
  }
}

TEST(ThreadPool, ContendedRoundsCountExactly) {
  // Back-to-back rounds with all participants hammering shared counters:
  // the dispatch protocol must neither drop nor double-run a chunk.
  ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    std::atomic<uint64_t> hits{0};
    pool.run_chunks(17, [&](size_t c) {
      hits.fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(c, std::memory_order_relaxed);
    });
    ASSERT_EQ(hits.load(), 17u);
  }
  EXPECT_EQ(total.load(), 200u * (16u * 17u / 2u));
}

TEST(ThreadPool, ReentrantParallelForRunsInline) {
  // A chunk that calls back into its own pool must degrade to inline
  // execution instead of deadlocking on the dispatch protocol.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(300);
  pool.parallel_for(0, 3, [&](size_t lo, size_t hi) {
    for (size_t outer = lo; outer < hi; ++outer)
      pool.parallel_for(outer * 100, (outer + 1) * 100,
                        [&](size_t ilo, size_t ihi) {
                          for (size_t i = ilo; i < ihi; ++i)
                            hits[i].fetch_add(1);
                        });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Nested exceptions still surface with the lowest-chunk guarantee.
  EXPECT_THROW(pool.parallel_for(0, 2,
                                 [&](size_t lo, size_t) {
                                   pool.run_chunks(4, [&](size_t c) {
                                     if (lo == 0 && c == 1)
                                       throw std::runtime_error("inner");
                                   });
                                 }),
               std::runtime_error);
  // And the pool stays usable.
  std::atomic<int> n{0};
  pool.run_chunks(5, [&](size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 5);
}

TEST(ThreadPool, ResolveThreadsPerRank) {
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  // Auto (<= 0): hardware concurrency split across ranks, floored at one.
  EXPECT_EQ(resolve_threads_per_rank(0, 1), hw);
  // Explicit requests pass through.
  EXPECT_EQ(resolve_threads_per_rank(2, 1), 2u);
#ifdef NDEBUG
  // These combinations can exceed the debug-build 2x oversubscription
  // assert on very small hosts; exercise them only where SUNBFS_ASSERT is
  // compiled out.
  EXPECT_EQ(resolve_threads_per_rank(0, 4), std::max<size_t>(1, hw / 4));
  EXPECT_EQ(resolve_threads_per_rank(-3, 2 * hw + 1), 1u);
  EXPECT_EQ(resolve_threads_per_rank(1, 4), 1u);
#endif
}

// ------------------------------------------------------------------ cli

std::vector<char*> argv_of(std::vector<std::string>& args) {
  std::vector<char*> argv;
  for (auto& a : args) argv.push_back(a.data());
  return argv;
}

CliFlags demo_cli() {
  CliFlags cli("demo", "a demo tool");
  cli.add("--scale", "N", "log2 vertex count");
  cli.add("--rate", "QPS", "arrival rate");
  cli.add("--name", "S", "a string");
  cli.add("--verbose", "", "boolean flag");
  return cli;
}

TEST(Cli, UsageListsEveryDeclaredFlag) {
  // The invariant the graph500_runner --help fix rests on: usage() is
  // generated from the same table parse() matches against, so every
  // accepted flag appears in the help text.
  CliFlags cli = demo_cli();
  std::string usage = cli.usage();
  for (const auto& f : cli.flags()) {
    EXPECT_NE(usage.find(f.name), std::string::npos)
        << f.name << " missing from usage";
    if (f.takes_value())
      EXPECT_NE(usage.find(f.name + " " + f.value_name), std::string::npos);
  }
  EXPECT_NE(usage.find("--help"), std::string::npos);  // auto-added
  EXPECT_NE(usage.find("a demo tool"), std::string::npos);
}

TEST(Cli, ParsesTypedValues) {
  CliFlags cli = demo_cli();
  std::vector<std::string> args{"demo",   "--scale", "14",  "--rate",
                                "2.5e3",  "--name",  "abc", "--verbose"};
  auto argv = argv_of(args);
  std::string error;
  ASSERT_TRUE(cli.parse(int(argv.size()), argv.data(), &error)) << error;
  EXPECT_EQ(cli.u64("--scale", 0), 14u);
  EXPECT_DOUBLE_EQ(cli.f64("--rate", 0), 2500);
  EXPECT_EQ(cli.str("--name"), "abc");
  EXPECT_TRUE(cli.has("--verbose"));
  EXPECT_FALSE(cli.help_requested());
  // Defaults for absent flags.
  EXPECT_EQ(cli.u64("--missing", 7), 7u);
}

TEST(Cli, RejectsUnknownFlagAndMissingValue) {
  {
    CliFlags cli = demo_cli();
    std::vector<std::string> args{"demo", "--bogus"};
    auto argv = argv_of(args);
    std::string error;
    EXPECT_FALSE(cli.parse(int(argv.size()), argv.data(), &error));
    EXPECT_NE(error.find("--bogus"), std::string::npos) << error;
  }
  {
    CliFlags cli = demo_cli();
    std::vector<std::string> args{"demo", "--scale"};
    auto argv = argv_of(args);
    std::string error;
    EXPECT_FALSE(cli.parse(int(argv.size()), argv.data(), &error));
    EXPECT_NE(error.find("--scale"), std::string::npos) << error;
  }
}

TEST(Cli, HelpRequestedDoesNotFailParse) {
  CliFlags cli = demo_cli();
  std::vector<std::string> args{"demo", "--help"};
  auto argv = argv_of(args);
  std::string error;
  ASSERT_TRUE(cli.parse(int(argv.size()), argv.data(), &error));
  EXPECT_TRUE(cli.help_requested());
}

TEST(Timer, AccumulatorSumsIntervals) {
  TimeAccumulator acc;
  acc.add(0.5);
  acc.add(0.25);
  EXPECT_DOUBLE_EQ(acc.seconds(), 0.75);
  acc.reset();
  EXPECT_DOUBLE_EQ(acc.seconds(), 0.0);
  {
    ScopedTimer t(acc);
  }
  EXPECT_GE(acc.seconds(), 0.0);
}

}  // namespace
}  // namespace sunbfs
