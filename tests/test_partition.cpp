// Tests for the partitioning substrate: vertex space arithmetic, distributed
// degree computation, E/H/L classification, the six-subgraph 1.5D partition
// (edge conservation + placement rules) and the vanilla 1D baseline.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/rmat.hpp"
#include "graph/csr.hpp"
#include "partition/balance.hpp"
#include "partition/classify.hpp"
#include "partition/part15d.hpp"
#include "partition/part1d.hpp"
#include "sim/runtime.hpp"

namespace sunbfs::partition {
namespace {

using graph::Edge;
using graph::Graph500Config;
using graph::Vertex;

std::vector<Edge> slice_of(const Graph500Config& cfg, int rank, int nranks) {
  uint64_t m = cfg.num_edges();
  return graph::generate_rmat_range(cfg, m * uint64_t(rank) / uint64_t(nranks),
                                    m * uint64_t(rank + 1) / uint64_t(nranks));
}

TEST(VertexSpace, OwnerMatchesIntervals) {
  VertexSpace s{1000, 7};
  uint64_t covered = 0;
  for (int r = 0; r < 7; ++r) {
    EXPECT_LE(s.begin(r), s.end(r));
    covered += s.count(r);
    for (uint64_t v = s.begin(r); v < s.end(r); ++v) {
      ASSERT_EQ(s.owner(Vertex(v)), r);
      ASSERT_EQ(s.to_local(r, Vertex(v)), v - s.begin(r));
      ASSERT_EQ(s.to_global(r, v - s.begin(r)), Vertex(v));
    }
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_GE(s.max_count(), 1000u / 7);
}

TEST(VertexSpace, TinySpaces) {
  VertexSpace s{3, 8};  // more ranks than vertices
  for (uint64_t v = 0; v < 3; ++v) {
    int r = s.owner(Vertex(v));
    EXPECT_GE(uint64_t(v), s.begin(r));
    EXPECT_LT(uint64_t(v), s.end(r));
  }
}

TEST(Degrees, MatchSerialComputation) {
  Graph500Config cfg;
  cfg.scale = 10;
  auto all = generate_rmat(cfg);
  auto expected = graph::undirected_degrees(cfg.num_vertices(), all);

  sim::MeshShape mesh{2, 2};
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<std::vector<uint64_t>> got(size_t(mesh.ranks()));
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    got[size_t(ctx.rank)] = compute_local_degrees(ctx, space, slice);
  });
  for (int r = 0; r < mesh.ranks(); ++r)
    for (uint64_t l = 0; l < space.count(r); ++l)
      ASSERT_EQ(got[size_t(r)][l], expected[space.begin(r) + l])
          << "rank " << r << " local " << l;
}

TEST(Classify, ThresholdsSplitClasses) {
  Graph500Config cfg;
  cfg.scale = 12;
  auto all = generate_rmat(cfg);
  auto degrees = graph::undirected_degrees(cfg.num_vertices(), all);

  sim::MeshShape mesh{2, 2};
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  DegreeThresholds th{256, 64};
  std::vector<EhlTable> tables(size_t(mesh.ranks()));
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto local_deg = compute_local_degrees(ctx, space, slice);
    tables[size_t(ctx.rank)] = classify_vertices(ctx, space, local_deg, th);
  });
  const EhlTable& t = tables[0];
  // All ranks agree.
  for (const auto& other : tables) {
    ASSERT_EQ(other.num_eh(), t.num_eh());
    ASSERT_EQ(other.num_e(), t.num_e());
    for (uint64_t k = 0; k < t.num_eh(); ++k)
      ASSERT_EQ(other.eh_to_global(k), t.eh_to_global(k));
  }
  // Membership matches degrees exactly.
  uint64_t expected_eh = 0, expected_e = 0;
  for (uint64_t v = 0; v < cfg.num_vertices(); ++v) {
    if (degrees[v] >= th.h) ++expected_eh;
    if (degrees[v] >= th.e) ++expected_e;
    EXPECT_EQ(t.is_eh(Vertex(v)), degrees[v] >= th.h);
  }
  EXPECT_EQ(t.num_eh(), expected_eh);
  EXPECT_EQ(t.num_e(), expected_e);
  EXPECT_GT(t.num_eh(), 0u);
  EXPECT_GT(t.num_e(), 0u);
  EXPECT_GT(t.num_h(), 0u);
  // EH ids ordered by degree descending.
  for (uint64_t k = 1; k < t.num_eh(); ++k)
    EXPECT_GE(t.eh_degree(k - 1), t.eh_degree(k));
  // E ids form the prefix.
  for (uint64_t k = 0; k < t.num_eh(); ++k)
    EXPECT_EQ(t.is_e(k), t.eh_degree(k) >= th.e);
}

TEST(Classify, RejectsInvertedThresholds) {
  EXPECT_THROW(EhlTable(DegreeThresholds{10, 20}, {}), CheckError);
}

// Shared fixture: build the 1.5D partition on a mesh and check global
// invariants against the serially generated graph.
class Part15dTest : public ::testing::TestWithParam<sim::MeshShape> {};

TEST_P(Part15dTest, ConservesEveryEdgeWithCorrectPlacement) {
  sim::MeshShape mesh = GetParam();
  Graph500Config cfg;
  cfg.scale = 11;
  auto all = generate_rmat(cfg);
  auto degrees = graph::undirected_degrees(cfg.num_vertices(), all);
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  DegreeThresholds th{128, 32};

  std::vector<Part15d> parts(size_t(mesh.ranks()));
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto local_deg = compute_local_degrees(ctx, space, slice);
    parts[size_t(ctx.rank)] =
        build_15d(ctx, space, slice, local_deg, th);
  });

  const EhlTable& cls = parts[0].cls;
  const CyclicSpace eh_space = parts[0].eh_space;

  // Expected arc multiset per component, derived serially.
  uint64_t expect_eh2eh = 0, expect_el = 0, expect_hl = 0, expect_ll = 0;
  for (const Edge& e : all) {
    bool ue = cls.is_eh(e.u), ve = cls.is_eh(e.v);
    if (ue && ve)
      expect_eh2eh += 2;  // both orientations, self loops twice
    else if (ue || ve) {
      uint64_t k = cls.eh_of(ue ? e.u : e.v);
      (cls.is_e(k) ? expect_el : expect_hl) += 1;
    } else
      expect_ll += 2;
  }

  uint64_t got_eh2eh = 0, got_e2l = 0, got_l2e = 0, got_h2l = 0, got_l2h = 0,
           got_l2l = 0;
  for (int r = 0; r < mesh.ranks(); ++r) {
    const Part15d& p = parts[size_t(r)];
    got_eh2eh += p.eh2eh.num_arcs();
    got_e2l += p.e2l.num_arcs();
    got_l2e += p.l2e.num_arcs();
    got_h2l += p.h2l.num_arcs();
    got_l2h += p.l2h.num_arcs();
    got_l2l += p.l2l.num_arcs();
    // Reverse orientation is arc-for-arc.
    EXPECT_EQ(p.eh2eh.num_arcs(), p.eh2eh_rev.num_arcs());
    EXPECT_EQ(p.e2l.num_arcs(), p.l2e.num_arcs());

    // Placement rules.
    int myrow = mesh.row_of(r), mycol = mesh.col_of(r);
    for (uint64_t x = 0; x < p.eh2eh.num_rows(); ++x) {
      if (p.eh2eh.degree(x) == 0) continue;
      EXPECT_EQ(mesh.col_of(eh_space.owner(Vertex(x))), mycol);
      for (Vertex y : p.eh2eh.neighbors(x))
        EXPECT_EQ(mesh.row_of(eh_space.owner(y)), myrow);
    }
    for (uint64_t h = 0; h < p.h2l.num_rows(); ++h) {
      if (p.h2l.degree(h) == 0) continue;
      EXPECT_FALSE(cls.is_e(h));  // rows of h2l are H vertices
      EXPECT_EQ(mesh.col_of(eh_space.owner(Vertex(h))), mycol);
      for (Vertex l : p.h2l.neighbors(h)) {
        EXPECT_FALSE(cls.is_eh(l));
        EXPECT_EQ(mesh.row_of(space.owner(l)), myrow);  // intra-row push
      }
    }
    for (uint64_t l = 0; l < p.l2h.num_rows(); ++l) {
      if (p.l2h.degree(l) == 0) continue;
      EXPECT_FALSE(p.local_is_eh.get(l));  // rows are local L vertices
      for (Vertex h : p.l2h.neighbors(l))
        EXPECT_FALSE(cls.is_e(uint64_t(h)));
    }
    for (uint64_t e = 0; e < p.e2l.num_rows(); ++e) {
      if (p.e2l.degree(e) == 0) continue;
      EXPECT_TRUE(cls.is_e(e));
      for (Vertex lloc : p.e2l.neighbors(e))
        EXPECT_FALSE(p.local_is_eh.get(uint64_t(lloc)));
    }
  }
  EXPECT_EQ(got_eh2eh, expect_eh2eh);
  EXPECT_EQ(got_e2l, expect_el);
  EXPECT_EQ(got_l2e, expect_el);
  EXPECT_EQ(got_h2l, expect_hl);
  EXPECT_EQ(got_l2h, expect_hl);
  EXPECT_EQ(got_l2l, expect_ll);
}

INSTANTIATE_TEST_SUITE_P(Meshes, Part15dTest,
                         ::testing::Values(sim::MeshShape{1, 1},
                                           sim::MeshShape{1, 4},
                                           sim::MeshShape{4, 1},
                                           sim::MeshShape{2, 2},
                                           sim::MeshShape{2, 3},
                                           sim::MeshShape{3, 2}));

TEST(Part15d, DegenerateNoHeavy) {
  // h == e: |H| = 0 — the paper's "1D with heavy delegates" degeneration.
  Graph500Config cfg;
  cfg.scale = 10;
  sim::MeshShape mesh{2, 2};
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Part15d> parts(size_t(mesh.ranks()));
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = compute_local_degrees(ctx, space, slice);
    parts[size_t(ctx.rank)] =
        build_15d(ctx, space, slice, deg, DegreeThresholds{64, 64});
  });
  EXPECT_EQ(parts[0].cls.num_h(), 0u);
  for (const auto& p : parts) {
    EXPECT_EQ(p.h2l.num_arcs(), 0u);
    EXPECT_EQ(p.l2h.num_arcs(), 0u);
  }
}

TEST(Part15d, DegenerateNoLight) {
  // h <= min degree: |L| = 0 — the 2D degeneration.
  Graph500Config cfg;
  cfg.scale = 9;
  sim::MeshShape mesh{2, 2};
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Part15d> parts(size_t(mesh.ranks()));
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = compute_local_degrees(ctx, space, slice);
    parts[size_t(ctx.rank)] =
        build_15d(ctx, space, slice, deg, DegreeThresholds{1024, 0});
  });
  for (const auto& p : parts) {
    EXPECT_EQ(p.e2l.num_arcs(), 0u);
    EXPECT_EQ(p.l2l.num_arcs(), 0u);
    EXPECT_EQ(p.h2l.num_arcs(), 0u);
  }
  // Every vertex that has an edge is EH. Isolated vertices may remain L.
  uint64_t total_eh2eh = 0;
  for (const auto& p : parts) total_eh2eh += p.eh2eh.num_arcs();
  auto all = generate_rmat(cfg);
  EXPECT_EQ(total_eh2eh, 2 * all.size());
}

TEST(Part15d, BalanceReportCoversAllRanks) {
  Graph500Config cfg;
  cfg.scale = 12;
  sim::MeshShape mesh{2, 4};
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<BalanceReport> reports(size_t(mesh.ranks()));
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = compute_local_degrees(ctx, space, slice);
    auto part = build_15d(ctx, space, slice, deg, DegreeThresholds{256, 64});
    reports[size_t(ctx.rank)] = gather_balance(ctx, part);
  });
  const auto& rep = reports[0];
  for (int s = 0; s < kSubgraphCount; ++s) {
    EXPECT_EQ(rep.per_subgraph[size_t(s)].n, uint64_t(mesh.ranks()));
    EXPECT_EQ(rep.per_rank_counts[size_t(s)].size(), size_t(mesh.ranks()));
  }
  // The headline claim of §6.2.2: the big subgraphs spread only a few
  // percent between ranks.  Loose bound at this tiny scale.
  EXPECT_LT(rep.per_subgraph[int(Subgraph::L2L)].spread(), 0.3);
}

TEST(Part1d, StoresFullAdjacencyAtOwners) {
  Graph500Config cfg;
  cfg.scale = 10;
  auto all = generate_rmat(cfg);
  sim::MeshShape mesh{2, 2};
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  std::vector<Part1d> parts(size_t(mesh.ranks()));
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    parts[size_t(ctx.rank)] = build_1d(ctx, space, slice);
  });
  // Distributed adjacency equals the serial symmetric adjacency.
  auto ref = graph::Csr::from_undirected(cfg.num_vertices(), all);
  for (int r = 0; r < mesh.ranks(); ++r) {
    const Part1d& p = parts[size_t(r)];
    for (uint64_t l = 0; l < space.count(r); ++l) {
      uint64_t g = space.begin(r) + l;
      auto got = p.adj.neighbors(l);
      auto want = ref.neighbors(g);
      std::multiset<Vertex> gs(got.begin(), got.end());
      std::multiset<Vertex> ws(want.begin(), want.end());
      ASSERT_EQ(gs, ws) << "vertex " << g;
    }
  }
}

TEST(CyclicSpace, DealsIdsRoundRobin) {
  CyclicSpace s{10, 3};
  EXPECT_EQ(s.owner(0), 0);
  EXPECT_EQ(s.owner(1), 1);
  EXPECT_EQ(s.owner(2), 2);
  EXPECT_EQ(s.owner(3), 0);
  EXPECT_EQ(s.count(0), 4u);  // 0,3,6,9
  EXPECT_EQ(s.count(1), 3u);  // 1,4,7
  EXPECT_EQ(s.count(2), 3u);  // 2,5,8
  EXPECT_EQ(s.max_count(), 4u);
  uint64_t covered = 0;
  for (int r = 0; r < 3; ++r) {
    for (uint64_t i = 0; i < s.count(r); ++i) {
      Vertex g = s.to_global(r, i);
      ASSERT_EQ(s.owner(g), r);
      ASSERT_EQ(s.to_local(r, g), i);
      ++covered;
    }
  }
  EXPECT_EQ(covered, 10u);
}

TEST(CyclicSpace, EmptyAndSingleton) {
  CyclicSpace empty{0, 4};
  for (int r = 0; r < 4; ++r) EXPECT_EQ(empty.count(r), 0u);
  CyclicSpace one{1, 4};
  EXPECT_EQ(one.owner(0), 0);
  EXPECT_EQ(one.count(0), 1u);
  EXPECT_EQ(one.count(3), 0u);
}

TEST(EhlTable, EhOfReturnsNotEhForLightVertices) {
  EhlTable t(DegreeThresholds{100, 10}, {{150, 7}, {50, 3}});
  EXPECT_EQ(t.num_eh(), 2u);
  EXPECT_EQ(t.num_e(), 1u);
  EXPECT_TRUE(t.is_e(0));
  EXPECT_FALSE(t.is_e(1));
  EXPECT_EQ(t.eh_of(7), 0u);
  EXPECT_EQ(t.eh_of(3), 1u);
  EXPECT_EQ(t.eh_of(999), EhlTable::kNotEh);
  EXPECT_FALSE(t.is_eh(999));
  EXPECT_EQ(t.eh_to_global(1), 3);
  EXPECT_EQ(t.eh_degree(0), 150u);
}

TEST(Part15d, H2lMirrorsAgreeArcForArc) {
  Graph500Config cfg;
  cfg.scale = 10;
  sim::MeshShape mesh{2, 3};
  VertexSpace space{cfg.num_vertices(), mesh.ranks()};
  sim::run_spmd(mesh, [&](sim::RankContext& ctx) {
    auto slice = slice_of(cfg, ctx.rank, ctx.nranks());
    auto deg = compute_local_degrees(ctx, space, slice);
    auto part = build_15d(ctx, space, slice, deg, {128, 16});
    // Same arcs, two orientations, same rank.
    EXPECT_EQ(part.h2l.num_arcs(), part.h2l_by_l.num_arcs());
    // Row-local offsets cover exactly the ranks of this row.
    ASSERT_EQ(part.row_l_offsets.size(), size_t(ctx.mesh.cols) + 1);
    uint64_t total = 0;
    for (int c = 0; c < ctx.mesh.cols; ++c)
      total += space.count(ctx.mesh.rank_of(ctx.row_index(), c));
    EXPECT_EQ(part.row_l_offsets.back(), total);
    EXPECT_EQ(part.h2l_by_l.num_rows(), total);
  });
}

TEST(Subgraph, NamesAreStable) {
  EXPECT_STREQ(subgraph_name(Subgraph::EH2EH), "EH2EH");
  EXPECT_STREQ(subgraph_name(Subgraph::L2L), "L2L");
}

}  // namespace
}  // namespace sunbfs::partition
